// Ablation A3: the strategy across a stencil family — 5-point, 9-point,
// and radius-2 13-point star — checking that communication unioning
// handles larger shift distances (a distance-2 shift subsumes the
// distance-1 shift in the same direction, paper Section 3.3) and that
// the optimized message count stays at one per direction per dimension.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace hpfsc;
using namespace hpfsc::bench;

// Radius-2 star stencil (13-point): distances 1 and 2 in each direction.
constexpr const char* kThirteenPoint = R"(
PROGRAM STAR13
INTEGER N
REAL U(N,N), T(N,N)
!HPF$ DISTRIBUTE U(BLOCK,BLOCK)
!HPF$ DISTRIBUTE T(BLOCK,BLOCK)
T = U + CSHIFT(U,-1,1) + CSHIFT(U,+1,1) + CSHIFT(U,-2,1) + CSHIFT(U,+2,1) &
      + CSHIFT(U,-1,2) + CSHIFT(U,+1,2) + CSHIFT(U,-2,2) + CSHIFT(U,+2,2) &
      + CSHIFT(CSHIFT(U,-1,1),-1,2) + CSHIFT(CSHIFT(U,-1,1),+1,2)         &
      + CSHIFT(CSHIFT(U,+1,1),-1,2) + CSHIFT(CSHIFT(U,+1,1),+1,2)
END
)";

const char* kernel_for(int family) {
  switch (family) {
    case 0: return kernels::kFivePointArraySyntax;
    case 1: return kernels::kProblem9;
    default: return kThirteenPoint;
  }
}

void BM_StencilFamily(benchmark::State& state) {
  const int family = static_cast<int>(state.range(0));
  const int level = static_cast<int>(state.range(1));
  const int n = 256;
  const char* kernel = kernel_for(family);
  std::vector<std::string> live_out{family == 0 ? "DST" : "T"};
  Execution exec = make_execution(kernel, options_for(level), sp2_machine(),
                                  n, live_out);
  if (family == 0) {
    Bindings b;
    b.set("N", n).set("C1", 0.2).set("C2", 0.2).set("C3", 0.2)
        .set("C4", 0.2).set("C5", 0.2);
    exec.prepare(b);
    exec.set_array("SRC", [](int i, int j, int) { return i + 0.5 * j; });
  }
  exec.run(1);
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    auto stats = exec.run(1);
    msgs = stats.machine.messages_sent;
    bytes = stats.machine.bytes_sent;
  }
  state.counters["messages"] = static_cast<double>(msgs);
  state.counters["net_bytes"] = static_cast<double>(bytes);
  static const char* family_names[] = {"5-point", "9-point", "13-point-r2"};
  state.SetLabel(std::string(family_names[family]) + "/" +
                 level_name(level));
}

}  // namespace

BENCHMARK(BM_StencilFamily)
    ->ArgNames({"family", "level"})
    ->ArgsProduct({{0, 1, 2}, {0, 4}})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.3);

BENCHMARK_MAIN();

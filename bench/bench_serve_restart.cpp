// Serving-daemon benchmarks: what the persistent plan cache buys at
// fleet restart, and how admission control behaves under overload.
//
//   BM_FleetRestartCold — a fresh service compiles a fleet of 100
//     *distinct* stencils (unique canonical keys) from scratch: the
//     restart cost without persistence.
//   BM_FleetRestartWarm — the same fleet warm-started from a populated
//     PlanStore directory: deserialize + insert + 100 pure cache hits,
//     zero recompiles (warm_misses is asserted 0).  The acceptance bar
//     is warm >= 5x faster than cold.
//   BM_ServeOverloadP99 — a burst of 32 requests against a 2-worker
//     daemon with queue depth 8: overflow sheds with AdmissionRejected
//     while admitted requests keep a bounded p99 (exported as the
//     request_ms_p99 / queue_wait_ms_p99 counters, gated in bench_gate).
//
// emulate=false as in bench_service: these measure the serving layer,
// not the modeled SP-2.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <future>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/daemon.hpp"
#include "serve/plan_store.hpp"
#include "service/service.hpp"

namespace hpfsc::bench {
namespace {

constexpr int kFleet = 100;

/// Generates the i-th fleet stencil: a 5-point-style kernel whose
/// coefficients (and one shift axis) vary per index, so every source
/// lowers to a distinct canonical key — verified by the cache-size
/// assert in the benchmarks.
std::string fleet_source(int idx) {
  const int shift1 = (idx % 2 == 0) ? 1 : -1;
  const int shift2 = (idx % 3 == 0) ? 2 : -1;
  char buf[512];
  std::snprintf(buf, sizeof buf, R"(
PROGRAM FLEET
INTEGER N
REAL U(N,N), T(N,N)
!HPF$ DISTRIBUTE U(BLOCK,BLOCK)
!HPF$ DISTRIBUTE T(BLOCK,BLOCK)
T = %.6f * U + %.6f * CSHIFT(U,%d,1) + %.6f * CSHIFT(U,%d,2)
END
)",
                0.25 + idx * 1e-4, 0.125 + idx * 1e-4, shift1,
                0.0625 + idx * 1e-4, shift2);
  return buf;
}

const std::vector<std::string>& fleet_sources() {
  static const std::vector<std::string> sources = [] {
    std::vector<std::string> out;
    out.reserve(kFleet);
    for (int i = 0; i < kFleet; ++i) out.push_back(fleet_source(i));
    return out;
  }();
  return sources;
}

service::ServiceConfig fleet_config() {
  service::ServiceConfig cfg;
  cfg.machine = sp2_machine();
  cfg.machine.cost.emulate = false;
  cfg.cache_capacity = 2 * kFleet;  // the whole fleet stays resident
  return cfg;
}

CompilerOptions fleet_options() {
  CompilerOptions opts = options_for(4);
  opts.passes.offset.live_out = {"T"};
  return opts;
}

/// One fleet restart without persistence: every plan compiles cold.
void BM_FleetRestartCold(benchmark::State& state) {
  for (auto _ : state) {
    service::StencilService svc(fleet_config());
    for (const std::string& src : fleet_sources()) {
      benchmark::DoNotOptimize(svc.compile(src, fleet_options()));
    }
    if (svc.cache_size() != kFleet) {
      state.SkipWithError("fleet sources collided on a canonical key");
      break;
    }
  }
  state.counters["plans_compiled"] = kFleet;
  state.SetLabel("fresh service: 100 distinct O4 compiles");
}
BENCHMARK(BM_FleetRestartCold)->Unit(benchmark::kMillisecond);

/// One fleet restart from a populated cache directory: warm_start
/// restores every plan, the compile loop is pure cache hits.
void BM_FleetRestartWarm(benchmark::State& state) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "hpfsc-bench-serve-restart").string();
  {
    // Populate once, outside the timed region (a prior daemon's life).
    fs::remove_all(dir);
    service::StencilService svc(fleet_config());
    serve::PlanStore store(dir);
    for (const std::string& src : fleet_sources()) {
      store.save(*svc.compile(src, fleet_options()));
    }
  }
  // Timed region: restart-to-ready — construct the service and restore
  // the whole fleet from disk.  Serving afterwards costs the same as in
  // the cold world (pure hits), so it is verified once, untimed: every
  // fleet source must be a hit and the restart must have compiled
  // nothing.
  double warm_misses = -1.0;
  for (auto _ : state) {
    service::StencilService svc(fleet_config());
    serve::PlanStore store(dir);
    const std::size_t restored = store.warm_start(svc.cache());
    benchmark::DoNotOptimize(restored);
    if (restored != kFleet) {
      state.SkipWithError("warm start restored an incomplete fleet");
      break;
    }
    if (warm_misses < 0.0) {
      state.PauseTiming();
      for (const std::string& src : fleet_sources()) {
        (void)svc.compile(src, fleet_options());
      }
      warm_misses = static_cast<double>(svc.cache_counters().misses);
      state.ResumeTiming();
    }
  }
  fs::remove_all(dir);
  state.counters["plans_restored"] = kFleet;
  // Acceptance: a warm restart recompiles *zero* plans (any nonzero
  // value here is a persistence regression, caught by bench_gate's
  // counter comparison as well as the CI serve-smoke job).
  state.counters["warm_misses"] = warm_misses;
  state.SetLabel("warm start: 100 plans restored from disk, 0 compiles");
}
BENCHMARK(BM_FleetRestartWarm)->Unit(benchmark::kMillisecond);

/// Overload: bursts of 32 against queue depth 8 on 2 workers.  The
/// daemon persists across iterations (steady-state serving); sheds are
/// expected and counted, admitted requests' p99 is the gated metric.
void BM_ServeOverloadP99(benchmark::State& state) {
  serve::DaemonConfig cfg;
  cfg.service.machine = sp2_machine();
  cfg.service.machine.cost.emulate = false;
  cfg.workers = 2;
  cfg.queue_depth = 8;
  serve::ServeDaemon daemon(cfg);

  service::ServiceRequest req;
  req.source = kernels::kProblem9;
  req.options = fleet_options();
  req.bindings = Bindings{}.set("N", 64);
  req.steps = 1;
  req.init = [](Execution& exec) {
    exec.set_array("U", [](int i, int j, int) { return i * 0.25 + j * 0.5; });
  };

  const char* clients[] = {"a", "b", "c", "d"};
  double sheds = 0.0;
  double served = 0.0;
  for (auto _ : state) {
    std::vector<std::future<serve::ServeResponse>> futures;
    futures.reserve(32);
    for (int i = 0; i < 32; ++i) {
      try {
        futures.push_back(daemon.submit({clients[i % 4], req}));
      } catch (const serve::AdmissionRejected&) {
        sheds += 1.0;
      }
    }
    for (auto& f : futures) {
      benchmark::DoNotOptimize(f.get());
      served += 1.0;
    }
  }
  state.counters["shed"] = sheds;
  state.counters["served"] = served;
  state.counters["request_ms_p99"] =
      daemon.service().metrics().histogram("service.request_ms").p99();
  state.counters["queue_wait_ms_p99"] =
      daemon.service().metrics().histogram("serve.queue_wait_ms").p99();
  state.SetLabel("burst 32 vs depth 8: shed overflow, bounded p99");
  daemon.shutdown();
}
BENCHMARK(BM_ServeOverloadP99)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hpfsc::bench

BENCHMARK_MAIN();

// Ablation A5: the memory-optimization design choices (paper Section
// 3.4) in isolation — unroll-and-jam factor sweep and scalar
// replacement on/off, on the fused Problem 9 nest.  The plan compiler
// realizes these transformations, so the measured effect is the real
// reduction in loads/stores per element (see tests/executor/test_plan
// for the exact counts: 15 loads + 7 stores naive vs 9 loads + 1 store
// scalar-replaced; 4.5 loads + 1 store per element at unroll 4).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace hpfsc;
using namespace hpfsc::bench;

void BM_MemoryOptChoices(benchmark::State& state) {
  const int unroll = static_cast<int>(state.range(0));
  const bool scalar_replace = state.range(1) != 0;
  const int n = 512;
  CompilerOptions opts = CompilerOptions::level(4);
  opts.passes.memory.unroll_factor = unroll;
  opts.passes.memory.unroll_jam = unroll > 1;
  opts.passes.memory.scalar_replace = scalar_replace;
  simpi::MachineConfig mc = sp2_machine();
  // keep emulation on: the memory-reference model is exactly what this
  // ablation measures
  Execution exec = make_execution(kernels::kProblem9, opts, mc, n);
  exec.run(1);
  for (auto _ : state) {
    exec.run(1);
  }
  state.SetLabel("unroll=" + std::to_string(unroll) +
                 (scalar_replace ? "+SR" : " noSR"));
}

}  // namespace

BENCHMARK(BM_MemoryOptChoices)
    ->ArgNames({"unroll", "SR"})
    ->ArgsProduct({{1, 2, 4, 8}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.3);

BENCHMARK_MAIN();

// Reproduces paper Figure 11: execution times of the single-statement
// 9-point CSHIFT stencil (Figure 2) versus the multi-statement Problem 9
// form (Figure 3), both compiled by the xlhpf-like baseline, across
// problem sizes on a capped-memory 4-PE machine.
//
// Paper: the single-statement version allocates one temporary per CSHIFT
// and "exhausted the available memory for the larger problem sizes, even
// though each PE had 256 Mbytes of real RAM"; the multi-statement form
// shares temporaries (3 total) and completes at every size.
//
// This harness scales the paper's RAM cap to the simulated sizes: the
// cap is 10 subgrids of the largest N, so the multi-statement form
// (7 live arrays) fits everywhere while the single-statement form
// (13 live arrays) runs out of memory at the top size.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace hpfsc;
  using namespace hpfsc::bench;

  const int sizes[] = {128, 256, 512, 1024};
  const int n_max = sizes[3];
  simpi::MachineConfig mc = sp2_machine();
  const std::size_t subgrid_bytes =
      static_cast<std::size_t>(n_max / 2) * (n_max / 2) * sizeof(double);
  mc.per_pe_heap_bytes = 10 * subgrid_bytes;

  std::printf("Figure 11: 9-point stencil under the xlhpf-like baseline, "
              "4 PEs, per-PE cap = %.1f MB\n\n",
              static_cast<double>(mc.per_pe_heap_bytes) / (1 << 20));
  std::printf("  %6s  %22s  %22s\n", "N", "single-statement [ms]",
              "Problem 9 (multi) [ms]");

  for (int n : sizes) {
    std::printf("  %6d", n);
    for (const char* kernel :
         {kernels::kNinePointCShift, kernels::kProblem9}) {
      try {
        Execution exec = make_execution(kernel, CompilerOptions::xlhpf_like(),
                                        mc, n);
        auto stats = exec.run(3);
        write_phase_metrics("fig11_xlhpf_baseline",
                            kernel == kernels::kProblem9 ? "multi" : "single",
                            n, stats);
        std::printf("  %22.2f", stats.wall_seconds / 3 * 1e3);
      } catch (const simpi::OutOfMemory&) {
        std::printf("  %22s", "OUT OF MEMORY");
      }
    }
    std::printf("\n");
  }

  std::printf("\nPeak per-PE heap demand (no cap), N=%d:\n", sizes[2]);
  simpi::MachineConfig uncapped = sp2_machine();
  for (auto [name, kernel] :
       {std::pair{"single-statement", kernels::kNinePointCShift},
        {"Problem 9 (multi)", kernels::kProblem9}}) {
    Execution exec = make_execution(kernel, CompilerOptions::xlhpf_like(),
                                    uncapped, sizes[2]);
    auto stats = exec.run(1);
    std::printf("  %-18s %8.2f MB  (%llu messages)\n", name,
                static_cast<double>(stats.machine.peak_heap_bytes) /
                    (1 << 20),
                static_cast<unsigned long long>(
                    stats.machine.messages_sent));
  }
  return 0;
}

// Ablation A1: interprocessor message counts per optimization level
// (the quantity communication unioning minimizes).  The paper's counts
// for the 9-point stencil: 12 CSHIFTs in the source, 8 overlap shifts
// after offset arrays (duplicates merged), 4 after unioning — one per
// direction per dimension (Figure 6).
//
// The communication ledger breaks the runtime message count down by
// (dimension, direction): the per-direction columns show the unioning
// guarantee directly — at O3+ each of dim1-/dim1+/dim2-/dim2+ carries
// exactly one message per boundary PE pair.  At O4 the run executes
// with the strict communication invariant armed, so a second message in
// any direction within one statement context would abort this ablation
// rather than quietly inflate a column.
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"

namespace {

using namespace hpfsc;
using namespace hpfsc::bench;

struct KernelSpec {
  const char* name;
  const char* source;
  const char* live_out;
};

Execution make_kernel_execution(const KernelSpec& k, int level, int n) {
  Compiler compiler;
  CompilerOptions opts = options_for(level);
  opts.passes.offset.live_out = {k.live_out};
  CompiledProgram compiled = compiler.compile(k.source, opts);
  simpi::MachineConfig mc = sp2_machine();
  mc.cost.emulate = false;  // counting only
  Execution exec(std::move(compiled.program), mc);
  Bindings bindings = Bindings{}.set("N", n);
  // The 5-point kernel reads coefficient scalars instead of an input
  // array named U.
  for (const char* c : {"C1", "C2", "C3", "C4", "C5"}) {
    if (exec.program().find_scalar(c) >= 0) bindings.set(c, 1.0);
  }
  exec.prepare(bindings);
  for (const char* a : {"U", "SRC"}) {
    if (exec.program().find_array(a) >= 0) {
      exec.set_array(a, [](int i, int j, int) { return i + 2.0 * j; });
    }
  }
  return exec;
}

}  // namespace

int main() {
  const int n = 128;

  std::printf("Ablation A1: shift operations and runtime messages per "
              "iteration (N=%d, 2x2 PEs)\n", n);
  std::printf("Per-direction columns from the communication ledger; at O4 "
              "the strict per-statement\ninvariant (<= 1 message per "
              "direction per dimension) is armed and would abort on "
              "violation.\n\n");
  std::printf("  %-18s %-22s %11s %14s %10s %10s  %6s %6s %6s %6s %12s\n",
              "kernel", "level", "full-shifts", "overlap-shifts", "messages",
              "async-msgs", "dim1-", "dim1+", "dim2-", "dim2+",
              "intra-bytes");

  const KernelSpec kernels[] = {
      {"fivept", kernels::kFivePointArraySyntax, "DST"},
      {"ninept-single", kernels::kNinePointCShift, "T"},
      {"problem9", kernels::kProblem9, "T"},
      {"ninept-array", kernels::kNinePointArraySyntax, "T"},
  };
  for (const KernelSpec& k : kernels) {
    for (int level : {-1, 0, 1, 2, 3, 4}) {
      Execution exec = make_kernel_execution(k, level, n);
      auto comm = exec.program().comm_summary();
      if (level >= 4) exec.machine().set_comm_invariant(true);
      Execution::RunStats stats;
      try {
        stats = exec.run(1);
      } catch (const simpi::CommInvariantViolation& e) {
        std::fprintf(stderr,
                     "FATAL: %s at %s violates the per-direction "
                     "communication invariant:\n  %s\n",
                     k.name, level_name(level), e.what());
        return 1;
      }
      // The async-msgs A/B column: the same plan under the deferring
      // backend must send exactly the same number of messages — overlap
      // moves timing, never traffic.  A mismatch is a correctness bug
      // (a receive completed against the wrong ledger cell), so it
      // fails the ablation like an invariant violation would.
      Execution async_exec = make_kernel_execution(k, level, n);
      async_exec.machine().set_comm_backend(simpi::CommBackendKind::Async);
      if (level >= 4) async_exec.machine().set_comm_invariant(true);
      Execution::RunStats async_stats;
      try {
        async_stats = async_exec.run(1);
      } catch (const simpi::CommInvariantViolation& e) {
        std::fprintf(stderr,
                     "FATAL: %s at %s violates the per-direction "
                     "communication invariant under the async backend:\n"
                     "  %s\n",
                     k.name, level_name(level), e.what());
        return 1;
      }
      if (async_stats.machine.messages_sent != stats.machine.messages_sent) {
        std::fprintf(stderr,
                     "FATAL: %s at %s: async backend sent %llu messages, "
                     "sync sent %llu\n",
                     k.name, level_name(level),
                     static_cast<unsigned long long>(
                         async_stats.machine.messages_sent),
                     static_cast<unsigned long long>(
                         stats.machine.messages_sent));
        return 1;
      }
      const simpi::CommLedger& ledger = stats.machine.comm;
      std::printf(
          "  %-18s %-22s %11d %14d %10llu %10llu  %6llu %6llu %6llu %6llu "
          "%12llu\n",
          k.name, level_name(level), comm.full_shifts, comm.overlap_shifts,
          static_cast<unsigned long long>(stats.machine.messages_sent),
          static_cast<unsigned long long>(async_stats.machine.messages_sent),
          static_cast<unsigned long long>(ledger.dir_total(0, 0).messages),
          static_cast<unsigned long long>(ledger.dir_total(0, 1).messages),
          static_cast<unsigned long long>(ledger.dir_total(1, 0).messages),
          static_cast<unsigned long long>(ledger.dir_total(1, 1).messages),
          static_cast<unsigned long long>(stats.machine.intra_copy_bytes));
    }
    std::printf("\n");
  }
  return 0;
}

// Ablation A1: interprocessor message counts per optimization level
// (the quantity communication unioning minimizes).  The paper's counts
// for the 9-point stencil: 12 CSHIFTs in the source, 8 overlap shifts
// after offset arrays (duplicates merged), 4 after unioning — one per
// direction per dimension (Figure 6).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace hpfsc;
  using namespace hpfsc::bench;
  const int n = 128;

  std::printf("Ablation A1: shift operations and runtime messages per "
              "iteration (N=%d, 2x2 PEs)\n\n", n);
  std::printf("  %-18s %-22s %11s %14s %10s %12s\n", "kernel", "level",
              "full-shifts", "overlap-shifts", "messages", "intra-bytes");

  for (auto [kname, kernel] :
       {std::pair{"ninept-single", kernels::kNinePointCShift},
        {"problem9", kernels::kProblem9},
        {"ninept-array", kernels::kNinePointArraySyntax}}) {
    for (int level : {-1, 0, 1, 2, 3, 4}) {
      Compiler compiler;
      CompilerOptions opts = options_for(level);
      opts.passes.offset.live_out = {"T"};
      CompiledProgram compiled = compiler.compile(kernel, opts);
      auto comm = compiled.program.comm_summary();
      simpi::MachineConfig mc = sp2_machine();
      mc.cost.emulate = false;  // counting only
      Execution exec(std::move(compiled.program), mc);
      exec.prepare(Bindings{}.set("N", n));
      exec.set_array("U", [](int i, int j, int) { return i + 2.0 * j; });
      auto stats = exec.run(1);
      std::printf("  %-18s %-22s %11d %14d %10llu %12llu\n", kname,
                  level_name(level), comm.full_shifts, comm.overlap_shifts,
                  static_cast<unsigned long long>(
                      stats.machine.messages_sent),
                  static_cast<unsigned long long>(
                      stats.machine.intra_copy_bytes));
    }
    std::printf("\n");
  }
  return 0;
}

// Shared benchmark machinery: the SP-2-like machine model and helpers
// for compiling/preparing the paper's kernels.
//
// The cost model approximates the paper's testbed, a 4-processor IBM
// SP-2 (1997): message latency ~40us, network bandwidth ~35 MB/s, and
// memory copy bandwidth ~200 MB/s (POWER2, read+write).  With
// `emulate = true` these costs are busy-waited, so wall-clock
// measurements reflect the machine being modeled rather than the host's
// memcpy speed; counted statistics (messages, bytes) are exact either
// way.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <utility>

#include "driver/hpfsc.hpp"
#include "obs/metrics.hpp"
#include "obs/sinks.hpp"

namespace hpfsc::bench {

inline simpi::MachineConfig sp2_machine(int rows = 2, int cols = 2) {
  simpi::MachineConfig mc;
  mc.pe_rows = rows;
  mc.pe_cols = cols;
  // Calibrated so that, relative to this executor's compute speed, the
  // copy/communication/compute balance approximates the paper's SP-2
  // measurements (see EXPERIMENTS.md for the calibration notes).
  mc.cost.latency_ns = 100'000;
  mc.cost.ns_per_byte = 28.0;
  mc.cost.memory_ns_per_byte = 2.0;
  mc.cost.cache_ns_per_byte = 0.2;
  mc.cost.emulate = true;
  return mc;
}

inline obs::TraceSession* env_trace_session();

/// Compile `kernel` with the given options (plus live-out set) and
/// prepare an Execution at problem size N with a deterministic input.
inline Execution make_execution(const char* kernel, CompilerOptions opts,
                                const simpi::MachineConfig& mc, int n,
                                std::vector<std::string> live_out = {"T"},
                                Bindings extra = {}) {
  opts.passes.offset.live_out = std::move(live_out);
  opts.trace = env_trace_session();
  Compiler compiler;
  CompiledProgram compiled = compiler.compile(kernel, opts);
  Execution exec(std::move(compiled.program), mc);
  exec.set_trace(env_trace_session());
  exec.prepare(extra.set("N", n));
  // Initialize the canonical input array when the kernel has one (the
  // 5-point kernel uses SRC and coefficient bindings instead; its
  // harness re-prepares with the full bindings).
  if (exec.program().find_array("U") >= 0) {
    exec.set_array("U", [](int i, int j, int) { return i * 0.25 + j * 0.5; });
  }
  return exec;
}

inline const char* level_name(int level) {
  switch (level) {
    case -1: return "xlhpf";
    case 0: return "O0-original";
    case 1: return "O1-offset-arrays";
    case 2: return "O2-context-partition";
    case 3: return "O3-comm-unioning";
    case 4: return "O4-memory-opts";
  }
  return "?";
}

inline CompilerOptions options_for(int level) {
  return level < 0 ? CompilerOptions::xlhpf_like()
                   : CompilerOptions::level(level);
}

/// Process-wide obs session driven by the HPFSC_TRACE environment
/// variable: when set, a Chrome-trace sink on the default session
/// captures every instrumented run of the bench binary (closed at
/// process exit).  Returns nullptr when HPFSC_TRACE is unset.
inline obs::TraceSession* env_trace_session() {
  static obs::TraceSession* session = [] {
    const char* path = obs::env_trace_path();
    if (!path) return static_cast<obs::TraceSession*>(nullptr);
    obs::TraceSession& d = obs::default_session();
    d.add_sink(std::make_unique<obs::ChromeTraceSink>(path));
    return &d;
  }();
  return session;
}

/// Publishes the machine statistics of the last measured run as
/// benchmark counters, so `--benchmark_format=json` output carries the
/// paper's quantities alongside wall time.
inline void report_machine_counters(benchmark::State& state,
                                    const simpi::MachineStats& m) {
  state.counters["messages"] = static_cast<double>(m.messages_sent);
  state.counters["bytes_sent"] = static_cast<double>(m.bytes_sent);
  state.counters["intra_bytes"] = static_cast<double>(m.intra_copy_bytes);
  state.counters["kernel_ref_bytes"] =
      static_cast<double>(m.kernel_ref_bytes);
  state.counters["modeled_comm_ms"] =
      static_cast<double>(m.modeled_comm_ns) / 1e6;
  state.counters["modeled_copy_ms"] =
      static_cast<double>(m.modeled_copy_ns) / 1e6;
  state.counters["peak_heap_bytes"] =
      static_cast<double>(m.peak_heap_bytes);
}

/// Appends one machine-readable metrics record (JSON lines) to the file
/// named by HPFSC_BENCH_JSON, tagging it with the bench name, the
/// phase/level label, and the problem size — the feed for the
/// BENCH_*.json trajectory.  No-op when the variable is unset.
inline void write_phase_metrics(const char* bench, const char* phase, int n,
                                const Execution::RunStats& stats) {
  const char* path = std::getenv("HPFSC_BENCH_JSON");
  if (!path || !*path) return;
  std::ofstream f(path, std::ios::app);
  if (!f) return;
  const double flops = static_cast<double>(stats.tier.flops);
  const double bytes = static_cast<double>(stats.machine.kernel_ref_bytes +
                                           stats.machine.bytes_sent);
  f << "{\"bench\":\"" << obs::json_escape(bench) << "\",\"phase\":\""
    << obs::json_escape(phase) << "\",\"n\":" << n << ",\"wall_seconds\":"
    << obs::json_number(stats.wall_seconds)
    << ",\"roofline\":{\"flops\":" << obs::json_number(flops)
    << ",\"bytes_per_flop\":";
  // Copy/shift-only plans have zero FLOPs; arithmetic intensity is
  // undefined there, not infinite.
  if (flops > 0.0) {
    f << obs::json_number(bytes / flops);
  } else {
    f << "null";
  }
  f << ",\"gflops\":"
    << obs::json_number(stats.wall_seconds > 0.0
                            ? flops / stats.wall_seconds / 1e9
                            : 0.0)
    << "},\"machine\":" << stats.machine.to_json() << "}\n";
}

/// Appends a metrics-registry record (latency histograms, counters) to
/// the HPFSC_BENCH_JSON feed, tagged "metrics" so trajectory tooling
/// can tell it apart from phase records.  No-op when the variable is
/// unset.
inline void write_metrics_jsonl(const char* bench,
                                const obs::MetricsRegistry& metrics) {
  const char* path = std::getenv("HPFSC_BENCH_JSON");
  if (!path || !*path) return;
  std::ofstream f(path, std::ios::app);
  if (!f) return;
  f << "{\"bench\":\"" << obs::json_escape(bench)
    << "\",\"metrics\":" << metrics.to_json() << "}\n";
}

}  // namespace hpfsc::bench

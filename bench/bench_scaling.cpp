// Ablation A4: PE-grid scaling at fixed problem size.  Shows the
// surface-to-volume effect: more PEs mean more boundary messages while
// the per-PE subgrid shrinks.  NOTE: PEs are threads; on a single-core
// host wall time measures total work (serialized), so the interesting
// series here are the message/byte counts and the per-level deltas, not
// parallel speedup.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace hpfsc;
  using namespace hpfsc::bench;
  const int n = 256;
  const int iterations = 5;

  std::printf("Ablation A4: Problem 9 at N=%d across PE grids "
              "(%d iterations each; sync vs async comm backend)\n\n",
              n, iterations);
  std::printf("  %-8s %-20s %10s %10s %10s %12s %14s\n", "grid", "level",
              "sync[ms]", "async[ms]", "messages", "net bytes",
              "bytes/PE/iter");

  for (auto [rows, cols] : {std::pair{1, 1}, {2, 2}, {4, 4}}) {
    for (int level : {0, 4}) {
      // A/B arms share nothing but the compiled source; the async arm
      // overlaps halo receives with interior compute and must produce
      // the identical message/byte ledger (timing moves, traffic not).
      Execution::RunStats stats[2];
      for (int backend = 0; backend < 2; ++backend) {
        Execution exec = make_execution(kernels::kProblem9,
                                        options_for(level),
                                        sp2_machine(rows, cols), n);
        exec.machine().set_comm_backend(
            backend ? simpi::CommBackendKind::Async
                    : simpi::CommBackendKind::Sync);
        exec.run(1);
        stats[backend] = exec.run(iterations);
      }
      if (stats[1].machine.messages_sent != stats[0].machine.messages_sent ||
          stats[1].machine.bytes_sent != stats[0].machine.bytes_sent) {
        std::printf("FAIL: async backend changed the message ledger\n");
        return 1;
      }
      char grid[16];
      std::snprintf(grid, sizeof grid, "%dx%d", rows, cols);
      std::printf("  %-8s %-20s %10.2f %10.2f %10llu %12llu %14.0f\n", grid,
                  level_name(level), stats[0].wall_seconds * 1e3,
                  stats[1].wall_seconds * 1e3,
                  static_cast<unsigned long long>(
                      stats[0].machine.messages_sent),
                  static_cast<unsigned long long>(stats[0].machine.bytes_sent),
                  static_cast<double>(stats[0].machine.bytes_sent) /
                      (rows * cols) / iterations);
    }
  }
  std::printf("\n(1x1 sends zero messages: circular halos are local "
              "copies.  The async column re-runs the same plan with\n"
              "deferred receives; identical message/byte columns are "
              "asserted, only wall time may move.)\n");
  return 0;
}

// Ablation A4: PE-grid scaling at fixed problem size.  Shows the
// surface-to-volume effect: more PEs mean more boundary messages while
// the per-PE subgrid shrinks.  NOTE: PEs are threads; on a single-core
// host wall time measures total work (serialized), so the interesting
// series here are the message/byte counts and the per-level deltas, not
// parallel speedup.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace hpfsc;
  using namespace hpfsc::bench;
  const int n = 256;
  const int iterations = 5;

  std::printf("Ablation A4: Problem 9 at N=%d across PE grids "
              "(%d iterations each)\n\n", n, iterations);
  std::printf("  %-8s %-20s %10s %10s %12s %14s\n", "grid", "level",
              "time[ms]", "messages", "net bytes", "bytes/PE/iter");

  for (auto [rows, cols] : {std::pair{1, 1}, {2, 2}, {4, 4}}) {
    for (int level : {0, 4}) {
      Execution exec = make_execution(kernels::kProblem9,
                                      options_for(level),
                                      sp2_machine(rows, cols), n);
      exec.run(1);
      auto stats = exec.run(iterations);
      char grid[16];
      std::snprintf(grid, sizeof grid, "%dx%d", rows, cols);
      std::printf("  %-8s %-20s %10.2f %10llu %12llu %14.0f\n", grid,
                  level_name(level), stats.wall_seconds * 1e3,
                  static_cast<unsigned long long>(
                      stats.machine.messages_sent),
                  static_cast<unsigned long long>(stats.machine.bytes_sent),
                  static_cast<double>(stats.machine.bytes_sent) /
                      (rows * cols) / iterations);
    }
  }
  std::printf("\n(1x1 sends zero messages: circular halos are local "
              "copies.)\n");
  return 0;
}

// Reproduces paper Figure 18: three specifications of the 9-point
// stencil — single-statement CSHIFT (Figure 2), multi-statement
// Problem 9 (Figure 3), and array syntax over the interior — compiled by
// the xlhpf-like baseline, against our strategy's best code.
//
// Paper observations to reproduce in shape:
//  * under xlhpf, the CSHIFT-based specifications are an order of
//    magnitude slower than the best code;
//  * the array-syntax specification under xlhpf "tracked our best
//    performance numbers" (xlhpf scalarized array syntax directly;
//    modeled here as our pipeline without the memory optimizations);
//  * our strategy compiles all three specifications to the same code,
//    so a single "ours" series represents them (verified by the test
//    suite: identical communication and messages).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace hpfsc;
using namespace hpfsc::bench;

enum Spec : int {
  kXlhpfSingle = 0,
  kXlhpfMulti = 1,
  kXlhpfArraySyntax = 2,
  kOursAnySpec = 3,
};

void BM_NinePointSpecs(benchmark::State& state) {
  const int spec = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const char* kernel = nullptr;
  CompilerOptions opts;
  const char* label = nullptr;
  switch (spec) {
    case kXlhpfSingle:
      kernel = kernels::kNinePointCShift;
      opts = CompilerOptions::xlhpf_like();
      label = "xlhpf/single-statement-cshift";
      break;
    case kXlhpfMulti:
      kernel = kernels::kProblem9;
      opts = CompilerOptions::xlhpf_like();
      label = "xlhpf/multi-statement";
      break;
    case kXlhpfArraySyntax:
      // xlhpf scalarized array-syntax stencils directly (MasPar-style):
      // comparable to our pipeline without the node-compiler memory
      // optimizations.
      kernel = kernels::kNinePointArraySyntax;
      opts = CompilerOptions::level(3);
      label = "xlhpf/array-syntax";
      break;
    case kOursAnySpec:
    default:
      kernel = kernels::kProblem9;  // any spec: same optimized code
      opts = CompilerOptions::level(4);
      label = "ours/any-specification";
      break;
  }
  Execution exec = make_execution(kernel, opts, sp2_machine(), n);
  exec.run(1);  // warm-up
  Execution::RunStats last;
  for (auto _ : state) {
    last = exec.run(1);
  }
  report_machine_counters(state, last.machine);
  write_phase_metrics("fig18_ninepoint_specs", label, n, last);
  state.SetLabel(label);
}

}  // namespace

BENCHMARK(BM_NinePointSpecs)
    ->ArgNames({"spec", "N"})
    ->ArgsProduct({{0, 1, 2, 3}, {128, 256, 512}})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.3);

BENCHMARK_MAIN();

// Ablation A2: temporary-array storage per stencil specification and
// compiler mode (paper Section 4: 12 temporaries for the
// single-statement 9-point stencil vs 3 for Problem 9 under commercial
// compilers — "this reduces the temporary storage requirements by a
// factor of four!" — and zero after the offset-array optimization).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace hpfsc;
  using namespace hpfsc::bench;
  const int n = 256;

  std::printf("Ablation A2: storage demand per specification (N=%d, "
              "2x2 PEs; one subgrid = %.0f KB)\n\n", n,
              n / 2.0 * (n / 2.0) * sizeof(double) / 1024.0);
  std::printf("  %-18s %-12s %14s %16s %18s\n", "kernel", "mode",
              "shift temps", "arrays survive", "peak per-PE [KB]");

  for (auto [kname, kernel] :
       {std::pair{"ninept-single", kernels::kNinePointCShift},
        {"problem9", kernels::kProblem9},
        {"ninept-array", kernels::kNinePointArraySyntax}}) {
    for (int level : {-1, 4}) {
      Compiler compiler;
      CompilerOptions opts = options_for(level);
      opts.passes.offset.live_out = {"T"};
      CompiledProgram compiled = compiler.compile(kernel, opts);
      int surviving = 0;
      int temps = 0;
      for (const auto& spec : compiled.program.arrays) {
        if (spec.eliminated) continue;
        ++surviving;
        if (spec.is_temp) ++temps;
      }
      simpi::MachineConfig mc = sp2_machine();
      mc.cost.emulate = false;
      Execution exec(std::move(compiled.program), mc);
      exec.prepare(Bindings{}.set("N", n));
      exec.set_array("U", [](int i, int j, int) { return i + 2.0 * j; });
      auto stats = exec.run(1);
      std::printf("  %-18s %-12s %14d %16d %18.1f\n", kname,
                  level_name(level), temps, surviving,
                  static_cast<double>(stats.machine.peak_heap_bytes) /
                      1024.0);
    }
    std::printf("\n");
  }
  return 0;
}

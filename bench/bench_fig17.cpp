// Reproduces paper Figure 17: step-wise results of the stencil
// compilation strategy on Problem 9 (Purdue Set), executed on a
// simulated 4-processor SP-2.
//
// Paper (SP-2, 4 PEs, largest size):
//   original             0.475 s        1.00x
//   + offset arrays      -45%           1.80x
//   + context partition  -31% more      2.64x
//   + comm unioning      -41% more      4.4x
//   + memory opts        -14% more      5.19x
// Expected shape here: monotone improvement with large offset-array and
// communication-unioning steps; absolute factors depend on the cost
// model (see EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace hpfsc;
using namespace hpfsc::bench;

void BM_Problem9(benchmark::State& state) {
  const int level = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Execution exec = make_execution(kernels::kProblem9, options_for(level),
                                  sp2_machine(), n);
  exec.run(1);  // warm-up
  Execution::RunStats last;
  for (auto _ : state) {
    last = exec.run(1);
  }
  report_machine_counters(state, last.machine);
  write_phase_metrics("fig17_problem9", level_name(level), n, last);
  state.SetLabel(level_name(level));
}

}  // namespace

BENCHMARK(BM_Problem9)
    ->ArgNames({"level", "N"})
    ->ArgsProduct({{0, 1, 2, 3, 4}, {128, 256, 512}})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.3);

BENCHMARK_MAIN();

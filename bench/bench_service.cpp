// Service-layer benchmarks: what compile-once/run-many buys.
//
//   BM_ServiceRequestCold — a fresh service per request: full compile
//     (lex -> lower -> passes -> SPMD codegen), plan/prepare, one step.
//   BM_ServiceRequestWarm — steady state: every request hits the plan
//     cache and reuses the session's prepared Execution; only the step
//     itself runs.  The ISSUE acceptance bar is warm >= 10x faster than
//     cold at N=256.
//   BM_ServiceThroughput — requests/second through one shared service
//     at 1/4/8 client threads, all asking for the same plan (pure
//     cache-hit contention on the single-flight path).
//   BM_ServiceThroughputMixedKeys — same, but threads rotate over five
//     distinct (kernel, level) keys, so the cache serves several
//     resident plans concurrently.
//
// The machine does not emulate modeled costs (emulate=false): these
// benchmarks measure the service layer itself — cache, single flight,
// prepare reuse — not the simulated SP-2.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench_common.hpp"
#include "service/service.hpp"

namespace hpfsc::bench {
namespace {

simpi::MachineConfig service_machine() {
  simpi::MachineConfig mc = sp2_machine();
  mc.cost.emulate = false;  // measure the service, not the modeled SP-2
  return mc;
}

service::ServiceRequest problem9_request(int n, int level = 4) {
  service::ServiceRequest req;
  req.source = kernels::kProblem9;
  req.options = options_for(level);
  req.options.passes.offset.live_out = {"T"};
  req.bindings = Bindings{}.set("N", n).set("NSTEPS", 1);
  req.steps = 1;
  req.init = [](Execution& exec) {
    if (exec.program().find_array("U") >= 0) {
      exec.set_array("U",
                     [](int i, int j, int) { return i * 0.25 + j * 0.5; });
    }
  };
  return req;
}

void run_once(service::Session& session, const service::ServiceRequest& req) {
  service::RunRequest run;
  run.plan = session.compile(req.source, req.options);
  run.bindings = req.bindings;
  run.steps = req.steps;
  run.init = req.init;
  benchmark::DoNotOptimize(session.run(run));
}

/// Cold request: a brand-new service and session per iteration, so the
/// compile pipeline, the plan cache insert, and Execution::prepare all
/// run inside the timed region.
void BM_ServiceRequestCold(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const service::ServiceRequest req = problem9_request(n);
  obs::MetricsRegistry agg;  // per-iteration services fold in here
  for (auto _ : state) {
    service::ServiceConfig cfg;
    cfg.machine = service_machine();
    service::StencilService svc(cfg);
    service::Session session(svc);
    run_once(session, req);
    state.PauseTiming();
    agg.merge_from(svc.metrics());
    state.ResumeTiming();
  }
  const obs::Histogram cold = agg.histogram("service.compile.cold_ms");
  state.counters["cold_compile_ms_p50"] = cold.p50();
  state.counters["cold_compile_ms_p99"] = cold.p99();
  write_metrics_jsonl("bench_service/cold", agg);
  state.SetLabel("fresh service: compile + prepare + 1 step");
}
BENCHMARK(BM_ServiceRequestCold)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

/// Warm request: the service and session persist, so every timed
/// iteration is a cache hit against a prepared Execution.
void BM_ServiceRequestWarm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const service::ServiceRequest req = problem9_request(n);
  service::ServiceConfig cfg;
  cfg.machine = service_machine();
  service::StencilService svc(cfg);
  service::Session session(svc);
  run_once(session, req);  // cold request outside the timed region
  for (auto _ : state) {
    run_once(session, req);
  }
  const service::CacheCounters c = svc.cache_counters();
  state.counters["cache_hits"] = static_cast<double>(c.hits);
  state.counters["cache_misses"] = static_cast<double>(c.misses);
  const obs::Histogram warm = svc.metrics().histogram("service.run_ms");
  state.counters["run_ms_p50"] = warm.p50();
  state.counters["run_ms_p99"] = warm.p99();
  write_metrics_jsonl("bench_service/warm", svc.metrics());
  state.SetLabel("steady state: cache hit + reused execution");
}
BENCHMARK(BM_ServiceRequestWarm)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

/// Shared state for the threaded throughput benchmarks.  Benchmark
/// re-enters the function once per thread; thread 0 sets up.
struct SharedService {
  std::unique_ptr<service::StencilService> svc;
};
SharedService g_shared;  // NOLINT: benchmark fixture state

void BM_ServiceThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  if (state.thread_index() == 0) {
    service::ServiceConfig cfg;
    cfg.machine = service_machine();
    g_shared.svc = std::make_unique<service::StencilService>(cfg);
  }
  const service::ServiceRequest req = problem9_request(n);
  // Each client thread owns a Session (independent simpi::Machine);
  // all sessions share the service's plan cache.  Constructed inside
  // the loop: only the first iteration's barrier orders this thread
  // after thread 0's setup above.
  std::unique_ptr<service::Session> session;
  for (auto _ : state) {
    if (!session) {
      session = std::make_unique<service::Session>(*g_shared.svc);
    }
    run_once(*session, req);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    const service::CacheCounters c = g_shared.svc->cache_counters();
    state.counters["cache_hits"] = static_cast<double>(c.hits);
    state.counters["cache_misses"] = static_cast<double>(c.misses);
    state.counters["coalesced"] = static_cast<double>(c.coalesced);
    write_metrics_jsonl("bench_service/throughput", g_shared.svc->metrics());
    g_shared.svc.reset();
  }
}
BENCHMARK(BM_ServiceThroughput)->Arg(256)
    ->Threads(1)->Threads(4)->Threads(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_ServiceThroughputMixedKeys(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  if (state.thread_index() == 0) {
    service::ServiceConfig cfg;
    cfg.machine = service_machine();
    g_shared.svc = std::make_unique<service::StencilService>(cfg);
  }
  // Five distinct cache keys: two kernels at mixed optimization levels.
  const service::ServiceRequest variants[5] = {
      problem9_request(n, 4), problem9_request(n, 2),
      problem9_request(n, 0), problem9_request(n, 3),
      problem9_request(n, 1)};
  std::unique_ptr<service::Session> session;  // see BM_ServiceThroughput
  std::size_t i = static_cast<std::size_t>(state.thread_index());
  for (auto _ : state) {
    if (!session) {
      session = std::make_unique<service::Session>(*g_shared.svc);
    }
    run_once(*session, variants[i % 5]);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    const service::CacheCounters c = g_shared.svc->cache_counters();
    state.counters["cache_hits"] = static_cast<double>(c.hits);
    state.counters["cache_misses"] = static_cast<double>(c.misses);
    state.counters["coalesced"] = static_cast<double>(c.coalesced);
    g_shared.svc.reset();
  }
}
BENCHMARK(BM_ServiceThroughputMixedKeys)->Arg(256)
    ->Threads(1)->Threads(4)->Threads(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hpfsc::bench

BENCHMARK_MAIN();

// A/B/C benchmark for the kernel executor tiers: the same compiled
// program run with the per-element bytecode interpreter
// (KernelTier::InterpreterOnly, tier 0), the compiled weighted-sum
// microkernels (KernelTier::Auto, tier 1), and the vectorized
// cache-blocked kernels (KernelTier::Simd, tier 2).
//
// Unlike the figure benchmarks this uses a *non-emulating* machine
// (modeled costs are counted but not busy-waited), so wall time
// measures the host's real compute speed — the quantity the upper
// tiers improve.  Acceptance targets: tier 1 >= 2x tier 0 on the
// fig17/fig18 kernels at large subgrid sizes; tier 2 >= 1.2x tier 1 on
// at least 3 of the 5 paper kernels at N=1024 (the jacobi nest drains
// to the interpreter in both upper tiers, so it is pinned ~1x).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "bench_common.hpp"
#include "executor/wait_profile.hpp"
#include "obs/flight_recorder.hpp"

namespace {

using namespace hpfsc;
using namespace hpfsc::bench;

simpi::MachineConfig compute_machine() {
  simpi::MachineConfig mc = sp2_machine();
  mc.cost.emulate = false;  // measure host compute, not modeled waits
  return mc;
}

const char* tier_name(int tier) {
  return tier == 0 ? "interpreter" : tier == 1 ? "compiled" : "simd";
}

KernelTier tier_enum(int tier) {
  return tier == 0   ? KernelTier::InterpreterOnly
         : tier == 1 ? KernelTier::Auto
                     : KernelTier::Simd;
}

void run_tier_bench(benchmark::State& state, const char* bench_name,
                    const char* kernel,
                    std::vector<std::string> live_out = {"T"},
                    Bindings extra = {}) {
  const int tier = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Execution exec =
      make_execution(kernel, CompilerOptions::level(4), compute_machine(), n,
                     std::move(live_out), std::move(extra));
  exec.set_kernel_tier(tier_enum(tier));
  if (exec.program().find_array("SRC") >= 0) {
    exec.set_array("SRC",
                   [](int i, int j, int) { return i * 0.25 + j * 0.5; });
  }
  exec.run(1);  // warm-up
  Execution::RunStats last;
  for (auto _ : state) {
    last = exec.run(1);
  }
  report_machine_counters(state, last.machine);
  state.counters["compiled_elements"] =
      static_cast<double>(last.tier.compiled_elements);
  state.counters["interpreter_elements"] =
      static_cast<double>(last.tier.interpreter_elements);
  state.counters["simd_elements"] =
      static_cast<double>(last.tier.simd_elements);
  // Roofline coordinates: bytes moved = kernel loop traffic + network
  // traffic (both tier-invariant counted statistics), flops from the
  // plan-derived tally.  GFLOP/s uses the benchmark's own timing so it
  // reflects the measured loop, not just the last run.
  const double flops = static_cast<double>(last.tier.flops);
  const double bytes = static_cast<double>(last.machine.kernel_ref_bytes +
                                           last.machine.bytes_sent);
  state.counters["flops"] = flops;
  // Arithmetic intensity is undefined for zero-FLOP (copy/shift-only)
  // plans: skip the counter rather than publish inf/NaN.
  if (flops > 0.0) {
    state.counters["bytes_per_flop"] = bytes / flops;
  }
  // From the run's own wall clock (the benchmark's CPU-time counters
  // exclude the PE worker threads, which is where the flops happen).
  state.counters["gflops"] =
      last.wall_seconds > 0.0 ? flops / last.wall_seconds / 1e9 : 0.0;
  write_phase_metrics(bench_name, tier_name(tier), n, last);
  state.SetLabel(tier_name(tier));
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

// Flight-recorder cost check: the same run with the recorder enabled
// versus disabled, interleaved within one benchmark so host drift hits
// both arms equally.  Reports recorder_overhead_ratio (median-on /
// median-off); the CI bench-smoke job asserts it stays under 1.03.
void BM_FlightRecorderOverhead(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Execution exec = make_execution(kernels::kProblem9,
                                  CompilerOptions::level(4),
                                  compute_machine(), n);
  exec.run(1);  // warm-up
  auto& rec = obs::FlightRecorder::instance();
  const bool was_enabled = rec.enabled();
  std::vector<double> on_walls;
  std::vector<double> off_walls;
  for (auto _ : state) {
    rec.set_enabled(true);
    on_walls.push_back(exec.run(1).wall_seconds);
    rec.set_enabled(false);
    off_walls.push_back(exec.run(1).wall_seconds);
  }
  rec.set_enabled(was_enabled);
  const double off = median(off_walls);
  const double ratio = off > 0.0 ? median(on_walls) / off : 1.0;
  state.counters["recorder_overhead_ratio"] = ratio;
  const char* path = std::getenv("HPFSC_BENCH_JSON");
  if (path && *path) {
    std::ofstream f(path, std::ios::app);
    if (f) {
      f << "{\"bench\":\"flight_recorder_overhead\",\"n\":" << n
        << ",\"recorder_overhead_ratio\":" << obs::json_number(ratio)
        << "}\n";
    }
  }
  state.SetLabel("on-vs-off");
}

// Wait-state instrumentation cost check: the same run with nanosecond
// wait attribution enabled versus disabled, interleaved within one
// benchmark so host drift hits both arms equally.  Reports
// wait_overhead_ratio (median-on / median-off); the CI profile-smoke
// job asserts it stays under 1.05.
void BM_WaitInstrumentationOverhead(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Execution exec = make_execution(kernels::kProblem9,
                                  CompilerOptions::level(4),
                                  compute_machine(), n);
  exec.run(1);  // warm-up
  std::vector<double> on_walls;
  std::vector<double> off_walls;
  for (auto _ : state) {
    exec.machine().set_wait_timing(true);
    on_walls.push_back(exec.run(1).wall_seconds);
    exec.machine().set_wait_timing(false);
    off_walls.push_back(exec.run(1).wall_seconds);
  }
  exec.machine().set_wait_timing(true);
  const double off = median(off_walls);
  const double ratio = off > 0.0 ? median(on_walls) / off : 1.0;
  state.counters["wait_overhead_ratio"] = ratio;
  const char* path = std::getenv("HPFSC_BENCH_JSON");
  if (path && *path) {
    std::ofstream f(path, std::ios::app);
    if (f) {
      f << "{\"bench\":\"wait_instrumentation_overhead\",\"n\":" << n
        << ",\"wait_overhead_ratio\":" << obs::json_number(ratio) << "}\n";
    }
  }
  state.SetLabel("on-vs-off");
}

// Overlap A/B: the same kernel and tier under the synchronous vs the
// asynchronous comm backend (halo exchange overlapped with interior
// compute).  The gated quantity is the message counters: deferral must
// move *timing only*, so "messages" for the async arm must equal the
// sync arm's — bench_gate's any-growth-fails rule pins that once both
// arms are in the baseline.  exposed_comm_fraction is reported for the
// A/B table in EXPERIMENTS.md but not gated (wall-clock waits on a
// shared CI host are too noisy to threshold).
void run_backend_bench(benchmark::State& state, const char* bench_name,
                       const char* kernel,
                       std::vector<std::string> live_out = {"T"},
                       Bindings extra = {}) {
  const int backend = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Execution exec =
      make_execution(kernel, CompilerOptions::level(4), compute_machine(), n,
                     std::move(live_out), std::move(extra));
  exec.machine().set_comm_backend(backend ? simpi::CommBackendKind::Async
                                          : simpi::CommBackendKind::Sync);
  if (exec.program().find_array("SRC") >= 0) {
    exec.set_array("SRC",
                   [](int i, int j, int) { return i * 0.25 + j * 0.5; });
  }
  exec.run(1);  // warm-up
  Execution::RunStats last;
  for (auto _ : state) {
    last = exec.run(1);
  }
  report_machine_counters(state, last.machine);
  const WaitProfile profile = WaitProfile::from_run(last);
  state.counters["exposed_comm_fraction"] = profile.exposed_comm_fraction;
  state.counters["overlap_wait_ms"] =
      static_cast<double>(last.machine.wait.overlap_wait_ns) / 1e6;
  write_phase_metrics(bench_name, backend ? "async" : "sync", n, last);
  state.SetLabel(backend ? "async" : "sync");
}

void BM_Problem9Tier(benchmark::State& state) {
  run_tier_bench(state, "kernel_tier_problem9", kernels::kProblem9);
}

void BM_NinePointCShiftTier(benchmark::State& state) {
  run_tier_bench(state, "kernel_tier_ninepoint_cshift",
                 kernels::kNinePointCShift);
}

void BM_NinePointArrayTier(benchmark::State& state) {
  run_tier_bench(state, "kernel_tier_ninepoint_array",
                 kernels::kNinePointArraySyntax);
}

void BM_FivePointTier(benchmark::State& state) {
  run_tier_bench(state, "kernel_tier_fivepoint",
                 kernels::kFivePointArraySyntax, {"DST"},
                 Bindings{}
                     .set("C1", 0.1)
                     .set("C2", 0.2)
                     .set("C3", 0.4)
                     .set("C4", 0.2)
                     .set("C5", 0.1));
}

void BM_JacobiTier(benchmark::State& state) {
  // Pinned ~1x across tiers by design: O4's statement fusion jams the
  // T-update and U=T into one nest with a genuine element-order
  // read-after-write on U, which no compiled tier can reproduce bitwise
  // — the dominant nest runs interpreted in every tier.  (O3 does not
  // help either: CSHIFT temp materialization dominates there.)
  run_tier_bench(state, "kernel_tier_jacobi", kernels::kJacobiTimeLoop,
                 {"U", "T"}, Bindings{}.set("NSTEPS", 1));
}

void BM_FivePointBackend(benchmark::State& state) {
  run_backend_bench(state, "comm_backend_fivepoint",
                    kernels::kFivePointArraySyntax, {"DST"},
                    Bindings{}
                        .set("C1", 0.1)
                        .set("C2", 0.2)
                        .set("C3", 0.4)
                        .set("C4", 0.2)
                        .set("C5", 0.1));
}

void BM_JacobiBackend(benchmark::State& state) {
  run_backend_bench(state, "comm_backend_jacobi", kernels::kJacobiTimeLoop,
                    {"U", "T"}, Bindings{}.set("NSTEPS", 1));
}

void BM_NinePointArrayBackend(benchmark::State& state) {
  run_backend_bench(state, "comm_backend_ninepoint_array",
                    kernels::kNinePointArraySyntax);
}

}  // namespace

BENCHMARK(BM_Problem9Tier)
    ->ArgNames({"tier", "N"})
    ->ArgsProduct({{0, 1, 2}, {256, 512, 1024}})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.3);

BENCHMARK(BM_NinePointCShiftTier)
    ->ArgNames({"tier", "N"})
    ->ArgsProduct({{0, 1, 2}, {256, 512, 1024}})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.3);

BENCHMARK(BM_NinePointArrayTier)
    ->ArgNames({"tier", "N"})
    ->ArgsProduct({{0, 1, 2}, {1024}})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.3);

BENCHMARK(BM_FivePointTier)
    ->ArgNames({"tier", "N"})
    ->ArgsProduct({{0, 1, 2}, {1024}})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.3);

BENCHMARK(BM_JacobiTier)
    ->ArgNames({"tier", "N"})
    ->ArgsProduct({{0, 1, 2}, {1024}})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.3);

BENCHMARK(BM_FivePointBackend)
    ->ArgNames({"backend", "N"})
    ->ArgsProduct({{0, 1}, {1024}})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.3);

BENCHMARK(BM_JacobiBackend)
    ->ArgNames({"backend", "N"})
    ->ArgsProduct({{0, 1}, {1024}})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.3);

BENCHMARK(BM_NinePointArrayBackend)
    ->ArgNames({"backend", "N"})
    ->ArgsProduct({{0, 1}, {1024}})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.3);

BENCHMARK(BM_FlightRecorderOverhead)
    ->ArgNames({"N"})
    ->Arg(512)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.3);

BENCHMARK(BM_WaitInstrumentationOverhead)
    ->ArgNames({"N"})
    ->Arg(512)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.3);

BENCHMARK_MAIN();

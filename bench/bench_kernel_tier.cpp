// A/B benchmark for the two-tier kernel executor: the same compiled
// program run with the per-element bytecode interpreter
// (KernelTier::InterpreterOnly) versus the compiled weighted-sum
// microkernels (KernelTier::Auto).
//
// Unlike the figure benchmarks this uses a *non-emulating* machine
// (modeled costs are counted but not busy-waited), so wall time
// measures the host's real compute speed — the quantity the compiled
// tier improves.  Acceptance target: >= 2x on the fig17/fig18 kernels
// at large subgrid sizes.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace hpfsc;
using namespace hpfsc::bench;

simpi::MachineConfig compute_machine() {
  simpi::MachineConfig mc = sp2_machine();
  mc.cost.emulate = false;  // measure host compute, not modeled waits
  return mc;
}

const char* tier_name(int tier) {
  return tier == 0 ? "interpreter" : "compiled";
}

void run_tier_bench(benchmark::State& state, const char* bench_name,
                    const char* kernel) {
  const int tier = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Execution exec = make_execution(kernel, CompilerOptions::level(4),
                                  compute_machine(), n);
  exec.set_kernel_tier(tier == 0 ? KernelTier::InterpreterOnly
                                 : KernelTier::Auto);
  exec.run(1);  // warm-up
  Execution::RunStats last;
  for (auto _ : state) {
    last = exec.run(1);
  }
  report_machine_counters(state, last.machine);
  state.counters["compiled_elements"] =
      static_cast<double>(last.tier.compiled_elements);
  state.counters["interpreter_elements"] =
      static_cast<double>(last.tier.interpreter_elements);
  write_phase_metrics(bench_name, tier_name(tier), n, last);
  state.SetLabel(tier_name(tier));
}

void BM_Problem9Tier(benchmark::State& state) {
  run_tier_bench(state, "kernel_tier_problem9", kernels::kProblem9);
}

void BM_NinePointCShiftTier(benchmark::State& state) {
  run_tier_bench(state, "kernel_tier_ninepoint_cshift",
                 kernels::kNinePointCShift);
}

}  // namespace

BENCHMARK(BM_Problem9Tier)
    ->ArgNames({"tier", "N"})
    ->ArgsProduct({{0, 1}, {256, 512, 1024}})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.3);

BENCHMARK(BM_NinePointCShiftTier)
    ->ArgNames({"tier", "N"})
    ->ArgsProduct({{0, 1}, {256, 512, 1024}})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.3);

BENCHMARK_MAIN();

#include <gtest/gtest.h>

#include "support/diagnostics.hpp"
#include "support/text.hpp"

namespace hpfsc {
namespace {

TEST(Diagnostics, CollectsAndCountsErrors) {
  DiagnosticEngine diags;
  EXPECT_FALSE(diags.has_errors());
  diags.warning({1, 2}, "careful");
  EXPECT_FALSE(diags.has_errors());
  diags.error({3, 4}, "broken");
  diags.note({}, "context");
  EXPECT_TRUE(diags.has_errors());
  EXPECT_EQ(diags.error_count(), 1u);
  EXPECT_EQ(diags.all().size(), 3u);
}

TEST(Diagnostics, RenderFormat) {
  DiagnosticEngine diags;
  diags.error({3, 14}, "unexpected thing");
  EXPECT_EQ(diags.render_all(), "error at 3:14: unexpected thing\n");
  diags.clear();
  EXPECT_FALSE(diags.has_errors());
  EXPECT_EQ(diags.render_all(), "");
}

TEST(Diagnostics, GeneratedLocation) {
  Diagnostic d{Severity::Warning, {}, "synthesized"};
  EXPECT_EQ(d.render(), "warning: synthesized");
}

TEST(Text, ToUpper) {
  EXPECT_EQ(to_upper("cshift"), "CSHIFT");
  EXPECT_EQ(to_upper("MiXeD_123"), "MIXED_123");
  EXPECT_EQ(to_upper(""), "");
}

TEST(Text, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"x"}, ", "), "x");
}

TEST(Text, SignedStr) {
  EXPECT_EQ(signed_str(1), "+1");
  EXPECT_EQ(signed_str(-2), "-2");
  EXPECT_EQ(signed_str(0), "+0");
}

TEST(Text, SplitLines) {
  EXPECT_EQ(split_lines("a\nb\n"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(split_lines("a\nb"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(split_lines(""), (std::vector<std::string>{}));
  EXPECT_EQ(split_lines("\n\n"), (std::vector<std::string>{"", ""}));
}

TEST(Text, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t a b \t"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(SourceLoc, ValidityAndString) {
  SourceLoc none;
  EXPECT_FALSE(none.valid());
  EXPECT_EQ(to_string(none), "<generated>");
  SourceLoc loc{7, 12};
  EXPECT_TRUE(loc.valid());
  EXPECT_EQ(to_string(loc), "7:12");
}

}  // namespace
}  // namespace hpfsc

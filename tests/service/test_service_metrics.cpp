// Service-level latency histograms: cold/warm compile, run, and
// end-to-end request durations recorded into StencilService::metrics().
#include "service/service.hpp"

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "driver/paper_kernels.hpp"
#include "obs/metrics.hpp"

namespace hpfsc::service {
namespace {

ServiceConfig tiny_config() {
  ServiceConfig cfg;
  cfg.machine.pe_rows = 2;
  cfg.machine.pe_cols = 2;
  return cfg;
}

CompilerOptions o4() {
  CompilerOptions opts = CompilerOptions::level(4);
  opts.passes.offset.live_out = {"T"};
  return opts;
}

TEST(ServiceMetrics, ColdAndWarmCompilesLandInSeparateHistograms) {
  StencilService svc(tiny_config());
  EXPECT_EQ(svc.metrics().histogram("service.compile.cold_ms").count(), 0u);

  svc.compile(kernels::kProblem9, o4());  // miss -> cold
  svc.compile(kernels::kProblem9, o4());  // hit -> warm
  svc.compile(kernels::kProblem9, o4());  // hit -> warm

  const obs::Histogram cold =
      svc.metrics().histogram("service.compile.cold_ms");
  const obs::Histogram warm =
      svc.metrics().histogram("service.compile.warm_ms");
  EXPECT_EQ(cold.count(), 1u);
  EXPECT_EQ(warm.count(), 2u);
  EXPECT_GT(cold.max(), 0.0);
  // A warm hit skips the whole compile pipeline; it must not be slower
  // than the cold compile that built the plan.
  EXPECT_LE(warm.p50(), cold.p50());
}

TEST(ServiceMetrics, SessionRunRecordsRunHistogram) {
  StencilService svc(tiny_config());
  Session session(svc);
  RunRequest req;
  req.plan = session.compile(kernels::kProblem9, o4());
  req.bindings = Bindings{}.set("N", 16);
  req.steps = 1;
  req.init = [](Execution& exec) {
    exec.set_array("U", [](int i, int j, int) { return i + 2.0 * j; });
  };
  session.run(req);
  session.run(req);
  EXPECT_EQ(svc.metrics().histogram("service.run_ms").count(), 2u);
}

TEST(ServiceMetrics, PoolRequestsRecordEndToEndHistogram) {
  StencilService svc(tiny_config());
  {
    ServicePool pool(svc, 2);
    std::vector<std::future<ServiceResponse>> futures;
    for (int i = 0; i < 4; ++i) {
      ServiceRequest req;
      req.source = kernels::kProblem9;
      req.options = o4();
      req.bindings = Bindings{}.set("N", 16);
      req.steps = 1;
      req.init = [](Execution& exec) {
        exec.set_array("U", [](int i, int j, int) { return i + 2.0 * j; });
      };
      futures.push_back(pool.submit(std::move(req)));
    }
    for (auto& f : futures) f.get();
  }
  const obs::Histogram request =
      svc.metrics().histogram("service.request_ms");
  EXPECT_EQ(request.count(), 4u);
  // The request span covers compile-or-fetch + run, so its slowest
  // sample dominates the slowest bare run.
  EXPECT_GE(request.max(),
            svc.metrics().histogram("service.run_ms").max());
  EXPECT_EQ(svc.metrics().histogram("service.compile.cold_ms").count(), 1u);
}

TEST(ServiceMetrics, FailedCompileRecordsNothing) {
  StencilService svc(tiny_config());
  EXPECT_THROW(svc.compile("PROGRAM BAD\nsyntax error here\n", o4()),
               CompileError);
  EXPECT_EQ(svc.metrics().histogram("service.compile.cold_ms").count(), 0u);
  EXPECT_EQ(svc.metrics().histogram("service.compile.warm_ms").count(), 0u);
}

TEST(ServiceMetrics, CacheCountersAreMirroredAsGauges) {
  StencilService svc(tiny_config());
  svc.compile(kernels::kProblem9, o4());  // miss
  svc.compile(kernels::kProblem9, o4());  // hit
  svc.compile(kernels::kProblem9, o4());  // hit
  EXPECT_EQ(svc.metrics().gauge("service.cache.miss"), 1.0);
  EXPECT_EQ(svc.metrics().gauge("service.cache.hit"), 2.0);
  EXPECT_EQ(svc.metrics().gauge("service.cache.evict"), 0.0);
  // The gauges ride the normal metrics exports, so cache traffic is
  // visible through --metrics-out/--prom-out without a trace session.
  const std::string json = svc.metrics().to_json();
  EXPECT_NE(json.find("service.cache.hit"), std::string::npos);
  const std::string prom = svc.metrics().to_prometheus();
  EXPECT_NE(prom.find("hpfsc_service_cache_hit"), std::string::npos);
}

TEST(ServiceMetrics, EvictionAndWarmGaugesTrack) {
  ServiceConfig cfg = tiny_config();
  cfg.cache_capacity = 1;
  StencilService svc(cfg);
  PlanHandle first = svc.compile(kernels::kProblem9, o4());
  svc.compile(kernels::kJacobiTimeLoop, CompilerOptions::level(4));
  EXPECT_EQ(svc.metrics().gauge("service.cache.evict"), 1.0);
  svc.cache().insert(first->key, first);
  EXPECT_EQ(svc.metrics().gauge("service.cache.warmed"), 1.0);
}

TEST(ServiceMetrics, RegistryExportsCarryServiceNames) {
  StencilService svc(tiny_config());
  svc.compile(kernels::kProblem9, o4());
  const std::string json = svc.metrics().to_json();
  EXPECT_NE(json.find("service.compile.cold_ms"), std::string::npos);
  const std::string prom = svc.metrics().to_prometheus();
  EXPECT_NE(prom.find("hpfsc_service_compile_cold_ms{quantile=\"0.99\"}"),
            std::string::npos);
  const std::string summary = svc.metrics().summary();
  EXPECT_NE(summary.find("service.compile.cold_ms: count=1"),
            std::string::npos);
}

}  // namespace
}  // namespace hpfsc::service

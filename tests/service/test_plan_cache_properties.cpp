// PlanCache property tests driven by the difftest generator: instead of
// hand-picked sources, a batch of seeded random stencil programs checks
// the cache's two load-bearing promises over the whole program family —
//   1. content addressing quotients out identifier spelling: a program
//      and its alpha-renamed twin share exactly one cache entry, and
//   2. LRU eviction followed by re-request round-trips the plan under
//      single-flight: each re-insert costs exactly one compilation no
//      matter how many threads race for it.
// Extends the hand-written suites in test_plan_cache.cpp and
// test_service_stress.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "difftest/generator.hpp"
#include "service/cache_key.hpp"
#include "service/plan_cache.hpp"
#include "service/service.hpp"
#include "simpi/config.hpp"

namespace hpfsc::service {
namespace {

/// Oracle-equivalent options: every program array is live so the
/// optimizer keeps all state, and the set's *spelling* follows the
/// naming scheme — the cache key must canonicalize it away.
CompilerOptions opts_for(const difftest::ProgramSpec& spec, int level,
                         bool alt) {
  CompilerOptions o = CompilerOptions::level(level);
  for (int i = 0; i < spec.num_inputs; ++i) {
    o.passes.offset.live_out.push_back(difftest::input_name(i, alt));
  }
  for (const std::string& name : difftest::live_out_names(spec, alt)) {
    o.passes.offset.live_out.push_back(name);
  }
  return o;
}

TEST(PlanCacheProperties, AlphaRenamedTwinsShareOneCacheEntry) {
  constexpr int kSeeds = 24;
  ServiceConfig config;
  config.cache_capacity = kSeeds + 1;
  StencilService service(std::move(config));

  std::uint64_t expected_misses = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const difftest::ProgramSpec spec = difftest::generate(seed);
    CacheOutcome plain_outcome;
    PlanHandle plain =
        service.compile(difftest::render(spec, false),
                        opts_for(spec, 3, false), &plain_outcome);
    // Distinct seeds may (rarely) generate identical programs; only a
    // genuinely new program costs a compilation.
    if (plain_outcome == CacheOutcome::Miss) ++expected_misses;

    const std::size_t size_before_twin = service.cache_size();
    CacheOutcome twin_outcome;
    PlanHandle twin =
        service.compile(difftest::render(spec, true),
                        opts_for(spec, 3, true), &twin_outcome);
    // The twin lands on the plain program's entry: a hit, the same
    // canonical key, and no new resident plan.  (The handle itself is a
    // copy renamed into the twin's vocabulary, so pointers differ; a
    // same-vocabulary repeat below shares the handle outright.)
    EXPECT_EQ(twin_outcome, CacheOutcome::Hit)
        << "seed " << seed << ": alpha twin missed the cache";
    EXPECT_EQ(twin->key.canonical, plain->key.canonical) << "seed " << seed;
    EXPECT_NE(twin->key.iface, plain->key.iface) << "seed " << seed;
    EXPECT_EQ(service.cache_size(), size_before_twin)
        << "seed " << seed << ": twin inserted a second entry";

    CacheOutcome repeat_outcome;
    PlanHandle repeat =
        service.compile(difftest::render(spec, false),
                        opts_for(spec, 3, false), &repeat_outcome);
    EXPECT_EQ(repeat_outcome, CacheOutcome::Hit) << "seed " << seed;
    EXPECT_EQ(repeat.get(), plain.get())
        << "seed " << seed << ": same-vocabulary repeat must share the "
        << "cached handle";
  }

  const CacheCounters c = service.cache_counters();
  EXPECT_EQ(c.misses, expected_misses);
  EXPECT_EQ(c.hits + c.misses, 3u * kSeeds);
  EXPECT_EQ(c.coalesced, 0u);
  EXPECT_EQ(c.evictions, 0u);
  EXPECT_EQ(service.cache_size(), expected_misses);
}

TEST(PlanCacheProperties, LruEvictReinsertRoundTripsUnderSingleFlight) {
  // Three generated programs cycled through a capacity-2 cache: every
  // burst of concurrent requests for the evicted key must re-insert it
  // with exactly one compilation (leader), everyone else coalescing or
  // hitting, and the re-inserted plan must carry the requested key.
  constexpr int kThreads = 8;
  constexpr int kRounds = 6;
  const simpi::MachineConfig mc;

  std::vector<CacheKey> keys;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const difftest::ProgramSpec spec = difftest::generate(seed);
    keys.push_back(make_cache_key(difftest::render(spec, false),
                                  opts_for(spec, 3, false), mc));
  }
  ASSERT_NE(keys[0].canonical, keys[1].canonical);
  ASSERT_NE(keys[1].canonical, keys[2].canonical);
  ASSERT_NE(keys[0].canonical, keys[2].canonical);

  PlanCache cache(2);
  std::atomic<std::uint64_t> compiles{0};
  std::uint64_t total_calls = 0;

  for (int round = 0; round < kRounds; ++round) {
    for (const CacheKey& key : keys) {
      const bool resident_before = cache.lookup(key) != nullptr;
      const CacheCounters before = cache.counters();

      std::vector<PlanHandle> handles(kThreads);
      std::vector<CacheOutcome> outcomes(kThreads);
      std::vector<std::thread> threads;
      threads.reserve(kThreads);
      for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
          handles[t] = cache.get_or_compile(
              key,
              [&] {
                compiles.fetch_add(1, std::memory_order_relaxed);
                std::this_thread::sleep_for(std::chrono::milliseconds(2));
                auto plan = std::make_shared<CachedPlan>();
                plan->key = key;
                return PlanHandle(plan);
              },
              &outcomes[t]);
        });
      }
      for (std::thread& thread : threads) thread.join();
      total_calls += kThreads;

      const CacheCounters after = cache.counters();
      const std::uint64_t burst_misses = after.misses - before.misses;
      if (resident_before) {
        EXPECT_EQ(burst_misses, 0u) << "round " << round;
      } else {
        EXPECT_EQ(burst_misses, 1u)
            << "round " << round << ": eviction round-trip must cost "
            << "exactly one leader compilation";
      }
      // Single flight: every request got the one leader's plan.
      for (int t = 1; t < kThreads; ++t) {
        EXPECT_EQ(handles[t].get(), handles[0].get());
      }
      ASSERT_NE(handles[0], nullptr);
      EXPECT_EQ(handles[0]->key.canonical, key.canonical);
      // The key is resident again after the burst (most recently used,
      // so the *other* two keys are the eviction candidates).
      EXPECT_NE(cache.lookup(key), nullptr);
      EXPECT_LE(cache.size(), 2u);
    }
  }

  const CacheCounters c = cache.counters();
  // The compile functor ran exactly once per miss, ever.
  EXPECT_EQ(compiles.load(), c.misses);
  // Every call is accounted for as exactly one of hit/miss/coalesced
  // (lookup() peeks are uncounted by contract).
  EXPECT_EQ(c.hits + c.misses + c.coalesced, total_calls);
  // First round inserts 3 keys into capacity 2, and every later round
  // begins with the burst key evicted (cycling 3 keys through 2 slots
  // evicts the oldest each time), so misses = one per key per round.
  EXPECT_EQ(c.misses, static_cast<std::uint64_t>(3 * kRounds));
  EXPECT_EQ(c.evictions, c.misses - 2u);
}

}  // namespace
}  // namespace hpfsc::service

// Cache-key canonicalization: keys address content (lowered IR +
// options + machine), not source bytes.
#include "service/cache_key.hpp"

#include <gtest/gtest.h>

#include "driver/paper_kernels.hpp"

namespace hpfsc::service {
namespace {

simpi::MachineConfig machine_2x2() {
  simpi::MachineConfig mc;
  mc.pe_rows = 2;
  mc.pe_cols = 2;
  return mc;
}

TEST(CacheKey, WhitespaceAndCommentDifferencesShareAKey) {
  // The same 5-point stencil, written three ways: reference formatting,
  // extra blank lines + indentation + a comment, and different line
  // continuation splits.  All lower to identical IR.
  const char* reference = kernels::kFivePointArraySyntax;
  const char* reformatted = R"(
PROGRAM FIVEPT
INTEGER N

REAL C1, C2, C3, C4, C5
REAL SRC(N,N), DST(N,N)
!HPF$ DISTRIBUTE SRC(BLOCK,BLOCK)
!HPF$ DISTRIBUTE DST(BLOCK,BLOCK)

DST(2:N-1,2:N-1) = C1 * SRC(1:N-2,2:N-1) + C2 * SRC(2:N-1,1:N-2)  &
    + C3 * SRC(2:N-1,2:N-1)  &
    + C4 * SRC(3:N  ,2:N-1) + C5 * SRC(2:N-1,3:N  )
END
)";
  const CompilerOptions opts = CompilerOptions::level(4);
  const simpi::MachineConfig mc = machine_2x2();
  const CacheKey a = make_cache_key(reference, opts, mc);
  const CacheKey b = make_cache_key(reformatted, opts, mc);
  EXPECT_EQ(a.canonical, b.canonical);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a, b);
}

TEST(CacheKey, DifferentProgramsDiffer) {
  const CompilerOptions opts = CompilerOptions::level(4);
  const simpi::MachineConfig mc = machine_2x2();
  const CacheKey a = make_cache_key(kernels::kProblem9, opts, mc);
  const CacheKey b = make_cache_key(kernels::kNinePointCShift, opts, mc);
  EXPECT_NE(a.canonical, b.canonical);
}

TEST(CacheKey, OptionsAffectTheKey) {
  const simpi::MachineConfig mc = machine_2x2();
  const CacheKey o4 =
      make_cache_key(kernels::kProblem9, CompilerOptions::level(4), mc);
  const CacheKey o0 =
      make_cache_key(kernels::kProblem9, CompilerOptions::level(0), mc);
  const CacheKey xl =
      make_cache_key(kernels::kProblem9, CompilerOptions::xlhpf_like(), mc);
  EXPECT_NE(o4.canonical, o0.canonical);
  EXPECT_NE(o4.canonical, xl.canonical);
  EXPECT_NE(o0.canonical, xl.canonical);

  CompilerOptions live = CompilerOptions::level(4);
  live.passes.offset.live_out = {"T"};
  const CacheKey with_live = make_cache_key(kernels::kProblem9, live, mc);
  EXPECT_NE(o4.canonical, with_live.canonical);
}

TEST(CacheKey, LiveOutIsCanonicalizedAsASet) {
  const simpi::MachineConfig mc = machine_2x2();
  CompilerOptions a = CompilerOptions::level(4);
  a.passes.offset.live_out = {"T", "U", "T"};
  CompilerOptions b = CompilerOptions::level(4);
  b.passes.offset.live_out = {"U", "T"};
  EXPECT_EQ(make_cache_key(kernels::kProblem9, a, mc).canonical,
            make_cache_key(kernels::kProblem9, b, mc).canonical);
}

TEST(CacheKey, MachineConfigAffectsTheKey) {
  const CompilerOptions opts = CompilerOptions::level(4);
  simpi::MachineConfig a = machine_2x2();
  simpi::MachineConfig b = machine_2x2();
  b.pe_cols = 4;
  EXPECT_NE(make_cache_key(kernels::kProblem9, opts, a).canonical,
            make_cache_key(kernels::kProblem9, opts, b).canonical);
  simpi::MachineConfig c = machine_2x2();
  c.cost.emulate = true;
  EXPECT_NE(make_cache_key(kernels::kProblem9, opts, a).canonical,
            make_cache_key(kernels::kProblem9, opts, c).canonical);
}

TEST(CacheKey, TraceSessionDoesNotAffectTheKey) {
  obs::TraceSession session;
  CompilerOptions with_trace = CompilerOptions::level(4);
  with_trace.trace = &session;
  const simpi::MachineConfig mc = machine_2x2();
  EXPECT_EQ(
      make_cache_key(kernels::kProblem9, CompilerOptions::level(4), mc)
          .canonical,
      make_cache_key(kernels::kProblem9, with_trace, mc).canonical);
}

TEST(CacheKey, FrontendErrorThrowsCompileError) {
  EXPECT_THROW(make_cache_key("T = = B\n", CompilerOptions::level(4),
                              machine_2x2()),
               CompileError);
}

}  // namespace
}  // namespace hpfsc::service

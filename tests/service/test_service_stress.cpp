// Concurrency stress for the service layer: ≥ 8 client threads issuing
// mixed duplicate/distinct requests must trigger exactly one
// compilation per distinct key (single flight), keep every cache
// counter consistent, and emit trace records without corruption.  The
// TSan CI job runs these tests under -fsanitize=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "driver/paper_kernels.hpp"
#include "obs/sinks.hpp"
#include "service/service.hpp"

namespace hpfsc::service {
namespace {

CacheKey key_of(const std::string& canonical) {
  CacheKey k;
  k.canonical = canonical;
  k.hash = fnv1a(canonical);
  return k;
}

TEST(ServiceStress, SingleFlightCoalescesAllConcurrentRequests) {
  // Deterministic coalescing: the leader's compile blocks until every
  // other thread has joined the flight (they must coalesce — the entry
  // is not in the cache until the factory returns), so the counters
  // are exact, not racy lower bounds.
  constexpr int kThreads = 8;
  PlanCache cache(4);
  const CacheKey key = key_of("K");
  std::atomic<int> compiles{0};
  auto factory = [&]() -> PlanHandle {
    compiles.fetch_add(1);
    while (cache.counters().coalesced <
           static_cast<std::uint64_t>(kThreads - 1)) {
      std::this_thread::yield();
    }
    auto plan = std::make_shared<CachedPlan>();
    plan->key = key;
    return plan;
  };

  std::vector<PlanHandle> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&, t] { results[static_cast<std::size_t>(t)] =
                     cache.get_or_compile(key, factory); });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(compiles.load(), 1);
  const CacheCounters c = cache.counters();
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.coalesced, static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(c.hits, 0u);
  for (const PlanHandle& h : results) {
    EXPECT_EQ(h.get(), results[0].get());
  }
}

struct Variant {
  const char* source;
  int level;
};

std::vector<Variant> mixed_variants() {
  return {
      {kernels::kProblem9, 4},        {kernels::kProblem9, 2},
      {kernels::kNinePointCShift, 4}, {kernels::kNinePointArraySyntax, 4},
      {kernels::kJacobiTimeLoop, 4},
  };
}

CompilerOptions options_for(const Variant& v) {
  CompilerOptions opts = CompilerOptions::level(v.level);
  opts.passes.offset.live_out = {"T"};
  return opts;
}

ServiceConfig stress_config(obs::TraceSession* trace) {
  ServiceConfig cfg;
  cfg.machine.pe_rows = 1;
  cfg.machine.pe_cols = 2;
  cfg.trace = trace;
  return cfg;
}

ServiceRequest request_for(const Variant& v) {
  ServiceRequest req;
  req.source = v.source;
  req.options = options_for(v);
  req.bindings = Bindings{}.set("N", 12).set("NSTEPS", 1);
  req.steps = 1;
  req.init = [](Execution& exec) {
    exec.set_array("U",
                   [](int i, int j, int) { return i * 0.25 + j * 0.5; });
  };
  return req;
}

TEST(ServiceStress, EightClientThreadsMixedDuplicateDistinct) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 3;

  obs::TraceSession session;
  auto sink = std::make_unique<obs::CollectSink>();
  obs::CollectSink* collect = sink.get();
  session.add_sink(std::move(sink));

  StencilService service(stress_config(&session));
  const std::vector<Variant> variants = mixed_variants();
  const std::size_t distinct = variants.size();

  std::vector<std::vector<PlanHandle>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Session client(service);
      for (int round = 0; round < kRounds; ++round) {
        for (const Variant& v : variants) {
          ServiceRequest req = request_for(v);
          RunRequest run;
          run.plan = client.compile(req.source, req.options);
          run.bindings = req.bindings;
          run.steps = req.steps;
          run.init = req.init;
          const Execution::RunStats stats = client.run(run);
          EXPECT_GE(stats.wall_seconds, 0.0);
          if (round == 0) {
            seen[static_cast<std::size_t>(t)].push_back(run.plan);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  session.flush();

  // Exactly one compilation per distinct key.
  const CacheCounters c = service.cache_counters();
  const std::uint64_t total = kThreads * kRounds * distinct;
  EXPECT_EQ(c.misses, distinct);
  EXPECT_EQ(c.hits + c.coalesced, total - distinct);
  EXPECT_EQ(service.cache_size(), distinct);

  // Every thread received the same handle per variant.
  for (int t = 1; t < kThreads; ++t) {
    ASSERT_EQ(seen[static_cast<std::size_t>(t)].size(), distinct);
    for (std::size_t v = 0; v < distinct; ++v) {
      EXPECT_EQ(seen[static_cast<std::size_t>(t)][v].get(),
                seen[0][v].get());
    }
  }

  // The trace corroborates the single-flight guarantee: one "compile"
  // span per distinct key, and the cumulative cache counters on the
  // trace agree with the service's own tallies.
  std::size_t compile_spans = 0;
  double last_coalesced = 0, last_hits = 0, last_misses = 0;
  for (const obs::SpanRecord& rec : collect->spans) {
    if (rec.name == "compile") ++compile_spans;
  }
  for (const obs::CounterRecord& rec : collect->counters) {
    if (rec.name == "service.singleflight.coalesced") {
      last_coalesced = std::max(last_coalesced, rec.value);
    }
    if (rec.name == "service.cache.hit") {
      last_hits = std::max(last_hits, rec.value);
    }
    if (rec.name == "service.cache.miss") {
      last_misses = std::max(last_misses, rec.value);
    }
  }
  EXPECT_EQ(compile_spans, distinct);
  EXPECT_EQ(static_cast<std::uint64_t>(last_misses), c.misses);
  EXPECT_EQ(static_cast<std::uint64_t>(last_coalesced), c.coalesced);
  EXPECT_EQ(static_cast<std::uint64_t>(last_hits), c.hits);
}

TEST(ServiceStress, PoolWithEightWorkersMixedRequests) {
  constexpr int kWorkers = 8;
  constexpr int kRequestsPerVariant = 16;

  StencilService service(stress_config(nullptr));
  const std::vector<Variant> variants = mixed_variants();
  const std::size_t distinct = variants.size();

  ServicePool pool(service, kWorkers);
  std::vector<std::future<ServiceResponse>> futures;
  for (int i = 0; i < kRequestsPerVariant; ++i) {
    for (const Variant& v : variants) {
      futures.push_back(pool.submit(request_for(v)));
    }
  }
  std::uint64_t miss_outcomes = 0;
  for (auto& f : futures) {
    ServiceResponse r = f.get();
    EXPECT_GE(r.latency_seconds, 0.0);
    if (r.outcome == CacheOutcome::Miss) ++miss_outcomes;
  }
  pool.shutdown();

  const CacheCounters c = service.cache_counters();
  EXPECT_EQ(c.misses, distinct);
  EXPECT_EQ(miss_outcomes, distinct);
  EXPECT_EQ(c.hits + c.coalesced,
            static_cast<std::uint64_t>(futures.size()) - distinct);
  EXPECT_EQ(service.cache_size(), distinct);
}

TEST(ServiceStress, ConcurrentCompileErrorsAllPropagate) {
  constexpr int kThreads = 8;
  StencilService service(stress_config(nullptr));
  std::atomic<int> caught{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      try {
        (void)service.compile("T = = B\n", CompilerOptions::level(4));
      } catch (const CompileError&) {
        caught.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(caught.load(), kThreads);
  EXPECT_EQ(service.cache_size(), 0u);
}

}  // namespace
}  // namespace hpfsc::service

// PlanCache unit tests: hit/miss accounting, LRU eviction, exception
// propagation, and obs counter emission.  (Concurrency is covered by
// test_service_stress.cpp.)
#include "service/plan_cache.hpp"

#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "obs/flight_recorder.hpp"
#include "obs/sinks.hpp"

namespace hpfsc::service {
namespace {

CacheKey key_of(const std::string& canonical) {
  CacheKey k;
  k.canonical = canonical;
  k.hash = fnv1a(canonical);
  return k;
}

PlanHandle plan_of(const CacheKey& key) {
  auto plan = std::make_shared<CachedPlan>();
  plan->key = key;
  return plan;
}

TEST(PlanCache, MissThenHitReturnsSameHandle) {
  PlanCache cache(4);
  const CacheKey k = key_of("A");
  int compiles = 0;
  auto make = [&] {
    ++compiles;
    return plan_of(k);
  };
  CacheOutcome outcome;
  PlanHandle first = cache.get_or_compile(k, make, &outcome);
  EXPECT_EQ(outcome, CacheOutcome::Miss);
  PlanHandle second = cache.get_or_compile(k, make, &outcome);
  EXPECT_EQ(outcome, CacheOutcome::Hit);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(compiles, 1);
  const CacheCounters c = cache.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.evictions, 0u);
  EXPECT_EQ(c.coalesced, 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCache, LruEvictsLeastRecentlyUsed) {
  PlanCache cache(2);
  const CacheKey a = key_of("A"), b = key_of("B"), c = key_of("C");
  auto make = [](const CacheKey& k) { return [k] { return plan_of(k); }; };
  (void)cache.get_or_compile(a, make(a));
  (void)cache.get_or_compile(b, make(b));
  // Touch A so B is the least recently used.
  (void)cache.get_or_compile(a, make(a));
  PlanHandle evicted_b = cache.lookup(b);
  ASSERT_NE(evicted_b, nullptr);
  (void)cache.get_or_compile(c, make(c));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.lookup(a), nullptr);
  EXPECT_EQ(cache.lookup(b), nullptr);
  EXPECT_NE(cache.lookup(c), nullptr);
  EXPECT_EQ(cache.counters().evictions, 1u);
  // The evicted plan stays alive through outstanding handles.
  EXPECT_EQ(evicted_b->key.canonical, "B");
  // Re-requesting B recompiles.
  CacheOutcome outcome;
  (void)cache.get_or_compile(b, make(b), &outcome);
  EXPECT_EQ(outcome, CacheOutcome::Miss);
}

TEST(PlanCache, CapacityZeroClampsToOne) {
  PlanCache cache(0);
  EXPECT_EQ(cache.capacity(), 1u);
  const CacheKey a = key_of("A"), b = key_of("B");
  (void)cache.get_or_compile(a, [&] { return plan_of(a); });
  (void)cache.get_or_compile(b, [&] { return plan_of(b); });
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCache, LookupDoesNotCountOrCompile) {
  PlanCache cache(4);
  EXPECT_EQ(cache.lookup(key_of("A")), nullptr);
  const CacheCounters c = cache.counters();
  EXPECT_EQ(c.hits, 0u);
  EXPECT_EQ(c.misses, 0u);
}

TEST(PlanCache, FactoryExceptionPropagatesAndIsNotCached) {
  PlanCache cache(4);
  const CacheKey k = key_of("A");
  EXPECT_THROW(
      (void)cache.get_or_compile(
          k, []() -> PlanHandle { throw std::runtime_error("boom"); }),
      std::runtime_error);
  EXPECT_EQ(cache.size(), 0u);
  // The key is retryable: the next request compiles again.
  CacheOutcome outcome;
  (void)cache.get_or_compile(k, [&] { return plan_of(k); }, &outcome);
  EXPECT_EQ(outcome, CacheOutcome::Miss);
  EXPECT_EQ(cache.counters().misses, 2u);
}

// Request-scoped trace context across the single-flight boundary: a
// waiter that coalesces onto an in-progress compile learns the request
// id the leader ran under, so its trace can point at the compile spans
// it piggy-backed on.
TEST(PlanCache, CoalescedWaiterLearnsLeaderRequestId) {
  PlanCache cache(4);
  const CacheKey k = key_of("A");
  constexpr std::uint64_t kLeaderId = 101;
  constexpr std::uint64_t kWaiterId = 202;

  std::mutex mutex;
  std::condition_variable cv;
  bool in_make = false;
  bool release_make = false;

  std::thread leader([&] {
    obs::RequestScope scope(kLeaderId);
    (void)cache.get_or_compile(k, [&]() -> PlanHandle {
      {
        std::lock_guard<std::mutex> lock(mutex);
        in_make = true;
      }
      cv.notify_all();
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return release_make; });
      return plan_of(k);
    });
  });

  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return in_make; });
  }

  std::uint64_t observed_leader = 0;
  CacheOutcome outcome = CacheOutcome::Miss;
  std::thread waiter([&] {
    obs::RequestScope scope(kWaiterId);
    (void)cache.get_or_compile(
        k, [&]() -> PlanHandle { return plan_of(k); }, &outcome,
        &observed_leader);
  });

  // The waiter bumps the coalesced counter before blocking on the
  // flight; once it shows, releasing the leader is race-free.
  while (cache.counters().coalesced == 0) std::this_thread::yield();
  {
    std::lock_guard<std::mutex> lock(mutex);
    release_make = true;
  }
  cv.notify_all();
  leader.join();
  waiter.join();

  EXPECT_EQ(outcome, CacheOutcome::Coalesced);
  EXPECT_EQ(observed_leader, kLeaderId);
}

TEST(PlanCache, ClearDropsEntriesWithoutCountingEvictions) {
  PlanCache cache(4);
  const CacheKey a = key_of("A");
  (void)cache.get_or_compile(a, [&] { return plan_of(a); });
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.counters().evictions, 0u);
  EXPECT_EQ(cache.counters().misses, 1u);
}

TEST(PlanCache, EmitsCumulativeObsCounters) {
  obs::TraceSession session;
  auto sink = std::make_unique<obs::CollectSink>();
  obs::CollectSink* collect = sink.get();
  session.add_sink(std::move(sink));

  PlanCache cache(1, &session);
  const CacheKey a = key_of("A"), b = key_of("B");
  (void)cache.get_or_compile(a, [&] { return plan_of(a); });  // miss
  (void)cache.get_or_compile(a, [&] { return plan_of(a); });  // hit
  (void)cache.get_or_compile(b, [&] { return plan_of(b); });  // miss+evict
  session.flush();

  double last_hit = -1, last_miss = -1, last_evict = -1;
  for (const obs::CounterRecord& rec : collect->counters) {
    if (rec.name == "service.cache.hit") last_hit = rec.value;
    if (rec.name == "service.cache.miss") last_miss = rec.value;
    if (rec.name == "service.cache.evict") last_evict = rec.value;
  }
  EXPECT_EQ(last_hit, 1.0);
  EXPECT_EQ(last_miss, 2.0);
  EXPECT_EQ(last_evict, 1.0);
}

}  // namespace
}  // namespace hpfsc::service

// StencilService + Session: cache sharing across textually different
// sources, the zero-pass-span warm path, execution reuse across run
// calls, and result equivalence with the direct Compiler/Execution API.
#include "service/service.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "driver/paper_kernels.hpp"
#include "obs/sinks.hpp"

namespace hpfsc::service {
namespace {

// Problem 9 with cosmetic differences only (blank lines, indentation,
// spacing): must share a cache entry with kernels::kProblem9.
const char* kProblem9Reformatted = R"(
PROGRAM PROBLEM9
INTEGER N

REAL U(N,N), T(N,N), RIP(N,N), RIN(N,N)
!HPF$ DISTRIBUTE U(BLOCK,BLOCK)
!HPF$ DISTRIBUTE T(BLOCK,BLOCK)
!HPF$ DISTRIBUTE RIP(BLOCK,BLOCK)
!HPF$ DISTRIBUTE RIN(BLOCK,BLOCK)

RIP = CSHIFT(U,SHIFT=+1,DIM=1)
RIN = CSHIFT(U,SHIFT=-1,DIM=1)
T = U + RIP + RIN
T = T + CSHIFT(U,SHIFT=-1,DIM=2)
T = T + CSHIFT(U,SHIFT=+1,DIM=2)
T = T + CSHIFT(RIP,SHIFT=-1,DIM=2)
T = T + CSHIFT(RIP,SHIFT=+1,DIM=2)
T = T + CSHIFT(RIN,SHIFT=-1,DIM=2)
T = T + CSHIFT(RIN,SHIFT=+1,DIM=2)
END
)";

CompilerOptions o4_live_t() {
  CompilerOptions opts = CompilerOptions::level(4);
  opts.passes.offset.live_out = {"T"};
  return opts;
}

ServiceConfig basic_config(obs::TraceSession* trace = nullptr) {
  ServiceConfig cfg;
  cfg.machine.pe_rows = 2;
  cfg.machine.pe_cols = 2;
  cfg.trace = trace;
  return cfg;
}

void init_u(Execution& exec) {
  exec.set_array("U", [](int i, int j, int) { return i * 0.25 + j * 0.5; });
}

TEST(Service, TextuallyDifferentIrIdenticalProgramsShareOneEntry) {
  StencilService service(basic_config());
  PlanHandle a = service.compile(kernels::kProblem9, o4_live_t());
  CacheOutcome outcome;
  PlanHandle b = service.compile(kProblem9Reformatted, o4_live_t(), &outcome);
  EXPECT_EQ(a.get(), b.get()) << "expected one shared cache entry";
  EXPECT_EQ(outcome, CacheOutcome::Hit);
  EXPECT_EQ(service.cache_size(), 1u);
  const CacheCounters c = service.cache_counters();
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.hits, 1u);
}

TEST(Service, WarmCompileEmitsZeroPassSpans) {
  obs::TraceSession session;
  auto sink = std::make_unique<obs::CollectSink>();
  obs::CollectSink* collect = sink.get();
  session.add_sink(std::move(sink));

  StencilService service(basic_config(&session));

  // Cold: the full pipeline runs and is traced.
  (void)service.compile(kernels::kProblem9, o4_live_t());
  bool cold_saw_pass = false;
  for (const obs::SpanRecord& rec : collect->spans) {
    if (rec.name.rfind("pass/", 0) == 0) cold_saw_pass = true;
  }
  EXPECT_TRUE(cold_saw_pass) << "cold compile must run (and trace) passes";

  // Warm: a textually different but IR-identical request.  No compiler
  // stage may run — zero pass/frontend/codegen/compile spans.
  collect->spans.clear();
  CacheOutcome outcome;
  (void)service.compile(kProblem9Reformatted, o4_live_t(), &outcome);
  EXPECT_EQ(outcome, CacheOutcome::Hit);
  bool saw_service_compile = false;
  for (const obs::SpanRecord& rec : collect->spans) {
    EXPECT_TRUE(rec.name.rfind("pass/", 0) != 0 &&
                rec.name.rfind("frontend/", 0) != 0 &&
                rec.name.rfind("codegen/", 0) != 0 && rec.name != "compile")
        << "compiler stage ran on a cache hit: " << rec.name;
    if (rec.name == "service.compile") {
      saw_service_compile = true;
      bool labeled_hit = false;
      for (const obs::Arg& arg : rec.args) {
        if (std::string(arg.key) == "cache") {
          labeled_hit = arg.str == "hit";
        }
      }
      EXPECT_TRUE(labeled_hit);
    }
  }
  EXPECT_TRUE(saw_service_compile);
}

TEST(Service, SessionRunMatchesDirectExecution) {
  // Direct path.
  Compiler compiler;
  CompiledProgram compiled = compiler.compile(kernels::kProblem9, o4_live_t());
  simpi::MachineConfig mc = basic_config().machine;
  Execution direct(std::move(compiled.program), mc);
  direct.prepare(Bindings{}.set("N", 16));
  init_u(direct);
  (void)direct.run(1);
  const std::vector<double> expect = direct.get_array("T");

  // Service path.
  StencilService service(basic_config());
  Session session(service);
  RunRequest req;
  req.plan = session.compile(kernels::kProblem9, o4_live_t());
  req.bindings = Bindings{}.set("N", 16);
  req.steps = 1;
  req.init = init_u;
  (void)session.run(req);
  const std::vector<double> got =
      session.execution(req.plan, req.bindings).get_array("T");
  EXPECT_EQ(expect, got);
}

TEST(Service, SessionReusesOnePreparedExecutionAcrossRuns) {
  StencilService service(basic_config());
  Session session(service);
  RunRequest req;
  req.plan = session.compile(kernels::kProblem9, o4_live_t());
  req.bindings = Bindings{}.set("N", 16);
  req.init = init_u;
  (void)session.run(req);
  (void)session.run(req);
  (void)session.run(req);
  EXPECT_EQ(session.num_executions(), 1u);
  // Distinct bindings get a distinct prepared execution.
  RunRequest other = req;
  other.bindings = Bindings{}.set("N", 24);
  (void)session.run(other);
  EXPECT_EQ(session.num_executions(), 2u);
}

TEST(Service, SessionSurvivesPlanCacheEvictionAndRecompile) {
  // After the plan cache evicts a plan and it is recompiled, a fresh
  // CachedPlan may be allocated at the old one's address.  Executions
  // are keyed by plan content (canonical key), not by pointer, so the
  // recompiled plan maps back to the same prepared execution — and the
  // entry pins its plan, so the old program stays alive regardless.
  ServiceConfig cfg = basic_config();
  cfg.cache_capacity = 1;
  StencilService service(cfg);
  Session session(service);

  RunRequest req;
  req.plan = session.compile(kernels::kProblem9, o4_live_t());
  req.bindings = Bindings{}.set("N", 16);
  req.init = init_u;
  (void)session.run(req);
  const std::vector<double> expect =
      session.execution(req.plan, req.bindings).get_array("T");
  EXPECT_EQ(session.num_executions(), 1u);

  // Evict Problem9 (capacity 1), drop our handle, recompile it.
  (void)session.compile(kernels::kJacobiTimeLoop, o4_live_t());
  req.plan.reset();
  CacheOutcome outcome;
  req.plan = session.compile(kernels::kProblem9, o4_live_t(), &outcome);
  EXPECT_EQ(outcome, CacheOutcome::Miss) << "plan must have been evicted";

  // Same bindings: the session reuses the original prepared execution
  // (init is NOT rerun) and its results are intact.
  bool init_reran = false;
  req.init = [&](Execution&) { init_reran = true; };
  (void)session.run(req);
  EXPECT_EQ(session.num_executions(), 1u);
  EXPECT_FALSE(init_reran);
  EXPECT_EQ(expect, session.execution(req.plan, req.bindings).get_array("T"));
}

TEST(Service, SessionEvictsLeastRecentlyRunExecution) {
  ServiceConfig cfg = basic_config();
  cfg.session_capacity = 2;
  StencilService service(cfg);
  Session session(service);
  RunRequest req;
  req.plan = session.compile(kernels::kProblem9, o4_live_t());
  req.init = init_u;
  for (int n : {8, 12, 16}) {
    req.bindings = Bindings{}.set("N", n);
    (void)session.run(req);
  }
  EXPECT_EQ(session.num_executions(), 2u);
  // N=12 and N=16 are resident; rerunning N=12 must not prepare anew.
  bool init_reran = false;
  req.init = [&](Execution&) { init_reran = true; };
  req.bindings = Bindings{}.set("N", 12);
  (void)session.run(req);
  EXPECT_FALSE(init_reran);
  // N=8 was evicted (least recently run): rerunning it re-prepares and
  // evicts N=16.
  req.bindings = Bindings{}.set("N", 8);
  (void)session.run(req);
  EXPECT_TRUE(init_reran);
  EXPECT_EQ(session.num_executions(), 2u);
}

TEST(Service, BindingsFingerprintDistinguishesCloseValues) {
  // std::to_string(double) keeps 6 decimals; the fingerprint must not,
  // or two binding sets differing by <1e-6 would silently share one
  // prepared execution.  EPS is unused by the program (prepare ignores
  // unknown names) but participates in the fingerprint.
  StencilService service(basic_config());
  Session session(service);
  RunRequest req;
  req.plan = session.compile(kernels::kProblem9, o4_live_t());
  req.init = init_u;
  req.bindings = Bindings{}.set("N", 16).set("EPS", 1.0);
  (void)session.run(req);
  req.bindings = Bindings{}.set("N", 16).set("EPS", 1.0 + 1e-9);
  (void)session.run(req);
  EXPECT_EQ(session.num_executions(), 2u);
}

TEST(Service, TimeSteppingStateCarriesAcrossRuns) {
  // Two warm service runs of one Jacobi step each must equal one direct
  // execution of two iterations: the session reuses machine state, so
  // run-many really is time-stepping, not re-initialization.
  CompilerOptions opts = CompilerOptions::level(4);
  opts.passes.offset.live_out = {"U", "T"};
  const Bindings bindings = Bindings{}.set("N", 12).set("NSTEPS", 1);

  Compiler compiler;
  CompiledProgram compiled =
      compiler.compile(kernels::kJacobiTimeLoop, opts);
  Execution direct(std::move(compiled.program), basic_config().machine);
  direct.prepare(bindings);
  init_u(direct);
  (void)direct.run(2);
  const std::vector<double> expect = direct.get_array("U");

  StencilService service(basic_config());
  Session session(service);
  RunRequest req;
  req.plan = session.compile(kernels::kJacobiTimeLoop, opts);
  req.bindings = bindings;
  req.init = init_u;
  (void)session.run(req);
  (void)session.run(req);
  const std::vector<double> got =
      session.execution(req.plan, req.bindings).get_array("U");
  EXPECT_EQ(expect, got);
}

TEST(Service, ProcessorsDirectiveOverridesTheSessionGrid) {
  const char* source = R"(
PROGRAM P
INTEGER N
REAL U(N,N), T(N,N)
!HPF$ PROCESSORS P(1,2)
!HPF$ DISTRIBUTE U(BLOCK,BLOCK)
!HPF$ DISTRIBUTE T(BLOCK,BLOCK)
T = CSHIFT(U,1,1)
END
)";
  StencilService service(basic_config());
  Session session(service);
  RunRequest req;
  req.plan = session.compile(source, o4_live_t());
  ASSERT_TRUE(req.plan->processors.has_value());
  req.bindings = Bindings{}.set("N", 8);
  req.init = init_u;
  (void)session.run(req);
  Execution& exec = session.execution(req.plan, req.bindings);
  EXPECT_EQ(exec.machine().config().pe_rows, 1);
  EXPECT_EQ(exec.machine().config().pe_cols, 2);
}

TEST(Service, CompileErrorPropagatesAndIsNotCached) {
  StencilService service(basic_config());
  EXPECT_THROW((void)service.compile("T = = B\n", o4_live_t()),
               CompileError);
  EXPECT_EQ(service.cache_size(), 0u);
}

TEST(Service, LruEvictionAcrossOptionLevels) {
  ServiceConfig cfg = basic_config();
  cfg.cache_capacity = 2;
  StencilService service(cfg);
  for (int level = 0; level <= 4; ++level) {
    (void)service.compile(kernels::kProblem9, CompilerOptions::level(level));
  }
  EXPECT_EQ(service.cache_size(), 2u);
  EXPECT_EQ(service.cache_counters().evictions, 3u);
  EXPECT_EQ(service.cache_counters().misses, 5u);
}

TEST(ServicePool, ServesRequestsAndReportsOutcomes) {
  StencilService service(basic_config());
  ServicePool pool(service, 2);
  std::vector<std::future<ServiceResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    ServiceRequest req;
    req.source = kernels::kProblem9;
    req.options = o4_live_t();
    req.bindings = Bindings{}.set("N", 16);
    req.steps = 1;
    req.init = init_u;
    futures.push_back(pool.submit(std::move(req)));
  }
  int compiles = 0;
  for (auto& f : futures) {
    ServiceResponse r = f.get();
    EXPECT_GE(r.worker, 0);
    EXPECT_LT(r.worker, 2);
    if (r.outcome == CacheOutcome::Miss) ++compiles;
  }
  EXPECT_EQ(compiles, 1) << "single flight: one compilation for one key";
  const CacheCounters c = service.cache_counters();
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.hits + c.coalesced, 5u);
}

TEST(ServicePool, ErrorsPropagateThroughFutures) {
  StencilService service(basic_config());
  ServicePool pool(service, 2);
  ServiceRequest req;
  req.source = "T = = B\n";
  req.options = o4_live_t();
  auto future = pool.submit(std::move(req));
  EXPECT_THROW((void)future.get(), CompileError);
}

TEST(ServicePool, ShutdownDrainsPendingWork) {
  StencilService service(basic_config());
  std::vector<std::future<ServiceResponse>> futures;
  {
    ServicePool pool(service, 1);
    for (int i = 0; i < 4; ++i) {
      ServiceRequest req;
      req.source = kernels::kNinePointCShift;
      req.options = o4_live_t();
      req.bindings = Bindings{}.set("N", 12);
      req.init = init_u;
      futures.push_back(pool.submit(std::move(req)));
    }
  }  // destructor drains + joins
  for (auto& f : futures) {
    EXPECT_NO_THROW((void)f.get());
  }
}

}  // namespace
}  // namespace hpfsc::service

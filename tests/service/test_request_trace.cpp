// End-to-end request reconstruction from JSONL output (the tentpole
// acceptance property): one cold StencilService::request served through
// a ServicePool must be reassemblable from the JSONL trace alone — a
// single request id links the pool's request span (queue wait), the
// compile span and the pass spans below it, the cache outcome, the run
// span, and the per-PE runtime spans that executed on other threads.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "driver/paper_kernels.hpp"
#include "obs/sinks.hpp"
#include "service/service.hpp"

namespace hpfsc::service {
namespace {

/// One parsed JSONL line, reduced to what the reconstruction needs.
struct TraceLine {
  std::string text;
  std::string name;
  int track = 0;
  bool has_request_id = false;
  std::uint64_t request_id = 0;
};

std::string field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  std::size_t begin = at + needle.size();
  std::size_t end = begin;
  if (line[begin] == '"') {
    ++begin;
    end = line.find('"', begin);
  } else {
    while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  }
  return line.substr(begin, end - begin);
}

std::vector<TraceLine> parse_jsonl(const std::string& text) {
  std::vector<TraceLine> out;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    TraceLine t;
    t.text = line;
    t.name = field(line, "name");
    const std::string track = field(line, "track");
    if (!track.empty()) t.track = std::atoi(track.c_str());
    const std::string rid = field(line, "request_id");
    if (!rid.empty()) {
      t.has_request_id = true;
      t.request_id = static_cast<std::uint64_t>(
          std::strtoull(rid.c_str(), nullptr, 10));
    }
    out.push_back(std::move(t));
  }
  return out;
}

TEST(RequestTrace, ColdPoolRequestIsReconstructableFromJsonl) {
  std::ostringstream jsonl;
  obs::TraceSession session;
  session.add_sink(std::make_unique<obs::JsonlSink>(jsonl));

  ServiceConfig cfg;
  cfg.machine.pe_rows = 2;
  cfg.machine.pe_cols = 2;
  cfg.trace = &session;
  StencilService service(cfg);

  std::uint64_t rid = 0;
  {
    ServicePool pool(service, 2);
    ServiceRequest req;
    req.source = kernels::kProblem9;
    CompilerOptions opts = CompilerOptions::level(4);
    opts.passes.offset.live_out = {"T"};
    req.options = opts;
    req.bindings = Bindings{}.set("N", 16);
    req.steps = 2;
    req.init = [](Execution& exec) {
      exec.set_array("U",
                     [](int i, int j, int) { return i * 0.5 + j * 0.25; });
    };
    ServiceResponse response = pool.submit(std::move(req)).get();
    rid = response.request_id;
    ASSERT_NE(rid, 0u);
    EXPECT_EQ(response.outcome, CacheOutcome::Miss) << "expected cold";
    EXPECT_GE(response.queue_seconds, 0.0);
    EXPECT_GT(response.compile_seconds, 0.0);
    EXPECT_GT(response.run_seconds, 0.0);
  }
  session.flush();

  const std::vector<TraceLine> lines = parse_jsonl(jsonl.str());
  ASSERT_FALSE(lines.empty());

  // Every span of this request — and only spans (counters carry no
  // args) — must be joinable on the one id.
  std::set<std::string> linked_names;
  std::set<int> linked_pe_tracks;
  bool queue_wait_on_request_span = false;
  bool cache_outcome_on_compile_span = false;
  bool saw_pass_span = false;
  for (const TraceLine& t : lines) {
    if (!t.has_request_id || t.request_id != rid) continue;
    linked_names.insert(t.name);
    if (t.track > 0) linked_pe_tracks.insert(t.track);
    if (t.name == "service.request" &&
        t.text.find("\"queue_ms\":") != std::string::npos) {
      queue_wait_on_request_span = true;
    }
    if (t.name == "service.compile" &&
        t.text.find("\"cache\":\"miss\"") != std::string::npos &&
        t.text.find("\"key_hash\":") != std::string::npos) {
      cache_outcome_on_compile_span = true;
    }
    if (t.name.rfind("pass/", 0) == 0) saw_pass_span = true;
  }

  // The request's journey, end to end: pool pickup, compile-or-hit
  // (with the cache event), the compiler pipeline it triggered, the
  // run, and the per-PE execution.
  for (const char* name :
       {"service.request", "service.compile", "compile", "service.run",
        "execute", "pe-run"}) {
    EXPECT_TRUE(linked_names.count(name) != 0)
        << "span '" << name << "' not linked to request " << rid;
  }
  EXPECT_TRUE(saw_pass_span) << "cold compile pass spans must carry the id";
  EXPECT_TRUE(queue_wait_on_request_span);
  EXPECT_TRUE(cache_outcome_on_compile_span);
  // Cross-thread: all four PE worker threads adopted the id (tracks
  // 1..4 for a 2x2 machine), proving the join spans thread boundaries.
  EXPECT_EQ(linked_pe_tracks.size(), 4u)
      << "expected per-PE spans from every PE thread";

  // And the id is selective: spans of other work (none here) would not
  // match.  Every span that carries *some* id carries this one.
  for (const TraceLine& t : lines) {
    if (t.has_request_id) EXPECT_EQ(t.request_id, rid) << t.text;
  }
}

// A warm request through the same service reuses the cached plan but
// still gets its own id — request ids are per-request, not per-plan.
TEST(RequestTrace, WarmRequestGetsFreshIdAndHitOutcome) {
  std::ostringstream jsonl;
  obs::TraceSession session;
  session.add_sink(std::make_unique<obs::JsonlSink>(jsonl));

  ServiceConfig cfg;
  cfg.machine.pe_rows = 1;
  cfg.machine.pe_cols = 2;
  cfg.trace = &session;
  StencilService service(cfg);

  auto request = [] {
    ServiceRequest req;
    req.source = kernels::kNinePointCShift;
    CompilerOptions opts = CompilerOptions::level(4);
    opts.passes.offset.live_out = {"T"};
    req.options = opts;
    req.bindings = Bindings{}.set("N", 12);
    req.steps = 1;
    req.init = [](Execution& exec) {
      exec.set_array("U", [](int i, int j, int) { return i + 2.0 * j; });
    };
    return req;
  };

  ServicePool pool(service, 1);
  const ServiceResponse cold = pool.submit(request()).get();
  const ServiceResponse warm = pool.submit(request()).get();
  session.flush();

  EXPECT_EQ(cold.outcome, CacheOutcome::Miss);
  EXPECT_EQ(warm.outcome, CacheOutcome::Hit);
  EXPECT_NE(cold.request_id, 0u);
  EXPECT_NE(warm.request_id, 0u);
  EXPECT_NE(cold.request_id, warm.request_id);

  // The warm id links a request/compile/run chain with a hit outcome
  // and no pass spans of its own.
  bool warm_hit_span = false;
  for (const TraceLine& t : parse_jsonl(jsonl.str())) {
    if (!t.has_request_id || t.request_id != warm.request_id) continue;
    EXPECT_TRUE(t.name.rfind("pass/", 0) != 0)
        << "warm request must not own pass spans: " << t.text;
    if (t.name == "service.compile" &&
        t.text.find("\"cache\":\"hit\"") != std::string::npos) {
      warm_hit_span = true;
    }
  }
  EXPECT_TRUE(warm_hit_span);
}

}  // namespace
}  // namespace hpfsc::service

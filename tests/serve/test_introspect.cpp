// serve::Introspector: the statusz/metricsz/tracez pages render a
// running daemon's admission queue, plan cache, tier states, and
// wait-state breakdown; the page dispatcher handles unknown paths; the
// opt-in localhost listener answers real HTTP GETs while the daemon is
// under load; and the admission path leaves enqueue/dequeue (and shed)
// flight-recorder events stamped with request ids.
#include "serve/introspect.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "driver/paper_kernels.hpp"
#include "obs/flight_recorder.hpp"
#include "serve/daemon.hpp"
#include "service/service.hpp"

namespace hpfsc::serve {
namespace {

using service::ServiceRequest;

DaemonConfig daemon_config(int workers, std::size_t queue_depth,
                           bool tiered = true) {
  DaemonConfig cfg;
  cfg.service.machine.pe_rows = 2;
  cfg.service.machine.pe_cols = 2;
  cfg.workers = workers;
  cfg.queue_depth = queue_depth;
  cfg.tiered = tiered;
  return cfg;
}

ServiceRequest problem9_request(double n = 16.0) {
  ServiceRequest req;
  req.source = kernels::kProblem9;
  req.options = CompilerOptions::level(4);
  req.options.passes.offset.live_out = {"T"};
  req.bindings.values["N"] = n;
  req.steps = 1;
  req.init = [](Execution& exec) {
    exec.set_array("U", [](int i, int j, int) { return i * 0.25 + j * 0.5; });
  };
  return req;
}

void run_some_traffic(ServeDaemon& daemon, int requests = 4) {
  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < requests; ++i) {
    futures.push_back(
        daemon.submit({i % 2 == 0 ? "alpha" : "beta", problem9_request()}));
  }
  for (auto& f : futures) f.get();
}

TEST(Introspect, StatuszRendersEverySection) {
  ServeDaemon daemon(daemon_config(2, 16));
  run_some_traffic(daemon);
  Introspector in(daemon);
  const std::string page = in.statusz();
  EXPECT_NE(page.find("hpfsc serve statusz"), std::string::npos) << page;
  // Admission: totals plus the live depth.
  EXPECT_NE(page.find("queued="), std::string::npos) << page;
  EXPECT_NE(page.find("picked="), std::string::npos) << page;
  EXPECT_NE(page.find("shed="), std::string::npos) << page;
  // Plan cache and tier promotion states.
  EXPECT_NE(page.find("plan cache"), std::string::npos) << page;
  EXPECT_NE(page.find("tiers"), std::string::npos) << page;
  // Wait-state breakdown from the serve.wait.* histograms.
  EXPECT_NE(page.find("wait-state"), std::string::npos) << page;
  EXPECT_NE(page.find("recv"), std::string::npos) << page;
  EXPECT_NE(page.find("swap-gate"), std::string::npos) << page;
  // The swap gate is observed once per request, so its count equals
  // the number of requests served.
  EXPECT_NE(page.find("count=4"), std::string::npos) << page;
}

TEST(Introspect, StatuszShowsPerClientSubQueues) {
  ServeDaemon daemon(daemon_config(1, 16));
  run_some_traffic(daemon, 3);  // two alpha, one beta — already drained
  Introspector in(daemon);
  const std::string page = in.statusz();
  // Clients appear (queues are empty after the drain, but the rotation
  // order listing must name them while they hold queue slots; after a
  // full drain the section may be empty — accept either, but the
  // admission line itself must be present with picked=3).
  EXPECT_NE(page.find("picked=3"), std::string::npos) << page;
}

TEST(Introspect, MetricszIsPrometheusText) {
  ServeDaemon daemon(daemon_config(1, 8));
  run_some_traffic(daemon, 2);
  Introspector in(daemon);
  const std::string page = in.metricsz();
  EXPECT_NE(page.find("# TYPE"), std::string::npos) << page;
  EXPECT_NE(page.find("serve_wait_recv_ms"), std::string::npos) << page;
  EXPECT_NE(page.find("serve_swap_gate_wait_ms"), std::string::npos) << page;
  EXPECT_NE(page.find("serve_queue_depth"), std::string::npos) << page;
}

TEST(Introspect, TracezShowsFlightTail) {
  auto& rec = obs::FlightRecorder::instance();
  const bool was = rec.enabled();
  rec.set_enabled(true);
  {
    ServeDaemon daemon(daemon_config(1, 8));
    run_some_traffic(daemon, 2);
    Introspector in(daemon);
    const std::string page = in.tracez();
    EXPECT_NE(page.find("flight recorder"), std::string::npos) << page;
    EXPECT_NE(page.find("thread"), std::string::npos) << page;
  }
  rec.set_enabled(was);
}

TEST(Introspect, PageDispatchesAndExplainsUnknownPaths) {
  ServeDaemon daemon(daemon_config(1, 8));
  Introspector in(daemon);
  EXPECT_EQ(in.page("/statusz"), in.page("statusz"));
  EXPECT_NE(in.page("/statusz").find("statusz"), std::string::npos);
  EXPECT_NE(in.page("/metricsz").find("# TYPE"), std::string::npos);
  EXPECT_NE(in.page("/statusz?refresh=1").find("statusz"),
            std::string::npos);
  const std::string unknown = in.page("/nope");
  EXPECT_EQ(unknown.rfind("unknown page:", 0), 0u) << unknown;
  EXPECT_NE(unknown.find("statusz"), std::string::npos);
}

TEST(Introspect, WriteStatuszWritesTheFile) {
  ServeDaemon daemon(daemon_config(1, 8));
  run_some_traffic(daemon, 1);
  Introspector in(daemon);
  const std::string path =
      ::testing::TempDir() + "/introspect_statusz.txt";
  ASSERT_TRUE(in.write_statusz(path));
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_NE(ss.str().find("hpfsc serve statusz"), std::string::npos);
  std::remove(path.c_str());
}

/// Minimal HTTP GET against 127.0.0.1:port; returns the full response.
std::string http_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!::send(fd, req.data(), req.size(), 0);
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(Introspect, ServesLivePagesOverTcpUnderLoad) {
  ServeDaemon daemon(daemon_config(2, 32));
  Introspector in(daemon);
  ASSERT_TRUE(in.serve_on(0));  // ephemeral port
  ASSERT_GT(in.port(), 0);

  // Keep the daemon busy while fetching.
  std::vector<std::future<ServeResponse>> inflight;
  for (int i = 0; i < 6; ++i) {
    inflight.push_back(daemon.submit({"load", problem9_request()}));
  }

  const std::string statusz = http_get(in.port(), "/statusz");
  EXPECT_NE(statusz.find("HTTP/1.0 200 OK"), std::string::npos) << statusz;
  EXPECT_NE(statusz.find("hpfsc serve statusz"), std::string::npos);

  const std::string metricsz = http_get(in.port(), "/metricsz");
  EXPECT_NE(metricsz.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metricsz.find("# TYPE"), std::string::npos);

  const std::string missing = http_get(in.port(), "/bogus");
  EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos) << missing;

  for (auto& f : inflight) f.get();
  // A fetch after the load drains still works and reflects the traffic.
  const std::string after = http_get(in.port(), "/statusz");
  EXPECT_NE(after.find("picked=6"), std::string::npos) << after;
  in.stop();
  // stop() is idempotent and serve_on can rebind afterwards.
  in.stop();
  EXPECT_EQ(in.port(), 0);
}

TEST(Introspect, SecondListenerOnSamePortFails) {
  ServeDaemon daemon(daemon_config(1, 8));
  Introspector in(daemon);
  ASSERT_TRUE(in.serve_on(0));
  EXPECT_FALSE(in.serve_on(0));  // already running
  in.stop();
}

// Admission flight events (satellite of DESIGN.md §13): every submit
// leaves an enqueue Mark, every worker pickup a dequeue Mark, and every
// rejection a shed Mark — all stamped with the minted request id.
TEST(Introspect, AdmissionLeavesFlightEventsWithRequestIds) {
  auto& rec = obs::FlightRecorder::instance();
  const bool was = rec.enabled();
  rec.set_enabled(true);
  std::uint64_t enqueues = 0, dequeues = 0, sheds = 0;
  {
    ServeDaemon daemon(daemon_config(1, 16));
    run_some_traffic(daemon, 3);
    for (const auto& th : rec.snapshot_all()) {
      for (const auto& ev : th.events) {
        const std::string name = ev.name;
        if (name == "serve.enqueue" || name == "serve.dequeue" ||
            name == "serve.shed") {
          EXPECT_EQ(ev.kind, obs::FlightEvent::Kind::Mark);
          EXPECT_NE(ev.request_id, 0u) << name;
          if (name == "serve.enqueue") ++enqueues;
          if (name == "serve.dequeue") ++dequeues;
          if (name == "serve.shed") ++sheds;
        }
      }
    }
  }
  rec.set_enabled(was);
  EXPECT_GE(enqueues, 3u);
  EXPECT_GE(dequeues, 3u);
  // No rejections in this run; shed coverage lives in the golden
  // postmortem test (normalize_obs drops nothing) and Admission suite.
  EXPECT_EQ(sheds, 0u);
}

}  // namespace
}  // namespace hpfsc::serve

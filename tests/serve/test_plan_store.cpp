// PlanStore (serve/plan_store.hpp): save/load round trips, the
// warm-start zero-recompilation contract, and the corruption ladder —
// truncated record, flipped payload byte (checksum), future-version
// header — each skipped with a counter while the affected stencil
// falls back to a cold compile that still works.
#include "serve/plan_store.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "driver/paper_kernels.hpp"
#include "obs/sinks.hpp"
#include "service/service.hpp"

namespace hpfsc::serve {
namespace {

namespace fs = std::filesystem;
using service::CacheOutcome;
using service::PlanHandle;
using service::StencilService;

service::ServiceConfig basic_config(obs::TraceSession* trace = nullptr) {
  service::ServiceConfig cfg;
  cfg.machine.pe_rows = 2;
  cfg.machine.pe_cols = 2;
  cfg.trace = trace;
  return cfg;
}

CompilerOptions o4_live_t() {
  CompilerOptions opts = CompilerOptions::level(4);
  opts.passes.offset.live_out = {"T"};
  return opts;
}

/// Fresh cache directory per test, removed on teardown.
class PlanStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("hpfsc-store-" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }

  /// The single record file in the cache dir (asserts there is one).
  fs::path only_record() const {
    std::vector<fs::path> records;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      records.push_back(entry.path());
    }
    EXPECT_EQ(records.size(), 1u);
    return records.empty() ? fs::path() : records.front();
  }

  fs::path dir_;
};

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST_F(PlanStoreTest, SaveLoadRoundTripsAndSkipsUnchangedRecords) {
  StencilService service(basic_config());
  PlanHandle a = service.compile(kernels::kProblem9, o4_live_t());
  PlanHandle b =
      service.compile(kernels::kJacobiTimeLoop, CompilerOptions::level(4));

  PlanStore store(dir());
  EXPECT_TRUE(store.save(*a));
  EXPECT_TRUE(store.save(*b));
  EXPECT_EQ(store.counters().saved, 2u);
  EXPECT_TRUE(fs::exists(store.record_path(a->key)));

  // Re-saving an unchanged plan is a cheap header-compare skip.
  EXPECT_TRUE(store.save(*a));
  EXPECT_EQ(store.counters().saved, 2u);
  EXPECT_EQ(store.counters().save_skipped, 1u);

  PlanStore reader(dir());
  std::vector<PlanHandle> restored;
  EXPECT_EQ(reader.load([&](PlanHandle p) { restored.push_back(p); }), 2u);
  EXPECT_EQ(reader.counters().loaded, 2u);
  EXPECT_EQ(reader.counters().skipped(), 0u);
  ASSERT_EQ(restored.size(), 2u);
  bool saw_a = false;
  for (const PlanHandle& p : restored) {
    if (p->key.canonical == a->key.canonical) saw_a = true;
  }
  EXPECT_TRUE(saw_a);
}

TEST_F(PlanStoreTest, WarmStartServesHitsWithZeroPassSpans) {
  // First life: compile cold, persist.
  {
    StencilService service(basic_config());
    PlanStore store(dir());
    store.save(*service.compile(kernels::kProblem9, o4_live_t()));
  }

  // Second life: warm-start a fresh service, then watch the compile.
  obs::TraceSession session;
  auto sink = std::make_unique<obs::CollectSink>();
  obs::CollectSink* collect = sink.get();
  session.add_sink(std::move(sink));
  StencilService service(basic_config(&session));

  PlanStore store(dir());
  EXPECT_EQ(store.warm_start(service.cache()), 1u);
  EXPECT_EQ(service.cache_counters().warmed, 1u);

  collect->spans.clear();
  CacheOutcome outcome = CacheOutcome::Miss;
  PlanHandle plan = service.compile(kernels::kProblem9, o4_live_t(), &outcome);
  EXPECT_EQ(outcome, CacheOutcome::Hit)
      << "a warm-started key must never recompile";
  for (const obs::SpanRecord& rec : collect->spans) {
    EXPECT_NE(rec.name.rfind("pass/", 0), 0u)
        << "warm-start hit ran compilation pass " << rec.name;
  }

  // The restored plan computes bitwise what a cold compile computes.
  StencilService cold(basic_config());
  PlanHandle fresh = cold.compile(kernels::kProblem9, o4_live_t());
  Bindings bindings;
  bindings.values["N"] = 16.0;
  auto run = [&](const spmd::Program& program) {
    Execution exec(program, basic_config().machine);
    exec.prepare(bindings);
    exec.set_array("U",
                   [](int i, int j, int) { return i * 0.25 + j * 0.5; });
    exec.run(1);
    return exec.get_array("T");
  };
  const std::vector<double> expect = run(fresh->program);
  const std::vector<double> actual = run(plan->program);
  ASSERT_EQ(actual.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(actual[i], expect[i]) << "element " << i;
  }
}

/// Corrupts the single record via `mutate(bytes)`, then asserts the
/// load skips it (incrementing `corrupt` or `version`) and the stencil
/// compiles cold — the fallback the header promises.
void expect_skip_and_cold_fallback(
    const std::string& dir, const std::function<void(std::string&)>& mutate,
    std::uint64_t expect_corrupt, std::uint64_t expect_version) {
  StencilService writer(basic_config());
  PlanHandle plan = writer.compile(kernels::kProblem9, o4_live_t());
  {
    PlanStore store(dir);
    ASSERT_TRUE(store.save(*plan));
  }
  const fs::path record = PlanStore(dir).record_path(plan->key);
  std::string bytes = read_file(record);
  ASSERT_GE(bytes.size(), PlanStore::kHeaderBytes);
  mutate(bytes);
  write_file(record, bytes);

  StencilService service(basic_config());
  PlanStore store(dir);
  EXPECT_EQ(store.warm_start(service.cache()), 0u);
  EXPECT_EQ(store.counters().loaded, 0u);
  EXPECT_EQ(store.counters().skipped_corrupt, expect_corrupt);
  EXPECT_EQ(store.counters().skipped_version, expect_version);

  // The skipped stencil falls back to a cold compile that still works.
  CacheOutcome outcome = CacheOutcome::Hit;
  PlanHandle cold = service.compile(kernels::kProblem9, o4_live_t(), &outcome);
  EXPECT_EQ(outcome, CacheOutcome::Miss);
  EXPECT_EQ(cold->key.canonical, plan->key.canonical);
}

TEST_F(PlanStoreTest, TruncatedRecordIsSkippedWithCounter) {
  expect_skip_and_cold_fallback(
      dir(),
      [](std::string& bytes) {
        bytes.resize(bytes.size() / 2);  // mid-payload truncation
      },
      /*expect_corrupt=*/1, /*expect_version=*/0);
}

TEST_F(PlanStoreTest, TruncatedHeaderIsSkippedWithCounter) {
  expect_skip_and_cold_fallback(
      dir(),
      [](std::string& bytes) {
        bytes.resize(PlanStore::kHeaderBytes - 4);  // not even a header
      },
      /*expect_corrupt=*/1, /*expect_version=*/0);
}

TEST_F(PlanStoreTest, FlippedPayloadByteFailsChecksumAndIsSkipped) {
  expect_skip_and_cold_fallback(
      dir(),
      [](std::string& bytes) {
        bytes[PlanStore::kHeaderBytes + bytes.size() / 3] ^= 0x01;
      },
      /*expect_corrupt=*/1, /*expect_version=*/0);
}

TEST_F(PlanStoreTest, FutureVersionHeaderIsSkippedWithVersionCounter) {
  expect_skip_and_cold_fallback(
      dir(),
      [](std::string& bytes) {
        // Format version lives at offset 8, little-endian u32.
        const std::uint32_t future = PlanStore::kFormatVersion + 1;
        bytes[8] = static_cast<char>(future & 0xff);
        bytes[9] = static_cast<char>((future >> 8) & 0xff);
        bytes[10] = static_cast<char>((future >> 16) & 0xff);
        bytes[11] = static_cast<char>((future >> 24) & 0xff);
      },
      /*expect_corrupt=*/0, /*expect_version=*/1);
}

TEST_F(PlanStoreTest, BadMagicIsSkippedAsCorrupt) {
  expect_skip_and_cold_fallback(
      dir(), [](std::string& bytes) { bytes[0] = 'X'; },
      /*expect_corrupt=*/1, /*expect_version=*/0);
}

TEST_F(PlanStoreTest, CorruptRecordDoesNotPoisonItsNeighbors) {
  StencilService writer(basic_config());
  PlanHandle good = writer.compile(kernels::kProblem9, o4_live_t());
  PlanHandle bad =
      writer.compile(kernels::kJacobiTimeLoop, CompilerOptions::level(4));
  {
    PlanStore store(dir());
    ASSERT_TRUE(store.save(*good));
    ASSERT_TRUE(store.save(*bad));
  }
  const fs::path bad_record = PlanStore(dir()).record_path(bad->key);
  std::string bytes = read_file(bad_record);
  bytes.resize(bytes.size() - 1);
  write_file(bad_record, bytes);

  StencilService service(basic_config());
  PlanStore store(dir());
  EXPECT_EQ(store.warm_start(service.cache()), 1u);
  EXPECT_EQ(store.counters().skipped_corrupt, 1u);
  CacheOutcome outcome = CacheOutcome::Miss;
  (void)service.compile(kernels::kProblem9, o4_live_t(), &outcome);
  EXPECT_EQ(outcome, CacheOutcome::Hit) << "intact neighbor must warm-start";
}

}  // namespace
}  // namespace hpfsc::serve

// TieredSession (serve/tiered.hpp): the first request answers from the
// interpreter tier, promotion hot-swaps at a run boundary, and — the
// load-bearing property — a run sequence that straddles the swap
// computes bitwise the same answer as the same sequence on a single
// tier.  Timing-robust by design: promotion completes on its own
// thread, so tests poll run() until the swap lands instead of assuming
// a schedule (on a single-core host the promoter can finish before the
// creating run even returns).
#include "serve/tiered.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "driver/paper_kernels.hpp"
#include "service/service.hpp"

namespace hpfsc::serve {
namespace {

using service::CacheOutcome;
using service::ServiceRequest;
using service::StencilService;

service::ServiceConfig basic_config() {
  service::ServiceConfig cfg;
  cfg.machine.pe_rows = 2;
  cfg.machine.pe_cols = 2;
  return cfg;
}

ServiceRequest jacobi_request(int level) {
  ServiceRequest req;
  req.source = kernels::kJacobiTimeLoop;
  req.options = CompilerOptions::level(level);
  req.options.passes.offset.live_out = {"U"};
  req.bindings.values["N"] = 16.0;
  req.bindings.values["NSTEPS"] = 2.0;
  req.steps = 1;
  req.init = [](Execution& exec) {
    exec.set_array("U", [](int i, int j, int) {
      return (i * 31 + j * 7) % 13 * 0.125;
    });
  };
  return req;
}

/// Runs the request until the hot-swap lands, returning the number of
/// runs it took (the straddle point k).
int run_until_swapped(TieredSession& tiered, const ServiceRequest& req,
                      int max_runs) {
  for (int k = 1; k <= max_runs; ++k) {
    TieredSession::RunResult result = tiered.run(req);
    if (result.swapped) {
      EXPECT_EQ(result.state, TierState::Promoted);
      EXPECT_STREQ(result.tier, "simd");
      return k;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return -1;
}

TEST(Tiered, FirstRequestServesFromInterpreterTier) {
  StencilService service(basic_config());
  TieredSession tiered(service);
  TieredSession::RunResult first = tiered.run(jacobi_request(4));
  EXPECT_EQ(first.outcome, CacheOutcome::Miss)
      << "the fast plan compiles cold on the very first request";
  EXPECT_STREQ(first.tier, "interp")
      << "the creating run must answer from the fast tier even if the "
         "background promotion already finished";
  EXPECT_FALSE(first.swapped);
  EXPECT_EQ(tiered.promotions(), 0u);
}

TEST(Tiered, StraddlingRunsAreBitwiseIdenticalToSingleTierRuns) {
  const int kTotalRuns = 8;

  // Tiered: k interpreter runs, then kTotalRuns - k promoted runs.
  StencilService service(basic_config());
  TieredSession tiered(service);
  const ServiceRequest req = jacobi_request(4);
  const int k = run_until_swapped(tiered, req, kTotalRuns - 1);
  ASSERT_GT(k, 0) << "promotion never landed";
  for (int i = k; i < kTotalRuns; ++i) {
    TieredSession::RunResult result = tiered.run(req);
    EXPECT_STREQ(result.tier, "simd");
    EXPECT_FALSE(result.swapped) << "the swap happens exactly once";
  }
  ASSERT_NE(tiered.execution(req), nullptr);
  const std::vector<double> straddled = tiered.execution(req)->get_array("U");

  // Baseline: the same kTotalRuns run calls, all on one tier.  Jacobi
  // carries U across run() calls, so any divergence at the swap
  // boundary compounds and cannot cancel.
  auto single_tier = [&](int level, KernelTier kernel_tier) {
    StencilService svc(basic_config());
    ServiceRequest r = jacobi_request(level);
    service::PlanHandle plan = svc.compile(r.source, r.options);
    Execution exec(plan->program, basic_config().machine);
    exec.set_kernel_tier(kernel_tier);
    exec.prepare(r.bindings);
    r.init(exec);
    for (int i = 0; i < kTotalRuns; ++i) exec.run(r.steps);
    return exec.get_array("U");
  };
  const std::vector<double> all_interp =
      single_tier(0, KernelTier::InterpreterOnly);
  const std::vector<double> all_simd = single_tier(4, KernelTier::Simd);

  ASSERT_EQ(straddled.size(), all_interp.size());
  ASSERT_EQ(straddled.size(), all_simd.size());
  for (std::size_t i = 0; i < straddled.size(); ++i) {
    EXPECT_EQ(straddled[i], all_interp[i])
        << "swap at run " << k << " diverged from all-interpreter at "
        << i;
    EXPECT_EQ(straddled[i], all_simd[i])
        << "swap at run " << k << " diverged from all-simd at " << i;
  }
}

TEST(Tiered, PromotionCountsOnceAndMirrorsIntoMetrics) {
  StencilService service(basic_config());
  TieredSession tiered(service);
  const ServiceRequest req = jacobi_request(4);
  ASSERT_GT(run_until_swapped(tiered, req, 2000), 0);
  for (int i = 0; i < 3; ++i) (void)tiered.run(req);
  EXPECT_EQ(tiered.promotions(), 1u);
  EXPECT_EQ(tiered.promotion_failures(), 0u);
  EXPECT_EQ(service.metrics().counter("serve.promotions_total"), 1.0);
  EXPECT_EQ(tiered.num_entries(), 1u);
}

TEST(Tiered, FastLevelRequestPromotesKernelTierInPlace) {
  StencilService service(basic_config());
  TieredSession tiered(service);
  // Requesting the fast pipeline itself: nothing to compile in the
  // background, but the kernel tier still flips at the next boundary.
  const ServiceRequest req = jacobi_request(0);
  TieredSession::RunResult first = tiered.run(req);
  EXPECT_STREQ(first.tier, "interp");
  EXPECT_EQ(first.state, TierState::Ready);
  TieredSession::RunResult second = tiered.run(req);
  EXPECT_TRUE(second.swapped);
  EXPECT_STREQ(second.tier, "simd");
  EXPECT_EQ(tiered.promotions(), 1u);
  EXPECT_EQ(service.cache_size(), 1u)
      << "fast-level request must not compile a second plan";
}

TEST(Tiered, DistinctBindingsGetDistinctEntries) {
  StencilService service(basic_config());
  TieredSession tiered(service);
  ServiceRequest a = jacobi_request(4);
  ServiceRequest b = jacobi_request(4);
  b.bindings.values["N"] = 8.0;
  (void)tiered.run(a);
  (void)tiered.run(b);
  EXPECT_EQ(tiered.num_entries(), 2u);
  EXPECT_NE(tiered.execution(a), tiered.execution(b));
}

}  // namespace
}  // namespace hpfsc::serve

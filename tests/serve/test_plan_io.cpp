// Plan serialization (serve/plan_io.hpp): the bitwise round-trip
// contract that makes record checksums meaningful, canonical-key
// identity across the trip, execution equivalence of a restored
// program, and typed rejection of malformed payloads.
#include "serve/plan_io.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "driver/paper_kernels.hpp"
#include "service/service.hpp"

namespace hpfsc::serve {
namespace {

using service::CachedPlan;
using service::PlanHandle;
using service::StencilService;

service::ServiceConfig basic_config() {
  service::ServiceConfig cfg;
  cfg.machine.pe_rows = 2;
  cfg.machine.pe_cols = 2;
  return cfg;
}

CompilerOptions o4_live_t() {
  CompilerOptions opts = CompilerOptions::level(4);
  opts.passes.offset.live_out = {"T"};
  return opts;
}

PlanHandle compile(StencilService& service, const char* source,
                   const CompilerOptions& options) {
  return service.compile(source, options);
}

TEST(PlanIo, SerializeAfterDeserializeIsBitwiseIdentical) {
  StencilService service(basic_config());
  const struct {
    const char* source;
    CompilerOptions options;
  } cases[] = {
      {kernels::kProblem9, o4_live_t()},
      {kernels::kProblem9, CompilerOptions::level(0)},
      {kernels::kJacobiTimeLoop, CompilerOptions::level(4)},
      {kernels::kFivePointArraySyntax, CompilerOptions::level(2)},
  };
  for (const auto& c : cases) {
    PlanHandle plan = compile(service, c.source, c.options);
    const std::string bytes = serialize_plan(*plan);
    const CachedPlan restored = deserialize_plan(bytes);
    EXPECT_EQ(serialize_plan(restored), bytes)
        << "round-trip must reproduce the payload bitwise";
  }
}

TEST(PlanIo, CanonicalKeyRoundTripsExactly) {
  StencilService service(basic_config());
  PlanHandle plan = compile(service, kernels::kProblem9, o4_live_t());
  const CachedPlan restored = deserialize_plan(serialize_plan(*plan));
  EXPECT_EQ(restored.key.canonical, plan->key.canonical);
  EXPECT_EQ(restored.key.hash, plan->key.hash);
  EXPECT_EQ(restored.key.iface, plan->key.iface);
  EXPECT_EQ(restored.processors.has_value(), plan->processors.has_value());
}

TEST(PlanIo, RestoredProgramExecutesBitwiseIdentically) {
  StencilService service(basic_config());
  PlanHandle plan = compile(service, kernels::kProblem9, o4_live_t());
  const CachedPlan restored = deserialize_plan(serialize_plan(*plan));

  Bindings bindings;
  bindings.values["N"] = 16.0;
  auto run = [&](const spmd::Program& program) {
    Execution exec(program, basic_config().machine);
    exec.prepare(bindings);
    exec.set_array("U",
                   [](int i, int j, int) { return i * 0.25 + j * 0.5; });
    exec.run(1);
    return exec.get_array("T");
  };
  const std::vector<double> expect = run(plan->program);
  const std::vector<double> actual = run(restored.program);
  ASSERT_EQ(actual.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(actual[i], expect[i]) << "element " << i;
  }
}

TEST(PlanIo, TruncatedPayloadThrowsPlanFormatError) {
  StencilService service(basic_config());
  PlanHandle plan = compile(service, kernels::kProblem9, o4_live_t());
  const std::string bytes = serialize_plan(*plan);
  // Every proper prefix must be rejected as malformed, never accepted
  // and never crash.  Stride keeps the loop fast on large payloads.
  for (std::size_t len = 0; len < bytes.size();
       len += (bytes.size() / 64) + 1) {
    EXPECT_THROW((void)deserialize_plan(bytes.substr(0, len)),
                 PlanFormatError)
        << "prefix of " << len << " bytes";
  }
}

TEST(PlanIo, CorruptedKeyHashThrowsPlanFormatError) {
  StencilService service(basic_config());
  PlanHandle plan = compile(service, kernels::kProblem9, o4_live_t());
  CachedPlan tampered = *plan;
  tampered.key.hash ^= 1;  // canonical text no longer matches the hash
  const std::string bytes = serialize_plan(tampered);
  EXPECT_THROW((void)deserialize_plan(bytes), PlanFormatError);
}

TEST(PlanIo, GarbageThrowsPlanFormatError) {
  EXPECT_THROW((void)deserialize_plan("not a plan"), PlanFormatError);
  EXPECT_THROW((void)deserialize_plan(std::string(1024, '\xff')),
               PlanFormatError);
}

}  // namespace
}  // namespace hpfsc::serve

// ServeDaemon admission control (serve/daemon.hpp): the bounded queue
// sheds with AdmissionRejected and serve.shed_total matches the thrown
// exceptions *exactly*, the queue-depth gauge tracks occupancy, and
// per-client round-robin picking is externally observable through
// ServeResponse::sequence.  Tests gate the single worker on a promise
// inside a request's init callback so queue contents are deterministic.
#include "serve/daemon.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "driver/paper_kernels.hpp"
#include "service/service.hpp"

namespace hpfsc::serve {
namespace {

using service::CacheOutcome;
using service::ServiceRequest;

DaemonConfig daemon_config(int workers, std::size_t queue_depth) {
  DaemonConfig cfg;
  cfg.service.machine.pe_rows = 2;
  cfg.service.machine.pe_cols = 2;
  cfg.workers = workers;
  cfg.queue_depth = queue_depth;
  return cfg;
}

ServiceRequest problem9_request(double n = 16.0) {
  ServiceRequest req;
  req.source = kernels::kProblem9;
  req.options = CompilerOptions::level(4);
  req.options.passes.offset.live_out = {"T"};
  req.bindings.values["N"] = n;
  req.steps = 1;
  req.init = [](Execution& exec) {
    exec.set_array("U", [](int i, int j, int) { return i * 0.25 + j * 0.5; });
  };
  return req;
}

/// A request whose init blocks until `release` is fulfilled — pins the
/// daemon's worker so subsequent submissions stay queued.  Uses its own
/// bindings (N) so the gate's Execution is distinct from the test
/// traffic's and init is guaranteed to run.
ServeRequest gate_request(std::promise<void>& started,
                          std::shared_future<void> release) {
  ServeRequest gate;
  gate.client = "gate";
  gate.request = problem9_request(8.0);
  gate.request.init = [&started, release = std::move(release)](
                          Execution& exec) {
    started.set_value();
    release.wait();
    exec.set_array("U", [](int, int, int) { return 0.0; });
  };
  return gate;
}

TEST(Admission, FullQueueShedsAndShedTotalMatchesExactly) {
  const std::size_t kDepth = 2;
  ServeDaemon daemon(daemon_config(/*workers=*/1, kDepth));

  std::promise<void> started, release;
  auto gate_future =
      daemon.submit(gate_request(started, release.get_future().share()));
  started.get_future().wait();  // worker is now pinned, queue is empty

  // Fill the queue to depth, then overflow: every extra submission
  // must shed with AdmissionRejected and nothing else.
  std::vector<std::future<ServeResponse>> admitted;
  for (std::size_t i = 0; i < kDepth; ++i) {
    admitted.push_back(daemon.submit({"c", problem9_request()}));
  }
  EXPECT_EQ(daemon.service().metrics().gauge("serve.queue_depth"),
            static_cast<double>(kDepth));

  const int kOverflow = 3;
  int rejected = 0;
  for (int i = 0; i < kOverflow; ++i) {
    try {
      (void)daemon.submit({"c", problem9_request()});
      ADD_FAILURE() << "submission " << i << " should have shed";
    } catch (const AdmissionRejected& e) {
      ++rejected;
      EXPECT_EQ(e.client(), "c");
      EXPECT_EQ(e.depth(), kDepth);
    }
  }
  EXPECT_EQ(rejected, kOverflow);
  EXPECT_EQ(daemon.shed_total(), static_cast<std::uint64_t>(kOverflow));
  EXPECT_EQ(daemon.service().metrics().counter("serve.shed_total"),
            static_cast<double>(kOverflow))
      << "serve.shed_total must equal the AdmissionRejected count exactly";

  release.set_value();
  EXPECT_NO_THROW((void)gate_future.get());
  for (auto& f : admitted) {
    ServeResponse resp = f.get();
    EXPECT_GE(resp.stats.wall_seconds, 0.0);
    EXPECT_EQ(resp.worker, 0);
  }
  daemon.shutdown();
  EXPECT_EQ(daemon.service().metrics().gauge("serve.queue_depth"), 0.0);
  // Shedding counted nothing as admitted work.
  EXPECT_EQ(daemon.shed_total(), static_cast<std::uint64_t>(kOverflow));
}

TEST(Admission, RoundRobinInterleavesClientsInPickOrder) {
  ServeDaemon daemon(daemon_config(/*workers=*/1, /*queue_depth=*/16));

  std::promise<void> started, release;
  auto gate_future =
      daemon.submit(gate_request(started, release.get_future().share()));
  started.get_future().wait();

  // Queue A,A,A,B,B,C while the worker is pinned.  Round-robin picking
  // must interleave: A B C A B A (per-client FIFO preserved).
  struct Tagged {
    std::string client;
    std::future<ServeResponse> future;
  };
  std::vector<Tagged> submitted;
  for (const char* client : {"a", "a", "a", "b", "b", "c"}) {
    submitted.push_back(
        {client, daemon.submit({client, problem9_request()})});
  }
  release.set_value();
  (void)gate_future.get();

  // sequence is the global pick index; the gate request was pick 1.
  std::vector<std::pair<std::uint64_t, std::string>> picks;
  for (Tagged& t : submitted) {
    picks.emplace_back(t.future.get().sequence, t.client);
  }
  std::sort(picks.begin(), picks.end());
  std::vector<std::string> order;
  for (const auto& [seq, client] : picks) order.push_back(client);
  EXPECT_EQ(order,
            (std::vector<std::string>{"a", "b", "c", "a", "b", "a"}))
      << "one chatty client must not starve the others";
  EXPECT_EQ(picks.front().first, 2u) << "gate request was pick 1";
  daemon.shutdown();
}

TEST(Admission, PerClientOrderIsFifo) {
  ServeDaemon daemon(daemon_config(/*workers=*/1, /*queue_depth=*/16));
  std::promise<void> started, release;
  auto gate_future =
      daemon.submit(gate_request(started, release.get_future().share()));
  started.get_future().wait();

  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(daemon.submit({"solo", problem9_request()}));
  }
  release.set_value();
  (void)gate_future.get();
  std::uint64_t last = 0;
  for (auto& f : futures) {
    const std::uint64_t seq = f.get().sequence;
    EXPECT_GT(seq, last) << "a client's own requests must stay FIFO";
    last = seq;
  }
  daemon.shutdown();
}

TEST(Admission, SubmitAfterShutdownThrowsLogicError) {
  ServeDaemon daemon(daemon_config(/*workers=*/1, /*queue_depth=*/4));
  daemon.shutdown();
  EXPECT_THROW((void)daemon.submit({"c", problem9_request()}),
               std::logic_error);
}

TEST(Admission, QueueWaitHistogramRecordsAdmittedRequests) {
  ServeDaemon daemon(daemon_config(/*workers=*/1, /*queue_depth=*/8));
  auto resp = daemon.submit({"c", problem9_request()}).get();
  EXPECT_GE(resp.queue_seconds, 0.0);
  daemon.shutdown();
  const std::string json = daemon.service().metrics().to_json();
  EXPECT_NE(json.find("serve.queue_wait_ms"), std::string::npos)
      << "queue-wait histogram missing from metrics export: " << json;
}

TEST(Admission, TieredDaemonPromotesAndReportsTier) {
  DaemonConfig cfg = daemon_config(/*workers=*/1, /*queue_depth=*/16);
  cfg.tiered = true;
  ServeDaemon daemon(cfg);
  ServeRequest req{"c", problem9_request()};

  ServeResponse first = daemon.submit(req).get();
  EXPECT_STREQ(first.tier, "interp");
  EXPECT_EQ(first.outcome, CacheOutcome::Miss);

  // Promotion lands at some later run boundary; poll until it does.
  bool swapped = false;
  for (int i = 0; i < 2000 && !swapped; ++i) {
    swapped = daemon.submit(req).get().swapped;
  }
  EXPECT_TRUE(swapped);
  EXPECT_STREQ(daemon.submit(req).get().tier, "simd");
  EXPECT_GE(daemon.service().metrics().counter("serve.promotions_total"),
            1.0);
  daemon.shutdown();
}

}  // namespace
}  // namespace hpfsc::serve

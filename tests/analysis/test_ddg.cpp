#include "analysis/ddg.hpp"

#include <gtest/gtest.h>

#include "frontend/lower.hpp"
#include "passes/normalize.hpp"
#include "passes/offset_arrays.hpp"

namespace hpfsc::analysis {
namespace {

ir::Program prepare(std::string_view src, bool run_offset = false) {
  DiagnosticEngine diags;
  auto r = frontend::lower_source(src, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  if (run_offset) {
    passes::normalize(r.program, {}, diags);
    passes::OffsetArrayOptions opts;
    opts.live_out = {"T"};
    passes::offset_arrays(r.program, opts, diags);
    EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  }
  return std::move(r.program);
}

std::vector<const ir::Stmt*> stmts_of(const ir::Program& p) {
  std::vector<const ir::Stmt*> out;
  for (const auto& s : p.body) out.push_back(s.get());
  return out;
}

bool has_edge(const Ddg& g, int from, int to, DepKind kind) {
  for (const DepEdge& e : g.edges()) {
    if (e.from == from && e.to == to && e.kind == kind) return true;
  }
  return false;
}

TEST(Ddg, TrueDependence) {
  ir::Program p = prepare(
      "INTEGER N\nREAL A(N,N), B(N,N), C(N,N)\n"
      "A = B\n"
      "C = A\n");
  Ddg g = Ddg::build(stmts_of(p));
  EXPECT_TRUE(has_edge(g, 0, 1, DepKind::True));
  EXPECT_TRUE(g.reaches(0, 1));
}

TEST(Ddg, AntiDependence) {
  ir::Program p = prepare(
      "INTEGER N\nREAL A(N,N), B(N,N), C(N,N)\n"
      "C = A\n"
      "A = B\n");
  Ddg g = Ddg::build(stmts_of(p));
  EXPECT_TRUE(has_edge(g, 0, 1, DepKind::Anti));
}

TEST(Ddg, OutputDependence) {
  ir::Program p = prepare(
      "INTEGER N\nREAL A(N,N), B(N,N), C(N,N)\n"
      "A = B\n"
      "A = C\n");
  Ddg g = Ddg::build(stmts_of(p));
  EXPECT_TRUE(has_edge(g, 0, 1, DepKind::Output));
}

TEST(Ddg, IndependentStatementsHaveNoEdges) {
  ir::Program p = prepare(
      "INTEGER N\nREAL A(N,N), B(N,N), C(N,N), D(N,N)\n"
      "A = B\n"
      "C = D\n");
  Ddg g = Ddg::build(stmts_of(p));
  EXPECT_TRUE(g.edges().empty());
  EXPECT_FALSE(g.reaches(0, 1));
}

TEST(Ddg, OverlapShiftFeedsOffsetUse) {
  ir::Program p = prepare(
      "INTEGER N\nREAL U(N,N), T(N,N)\n"
      "T = CSHIFT(U,+1,1) + U\n",
      /*run_offset=*/true);
  // Post offset pass: OVERLAP_CSHIFT(U,+1,1); T = U<+1,0> + U.
  Ddg g = Ddg::build(stmts_of(p));
  ASSERT_EQ(g.size(), 2);
  EXPECT_TRUE(has_edge(g, 0, 1, DepKind::True));
}

TEST(Ddg, IdempotentOverlapRefillHasNoIncomingAntiEdge) {
  // compute reads the +1 halo of U, then a second overlap shift refills
  // the same side: no anti dependence (the paper's Figure 14 grouping
  // depends on this).
  ir::Program p = prepare(
      "INTEGER N\nREAL U(N,N), T(N,N), S(N,N)\n"
      "T = CSHIFT(U,+1,1)\n"
      "S = CSHIFT(U,+1,1) + T\n",
      /*run_offset=*/false);
  DiagnosticEngine diags;
  passes::normalize(p, {}, diags);
  passes::OffsetArrayOptions opts;
  opts.live_out = {"S"};
  passes::offset_arrays(p, opts, diags);
  std::vector<const ir::Stmt*> stmts = stmts_of(p);
  Ddg g = Ddg::build(stmts);
  for (const DepEdge& e : g.edges()) {
    if (stmts[static_cast<std::size_t>(e.to)]->kind ==
        ir::StmtKind::OverlapShift) {
      EXPECT_EQ(e.kind, DepKind::True)
          << "non-true edge into an overlap shift";
    }
  }
}

TEST(Ddg, RedefinitionOrdersOverlapShifts) {
  // U = ... must stay between shifts that read the old and new U.
  ir::Program p = prepare(
      "INTEGER N\nREAL U(N,N), V(N,N), T(N,N)\n"
      "T = CSHIFT(U,+1,1)\n"
      "U = V\n"
      "T = T + CSHIFT(U,+1,1)\n");
  DiagnosticEngine diags;
  passes::normalize(p, {}, diags);
  std::vector<const ir::Stmt*> stmts = stmts_of(p);
  Ddg g = Ddg::build(stmts);
  // Find the shift statements and the redefinition.
  int first_shift = -1;
  int redef = -1;
  int second_shift = -1;
  for (int i = 0; i < static_cast<int>(stmts.size()); ++i) {
    if (stmts[static_cast<std::size_t>(i)]->kind ==
        ir::StmtKind::ShiftAssign) {
      (first_shift < 0 ? first_shift : second_shift) = i;
    }
    if (stmts[static_cast<std::size_t>(i)]->kind ==
        ir::StmtKind::ArrayAssign) {
      const auto& a = static_cast<const ir::ArrayAssignStmt&>(
          *stmts[static_cast<std::size_t>(i)]);
      if (p.symbols.array(a.lhs.array).name == "U") redef = i;
    }
  }
  ASSERT_GE(first_shift, 0);
  ASSERT_GE(redef, 0);
  ASSERT_GE(second_shift, 0);
  EXPECT_TRUE(g.reaches(first_shift, redef));   // anti: read before write
  EXPECT_TRUE(g.reaches(redef, second_shift));  // true: write before read
}

TEST(Ddg, ScalarDependences) {
  ir::Program p = prepare(
      "INTEGER N\nREAL X, Y\nREAL A(N,N), B(N,N)\n"
      "X = 2.0\n"
      "A = X * B\n");
  Ddg g = Ddg::build(stmts_of(p));
  EXPECT_TRUE(has_edge(g, 0, 1, DepKind::True));
}

TEST(Ddg, AllocActsAsDefinition) {
  ir::Program p = prepare(
      "INTEGER N\nREAL A(N,N), B(N,N)\n"
      "B = A\n"
      "ALLOCATE A\n");
  Ddg g = Ddg::build(stmts_of(p));
  EXPECT_TRUE(has_edge(g, 0, 1, DepKind::Anti));
}

TEST(AccessesOf, OverlapShiftWithRsdReadsLowerHalos) {
  auto stmt = std::make_unique<ir::OverlapShiftStmt>();
  stmt->src.array = 0;
  stmt->shift = -1;
  stmt->dim = 1;
  stmt->rsd.lo[0] = 1;
  stmt->rsd.hi[0] = 1;
  AccessSets sets = accesses_of(*stmt);
  // Writes the dim-1 negative halo; reads owned + both dim-0 halos.
  bool writes_halo = false;
  for (const Access& a : sets.writes) {
    if (a.kind == Access::Kind::Halo && a.dim == 1 && a.dir == -1) {
      writes_halo = true;
    }
  }
  EXPECT_TRUE(writes_halo);
  int halo_reads = 0;
  for (const Access& a : sets.reads) {
    if (a.kind == Access::Kind::Halo && a.dim == 0) ++halo_reads;
  }
  EXPECT_EQ(halo_reads, 2);
}

}  // namespace
}  // namespace hpfsc::analysis

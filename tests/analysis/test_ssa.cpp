#include "analysis/array_ssa.hpp"

#include <gtest/gtest.h>

#include "frontend/lower.hpp"

namespace hpfsc::analysis {
namespace {

ir::Program lower(std::string_view src) {
  DiagnosticEngine diags;
  auto r = frontend::lower_source(src, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  return std::move(r.program);
}

const ir::ArrayAssignStmt& assign_at(const ir::Program& p, std::size_t i) {
  return static_cast<const ir::ArrayAssignStmt&>(*p.body[i]);
}

TEST(ArraySsa, StraightLineVersions) {
  ir::Program p = lower(
      "INTEGER N\nREAL A(N,N), B(N,N)\n"
      "A = B\n"
      "A = A + B\n");
  ArraySsa ssa = ArraySsa::build(p);
  ir::ArrayId a = *p.symbols.find_array("A");
  // Initial + two defs.
  EXPECT_EQ(ssa.num_versions(a), 3);
  int v1 = ssa.def_version(*p.body[0]);
  int v2 = ssa.def_version(*p.body[1]);
  EXPECT_NE(v1, v2);
  // The use of A in statement 2 sees version v1.
  const auto& stmt2 = assign_at(p, 1);
  bool found = false;
  ir::visit_exprs(*stmt2.rhs, [&](const ir::Expr& e) {
    if (e.kind == ir::ExprKind::ArrayRefK && e.ref.array == a) {
      EXPECT_EQ(ssa.use_version(e.ref), v1);
      found = true;
    }
  });
  EXPECT_TRUE(found);
  EXPECT_TRUE(ssa.live_at_exit(a, v2));
  EXPECT_FALSE(ssa.live_at_exit(a, v1));
}

TEST(ArraySsa, UsesAreRecordedPerVersion) {
  ir::Program p = lower(
      "INTEGER N\nREAL A(N,N), B(N,N), C(N,N)\n"
      "A = B\n"
      "C = A + A\n");
  ArraySsa ssa = ArraySsa::build(p);
  ir::ArrayId a = *p.symbols.find_array("A");
  int v1 = ssa.def_version(*p.body[0]);
  EXPECT_EQ(ssa.uses_of(a, v1).size(), 2u);
}

TEST(ArraySsa, SectionAssignReadsOldVersion) {
  ir::Program p = lower(
      "INTEGER N\nREAL A(N,N), B(N,N)\n"
      "A(2:N-1,2:N-1) = B(2:N-1,2:N-1)\n");
  ArraySsa ssa = ArraySsa::build(p);
  ir::ArrayId a = *p.symbols.find_array("A");
  // The partial write both uses version 0 and defines version 1.
  EXPECT_EQ(ssa.uses_of(a, 0).size(), 1u);
  EXPECT_EQ(ssa.def_version(*p.body[0]), 1);
}

TEST(ArraySsa, IfCreatesPhi) {
  ir::Program p = lower(
      "INTEGER N, F\nREAL A(N,N), B(N,N), C(N,N)\n"
      "A = B\n"
      "IF (F > 0) THEN\n"
      "  A = C\n"
      "ENDIF\n"
      "B = A\n");
  ArraySsa ssa = ArraySsa::build(p);
  ir::ArrayId a = *p.symbols.find_array("A");
  int v1 = ssa.def_version(*p.body[0]);
  EXPECT_TRUE(ssa.feeds_phi(a, v1));
  // The use after the merge sees the phi, not either def.
  const auto& last = assign_at(p, 2);
  int use_ver = -1;
  ir::visit_exprs(*last.rhs, [&](const ir::Expr& e) {
    if (e.kind == ir::ExprKind::ArrayRefK) use_ver = ssa.use_version(e.ref);
  });
  EXPECT_NE(use_ver, v1);
  EXPECT_EQ(ssa.version_info(a, use_ver).kind, SsaVersion::Kind::Phi);
  EXPECT_EQ(ssa.version_info(a, use_ver).phi_operands.size(), 2u);
}

TEST(ArraySsa, NoPhiWhenBranchesDoNotRedefine) {
  ir::Program p = lower(
      "INTEGER N, F\nREAL A(N,N), B(N,N), C(N,N)\n"
      "A = B\n"
      "IF (F > 0) THEN\n"
      "  C = A\n"
      "ENDIF\n"
      "B = A\n");
  ArraySsa ssa = ArraySsa::build(p);
  ir::ArrayId a = *p.symbols.find_array("A");
  int v1 = ssa.def_version(*p.body[0]);
  EXPECT_FALSE(ssa.feeds_phi(a, v1));
  EXPECT_EQ(ssa.num_versions(a), 2);  // initial + one def
}

TEST(ArraySsa, DoLoopHeaderPhi) {
  ir::Program p = lower(
      "INTEGER N, S\nREAL A(N,N), B(N,N)\n"
      "A = B\n"
      "DO K = 1, S\n"
      "  A = A + B\n"
      "ENDDO\n"
      "B = A\n");
  ArraySsa ssa = ArraySsa::build(p);
  ir::ArrayId a = *p.symbols.find_array("A");
  int v_pre = ssa.def_version(*p.body[0]);
  EXPECT_TRUE(ssa.feeds_phi(a, v_pre));
  // The use inside the loop body sees the header phi.
  const auto& loop = static_cast<const ir::DoStmt&>(*p.body[1]);
  const auto& body_assign =
      static_cast<const ir::ArrayAssignStmt&>(*loop.body[0]);
  int body_use = -1;
  ir::visit_exprs(*body_assign.rhs, [&](const ir::Expr& e) {
    if (e.kind == ir::ExprKind::ArrayRefK && e.ref.array == a) {
      body_use = ssa.use_version(e.ref);
    }
  });
  ASSERT_GE(body_use, 0);
  const SsaVersion& phi = ssa.version_info(a, body_use);
  EXPECT_EQ(phi.kind, SsaVersion::Kind::Phi);
  ASSERT_EQ(phi.phi_operands.size(), 2u);
  EXPECT_EQ(phi.phi_operands[0], v_pre);
  // Second operand is the body's def (loop-carried).
  EXPECT_EQ(phi.phi_operands[1], ssa.def_version(body_assign));
}

TEST(ArraySsa, VersionAtTracksRedefinitions) {
  ir::Program p = lower(
      "INTEGER N\nREAL A(N,N), B(N,N), C(N,N)\n"
      "C = A\n"
      "A = B\n"
      "C = A\n");
  ArraySsa ssa = ArraySsa::build(p);
  ir::ArrayId a = *p.symbols.find_array("A");
  EXPECT_EQ(ssa.version_at(*p.body[0], a), 0);
  EXPECT_EQ(ssa.version_at(*p.body[1], a), 0);
  EXPECT_EQ(ssa.version_at(*p.body[2], a), ssa.def_version(*p.body[1]));
}

TEST(ArraySsa, ShiftAndCopyAndAllocAreDefs) {
  ir::Program p = lower(
      "INTEGER N\nREAL A(N,N), B(N,N)\n"
      "ALLOCATE A\n"
      "A = CSHIFT(B,+1,1)\n");
  // Lowered: Alloc + ArrayAssign(rhs=shift).  Both define A.
  ArraySsa ssa = ArraySsa::build(p);
  ir::ArrayId a = *p.symbols.find_array("A");
  EXPECT_EQ(ssa.num_versions(a), 3);
  EXPECT_GE(ssa.def_version(*p.body[0]), 1);
}

TEST(ArraySsa, UnknownRefReturnsMinusOne) {
  ir::Program p = lower("INTEGER N\nREAL A(N,N), B(N,N)\nA = B\n");
  ArraySsa ssa = ArraySsa::build(p);
  ir::ArrayRef stray;
  stray.array = 0;
  EXPECT_EQ(ssa.use_version(stray), -1);
  EXPECT_EQ(ssa.def_version(*p.body[0]) >= 0, true);
}

}  // namespace
}  // namespace hpfsc::analysis

#include "analysis/congruence.hpp"

#include <gtest/gtest.h>

#include "frontend/lower.hpp"

namespace hpfsc::analysis {
namespace {

ir::Program lower(std::string_view src) {
  DiagnosticEngine diags;
  auto r = frontend::lower_source(src, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  return std::move(r.program);
}

std::vector<const ir::Stmt*> stmts_of(const ir::Program& p) {
  std::vector<const ir::Stmt*> out;
  for (const auto& s : p.body) out.push_back(s.get());
  return out;
}

TEST(Classify, ComputeSignatureUsesDistributionAndSpace) {
  ir::Program p = lower(
      "INTEGER N\nREAL A(N,N), B(N,N), C(N,N), D(N,N)\n"
      "!HPF$ DISTRIBUTE D(BLOCK,*)\n"
      "A = B\n"
      "C = B\n"
      "D = B\n"
      "A(2:N-1,2:N-1) = B(2:N-1,2:N-1)\n");
  StmtClass a = classify(*p.body[0], p.symbols);
  StmtClass c = classify(*p.body[1], p.symbols);
  StmtClass d = classify(*p.body[2], p.symbols);
  StmtClass a_section = classify(*p.body[3], p.symbols);
  EXPECT_EQ(a.kind, StmtClass::Kind::Compute);
  EXPECT_EQ(a, c);          // same distribution, same space -> congruent
  EXPECT_NE(a, d);          // different distribution
  EXPECT_NE(a, a_section);  // different iteration space
}

TEST(Classify, ShiftsAreCommunication) {
  ir::Program p = lower(
      "INTEGER N\nREAL A(N,N), B(N,N)\n"
      "A = CSHIFT(B,+1,1)\n");
  // Lowered as an ArrayAssign with shift RHS; classify the normal-form
  // statement kinds directly instead.
  auto shift = std::make_unique<ir::ShiftAssignStmt>();
  EXPECT_EQ(classify(*shift, p.symbols).kind,
            StmtClass::Kind::Communication);
  auto overlap = std::make_unique<ir::OverlapShiftStmt>();
  EXPECT_EQ(classify(*overlap, p.symbols).kind,
            StmtClass::Kind::Communication);
}

TEST(Classify, ScalarAndBarrier) {
  ir::Program p = lower(
      "INTEGER N\nREAL X\nREAL A(N,N)\n"
      "X = 1.0\n"
      "ALLOCATE A\n");
  EXPECT_EQ(classify(*p.body[0], p.symbols).kind, StmtClass::Kind::Scalar);
  EXPECT_EQ(classify(*p.body[1], p.symbols).kind, StmtClass::Kind::Barrier);
}

TEST(TypedFusion, GroupsCongruentComputeTogether) {
  ir::Program p = lower(
      "INTEGER N\nREAL A(N,N), B(N,N), C(N,N), D(N,N), E(N,N)\n"
      "A = B\n"
      "C = D\n"
      "E = A\n");
  auto stmts = stmts_of(p);
  Ddg ddg = Ddg::build(stmts);
  auto groups = typed_fusion(stmts, ddg, p.symbols);
  // All three are congruent; A=B -> E=A is a true dep but stays within
  // one group (loop-independent).
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].stmts.size(), 3u);
}

TEST(TypedFusion, RespectsDependenceOrder) {
  ir::Program p = lower(
      "INTEGER N\nREAL A(N,N), B(N,N), C(N,N)\n"
      "A = B\n"
      "C = A\n");
  auto stmts = stmts_of(p);
  Ddg ddg = Ddg::build(stmts);
  auto groups = typed_fusion(stmts, ddg, p.symbols);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].stmts, (std::vector<int>{0, 1}));
}

TEST(TypedFusion, SeparatesNonCongruentSpaces) {
  ir::Program p = lower(
      "INTEGER N\nREAL A(N,N), B(N,N), C(N,N)\n"
      "A = B\n"
      "C(2:N-1,2:N-1) = B(2:N-1,2:N-1)\n"
      "A = A + B\n");
  auto stmts = stmts_of(p);
  Ddg ddg = Ddg::build(stmts);
  auto groups = typed_fusion(stmts, ddg, p.symbols);
  // Whole-array statements fuse into one group; the sectioned one is
  // separate (2 groups total, since nothing orders it between them).
  ASSERT_EQ(groups.size(), 2u);
  int whole = 0;
  for (const auto& g : groups) {
    whole = std::max(whole, static_cast<int>(g.stmts.size()));
  }
  EXPECT_EQ(whole, 2);
}

TEST(TypedFusion, BarriersStayAlone) {
  ir::Program p = lower(
      "INTEGER N\nREAL A(N,N), B(N,N)\n"
      "ALLOCATE A\n"
      "A = B\n"
      "A = A + B\n");
  auto stmts = stmts_of(p);
  Ddg ddg = Ddg::build(stmts);
  auto groups = typed_fusion(stmts, ddg, p.symbols);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].cls.kind, StmtClass::Kind::Barrier);
  EXPECT_EQ(groups[0].stmts.size(), 1u);
  EXPECT_EQ(groups[1].stmts.size(), 2u);
}

TEST(TypedFusion, EveryStatementScheduledExactlyOnce) {
  ir::Program p = lower(
      "INTEGER N\nREAL A(N,N), B(N,N), C(N,N), D(N,N)\n"
      "A = B\n"
      "C = A\n"
      "D = C\n"
      "A = D\n"
      "B = A\n");
  auto stmts = stmts_of(p);
  Ddg ddg = Ddg::build(stmts);
  auto groups = typed_fusion(stmts, ddg, p.symbols);
  std::vector<bool> seen(stmts.size(), false);
  for (const auto& g : groups) {
    for (int i : g.stmts) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(i)]);
      seen[static_cast<std::size_t>(i)] = true;
    }
  }
  for (bool b : seen) EXPECT_TRUE(b);
}

}  // namespace
}  // namespace hpfsc::analysis

#include "codegen/lower_spmd.hpp"

#include <gtest/gtest.h>

#include "driver/paper_kernels.hpp"
#include "frontend/lower.hpp"
#include "passes/pipeline.hpp"

namespace hpfsc::codegen {
namespace {

spmd::Program lower_level(const char* src, int level,
                          std::vector<std::string> live_out = {"T"}) {
  DiagnosticEngine diags;
  auto lowered = frontend::lower_source(src, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  passes::PassOptions opts = passes::PassOptions::level(level);
  opts.offset.live_out = std::move(live_out);
  passes::run_pipeline(lowered.program, opts, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  spmd::Program prog = lower_to_spmd(lowered.program, LowerOptions{}, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  return prog;
}

spmd::Program lower_xlhpf(const char* src) {
  DiagnosticEngine diags;
  auto lowered = frontend::lower_source(src, diags);
  passes::NormalizeOptions nopts;
  passes::normalize(lowered.program, nopts, diags);
  LowerOptions cg;
  cg.expr_temps = true;
  spmd::Program prog = lower_to_spmd(lowered.program, cg, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  return prog;
}

int count_ops(const std::vector<spmd::Op>& ops, spmd::OpKind kind) {
  int n = 0;
  for (const auto& op : ops) {
    if (op.kind == kind) ++n;
    n += count_ops(op.then_ops, kind) + count_ops(op.else_ops, kind) +
         count_ops(op.body, kind);
  }
  return n;
}

TEST(LowerSpmd, Problem9AtO4) {
  spmd::Program p = lower_level(kernels::kProblem9, 4);
  EXPECT_EQ(count_ops(p.ops, spmd::OpKind::OverlapShift), 4);
  EXPECT_EQ(count_ops(p.ops, spmd::OpKind::FullShift), 0);
  EXPECT_EQ(count_ops(p.ops, spmd::OpKind::LoopNest), 1);
  auto comm = p.comm_summary();
  EXPECT_EQ(comm.overlap_shifts, 4);
  // Scalars and arrays carried over; eliminated arrays marked.
  EXPECT_GE(p.find_scalar("N"), 0);
  int rip = p.find_array("RIP");
  ASSERT_GE(rip, 0);
  EXPECT_TRUE(p.arrays[static_cast<std::size_t>(rip)].eliminated);
  int u = p.find_array("U");
  ASSERT_GE(u, 0);
  EXPECT_TRUE(p.arrays[static_cast<std::size_t>(u)].prealloc);
  EXPECT_EQ(p.arrays[static_cast<std::size_t>(u)].halo_lo[0], 1);
  EXPECT_EQ(p.arrays[static_cast<std::size_t>(u)].halo_hi[1], 1);
}

TEST(LowerSpmd, NestCarriesAnnotations) {
  spmd::Program p = lower_level(kernels::kProblem9, 4);
  const spmd::Op* nest = nullptr;
  for (const auto& op : p.ops) {
    if (op.kind == spmd::OpKind::LoopNest) nest = &op;
  }
  ASSERT_NE(nest, nullptr);
  EXPECT_EQ(nest->unroll, 4);
  EXPECT_TRUE(nest->scalar_replace);
  EXPECT_EQ(nest->loop_order[0], 1);  // permuted: j outermost
  EXPECT_EQ(nest->kernels.size(), 7u);
  // Loads are interned: 9 distinct U refs + 1 T ref.
  EXPECT_EQ(nest->loads.size(), 10u);
}

TEST(LowerSpmd, RsdSurvivesToRuntimeOp) {
  spmd::Program p = lower_level(kernels::kProblem9, 4);
  int with_rsd = 0;
  for (const auto& op : p.ops) {
    if (op.kind == spmd::OpKind::OverlapShift && op.rsd.any()) ++with_rsd;
  }
  EXPECT_EQ(with_rsd, 2);  // the two dim-2 shifts carry [0:N+1,*]
}

TEST(LowerSpmd, OffsetAnnotationFoldsIntoRsdWithoutUnioning) {
  // At O1 the multi-offset shifts still carry their source annotation;
  // codegen must translate it into an equivalent RSD for the runtime.
  spmd::Program p = lower_level(kernels::kProblem9, 1);
  int with_rsd = 0;
  for (const auto& op : p.ops) {
    if (op.kind == spmd::OpKind::OverlapShift && op.rsd.any()) ++with_rsd;
  }
  EXPECT_EQ(with_rsd, 4);  // four U<+-1,0> shifts in dim 2
}

TEST(LowerSpmd, O0KeepsFullShiftsAndTemps) {
  spmd::Program p = lower_level(kernels::kProblem9, 0);
  EXPECT_EQ(count_ops(p.ops, spmd::OpKind::FullShift), 8);
  EXPECT_EQ(count_ops(p.ops, spmd::OpKind::Alloc), 1);
  EXPECT_EQ(count_ops(p.ops, spmd::OpKind::Free), 1);
  EXPECT_EQ(count_ops(p.ops, spmd::OpKind::LoopNest), 7);
}

TEST(LowerSpmd, ControlFlowStructure) {
  spmd::Program p = lower_level(
      "INTEGER N, S, F\nREAL U(N,N), T(N,N)\n"
      "DO K = 1, S\n"
      "  IF (F > 0) THEN\n"
      "    T = U\n"
      "  ELSE\n"
      "    T = U + 1.0\n"
      "  ENDIF\n"
      "ENDDO\n",
      4);
  ASSERT_EQ(p.ops.size(), 1u);
  EXPECT_EQ(p.ops[0].kind, spmd::OpKind::Do);
  ASSERT_EQ(p.ops[0].body.size(), 1u);
  const spmd::Op& iff = p.ops[0].body[0];
  EXPECT_EQ(iff.kind, spmd::OpKind::If);
  EXPECT_EQ(iff.then_ops.size(), 1u);
  EXPECT_EQ(iff.else_ops.size(), 1u);
  EXPECT_FALSE(iff.cond.empty());
}

TEST(LowerSpmd, XlhpfModeCreatesExpressionTemps) {
  spmd::Program p = lower_xlhpf(
      "INTEGER N\nREAL A(N,N), B(N,N), T(N,N)\n"
      "T = A + B\n");
  // One expression temp for A+B, one final copy nest into T.
  EXPECT_EQ(count_ops(p.ops, spmd::OpKind::LoopNest), 2);
  int etemps = 0;
  for (const auto& spec : p.arrays) {
    if (spec.name.rfind("ETMP", 0) == 0) ++etemps;
  }
  EXPECT_EQ(etemps, 1);
  // The temp is allocated and freed around its use.
  EXPECT_EQ(count_ops(p.ops, spmd::OpKind::Alloc), 1);
  EXPECT_EQ(count_ops(p.ops, spmd::OpKind::Free), 1);
}

TEST(LowerSpmd, XlhpfScalarSubexpressionsFoldInline) {
  spmd::Program p = lower_xlhpf(
      "INTEGER N\nREAL C1, C2\nREAL A(N,N), T(N,N)\n"
      "T = C1 * C2 * A\n");
  // (C1*C2) needs no array temp; only the op against A and the final
  // assignment.
  int etemps = 0;
  for (const auto& spec : p.arrays) {
    if (spec.name.rfind("ETMP", 0) == 0) ++etemps;
  }
  EXPECT_EQ(etemps, 1);
}

TEST(LowerSpmd, XlhpfUnaryMinus) {
  spmd::Program p = lower_xlhpf(
      "INTEGER N\nREAL A(N,N), T(N,N)\n"
      "T = -A\n");
  EXPECT_EQ(count_ops(p.ops, spmd::OpKind::LoopNest), 2);
}

TEST(LowerSpmd, UnscalarizedAssignIsInternalError) {
  DiagnosticEngine diags;
  auto lowered = frontend::lower_source(
      "INTEGER N\nREAL A(N,N), B(N,N)\nA = B\n", diags);
  LowerOptions cg;  // expr_temps = false, no scalarization ran
  (void)lower_to_spmd(lowered.program, cg, diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(CommSummary, CountsInsideControlFlow) {
  spmd::Program p = lower_level(kernels::kJacobiTimeLoop, 4, {"U", "T"});
  auto comm = p.comm_summary();
  EXPECT_EQ(comm.overlap_shifts, 4);
  EXPECT_EQ(comm.full_shifts, 0);
}

}  // namespace
}  // namespace hpfsc::codegen

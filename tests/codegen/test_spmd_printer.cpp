#include "codegen/spmd_printer.hpp"

#include <gtest/gtest.h>

#include "driver/compiler.hpp"
#include "driver/paper_kernels.hpp"

namespace hpfsc::codegen {
namespace {

spmd::Program compile(const char* src, CompilerOptions opts,
                      std::vector<std::string> live_out = {"T"}) {
  opts.passes.offset.live_out = std::move(live_out);
  Compiler compiler;
  return compiler.compile(src, opts).program;
}

TEST(SpmdPrinter, Problem9O4NodeProgram) {
  spmd::Program p = compile(kernels::kProblem9, CompilerOptions::level(4));
  std::string text = SpmdPrinter(p).print();
  // Array table: U keeps storage with overlap areas; RIP is eliminated.
  EXPECT_NE(text.find("* U(N,N) program array, overlap areas [1:1,1:1]"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("* RIP: storage eliminated (offset array)"),
            std::string::npos);
  // Communication: boundary exchanges, two with RSDs.
  EXPECT_NE(text.find("CALL OVERLAP_SHIFT(U, SHIFT=-1, DIM=2, "
                      "RSD=[0:N+1,*])   ! boundary exchange only"),
            std::string::npos);
  // The subgrid loop nest with ownership clamping and annotations.
  EXPECT_NE(text.find("DO j = max(1, my_lo2), min(N, my_hi2), 4   "
                      "! unroll-and-jam"),
            std::string::npos);
  EXPECT_NE(text.find("T(i,j) = U(i,j) + U(i+1,j) + U(i-1,j)"),
            std::string::npos);
  EXPECT_NE(text.find("! scalar replacement applied"), std::string::npos);
}

TEST(SpmdPrinter, O0ShowsFullShiftsAndTemps) {
  spmd::Program p = compile(kernels::kProblem9, CompilerOptions::level(0));
  std::string text = SpmdPrinter(p).print();
  EXPECT_NE(text.find("CALL MPI_SENDRECV_SHIFT(RIP <- U, SHIFT=+1, DIM=1)"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ALLOCATE TMP1"), std::string::npos);
  EXPECT_NE(text.find("DEALLOCATE TMP1"), std::string::npos);
}

TEST(SpmdPrinter, CompensationCopyFusesIntoTheNest) {
  // Scalarization turns the compensation copy into a nest statement and
  // fuses it with the compute loop: RIP materializes inside the single
  // subgrid loop.
  spmd::Program p = compile(
      "INTEGER N\nREAL U(N,N), T(N,N), RIP(N,N)\n"
      "RIP = CSHIFT(U,SHIFT=+1,DIM=1)\n"
      "T = U + RIP\n",
      CompilerOptions::level(4), {"T", "RIP"});
  std::string text = SpmdPrinter(p).print_ops();
  EXPECT_NE(text.find("RIP(i,j) = U(i+1,j)"), std::string::npos) << text;
  EXPECT_NE(text.find("T(i,j) = U(i,j) + U(i+1,j)"), std::string::npos);
}

TEST(SpmdPrinter, CopyOffsetOpRendering) {
  // Direct rendering of a CopyOffset op (the unscalarized form).
  spmd::Program p;
  p.arrays.push_back(spmd::ArraySpec{.name = "RIP", .rank = 2});
  p.arrays.push_back(spmd::ArraySpec{.name = "U", .rank = 2});
  spmd::Op op;
  op.kind = spmd::OpKind::CopyOffset;
  op.array = 0;
  op.src = 1;
  op.copy_offset = {1, 0, 0};
  p.ops.push_back(std::move(op));
  EXPECT_EQ(SpmdPrinter(p).print_ops(),
            "RIP = U<+1,0>   ! compensation copy\n");
}

TEST(SpmdPrinter, ControlFlowRendering) {
  spmd::Program p = compile(
      "INTEGER N, NSTEPS, F\nREAL U(N,N), T(N,N)\n"
      "DO K = 1, NSTEPS\n"
      "  IF (F > 0) THEN\n"
      "    T = U\n"
      "  ELSE\n"
      "    T = U + 1.0\n"
      "  ENDIF\n"
      "ENDDO\n",
      CompilerOptions::level(4));
  std::string text = SpmdPrinter(p).print_ops();
  EXPECT_NE(text.find("DO K = 1, NSTEPS"), std::string::npos);
  EXPECT_NE(text.find("IF (F > 0"), std::string::npos);
  EXPECT_NE(text.find("ELSE"), std::string::npos);
  EXPECT_NE(text.find("ENDDO"), std::string::npos);
}

TEST(SpmdPrinter, EoShiftMarked) {
  spmd::Program p = compile(
      "INTEGER N\nREAL U(N,N), T(N,N)\n"
      "T = EOSHIFT(U,+1,0.0,1)\n",
      CompilerOptions::level(0));
  std::string text = SpmdPrinter(p).print_ops();
  EXPECT_NE(text.find("EOSHIFT"), std::string::npos);
}

TEST(SpmdPrinter, ExpressionRendering) {
  spmd::Program p = compile(
      "INTEGER N\nREAL C1\nREAL U(N,N), T(N,N)\n"
      "T = C1 * (U + CSHIFT(U,+1,1)) - U / 2.0\n",
      CompilerOptions::level(4));
  std::string text = SpmdPrinter(p).print_ops();
  EXPECT_NE(text.find("C1*(U(i,j) + U(i+1,j)) - U(i,j)/2.0"),
            std::string::npos)
      << text;
}

}  // namespace
}  // namespace hpfsc::codegen

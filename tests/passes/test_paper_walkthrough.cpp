// End-to-end reproduction of the paper's Section 4 walkthrough: the
// Problem 9 kernel is carried through every phase, and the per-phase
// listings are checked against Figures 12-16.  Also verifies the
// paper's central claim (Sections 4.5, 5): all three specifications of
// the 9-point stencil reach the same optimized communication code.
#include <gtest/gtest.h>

#include "driver/paper_kernels.hpp"
#include "helpers.hpp"
#include "support/text.hpp"

namespace hpfsc::passes {
namespace {

using testing::compile_level;

const std::string* find_listing(const PipelineResult& r,
                                const std::string& phase) {
  for (const PhaseListing& l : r.listings) {
    if (l.phase == phase) return &l.code;
  }
  return nullptr;
}

TEST(PaperWalkthrough, Problem9PhaseListings) {
  PipelineResult result;
  PassOptions opts = PassOptions::level(4);
  opts.offset.live_out = {"T"};
  compile_level(kernels::kProblem9, 4, &result, &opts);

  const std::string* normalize = find_listing(result, "normalize");
  ASSERT_NE(normalize, nullptr);
  EXPECT_NE(normalize->find("TMP1 = CSHIFT(U, SHIFT=-1, DIM=2)"),
            std::string::npos);

  const std::string* offset = find_listing(result, "offset-arrays");
  ASSERT_NE(offset, nullptr);
  EXPECT_NE(offset->find("T = U + U<+1,0> + U<-1,0>"), std::string::npos);
  EXPECT_NE(offset->find("CALL OVERLAP_CSHIFT(U<+1,0>, SHIFT=-1, DIM=2)"),
            std::string::npos);

  const std::string* partitioned =
      find_listing(result, "context-partitioning");
  ASSERT_NE(partitioned, nullptr);
  // All communication precedes all computation.
  EXPECT_LT(partitioned->rfind("OVERLAP_CSHIFT"), partitioned->find("T ="));

  const std::string* unioned =
      find_listing(result, "communication-unioning");
  ASSERT_NE(unioned, nullptr);
  EXPECT_NE(unioned->find("CALL OVERLAP_CSHIFT(U, SHIFT=-1, DIM=2, "
                          "[0:N+1,*])"),
            std::string::npos);

  const std::string* scalarized = find_listing(result, "scalarization");
  ASSERT_NE(scalarized, nullptr);
  EXPECT_NE(scalarized->find("T(i,j) = U(i,j) + U(i+1,j) + U(i-1,j)"),
            std::string::npos);

  EXPECT_EQ(result.unioning.shifts_before, 8);
  EXPECT_EQ(result.unioning.shifts_after, 4);
  EXPECT_EQ(result.offset.arrays_eliminated, 3);
}

/// Extracts the communication prefix (the OVERLAP_CSHIFT lines) of the
/// optimized body.
std::string comm_prefix(const ir::Program& p) {
  std::string text = testing::body_text(p);
  std::string out;
  for (const std::string& line : hpfsc::split_lines(text)) {
    if (line.find("OVERLAP_CSHIFT") != std::string::npos) out += line + "\n";
  }
  return out;
}

TEST(PaperWalkthrough, AllThreeNinePointSpecsReachSameCommunication) {
  PassOptions opts = PassOptions::level(4);
  opts.offset.live_out = {"T"};
  ir::Program multi = compile_level(kernels::kProblem9, 4, nullptr, &opts);
  ir::Program single =
      compile_level(kernels::kNinePointCShift, 4, nullptr, &opts);

  const std::string expected =
      "CALL OVERLAP_CSHIFT(U, SHIFT=-1, DIM=1)\n"
      "CALL OVERLAP_CSHIFT(U, SHIFT=+1, DIM=1)\n"
      "CALL OVERLAP_CSHIFT(U, SHIFT=-1, DIM=2, [0:N+1,*])\n"
      "CALL OVERLAP_CSHIFT(U, SHIFT=+1, DIM=2, [0:N+1,*])\n";
  EXPECT_EQ(comm_prefix(multi), expected);
  EXPECT_EQ(comm_prefix(single), expected);

  // The array-syntax interior stencil needs the same four messages.
  PassOptions as_opts = PassOptions::level(4);
  as_opts.offset.live_out = {"T"};
  ir::Program syntax =
      compile_level(kernels::kNinePointArraySyntax, 4, nullptr, &as_opts);
  EXPECT_EQ(comm_prefix(syntax), expected);
}

TEST(PaperWalkthrough, SingleStatementSpecFusesToOneNest) {
  PipelineResult result;
  PassOptions opts = PassOptions::level(4);
  opts.offset.live_out = {"T"};
  compile_level(kernels::kNinePointCShift, 4, &result, &opts);
  EXPECT_EQ(result.scalarize.nests_created, 1);
  // All temporaries vanish: zero storage overhead (paper Section 4.2).
  EXPECT_EQ(result.offset.arrays_eliminated, result.normalize.temps_created);
}

TEST(PaperWalkthrough, LevelsFormAMonotonePipeline) {
  // O0: full shifts remain, no overlap shifts.
  PipelineResult r0;
  PassOptions o0 = PassOptions::level(0);
  o0.offset.live_out = {"T"};
  ir::Program p0 = compile_level(kernels::kProblem9, 0, &r0, &o0);
  std::string t0 = testing::body_text(p0);
  EXPECT_NE(t0.find("CSHIFT"), std::string::npos);
  EXPECT_EQ(t0.find("OVERLAP"), std::string::npos);

  // O1: overlap shifts, but interleaved with compute (7 nests).
  PipelineResult r1;
  PassOptions o1 = PassOptions::level(1);
  o1.offset.live_out = {"T"};
  compile_level(kernels::kProblem9, 1, &r1, &o1);
  EXPECT_EQ(r1.offset.shifts_converted, 8);
  EXPECT_EQ(r1.scalarize.nests_created, 7);

  // O2: one fused nest, still 8 messages' worth of shifts.
  PipelineResult r2;
  PassOptions o2 = PassOptions::level(2);
  o2.offset.live_out = {"T"};
  compile_level(kernels::kProblem9, 2, &r2, &o2);
  EXPECT_EQ(r2.scalarize.nests_created, 1);
  EXPECT_EQ(r2.unioning.shifts_after, 0);  // unioning disabled

  // O3: four unioned shifts.
  PipelineResult r3;
  PassOptions o3 = PassOptions::level(3);
  o3.offset.live_out = {"T"};
  compile_level(kernels::kProblem9, 3, &r3, &o3);
  EXPECT_EQ(r3.unioning.shifts_after, 4);
}

}  // namespace
}  // namespace hpfsc::passes

#include <gtest/gtest.h>

#include "driver/paper_kernels.hpp"
#include "helpers.hpp"
#include "passes/comm_unioning.hpp"
#include "passes/context_partition.hpp"
#include "passes/normalize.hpp"
#include "passes/offset_arrays.hpp"

namespace hpfsc::passes {
namespace {

using testing::body_text;
using testing::lower_checked;

ir::Program prepare(std::string_view src,
                    std::vector<std::string> live_out = {"T"}) {
  ir::Program p = lower_checked(src);
  DiagnosticEngine diags;
  normalize(p, NormalizeOptions{}, diags);
  OffsetArrayOptions opts;
  opts.live_out = std::move(live_out);
  offset_arrays(p, opts, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  return p;
}

TEST(ContextPartition, Problem9MatchesPaperFigure14) {
  ir::Program p = prepare(kernels::kProblem9);
  DiagnosticEngine diags;
  ContextPartitionStats stats = context_partition(p, diags);
  EXPECT_FALSE(diags.has_errors());
  // Two perfect groups: communication first, then the congruent array
  // statements (paper Section 4.3).
  EXPECT_EQ(stats.groups_formed, 2);
  EXPECT_EQ(body_text(p),
            "CALL OVERLAP_CSHIFT(U, SHIFT=+1, DIM=1)\n"
            "CALL OVERLAP_CSHIFT(U, SHIFT=-1, DIM=1)\n"
            "CALL OVERLAP_CSHIFT(U, SHIFT=-1, DIM=2)\n"
            "CALL OVERLAP_CSHIFT(U, SHIFT=+1, DIM=2)\n"
            "CALL OVERLAP_CSHIFT(U<+1,0>, SHIFT=-1, DIM=2)\n"
            "CALL OVERLAP_CSHIFT(U<+1,0>, SHIFT=+1, DIM=2)\n"
            "CALL OVERLAP_CSHIFT(U<-1,0>, SHIFT=-1, DIM=2)\n"
            "CALL OVERLAP_CSHIFT(U<-1,0>, SHIFT=+1, DIM=2)\n"
            "T = U + U<+1,0> + U<-1,0>\n"
            "T = T + U<0,-1>\n"
            "T = T + U<0,+1>\n"
            "T = T + U<+1,-1>\n"
            "T = T + U<+1,+1>\n"
            "T = T + U<-1,-1>\n"
            "T = T + U<-1,+1>\n");
}

TEST(ContextPartition, RespectsTrueDependences) {
  // A compute statement feeding a later shift cannot be hoisted past it.
  ir::Program p = lower_checked(
      "INTEGER N\nREAL U(N,N), V(N,N), T(N,N), S(N,N)\n"
      "V = U + 1.0\n"
      "S = CSHIFT(V,+1,1)\n"
      "T = S + V\n");
  DiagnosticEngine diags;
  normalize(p, NormalizeOptions{}, diags);
  OffsetArrayOptions opts;
  opts.live_out = {"T"};
  offset_arrays(p, opts, diags);
  context_partition(p, diags);
  EXPECT_FALSE(diags.has_errors());
  std::string text = body_text(p);
  // The definition of V must stay before the overlap shift of V.
  auto def_pos = text.find("V = U + 1.0");
  auto shift_pos = text.find("OVERLAP_CSHIFT(V");
  ASSERT_NE(def_pos, std::string::npos);
  ASSERT_NE(shift_pos, std::string::npos);
  EXPECT_LT(def_pos, shift_pos);
}

TEST(ContextPartition, DoesNotCrossControlFlow) {
  ir::Program p = lower_checked(
      "INTEGER N, NSTEPS\nREAL U(N,N), T(N,N)\n"
      "T = U\n"
      "DO K = 1, NSTEPS\n"
      "  T = T + U\n"
      "ENDDO\n"
      "U = T\n");
  DiagnosticEngine diags;
  ContextPartitionStats stats = context_partition(p, diags);
  EXPECT_EQ(stats.statements_moved, 0);
  EXPECT_EQ(p.body.size(), 3u);
  EXPECT_EQ(p.body[1]->kind, ir::StmtKind::Do);
}

TEST(CommUnioning, Problem9MatchesPaperFigure15) {
  ir::Program p = prepare(kernels::kProblem9);
  DiagnosticEngine diags;
  context_partition(p, diags);
  CommUnioningStats stats = comm_unioning(p, diags);
  EXPECT_FALSE(diags.has_errors());
  EXPECT_EQ(stats.shifts_before, 8);
  EXPECT_EQ(stats.shifts_after, 4);
  std::string text = body_text(p);
  EXPECT_EQ(text.substr(0, text.find("T = ")),
            "CALL OVERLAP_CSHIFT(U, SHIFT=-1, DIM=1)\n"
            "CALL OVERLAP_CSHIFT(U, SHIFT=+1, DIM=1)\n"
            "CALL OVERLAP_CSHIFT(U, SHIFT=-1, DIM=2, [0:N+1,*])\n"
            "CALL OVERLAP_CSHIFT(U, SHIFT=+1, DIM=2, [0:N+1,*])\n");
}

TEST(CommUnioning, NinePointCShiftAlsoYieldsFourShifts) {
  // The twelve CSHIFTs of the single-statement 9-point stencil reduce
  // to the same four messages (paper Figure 6).
  ir::Program p = prepare(kernels::kNinePointCShift);
  DiagnosticEngine diags;
  context_partition(p, diags);
  CommUnioningStats stats = comm_unioning(p, diags);
  EXPECT_EQ(stats.shifts_after, 4);
}

TEST(CommUnioning, LargerShiftSubsumesSmaller) {
  ir::Program p = prepare(
      "INTEGER N\nREAL U(N,N), T(N,N)\n"
      "T = CSHIFT(U,+1,1) + CSHIFT(U,+2,1)\n");
  DiagnosticEngine diags;
  context_partition(p, diags);
  CommUnioningStats stats = comm_unioning(p, diags);
  EXPECT_EQ(stats.shifts_after, 1);
  EXPECT_NE(body_text(p).find("CALL OVERLAP_CSHIFT(U, SHIFT=+2, DIM=1)"),
            std::string::npos);
}

TEST(CommUnioning, OppositeDirectionsDoNotMerge) {
  ir::Program p = prepare(
      "INTEGER N\nREAL U(N,N), T(N,N)\n"
      "T = CSHIFT(U,+1,1) + CSHIFT(U,-2,1)\n");
  DiagnosticEngine diags;
  context_partition(p, diags);
  CommUnioningStats stats = comm_unioning(p, diags);
  EXPECT_EQ(stats.shifts_after, 2);
}

TEST(CommUnioning, DifferentArraysIndependent) {
  ir::Program p = prepare(
      "INTEGER N\nREAL U(N,N), V(N,N), T(N,N)\n"
      "T = CSHIFT(U,+1,1) + CSHIFT(V,+1,1) + CSHIFT(U,+1,1)\n");
  DiagnosticEngine diags;
  context_partition(p, diags);
  CommUnioningStats stats = comm_unioning(p, diags);
  EXPECT_EQ(stats.shifts_after, 2);  // one per array
}

TEST(CommUnioning, HigherDimOffsetMovesCornerToHigherShift) {
  // CSHIFT(CSHIFT(U,-1,2),+1,1): the offset annotation lives in the
  // higher dimension; commutativity reorders so the dim-2 shift carries
  // the corner RSD (paper Section 3.3 step 1).
  ir::Program p = prepare(
      "INTEGER N\nREAL U(N,N), T(N,N)\n"
      "T = CSHIFT(CSHIFT(U,-1,2),+1,1)\n");
  DiagnosticEngine diags;
  context_partition(p, diags);
  CommUnioningStats stats = comm_unioning(p, diags);
  EXPECT_EQ(stats.shifts_after, 2);
  EXPECT_EQ(body_text(p),
            "CALL OVERLAP_CSHIFT(U, SHIFT=+1, DIM=1)\n"
            "CALL OVERLAP_CSHIFT(U, SHIFT=-1, DIM=2, [1:N+1,*])\n"
            "T = U<+1,-1>\n");
}

TEST(OffsetArrays, MixedKindsSameHaloKeepFullShift) {
  // CSHIFT and EOSHIFT both pulling U's (dim 1, +) halo cannot both
  // convert: the overlap area is one buffer and the two fills disagree
  // at the global edge (circular wrap vs. boundary constant).  The
  // first shift in program order converts; the conflicting one stays a
  // full shift.
  ir::Program p = prepare(
      "INTEGER N\nREAL U(N,N), T(N,N)\n"
      "T = CSHIFT(U,+1,1) + EOSHIFT(U,+1,0.0,1)\n");
  const std::string text = body_text(p);
  EXPECT_NE(text.find("CALL OVERLAP_CSHIFT(U, SHIFT=+1, DIM=1)"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("EOSHIFT(U, SHIFT=+1, DIM=1"), std::string::npos)
      << text;
  EXPECT_EQ(text.find("CALL OVERLAP_EOSHIFT"), std::string::npos) << text;
}

/// Builds a normal-form program whose body is a run of EOSHIFT overlap
/// shifts on U(N,N) with the given (shift, boundary) pairs.  The
/// frontend only produces constant-boundary overlap shifts, so the
/// non-constant cases exercise the IR-level normal form (re-run passes,
/// programmatically built programs).
ir::Program eoshift_program(
    std::vector<std::pair<int, ir::ExprPtr>> shifts) {
  ir::Program p;
  p.symbols.add_scalar(
      ir::ScalarSymbol{"N", ir::ScalarType::Integer, true, {}});
  p.symbols.add_scalar(
      ir::ScalarSymbol{"ALPHA", ir::ScalarType::Real, true, {}});
  ir::ArraySymbol a;
  a.name = "U";
  a.rank = 2;
  a.extent[0] = ir::AffineBound{"N", 0};
  a.extent[1] = ir::AffineBound{"N", 0};
  ir::ArrayId u = p.symbols.add_array(a);
  for (auto& [shift, boundary] : shifts) {
    auto s = std::make_unique<ir::OverlapShiftStmt>();
    s->src.array = u;
    s->shift = shift;
    s->dim = 0;
    s->shift_kind = ir::ShiftKind::EndOff;
    s->boundary = std::move(boundary);
    p.body.push_back(std::move(s));
  }
  return p;
}

TEST(OffsetArrays, HaloConflictDemotionCascadesToChainedConsumers) {
  // The EOSHIFT claims U's (dim 1, +) halo, so the CSHIFT of the same
  // region is demoted to a full shift — and the shift chained through
  // it must follow: its composed view would read halo cells now filled
  // with the EOSHIFT's boundary rather than the circular wrap.
  ir::Program p = prepare(
      "INTEGER N\nREAL U(N,N), A(N,N), B(N,N), C(N,N), T(N,N)\n"
      "A = 2.0 * EOSHIFT(U,1,0.5,1)\n"
      "B = CSHIFT(U,1,1)\n"
      "C = CSHIFT(B,1,2)\n"
      "T = A + C\n",
      {"T"});
  EXPECT_EQ(body_text(p),
            "CALL OVERLAP_EOSHIFT(U, SHIFT=+1, DIM=1, BOUNDARY=0.5)\n"
            "A = 2.0*U<+1,0>\n"
            "B = CSHIFT(U, SHIFT=+1, DIM=1)\n"
            "C = CSHIFT(B, SHIFT=+1, DIM=2)\n"
            "T = A + C\n");
}

TEST(CommUnioning, MixedKindsDoNotMerge) {
  // IR-level normal form: a circular and an end-off shift of the same
  // (array, dim, dir) must stay in separate groups — merging would pick
  // one fill for both.  (The offset pass no longer produces this form
  // from surface programs; see MixedKindsSameHaloKeepFullShift.)
  std::vector<std::pair<int, ir::ExprPtr>> shifts;
  shifts.emplace_back(+1, ir::make_const(0.0));
  ir::Program p = eoshift_program(std::move(shifts));
  auto circ = std::make_unique<ir::OverlapShiftStmt>();
  circ->src.array =
      static_cast<const ir::OverlapShiftStmt&>(*p.body.front()).src.array;
  circ->shift = +1;
  circ->dim = 0;
  circ->shift_kind = ir::ShiftKind::Circular;
  p.body.push_back(std::move(circ));
  DiagnosticEngine diags;
  CommUnioningStats stats = comm_unioning(p, diags);
  EXPECT_EQ(stats.shifts_after, 2);
}

TEST(CommUnioning, DifferentEoShiftBoundariesDoNotMerge) {
  // Regression: every non-constant boundary used to collapse to the
  // class of constant 0.0, merging EOSHIFTs with different fill
  // expressions into one group whose single representative boundary
  // overwrote the other fill.  Boundaries must group by structural
  // expression equality.
  std::vector<std::pair<int, ir::ExprPtr>> shifts;
  shifts.emplace_back(+1, ir::make_scalar_ref(1));  // BOUNDARY=ALPHA
  shifts.emplace_back(-1, ir::make_const(0.0));     // BOUNDARY=0.0
  ir::Program p = eoshift_program(std::move(shifts));
  DiagnosticEngine diags;
  CommUnioningStats stats = comm_unioning(p, diags);
  EXPECT_EQ(stats.shifts_after, 2);
  std::string text = body_text(p);
  // Each emitted shift must keep its own boundary expression.
  EXPECT_NE(text.find("SHIFT=+1, DIM=1, BOUNDARY=ALPHA"), std::string::npos)
      << text;
  EXPECT_NE(text.find("SHIFT=-1, DIM=1, BOUNDARY=0"), std::string::npos)
      << text;
}

TEST(CommUnioning, StructurallyEqualBoundariesStillMerge) {
  // Two EOSHIFTs in the same direction with the same (non-constant)
  // boundary expression union into a single larger shift.
  std::vector<std::pair<int, ir::ExprPtr>> shifts;
  shifts.emplace_back(+1, ir::make_scalar_ref(1));
  shifts.emplace_back(+2, ir::make_scalar_ref(1));
  ir::Program p = eoshift_program(std::move(shifts));
  DiagnosticEngine diags;
  CommUnioningStats stats = comm_unioning(p, diags);
  EXPECT_EQ(stats.shifts_after, 1);
  EXPECT_NE(body_text(p).find("SHIFT=+2, DIM=1, BOUNDARY=ALPHA"),
            std::string::npos)
      << body_text(p);
}

TEST(CommUnioning, PassIsIdempotent) {
  // Re-running the pass on its own output must change nothing: the
  // unioned shifts (including RSD corner extensions) are a fixed point.
  ir::Program p = prepare(kernels::kProblem9);
  DiagnosticEngine diags;
  context_partition(p, diags);
  comm_unioning(p, diags);
  std::string first = body_text(p);
  CommUnioningStats again = comm_unioning(p, diags);
  EXPECT_EQ(again.shifts_before, again.shifts_after);
  EXPECT_EQ(body_text(p), first);
}

TEST(CommUnioning, DiagonalShiftsCarryCornersOnHigherDim) {
  // Two opposite diagonal references: four messages total, with the
  // dim-2 shifts carrying the corner RSDs for both diagonal directions.
  ir::Program p = prepare(
      "INTEGER N\nREAL U(N,N), T(N,N)\n"
      "T = CSHIFT(CSHIFT(U,+1,1),+1,2) + CSHIFT(CSHIFT(U,-1,1),-1,2)\n");
  DiagnosticEngine diags;
  context_partition(p, diags);
  CommUnioningStats stats = comm_unioning(p, diags);
  EXPECT_EQ(stats.shifts_after, 4);
  std::string text = body_text(p);
  // Both dim-2 shifts must carry an RSD section (corner pickup).
  auto neg2 = text.find("OVERLAP_CSHIFT(U, SHIFT=-1, DIM=2, [");
  auto pos2 = text.find("OVERLAP_CSHIFT(U, SHIFT=+1, DIM=2, [");
  EXPECT_NE(neg2, std::string::npos) << text;
  EXPECT_NE(pos2, std::string::npos) << text;
}

}  // namespace
}  // namespace hpfsc::passes

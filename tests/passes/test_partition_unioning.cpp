#include <gtest/gtest.h>

#include "driver/paper_kernels.hpp"
#include "helpers.hpp"
#include "passes/comm_unioning.hpp"
#include "passes/context_partition.hpp"
#include "passes/normalize.hpp"
#include "passes/offset_arrays.hpp"

namespace hpfsc::passes {
namespace {

using testing::body_text;
using testing::lower_checked;

ir::Program prepare(std::string_view src,
                    std::vector<std::string> live_out = {"T"}) {
  ir::Program p = lower_checked(src);
  DiagnosticEngine diags;
  normalize(p, NormalizeOptions{}, diags);
  OffsetArrayOptions opts;
  opts.live_out = std::move(live_out);
  offset_arrays(p, opts, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  return p;
}

TEST(ContextPartition, Problem9MatchesPaperFigure14) {
  ir::Program p = prepare(kernels::kProblem9);
  DiagnosticEngine diags;
  ContextPartitionStats stats = context_partition(p, diags);
  EXPECT_FALSE(diags.has_errors());
  // Two perfect groups: communication first, then the congruent array
  // statements (paper Section 4.3).
  EXPECT_EQ(stats.groups_formed, 2);
  EXPECT_EQ(body_text(p),
            "CALL OVERLAP_CSHIFT(U, SHIFT=+1, DIM=1)\n"
            "CALL OVERLAP_CSHIFT(U, SHIFT=-1, DIM=1)\n"
            "CALL OVERLAP_CSHIFT(U, SHIFT=-1, DIM=2)\n"
            "CALL OVERLAP_CSHIFT(U, SHIFT=+1, DIM=2)\n"
            "CALL OVERLAP_CSHIFT(U<+1,0>, SHIFT=-1, DIM=2)\n"
            "CALL OVERLAP_CSHIFT(U<+1,0>, SHIFT=+1, DIM=2)\n"
            "CALL OVERLAP_CSHIFT(U<-1,0>, SHIFT=-1, DIM=2)\n"
            "CALL OVERLAP_CSHIFT(U<-1,0>, SHIFT=+1, DIM=2)\n"
            "T = U + U<+1,0> + U<-1,0>\n"
            "T = T + U<0,-1>\n"
            "T = T + U<0,+1>\n"
            "T = T + U<+1,-1>\n"
            "T = T + U<+1,+1>\n"
            "T = T + U<-1,-1>\n"
            "T = T + U<-1,+1>\n");
}

TEST(ContextPartition, RespectsTrueDependences) {
  // A compute statement feeding a later shift cannot be hoisted past it.
  ir::Program p = lower_checked(
      "INTEGER N\nREAL U(N,N), V(N,N), T(N,N), S(N,N)\n"
      "V = U + 1.0\n"
      "S = CSHIFT(V,+1,1)\n"
      "T = S + V\n");
  DiagnosticEngine diags;
  normalize(p, NormalizeOptions{}, diags);
  OffsetArrayOptions opts;
  opts.live_out = {"T"};
  offset_arrays(p, opts, diags);
  context_partition(p, diags);
  EXPECT_FALSE(diags.has_errors());
  std::string text = body_text(p);
  // The definition of V must stay before the overlap shift of V.
  auto def_pos = text.find("V = U + 1.0");
  auto shift_pos = text.find("OVERLAP_CSHIFT(V");
  ASSERT_NE(def_pos, std::string::npos);
  ASSERT_NE(shift_pos, std::string::npos);
  EXPECT_LT(def_pos, shift_pos);
}

TEST(ContextPartition, DoesNotCrossControlFlow) {
  ir::Program p = lower_checked(
      "INTEGER N, NSTEPS\nREAL U(N,N), T(N,N)\n"
      "T = U\n"
      "DO K = 1, NSTEPS\n"
      "  T = T + U\n"
      "ENDDO\n"
      "U = T\n");
  DiagnosticEngine diags;
  ContextPartitionStats stats = context_partition(p, diags);
  EXPECT_EQ(stats.statements_moved, 0);
  EXPECT_EQ(p.body.size(), 3u);
  EXPECT_EQ(p.body[1]->kind, ir::StmtKind::Do);
}

TEST(CommUnioning, Problem9MatchesPaperFigure15) {
  ir::Program p = prepare(kernels::kProblem9);
  DiagnosticEngine diags;
  context_partition(p, diags);
  CommUnioningStats stats = comm_unioning(p, diags);
  EXPECT_FALSE(diags.has_errors());
  EXPECT_EQ(stats.shifts_before, 8);
  EXPECT_EQ(stats.shifts_after, 4);
  std::string text = body_text(p);
  EXPECT_EQ(text.substr(0, text.find("T = ")),
            "CALL OVERLAP_CSHIFT(U, SHIFT=-1, DIM=1)\n"
            "CALL OVERLAP_CSHIFT(U, SHIFT=+1, DIM=1)\n"
            "CALL OVERLAP_CSHIFT(U, SHIFT=-1, DIM=2, [0:N+1,*])\n"
            "CALL OVERLAP_CSHIFT(U, SHIFT=+1, DIM=2, [0:N+1,*])\n");
}

TEST(CommUnioning, NinePointCShiftAlsoYieldsFourShifts) {
  // The twelve CSHIFTs of the single-statement 9-point stencil reduce
  // to the same four messages (paper Figure 6).
  ir::Program p = prepare(kernels::kNinePointCShift);
  DiagnosticEngine diags;
  context_partition(p, diags);
  CommUnioningStats stats = comm_unioning(p, diags);
  EXPECT_EQ(stats.shifts_after, 4);
}

TEST(CommUnioning, LargerShiftSubsumesSmaller) {
  ir::Program p = prepare(
      "INTEGER N\nREAL U(N,N), T(N,N)\n"
      "T = CSHIFT(U,+1,1) + CSHIFT(U,+2,1)\n");
  DiagnosticEngine diags;
  context_partition(p, diags);
  CommUnioningStats stats = comm_unioning(p, diags);
  EXPECT_EQ(stats.shifts_after, 1);
  EXPECT_NE(body_text(p).find("CALL OVERLAP_CSHIFT(U, SHIFT=+2, DIM=1)"),
            std::string::npos);
}

TEST(CommUnioning, OppositeDirectionsDoNotMerge) {
  ir::Program p = prepare(
      "INTEGER N\nREAL U(N,N), T(N,N)\n"
      "T = CSHIFT(U,+1,1) + CSHIFT(U,-2,1)\n");
  DiagnosticEngine diags;
  context_partition(p, diags);
  CommUnioningStats stats = comm_unioning(p, diags);
  EXPECT_EQ(stats.shifts_after, 2);
}

TEST(CommUnioning, DifferentArraysIndependent) {
  ir::Program p = prepare(
      "INTEGER N\nREAL U(N,N), V(N,N), T(N,N)\n"
      "T = CSHIFT(U,+1,1) + CSHIFT(V,+1,1) + CSHIFT(U,+1,1)\n");
  DiagnosticEngine diags;
  context_partition(p, diags);
  CommUnioningStats stats = comm_unioning(p, diags);
  EXPECT_EQ(stats.shifts_after, 2);  // one per array
}

TEST(CommUnioning, HigherDimOffsetMovesCornerToHigherShift) {
  // CSHIFT(CSHIFT(U,-1,2),+1,1): the offset annotation lives in the
  // higher dimension; commutativity reorders so the dim-2 shift carries
  // the corner RSD (paper Section 3.3 step 1).
  ir::Program p = prepare(
      "INTEGER N\nREAL U(N,N), T(N,N)\n"
      "T = CSHIFT(CSHIFT(U,-1,2),+1,1)\n");
  DiagnosticEngine diags;
  context_partition(p, diags);
  CommUnioningStats stats = comm_unioning(p, diags);
  EXPECT_EQ(stats.shifts_after, 2);
  EXPECT_EQ(body_text(p),
            "CALL OVERLAP_CSHIFT(U, SHIFT=+1, DIM=1)\n"
            "CALL OVERLAP_CSHIFT(U, SHIFT=-1, DIM=2, [1:N+1,*])\n"
            "T = U<+1,-1>\n");
}

TEST(CommUnioning, MixedKindsDoNotMerge) {
  ir::Program p = prepare(
      "INTEGER N\nREAL U(N,N), T(N,N)\n"
      "T = CSHIFT(U,+1,1) + EOSHIFT(U,+1,0.0,1)\n");
  DiagnosticEngine diags;
  context_partition(p, diags);
  CommUnioningStats stats = comm_unioning(p, diags);
  EXPECT_EQ(stats.shifts_after, 2);
}

}  // namespace
}  // namespace hpfsc::passes

// Shared helpers for pass tests: parse + lower + run selected passes.
#pragma once

#include <gtest/gtest.h>

#include <string_view>

#include "frontend/lower.hpp"
#include "ir/printer.hpp"
#include "passes/pipeline.hpp"

namespace hpfsc::passes::testing {

inline ir::Program lower_checked(std::string_view src) {
  DiagnosticEngine diags;
  frontend::LowerResult r = frontend::lower_source(src, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  return std::move(r.program);
}

inline std::string body_text(const ir::Program& p) {
  return ir::Printer(p).print_body();
}

/// Runs the pipeline at a given level and returns the program.
inline ir::Program compile_level(std::string_view src, int level,
                                 PipelineResult* out_result = nullptr,
                                 PassOptions* custom = nullptr) {
  ir::Program p = lower_checked(src);
  DiagnosticEngine diags;
  PassOptions opts = custom != nullptr ? *custom : PassOptions::level(level);
  PipelineResult result = run_pipeline(p, opts, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  if (out_result != nullptr) *out_result = std::move(result);
  return p;
}

}  // namespace hpfsc::passes::testing

#include "passes/normalize.hpp"

#include <gtest/gtest.h>

#include "driver/paper_kernels.hpp"
#include "helpers.hpp"

namespace hpfsc::passes {
namespace {

using testing::body_text;
using testing::lower_checked;

NormalizeStats normalize_program(ir::Program& p, bool reuse = true) {
  DiagnosticEngine diags;
  NormalizeOptions opts;
  opts.reuse_temps = reuse;
  NormalizeStats stats = normalize(p, opts, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  return stats;
}

TEST(Normalize, SingletonShiftNeedsNoTemp) {
  ir::Program p = lower_checked(
      "INTEGER N\nREAL U(N,N), RIP(N,N)\nRIP = CSHIFT(U,SHIFT=+1,DIM=1)\n");
  NormalizeStats stats = normalize_program(p);
  EXPECT_EQ(stats.temps_created, 0);
  EXPECT_EQ(body_text(p), "RIP = CSHIFT(U, SHIFT=+1, DIM=1)\n");
}

TEST(Normalize, HoistsShiftSubexpression) {
  ir::Program p = lower_checked(
      "INTEGER N\nREAL U(N,N), T(N,N)\nT = T + CSHIFT(U,-1,2)\n");
  NormalizeStats stats = normalize_program(p);
  EXPECT_EQ(stats.shifts_hoisted, 1);
  EXPECT_EQ(stats.temps_created, 1);
  EXPECT_EQ(body_text(p),
            "ALLOCATE TMP1\n"
            "TMP1 = CSHIFT(U, SHIFT=-1, DIM=2)\n"
            "T = T + TMP1\n"
            "DEALLOCATE TMP1\n");
}

TEST(Normalize, FivePointArraySyntaxMatchesPaperFigure4) {
  ir::Program p = lower_checked(kernels::kFivePointArraySyntax);
  NormalizeStats stats = normalize_program(p);
  EXPECT_EQ(stats.sections_converted, 4);
  EXPECT_EQ(stats.temps_created, 4);  // all four shift temps live at once
  EXPECT_EQ(body_text(p),
            "ALLOCATE TMP1, TMP2, TMP3, TMP4\n"
            "TMP1 = CSHIFT(SRC, SHIFT=-1, DIM=1)\n"
            "TMP2 = CSHIFT(SRC, SHIFT=-1, DIM=2)\n"
            "TMP3 = CSHIFT(SRC, SHIFT=+1, DIM=1)\n"
            "TMP4 = CSHIFT(SRC, SHIFT=+1, DIM=2)\n"
            "DST(2:N-1,2:N-1) = C1*TMP1(2:N-1,2:N-1) + C2*TMP2(2:N-1,2:N-1)"
            " + C3*SRC(2:N-1,2:N-1) + C4*TMP3(2:N-1,2:N-1)"
            " + C5*TMP4(2:N-1,2:N-1)\n"
            "DEALLOCATE TMP1, TMP2, TMP3, TMP4\n");
}

TEST(Normalize, Problem9MatchesPaperFigure12) {
  ir::Program p = lower_checked(kernels::kProblem9);
  NormalizeStats stats = normalize_program(p);
  // Six shift subexpressions hoisted; live ranges do not overlap, so a
  // single compiler temporary is shared (paper Section 4.1).
  EXPECT_EQ(stats.shifts_hoisted, 6);
  EXPECT_EQ(stats.temps_created, 1);
  EXPECT_EQ(body_text(p),
            "ALLOCATE TMP1\n"
            "RIP = CSHIFT(U, SHIFT=+1, DIM=1)\n"
            "RIN = CSHIFT(U, SHIFT=-1, DIM=1)\n"
            "T = U + RIP + RIN\n"
            "TMP1 = CSHIFT(U, SHIFT=-1, DIM=2)\n"
            "T = T + TMP1\n"
            "TMP1 = CSHIFT(U, SHIFT=+1, DIM=2)\n"
            "T = T + TMP1\n"
            "TMP1 = CSHIFT(RIP, SHIFT=-1, DIM=2)\n"
            "T = T + TMP1\n"
            "TMP1 = CSHIFT(RIP, SHIFT=+1, DIM=2)\n"
            "T = T + TMP1\n"
            "TMP1 = CSHIFT(RIN, SHIFT=-1, DIM=2)\n"
            "T = T + TMP1\n"
            "TMP1 = CSHIFT(RIN, SHIFT=+1, DIM=2)\n"
            "T = T + TMP1\n"
            "DEALLOCATE TMP1\n");
}

TEST(Normalize, NinePointCShiftNeedsTwelveShifts) {
  ir::Program p = lower_checked(kernels::kNinePointCShift);
  NormalizeStats stats = normalize_program(p);
  EXPECT_EQ(stats.shifts_hoisted, 12);  // paper Section 4 count
  // With liveness-based reuse, inner chain temporaries are recycled.
  EXPECT_LT(stats.temps_created, 12);
}

TEST(Normalize, WithoutReuseEachShiftGetsItsOwnTemp) {
  // "Most Fortran90 compilers will generate 12 temporary arrays, one for
  // each CSHIFT" (paper Section 4) — the xlhpf-like mode.
  ir::Program p = lower_checked(kernels::kNinePointCShift);
  NormalizeStats stats = normalize_program(p, /*reuse=*/false);
  EXPECT_EQ(stats.shifts_hoisted, 12);
  EXPECT_EQ(stats.temps_created, 12);
}

TEST(Normalize, DiagonalSectionBecomesShiftChain) {
  ir::Program p = lower_checked(
      "INTEGER N\nREAL A(N,N), B(N,N)\n"
      "A(2:N-1,2:N-1) = B(1:N-2,3:N)\n");
  normalize_program(p);
  EXPECT_EQ(body_text(p),
            "ALLOCATE TMP1, TMP2\n"
            "TMP1 = CSHIFT(B, SHIFT=-1, DIM=1)\n"
            "TMP2 = CSHIFT(TMP1, SHIFT=+1, DIM=2)\n"
            "A(2:N-1,2:N-1) = TMP2(2:N-1,2:N-1)\n"
            "DEALLOCATE TMP1, TMP2\n");
}

TEST(Normalize, EoShiftHoistKeepsBoundary) {
  ir::Program p = lower_checked(
      "INTEGER N\nREAL U(N,N), T(N,N)\n"
      "T = T + EOSHIFT(U,SHIFT=-1,BOUNDARY=7.0,DIM=2)\n");
  normalize_program(p);
  EXPECT_NE(body_text(p).find(
                "TMP1 = EOSHIFT(U, SHIFT=-1, DIM=2, BOUNDARY=7.0)"),
            std::string::npos);
}

TEST(Normalize, ShiftOfExpressionMaterializesArgument) {
  ir::Program p = lower_checked(
      "INTEGER N\nREAL A(N,N), B(N,N), T(N,N)\n"
      "T = CSHIFT(A + B, SHIFT=+1, DIM=1) + A\n");
  normalize_program(p);
  EXPECT_EQ(body_text(p),
            "ALLOCATE TMP1, TMP2\n"
            "TMP1 = A + B\n"
            "TMP2 = CSHIFT(TMP1, SHIFT=+1, DIM=1)\n"
            "T = TMP2 + A\n"
            "DEALLOCATE TMP1, TMP2\n");
}

TEST(Normalize, NonConformingSectionIsAnError) {
  ir::Program p = lower_checked(
      "INTEGER N\nREAL A(N,N), B(N,N)\n"
      "A(2:N-1,2:N-1) = B(1:N-2,1:N-1)\n");
  DiagnosticEngine diags;
  NormalizeOptions opts;
  normalize(p, opts, diags);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_NE(diags.render_all().find("does not conform"), std::string::npos);
}

TEST(Normalize, TempsInsideControlFlowStayInTheirBlock) {
  ir::Program p = lower_checked(
      "INTEGER N, NSTEPS\nREAL U(N,N), T(N,N)\n"
      "DO K = 1, NSTEPS\n"
      "  T = T + CSHIFT(U,-1,1)\n"
      "ENDDO\n");
  normalize_program(p);
  std::string text = body_text(p);
  // ALLOCATE must be inside the DO body (indented), not at top level.
  EXPECT_NE(text.find("  ALLOCATE TMP1"), std::string::npos);
  EXPECT_NE(text.find("  DEALLOCATE TMP1"), std::string::npos);
}

TEST(Normalize, AlignedSectionsLeftAlone) {
  ir::Program p = lower_checked(
      "INTEGER N\nREAL A(N,N), B(N,N)\n"
      "A(2:N-1,2:N-1) = B(2:N-1,2:N-1)\n");
  NormalizeStats stats = normalize_program(p);
  EXPECT_EQ(stats.sections_converted, 0);
  EXPECT_EQ(stats.temps_created, 0);
}

TEST(Normalize, WholeArrayRefCanonicalized) {
  ir::Program p = lower_checked(
      "INTEGER N\nREAL A(N,N), B(N,N)\nA = B(1:N,1:N)\n");
  normalize_program(p);
  EXPECT_EQ(body_text(p), "A = B\n");
}

}  // namespace
}  // namespace hpfsc::passes

#include "passes/scalarize.hpp"

#include <gtest/gtest.h>

#include "driver/paper_kernels.hpp"
#include "helpers.hpp"
#include "passes/memory_opt.hpp"

namespace hpfsc::passes {
namespace {

using testing::body_text;
using testing::compile_level;

TEST(Scalarize, Problem9MatchesPaperFigure16) {
  PipelineResult result;
  PassOptions opts = PassOptions::level(3);  // no memory opts: Figure 16
  opts.offset.live_out = {"T"};
  ir::Program p = compile_level(kernels::kProblem9, 3, &result, &opts);
  EXPECT_EQ(result.scalarize.nests_created, 1);
  EXPECT_EQ(result.scalarize.statements_fused, 7);
  EXPECT_EQ(body_text(p),
            "CALL OVERLAP_CSHIFT(U, SHIFT=-1, DIM=1)\n"
            "CALL OVERLAP_CSHIFT(U, SHIFT=+1, DIM=1)\n"
            "CALL OVERLAP_CSHIFT(U, SHIFT=-1, DIM=2, [0:N+1,*])\n"
            "CALL OVERLAP_CSHIFT(U, SHIFT=+1, DIM=2, [0:N+1,*])\n"
            "DO i = 1, N\n"
            "  DO j = 1, N\n"
            "    T(i,j) = U(i,j) + U(i+1,j) + U(i-1,j)\n"
            "    T(i,j) = T(i,j) + U(i,j-1)\n"
            "    T(i,j) = T(i,j) + U(i,j+1)\n"
            "    T(i,j) = T(i,j) + U(i+1,j-1)\n"
            "    T(i,j) = T(i,j) + U(i+1,j+1)\n"
            "    T(i,j) = T(i,j) + U(i-1,j-1)\n"
            "    T(i,j) = T(i,j) + U(i-1,j+1)\n"
            "  ENDDO\n"
            "ENDDO\n");
}

TEST(Scalarize, SectionedStencilUsesSectionBounds) {
  PassOptions opts = PassOptions::level(3);
  opts.offset.live_out = {"DST"};
  ir::Program p = compile_level(kernels::kFivePointArraySyntax, 3, nullptr,
                                &opts);
  std::string text = body_text(p);
  EXPECT_NE(text.find("DO i = 2, N-1\n"), std::string::npos);
  EXPECT_NE(text.find("  DO j = 2, N-1\n"), std::string::npos);
  EXPECT_NE(text.find("DST(i,j) = C1*SRC(i-1,j)"), std::string::npos) << text;
}

TEST(Scalarize, WithoutPartitioningLoopsStaySeparate) {
  // At level O1 the compute statements are interleaved with the shifts,
  // so scalarization cannot fuse them into one nest.
  PipelineResult result;
  PassOptions opts = PassOptions::level(1);
  opts.offset.live_out = {"T"};
  compile_level(kernels::kProblem9, 1, &result, &opts);
  EXPECT_EQ(result.scalarize.nests_created, 7);
  EXPECT_EQ(result.scalarize.statements_fused, 0);
}

TEST(Scalarize, OffsetReadOfWrittenArrayBlocksFusion) {
  // B = A<+1,0>-style fusion hazard: the second statement reads T at an
  // offset after the first wrote it; fusing would read updated values.
  PipelineResult result;
  PassOptions opts = PassOptions::level(3);
  opts.offset.live_out = {"S", "T"};
  compile_level(
      "INTEGER N\nREAL U(N,N), T(N,N), S(N,N)\n"
      "T = U + 1.0\n"
      "S = CSHIFT(T,+1,1)\n",
      3, &result, &opts);
  // The shift of T cannot convert into a fused offset read (T is being
  // written in the same group); whatever form it takes, the compute
  // statements must not fuse into a single nest reading T<+1,0>.
  for (const auto& listing : result.listings) {
    if (listing.phase != "scalarization") continue;
    EXPECT_EQ(listing.code.find("S(i,j) = T(i+1,j)"), std::string::npos)
        << listing.code;
  }
}

TEST(Scalarize, DifferentIterationSpacesDoNotFuse) {
  PipelineResult result;
  PassOptions opts = PassOptions::level(3);
  opts.offset.live_out = {"A", "B"};
  compile_level(
      "INTEGER N\nREAL U(N,N), A(N,N), B(N,N)\n"
      "A(2:N-1,2:N-1) = U(2:N-1,2:N-1)\n"
      "B = U\n",
      3, &result, &opts);
  EXPECT_EQ(result.scalarize.nests_created, 2);
}

TEST(Scalarize, ZeroOffsetChainFusesLegally) {
  // T = ...; T = T + ... reads T at offset 0: legal to fuse.
  PipelineResult result;
  PassOptions opts = PassOptions::level(3);
  opts.offset.live_out = {"T"};
  compile_level(
      "INTEGER N\nREAL U(N,N), T(N,N)\n"
      "T = U\n"
      "T = T + U\n",
      3, &result, &opts);
  EXPECT_EQ(result.scalarize.nests_created, 1);
}

TEST(MemoryOpt, PermutesAndAnnotates) {
  PipelineResult result;
  PassOptions opts = PassOptions::level(4);
  opts.offset.live_out = {"T"};
  ir::Program p = compile_level(kernels::kProblem9, 4, &result, &opts);
  EXPECT_EQ(result.memory.nests_permuted, 1);
  EXPECT_EQ(result.memory.nests_unrolled, 1);
  EXPECT_EQ(result.memory.nests_scalar_replaced, 1);
  std::string text = body_text(p);
  // After permutation j is outermost (unit-stride i innermost), and the
  // outer loop carries the unroll-and-jam annotation.
  EXPECT_NE(text.find("DO j = 1, N, 4   ! unroll-and-jam\n"),
            std::string::npos)
      << text;
  auto j_pos = text.find("DO j");
  auto i_pos = text.find("DO i");
  EXPECT_LT(j_pos, i_pos);
}

TEST(MemoryOpt, Rank1NestNotUnrolled) {
  PipelineResult result;
  PassOptions opts = PassOptions::level(4);
  opts.offset.live_out = {"B"};
  compile_level(
      "INTEGER N\n"
      "!HPF$ PROCESSORS P(4,1)\n"
      "REAL A(N), B(N)\n"
      "!HPF$ DISTRIBUTE A(BLOCK)\n"
      "!HPF$ DISTRIBUTE B(BLOCK)\n"
      "B = A + CSHIFT(A,+1,1)\n",
      4, &result, &opts);
  EXPECT_EQ(result.memory.nests_unrolled, 0);
  EXPECT_EQ(result.memory.nests_permuted, 0);
  // No location is referenced twice in the nest, so scalar replacement
  // has nothing to forward and must not report the nest as optimized.
  EXPECT_EQ(result.memory.nests_scalar_replaced, 0);
}

TEST(MemoryOpt, ScalarReplaceCountsOnlyForwardingNests) {
  // Distinct offsets at width 1, but unroll-and-jam replication makes
  // the u=1 copy of A<-1> coincide with the u=0 copy of A<+1> along the
  // unrolled dimension: forwarding applies, the nest counts.
  PipelineResult result;
  PassOptions opts = PassOptions::level(4);
  opts.offset.live_out = {"B"};
  compile_level(
      "INTEGER N\nREAL A(N,N), B(N,N)\n"
      "!HPF$ DISTRIBUTE A(BLOCK,BLOCK)\n"
      "!HPF$ DISTRIBUTE B(BLOCK,BLOCK)\n"
      "B = CSHIFT(A,-1,2) + CSHIFT(A,+1,2)\n",
      4, &result, &opts);
  EXPECT_EQ(result.memory.nests_unrolled, 1);
  EXPECT_EQ(result.memory.nests_scalar_replaced, 1);

  // The same stencil along the *inner* dimension has no reuse across
  // unroll copies of the outer loop: nothing to forward.
  PipelineResult no_reuse;
  compile_level(
      "INTEGER N\nREAL A(N,N), B(N,N)\n"
      "!HPF$ DISTRIBUTE A(BLOCK,BLOCK)\n"
      "!HPF$ DISTRIBUTE B(BLOCK,BLOCK)\n"
      "B = CSHIFT(A,-1,1) + CSHIFT(A,+1,1)\n",
      4, &no_reuse, &opts);
  EXPECT_EQ(no_reuse.memory.nests_unrolled, 1);
  EXPECT_EQ(no_reuse.memory.nests_scalar_replaced, 0);
}

TEST(MemoryOpt, PermuteCountedOnlyWhenOrderChanges) {
  // Running memory_opt twice must not report the second (no-op)
  // permutation: the loop order is already outermost-first.
  PipelineResult result;
  PassOptions opts = PassOptions::level(4);
  opts.offset.live_out = {"T"};
  ir::Program p = compile_level(kernels::kProblem9, 4, &result, &opts);
  EXPECT_EQ(result.memory.nests_permuted, 1);
  DiagnosticEngine diags;
  MemoryOptStats again = memory_opt(p, opts.memory, diags);
  EXPECT_EQ(again.nests_permuted, 0);
}

}  // namespace
}  // namespace hpfsc::passes

#include "passes/offset_arrays.hpp"

#include <gtest/gtest.h>

#include "driver/paper_kernels.hpp"
#include "helpers.hpp"
#include "passes/normalize.hpp"

namespace hpfsc::passes {
namespace {

using testing::body_text;
using testing::lower_checked;

struct Prepared {
  ir::Program program;
  OffsetArrayStats stats;
};

Prepared run(std::string_view src, std::vector<std::string> live_out = {},
             int max_halo = 3) {
  Prepared out{lower_checked(src), {}};
  DiagnosticEngine diags;
  normalize(out.program, NormalizeOptions{}, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  OffsetArrayOptions opts;
  opts.live_out = std::move(live_out);
  opts.max_halo = max_halo;
  out.stats = offset_arrays(out.program, opts, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  return out;
}

TEST(OffsetArrays, SimpleShiftBecomesOverlapAndOffsetRef) {
  Prepared r = run(
      "INTEGER N\nREAL U(N,N), T(N,N), RIP(N,N)\n"
      "RIP = CSHIFT(U,SHIFT=+1,DIM=1)\n"
      "T = U + RIP\n",
      {"T"});
  EXPECT_EQ(r.stats.shifts_converted, 1);
  EXPECT_EQ(r.stats.uses_rewritten, 1);
  EXPECT_EQ(r.stats.arrays_eliminated, 1);  // RIP storage removed
  EXPECT_EQ(body_text(r.program),
            "CALL OVERLAP_CSHIFT(U, SHIFT=+1, DIM=1)\n"
            "T = U + U<+1,0>\n");
  const ir::ArraySymbol& rip =
      r.program.symbols.array(*r.program.symbols.find_array("RIP"));
  EXPECT_TRUE(rip.eliminated);
}

TEST(OffsetArrays, HaloWidthsAssignedFromOffsets) {
  Prepared r = run(
      "INTEGER N\nREAL U(N,N), T(N,N)\n"
      "T = CSHIFT(U,+2,1) + CSHIFT(U,-1,2)\n",
      {"T"});
  const ir::ArraySymbol& u =
      r.program.symbols.array(*r.program.symbols.find_array("U"));
  EXPECT_EQ(u.halo_hi[0], 2);
  EXPECT_EQ(u.halo_lo[0], 0);
  EXPECT_EQ(u.halo_lo[1], 1);
  EXPECT_EQ(u.halo_hi[1], 0);
}

TEST(OffsetArrays, Problem9MatchesPaperFigure13) {
  Prepared r = run(kernels::kProblem9, {"T"});
  EXPECT_EQ(r.stats.shifts_converted, 8);
  EXPECT_EQ(r.stats.copies_inserted, 0);
  // RIP, RIN, and the compiler temp all lose their storage (paper 4.2).
  EXPECT_EQ(r.stats.arrays_eliminated, 3);
  EXPECT_EQ(body_text(r.program),
            "CALL OVERLAP_CSHIFT(U, SHIFT=+1, DIM=1)\n"
            "CALL OVERLAP_CSHIFT(U, SHIFT=-1, DIM=1)\n"
            "T = U + U<+1,0> + U<-1,0>\n"
            "CALL OVERLAP_CSHIFT(U, SHIFT=-1, DIM=2)\n"
            "T = T + U<0,-1>\n"
            "CALL OVERLAP_CSHIFT(U, SHIFT=+1, DIM=2)\n"
            "T = T + U<0,+1>\n"
            "CALL OVERLAP_CSHIFT(U<+1,0>, SHIFT=-1, DIM=2)\n"
            "T = T + U<+1,-1>\n"
            "CALL OVERLAP_CSHIFT(U<+1,0>, SHIFT=+1, DIM=2)\n"
            "T = T + U<+1,+1>\n"
            "CALL OVERLAP_CSHIFT(U<-1,0>, SHIFT=-1, DIM=2)\n"
            "T = T + U<-1,-1>\n"
            "CALL OVERLAP_CSHIFT(U<-1,0>, SHIFT=+1, DIM=2)\n"
            "T = T + U<-1,+1>\n");
}

TEST(OffsetArrays, LiveOutUserArrayGetsCompensationCopy) {
  // RIP's final value is observable, so its definition must be
  // materialized even though its uses are rewritten.
  Prepared r = run(
      "INTEGER N\nREAL U(N,N), T(N,N), RIP(N,N)\n"
      "RIP = CSHIFT(U,SHIFT=+1,DIM=1)\n"
      "T = U + RIP\n",
      {"T", "RIP"});
  EXPECT_EQ(r.stats.shifts_converted, 1);
  EXPECT_EQ(r.stats.copies_inserted, 1);
  EXPECT_EQ(r.stats.arrays_eliminated, 0);
  EXPECT_EQ(body_text(r.program),
            "CALL OVERLAP_CSHIFT(U, SHIFT=+1, DIM=1)\n"
            "RIP = U<+1,0>\n"
            "T = U + U<+1,0>\n");
}

TEST(OffsetArrays, SourceRedefinitionBlocksRewrite) {
  // U is overwritten between the shift and the use: the use must NOT be
  // rewritten to an offset reference; a compensation copy materializes
  // the pre-redefinition value.
  Prepared r = run(
      "INTEGER N\nREAL U(N,N), T(N,N), RIP(N,N), V(N,N)\n"
      "RIP = CSHIFT(U,SHIFT=+1,DIM=1)\n"
      "U = V\n"
      "T = U + RIP\n",
      {"T"});
  EXPECT_EQ(r.stats.uses_rewritten, 0);
  std::string text = body_text(r.program);
  // Either the shift was kept, or a copy preserves RIP before U changes.
  EXPECT_NE(text.find("RIP"), std::string::npos);
  if (r.stats.shifts_converted == 1) {
    EXPECT_EQ(r.stats.copies_inserted, 1);
    EXPECT_EQ(text,
              "CALL OVERLAP_CSHIFT(U, SHIFT=+1, DIM=1)\n"
              "RIP = U<+1,0>\n"
              "U = V\n"
              "T = U + RIP\n");
  }
}

TEST(OffsetArrays, ShiftBeyondMaxHaloKept) {
  Prepared r = run(
      "INTEGER N\nREAL U(N,N), T(N,N)\n"
      "T = CSHIFT(U,+5,1)\n",
      {"T"}, /*max_halo=*/3);
  EXPECT_EQ(r.stats.shifts_converted, 0);
  EXPECT_EQ(r.stats.shifts_kept, 1);
  EXPECT_NE(body_text(r.program).find("CSHIFT(U, SHIFT=+5, DIM=1)"),
            std::string::npos);
}

TEST(OffsetArrays, SelfShiftKept) {
  Prepared r = run(
      "INTEGER N\nREAL U(N,N)\n"
      "U = CSHIFT(U,+1,1)\n",
      {"U"});
  EXPECT_EQ(r.stats.shifts_converted, 0);
  EXPECT_EQ(r.stats.shifts_kept, 1);
}

TEST(OffsetArrays, MismatchedDistributionKept) {
  Prepared r = run(
      "INTEGER N\nREAL U(N,N), T(N,N), S(N,N)\n"
      "!HPF$ DISTRIBUTE S(BLOCK,*)\n"
      "S = CSHIFT(U,+1,1)\n"
      "T = U + S\n",
      {"T"});
  EXPECT_EQ(r.stats.shifts_converted, 0);
  EXPECT_EQ(r.stats.shifts_kept, 1);
}

TEST(OffsetArrays, ChainComposesOffsets) {
  Prepared r = run(
      "INTEGER N\nREAL U(N,N), T(N,N)\n"
      "T = CSHIFT(CSHIFT(U,-1,1),+1,2)\n",
      {"T"});
  EXPECT_EQ(r.stats.shifts_converted, 2);
  EXPECT_EQ(body_text(r.program),
            "CALL OVERLAP_CSHIFT(U, SHIFT=-1, DIM=1)\n"
            "CALL OVERLAP_CSHIFT(U<-1,0>, SHIFT=+1, DIM=2)\n"
            "T = U<-1,+1>\n");
}

TEST(OffsetArrays, UseInsideIfIsRewrittenWhenSafe) {
  // The definition dominates both uses; control flow between them does
  // not invalidate the offset array (paper: "even when their definition
  // and uses are separated by program control flow").
  Prepared r = run(
      "INTEGER N, FLAG\nREAL U(N,N), T(N,N), RIP(N,N)\n"
      "RIP = CSHIFT(U,+1,1)\n"
      "IF (FLAG > 0) THEN\n"
      "  T = RIP + U\n"
      "ELSE\n"
      "  T = RIP\n"
      "ENDIF\n",
      {"T"});
  EXPECT_EQ(r.stats.shifts_converted, 1);
  EXPECT_EQ(r.stats.uses_rewritten, 2);
  EXPECT_EQ(r.stats.arrays_eliminated, 1);
}

TEST(OffsetArrays, RedefinitionInOneBranchForcesCopy) {
  // U is redefined in the THEN branch; the use after the merge sees a
  // phi of U, so the rewrite is invalid there and a copy is needed.
  Prepared r = run(
      "INTEGER N, FLAG\nREAL U(N,N), V(N,N), T(N,N), RIP(N,N)\n"
      "RIP = CSHIFT(U,+1,1)\n"
      "IF (FLAG > 0) THEN\n"
      "  U = V\n"
      "ENDIF\n"
      "T = RIP\n",
      {"T"});
  if (r.stats.shifts_converted == 1) {
    EXPECT_EQ(r.stats.copies_inserted, 1);
    EXPECT_EQ(r.stats.uses_rewritten, 0);
  } else {
    EXPECT_EQ(r.stats.shifts_kept, 1);
  }
}

TEST(OffsetArrays, TimeLoopJacobiConvertsInsideBody) {
  Prepared r = run(kernels::kJacobiTimeLoop, {"U"});
  // All four shifts convert; their uses are within the same iteration.
  EXPECT_EQ(r.stats.shifts_converted, 4);
  std::string text = body_text(r.program);
  EXPECT_NE(text.find("CALL OVERLAP_CSHIFT(U, SHIFT=-1, DIM=1)"),
            std::string::npos);
  EXPECT_NE(text.find("U<-1,0>"), std::string::npos);
}

TEST(OffsetArrays, DeadShiftDropped) {
  Prepared r = run(
      "INTEGER N\nREAL U(N,N), T(N,N), DEAD(N,N)\n"
      "DEAD = CSHIFT(U,+1,1)\n"
      "T = U\n",
      {"T"});
  std::string text = body_text(r.program);
  EXPECT_EQ(text.find("DEAD"), std::string::npos);
  EXPECT_EQ(r.stats.arrays_eliminated, 1);
}

TEST(OffsetArrays, EoShiftConvertsWithConstantBoundary) {
  Prepared r = run(
      "INTEGER N\nREAL U(N,N), T(N,N)\n"
      "T = EOSHIFT(U,SHIFT=+1,BOUNDARY=0.0,DIM=1) + U\n",
      {"T"});
  EXPECT_EQ(r.stats.shifts_converted, 1);
  EXPECT_NE(body_text(r.program).find("CALL OVERLAP_EOSHIFT(U, SHIFT=+1, "
                                      "DIM=1, BOUNDARY=0.0)"),
            std::string::npos)
      << body_text(r.program);
}

TEST(OffsetArrays, SingletonShiftIntoLiveOutWithNoUsesKept) {
  // Converting would only replace one full data movement with an
  // overlap shift plus a whole-array copy: not profitable.
  Prepared r = run(
      "INTEGER N\nREAL U(N,N), T(N,N)\n"
      "T = CSHIFT(U,SHIFT=+1,DIM=1)\n",
      {"T"});
  EXPECT_EQ(r.stats.shifts_converted, 0);
  EXPECT_EQ(r.stats.shifts_kept, 1);
}

}  // namespace
}  // namespace hpfsc::passes

#include "executor/plan.hpp"

#include <gtest/gtest.h>

#include "executor/kernels.hpp"

#include <algorithm>
#include <array>

namespace hpfsc::exec {
namespace {

using spmd::Instr;

spmd::Op nine_point_nest(bool scalar_replace, int unroll) {
  // Problem 9's fused body: T = U + 8 neighbor adds, as 7 kernels.
  spmd::Op op;
  op.kind = spmd::OpKind::LoopNest;
  op.rank = 2;
  op.scalar_replace = scalar_replace;
  op.unroll = unroll;
  op.loop_order = {1, 0, 2};
  auto load = [&](int di, int dj) {
    spmd::Load l{0, {di, dj, 0}};  // array 0 = U
    auto it = std::find(op.loads.begin(), op.loads.end(), l);
    if (it != op.loads.end()) return static_cast<int>(it - op.loads.begin());
    op.loads.push_back(l);
    return static_cast<int>(op.loads.size() - 1);
  };
  int t_load = -1;
  {
    spmd::Load l{1, {0, 0, 0}};  // array 1 = T
    op.loads.push_back(l);
    t_load = static_cast<int>(op.loads.size() - 1);
  }
  auto push_load = [&](spmd::Kernel& k, int idx) {
    k.code.push_back(Instr{Instr::Op::PushLoad, idx, 0.0});
  };
  auto add = [&](spmd::Kernel& k) {
    k.code.push_back(Instr{Instr::Op::Add, 0, 0.0});
  };
  // Kernel 0: T = U + U<+1,0> + U<-1,0>
  {
    spmd::Kernel k;
    k.lhs_array = 1;
    push_load(k, load(0, 0));
    push_load(k, load(1, 0));
    add(k);
    push_load(k, load(-1, 0));
    add(k);
    op.kernels.push_back(std::move(k));
  }
  // Kernels 1..6: T = T + U<di,dj>
  const int offs[6][2] = {{0, -1}, {0, 1}, {1, -1}, {1, 1}, {-1, -1}, {-1, 1}};
  for (auto& o : offs) {
    spmd::Kernel k;
    k.lhs_array = 1;
    push_load(k, t_load);
    push_load(k, load(o[0], o[1]));
    add(k);
    op.kernels.push_back(std::move(k));
  }
  return op;
}

int count(const KernelPlan& p, PlanInstr::Op op) {
  int n = 0;
  for (const PlanInstr& i : p.instrs) {
    if (i.op == op) ++n;
  }
  return n;
}

TEST(KernelPlan, NaivePlanLoadsAndStoresEveryReference) {
  spmd::Op nest = nine_point_nest(false, 1);
  KernelPlan plan = build_kernel_plan(nest, 1, 1);
  // 3 loads in kernel 0 + 2 per following kernel = 15 memory loads.
  EXPECT_EQ(count(plan, PlanInstr::Op::LoadPtr), 15);
  // Every kernel stores: 7 stores.
  EXPECT_EQ(count(plan, PlanInstr::Op::PopStore), 7);
  EXPECT_EQ(plan.num_regs, 0);
}

TEST(KernelPlan, ScalarReplacementEliminatesRedundancy) {
  spmd::Op nest = nine_point_nest(true, 1);
  KernelPlan plan = build_kernel_plan(nest, 1, 1);
  // Exactly one memory load per distinct reference: 9 U values.  T's
  // reads are forwarded from the previous kernel's register.
  EXPECT_EQ(count(plan, PlanInstr::Op::LoadPtrCache), 9);
  EXPECT_EQ(count(plan, PlanInstr::Op::LoadPtr), 0);
  // Dead intermediate stores eliminated: a single final store of T.
  EXPECT_EQ(count(plan, PlanInstr::Op::PopStore), 1);
  EXPECT_EQ(plan.store_slots.size(), 1u);
}

TEST(KernelPlan, UnrollAndJamSharesLoadsAcrossInstances) {
  spmd::Op nest = nine_point_nest(true, 4);
  KernelPlan plan = build_kernel_plan(nest, 4, 1);
  EXPECT_EQ(plan.width, 4);
  // Unrolled naive would need 4*9 = 36 loads; jamming shares columns:
  // the distinct U columns are j-1 .. j+4 -> 3 rows x 6 cols = 18.
  EXPECT_EQ(count(plan, PlanInstr::Op::LoadPtrCache), 18);
  // One store per unrolled instance.
  EXPECT_EQ(count(plan, PlanInstr::Op::PopStore), 4);
}

TEST(KernelPlan, UnrollWithoutScalarReplacementJustRepeats) {
  spmd::Op nest = nine_point_nest(false, 2);
  KernelPlan plan = build_kernel_plan(nest, 2, 1);
  EXPECT_EQ(count(plan, PlanInstr::Op::LoadPtr), 30);
  EXPECT_EQ(count(plan, PlanInstr::Op::PopStore), 14);
}

TEST(KernelPlan, StackDepthTracked) {
  spmd::Op nest = nine_point_nest(false, 1);
  KernelPlan plan = build_kernel_plan(nest, 1, 1);
  EXPECT_GE(plan.max_stack, 2);
  EXPECT_LE(plan.max_stack, 4);
}

TEST(KernelPlan, ForwardingRespectsProgramOrder) {
  // kernel0: A = B ; kernel1: C = A  — C must see the new A.
  spmd::Op op;
  op.kind = spmd::OpKind::LoopNest;
  op.rank = 2;
  op.scalar_replace = true;
  op.loads.push_back(spmd::Load{1, {0, 0, 0}});  // B
  op.loads.push_back(spmd::Load{0, {0, 0, 0}});  // A
  {
    spmd::Kernel k;
    k.lhs_array = 0;
    k.code.push_back(Instr{Instr::Op::PushLoad, 0, 0.0});
    op.kernels.push_back(std::move(k));
  }
  {
    spmd::Kernel k;
    k.lhs_array = 2;  // C
    k.code.push_back(Instr{Instr::Op::PushLoad, 1, 0.0});
    op.kernels.push_back(std::move(k));
  }
  KernelPlan plan = build_kernel_plan(op, 1, 1);
  // A is never loaded from memory: its value is forwarded from kernel 0.
  for (const spmd::Load& l : plan.load_slots) EXPECT_NE(l.array, 0);
  EXPECT_EQ(plan.store_slots.size(), 2u);
}

// -- Microkernel classification (compiled dispatch tier) ---------------
// nine_point_nest uses loop_order {1,0,2}: dimension 0 is innermost,
// dimension 1 is the unrolled outer dimension.

TEST(MicroKernel, ClassifiesScalarReplacedNinePoint) {
  spmd::Op nest = nine_point_nest(true, 1);
  KernelPlan plan = build_kernel_plan(nest, 1, 1);
  auto micro = classify_weighted_sum(plan, 0, 1);
  ASSERT_TRUE(micro.has_value());
  // Register forwarding flattens the 7 fused statements into one store
  // of a 9-term unit-coefficient sum.
  ASSERT_EQ(micro->stores.size(), 1u);
  EXPECT_EQ(micro->stores[0].terms.size(), 9u);
  for (const MicroTerm& t : micro->stores[0].terms) {
    EXPECT_GE(t.load_slot, 0);
    EXPECT_TRUE(t.coeff.empty());
    EXPECT_FALSE(t.subtract);
  }
  // T is stored but never loaded (forwarded): no aliasing.
  EXPECT_TRUE(micro->alias_free);
}

TEST(MicroKernel, ClassifiesUnrolledMultiStore) {
  spmd::Op nest = nine_point_nest(true, 4);
  KernelPlan plan = build_kernel_plan(nest, 4, 1);
  auto micro = classify_weighted_sum(plan, 0, 1);
  ASSERT_TRUE(micro.has_value());
  // One store per unroll instance, provably disjoint along dimension 1.
  ASSERT_EQ(micro->stores.size(), 4u);
  for (const MicroStore& s : micro->stores) {
    EXPECT_EQ(s.terms.size(), 9u);
  }
}

// -- multi_store_safe boundary audit -----------------------------------
// Store-major execution of a W-wide plan applies every store once per
// strip, with strips box_lo, box_lo+W, ... along the unroll dimension.
// Two stores of the same array whose offsets differ by delta along that
// dimension write the same location in *different strips* exactly when
// delta is a multiple of W — so delta == W must be rejected (the
// off-by-one above the widest shape unroll-and-jam produces, W-1), and
// any 0 < delta < W is provably disjoint.  Along the inner dimension
// every store sweeps the whole strip, so no nonzero offset is safe.
// These plans are built by hand to pin the exact boundary:
// unroll-and-jam itself can only produce deltas in [1, W-1].

KernelPlan two_store_plan(int width, std::array<int, 3> store_a_off,
                          std::array<int, 3> store_b_off) {
  KernelPlan plan;
  plan.width = width;
  plan.load_slots.push_back(spmd::Load{0, {0, 0, 0}});  // array 0 = A
  plan.load_slots.push_back(spmd::Load{0, {0, 1, 0}});
  plan.store_slots.push_back(
      spmd::Load{1, {store_a_off[0], store_a_off[1], store_a_off[2]}});
  plan.store_slots.push_back(
      spmd::Load{1, {store_b_off[0], store_b_off[1], store_b_off[2]}});
  plan.instrs.push_back(PlanInstr{PlanInstr::Op::LoadPtr, 0, 0, 0.0});
  plan.instrs.push_back(PlanInstr{PlanInstr::Op::PopStore, 0, 0, 0.0});
  plan.instrs.push_back(PlanInstr{PlanInstr::Op::LoadPtr, 1, 0, 0.0});
  plan.instrs.push_back(PlanInstr{PlanInstr::Op::PopStore, 1, 0, 0.0});
  plan.max_stack = 1;
  return plan;
}

TEST(MicroKernel, MultiStoreAcceptsDeltaUpToWidthMinusOne) {
  // inner_dim = 0, unroll_dim = 1; delta = W-1 is the widest disjoint
  // shape (the last jammed instance of a width-W unroll).
  auto micro = classify_weighted_sum(two_store_plan(4, {0, 0, 0}, {0, 3, 0}),
                                     0, 1);
  ASSERT_TRUE(micro.has_value());
  EXPECT_EQ(micro->stores.size(), 2u);
  EXPECT_TRUE(micro->alias_free);
}

TEST(MicroKernel, MultiStoreRejectsDeltaEqualToWidth) {
  // delta == W: strip o's second store hits strip o+W's first store.
  EXPECT_FALSE(
      classify_weighted_sum(two_store_plan(4, {0, 0, 0}, {0, 4, 0}), 0, 1)
          .has_value());
  // Off-by-one width: W = 2 with delta 2 must also be rejected...
  EXPECT_FALSE(
      classify_weighted_sum(two_store_plan(2, {0, 0, 0}, {0, 2, 0}), 0, 1)
          .has_value());
  // ...while delta 1 under the same width is the jammed shape.
  EXPECT_TRUE(
      classify_weighted_sum(two_store_plan(2, {0, 0, 0}, {0, 1, 0}), 0, 1)
          .has_value());
}

TEST(MicroKernel, MultiStoreRejectsWidthOneAndIdenticalOffsets) {
  // Width-1 plans (rank-1 nests and epilogues) admit no disjoint delta.
  EXPECT_FALSE(
      classify_weighted_sum(two_store_plan(1, {0, 0, 0}, {0, 1, 0}), 0, 1)
          .has_value());
  // delta == 0: both stores write the same element of the same strip.
  EXPECT_FALSE(
      classify_weighted_sum(two_store_plan(4, {0, 1, 0}, {0, 1, 0}), 0, 1)
          .has_value());
}

TEST(MicroKernel, MultiStoreRejectsUnrollAlongInnerDimension) {
  // unroll_dim == inner_dim (rank-1 shape): each store sweeps the whole
  // strip along dimension 0, so offsets 1 apart still overlap.
  EXPECT_FALSE(
      classify_weighted_sum(two_store_plan(4, {0, 0, 0}, {1, 0, 0}), 0, 0)
          .has_value());
}

TEST(MicroKernel, MultiStoreRejectsOffsetOffTheUnrollDimension) {
  // Offsets differing along the *inner* dimension are never disjoint,
  // whatever the width.
  EXPECT_FALSE(
      classify_weighted_sum(two_store_plan(4, {1, 1, 0}, {0, 1, 0}), 0, 1)
          .has_value());
}

TEST(MicroKernel, RejectsMultiStoreReadingStoredArray) {
  // The naive (non-scalar-replaced) plan re-loads T between its seven
  // stores of T: store-major execution would reorder those accesses, so
  // the plan must fall back to the interpreter.
  spmd::Op nest = nine_point_nest(false, 1);
  KernelPlan plan = build_kernel_plan(nest, 1, 1);
  EXPECT_FALSE(classify_weighted_sum(plan, 0, 1).has_value());
}

TEST(MicroKernel, SingleStoreInPlaceClassifiesWithoutAliasFreedom) {
  // A = A + A<+1,0>: single store, loads alias the stored array.  The
  // per-element order matches the interpreter, so it classifies, but
  // without the restrict-qualified fast path.
  spmd::Op op;
  op.kind = spmd::OpKind::LoopNest;
  op.rank = 2;
  op.loads.push_back(spmd::Load{0, {0, 0, 0}});
  op.loads.push_back(spmd::Load{0, {1, 0, 0}});
  spmd::Kernel k;
  k.lhs_array = 0;
  k.code.push_back(Instr{Instr::Op::PushLoad, 0, 0.0});
  k.code.push_back(Instr{Instr::Op::PushLoad, 1, 0.0});
  k.code.push_back(Instr{Instr::Op::Add, 0, 0.0});
  op.kernels.push_back(std::move(k));
  KernelPlan plan = build_kernel_plan(op, 1, 1);
  auto micro = classify_weighted_sum(plan, 0, 1);
  ASSERT_TRUE(micro.has_value());
  EXPECT_EQ(micro->stores.size(), 1u);
  EXPECT_FALSE(micro->alias_free);
}

TEST(MicroKernel, CoefficientTermsCarryScalarPrograms) {
  // B = 2.0 * A - A<+1,0> * C0: coefficient programs on both sides.
  spmd::Op op;
  op.kind = spmd::OpKind::LoopNest;
  op.rank = 2;
  op.loads.push_back(spmd::Load{0, {0, 0, 0}});
  op.loads.push_back(spmd::Load{0, {1, 0, 0}});
  spmd::Kernel k;
  k.lhs_array = 1;
  k.code.push_back(Instr{Instr::Op::PushConst, 0, 2.0});
  k.code.push_back(Instr{Instr::Op::PushLoad, 0, 0.0});
  k.code.push_back(Instr{Instr::Op::Mul, 0, 0.0});
  k.code.push_back(Instr{Instr::Op::PushLoad, 1, 0.0});
  k.code.push_back(Instr{Instr::Op::PushScalar, 3, 0.0});
  k.code.push_back(Instr{Instr::Op::Mul, 0, 0.0});
  k.code.push_back(Instr{Instr::Op::Sub, 0, 0.0});
  op.kernels.push_back(std::move(k));
  KernelPlan plan = build_kernel_plan(op, 1, 1);
  auto micro = classify_weighted_sum(plan, 0, 1);
  ASSERT_TRUE(micro.has_value());
  ASSERT_EQ(micro->stores.size(), 1u);
  const auto& terms = micro->stores[0].terms;
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_TRUE(terms[0].coeff_on_left);
  EXPECT_FALSE(terms[0].subtract);
  EXPECT_FALSE(terms[1].coeff_on_left);
  EXPECT_TRUE(terms[1].subtract);
  double env[8] = {0, 0, 0, 5.0};
  EXPECT_EQ(eval_coeff(terms[0].coeff, env), 2.0);
  EXPECT_EQ(eval_coeff(terms[1].coeff, env), 5.0);
}

TEST(MicroKernel, RejectsShapesTheTemplatesCannotReproduce) {
  auto one_kernel_plan = [](std::vector<Instr> code) {
    spmd::Op op;
    op.kind = spmd::OpKind::LoopNest;
    op.rank = 2;
    op.loads.push_back(spmd::Load{0, {0, 0, 0}});
    op.loads.push_back(spmd::Load{0, {1, 0, 0}});
    spmd::Kernel k;
    k.lhs_array = 1;
    k.code = std::move(code);
    op.kernels.push_back(std::move(k));
    return build_kernel_plan(op, 1, 1);
  };
  // Division by a load.
  KernelPlan div = one_kernel_plan({Instr{Instr::Op::PushLoad, 0, 0.0},
                                    Instr{Instr::Op::PushLoad, 1, 0.0},
                                    Instr{Instr::Op::Div, 0, 0.0}});
  EXPECT_FALSE(classify_weighted_sum(div, 0, 1).has_value());
  // Negated load.
  KernelPlan neg = one_kernel_plan({Instr{Instr::Op::PushLoad, 0, 0.0},
                                    Instr{Instr::Op::Neg, 0, 0.0}});
  EXPECT_FALSE(classify_weighted_sum(neg, 0, 1).has_value());
  // Comparison against a load.
  KernelPlan cmp = one_kernel_plan({Instr{Instr::Op::PushLoad, 0, 0.0},
                                    Instr{Instr::Op::PushLoad, 1, 0.0},
                                    Instr{Instr::Op::Lt, 0, 0.0}});
  EXPECT_FALSE(classify_weighted_sum(cmp, 0, 1).has_value());
  // Load * load (no pure-scalar side).
  KernelPlan mul = one_kernel_plan({Instr{Instr::Op::PushLoad, 0, 0.0},
                                    Instr{Instr::Op::PushLoad, 1, 0.0},
                                    Instr{Instr::Op::Mul, 0, 0.0}});
  EXPECT_FALSE(classify_weighted_sum(mul, 0, 1).has_value());
}

TEST(MicroKernel, ClassifiesScaledSum) {
  // T = 0.25 * (a + b + c + d), the Jacobi shape: the factor applies to
  // the finished left-leaning sum, exactly the interpreter's trailing
  // Mul, so it is carried as a whole-sum scale on the store.
  spmd::Op op;
  op.kind = spmd::OpKind::LoopNest;
  op.rank = 2;
  op.loads.push_back(spmd::Load{0, {-1, 0, 0}});
  op.loads.push_back(spmd::Load{0, {1, 0, 0}});
  op.loads.push_back(spmd::Load{0, {0, -1, 0}});
  op.loads.push_back(spmd::Load{0, {0, 1, 0}});
  spmd::Kernel k;
  k.lhs_array = 1;
  k.code.push_back(Instr{Instr::Op::PushConst, 0, 0.25});
  for (int i = 0; i < 4; ++i) {
    k.code.push_back(Instr{Instr::Op::PushLoad, i, 0.0});
    if (i > 0) k.code.push_back(Instr{Instr::Op::Add, 0, 0.0});
  }
  k.code.push_back(Instr{Instr::Op::Mul, 0, 0.0});
  op.kernels.push_back(std::move(k));
  KernelPlan plan = build_kernel_plan(op, 1, 1);
  auto micro = classify_weighted_sum(plan, 0, 1);
  ASSERT_TRUE(micro.has_value());
  ASSERT_EQ(micro->stores.size(), 1u);
  const MicroStore& s = micro->stores[0];
  EXPECT_EQ(s.terms.size(), 4u);
  ASSERT_FALSE(s.scale.empty());
  EXPECT_TRUE(s.scale_on_left);
  double env[1] = {0.0};
  EXPECT_EQ(eval_coeff(s.scale, env), 0.25);
}

TEST(MicroKernel, ScaledSumOnTheRightCarriesSideAndScalars) {
  // T = (a + b) * C3: right-side scale with a scalar-parameter program.
  spmd::Op op;
  op.kind = spmd::OpKind::LoopNest;
  op.rank = 2;
  op.loads.push_back(spmd::Load{0, {0, 0, 0}});
  op.loads.push_back(spmd::Load{0, {1, 0, 0}});
  spmd::Kernel k;
  k.lhs_array = 1;
  k.code.push_back(Instr{Instr::Op::PushLoad, 0, 0.0});
  k.code.push_back(Instr{Instr::Op::PushLoad, 1, 0.0});
  k.code.push_back(Instr{Instr::Op::Add, 0, 0.0});
  k.code.push_back(Instr{Instr::Op::PushScalar, 3, 0.0});
  k.code.push_back(Instr{Instr::Op::Mul, 0, 0.0});
  op.kernels.push_back(std::move(k));
  KernelPlan plan = build_kernel_plan(op, 1, 1);
  auto micro = classify_weighted_sum(plan, 0, 1);
  ASSERT_TRUE(micro.has_value());
  const MicroStore& s = micro->stores[0];
  EXPECT_EQ(s.terms.size(), 2u);
  ASSERT_FALSE(s.scale.empty());
  EXPECT_FALSE(s.scale_on_left);
  double env[8] = {0, 0, 0, 0.5};
  EXPECT_EQ(eval_coeff(s.scale, env), 0.5);
}

TEST(MicroKernel, RejectsScaledSumInsideALongerChain) {
  // T = 0.25 * (a + b) + c: folding the scaled sum into the outer Add
  // would drop or reassociate the scale — must fall back.
  spmd::Op op;
  op.kind = spmd::OpKind::LoopNest;
  op.rank = 2;
  op.loads.push_back(spmd::Load{0, {0, 0, 0}});
  op.loads.push_back(spmd::Load{0, {1, 0, 0}});
  op.loads.push_back(spmd::Load{0, {-1, 0, 0}});
  spmd::Kernel k;
  k.lhs_array = 1;
  k.code.push_back(Instr{Instr::Op::PushConst, 0, 0.25});
  k.code.push_back(Instr{Instr::Op::PushLoad, 0, 0.0});
  k.code.push_back(Instr{Instr::Op::PushLoad, 1, 0.0});
  k.code.push_back(Instr{Instr::Op::Add, 0, 0.0});
  k.code.push_back(Instr{Instr::Op::Mul, 0, 0.0});
  k.code.push_back(Instr{Instr::Op::PushLoad, 2, 0.0});
  k.code.push_back(Instr{Instr::Op::Add, 0, 0.0});
  op.kernels.push_back(std::move(k));
  KernelPlan plan = build_kernel_plan(op, 1, 1);
  EXPECT_FALSE(classify_weighted_sum(plan, 0, 1).has_value());
}

TEST(MicroKernel, RejectsRightLeaningSum) {
  // a + (b + c): the right operand is a two-term list, so the shape is
  // not the interpreter's left-leaning accumulation order.
  spmd::Op op;
  op.kind = spmd::OpKind::LoopNest;
  op.rank = 2;
  op.loads.push_back(spmd::Load{0, {0, 0, 0}});
  op.loads.push_back(spmd::Load{0, {1, 0, 0}});
  op.loads.push_back(spmd::Load{0, {-1, 0, 0}});
  spmd::Kernel k;
  k.lhs_array = 1;
  k.code.push_back(Instr{Instr::Op::PushLoad, 0, 0.0});
  k.code.push_back(Instr{Instr::Op::PushLoad, 1, 0.0});
  k.code.push_back(Instr{Instr::Op::PushLoad, 2, 0.0});
  k.code.push_back(Instr{Instr::Op::Add, 0, 0.0});
  k.code.push_back(Instr{Instr::Op::Add, 0, 0.0});
  op.kernels.push_back(std::move(k));
  KernelPlan plan = build_kernel_plan(op, 1, 1);
  EXPECT_FALSE(classify_weighted_sum(plan, 0, 1).has_value());
}

}  // namespace
}  // namespace hpfsc::exec

// End-to-end check of the paper's unioning guarantee: with the strict
// communication invariant armed, an O3+/O4 run of any 9-point kernel
// executes cleanly (one message per direction per dimension per
// statement), while the pre-unioning levels violate it — which is
// exactly why the invariant exists as a regression tripwire.
#include <gtest/gtest.h>

#include "driver/hpfsc.hpp"
#include "simpi/comm_ledger.hpp"

namespace hpfsc {
namespace {

Execution compile_and_prepare(const char* kernel, int level, int n,
                              bool strict) {
  Compiler compiler;
  CompilerOptions opts = CompilerOptions::level(level);
  opts.passes.offset.live_out = {"T"};
  CompiledProgram compiled = compiler.compile(kernel, opts);
  Execution exec(std::move(compiled.program), simpi::MachineConfig{});
  exec.machine().set_comm_invariant(strict);
  exec.prepare(Bindings{}.set("N", n));
  exec.set_array("U", [](int i, int j, int) { return i * 1.5 + j; });
  return exec;
}

TEST(CommInvariantE2E, UnionedLevelsRunCleanUnderStrictMode) {
  for (const char* kernel :
       {kernels::kProblem9, kernels::kNinePointCShift,
        kernels::kNinePointArraySyntax}) {
    for (int level : {3, 4}) {
      Execution exec = compile_and_prepare(kernel, level, 16, true);
      auto stats = exec.run(1);
      // One overlap message per direction per dimension per sending PE
      // (2x2 grid: 4 senders per direction machine-wide).
      const simpi::CommLedger& ledger = stats.machine.comm;
      for (int dim = 0; dim < 2; ++dim) {
        for (int dir = 0; dir < simpi::kCommDirs; ++dir) {
          EXPECT_EQ(ledger.dir_total(dim, dir).messages, 4u)
              << "level " << level << " dim " << dim << " dir " << dir;
        }
      }
    }
  }
}

TEST(CommInvariantE2E, PreUnioningLevelViolatesStrictMode) {
  // The single-statement 9-point kernel at O1: twelve CSHIFTs become
  // eight overlap shifts, three per direction, all inside one statement
  // context — strict mode must trip.  (problem9 at O0/O1 is legitimately
  // clean: its hand-done CSE puts one shift per direction per statement.)
  Execution exec = compile_and_prepare(kernels::kNinePointCShift, 1, 16,
                                       true);
  EXPECT_THROW(exec.run(1), simpi::CommInvariantViolation);
}

TEST(CommInvariantE2E, PreUnioningLevelRunsWhenDisarmed) {
  Execution exec = compile_and_prepare(kernels::kNinePointCShift, 1, 16,
                                       false);
  auto stats = exec.run(1);
  // 3x the unioned count in every direction (Figure 6's 12 -> 4).
  for (int dim = 0; dim < 2; ++dim) {
    for (int dir = 0; dir < simpi::kCommDirs; ++dir) {
      EXPECT_EQ(stats.machine.comm.dir_total(dim, dir).messages, 12u);
    }
  }
}

TEST(CommInvariantE2E, LedgerSurvivesIntoStatsJson) {
  Execution exec = compile_and_prepare(kernels::kProblem9, 4, 16, false);
  auto stats = exec.run(1);
  const std::string json = stats.machine.to_json();
  EXPECT_NE(json.find("\"schema_version\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"comm\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"overlap_shift\""), std::string::npos) << json;
}

TEST(CommInvariantE2E, MultiStepRunResetsContextBetweenIterations) {
  // Two iterations double the ledger but never trip the invariant: the
  // executor closes the statement context after every kernel nest and
  // at each run start.
  Execution exec =
      compile_and_prepare(kernels::kNinePointArraySyntax, 4, 16, true);
  auto stats = exec.run(2);
  EXPECT_EQ(stats.machine.comm.dir_total(0, 1).messages, 8u);
}

TEST(CommInvariantE2E, ViolationMessageNamesDimensionAndDirection) {
  // The diagnostic must pin the offending transfer precisely enough to
  // act on: array, 1-based dimension, and direction sign.
  Execution exec = compile_and_prepare(kernels::kNinePointCShift, 1, 16,
                                       true);
  try {
    exec.run(1);
    FAIL() << "expected CommInvariantViolation";
  } catch (const simpi::CommInvariantViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("in dim "), std::string::npos) << what;
    EXPECT_TRUE(what.find("in dim 1") != std::string::npos ||
                what.find("in dim 2") != std::string::npos)
        << what;
    EXPECT_TRUE(what.find("direction +") != std::string::npos ||
                what.find("direction -") != std::string::npos)
        << what;
    EXPECT_NE(what.find("array U"), std::string::npos) << what;
    EXPECT_NE(what.find("statement context"), std::string::npos) << what;
  }
}

TEST(CommInvariantE2E, ContextIsClosedAfterCaughtViolation) {
  // A caught violation must not poison the machine: the statement
  // context, barrier state, and channels are all reset, so the same
  // Execution re-runs disarmed with the full (pre-unioning) message
  // count, and re-armed it trips again deterministically rather than
  // staying silent on stale counters.
  Execution exec = compile_and_prepare(kernels::kNinePointCShift, 1, 16,
                                       true);
  EXPECT_THROW(exec.run(1), simpi::CommInvariantViolation);

  exec.machine().set_comm_invariant(false);
  auto stats = exec.run(1);
  for (int dim = 0; dim < 2; ++dim) {
    for (int dir = 0; dir < simpi::kCommDirs; ++dir) {
      EXPECT_EQ(stats.machine.comm.dir_total(dim, dir).messages, 12u);
    }
  }

  exec.machine().set_comm_invariant(true);
  EXPECT_THROW(exec.run(1), simpi::CommInvariantViolation);
}

}  // namespace
}  // namespace hpfsc

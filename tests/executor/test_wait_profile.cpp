// Wait-state reconciliation (DESIGN.md §13): for every paper kernel, at
// every optimization level, through every kernel tier, on multiple PE
// grids, the per-PE accounting must close — compute + recv + barrier +
// pool + overhead == wall within tolerance — and the derived
// critical-path numbers must be sane.  This is the wait-state analogue
// of the CommLedger reconciliation suite.
#include "executor/wait_profile.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "driver/hpfsc.hpp"

namespace hpfsc {
namespace {

struct ProfileKernelCase {
  const char* name;
  const char* source;
  std::vector<std::string> live_out;
  bool needs_coefficients = false;
  bool needs_nsteps = false;
};

std::vector<ProfileKernelCase> paper_kernel_cases() {
  return {
      {"FivePoint", kernels::kFivePointArraySyntax, {"DST"}, true, false},
      {"NinePointCShift", kernels::kNinePointCShift, {"T"}, false, false},
      {"Problem9", kernels::kProblem9, {"T"}, false, false},
      {"NinePointArraySyntax", kernels::kNinePointArraySyntax, {"T"}, false,
       false},
      {"Jacobi", kernels::kJacobiTimeLoop, {"U", "T"}, false, true},
  };
}

Execution make_kernel_execution(const ProfileKernelCase& c, int level, int n,
                                KernelTier tier, int pe_rows, int pe_cols) {
  CompilerOptions opts = CompilerOptions::level(level);
  opts.passes.offset.live_out = c.live_out;
  Compiler compiler;
  CompiledProgram compiled = compiler.compile(c.source, opts);
  simpi::MachineConfig mc;
  mc.pe_rows = pe_rows;
  mc.pe_cols = pe_cols;
  Execution exec(std::move(compiled.program), mc);
  exec.set_kernel_tier(tier);
  Bindings b;
  b.set("N", n);
  if (c.needs_coefficients) {
    b.set("C1", 0.1).set("C2", 0.2).set("C3", 0.4).set("C4", 0.2).set("C5",
                                                                      0.1);
  }
  if (c.needs_nsteps) b.set("NSTEPS", 2);
  exec.prepare(b);
  const char* input =
      std::string(c.source).find("SRC(N,N)") != std::string::npos ? "SRC"
                                                                  : "U";
  exec.set_array(input, [](int i, int j, int) {
    return std::sin(i * 0.7) + 0.3 * j;
  });
  return exec;
}

Execution::RunStats run_kernel(const ProfileKernelCase& c, int level, int n,
                               KernelTier tier, int pe_rows, int pe_cols,
                               int steps = 1) {
  Execution exec = make_kernel_execution(c, level, n, tier, pe_rows, pe_cols);
  // Warm-up: the machine's first run spawns the PE worker threads,
  // which would otherwise land inside the profiled wall window as
  // unattributed overhead (milliseconds under a loaded ctest -j host).
  exec.run(1);
  return exec.run(steps);
}

void expect_profile_sane(const WaitProfile& p, int num_pes,
                         const std::string& label) {
  ASSERT_EQ(p.rows.size(), static_cast<std::size_t>(num_pes)) << label;
  EXPECT_GT(p.wall_seconds, 0.0) << label;
  EXPECT_GE(p.exposed_comm_fraction, 0.0) << label;
  EXPECT_LT(p.exposed_comm_fraction, 1.0) << label;
  EXPECT_GE(p.overlap_speedup_bound, 1.0) << label;
  for (const WaitProfileRow& r : p.rows) {
    const double sum = r.compute_s + r.recv_s + r.overlap_s + r.barrier_s +
                       r.pool_s + r.overhead_s;
    EXPECT_NEAR(sum, p.wall_seconds, 1e-6 + 1e-6 * p.wall_seconds)
        << label << " pe " << r.pe;
  }
}

// Reconciliation at the default (tight) tolerance, with up to three
// fresh runs: a loaded ctest -j host can deschedule the submitting
// thread for milliseconds between its wall-clock stamps and the pool
// handoff, which shows up as uniform per-PE overhead.  A systematic
// accounting bug fails every attempt; scheduler spikes do not.
void expect_reconciles(Execution& exec, int steps, int num_pes,
                       const std::string& label) {
  WaitProfile p;
  for (int attempt = 0; attempt < 3; ++attempt) {
    p = WaitProfile::from_run(exec.run(steps));
    if (p.reconciled()) break;
  }
  expect_profile_sane(p, num_pes, label);
  EXPECT_TRUE(p.reconciled()) << label << "\n" << p.to_text();
}

// The acceptance matrix: each (kernel, level) parameter runs all three
// kernel tiers on two PE grids and asserts the books close every time.
struct ProfileCase {
  int kernel;  // index into paper_kernel_cases()
  int level;   // 0..4
};

class WaitProfileReconciliation
    : public ::testing::TestWithParam<ProfileCase> {};

TEST_P(WaitProfileReconciliation, ClosesAcrossTiersAndGrids) {
  const ProfileCase pc = GetParam();
  const ProfileKernelCase c =
      paper_kernel_cases()[static_cast<std::size_t>(pc.kernel)];
  const KernelTier tiers[] = {KernelTier::InterpreterOnly, KernelTier::Auto,
                              KernelTier::Simd};
  const char* tier_names[] = {"interp", "auto", "simd"};
  const std::pair<int, int> grids[] = {{2, 2}, {1, 2}};
  for (int t = 0; t < 3; ++t) {
    for (const auto& [rows, cols] : grids) {
      const std::string label = std::string(c.name) + " O" +
                                std::to_string(pc.level) + " " +
                                tier_names[t] + " " + std::to_string(rows) +
                                "x" + std::to_string(cols);
      SCOPED_TRACE(label);
      Execution exec =
          make_kernel_execution(c, pc.level, 16, tiers[t], rows, cols);
      exec.run(1);  // spawn PE workers outside the profiled window
      expect_reconciles(exec, 1, rows * cols, label);
    }
  }
}

std::vector<ProfileCase> all_cases() {
  std::vector<ProfileCase> cases;
  for (int k = 0; k < 5; ++k) {
    for (int level = 0; level <= 4; ++level) {
      cases.push_back({k, level});
    }
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<ProfileCase>& info) {
  return paper_kernel_cases()[static_cast<std::size_t>(info.param.kernel)]
             .name +
         std::string("_O") + std::to_string(info.param.level);
}

INSTANTIATE_TEST_SUITE_P(PaperKernels, WaitProfileReconciliation,
                         ::testing::ValuesIn(all_cases()), case_name);

// Multi-step runs (the service path) must close too: steps accumulate
// into one RunStats whose wall covers all of them.
TEST(WaitProfile, MultiStepRunReconciles) {
  const ProfileKernelCase c = paper_kernel_cases()[2];  // Problem9
  Execution exec = make_kernel_execution(c, 3, 16, KernelTier::Auto, 2, 2);
  exec.run(1);
  expect_reconciles(exec, 3, 4, "Problem9 O3 steps=3");
}

// With wait timing disabled there is nothing to reconcile: the profile
// has no rows, reports the identity bound, and refuses to claim the
// books are closed (reconciled() is false without data — the right
// alarm if instrumentation silently stops reporting).
TEST(WaitProfile, TimingOffYieldsEmptyProfile) {
  const ProfileKernelCase c = paper_kernel_cases()[0];
  CompilerOptions opts = CompilerOptions::level(2);
  opts.passes.offset.live_out = c.live_out;
  Compiler compiler;
  CompiledProgram compiled = compiler.compile(c.source, opts);
  Execution exec(std::move(compiled.program), simpi::MachineConfig{});
  exec.machine().set_wait_timing(false);
  Bindings b;
  b.set("N", 16);
  b.set("C1", 0.1).set("C2", 0.2).set("C3", 0.4).set("C4", 0.2).set("C5",
                                                                    0.1);
  exec.prepare(b);
  exec.set_array("SRC",
                 [](int i, int j, int) { return i * 0.25 + j * 0.5; });
  const WaitProfile p = WaitProfile::from_run(exec.run(1));
  EXPECT_TRUE(p.rows.empty());
  EXPECT_EQ(p.exposed_comm_fraction, 0.0);
  EXPECT_EQ(p.overlap_speedup_bound, 1.0);
  EXPECT_FALSE(p.reconciled());
}

// Synthetic-stats unit coverage: from_run derives compute correctly and
// reconciled() rejects books that do not close.
TEST(WaitProfile, FromRunDerivesComputeAndOverhead) {
  Execution::RunStats stats;
  stats.wall_seconds = 0.010;  // 10 ms
  simpi::PeStats pe;
  pe.wait.active_ns = 7'000'000;    // 7 ms active
  pe.wait.recv_wait_ns = 2'000'000;  // of which 2 ms blocked in recv
  pe.wait.barrier_wait_ns = 1'000'000;
  pe.wait.pool_wait_ns = 2'500'000;
  stats.per_pe.push_back(pe);
  const WaitProfile p = WaitProfile::from_run(stats);
  ASSERT_EQ(p.rows.size(), 1u);
  EXPECT_NEAR(p.rows[0].compute_s, 0.004, 1e-9);
  EXPECT_NEAR(p.rows[0].recv_s, 0.002, 1e-9);
  EXPECT_NEAR(p.rows[0].pool_s, 0.0025, 1e-9);
  // overhead = 10 - (4 + 2 + 1 + 2.5) = 0.5 ms
  EXPECT_NEAR(p.rows[0].overhead_s, 0.0005, 1e-9);
  EXPECT_NEAR(p.exposed_comm_fraction, 0.2, 1e-9);
  EXPECT_NEAR(p.overlap_speedup_bound, 1.25, 1e-9);
  EXPECT_TRUE(p.reconciled());
}

TEST(WaitProfile, ReconciledRejectsOpenBooks) {
  Execution::RunStats stats;
  stats.wall_seconds = 0.010;
  simpi::PeStats pe;
  pe.wait.active_ns = 1'000'000;  // 1 ms accounted of a 10 ms wall:
  stats.per_pe.push_back(pe);     // 9 ms unexplained overhead
  const WaitProfile p = WaitProfile::from_run(stats);
  EXPECT_FALSE(p.reconciled());
  // A generous tolerance accepts the same books.
  EXPECT_TRUE(p.reconciled(0.020, 0.25));
}

TEST(WaitProfile, ReportsCarryCriticalPathSummary) {
  const ProfileKernelCase c = paper_kernel_cases()[2];
  const WaitProfile p =
      WaitProfile::from_run(run_kernel(c, 3, 16, KernelTier::Auto, 2, 2));
  const std::string text = p.to_text();
  EXPECT_NE(text.find("wait-state profile"), std::string::npos);
  EXPECT_NE(text.find("exposed-comm fraction:"), std::string::npos);
  EXPECT_NE(text.find("overlap speedup bound:"), std::string::npos);
  const std::string json = p.to_json();
  EXPECT_NE(json.find("\"wall_seconds\":"), std::string::npos);
  EXPECT_NE(json.find("\"exposed_comm_fraction\":"), std::string::npos);
  EXPECT_NE(json.find("\"pes\":["), std::string::npos);
  EXPECT_NE(json.find("\"reconciled\":true"), std::string::npos);
}

}  // namespace
}  // namespace hpfsc

// End-to-end executor behavior: compile real kernels at various levels
// and check results, communication statistics, memory accounting, and
// error handling on the simulated machine.
#include "executor/execution.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "driver/hpfsc.hpp"

namespace hpfsc {
namespace {

Execution compile_and_prepare(const char* source, CompilerOptions opts,
                              simpi::MachineConfig mc, int n,
                              const std::vector<std::string>& live_out = {
                                  "T"}) {
  opts.passes.offset.live_out = live_out;
  Compiler compiler;
  CompiledProgram compiled = compiler.compile(source, opts);
  Execution exec(std::move(compiled.program), mc);
  exec.prepare(Bindings{}.set("N", n));
  return exec;
}

double u_init(int i, int j) { return std::sin(i * 0.7) + 0.3 * j; }

/// Dense reference for the all-ones 9-point stencil with circular wrap.
std::vector<double> ref_nine_point(int n) {
  auto wrap = [n](int g) { return ((g - 1) % n + n) % n; };
  std::vector<double> t(static_cast<std::size_t>(n) * n);
  for (int j = 1; j <= n; ++j) {
    for (int i = 1; i <= n; ++i) {
      double sum = 0.0;
      for (int dj = -1; dj <= 1; ++dj) {
        for (int di = -1; di <= 1; ++di) {
          sum += u_init(wrap(i + di) + 1, wrap(j + dj) + 1);
        }
      }
      t[static_cast<std::size_t>(wrap(i)) +
        static_cast<std::size_t>(wrap(j)) * static_cast<std::size_t>(n)] =
          sum;
    }
  }
  return t;
}

void expect_near(const std::vector<double>& got,
                 const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t k = 0; k < got.size(); ++k) {
    ASSERT_NEAR(got[k], want[k], 1e-9) << "index " << k;
  }
}

struct LevelCase {
  int level;  // -1 = xlhpf
  int n;
  int rows;
  int cols;
};

class NinePointAllLevels : public ::testing::TestWithParam<LevelCase> {};

TEST_P(NinePointAllLevels, Problem9MatchesDenseReference) {
  const auto& p = GetParam();
  CompilerOptions opts = p.level < 0 ? CompilerOptions::xlhpf_like()
                                     : CompilerOptions::level(p.level);
  simpi::MachineConfig mc;
  mc.pe_rows = p.rows;
  mc.pe_cols = p.cols;
  Execution exec =
      compile_and_prepare(kernels::kProblem9, opts, mc, p.n);
  exec.set_array("U", [](int i, int j, int) { return u_init(i, j); });
  exec.run(1);
  expect_near(exec.get_array("T"), ref_nine_point(p.n));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NinePointAllLevels,
    ::testing::Values(LevelCase{-1, 8, 2, 2}, LevelCase{0, 8, 2, 2},
                      LevelCase{1, 8, 2, 2}, LevelCase{2, 8, 2, 2},
                      LevelCase{3, 8, 2, 2}, LevelCase{4, 8, 2, 2},
                      LevelCase{4, 8, 1, 1}, LevelCase{4, 9, 2, 2},
                      LevelCase{4, 16, 4, 1}, LevelCase{4, 16, 1, 4},
                      LevelCase{0, 9, 2, 2}, LevelCase{-1, 9, 2, 2},
                      LevelCase{4, 7, 2, 2}, LevelCase{3, 6, 2, 2}));

TEST(Execution, SingleStatementNinePointMatchesToo) {
  for (int level : {-1, 0, 4}) {
    CompilerOptions opts = level < 0 ? CompilerOptions::xlhpf_like()
                                     : CompilerOptions::level(level);
    Execution exec = compile_and_prepare(kernels::kNinePointCShift, opts,
                                         simpi::MachineConfig{}, 8);
    exec.set_array("U", [](int i, int j, int) { return u_init(i, j); });
    exec.run(1);
    expect_near(exec.get_array("T"), ref_nine_point(8));
  }
}

TEST(Execution, ArraySyntaxNinePointComputesInterior) {
  const int n = 8;
  for (int level : {0, 4}) {
    Execution exec =
        compile_and_prepare(kernels::kNinePointArraySyntax,
                            CompilerOptions::level(level),
                            simpi::MachineConfig{}, n);
    exec.set_array("U", [](int i, int j, int) { return u_init(i, j); });
    exec.set_array("T", [](int, int, int) { return -1.0; });
    exec.run(1);
    auto t = exec.get_array("T");
    auto ref = ref_nine_point(n);
    for (int j = 1; j <= n; ++j) {
      for (int i = 1; i <= n; ++i) {
        std::size_t k = static_cast<std::size_t>(i - 1) +
                        static_cast<std::size_t>(j - 1) * n;
        if (i >= 2 && i <= n - 1 && j >= 2 && j <= n - 1) {
          ASSERT_NEAR(t[k], ref[k], 1e-9) << i << "," << j;
        } else {
          ASSERT_EQ(t[k], -1.0) << "boundary touched at " << i << "," << j;
        }
      }
    }
  }
}

TEST(Execution, FivePointWithCoefficients) {
  const int n = 8;
  Execution exec = compile_and_prepare(kernels::kFivePointArraySyntax,
                                       CompilerOptions::level(4),
                                       simpi::MachineConfig{}, n, {"DST"});
  Bindings b;
  b.set("N", n).set("C1", 1.0).set("C2", 2.0).set("C3", 3.0).set("C4", 4.0)
      .set("C5", 5.0);
  exec.prepare(b);
  exec.set_array("SRC", [](int i, int j, int) { return u_init(i, j); });
  exec.run(1);
  auto dst = exec.get_array("DST");
  for (int j = 2; j <= n - 1; ++j) {
    for (int i = 2; i <= n - 1; ++i) {
      double want = 1.0 * u_init(i - 1, j) + 2.0 * u_init(i, j - 1) +
                    3.0 * u_init(i, j) + 4.0 * u_init(i + 1, j) +
                    5.0 * u_init(i, j + 1);
      ASSERT_NEAR(dst[static_cast<std::size_t>(i - 1) +
                      static_cast<std::size_t>(j - 1) * n],
                  want, 1e-9);
    }
  }
}

TEST(Execution, MessageCountsMatchPaperPerLevel) {
  const int n = 16;
  simpi::MachineConfig mc;  // 2x2
  // O3/O4: four unioned overlap shifts, one message per PE each.
  {
    Execution exec = compile_and_prepare(kernels::kProblem9,
                                         CompilerOptions::level(4), mc, n);
    exec.set_array("U", [](int i, int j, int) { return u_init(i, j); });
    auto stats = exec.run(1);
    EXPECT_EQ(stats.machine.messages_sent, 4u * 4);
    EXPECT_EQ(stats.machine.intra_copy_bytes, 0u);
  }
  // O1/O2: eight overlap shifts.
  {
    Execution exec = compile_and_prepare(kernels::kProblem9,
                                         CompilerOptions::level(2), mc, n);
    exec.set_array("U", [](int i, int j, int) { return u_init(i, j); });
    auto stats = exec.run(1);
    EXPECT_EQ(stats.machine.messages_sent, 8u * 4);
    EXPECT_EQ(stats.machine.intra_copy_bytes, 0u);
  }
  // O0: eight full shifts move the whole subgrid locally as well.
  {
    Execution exec = compile_and_prepare(kernels::kProblem9,
                                         CompilerOptions::level(0), mc, n);
    exec.set_array("U", [](int i, int j, int) { return u_init(i, j); });
    auto stats = exec.run(1);
    EXPECT_EQ(stats.machine.messages_sent, 8u * 4);
    EXPECT_GT(stats.machine.intra_copy_bytes, 0u);
  }
}

TEST(Execution, JacobiTimeLoopAllLevelsAgree) {
  const int n = 8;
  const int steps = 3;
  std::vector<double> reference;
  for (int level : {0, 1, 2, 3, 4}) {
    CompilerOptions opts = CompilerOptions::level(level);
    opts.passes.offset.live_out = {"U", "T"};
    Compiler compiler;
    CompiledProgram compiled = compiler.compile(kernels::kJacobiTimeLoop,
                                                opts);
    Execution exec(std::move(compiled.program), simpi::MachineConfig{});
    exec.prepare(Bindings{}.set("N", n).set("NSTEPS", steps));
    exec.set_array("U", [](int i, int j, int) { return u_init(i, j); });
    exec.run(1);
    auto u = exec.get_array("U");
    if (reference.empty()) {
      reference = u;
    } else {
      expect_near(u, reference);
    }
  }
}

TEST(Execution, RepeatedRunsAreDeterministic) {
  Execution exec = compile_and_prepare(kernels::kProblem9,
                                       CompilerOptions::level(4),
                                       simpi::MachineConfig{}, 8);
  exec.set_array("U", [](int i, int j, int) { return u_init(i, j); });
  exec.run(1);
  auto first = exec.get_array("T");
  exec.run(5);
  EXPECT_EQ(exec.get_array("T"), first);  // U unchanged -> same T
}

TEST(Execution, PrepareReBindsProblemSize) {
  Execution exec = compile_and_prepare(kernels::kProblem9,
                                       CompilerOptions::level(4),
                                       simpi::MachineConfig{}, 8);
  exec.prepare(Bindings{}.set("N", 12));
  exec.set_array("U", [](int i, int j, int) { return u_init(i, j); });
  exec.run(1);
  expect_near(exec.get_array("T"), ref_nine_point(12));
}

TEST(Execution, XlhpfModeExhaustsCappedMemoryWhereOptimizedFits) {
  const int n = 32;
  simpi::MachineConfig mc;
  // Cap chosen so U+T plus a couple of temps fit, but not 12 CSHIFT
  // temporaries (the Figure 11 effect).  Per PE: one 16x16 subgrid is
  // 2048 bytes.
  mc.per_pe_heap_bytes = 6 * 2048 + 4096;
  {
    Execution exec = compile_and_prepare(kernels::kNinePointCShift,
                                         CompilerOptions::level(4), mc, n);
    exec.set_array("U", [](int i, int j, int) { return u_init(i, j); });
    EXPECT_NO_THROW(exec.run(1));
  }
  {
    Compiler compiler;
    CompiledProgram compiled = compiler.compile(
        kernels::kNinePointCShift, CompilerOptions::xlhpf_like());
    Execution exec(std::move(compiled.program), mc);
    exec.prepare(Bindings{}.set("N", n));
    exec.set_array("U", [](int i, int j, int) { return u_init(i, j); });
    EXPECT_THROW(exec.run(1), simpi::OutOfMemory);
  }
}

TEST(Execution, ControlFlowIfTakesCorrectBranch) {
  const char* src =
      "INTEGER N, FLAG\n"
      "REAL U(N,N), T(N,N)\n"
      "IF (FLAG > 0) THEN\n"
      "  T = U + 1.0\n"
      "ELSE\n"
      "  T = U - 1.0\n"
      "ENDIF\n";
  for (double flag : {1.0, 0.0}) {
    Compiler compiler;
    CompilerOptions opts = CompilerOptions::level(4);
    opts.passes.offset.live_out = {"T"};
    CompiledProgram compiled = compiler.compile(src, opts);
    Execution exec(std::move(compiled.program), simpi::MachineConfig{});
    exec.prepare(Bindings{}.set("N", 4).set("FLAG", flag));
    exec.set_array("U", [](int i, int j, int) { return i * 10.0 + j; });
    exec.run(1);
    auto t = exec.get_array("T");
    double delta = flag > 0 ? 1.0 : -1.0;
    EXPECT_EQ(t[0], 11.0 + delta);
    EXPECT_EQ(t[5], 22.0 + delta);
  }
}

TEST(Execution, ScalarAssignmentFeedsKernels) {
  const char* src =
      "INTEGER N\n"
      "REAL ALPHA\n"
      "REAL U(N,N), T(N,N)\n"
      "ALPHA = 0.5\n"
      "T = ALPHA * U\n";
  Compiler compiler;
  CompilerOptions opts = CompilerOptions::level(4);
  opts.passes.offset.live_out = {"T"};
  CompiledProgram compiled = compiler.compile(src, opts);
  Execution exec(std::move(compiled.program), simpi::MachineConfig{});
  exec.prepare(Bindings{}.set("N", 4));
  exec.set_array("U", [](int, int, int) { return 8.0; });
  exec.run(1);
  EXPECT_EQ(exec.get_array("T")[0], 4.0);
}

TEST(Execution, EoShiftStencilMatchesReference) {
  const char* src =
      "INTEGER N\n"
      "REAL U(N,N), T(N,N)\n"
      "T = EOSHIFT(U,SHIFT=+1,BOUNDARY=0.0,DIM=1) + "
      "EOSHIFT(U,SHIFT=-1,BOUNDARY=0.0,DIM=1) + U\n";
  const int n = 8;
  for (int level : {0, 4}) {
    Compiler compiler;
    CompilerOptions opts = CompilerOptions::level(level);
    opts.passes.offset.live_out = {"T"};
    CompiledProgram compiled = compiler.compile(src, opts);
    simpi::MachineConfig mc;
    Execution exec(std::move(compiled.program), mc);
    exec.prepare(Bindings{}.set("N", n));
    exec.set_array("U", [](int i, int j, int) { return u_init(i, j); });
    exec.run(1);
    auto t = exec.get_array("T");
    for (int j = 1; j <= n; ++j) {
      for (int i = 1; i <= n; ++i) {
        double want = u_init(i, j) + (i + 1 <= n ? u_init(i + 1, j) : 0.0) +
                      (i - 1 >= 1 ? u_init(i - 1, j) : 0.0);
        ASSERT_NEAR(t[static_cast<std::size_t>(i - 1) +
                      static_cast<std::size_t>(j - 1) * n],
                    want, 1e-9)
            << "level " << level << " at " << i << "," << j;
      }
    }
  }
}

TEST(Execution, KernelTrafficDropsWithMemoryOpts) {
  // The Section 3.4 optimizations reduce subgrid-loop memory references
  // per element: 22 (15 loads + 7 stores) naive vs ~5.5 with scalar
  // replacement + unroll-and-jam.
  const int n = 16;
  std::uint64_t refs_o3 = 0;
  std::uint64_t refs_o4 = 0;
  for (int level : {3, 4}) {
    Execution exec = compile_and_prepare(kernels::kProblem9,
                                         CompilerOptions::level(level),
                                         simpi::MachineConfig{}, n);
    exec.set_array("U", [](int i, int j, int) { return u_init(i, j); });
    auto stats = exec.run(1);
    (level == 3 ? refs_o3 : refs_o4) = stats.machine.kernel_ref_bytes;
  }
  // O3: 22 refs/point; O4 (unroll 4 + SR): 22 refs per 4 points = 5.5.
  EXPECT_EQ(refs_o3, 22u * n * n * sizeof(double));
  EXPECT_LT(refs_o4, refs_o3 / 3);
}

TEST(Execution, ErrorsOnUnboundSizeParameter) {
  Compiler compiler;
  CompiledProgram compiled = compiler.compile(kernels::kProblem9);
  Execution exec(std::move(compiled.program), simpi::MachineConfig{});
  EXPECT_THROW(exec.prepare(Bindings{}), std::invalid_argument);
}

TEST(Execution, ErrorsOnUnknownArrayAndEliminatedArray) {
  Compiler compiler;
  CompilerOptions opts = CompilerOptions::level(4);
  opts.passes.offset.live_out = {"T"};
  CompiledProgram compiled = compiler.compile(kernels::kProblem9, opts);
  Execution exec(std::move(compiled.program), simpi::MachineConfig{});
  exec.prepare(Bindings{}.set("N", 8));
  EXPECT_THROW(exec.get_array("NOPE"), std::invalid_argument);
  // RIP was eliminated by the offset-array optimization.
  EXPECT_THROW(exec.get_array("RIP"), std::invalid_argument);
}

TEST(Execution, RunBeforePrepareThrows) {
  Compiler compiler;
  CompiledProgram compiled = compiler.compile(kernels::kProblem9);
  Execution exec(std::move(compiled.program), simpi::MachineConfig{});
  EXPECT_THROW(exec.run(1), std::logic_error);
}

}  // namespace
}  // namespace hpfsc

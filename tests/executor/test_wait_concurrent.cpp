// TSan-targeted concurrency coverage for the wait-state subsystem: all
// three kernel tiers executing simultaneously (each on its own machine,
// each machine itself a PE thread pool), all teeing wait histograms
// into one shared MetricsRegistry, with the flight recorder on so the
// wait.{recv,barrier,pool}_ns counter events race the ring buffers.
// Every run must still reconcile and the shared registry must end with
// exactly one sample per PE per category per run.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "driver/hpfsc.hpp"
#include "executor/wait_profile.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace hpfsc {
namespace {

TEST(WaitConcurrent, AllTiersRaceIntoOneRegistryAndReconcile) {
  constexpr int kRunsPerTier = 4;
  constexpr int kPes = 4;  // 2x2 default grid
  auto& rec = obs::FlightRecorder::instance();
  const bool was_enabled = rec.enabled();
  rec.set_enabled(true);

  obs::MetricsRegistry shared;
  obs::TraceSession session;  // disabled: only the metrics tee is live
  session.set_metrics(&shared);

  const KernelTier tiers[] = {KernelTier::InterpreterOnly, KernelTier::Auto,
                              KernelTier::Simd};
  std::vector<int> failures(3, 0);
  std::vector<std::thread> threads;
  threads.reserve(3);
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      Compiler compiler;
      CompilerOptions opts = CompilerOptions::level(3);
      opts.passes.offset.live_out = {"T"};
      CompiledProgram compiled =
          compiler.compile(kernels::kProblem9, opts);
      Execution exec(std::move(compiled.program), simpi::MachineConfig{});
      exec.set_kernel_tier(tiers[t]);
      Bindings b;
      b.set("N", 16);
      exec.prepare(b);
      exec.set_array("U", [](int i, int j, int) {
        return std::sin(i * 0.7) + 0.3 * j;
      });
      // Warm up (spawns the PE workers) before attaching the session so
      // the shared registry sees exactly kRunsPerTier runs.
      exec.run(1);
      exec.set_trace(&session);
      for (int run = 0; run < kRunsPerTier; ++run) {
        // Three machines (12 PE threads) oversubscribe the host, so
        // allow generous scheduling slack: this test is about races and
        // sample counts, the tight-tolerance books are closed by the
        // WaitProfileReconciliation suite.
        const WaitProfile p = WaitProfile::from_run(exec.run(1));
        if (!p.reconciled(0.100, 0.5)) ++failures[static_cast<std::size_t>(t)];
      }
    });
  }
  for (std::thread& th : threads) th.join();
  rec.set_enabled(was_enabled);

  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(failures[static_cast<std::size_t>(t)], 0)
        << "tier " << t << " had unreconciled runs";
  }
  // One sample per PE per run per category, from all three tiers.
  const std::size_t want = 3u * kRunsPerTier * kPes;
  EXPECT_EQ(shared.histogram("simpi.recv_wait_ms").count(), want);
  EXPECT_EQ(shared.histogram("simpi.barrier_wait_ms").count(), want);
  EXPECT_EQ(shared.histogram("simpi.pool_wait_ms").count(), want);
}

// A mid-run set_wait_timing flip from the host thread must not tear the
// accounting: pool_timed_ is latched per run, so every run either
// closes its books or records nothing.
TEST(WaitConcurrent, TimingToggleRacesRunsWithoutTearing) {
  Compiler compiler;
  CompilerOptions opts = CompilerOptions::level(2);
  opts.passes.offset.live_out = {"T"};
  CompiledProgram compiled = compiler.compile(kernels::kProblem9, opts);
  Execution exec(std::move(compiled.program), simpi::MachineConfig{});
  Bindings b;
  b.set("N", 16);
  exec.prepare(b);
  exec.set_array("U",
                 [](int i, int j, int) { return i * 0.25 + j * 0.5; });
  std::thread toggler([&] {
    for (int i = 0; i < 50; ++i) {
      exec.machine().set_wait_timing(i % 2 == 0);
      std::this_thread::yield();
    }
    exec.machine().set_wait_timing(true);
  });
  for (int run = 0; run < 10; ++run) {
    const WaitProfile p = WaitProfile::from_run(exec.run(1));
    // Either the run was timed (books close) or it recorded nothing
    // (no rows); a half-recorded run would fail reconciliation.
    if (!p.rows.empty()) {
      EXPECT_TRUE(p.reconciled()) << p.to_text();
    }
  }
  toggler.join();
}

}  // namespace
}  // namespace hpfsc

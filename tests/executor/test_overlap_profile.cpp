// Overlap regression (ISSUE 10 satellite): with the async comm backend
// the wait-state books must still close exactly — compute + recv +
// overlap + barrier + pool + overhead == wall per PE — and the
// exposed-communication fraction over the five-paper-kernel suite must
// drop versus the synchronous baseline.
//
// The fraction assertion runs under the emulated SP-2 cost model
// (MachineConfig::cost.emulate): the sender busy-waits for each
// message's modeled latency + size/bandwidth cost, which makes receive
// waits transfer-proportional instead of scheduler-skew-proportional
// and therefore something interior compute can actually hide.  It is
// asserted on the *aggregate* fraction (total exposed wait over total
// machine time across all five kernels): per-kernel wall-clock
// fractions on a loaded single-core ctest host swing by several points
// run to run, and kernels whose corner-carrying RSD shifts force an
// early drain (the 9-point family) can individually come out flat.
// The whole measurement retries up to three times, mirroring the
// profiler's own descheduling-spike policy.
#include "executor/wait_profile.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "driver/hpfsc.hpp"

namespace hpfsc {
namespace {

struct SuiteKernel {
  const char* name;
  const char* source;
  bool needs_coefficients = false;
  bool needs_nsteps = false;
};

std::vector<SuiteKernel> suite() {
  return {
      {"Problem9", kernels::kProblem9},
      {"NinePointCShift", kernels::kNinePointCShift},
      {"NinePointArraySyntax", kernels::kNinePointArraySyntax},
      {"FivePoint", kernels::kFivePointArraySyntax, true, false},
      {"Jacobi", kernels::kJacobiTimeLoop, false, true},
  };
}

Execution make_execution(const SuiteKernel& c, simpi::CommBackendKind backend,
                         int n, bool emulate_cost) {
  Compiler compiler;
  CompiledProgram compiled =
      compiler.compile(c.source, CompilerOptions::level(3));
  simpi::MachineConfig mc;
  mc.pe_rows = 4;
  mc.pe_cols = 2;
  mc.cost.emulate = emulate_cost;
  Execution exec(std::move(compiled.program), mc);
  exec.machine().set_comm_backend(backend);
  Bindings b;
  b.set("N", n);
  if (c.needs_coefficients) {
    b.set("C1", 0.1).set("C2", 0.2).set("C3", 0.4).set("C4", 0.2).set("C5",
                                                                      0.1);
  }
  if (c.needs_nsteps) b.set("NSTEPS", 2);
  exec.prepare(b);
  const char* input =
      std::string(c.source).find("SRC(N,N)") != std::string::npos ? "SRC"
                                                                  : "U";
  exec.set_array(input, [](int i, int j, int) {
    return std::sin(i * 0.7) + 0.3 * j;
  });
  return exec;
}

/// Exposed-communication time of one profiled run: inline receive waits
/// plus the async backend's unhidden wait_all time.
double exposed_seconds(const WaitProfile& p) {
  double s = 0.0;
  for (const WaitProfileRow& r : p.rows) s += r.recv_s + r.overlap_s;
  return s;
}

// Books must close under the async backend on every paper kernel, with
// the overlap column participating in the per-PE sum.  Deterministic —
// no cost emulation, no fraction comparison.
TEST(OverlapProfile, AsyncBackendReconcilesOnPaperKernels) {
  for (const SuiteKernel& c : suite()) {
    SCOPED_TRACE(c.name);
    Execution exec =
        make_execution(c, simpi::CommBackendKind::Async, 16, false);
    exec.run(1);  // spawn PE workers outside the profiled window
    WaitProfile p;
    for (int attempt = 0; attempt < 3; ++attempt) {
      p = WaitProfile::from_run(exec.run(1));
      if (p.reconciled()) break;
    }
    EXPECT_TRUE(p.reconciled()) << c.name << "\n" << p.to_text();
    ASSERT_EQ(p.rows.size(), 8u);
    for (const WaitProfileRow& r : p.rows) {
      const double sum = r.compute_s + r.recv_s + r.overlap_s + r.barrier_s +
                         r.pool_s + r.overhead_s;
      EXPECT_NEAR(sum, p.wall_seconds, 1e-6 + 1e-6 * p.wall_seconds)
          << c.name << " pe " << r.pe;
      EXPECT_GE(r.overlap_s, 0.0);
    }
  }
}

// Sanitizer instrumentation slows compute by 2-15x while the emulated
// message cost stays wall-clock, which shrinks the transfer the
// interior could hide and inverts the comparison's premise; the
// reconciliation test above still runs everywhere.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define HPFSC_SANITIZED 1
#endif
#endif
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define HPFSC_SANITIZED 1
#endif

TEST(OverlapProfile, ExposedCommFractionDropsVsSyncBaseline) {
#ifdef HPFSC_SANITIZED
  GTEST_SKIP() << "timing comparison is invalid under sanitizer slowdown";
#endif
  const int n = 128;
  const int steps = 3;
  double sync_fraction = 0.0;
  double async_fraction = 0.0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    double exposed[2] = {0.0, 0.0};
    double machine_time[2] = {0.0, 0.0};
    double overlap_total = 0.0;
    const simpi::CommBackendKind backends[2] = {simpi::CommBackendKind::Sync,
                                                simpi::CommBackendKind::Async};
    for (const SuiteKernel& c : suite()) {
      for (int b = 0; b < 2; ++b) {
        Execution exec = make_execution(c, backends[b], n, true);
        exec.run(1);
        WaitProfile p;
        for (int retry = 0; retry < 3; ++retry) {
          p = WaitProfile::from_run(exec.run(steps));
          if (p.reconciled()) break;
        }
        ASSERT_TRUE(p.reconciled())
            << c.name << (b ? " async" : " sync") << "\n" << p.to_text();
        exposed[b] += exposed_seconds(p);
        machine_time[b] +=
            static_cast<double>(p.rows.size()) * p.wall_seconds;
        if (b == 1) {
          for (const WaitProfileRow& r : p.rows) overlap_total += r.overlap_s;
        }
      }
    }
    // The async runs must actually have exercised the overlap path.
    EXPECT_GT(overlap_total, 0.0);
    sync_fraction = exposed[0] / machine_time[0];
    async_fraction = exposed[1] / machine_time[1];
    if (async_fraction < sync_fraction) break;
  }
  EXPECT_LT(async_fraction, sync_fraction)
      << "aggregate exposed-comm fraction did not drop under the async "
         "backend (sync "
      << sync_fraction << ", async " << async_fraction << ")";
}

}  // namespace
}  // namespace hpfsc

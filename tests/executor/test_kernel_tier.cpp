// Two-tier kernel execution: every program must produce bitwise
// identical array contents and identical MachineStats whether its loop
// nests run through the compiled microkernels (KernelTier::Auto) or the
// bytecode interpreter (KernelTier::InterpreterOnly).  The interpreter
// is the semantics oracle; the compiled tier is only allowed to be
// faster, never different.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "driver/hpfsc.hpp"

namespace hpfsc {
namespace {

struct TierKernelCase {
  const char* name;
  const char* source;
  std::vector<std::string> live_out;
  bool needs_coefficients = false;
  bool needs_nsteps = false;
};

std::vector<TierKernelCase> paper_kernel_cases() {
  return {
      {"FivePoint", kernels::kFivePointArraySyntax, {"DST"}, true, false},
      {"NinePointCShift", kernels::kNinePointCShift, {"T"}, false, false},
      {"Problem9", kernels::kProblem9, {"T"}, false, false},
      {"NinePointArraySyntax", kernels::kNinePointArraySyntax, {"T"}, false,
       false},
      {"Jacobi", kernels::kJacobiTimeLoop, {"U", "T"}, false, true},
  };
}

struct RunResult {
  std::vector<std::vector<double>> arrays;  // live_out order
  std::string machine_json;
  Execution::RunStats stats;
};

RunResult run_case(const TierKernelCase& c, int level, int n,
                   KernelTier tier) {
  CompilerOptions opts = level < 0 ? CompilerOptions::xlhpf_like()
                                   : CompilerOptions::level(level);
  opts.passes.offset.live_out = c.live_out;
  Compiler compiler;
  CompiledProgram compiled = compiler.compile(c.source, opts);
  Execution exec(std::move(compiled.program), simpi::MachineConfig{});
  exec.set_kernel_tier(tier);
  Bindings b;
  b.set("N", n);
  if (c.needs_coefficients) {
    b.set("C1", 0.1).set("C2", 0.2).set("C3", 0.4).set("C4", 0.2).set("C5",
                                                                      0.1);
  }
  if (c.needs_nsteps) b.set("NSTEPS", 3);
  exec.prepare(b);
  // The five-point kernel reads SRC; everything else reads U.
  const char* input =
      std::string(c.source).find("SRC(N,N)") != std::string::npos ? "SRC"
                                                                  : "U";
  exec.set_array(input, [](int i, int j, int) {
    return std::sin(i * 0.7) + 0.3 * j;
  });
  RunResult out;
  out.stats = exec.run(1);
  out.machine_json = out.stats.machine.to_json();
  for (const std::string& name : c.live_out) {
    out.arrays.push_back(exec.get_array(name));
  }
  return out;
}

struct TierCase {
  int kernel;  // index into paper_kernel_cases()
  int level;   // -1 = xlhpf_like
  int n;
};

class KernelTierEquivalence : public ::testing::TestWithParam<TierCase> {};

TEST_P(KernelTierEquivalence, CompiledTierIsBitwiseIdentical) {
  const TierCase& p = GetParam();
  const TierKernelCase c =
      paper_kernel_cases()[static_cast<std::size_t>(p.kernel)];
  SCOPED_TRACE(std::string(c.name) + " level=" + std::to_string(p.level) +
               " n=" + std::to_string(p.n));
  RunResult interp = run_case(c, p.level, p.n, KernelTier::InterpreterOnly);
  RunResult compiled = run_case(c, p.level, p.n, KernelTier::Auto);
  // Bitwise array equality across every live-out array.
  ASSERT_EQ(interp.arrays.size(), compiled.arrays.size());
  for (std::size_t a = 0; a < interp.arrays.size(); ++a) {
    ASSERT_EQ(interp.arrays[a].size(), compiled.arrays[a].size());
    for (std::size_t k = 0; k < interp.arrays[a].size(); ++k) {
      ASSERT_EQ(interp.arrays[a][k], compiled.arrays[a][k])
          << c.live_out[a] << "[" << k << "]";
    }
  }
  // Identical machine statistics: dispatch tier must not change the
  // modeled communication, copies, or kernel reference accounting.
  EXPECT_EQ(interp.machine_json, compiled.machine_json);
  // The interpreter run must not have touched the compiled tier.
  EXPECT_EQ(interp.stats.tier.compiled_elements, 0u);
  EXPECT_EQ(interp.stats.tier.compiled_plan_runs, 0u);
}

std::vector<TierCase> tier_cases() {
  std::vector<TierCase> cases;
  for (int kernel = 0; kernel < 5; ++kernel) {
    for (int level : {0, 2, 3, 4, -1}) {
      // 12: divisible by the unroll width; 13 and 17: epilogue plans
      // cover the remainder columns.
      for (int n : {12, 13, 17}) {
        cases.push_back(TierCase{kernel, level, n});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    PaperKernels, KernelTierEquivalence, ::testing::ValuesIn(tier_cases()),
    [](const ::testing::TestParamInfo<TierCase>& info) {
      const TierKernelCase c =
          paper_kernel_cases()[static_cast<std::size_t>(info.param.kernel)];
      const std::string level =
          info.param.level < 0 ? "xlhpf" : "O" + std::to_string(info.param.level);
      return std::string(c.name) + "_" + level + "_N" +
             std::to_string(info.param.n);
    });

TEST(KernelTier, CompiledTierHandlesAllNestsAtO4) {
  TierKernelCase c = paper_kernel_cases()[2];  // Problem9
  RunResult r = run_case(c, 4, 16, KernelTier::Auto);
  EXPECT_GT(r.stats.tier.compiled_elements, 0u);
  EXPECT_GT(r.stats.tier.compiled_plan_runs, 0u);
  EXPECT_EQ(r.stats.tier.interpreter_elements, 0u);
  EXPECT_EQ(r.stats.tier.interpreter_plan_runs, 0u);
  // Every interior element went through a microkernel exactly once.
  EXPECT_EQ(r.stats.tier.compiled_elements, 16u * 16u);
}

TEST(KernelTier, InterpreterOnlyDisablesCompiledTier) {
  TierKernelCase c = paper_kernel_cases()[2];
  RunResult r = run_case(c, 4, 16, KernelTier::InterpreterOnly);
  EXPECT_EQ(r.stats.tier.compiled_elements, 0u);
  EXPECT_GT(r.stats.tier.interpreter_elements, 0u);
}

TEST(KernelTier, UnclassifiablePlanFallsBackToInterpreter) {
  // Division by a shifted array is a shape the microkernels reject;
  // results must still be correct via the interpreter.
  const char* src =
      "INTEGER N\nREAL U(N,N), T(N,N)\n"
      "!HPF$ DISTRIBUTE U(BLOCK,BLOCK)\n"
      "!HPF$ DISTRIBUTE T(BLOCK,BLOCK)\n"
      "T = U / CSHIFT(U,+1,1)\n";
  CompilerOptions opts = CompilerOptions::level(4);
  opts.passes.offset.live_out = {"T"};
  Compiler compiler;
  CompiledProgram compiled = compiler.compile(src, opts);
  Execution exec(std::move(compiled.program), simpi::MachineConfig{});
  exec.prepare(Bindings{}.set("N", 8));
  exec.set_array("U",
                 [](int i, int j, int) { return 1.0 + 0.1 * i + 0.01 * j; });
  Execution::RunStats stats = exec.run(1);
  EXPECT_EQ(stats.tier.compiled_elements, 0u);
  EXPECT_GT(stats.tier.interpreter_elements, 0u);
  auto t = exec.get_array("T");
  auto u = [](int i, int j) { return 1.0 + 0.1 * i + 0.01 * j; };
  for (int j = 1; j <= 8; ++j) {
    for (int i = 1; i <= 8; ++i) {
      const int ip = i % 8 + 1;  // circular +1 in dim 1
      ASSERT_EQ(t[static_cast<std::size_t>(i - 1) +
                  static_cast<std::size_t>(j - 1) * 8],
                u(i, j) / u(ip, j))
          << i << "," << j;
    }
  }
}

TEST(KernelTier, EnvironmentVariableForcesInterpreter) {
  // The override is read at Execution construction time.
  ::setenv("HPFSC_KERNEL_TIER", "interpreter", 1);
  TierKernelCase c = paper_kernel_cases()[2];
  CompilerOptions opts = CompilerOptions::level(4);
  opts.passes.offset.live_out = {"T"};
  Compiler compiler;
  CompiledProgram compiled = compiler.compile(c.source, opts);
  Execution exec(std::move(compiled.program), simpi::MachineConfig{});
  ::unsetenv("HPFSC_KERNEL_TIER");
  exec.prepare(Bindings{}.set("N", 16));
  exec.set_array("U", [](int i, int j, int) { return i + 0.5 * j; });
  Execution::RunStats stats = exec.run(1);
  EXPECT_EQ(stats.tier.compiled_elements, 0u);
  EXPECT_GT(stats.tier.interpreter_elements, 0u);
}

}  // namespace
}  // namespace hpfsc

// Kernel-tier execution: every program must produce bitwise identical
// array contents and identical MachineStats whether its loop nests run
// through the compiled microkernels (KernelTier::Auto), the vectorized
// cache-blocked tier (KernelTier::Simd), or the bytecode interpreter
// (KernelTier::InterpreterOnly).  The interpreter is the semantics
// oracle; the other tiers are only allowed to be faster, never
// different.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "driver/hpfsc.hpp"

namespace hpfsc {
namespace {

struct TierKernelCase {
  const char* name;
  const char* source;
  std::vector<std::string> live_out;
  bool needs_coefficients = false;
  bool needs_nsteps = false;
};

std::vector<TierKernelCase> paper_kernel_cases() {
  return {
      {"FivePoint", kernels::kFivePointArraySyntax, {"DST"}, true, false},
      {"NinePointCShift", kernels::kNinePointCShift, {"T"}, false, false},
      {"Problem9", kernels::kProblem9, {"T"}, false, false},
      {"NinePointArraySyntax", kernels::kNinePointArraySyntax, {"T"}, false,
       false},
      {"Jacobi", kernels::kJacobiTimeLoop, {"U", "T"}, false, true},
  };
}

struct RunResult {
  std::vector<std::vector<double>> arrays;  // live_out order
  std::string machine_json;
  Execution::RunStats stats;
};

RunResult run_case(const TierKernelCase& c, int level, int n,
                   KernelTier tier, int block_i = 0, int block_j = 0) {
  CompilerOptions opts = level < 0 ? CompilerOptions::xlhpf_like()
                                   : CompilerOptions::level(level);
  opts.passes.offset.live_out = c.live_out;
  Compiler compiler;
  CompiledProgram compiled = compiler.compile(c.source, opts);
  Execution exec(std::move(compiled.program), simpi::MachineConfig{});
  exec.set_kernel_tier(tier);
  // The machine JSONs are compared bitwise below; wait-state buckets
  // are wall-clock-derived and would differ between the two runs.
  exec.machine().set_wait_timing(false);
  if (block_i > 0 && block_j > 0) exec.set_block_size(block_i, block_j);
  Bindings b;
  b.set("N", n);
  if (c.needs_coefficients) {
    b.set("C1", 0.1).set("C2", 0.2).set("C3", 0.4).set("C4", 0.2).set("C5",
                                                                      0.1);
  }
  if (c.needs_nsteps) b.set("NSTEPS", 3);
  exec.prepare(b);
  // The five-point kernel reads SRC; everything else reads U.
  const char* input =
      std::string(c.source).find("SRC(N,N)") != std::string::npos ? "SRC"
                                                                  : "U";
  exec.set_array(input, [](int i, int j, int) {
    return std::sin(i * 0.7) + 0.3 * j;
  });
  RunResult out;
  out.stats = exec.run(1);
  out.machine_json = out.stats.machine.to_json();
  for (const std::string& name : c.live_out) {
    out.arrays.push_back(exec.get_array(name));
  }
  return out;
}

struct TierCase {
  int kernel;  // index into paper_kernel_cases()
  int level;   // -1 = xlhpf_like
  int n;
};

class KernelTierEquivalence : public ::testing::TestWithParam<TierCase> {};

void expect_same_results(const TierKernelCase& c, const RunResult& interp,
                         const RunResult& other, const char* label) {
  SCOPED_TRACE(label);
  // Bitwise array equality across every live-out array.
  ASSERT_EQ(interp.arrays.size(), other.arrays.size());
  for (std::size_t a = 0; a < interp.arrays.size(); ++a) {
    ASSERT_EQ(interp.arrays[a].size(), other.arrays[a].size());
    for (std::size_t k = 0; k < interp.arrays[a].size(); ++k) {
      ASSERT_EQ(interp.arrays[a][k], other.arrays[a][k])
          << c.live_out[a] << "[" << k << "]";
    }
  }
  // Identical machine statistics: dispatch tier must not change the
  // modeled communication, copies, or kernel reference accounting.
  EXPECT_EQ(interp.machine_json, other.machine_json);
}

TEST_P(KernelTierEquivalence, CompiledTierIsBitwiseIdentical) {
  const TierCase& p = GetParam();
  const TierKernelCase c =
      paper_kernel_cases()[static_cast<std::size_t>(p.kernel)];
  SCOPED_TRACE(std::string(c.name) + " level=" + std::to_string(p.level) +
               " n=" + std::to_string(p.n));
  RunResult interp = run_case(c, p.level, p.n, KernelTier::InterpreterOnly);
  RunResult compiled = run_case(c, p.level, p.n, KernelTier::Auto);
  expect_same_results(c, interp, compiled, "compiled");
  // The interpreter run must not have touched the other tiers.
  EXPECT_EQ(interp.stats.tier.compiled_elements, 0u);
  EXPECT_EQ(interp.stats.tier.compiled_plan_runs, 0u);
  EXPECT_EQ(interp.stats.tier.simd_elements, 0u);
  EXPECT_EQ(interp.stats.tier.simd_plan_runs, 0u);
}

TEST_P(KernelTierEquivalence, SimdTierIsBitwiseIdentical) {
  const TierCase& p = GetParam();
  const TierKernelCase c =
      paper_kernel_cases()[static_cast<std::size_t>(p.kernel)];
  SCOPED_TRACE(std::string(c.name) + " level=" + std::to_string(p.level) +
               " n=" + std::to_string(p.n));
  RunResult interp = run_case(c, p.level, p.n, KernelTier::InterpreterOnly);
  RunResult simd = run_case(c, p.level, p.n, KernelTier::Simd);
  expect_same_results(c, interp, simd, "simd");
  // Auto must never dispatch to the SIMD kernels.
  RunResult compiled = run_case(c, p.level, p.n, KernelTier::Auto);
  EXPECT_EQ(compiled.stats.tier.simd_elements, 0u);
}

TEST_P(KernelTierEquivalence, SimdTierBlockedTraversalIsBitwiseIdentical) {
  const TierCase& p = GetParam();
  const TierKernelCase c =
      paper_kernel_cases()[static_cast<std::size_t>(p.kernel)];
  SCOPED_TRACE(std::string(c.name) + " level=" + std::to_string(p.level) +
               " n=" + std::to_string(p.n));
  RunResult interp = run_case(c, p.level, p.n, KernelTier::InterpreterOnly);
  // Tiny odd block sizes that never divide the N in play: every nest
  // gets partial blocks on both edges, and the outer size is forced
  // through the round-down-to-width alignment path.
  RunResult blocked = run_case(c, p.level, p.n, KernelTier::Simd, 5, 3);
  expect_same_results(c, interp, blocked, "simd blocked 5x3");
}

std::vector<TierCase> tier_cases() {
  std::vector<TierCase> cases;
  for (int kernel = 0; kernel < 5; ++kernel) {
    for (int level : {0, 2, 3, 4, -1}) {
      // 12: divisible by the unroll width; 13 and 17: epilogue plans
      // cover the remainder columns.
      for (int n : {12, 13, 17}) {
        cases.push_back(TierCase{kernel, level, n});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    PaperKernels, KernelTierEquivalence, ::testing::ValuesIn(tier_cases()),
    [](const ::testing::TestParamInfo<TierCase>& info) {
      const TierKernelCase c =
          paper_kernel_cases()[static_cast<std::size_t>(info.param.kernel)];
      const std::string level =
          info.param.level < 0 ? "xlhpf" : "O" + std::to_string(info.param.level);
      return std::string(c.name) + "_" + level + "_N" +
             std::to_string(info.param.n);
    });

TEST(KernelTier, CompiledTierHandlesAllNestsAtO4) {
  TierKernelCase c = paper_kernel_cases()[2];  // Problem9
  RunResult r = run_case(c, 4, 16, KernelTier::Auto);
  EXPECT_GT(r.stats.tier.compiled_elements, 0u);
  EXPECT_GT(r.stats.tier.compiled_plan_runs, 0u);
  EXPECT_EQ(r.stats.tier.interpreter_elements, 0u);
  EXPECT_EQ(r.stats.tier.interpreter_plan_runs, 0u);
  // Every interior element went through a microkernel exactly once.
  EXPECT_EQ(r.stats.tier.compiled_elements, 16u * 16u);
}

TEST(KernelTier, InterpreterOnlyDisablesCompiledTier) {
  TierKernelCase c = paper_kernel_cases()[2];
  RunResult r = run_case(c, 4, 16, KernelTier::InterpreterOnly);
  EXPECT_EQ(r.stats.tier.compiled_elements, 0u);
  EXPECT_GT(r.stats.tier.interpreter_elements, 0u);
}

TEST(KernelTier, UnclassifiablePlanFallsBackToInterpreter) {
  // Division by a shifted array is a shape the microkernels reject;
  // results must still be correct via the interpreter.
  const char* src =
      "INTEGER N\nREAL U(N,N), T(N,N)\n"
      "!HPF$ DISTRIBUTE U(BLOCK,BLOCK)\n"
      "!HPF$ DISTRIBUTE T(BLOCK,BLOCK)\n"
      "T = U / CSHIFT(U,+1,1)\n";
  CompilerOptions opts = CompilerOptions::level(4);
  opts.passes.offset.live_out = {"T"};
  Compiler compiler;
  CompiledProgram compiled = compiler.compile(src, opts);
  Execution exec(std::move(compiled.program), simpi::MachineConfig{});
  exec.prepare(Bindings{}.set("N", 8));
  exec.set_array("U",
                 [](int i, int j, int) { return 1.0 + 0.1 * i + 0.01 * j; });
  Execution::RunStats stats = exec.run(1);
  EXPECT_EQ(stats.tier.compiled_elements, 0u);
  EXPECT_GT(stats.tier.interpreter_elements, 0u);
  auto t = exec.get_array("T");
  auto u = [](int i, int j) { return 1.0 + 0.1 * i + 0.01 * j; };
  for (int j = 1; j <= 8; ++j) {
    for (int i = 1; i <= 8; ++i) {
      const int ip = i % 8 + 1;  // circular +1 in dim 1
      ASSERT_EQ(t[static_cast<std::size_t>(i - 1) +
                  static_cast<std::size_t>(j - 1) * 8],
                u(i, j) / u(ip, j))
          << i << "," << j;
    }
  }
}

TEST(KernelTier, SimdTierHandlesAllNestsAtO4) {
  TierKernelCase c = paper_kernel_cases()[2];  // Problem9
  RunResult r = run_case(c, 4, 16, KernelTier::Simd);
  EXPECT_GT(r.stats.tier.simd_elements, 0u);
  EXPECT_GT(r.stats.tier.simd_plan_runs, 0u);
  EXPECT_EQ(r.stats.tier.interpreter_elements, 0u);
  EXPECT_EQ(r.stats.tier.compiled_elements, 0u);
  // Every interior element went through a SIMD kernel exactly once.
  EXPECT_EQ(r.stats.tier.simd_elements, 16u * 16u);
}

std::pair<std::vector<double>, Execution::RunStats> run_simple(
    const char* src, KernelTier tier, int n) {
  CompilerOptions opts = CompilerOptions::level(4);
  opts.passes.offset.live_out = {"T"};
  Compiler compiler;
  CompiledProgram compiled = compiler.compile(src, opts);
  Execution exec(std::move(compiled.program), simpi::MachineConfig{});
  exec.set_kernel_tier(tier);
  exec.prepare(Bindings{}.set("N", n));
  exec.set_array("U", [](int i, int j, int) { return 0.5 * i - 0.25 * j; });
  Execution::RunStats stats = exec.run(1);
  return {exec.get_array("T"), stats};
}

TEST(KernelTier, SimdTierFallsBackPerPlanOnPureScalarTerm) {
  // T = U + 2.0 classifies, but the constant term has no pointer to
  // vectorize over: the SIMD dispatcher must decline this one plan and
  // route it through the compiled generic kernel (per-plan fallback,
  // not a process-wide tier change), bitwise-identical to the oracle.
  const char* src =
      "INTEGER N\nREAL U(N,N), T(N,N)\n"
      "!HPF$ DISTRIBUTE U(BLOCK,BLOCK)\n"
      "!HPF$ DISTRIBUTE T(BLOCK,BLOCK)\n"
      "T = U + 2.0\n";
  auto [t_interp, s_interp] = run_simple(src, KernelTier::InterpreterOnly, 9);
  auto [t_simd, s_simd] = run_simple(src, KernelTier::Simd, 9);
  ASSERT_EQ(t_interp.size(), t_simd.size());
  for (std::size_t k = 0; k < t_interp.size(); ++k) {
    ASSERT_EQ(t_interp[k], t_simd[k]) << "T[" << k << "]";
  }
  EXPECT_GT(s_interp.tier.interpreter_elements, 0u);
  EXPECT_EQ(s_simd.tier.simd_elements, 0u);
  EXPECT_GT(s_simd.tier.compiled_elements, 0u);
}

TEST(KernelTier, SimdTierMatchesOracleOnAliasedPlan) {
  // T reads and writes itself through a shift; whether the optimizer
  // leaves the alias in place or breaks it with a temporary, the SIMD
  // tier must stay bitwise-identical to the interpreter (aliased plans
  // are declined per-plan by the restrict-qualified kernels).
  const char* src =
      "INTEGER N\nREAL U(N,N), T(N,N)\n"
      "!HPF$ DISTRIBUTE U(BLOCK,BLOCK)\n"
      "!HPF$ DISTRIBUTE T(BLOCK,BLOCK)\n"
      "T = U\n"
      "T = T + CSHIFT(T,+1,1)\n";
  auto [t_interp, s_interp] = run_simple(src, KernelTier::InterpreterOnly, 11);
  auto [t_simd, s_simd] = run_simple(src, KernelTier::Simd, 11);
  (void)s_interp;
  (void)s_simd;
  ASSERT_EQ(t_interp.size(), t_simd.size());
  for (std::size_t k = 0; k < t_interp.size(); ++k) {
    ASSERT_EQ(t_interp[k], t_simd[k]) << "T[" << k << "]";
  }
}

TEST(KernelTier, ScaledSumRunsCompiledAndMatchesOracle) {
  // A Jacobi-style whole-sum scale: the 0.25 factor is loop-invariant
  // and must be carried on the store (applied after the left-assoc sum)
  // so the compiled and SIMD tiers reproduce the interpreter's trailing
  // multiply bitwise.
  const char* src =
      "INTEGER N\nREAL U(N,N), T(N,N)\n"
      "!HPF$ DISTRIBUTE U(BLOCK,BLOCK)\n"
      "!HPF$ DISTRIBUTE T(BLOCK,BLOCK)\n"
      "T = 0.25 * (CSHIFT(U,-1,1) + CSHIFT(U,+1,1) + CSHIFT(U,-1,2) + "
      "CSHIFT(U,+1,2))\n";
  auto [t_interp, s_interp] = run_simple(src, KernelTier::InterpreterOnly, 13);
  auto [t_auto, s_auto] = run_simple(src, KernelTier::Auto, 13);
  auto [t_simd, s_simd] = run_simple(src, KernelTier::Simd, 13);
  ASSERT_EQ(t_interp.size(), t_auto.size());
  ASSERT_EQ(t_interp.size(), t_simd.size());
  for (std::size_t k = 0; k < t_interp.size(); ++k) {
    ASSERT_EQ(t_interp[k], t_auto[k]) << "auto T[" << k << "]";
    ASSERT_EQ(t_interp[k], t_simd[k]) << "simd T[" << k << "]";
  }
  // The scaled store must actually classify: no interpreter drain in
  // the upper tiers.
  EXPECT_EQ(s_auto.tier.interpreter_elements, 0u);
  EXPECT_GT(s_auto.tier.compiled_elements, 0u);
  EXPECT_EQ(s_simd.tier.interpreter_elements, 0u);
  EXPECT_GT(s_simd.tier.simd_elements, 0u);
  (void)s_interp;
}

TEST(KernelTier, EnvironmentVariableSelectsSimd) {
  ::setenv("HPFSC_KERNEL_TIER", "simd", 1);
  TierKernelCase c = paper_kernel_cases()[2];
  CompilerOptions opts = CompilerOptions::level(4);
  opts.passes.offset.live_out = {"T"};
  Compiler compiler;
  CompiledProgram compiled = compiler.compile(c.source, opts);
  Execution exec(std::move(compiled.program), simpi::MachineConfig{});
  ::unsetenv("HPFSC_KERNEL_TIER");
  EXPECT_EQ(exec.kernel_tier(), KernelTier::Simd);
  exec.prepare(Bindings{}.set("N", 16));
  exec.set_array("U", [](int i, int j, int) { return i + 0.5 * j; });
  Execution::RunStats stats = exec.run(1);
  EXPECT_GT(stats.tier.simd_elements, 0u);
}

TEST(KernelTier, EnvironmentVariableRejectsUnknownTier) {
  // A typo used to silently run the default tier; it must be loud now.
  ::setenv("HPFSC_KERNEL_TIER", "interpretor", 1);
  TierKernelCase c = paper_kernel_cases()[2];
  CompilerOptions opts = CompilerOptions::level(4);
  opts.passes.offset.live_out = {"T"};
  Compiler compiler;
  CompiledProgram compiled = compiler.compile(c.source, opts);
  EXPECT_THROW(Execution(std::move(compiled.program), simpi::MachineConfig{}),
               std::invalid_argument);
  ::unsetenv("HPFSC_KERNEL_TIER");
}

TEST(KernelTier, BlockEnvironmentVariableParsesAndValidates) {
  TierKernelCase c = paper_kernel_cases()[2];
  CompilerOptions opts = CompilerOptions::level(4);
  opts.passes.offset.live_out = {"T"};
  Compiler compiler;
  {
    ::setenv("HPFSC_BLOCK", "48x64", 1);
    CompiledProgram compiled = compiler.compile(c.source, opts);
    Execution exec(std::move(compiled.program), simpi::MachineConfig{});
    EXPECT_EQ(exec.block_i(), 48);
    EXPECT_EQ(exec.block_j(), 64);
  }
  for (const char* bad : {"48", "48x", "x64", "0x64", "48x-1", "48x64x2",
                          "abc"}) {
    ::setenv("HPFSC_BLOCK", bad, 1);
    CompiledProgram compiled = compiler.compile(c.source, opts);
    EXPECT_THROW(
        Execution(std::move(compiled.program), simpi::MachineConfig{}),
        std::invalid_argument)
        << "HPFSC_BLOCK=" << bad;
  }
  ::unsetenv("HPFSC_BLOCK");
}

TEST(KernelTier, EnvironmentVariableForcesInterpreter) {
  // The override is read at Execution construction time.
  ::setenv("HPFSC_KERNEL_TIER", "interpreter", 1);
  TierKernelCase c = paper_kernel_cases()[2];
  CompilerOptions opts = CompilerOptions::level(4);
  opts.passes.offset.live_out = {"T"};
  Compiler compiler;
  CompiledProgram compiled = compiler.compile(c.source, opts);
  Execution exec(std::move(compiled.program), simpi::MachineConfig{});
  ::unsetenv("HPFSC_KERNEL_TIER");
  exec.prepare(Bindings{}.set("N", 16));
  exec.set_array("U", [](int i, int j, int) { return i + 0.5 * j; });
  Execution::RunStats stats = exec.run(1);
  EXPECT_EQ(stats.tier.compiled_elements, 0u);
  EXPECT_GT(stats.tier.interpreter_elements, 0u);
}

}  // namespace
}  // namespace hpfsc

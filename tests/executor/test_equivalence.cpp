// Property-based equivalence: randomly generated stencil programs must
// produce bitwise-identical results at every optimization level (the
// pipeline preserves evaluation order, so even floating-point rounding
// must match), across machine shapes, and the optimized communication
// must stay within one message per direction per dimension per array.
#include <gtest/gtest.h>

#include <random>
#include <set>
#include <sstream>

#include "driver/hpfsc.hpp"

namespace hpfsc {
namespace {

/// Deterministic pseudo-random stencil program generator.
struct GeneratedStencil {
  std::string source;
  int num_statements = 0;
};

GeneratedStencil generate(std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> shift_dist(-2, 2);
  std::uniform_int_distribution<int> dim_dist(1, 2);
  std::uniform_int_distribution<int> stmt_count(1, 4);
  std::uniform_int_distribution<int> term_count(1, 3);
  std::uniform_real_distribution<double> coef(-2.0, 2.0);

  GeneratedStencil out;
  std::ostringstream src;
  src << "INTEGER N\nREAL U(N,N), T(N,N)\n"
      << "!HPF$ DISTRIBUTE U(BLOCK,BLOCK)\n"
      << "!HPF$ DISTRIBUTE T(BLOCK,BLOCK)\n";
  const int stmts = stmt_count(rng);
  out.num_statements = stmts;
  for (int s = 0; s < stmts; ++s) {
    src << "T = ";
    if (s > 0) src << "T + ";
    const int terms = term_count(rng);
    for (int t = 0; t < terms; ++t) {
      if (t > 0) src << " + ";
      src << coef(rng) << " * ";
      const int shift = shift_dist(rng);
      if (shift == 0) {
        src << "U";
      } else {
        src << "CSHIFT(U," << (shift > 0 ? "+" : "") << shift << ","
            << dim_dist(rng) << ")";
      }
    }
    src << "\n";
  }
  out.source = src.str();
  return out;
}

class RandomStencilEquivalence
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RandomStencilEquivalence, AllLevelsProduceIdenticalResults) {
  GeneratedStencil gen = generate(GetParam());
  SCOPED_TRACE(gen.source);
  const int n = 12;
  std::vector<double> reference;
  for (int level = 0; level <= 4; ++level) {
    CompilerOptions opts = CompilerOptions::level(level);
    opts.passes.offset.live_out = {"T"};
    Compiler compiler;
    CompiledProgram compiled = compiler.compile(gen.source, opts);
    Execution exec(std::move(compiled.program), simpi::MachineConfig{});
    exec.prepare(Bindings{}.set("N", n));
    exec.set_array("U", [](int i, int j, int) {
      return 1.0 / (i + 2 * j) + i * 0.01;
    });
    exec.run(1);
    auto t = exec.get_array("T");
    if (level == 0) {
      reference = t;
    } else {
      // Bitwise equality: evaluation order is preserved end to end.
      ASSERT_EQ(t, reference) << "level " << level;
    }
  }
}

TEST_P(RandomStencilEquivalence, MachineShapeDoesNotChangeResults) {
  GeneratedStencil gen = generate(GetParam() + 1000);
  SCOPED_TRACE(gen.source);
  const int n = 12;
  std::vector<double> reference;
  for (auto [rows, cols] : {std::pair{1, 1}, {2, 2}, {4, 1}, {1, 4}, {2, 3}}) {
    CompilerOptions opts = CompilerOptions::level(4);
    opts.passes.offset.live_out = {"T"};
    Compiler compiler;
    CompiledProgram compiled = compiler.compile(gen.source, opts);
    simpi::MachineConfig mc;
    mc.pe_rows = rows;
    mc.pe_cols = cols;
    Execution exec(std::move(compiled.program), mc);
    exec.prepare(Bindings{}.set("N", n));
    exec.set_array("U", [](int i, int j, int) {
      return 1.0 / (i + 2 * j) + i * 0.01;
    });
    exec.run(1);
    auto t = exec.get_array("T");
    if (reference.empty()) {
      reference = t;
    } else {
      ASSERT_EQ(t, reference) << rows << "x" << cols;
    }
  }
}

TEST_P(RandomStencilEquivalence, UnionedCommunicationIsMinimal) {
  GeneratedStencil gen = generate(GetParam() + 2000);
  SCOPED_TRACE(gen.source);
  CompilerOptions opts = CompilerOptions::level(4);
  opts.passes.offset.live_out = {"T"};
  Compiler compiler;
  CompiledProgram compiled = compiler.compile(gen.source, opts);
  // At most one overlap shift per (dimension, direction): <= 4 for 2-D.
  auto summary = compiled.program.comm_summary();
  EXPECT_LE(summary.overlap_shifts, 4);
  // No duplicated (dim, direction) pairs among top-level overlap ops.
  std::set<std::pair<int, int>> seen;
  for (const spmd::Op& op : compiled.program.ops) {
    if (op.kind != spmd::OpKind::OverlapShift) continue;
    auto key = std::make_pair(op.dim, op.shift > 0 ? 1 : -1);
    EXPECT_TRUE(seen.insert(key).second)
        << "duplicate overlap shift dim=" << op.dim
        << " shift=" << op.shift;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStencilEquivalence,
                         ::testing::Range(0u, 20u));

}  // namespace
}  // namespace hpfsc

#include "frontend/lexer.hpp"

#include <gtest/gtest.h>

namespace hpfsc::frontend {
namespace {

std::vector<Token> lex(std::string_view src) {
  DiagnosticEngine diags;
  Lexer lexer(src, diags);
  auto toks = lexer.tokenize();
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  return toks;
}

std::vector<TokenKind> kinds(const std::vector<Token>& toks) {
  std::vector<TokenKind> out;
  out.reserve(toks.size());
  for (const Token& t : toks) out.push_back(t.kind);
  return out;
}

TEST(Lexer, SimpleAssignment) {
  auto toks = lex("T = U + 1");
  ASSERT_EQ(toks.size(), 7u);  // 5 tokens + synthesized Newline + EOF
  EXPECT_EQ(toks[0].kind, TokenKind::Ident);
  EXPECT_EQ(toks[0].text, "T");
  EXPECT_EQ(toks[1].kind, TokenKind::Assign);
  EXPECT_EQ(toks[2].text, "U");
  EXPECT_EQ(toks[3].kind, TokenKind::Plus);
  EXPECT_EQ(toks[4].kind, TokenKind::IntLit);
  EXPECT_EQ(toks[4].number, 1.0);
  EXPECT_EQ(toks[5].kind, TokenKind::Newline);
  // tokenize() appends EOF after the trailing newline.
}

TEST(Lexer, IdentifiersAreUpperCased) {
  auto toks = lex("cshift(src, shift=-1, dim=1)");
  EXPECT_EQ(toks[0].text, "CSHIFT");
  EXPECT_EQ(toks[2].text, "SRC");
  EXPECT_EQ(toks[4].text, "SHIFT");
}

TEST(Lexer, NumbersIntAndReal) {
  auto toks = lex("2 2.5 .25 1E-3 1.5D2 3e2");
  EXPECT_EQ(toks[0].kind, TokenKind::IntLit);
  EXPECT_EQ(toks[1].kind, TokenKind::RealLit);
  EXPECT_EQ(toks[1].number, 2.5);
  EXPECT_EQ(toks[2].kind, TokenKind::RealLit);
  EXPECT_EQ(toks[2].number, 0.25);
  EXPECT_EQ(toks[3].kind, TokenKind::RealLit);
  EXPECT_EQ(toks[3].number, 1e-3);
  EXPECT_EQ(toks[4].kind, TokenKind::RealLit);
  EXPECT_EQ(toks[4].number, 150.0);
  EXPECT_EQ(toks[5].kind, TokenKind::RealLit);
  EXPECT_EQ(toks[5].number, 300.0);
}

TEST(Lexer, ContinuationSplicesLines) {
  auto toks = lex("T = A &\n  + B\nX = 1\n");
  // No Newline between A and +.
  std::vector<TokenKind> expect{
      TokenKind::Ident, TokenKind::Assign, TokenKind::Ident, TokenKind::Plus,
      TokenKind::Ident, TokenKind::Newline,
      TokenKind::Ident, TokenKind::Assign, TokenKind::IntLit,
      TokenKind::Newline, TokenKind::EndOfFile};
  EXPECT_EQ(kinds(toks), expect);
}

TEST(Lexer, LeadingAmpersandOnContinuationLine) {
  auto toks = lex("T = A &\n& + B\n");
  std::vector<TokenKind> expect{
      TokenKind::Ident, TokenKind::Assign, TokenKind::Ident, TokenKind::Plus,
      TokenKind::Ident, TokenKind::Newline, TokenKind::EndOfFile};
  EXPECT_EQ(kinds(toks), expect);
}

TEST(Lexer, CommentsAreSkipped) {
  auto toks = lex("T = A  ! trailing comment\n! whole-line comment\nX = 1\n");
  std::vector<TokenKind> expect{
      TokenKind::Ident, TokenKind::Assign, TokenKind::Ident,
      TokenKind::Newline,
      TokenKind::Ident, TokenKind::Assign, TokenKind::IntLit,
      TokenKind::Newline, TokenKind::EndOfFile};
  EXPECT_EQ(kinds(toks), expect);
}

TEST(Lexer, HpfDirectiveBecomesToken) {
  auto toks = lex("!HPF$ DISTRIBUTE U(BLOCK,BLOCK)\nT = U\n");
  ASSERT_EQ(toks[0].kind, TokenKind::Directive);
  EXPECT_EQ(toks[0].text, " DISTRIBUTE U(BLOCK,BLOCK)");
  EXPECT_EQ(toks[1].kind, TokenKind::Ident);
}

TEST(Lexer, DirectiveIsCaseInsensitive) {
  auto toks = lex("!hpf$ distribute u(block,block)\n");
  ASSERT_EQ(toks[0].kind, TokenKind::Directive);
  EXPECT_EQ(toks[0].text, " DISTRIBUTE U(BLOCK,BLOCK)");
}

TEST(Lexer, RelationalOperators) {
  auto toks = lex("a < b <= c > d >= e == f /= g");
  EXPECT_EQ(toks[1].kind, TokenKind::Lt);
  EXPECT_EQ(toks[3].kind, TokenKind::Le);
  EXPECT_EQ(toks[5].kind, TokenKind::Gt);
  EXPECT_EQ(toks[7].kind, TokenKind::Ge);
  EXPECT_EQ(toks[9].kind, TokenKind::EqEq);
  EXPECT_EQ(toks[11].kind, TokenKind::Ne);
}

TEST(Lexer, DottedOperators) {
  auto toks = lex("a .GT. b .le. c .EQ. d");
  EXPECT_EQ(toks[1].kind, TokenKind::Gt);
  EXPECT_EQ(toks[3].kind, TokenKind::Le);
  EXPECT_EQ(toks[5].kind, TokenKind::EqEq);
}

TEST(Lexer, DottedLogicalLiterals) {
  auto toks = lex("x = .TRUE.\ny = .FALSE.\n");
  EXPECT_EQ(toks[2].kind, TokenKind::IntLit);
  EXPECT_EQ(toks[2].number, 1.0);
  EXPECT_EQ(toks[6].number, 0.0);
}

TEST(Lexer, ColonAndDoubleColon) {
  auto toks = lex("REAL :: A(2:3)");
  EXPECT_EQ(toks[1].kind, TokenKind::DoubleColon);
  EXPECT_EQ(toks[4].kind, TokenKind::IntLit);
  EXPECT_EQ(toks[5].kind, TokenKind::Colon);
}

TEST(Lexer, SlashVersusNotEqual) {
  auto toks = lex("a / b /= c");
  EXPECT_EQ(toks[1].kind, TokenKind::Slash);
  EXPECT_EQ(toks[3].kind, TokenKind::Ne);
}

TEST(Lexer, ReportsUnexpectedCharacter) {
  DiagnosticEngine diags;
  Lexer lexer("a = b # c", diags);
  (void)lexer.tokenize();
  EXPECT_TRUE(diags.has_errors());
  EXPECT_NE(diags.render_all().find("unexpected character"),
            std::string::npos);
}

TEST(Lexer, EmptyInputYieldsEof) {
  auto toks = lex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokenKind::EndOfFile);
}

TEST(Lexer, TracksLineNumbers) {
  auto toks = lex("a = 1\nb = 2\n");
  EXPECT_EQ(toks[0].loc.line, 1u);
  EXPECT_EQ(toks[4].loc.line, 2u);
}

}  // namespace
}  // namespace hpfsc::frontend

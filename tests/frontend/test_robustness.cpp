// Robustness: the frontend must never crash — random garbage, truncated
// programs, deeply nested expressions, and adversarial token sequences
// must produce diagnostics, not undefined behavior.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "frontend/lower.hpp"

namespace hpfsc::frontend {
namespace {

void expect_survives(const std::string& src) {
  DiagnosticEngine diags;
  (void)lower_source(src, diags);  // must not crash or hang
}

TEST(Robustness, RandomPrintableGarbage) {
  std::mt19937 rng(42);
  std::uniform_int_distribution<int> len(0, 200);
  std::uniform_int_distribution<int> chr(32, 126);
  for (int round = 0; round < 200; ++round) {
    std::string src;
    const int length = len(rng);
    for (int i = 0; i < length; ++i) {
      src.push_back(static_cast<char>(chr(rng)));
      if (i % 37 == 36) src.push_back('\n');
    }
    expect_survives(src);
  }
}

TEST(Robustness, RandomTokenSoup) {
  const char* tokens[] = {"REAL",  "INTEGER", "CSHIFT", "DO",    "IF",
                          "THEN",  "ENDIF",   "ENDDO",  "(",     ")",
                          ",",     ":",       "::",     "=",     "+",
                          "-",     "*",       "/",      "A",     "B",
                          "N",     "1",       "2.5",    "&",     "\n",
                          "!HPF$", "BLOCK",   "SHIFT",  "ALLOCATE"};
  std::mt19937 rng(7);
  std::uniform_int_distribution<std::size_t> pick(0, std::size(tokens) - 1);
  for (int round = 0; round < 200; ++round) {
    std::string src;
    for (int i = 0; i < 60; ++i) {
      src += tokens[pick(rng)];
      src += " ";
    }
    expect_survives(src);
  }
}

TEST(Robustness, TruncatedRealPrograms) {
  const std::string full =
      "PROGRAM P\n"
      "INTEGER N\n"
      "REAL U(N,N), T(N,N)\n"
      "!HPF$ DISTRIBUTE U(BLOCK,BLOCK)\n"
      "DO K = 1, 10\n"
      "  IF (K > 1) THEN\n"
      "    T = T + CSHIFT(U,SHIFT=+1,DIM=1)\n"
      "  ENDIF\n"
      "ENDDO\n"
      "END\n";
  for (std::size_t cut = 0; cut <= full.size(); cut += 3) {
    expect_survives(full.substr(0, cut));
  }
}

TEST(Robustness, DeepExpressionNesting) {
  std::string src = "INTEGER N\nREAL A(N,N), T(N,N)\nT = ";
  for (int i = 0; i < 200; ++i) src += "(A + ";
  src += "A";
  for (int i = 0; i < 200; ++i) src += ")";
  src += "\n";
  expect_survives(src);
}

TEST(Robustness, DeepControlFlowNesting) {
  std::string src = "INTEGER N, F\nREAL A(N,N)\n";
  for (int i = 0; i < 100; ++i) src += "IF (F > 0) THEN\n";
  src += "A = A\n";
  for (int i = 0; i < 100; ++i) src += "ENDIF\n";
  expect_survives(src);
}

TEST(Robustness, ManyStatements) {
  std::string src = "INTEGER N\nREAL A(N,N), B(N,N)\n";
  for (int i = 0; i < 2000; ++i) src += "A = B\n";
  DiagnosticEngine diags;
  auto r = lower_source(src, diags);
  EXPECT_FALSE(diags.has_errors());
  EXPECT_EQ(r.program.body.size(), 2000u);
}

TEST(Robustness, UnterminatedContinuation) {
  expect_survives("T = A + &");
  expect_survives("T = A + &\n");
  expect_survives("&&&&");
}

TEST(Robustness, MalformedDirectives) {
  expect_survives("!HPF$\n");
  expect_survives("!HPF$ DISTRIBUTE\n");
  expect_survives("!HPF$ DISTRIBUTE A(\n");
  expect_survives("!HPF$ PROCESSORS (2,2)\n");
  expect_survives("!HPF$ ALIGN WITH\n");
  expect_survives("!HPF$ DISTRIBUTE A(CYCLIC(4))\n");
}

TEST(Robustness, MalformedShifts) {
  expect_survives("REAL A(8,8), T(8,8)\nT = CSHIFT()\n");
  expect_survives("REAL A(8,8), T(8,8)\nT = CSHIFT(A)\n");
  expect_survives("REAL A(8,8), T(8,8)\nT = CSHIFT(A,1,2,3,4)\n");
  expect_survives("REAL A(8,8), T(8,8)\nT = CSHIFT(A,SHIFT=A,DIM=1)\n");
  expect_survives("REAL A(8,8), T(8,8)\nT = CSHIFT(A,1,DIM=99)\n");
}

}  // namespace
}  // namespace hpfsc::frontend

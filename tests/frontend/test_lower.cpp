#include "frontend/lower.hpp"

#include <gtest/gtest.h>

#include "ir/printer.hpp"

namespace hpfsc::frontend {
namespace {

LowerResult lower_ok(std::string_view src) {
  DiagnosticEngine diags;
  LowerResult r = lower_source(src, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  return r;
}

std::string lower_error(std::string_view src) {
  DiagnosticEngine diags;
  (void)lower_source(src, diags);
  EXPECT_TRUE(diags.has_errors());
  return diags.render_all();
}

constexpr const char* kFivePoint = R"(
PROGRAM FIVEPT
INTEGER, PARAMETER :: N = 8
REAL C1, C2, C3, C4, C5
REAL SRC(N,N), DST(N,N)
!HPF$ DISTRIBUTE SRC(BLOCK,BLOCK)
!HPF$ DISTRIBUTE DST(BLOCK,BLOCK)
DST(2:N-1,2:N-1) = C1 * SRC(1:N-2,2:N-1)  &
                 + C2 * SRC(2:N-1,1:N-2)  &
                 + C3 * SRC(2:N-1,2:N-1)  &
                 + C4 * SRC(3:N  ,2:N-1)  &
                 + C5 * SRC(2:N-1,3:N  )
END
)";

TEST(Lower, FivePointStencilBuildsSymbolsAndBody) {
  LowerResult r = lower_ok(kFivePoint);
  const ir::Program& p = r.program;
  EXPECT_EQ(p.name, "FIVEPT");
  ASSERT_TRUE(p.symbols.find_array("SRC"));
  ASSERT_TRUE(p.symbols.find_array("DST"));
  ASSERT_TRUE(p.symbols.find_scalar("N"));
  const ir::ScalarSymbol& n = p.symbols.scalar(*p.symbols.find_scalar("N"));
  EXPECT_TRUE(n.is_param);
  ASSERT_TRUE(n.init.has_value());
  EXPECT_EQ(*n.init, 8.0);
  ASSERT_EQ(p.body.size(), 1u);
  EXPECT_EQ(p.body[0]->kind, ir::StmtKind::ArrayAssign);
  const auto& assign = static_cast<const ir::ArrayAssignStmt&>(*p.body[0]);
  ASSERT_EQ(assign.lhs.section.size(), 2u);
  EXPECT_EQ(assign.lhs.section[0].lo, ir::AffineBound(2));
  EXPECT_EQ(assign.lhs.section[0].hi, (ir::AffineBound{"N", -1}));
}

TEST(Lower, FivePointPrintsLikePaperFigure1) {
  LowerResult r = lower_ok(kFivePoint);
  ir::Printer printer(r.program);
  EXPECT_EQ(printer.print_body(),
            "DST(2:N-1,2:N-1) = C1*SRC(1:N-2,2:N-1) + C2*SRC(2:N-1,1:N-2) + "
            "C3*SRC(2:N-1,2:N-1) + C4*SRC(3:N,2:N-1) + C5*SRC(2:N-1,3:N)\n");
}

TEST(Lower, CShiftLowersToShiftExpr) {
  LowerResult r = lower_ok(
      "INTEGER, PARAMETER :: N = 8\n"
      "REAL U(N,N), RIP(N,N)\n"
      "RIP = CSHIFT(U,SHIFT=+1,DIM=1)\n");
  const auto& assign =
      static_cast<const ir::ArrayAssignStmt&>(*r.program.body[0]);
  ASSERT_EQ(assign.rhs->kind, ir::ExprKind::Shift);
  EXPECT_EQ(assign.rhs->shift, 1);
  EXPECT_EQ(assign.rhs->dim, 0);  // DIM=1 is 0-based internally
  EXPECT_EQ(assign.rhs->intrinsic, ir::ShiftIntrinsic::CShift);
}

TEST(Lower, CShiftPositionalArgs) {
  LowerResult r = lower_ok(
      "INTEGER, PARAMETER :: N = 8\n"
      "REAL U(N,N), T(N,N)\n"
      "T = CSHIFT(U,-1,2)\n");
  const auto& assign =
      static_cast<const ir::ArrayAssignStmt&>(*r.program.body[0]);
  EXPECT_EQ(assign.rhs->shift, -1);
  EXPECT_EQ(assign.rhs->dim, 1);
}

TEST(Lower, CShiftDefaultDimIsOne) {
  LowerResult r = lower_ok(
      "INTEGER, PARAMETER :: N = 8\n"
      "REAL U(N,N), T(N,N)\n"
      "T = CSHIFT(U,2)\n");
  const auto& assign =
      static_cast<const ir::ArrayAssignStmt&>(*r.program.body[0]);
  EXPECT_EQ(assign.rhs->shift, 2);
  EXPECT_EQ(assign.rhs->dim, 0);
}

TEST(Lower, EoShiftWithBoundary) {
  LowerResult r = lower_ok(
      "INTEGER, PARAMETER :: N = 8\n"
      "REAL U(N,N), T(N,N)\n"
      "T = EOSHIFT(U,SHIFT=-1,BOUNDARY=0.0,DIM=2)\n");
  const auto& assign =
      static_cast<const ir::ArrayAssignStmt&>(*r.program.body[0]);
  ASSERT_EQ(assign.rhs->kind, ir::ExprKind::Shift);
  EXPECT_EQ(assign.rhs->intrinsic, ir::ShiftIntrinsic::EoShift);
  ASSERT_NE(assign.rhs->boundary, nullptr);
  EXPECT_EQ(assign.rhs->boundary->value, 0.0);
}

TEST(Lower, DistributeDirectiveApplied) {
  LowerResult r = lower_ok(
      "INTEGER, PARAMETER :: N = 8\n"
      "REAL A(N,N)\n"
      "!HPF$ DISTRIBUTE A(BLOCK,*)\n");
  const ir::ArraySymbol& a =
      r.program.symbols.array(*r.program.symbols.find_array("A"));
  EXPECT_EQ(a.dist[0], ir::DistKind::Block);
  EXPECT_EQ(a.dist[1], ir::DistKind::Collapsed);
}

TEST(Lower, DefaultDistributionIsBlockBlock) {
  LowerResult r = lower_ok(
      "INTEGER, PARAMETER :: N = 8\nREAL A(N,N)\n");
  const ir::ArraySymbol& a =
      r.program.symbols.array(*r.program.symbols.find_array("A"));
  EXPECT_EQ(a.dist[0], ir::DistKind::Block);
  EXPECT_EQ(a.dist[1], ir::DistKind::Block);
}

TEST(Lower, AlignCopiesDistribution) {
  LowerResult r = lower_ok(
      "INTEGER, PARAMETER :: N = 8\n"
      "REAL A(N,N), B(N,N)\n"
      "!HPF$ DISTRIBUTE A(BLOCK,*)\n"
      "!HPF$ ALIGN B WITH A\n");
  const ir::ArraySymbol& b =
      r.program.symbols.array(*r.program.symbols.find_array("B"));
  EXPECT_EQ(b.dist[0], ir::DistKind::Block);
  EXPECT_EQ(b.dist[1], ir::DistKind::Collapsed);
}

TEST(Lower, ProcessorsDirectiveReturnsGrid) {
  LowerResult r = lower_ok("!HPF$ PROCESSORS P(2,2)\n");
  ASSERT_TRUE(r.processors.has_value());
  EXPECT_EQ(r.processors->first, 2);
  EXPECT_EQ(r.processors->second, 2);
}

TEST(Lower, AllocateResolvesArrays) {
  LowerResult r = lower_ok(
      "INTEGER, PARAMETER :: N = 8\n"
      "REAL TMP(N,N)\n"
      "ALLOCATE TMP\n"
      "DEALLOCATE TMP\n");
  ASSERT_EQ(r.program.body.size(), 2u);
  EXPECT_EQ(r.program.body[0]->kind, ir::StmtKind::Alloc);
  EXPECT_EQ(r.program.body[1]->kind, ir::StmtKind::Free);
}

TEST(Lower, DoLoopAndIfLower) {
  LowerResult r = lower_ok(
      "INTEGER, PARAMETER :: N = 8\n"
      "INTEGER NSTEPS\n"
      "REAL U(N,N), T(N,N)\n"
      "DO K = 1, NSTEPS\n"
      "  IF (K > 1) THEN\n"
      "    T = U\n"
      "  ENDIF\n"
      "ENDDO\n");
  ASSERT_EQ(r.program.body.size(), 1u);
  const auto& loop = static_cast<const ir::DoStmt&>(*r.program.body[0]);
  EXPECT_EQ(loop.hi, (ir::AffineBound{"NSTEPS", 0}));
  ASSERT_EQ(loop.body.size(), 1u);
  EXPECT_EQ(loop.body[0]->kind, ir::StmtKind::If);
}

TEST(Lower, ImplicitLoopVariableDeclared) {
  LowerResult r = lower_ok(
      "INTEGER, PARAMETER :: N = 4\nREAL U(N,N)\nDO K = 1, 3\nU = U\nENDDO\n");
  ASSERT_TRUE(r.program.symbols.find_scalar("K").has_value());
}

TEST(Lower, Problem9KernelLowersCompletely) {
  // Paper Figure 3 (Purdue Set problem 9).
  LowerResult r = lower_ok(
      "INTEGER, PARAMETER :: N = 8\n"
      "REAL U(N,N), T(N,N), RIP(N,N), RIN(N,N)\n"
      "!HPF$ DISTRIBUTE U(BLOCK,BLOCK)\n"
      "!HPF$ DISTRIBUTE T(BLOCK,BLOCK)\n"
      "!HPF$ DISTRIBUTE RIP(BLOCK,BLOCK)\n"
      "!HPF$ DISTRIBUTE RIN(BLOCK,BLOCK)\n"
      "RIP = CSHIFT(U,SHIFT=+1,DIM=1)\n"
      "RIN = CSHIFT(U,SHIFT=-1,DIM=1)\n"
      "T = U + RIP + RIN\n"
      "T = T + CSHIFT(U,SHIFT=-1,DIM=2)\n"
      "T = T + CSHIFT(U,SHIFT=+1,DIM=2)\n"
      "T = T + CSHIFT(RIP,SHIFT=-1,DIM=2)\n"
      "T = T + CSHIFT(RIP,SHIFT=+1,DIM=2)\n"
      "T = T + CSHIFT(RIN,SHIFT=-1,DIM=2)\n"
      "T = T + CSHIFT(RIN,SHIFT=+1,DIM=2)\n");
  EXPECT_EQ(r.program.body.size(), 9u);
}

// ----------------------------------------------------------- errors --

TEST(Lower, RejectsUndeclaredNames) {
  EXPECT_NE(lower_error("T = U\n").find("undeclared"), std::string::npos);
}

TEST(Lower, RejectsNonConstantShift) {
  std::string err = lower_error(
      "INTEGER M\nREAL U(8,8), T(8,8)\nT = CSHIFT(U,M,1)\n");
  EXPECT_NE(err.find("SHIFT must be an integer constant"), std::string::npos);
}

TEST(Lower, RejectsCallStatements) {
  std::string err = lower_error(
      "REAL U(8,8)\nCALL OVERLAP_CSHIFT(U, 1, 1)\n");
  EXPECT_NE(err.find("not supported"), std::string::npos);
}

TEST(Lower, RejectsQuadraticBound) {
  std::string err = lower_error(
      "INTEGER, PARAMETER :: N = 8\n"
      "REAL A(N,N), B(N,N)\n"
      "A(1:N*N,1:N) = B\n");
  EXPECT_NE(err.find("affine"), std::string::npos);
}

TEST(Lower, RejectsRankMismatch) {
  std::string err = lower_error(
      "INTEGER, PARAMETER :: N = 8\n"
      "REAL A(N,N), B(N,N)\n"
      "A(1:N) = B\n");
  EXPECT_NE(err.find("rank"), std::string::npos);
}

TEST(Lower, RejectsIntegerArrays) {
  std::string err = lower_error("INTEGER A(8,8)\n");
  EXPECT_NE(err.find("only REAL arrays"), std::string::npos);
}

TEST(Lower, RejectsDeferredShape) {
  std::string err =
      lower_error("REAL, ALLOCATABLE :: A(:,:)\n");
  EXPECT_NE(err.find("deferred-shape"), std::string::npos);
}

TEST(Lower, RejectsScalarSubscripted) {
  std::string err = lower_error("REAL X\nX(1) = 2\n");
  EXPECT_NE(err.find("scalar but subscripted"), std::string::npos);
}

TEST(Lower, RejectsArrayInScalarContext) {
  std::string err = lower_error(
      "INTEGER, PARAMETER :: N = 8\nREAL A(N,N)\nIF (A > 1) THEN\nENDIF\n");
  EXPECT_NE(err.find("not a scalar"), std::string::npos);
}

TEST(Lower, RejectsRedeclaration) {
  std::string err = lower_error("REAL X\nINTEGER X\n");
  EXPECT_NE(err.find("redeclaration"), std::string::npos);
}

}  // namespace
}  // namespace hpfsc::frontend

#include "frontend/parser.hpp"

#include <gtest/gtest.h>

namespace hpfsc::frontend {
namespace {

ast::Program parse(std::string_view src) {
  DiagnosticEngine diags;
  ast::Program p = Parser::parse_source(src, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  return p;
}

TEST(Parser, ProgramNameAndEnd) {
  auto p = parse("PROGRAM STENCIL\nEND PROGRAM STENCIL\n");
  EXPECT_EQ(p.name, "STENCIL");
  EXPECT_TRUE(p.stmts.empty());
}

TEST(Parser, ScalarDeclWithParameter) {
  auto p = parse("INTEGER, PARAMETER :: N = 512\n");
  ASSERT_EQ(p.decls.size(), 1u);
  const ast::Decl& d = p.decls[0];
  EXPECT_EQ(d.base, ir::ScalarType::Integer);
  EXPECT_TRUE(d.parameter);
  ASSERT_EQ(d.entities.size(), 1u);
  EXPECT_EQ(d.entities[0].name, "N");
  ASSERT_NE(d.entities[0].init, nullptr);
  EXPECT_EQ(d.entities[0].init->number, 512.0);
}

TEST(Parser, ArrayDeclMultipleEntities) {
  auto p = parse("REAL U(N,N), T(N,N), C1\n");
  ASSERT_EQ(p.decls.size(), 1u);
  ASSERT_EQ(p.decls[0].entities.size(), 3u);
  EXPECT_EQ(p.decls[0].entities[0].dims.size(), 2u);
  EXPECT_EQ(p.decls[0].entities[2].dims.size(), 0u);
}

TEST(Parser, DimensionAttribute) {
  auto p = parse("REAL, DIMENSION(N,N) :: A, B\n");
  ASSERT_EQ(p.decls.size(), 1u);
  EXPECT_EQ(p.decls[0].dimension_attr.size(), 2u);
  EXPECT_EQ(p.decls[0].entities.size(), 2u);
}

TEST(Parser, DistributeDirective) {
  auto p = parse("REAL U(8,8)\n!HPF$ DISTRIBUTE U(BLOCK,BLOCK)\n");
  ASSERT_EQ(p.distributes.size(), 1u);
  EXPECT_EQ(p.distributes[0].array, "U");
  EXPECT_EQ(p.distributes[0].dist,
            (std::vector<std::string>{"BLOCK", "BLOCK"}));
}

TEST(Parser, DistributeWithCollapsedDimAndOnto) {
  auto p = parse("!HPF$ PROCESSORS P(2,2)\n!HPF$ DISTRIBUTE A(BLOCK,*) ONTO P\n");
  ASSERT_EQ(p.processors.size(), 1u);
  EXPECT_EQ(p.processors[0].name, "P");
  EXPECT_EQ(p.processors[0].extents, (std::vector<int>{2, 2}));
  ASSERT_EQ(p.distributes.size(), 1u);
  EXPECT_EQ(p.distributes[0].dist, (std::vector<std::string>{"BLOCK", "*"}));
  EXPECT_EQ(p.distributes[0].onto, "P");
}

TEST(Parser, AlignDirective) {
  auto p = parse("!HPF$ ALIGN B WITH A\n");
  ASSERT_EQ(p.aligns.size(), 1u);
  EXPECT_EQ(p.aligns[0].array, "B");
  EXPECT_EQ(p.aligns[0].target, "A");
}

TEST(Parser, UnknownDirectiveWarnsButParses) {
  DiagnosticEngine diags;
  auto p = Parser::parse_source("!HPF$ TEMPLATE T(100)\nX = 1\n", diags);
  EXPECT_FALSE(diags.has_errors());
  EXPECT_EQ(p.stmts.size(), 1u);
}

TEST(Parser, WholeArrayAssignment) {
  auto p = parse("T = U + RIP + RIN\n");
  ASSERT_EQ(p.stmts.size(), 1u);
  const ast::Stmt& s = *p.stmts[0];
  EXPECT_EQ(s.kind, ast::StmtKind::Assign);
  EXPECT_EQ(s.target, "T");
  EXPECT_FALSE(s.target_has_parens);
  EXPECT_EQ(s.rhs->kind, ast::ExprKind::Binary);
}

TEST(Parser, SectionAssignment) {
  auto p = parse("DST(2:N-1,2:N-1) = C1 * SRC(1:N-2,2:N-1)\n");
  const ast::Stmt& s = *p.stmts[0];
  EXPECT_TRUE(s.target_has_parens);
  ASSERT_EQ(s.target_args.size(), 2u);
  EXPECT_EQ(s.target_args[0].value->kind, ast::ExprKind::Range);
  const ast::Expr& rhs = *s.rhs;
  EXPECT_EQ(rhs.kind, ast::ExprKind::Binary);
  EXPECT_EQ(rhs.op, ir::BinaryOp::Mul);
  EXPECT_EQ(rhs.rhs->kind, ast::ExprKind::Apply);
  EXPECT_EQ(rhs.rhs->name, "SRC");
}

TEST(Parser, CShiftWithKeywords) {
  auto p = parse("RIP = CSHIFT(U,SHIFT=+1,DIM=1)\n");
  const ast::Expr& rhs = *p.stmts[0]->rhs;
  ASSERT_EQ(rhs.kind, ast::ExprKind::Apply);
  EXPECT_EQ(rhs.name, "CSHIFT");
  ASSERT_EQ(rhs.args.size(), 3u);
  EXPECT_EQ(rhs.args[0].keyword, "");
  EXPECT_EQ(rhs.args[1].keyword, "SHIFT");
  EXPECT_EQ(rhs.args[2].keyword, "DIM");
}

TEST(Parser, NestedCShift) {
  auto p = parse("T = CSHIFT(CSHIFT(SRC,-1,1),-1,2)\n");
  const ast::Expr& rhs = *p.stmts[0]->rhs;
  ASSERT_EQ(rhs.kind, ast::ExprKind::Apply);
  ASSERT_EQ(rhs.args.size(), 3u);
  EXPECT_EQ(rhs.args[0].value->kind, ast::ExprKind::Apply);
  EXPECT_EQ(rhs.args[0].value->name, "CSHIFT");
}

TEST(Parser, FullRangeAndHalfOpenSections) {
  auto p = parse("A(:,1:) = B(:N,2)\n");
  const ast::Stmt& s = *p.stmts[0];
  const ast::Expr& r0 = *s.target_args[0].value;
  EXPECT_EQ(r0.kind, ast::ExprKind::Range);
  EXPECT_EQ(r0.lhs, nullptr);
  EXPECT_EQ(r0.rhs, nullptr);
  const ast::Expr& r1 = *s.target_args[1].value;
  EXPECT_NE(r1.lhs, nullptr);
  EXPECT_EQ(r1.rhs, nullptr);
  const ast::Expr& b = *s.rhs;
  EXPECT_EQ(b.args[0].value->kind, ast::ExprKind::Range);
  EXPECT_EQ(b.args[0].value->lhs, nullptr);
  EXPECT_NE(b.args[0].value->rhs, nullptr);
  EXPECT_EQ(b.args[1].value->kind, ast::ExprKind::Number);
}

TEST(Parser, AllocateForms) {
  auto p = parse("ALLOCATE TMP1, TMP2\nALLOCATE(TMP3)\nDEALLOCATE TMP1\n");
  ASSERT_EQ(p.stmts.size(), 3u);
  EXPECT_EQ(p.stmts[0]->kind, ast::StmtKind::Allocate);
  EXPECT_EQ(p.stmts[0]->names, (std::vector<std::string>{"TMP1", "TMP2"}));
  EXPECT_EQ(p.stmts[1]->names, (std::vector<std::string>{"TMP3"}));
  EXPECT_EQ(p.stmts[2]->kind, ast::StmtKind::Deallocate);
}

TEST(Parser, AllocateWithShape) {
  auto p = parse("ALLOCATE(TMP(N,N))\n");
  EXPECT_EQ(p.stmts[0]->names, (std::vector<std::string>{"TMP"}));
}

TEST(Parser, IfThenElse) {
  auto p = parse(
      "IF (K > 1) THEN\n"
      "  T = U\n"
      "ELSE\n"
      "  T = V\n"
      "ENDIF\n");
  ASSERT_EQ(p.stmts.size(), 1u);
  const ast::Stmt& s = *p.stmts[0];
  EXPECT_EQ(s.kind, ast::StmtKind::If);
  EXPECT_EQ(s.then_block.size(), 1u);
  EXPECT_EQ(s.else_block.size(), 1u);
  EXPECT_EQ(s.cond->op, ir::BinaryOp::Gt);
}

TEST(Parser, IfEndIfTwoWords) {
  auto p = parse("IF (K > 1) THEN\nT = U\nEND IF\n");
  EXPECT_EQ(p.stmts[0]->then_block.size(), 1u);
}

TEST(Parser, OneLineIf) {
  auto p = parse("IF (K == 0) T = U\n");
  const ast::Stmt& s = *p.stmts[0];
  EXPECT_EQ(s.kind, ast::StmtKind::If);
  ASSERT_EQ(s.then_block.size(), 1u);
  EXPECT_TRUE(s.else_block.empty());
}

TEST(Parser, DoLoop) {
  auto p = parse("DO K = 1, NSTEPS\nT = U\nENDDO\n");
  const ast::Stmt& s = *p.stmts[0];
  EXPECT_EQ(s.kind, ast::StmtKind::Do);
  EXPECT_EQ(s.do_var, "K");
  EXPECT_EQ(s.body.size(), 1u);
}

TEST(Parser, DoEndDoTwoWords) {
  auto p = parse("DO K = 1, 10\nT = U\nEND DO\n");
  EXPECT_EQ(p.stmts[0]->body.size(), 1u);
}

TEST(Parser, NestedControlFlow) {
  auto p = parse(
      "DO K = 1, 10\n"
      "  IF (K > 5) THEN\n"
      "    T = U\n"
      "  ENDIF\n"
      "ENDDO\n");
  const ast::Stmt& loop = *p.stmts[0];
  ASSERT_EQ(loop.body.size(), 1u);
  EXPECT_EQ(loop.body[0]->kind, ast::StmtKind::If);
}

TEST(Parser, CallStatement) {
  auto p = parse("CALL FOO(A, B)\n");
  const ast::Stmt& s = *p.stmts[0];
  EXPECT_EQ(s.kind, ast::StmtKind::Call);
  EXPECT_EQ(s.callee, "FOO");
  EXPECT_EQ(s.call_args.size(), 2u);
}

TEST(Parser, PrecedenceMulBeforeAdd) {
  auto p = parse("T = A + B * C\n");
  const ast::Expr& rhs = *p.stmts[0]->rhs;
  EXPECT_EQ(rhs.op, ir::BinaryOp::Add);
  EXPECT_EQ(rhs.rhs->op, ir::BinaryOp::Mul);
}

TEST(Parser, UnaryMinusAndParens) {
  auto p = parse("T = -(A + B) * C\n");
  const ast::Expr& rhs = *p.stmts[0]->rhs;
  EXPECT_EQ(rhs.op, ir::BinaryOp::Mul);
  EXPECT_EQ(rhs.lhs->kind, ast::ExprKind::Unary);
}

TEST(Parser, ContinuedMultiLineStencil) {
  auto p = parse(
      "DST(2:N-1,2:N-1) = C1 * SRC(1:N-2,2:N-1)  &\n"
      "                 + C2 * SRC(2:N-1,1:N-2)  &\n"
      "                 + C3 * SRC(2:N-1,2:N-1)\n");
  ASSERT_EQ(p.stmts.size(), 1u);
  EXPECT_EQ(p.stmts[0]->rhs->kind, ast::ExprKind::Binary);
}

TEST(Parser, ErrorRecoveryContinuesParsing) {
  DiagnosticEngine diags;
  auto p = Parser::parse_source("T = = B\nX = 1\n", diags);
  EXPECT_TRUE(diags.has_errors());
  // The second statement still parses.
  ASSERT_GE(p.stmts.size(), 1u);
  EXPECT_EQ(p.stmts.back()->target, "X");
}

TEST(Parser, UnterminatedBlockReported) {
  DiagnosticEngine diags;
  (void)Parser::parse_source("DO K = 1, 10\nT = U\n", diags);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_NE(diags.render_all().find("unterminated"), std::string::npos);
}

TEST(Parser, DoStrideRejected) {
  DiagnosticEngine diags;
  (void)Parser::parse_source("DO K = 1, 10, 2\nENDDO\n", diags);
  EXPECT_TRUE(diags.has_errors());
}

}  // namespace
}  // namespace hpfsc::frontend

#include "ir/expr.hpp"

#include <gtest/gtest.h>

namespace hpfsc::ir {
namespace {

ExprPtr sample_tree() {
  // C1 * A<+1,0> + 2.0
  ArrayRef ref;
  ref.array = 0;
  ref.offset = {1, 0, 0};
  return make_binary(
      BinaryOp::Add,
      make_binary(BinaryOp::Mul, make_scalar_ref(3), make_array_ref(ref)),
      make_const(2.0));
}

TEST(Expr, CloneIsDeepAndEqual) {
  ExprPtr a = sample_tree();
  ExprPtr b = a->clone();
  EXPECT_TRUE(a->equals(*b));
  // Mutating the clone does not affect the original.
  b->rhs->value = 3.0;
  EXPECT_FALSE(a->equals(*b));
  EXPECT_EQ(a->rhs->value, 2.0);
}

TEST(Expr, EqualsDistinguishesKinds) {
  EXPECT_FALSE(make_const(1.0)->equals(*make_scalar_ref(0)));
  EXPECT_TRUE(make_const(1.0)->equals(*make_const(1.0)));
  EXPECT_FALSE(make_const(1.0)->equals(*make_const(2.0)));
}

TEST(Expr, EqualsComparesShiftFields) {
  ArrayRef ref;
  ref.array = 1;
  ExprPtr s1 = make_shift(ShiftIntrinsic::CShift, make_array_ref(ref), 1, 0);
  ExprPtr s2 = make_shift(ShiftIntrinsic::CShift, make_array_ref(ref), 1, 0);
  ExprPtr s3 = make_shift(ShiftIntrinsic::CShift, make_array_ref(ref), 1, 1);
  ExprPtr s4 = make_shift(ShiftIntrinsic::EoShift, make_array_ref(ref), 1, 0,
                          make_const(0.0));
  EXPECT_TRUE(s1->equals(*s2));
  EXPECT_FALSE(s1->equals(*s3));
  EXPECT_FALSE(s1->equals(*s4));
  EXPECT_TRUE(s4->clone()->equals(*s4));
}

TEST(Expr, VisitReachesAllNodes) {
  ExprPtr tree = sample_tree();
  int count = 0;
  visit_exprs(*tree, [&](const Expr&) { ++count; });
  EXPECT_EQ(count, 5);  // add, mul, scalar, arrayref, const
}

TEST(Expr, VisitCanMutate) {
  ExprPtr tree = sample_tree();
  visit_exprs(*tree, [](Expr& e) {
    if (e.kind == ExprKind::Constant) e.value = 9.0;
  });
  EXPECT_EQ(tree->rhs->value, 9.0);
}

TEST(Expr, ReferencedArrays) {
  ArrayRef r0;
  r0.array = 2;
  ArrayRef r1;
  r1.array = 5;
  ExprPtr tree = make_binary(BinaryOp::Sub, make_array_ref(r0),
                             make_array_ref(r1));
  auto arrays = referenced_arrays(*tree);
  EXPECT_EQ(arrays, (std::vector<ArrayId>{2, 5}));
  EXPECT_TRUE(referenced_arrays(*make_const(1.0)).empty());
}

TEST(Expr, ContainsShift) {
  ArrayRef ref;
  ref.array = 0;
  ExprPtr no_shift = make_binary(BinaryOp::Add, make_array_ref(ref),
                                 make_const(1.0));
  EXPECT_FALSE(contains_shift(*no_shift));
  ExprPtr with_shift = make_binary(
      BinaryOp::Add,
      make_shift(ShiftIntrinsic::CShift, make_array_ref(ref), -1, 1),
      make_const(1.0));
  EXPECT_TRUE(contains_shift(*with_shift));
}

TEST(ArrayRef, OffsetAndWholeArrayPredicates) {
  ArrayRef ref;
  ref.array = 0;
  EXPECT_TRUE(ref.whole_array());
  EXPECT_FALSE(ref.has_offset());
  ref.offset = {0, -1, 0};
  EXPECT_TRUE(ref.has_offset());
  ref.section.push_back(SectionRange{AffineBound(1), AffineBound{"N", 0}});
  EXPECT_FALSE(ref.whole_array());
}

}  // namespace
}  // namespace hpfsc::ir

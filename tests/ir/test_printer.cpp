#include "ir/printer.hpp"

#include <gtest/gtest.h>

namespace hpfsc::ir {
namespace {

/// Builds a small program with U(N,N), T(N,N) and coefficient C1.
struct Fixture {
  Program program;
  ScalarId c1;
  ArrayId u;
  ArrayId t;

  Fixture() {
    program.symbols.add_scalar(
        ScalarSymbol{"N", ScalarType::Integer, true, {}});
    c1 = program.symbols.add_scalar(
        ScalarSymbol{"C1", ScalarType::Real, true, {}});
    ArraySymbol a;
    a.name = "U";
    a.rank = 2;
    a.extent[0] = AffineBound{"N", 0};
    a.extent[1] = AffineBound{"N", 0};
    u = program.symbols.add_array(a);
    a.name = "T";
    t = program.symbols.add_array(a);
  }
};

TEST(Printer, ProgramHeaderWithDeclarations) {
  Fixture f;
  std::string text = Printer(f.program).print_program();
  EXPECT_NE(text.find("REAL U(N,N)\n"), std::string::npos);
  EXPECT_NE(text.find("!HPF$ DISTRIBUTE U(BLOCK,BLOCK)\n"),
            std::string::npos);
}

TEST(Printer, EliminatedArraysNotDeclared) {
  Fixture f;
  f.program.symbols.array(f.u).eliminated = true;
  std::string text = Printer(f.program).print_program();
  EXPECT_EQ(text.find("REAL U"), std::string::npos);
}

TEST(Printer, OffsetAnnotationNotation) {
  Fixture f;
  ArrayRef ref;
  ref.array = f.u;
  ref.offset = {1, -1, 0};
  EXPECT_EQ(Printer(f.program).print_ref(ref), "U<+1,-1>");
  ref.offset = {0, 2, 0};
  EXPECT_EQ(Printer(f.program).print_ref(ref), "U<0,+2>");
}

TEST(Printer, SectionNotation) {
  Fixture f;
  ArrayRef ref;
  ref.array = f.u;
  ref.section = {SectionRange{AffineBound(2), AffineBound{"N", -1}},
                 SectionRange{AffineBound(5), AffineBound(5)}};
  EXPECT_EQ(Printer(f.program).print_ref(ref), "U(2:N-1,5)");
}

TEST(Printer, ExpressionPrecedence) {
  Fixture f;
  ArrayRef u_ref;
  u_ref.array = f.u;
  // C1 * (U + U) needs parens; C1*U + U does not.
  ExprPtr e1 = make_binary(
      BinaryOp::Mul, make_scalar_ref(f.c1),
      make_binary(BinaryOp::Add, make_array_ref(u_ref),
                  make_array_ref(u_ref)));
  EXPECT_EQ(Printer(f.program).print_expr(*e1), "C1*(U + U)");
  ExprPtr e2 = make_binary(
      BinaryOp::Add,
      make_binary(BinaryOp::Mul, make_scalar_ref(f.c1),
                  make_array_ref(u_ref)),
      make_array_ref(u_ref));
  EXPECT_EQ(Printer(f.program).print_expr(*e2), "C1*U + U");
}

TEST(Printer, SubtractionRightOperandParens) {
  Fixture f;
  ArrayRef u_ref;
  u_ref.array = f.u;
  ExprPtr e = make_binary(
      BinaryOp::Sub, make_array_ref(u_ref),
      make_binary(BinaryOp::Sub, make_array_ref(u_ref),
                  make_array_ref(u_ref)));
  EXPECT_EQ(Printer(f.program).print_expr(*e), "U - (U - U)");
}

TEST(Printer, OverlapShiftWithRsdAndBoundary) {
  Fixture f;
  auto stmt = std::make_unique<OverlapShiftStmt>();
  stmt->src.array = f.u;
  stmt->shift = -1;
  stmt->dim = 1;
  stmt->rsd.lo[0] = 1;
  stmt->rsd.hi[0] = 1;
  EXPECT_EQ(Printer(f.program).print_stmt(*stmt),
            "CALL OVERLAP_CSHIFT(U, SHIFT=-1, DIM=2, [0:N+1,*])");
  stmt->shift_kind = ShiftKind::EndOff;
  stmt->boundary = make_const(1.5);
  EXPECT_EQ(Printer(f.program).print_stmt(*stmt),
            "CALL OVERLAP_EOSHIFT(U, SHIFT=-1, DIM=2, [0:N+1,*], "
            "BOUNDARY=1.5)");
}

TEST(Printer, LoopNestWithPermutationAndUnroll) {
  Fixture f;
  auto nest = std::make_unique<LoopNestStmt>();
  nest->rank = 2;
  nest->bounds[0] = SectionRange{AffineBound(1), AffineBound{"N", 0}};
  nest->bounds[1] = SectionRange{AffineBound(2), AffineBound{"N", -1}};
  nest->loop_order = {1, 0, 2};
  nest->unroll_jam = 4;
  LoopNestStmt::BodyAssign body;
  body.lhs.array = f.t;
  ArrayRef u_ref;
  u_ref.array = f.u;
  u_ref.offset = {1, 0, 0};
  body.rhs = make_array_ref(u_ref);
  nest->body.push_back(std::move(body));
  EXPECT_EQ(Printer(f.program).print_stmt(*nest),
            "DO j = 2, N-1, 4   ! unroll-and-jam\n"
            "  DO i = 1, N\n"
            "    T(i,j) = U(i+1,j)\n"
            "  ENDDO\n"
            "ENDDO");
}

TEST(Printer, IfAndDoNesting) {
  Fixture f;
  auto loop = std::make_unique<DoStmt>();
  loop->var = f.program.symbols.add_scalar(
      ScalarSymbol{"K", ScalarType::Integer, false, {}});
  loop->lo = AffineBound(1);
  loop->hi = AffineBound{"N", 0};
  auto iff = std::make_unique<IfStmt>();
  iff->cond = make_binary(BinaryOp::Gt, make_scalar_ref(loop->var),
                          make_const(1.0));
  auto copy = std::make_unique<CopyStmt>();
  copy->dst = f.t;
  copy->src.array = f.u;
  iff->then_block.push_back(std::move(copy));
  loop->body.push_back(std::move(iff));
  EXPECT_EQ(Printer(f.program).print_stmt(*loop),
            "DO K = 1, N\n"
            "  IF (K > 1.0) THEN\n"
            "    T = U\n"
            "  ENDIF\n"
            "ENDDO");
}

TEST(Printer, AllocFreeLists) {
  Fixture f;
  auto alloc = std::make_unique<AllocStmt>();
  alloc->arrays = {f.u, f.t};
  EXPECT_EQ(Printer(f.program).print_stmt(*alloc), "ALLOCATE U, T");
  auto free = std::make_unique<FreeStmt>();
  free->arrays = {f.t};
  EXPECT_EQ(Printer(f.program).print_stmt(*free), "DEALLOCATE T");
}

}  // namespace
}  // namespace hpfsc::ir

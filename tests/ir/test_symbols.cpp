#include "ir/symbols.hpp"

#include <gtest/gtest.h>

namespace hpfsc::ir {
namespace {

TEST(AffineBound, LiteralAndParamRendering) {
  EXPECT_EQ(AffineBound(2).str(), "2");
  EXPECT_EQ((AffineBound{"N", 0}).str(), "N");
  EXPECT_EQ((AffineBound{"N", -1}).str(), "N-1");
  EXPECT_EQ((AffineBound{"N", 2}).str(), "N+2");
}

TEST(AffineBound, Difference) {
  EXPECT_EQ(AffineBound::difference(AffineBound{"N", -1}, AffineBound{"N", 1}),
            -2);
  EXPECT_EQ(AffineBound::difference(AffineBound(5), AffineBound(2)), 3);
  EXPECT_EQ(AffineBound::difference(AffineBound{"N", 0}, AffineBound(1)),
            std::nullopt);
  EXPECT_EQ(AffineBound::difference(AffineBound{"N", 0}, AffineBound{"M", 0}),
            std::nullopt);
}

TEST(AffineBound, Plus) {
  AffineBound b{"N", -1};
  EXPECT_EQ(b.plus(2), (AffineBound{"N", 1}));
  EXPECT_EQ(b.plus(0), b);
}

ArraySymbol array_2d(const std::string& name) {
  ArraySymbol a;
  a.name = name;
  a.rank = 2;
  a.extent[0] = AffineBound{"N", 0};
  a.extent[1] = AffineBound{"N", 0};
  return a;
}

TEST(SymbolTable, AddAndFind) {
  SymbolTable t;
  ScalarId n = t.add_scalar(ScalarSymbol{"N", ScalarType::Integer, true, {}});
  ArrayId u = t.add_array(array_2d("U"));
  EXPECT_EQ(t.find_scalar("N"), n);
  EXPECT_EQ(t.find_array("U"), u);
  EXPECT_EQ(t.find_scalar("X"), std::nullopt);
  EXPECT_EQ(t.find_array("X"), std::nullopt);
  EXPECT_EQ(t.num_scalars(), 1);
  EXPECT_EQ(t.num_arrays(), 1);
}

TEST(SymbolTable, RejectsDuplicates) {
  SymbolTable t;
  t.add_array(array_2d("U"));
  EXPECT_THROW(t.add_array(array_2d("U")), std::invalid_argument);
}

TEST(SymbolTable, MakeTempCopiesShape) {
  SymbolTable t;
  ArraySymbol model = array_2d("U");
  model.dist[1] = DistKind::Collapsed;
  model.halo_lo[0] = 2;
  ArrayId u = t.add_array(model);
  ArrayId tmp = t.make_temp(u);
  const ArraySymbol& sym = t.array(tmp);
  EXPECT_EQ(sym.name, "TMP1");
  EXPECT_TRUE(sym.is_temp);
  EXPECT_EQ(sym.dist[1], DistKind::Collapsed);
  EXPECT_EQ(sym.halo_lo[0], 0);  // halos are not inherited
  ArrayId tmp2 = t.make_temp(u);
  EXPECT_EQ(t.array(tmp2).name, "TMP2");
}

TEST(SymbolTable, MakeTempAvoidsUserNames) {
  SymbolTable t;
  ArrayId u = t.add_array(array_2d("TMP1"));
  ArrayId tmp = t.make_temp(u);
  EXPECT_EQ(t.array(tmp).name, "TMP2");
}

TEST(SymbolTable, Conformable) {
  SymbolTable t;
  ArrayId a = t.add_array(array_2d("A"));
  ArrayId b = t.add_array(array_2d("B"));
  ArraySymbol c_sym = array_2d("C");
  c_sym.extent[1] = AffineBound{"N", -1};
  ArrayId c = t.add_array(c_sym);
  ArraySymbol d_sym = array_2d("D");
  d_sym.dist[0] = DistKind::Collapsed;
  ArrayId d = t.add_array(d_sym);
  EXPECT_TRUE(t.conformable(a, b));
  EXPECT_FALSE(t.conformable(a, c));  // different extents
  EXPECT_FALSE(t.conformable(a, d));  // different distribution
}

TEST(ArraySymbol, DistStr) {
  ArraySymbol a = array_2d("A");
  EXPECT_EQ(a.dist_str(), "(BLOCK,BLOCK)");
  a.dist[1] = DistKind::Collapsed;
  EXPECT_EQ(a.dist_str(), "(BLOCK,*)");
}

}  // namespace
}  // namespace hpfsc::ir

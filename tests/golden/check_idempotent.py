#!/usr/bin/env python3
"""Asserts normalize_obs.py is idempotent on already-normalized goldens.

Usage: check_idempotent.py NORMALIZER [GOLDEN MODE]...

Feeds each golden back through the normalizer in its mode; the output
must equal the input byte-for-byte.  A regression here means the
normalizer rewrites stable content, which would make goldens drift.
"""

import subprocess
import sys


def main():
    if len(sys.argv) < 4 or (len(sys.argv) - 2) % 2 != 0:
        sys.exit(__doc__)
    normalizer = sys.argv[1]
    failures = 0
    pairs = list(zip(sys.argv[2::2], sys.argv[3::2]))
    for golden, mode in pairs:
        with open(golden) as f:
            text = f.read()
        result = subprocess.run(
            [sys.executable, normalizer, f"--mode={mode}"],
            input=text, capture_output=True, text=True, check=True)
        if result.stdout != text:
            print(f"FAIL: normalizing {golden} (mode={mode}) changed it")
            failures += 1
        else:
            print(f"ok: {golden} is a fixed point (mode={mode})")
    sys.exit(1 if failures else 0)


if __name__ == "__main__":
    main()

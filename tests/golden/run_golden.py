#!/usr/bin/env python3
"""Golden-file test driver for hpfsc_dump observability output.

Runs hpfsc_dump on a fixed source with --obs-summary and --prom-out,
normalizes both outputs with normalize_obs.py (strips wall-clock digits,
sorts time-ordered blocks), and diffs them against committed goldens.
Everything left after normalization — message and byte counts, cost-model
values, pass statistics, plan-cache hit/miss totals — must match exactly.

    run_golden.py --dump=BIN --source=FILE --work-dir=DIR \
        --golden-summary=FILE --golden-prom=FILE \
        [--golden-postmortem=FILE] \
        [--golden-batch=FILE --batch-file=FILE] \
        [--golden-batch-error=FILE --batch-error-file=FILE] \
        [--golden-statusz=FILE --statusz-batch-file=FILE] \
        [--golden-batch-postmortem=FILE --batch-postmortem-file=FILE] \
        [--update]

--golden-postmortem runs a separate invocation with the same dump args
plus --postmortem-out, under HPFSC_WAIT_TIMING=0, and pins the flight
recorder's text dump (event names, kinds, per-thread ordering, counter
values; timestamps/durations/ids stripped).  Wait timing is off for
that invocation because wait.*_ns counter events only fire when a PE
actually blocks, which would shift the 64-event tail window run to
run.  --golden-batch runs `--serve-batch=<batch-file> --workers=2` and
pins the per-request reassembly report (row order, cache outcomes,
comm bytes; latencies and request ids stripped).  --golden-statusz
runs `--serve-batch=<statusz-batch-file> --workers=2 --tiered
--statusz-out=...` and pins the introspection page's structure
(admission totals, tier entry count, histogram sample counts;
promoter-racy counts and milliseconds stripped).
--golden-batch-postmortem runs `--serve-batch=<batch-postmortem-file>
--workers=1 --postmortem-out=...` with the flight recorder on and wait
timing off, pinning the admission Mark events (serve.enqueue /
serve.dequeue with request ids) in the flight tail.

--update regenerates the goldens in place instead of diffing.
"""

import difflib
import os
import subprocess
import sys

DUMP_ARGS = ["-O3", "--run", "--n=16", "--steps=3", "--obs-summary"]


def parse_args(argv):
    opts = {"update": False}
    for arg in argv:
        if arg == "--update":
            opts["update"] = True
        elif arg.startswith("--") and "=" in arg:
            key, _, value = arg[2:].partition("=")
            opts[key.replace("-", "_")] = value
        else:
            sys.exit(f"unknown argument: {arg}")
    for required in ("dump", "source", "work_dir", "golden_summary",
                     "golden_prom"):
        if required not in opts:
            sys.exit(f"missing --{required.replace('_', '-')}")
    return opts


def normalize(text, mode):
    script = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "normalize_obs.py")
    result = subprocess.run(
        [sys.executable, script, f"--mode={mode}"],
        input=text, capture_output=True, text=True, check=True)
    return result.stdout


def check(name, got, golden_path, update):
    if update:
        with open(golden_path, "w") as f:
            f.write(got)
        print(f"updated {golden_path}")
        return True
    with open(golden_path) as f:
        want = f.read()
    if got == want:
        print(f"ok: {name} matches {os.path.basename(golden_path)}")
        return True
    diff = difflib.unified_diff(
        want.splitlines(keepends=True), got.splitlines(keepends=True),
        fromfile=f"golden/{os.path.basename(golden_path)}",
        tofile=f"normalized {name}")
    sys.stdout.writelines(diff)
    print(f"FAIL: {name} differs from {golden_path}")
    return False


def main():
    opts = parse_args(sys.argv[1:])
    os.makedirs(opts["work_dir"], exist_ok=True)
    prom_path = os.path.join(opts["work_dir"], "obs.prom")
    pm_path = os.path.join(opts["work_dir"], "postmortem.txt")

    cmd = [opts["dump"], *DUMP_ARGS, f"--prom-out={prom_path}",
           opts["source"]]
    result = subprocess.run(cmd, capture_output=True, text=True)
    if result.returncode != 0:
        sys.stderr.write(result.stderr)
        sys.exit(f"hpfsc_dump exited {result.returncode}: {' '.join(cmd)}")

    summary = normalize(result.stderr, "summary")
    with open(prom_path) as f:
        prom = normalize(f.read(), "prom")

    ok = check("--obs-summary", summary, opts["golden_summary"],
               opts["update"])
    ok = check("--prom-out", prom, opts["golden_prom"], opts["update"]) and ok

    if "golden_postmortem" in opts:
        # Separate invocation with wait timing off: the recv/barrier
        # wait counter events fire only when a PE actually blocks, so
        # with timing on, the 64-event flight tail would shift run to
        # run.  The postmortem is an append-mode dump; start clean.
        if os.path.exists(pm_path):
            os.remove(pm_path)
        cmd = [opts["dump"], *DUMP_ARGS,
               f"--postmortem-out={pm_path}", opts["source"]]
        env = dict(os.environ, HPFSC_WAIT_TIMING="0")
        result = subprocess.run(cmd, capture_output=True, text=True,
                                env=env)
        if result.returncode != 0:
            sys.stderr.write(result.stderr)
            sys.exit(
                f"hpfsc_dump exited {result.returncode}: {' '.join(cmd)}")
        with open(pm_path) as f:
            postmortem = normalize(f.read(), "postmortem")
        ok = check("--postmortem-out", postmortem,
                   opts["golden_postmortem"], opts["update"]) and ok

    if "golden_batch_error" in opts:
        if "batch_error_file" not in opts:
            sys.exit("--golden-batch-error requires --batch-error-file")
        cmd = [opts["dump"],
               f"--serve-batch={opts['batch_error_file']}"]
        result = subprocess.run(cmd, capture_output=True, text=True)
        if result.returncode != 2:
            sys.stderr.write(result.stderr)
            sys.exit("malformed batch file must exit 2, got "
                     f"{result.returncode}: {' '.join(cmd)}")
        # The diagnostic is deterministic (line number, offending text,
        # reason — no timings or ids), so it is pinned verbatim.
        ok = check("--serve-batch (malformed)", result.stderr,
                   opts["golden_batch_error"], opts["update"]) and ok

    if "golden_batch" in opts:
        if "batch_file" not in opts:
            sys.exit("--golden-batch requires --batch-file")
        cmd = [opts["dump"], f"--serve-batch={opts['batch_file']}",
               "--workers=2"]
        result = subprocess.run(cmd, capture_output=True, text=True)
        if result.returncode != 0:
            sys.stderr.write(result.stderr)
            sys.exit(
                f"hpfsc_dump exited {result.returncode}: {' '.join(cmd)}")
        batch = normalize(result.stdout, "batch")
        ok = check("--serve-batch", batch, opts["golden_batch"],
                   opts["update"]) and ok

    if "golden_statusz" in opts:
        if "statusz_batch_file" not in opts:
            sys.exit("--golden-statusz requires --statusz-batch-file")
        statusz_path = os.path.join(opts["work_dir"], "statusz.txt")
        cmd = [opts["dump"],
               f"--serve-batch={opts['statusz_batch_file']}",
               "--workers=2", "--tiered",
               f"--statusz-out={statusz_path}"]
        result = subprocess.run(cmd, capture_output=True, text=True)
        if result.returncode != 0:
            sys.stderr.write(result.stderr)
            sys.exit(
                f"hpfsc_dump exited {result.returncode}: {' '.join(cmd)}")
        with open(statusz_path) as f:
            statusz = normalize(f.read(), "statusz")
        ok = check("--statusz-out", statusz, opts["golden_statusz"],
                   opts["update"]) and ok

    if "golden_batch_postmortem" in opts:
        if "batch_postmortem_file" not in opts:
            sys.exit(
                "--golden-batch-postmortem requires --batch-postmortem-file")
        bpm_path = os.path.join(opts["work_dir"], "batch_postmortem.txt")
        if os.path.exists(bpm_path):
            os.remove(bpm_path)
        # One worker so the enqueue/dequeue Marks land on a stable set
        # of threads; wait timing off so only deterministic events fill
        # the flight tail.
        cmd = [opts["dump"],
               f"--serve-batch={opts['batch_postmortem_file']}",
               "--workers=1", f"--postmortem-out={bpm_path}"]
        env = dict(os.environ, HPFSC_FLIGHT_RECORDER="1",
                   HPFSC_WAIT_TIMING="0")
        result = subprocess.run(cmd, capture_output=True, text=True,
                                env=env)
        if result.returncode != 0:
            sys.stderr.write(result.stderr)
            sys.exit(
                f"hpfsc_dump exited {result.returncode}: {' '.join(cmd)}")
        with open(bpm_path) as f:
            bpm = normalize(f.read(), "postmortem")
        ok = check("--serve-batch --postmortem-out", bpm,
                   opts["golden_batch_postmortem"], opts["update"]) and ok

    sys.exit(0 if ok else 1)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Normalizes hpfsc_dump observability output for golden-file diffing.

Four modes, selected by --mode:

  summary     stderr of `hpfsc_dump --obs-summary`: latency-histogram
              lines and per-block timing summaries.  Wall-clock digits are
              replaced with <T>, the content-hash counter with <HASH>,
              request-id sums with <ID>, column padding collapses to
              single spaces, and summary blocks are re-sorted by name (the
              tool orders them by total time, which is not stable).
  prom        a `--prom-out` file: quantile/_sum/_max sample values of
              *_ms summaries are replaced with <T>, roofline gflops
              gauges (wall-clock-derived) with <T>.  Other gauges and
              _count samples are deterministic and kept verbatim.
  postmortem  a `--postmortem-out` file: per-event timestamps, span
              durations, and request ids are replaced with <T>/<ID>,
              and nonzero (per-PE) track numbers with <PE> — which PE
              thread registers its ring first is a race, so PE sections
              must normalize to identical text.  The event names,
              kinds, ordering, thread structure, and the incident
              header survive — they are the invariant.
  batch       stdout of `--serve-batch`: latencies, queue/compile/run
              times, wall/throughput, and request ids are replaced with
              <T>/<ID>.  Row order (submission order), cache outcomes,
              and comm byte counts survive.

Reads stdin, writes stdout.  Everything that survives normalization is a
real invariant: message/byte counts, cost-model values, pass statistics,
cache hit/miss totals, histogram counts, and event sequences.
"""

import re
import sys

TIME = "<T>"
RID = "<ID>"

HIST_RE = re.compile(r"^(\S+): count=(\d+) p50=\S+ p90=\S+ p99=\S+ max=\S+$")
BLOCK_RE = re.compile(r"^(\S+)\s+x(\d+)\s+total\s+\S+ ms\s+max\s+\S+ ms\s*$")
PROM_MS_RE = re.compile(
    r'^(\S+_ms(?:\{quantile="[0-9.]+"\}|_sum|_max)?) [-+0-9.eE]+$'
)
PROM_GFLOPS_RE = re.compile(r"^(\S*gflops\S*) [-+0-9.eE]+$")
PM_EVENT_RE = re.compile(r"^(  )\[ *\d+ ns\] (.*)$")


def normalize_summary(lines):
    head = []
    blocks = []
    current = None
    in_blocks = False
    for line in lines:
        line = line.rstrip("\n")
        if line.strip() == "--- obs summary ---":
            in_blocks = True
            head.append(line)
            continue
        if not in_blocks:
            m = HIST_RE.match(line)
            if m:
                line = (
                    f"{m.group(1)}: count={m.group(2)} "
                    f"p50={TIME} p90={TIME} p99={TIME} max={TIME}"
                )
            head.append(line)
            continue
        if line.startswith(" "):
            key, _, value = line.strip().partition(" ")
            if key == "key_hash":
                value = "<HASH>"
            elif key == "request_id":
                # The summary sums numeric args; a sum of request ids is
                # deterministic here but meaningless and brittle.
                value = RID
            else:
                value = value.strip()
            current.append(f"    {key} {value}")
            continue
        m = BLOCK_RE.match(line)
        current = (
            [f"{m.group(1)} x{m.group(2)} total {TIME} ms max {TIME} ms"]
            if m
            else [line]
        )
        blocks.append(current)
    blocks.sort(key=lambda block: block[0])
    return head + [line for block in blocks for line in block]


def normalize_prom(lines):
    out = []
    for line in lines:
        line = line.rstrip("\n")
        m = PROM_MS_RE.match(line)
        if m:
            line = f"{m.group(1)} {TIME}"
        m = PROM_GFLOPS_RE.match(line)
        if m:
            line = f"{m.group(1)} {TIME}"
        out.append(line)
    return out


def normalize_postmortem(lines):
    out = []
    for line in lines:
        line = line.rstrip("\n")
        m = PM_EVENT_RE.match(line)
        if m:
            line = f"{m.group(1)}[{TIME} ns] {m.group(2)}"
        line = re.sub(r"dur=\d+ns", f"dur={TIME}ns", line)
        line = re.sub(r"req=\d+", f"req={RID}", line)
        line = re.sub(r"track=[1-9]\d*", "track=<PE>", line)
        out.append(line)
    return out


def normalize_batch(lines):
    out = []
    for line in lines:
        line = line.rstrip("\n")
        line = re.sub(r"req#\d+", f"req#{RID}", line)
        # Swallow the column padding along with the digits: the field
        # width depends on the magnitude (a >=10ms latency under CI
        # load shifts the column), so padding is not an invariant.
        line = re.sub(r" *[0-9]+\.[0-9]+ ms", f" {TIME} ms", line)
        line = re.sub(
            r"throughput: [0-9.]+ requests/s",
            f"throughput: {TIME} requests/s",
            line,
        )
        out.append(line)
    return out


MODES = {
    "summary": normalize_summary,
    "prom": normalize_prom,
    "postmortem": normalize_postmortem,
    "batch": normalize_batch,
}


def main():
    mode = None
    for arg in sys.argv[1:]:
        if arg.startswith("--mode="):
            mode = arg.split("=", 1)[1]
    if mode not in MODES:
        sys.exit(
            "usage: normalize_obs.py --mode=summary|prom|postmortem|batch"
            " < input > output"
        )
    lines = sys.stdin.readlines()
    sys.stdout.write("\n".join(MODES[mode](lines)) + "\n")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Normalizes hpfsc_dump observability output for golden-file diffing.

Two modes, selected by --mode:

  summary  stderr of `hpfsc_dump --obs-summary`: latency-histogram lines
           and per-block timing summaries.  Wall-clock digits are replaced
           with <T>, the content-hash counter with <HASH>, column padding
           collapses to single spaces, and summary blocks are re-sorted by
           name (the tool orders them by total time, which is not stable).
  prom     a `--prom-out` file: quantile/_sum/_max sample values of *_ms
           summaries are replaced with <T>.  Gauges and _count samples are
           deterministic and kept verbatim.

Reads stdin, writes stdout.  Everything that survives normalization is a
real invariant: message/byte counts, cost-model values, pass statistics,
cache hit/miss totals, and histogram counts.
"""

import re
import sys

TIME = "<T>"

HIST_RE = re.compile(r"^(\S+): count=(\d+) p50=\S+ p90=\S+ p99=\S+ max=\S+$")
BLOCK_RE = re.compile(r"^(\S+)\s+x(\d+)\s+total\s+\S+ ms\s+max\s+\S+ ms\s*$")
PROM_MS_RE = re.compile(
    r'^(\S+_ms(?:\{quantile="[0-9.]+"\}|_sum|_max)?) [-+0-9.eE]+$'
)


def normalize_summary(lines):
    head = []
    blocks = []
    current = None
    in_blocks = False
    for line in lines:
        line = line.rstrip("\n")
        if line.strip() == "--- obs summary ---":
            in_blocks = True
            head.append(line)
            continue
        if not in_blocks:
            m = HIST_RE.match(line)
            if m:
                line = (
                    f"{m.group(1)}: count={m.group(2)} "
                    f"p50={TIME} p90={TIME} p99={TIME} max={TIME}"
                )
            head.append(line)
            continue
        if line.startswith(" "):
            key, _, value = line.strip().partition(" ")
            value = "<HASH>" if key == "key_hash" else value.strip()
            current.append(f"    {key} {value}")
            continue
        m = BLOCK_RE.match(line)
        current = (
            [f"{m.group(1)} x{m.group(2)} total {TIME} ms max {TIME} ms"]
            if m
            else [line]
        )
        blocks.append(current)
    blocks.sort(key=lambda block: block[0])
    return head + [line for block in blocks for line in block]


def normalize_prom(lines):
    out = []
    for line in lines:
        line = line.rstrip("\n")
        m = PROM_MS_RE.match(line)
        if m:
            line = f"{m.group(1)} {TIME}"
        out.append(line)
    return out


def main():
    mode = None
    for arg in sys.argv[1:]:
        if arg.startswith("--mode="):
            mode = arg.split("=", 1)[1]
    if mode not in ("summary", "prom"):
        sys.exit("usage: normalize_obs.py --mode=summary|prom < input > output")
    lines = sys.stdin.readlines()
    normalize = normalize_summary if mode == "summary" else normalize_prom
    sys.stdout.write("\n".join(normalize(lines)) + "\n")


if __name__ == "__main__":
    main()

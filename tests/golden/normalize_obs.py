#!/usr/bin/env python3
"""Normalizes hpfsc_dump observability output for golden-file diffing.

Five modes, selected by --mode:

  summary     stderr of `hpfsc_dump --obs-summary`: latency-histogram
              lines and per-block timing summaries.  Wall-clock digits are
              replaced with <T>, the content-hash counter with <HASH>,
              request-id sums with <ID>, column padding collapses to
              single spaces, and summary blocks are re-sorted by name (the
              tool orders them by total time, which is not stable).  The
              wait-state footer keeps its structure and the reconciled
              verdict; its millisecond/fraction digits become <T>, as do
              the wait.*_ns span-argument sums inside summary blocks.
  prom        a `--prom-out` file: quantile/_sum/_max sample values of
              *_ms summaries are replaced with <T>, roofline gflops
              gauges (wall-clock-derived) with <T>.  Other gauges and
              _count samples are deterministic and kept verbatim.
  postmortem  a `--postmortem-out` file: per-event timestamps, span
              durations, and request ids are replaced with <T>/<ID>,
              and nonzero (per-PE) track numbers with <PE> — which PE
              thread registers its ring first is a race, so PE sections
              must normalize to identical text.  The event names,
              kinds, ordering, thread structure, and the incident
              header survive — they are the invariant.
  batch       stdout of `--serve-batch`: latencies, queue/compile/run
              times, wall/throughput, and request ids are replaced with
              <T>/<ID>.  Row order (submission order), cache outcomes,
              and comm byte counts survive, as does the wait-state
              footer's request count.
  statusz     a `--statusz-out` file: histogram quantiles/totals and
              swap-gate milliseconds become <T>; counts that race the
              background promoter (plan-cache size/hits/misses, per-state
              tier tallies, promotion totals) and the flight recorder's
              thread count become <N>.  The page structure, admission
              totals, tier entry count, and per-category sample counts
              survive — they are deterministic for a drained batch.

Reads stdin, writes stdout.  Everything that survives normalization is a
real invariant: message/byte counts, cost-model values, pass statistics,
cache hit/miss totals, histogram counts, and event sequences.
"""

import re
import sys

TIME = "<T>"
RID = "<ID>"
NUM = "<N>"

HIST_RE = re.compile(r"^(\S+): count=(\d+) p50=\S+ p90=\S+ p99=\S+ max=\S+$")
WAIT_FOOTER_RE = re.compile(
    r"^recv: [0-9.]+ +barrier: [0-9.]+ +pool: [0-9.]+$"
)
WAIT_VERDICT_RE = re.compile(
    r"^exposed-comm fraction: [0-9.]+, overlap speedup bound: [0-9.]+x, "
    r"reconciled: (yes|no)$"
)
BLOCK_RE = re.compile(r"^(\S+)\s+x(\d+)\s+total\s+\S+ ms\s+max\s+\S+ ms\s*$")
PROM_MS_RE = re.compile(
    r'^(\S+_ms(?:\{quantile="[0-9.]+"\}|_sum|_max)?) [-+0-9.eE]+$'
)
PROM_GFLOPS_RE = re.compile(r"^(\S*gflops\S*) [-+0-9.eE]+$")
PM_EVENT_RE = re.compile(r"^(  )\[ *\d+ ns\] (.*)$")


def normalize_summary(lines):
    head = []
    blocks = []
    current = None
    in_blocks = False
    for line in lines:
        line = line.rstrip("\n")
        if line.strip() == "--- obs summary ---":
            in_blocks = True
            head.append(line)
            continue
        if not in_blocks:
            m = HIST_RE.match(line)
            if m:
                line = (
                    f"{m.group(1)}: count={m.group(2)} "
                    f"p50={TIME} p90={TIME} p99={TIME} max={TIME}"
                )
            if WAIT_FOOTER_RE.match(line):
                line = f"recv: {TIME}  barrier: {TIME}  pool: {TIME}"
            m = WAIT_VERDICT_RE.match(line)
            if m:
                line = (
                    f"exposed-comm fraction: {TIME}, "
                    f"overlap speedup bound: {TIME}x, "
                    f"reconciled: {m.group(1)}"
                )
            head.append(line)
            continue
        if line.startswith(" "):
            key, _, value = line.strip().partition(" ")
            if key == "key_hash":
                value = "<HASH>"
            elif key == "request_id":
                # The summary sums numeric args; a sum of request ids is
                # deterministic here but meaningless and brittle.
                value = RID
            elif key.startswith("wait."):
                # Nanosecond wait-state sums are wall-clock derived.
                value = TIME
            else:
                value = value.strip()
            current.append(f"    {key} {value}")
            continue
        m = BLOCK_RE.match(line)
        current = (
            [f"{m.group(1)} x{m.group(2)} total {TIME} ms max {TIME} ms"]
            if m
            else [line]
        )
        blocks.append(current)
    blocks.sort(key=lambda block: block[0])
    return head + [line for block in blocks for line in block]


def normalize_prom(lines):
    out = []
    for line in lines:
        line = line.rstrip("\n")
        m = PROM_MS_RE.match(line)
        if m:
            line = f"{m.group(1)} {TIME}"
        m = PROM_GFLOPS_RE.match(line)
        if m:
            line = f"{m.group(1)} {TIME}"
        out.append(line)
    return out


def normalize_postmortem(lines):
    out = []
    for line in lines:
        line = line.rstrip("\n")
        m = PM_EVENT_RE.match(line)
        if m:
            line = f"{m.group(1)}[{TIME} ns] {m.group(2)}"
        line = re.sub(r"dur=\d+ns", f"dur={TIME}ns", line)
        line = re.sub(r"req=\d+", f"req={RID}", line)
        line = re.sub(r"track=[1-9]\d*", "track=<PE>", line)
        out.append(line)
    return out


def normalize_batch(lines):
    out = []
    for line in lines:
        line = line.rstrip("\n")
        line = re.sub(r"req#\d+", f"req#{RID}", line)
        # Swallow the column padding along with the digits: the field
        # width depends on the magnitude (a >=10ms latency under CI
        # load shifts the column), so padding is not an invariant.
        line = re.sub(r" *[0-9]+\.[0-9]+ ms", f" {TIME} ms", line)
        line = re.sub(
            r"throughput: [0-9.]+ requests/s",
            f"throughput: {TIME} requests/s",
            line,
        )
        out.append(line)
    return out


STATUSZ_HIST_RE = re.compile(
    r"^(  \S+ +count=\d+) p50=\S+ p99=\S+ max=\S+ total=\S+$"
)


def normalize_statusz(lines):
    out = []
    for line in lines:
        line = line.rstrip("\n")
        m = STATUSZ_HIST_RE.match(line)
        if m:
            line = (
                f"{m.group(1)} p50={TIME} p99={TIME} max={TIME} "
                f"total={TIME}"
            )
        if line.startswith("plan cache: "):
            # The background promoter compiles into the same cache, so
            # size/hits/misses depend on how far promotion got by the
            # time the page was rendered.
            line = re.sub(r"(size=)\d+(/)", rf"\g<1>{NUM}\g<2>", line)
            line = re.sub(
                r"\b(hits|misses|coalesced|evictions|warmed)=\d+",
                rf"\g<1>={NUM}",
                line,
            )
        if line.startswith("tiers: "):
            # entries= is deterministic (one per distinct program); the
            # per-state split and promotion totals race the promoter.
            line = re.sub(
                r"\b(fast|promoting|ready|promoted|failed|promotions"
                r"|failures|swap-gate-waits)=\d+",
                rf"\g<1>={NUM}",
                line,
            )
            line = re.sub(r"swap-gate-ms=[0-9.]+", f"swap-gate-ms={TIME}",
                          line)
        line = re.sub(r"(flight recorder: \w+ threads=)\d+",
                      rf"\g<1>{NUM}", line)
        out.append(line)
    return out


MODES = {
    "summary": normalize_summary,
    "prom": normalize_prom,
    "postmortem": normalize_postmortem,
    "batch": normalize_batch,
    "statusz": normalize_statusz,
}


def main():
    mode = None
    for arg in sys.argv[1:]:
        if arg.startswith("--mode="):
            mode = arg.split("=", 1)[1]
    if mode not in MODES:
        sys.exit(
            "usage: normalize_obs.py "
            "--mode=summary|prom|postmortem|batch|statusz"
            " < input > output"
        )
    lines = sys.stdin.readlines()
    sys.stdout.write("\n".join(MODES[mode](lines)) + "\n")


if __name__ == "__main__":
    main()

// Whole-stack integration beyond the paper's 2-D (BLOCK,BLOCK) kernels:
// rank-1 and rank-3 arrays, collapsed distributions, EOSHIFT pipelines,
// and the paper's claim that the techniques apply on "shared-memory and
// scalar machines" (a 1x1 grid).
#include <gtest/gtest.h>

#include <cmath>

#include "driver/hpfsc.hpp"

namespace hpfsc {
namespace {

Execution build(const char* src, int level, simpi::MachineConfig mc,
                Bindings bindings, std::vector<std::string> live_out) {
  CompilerOptions opts = level < 0 ? CompilerOptions::xlhpf_like()
                                   : CompilerOptions::level(level);
  opts.passes.offset.live_out = std::move(live_out);
  Compiler compiler;
  CompiledProgram compiled = compiler.compile(src, opts);
  Execution exec(std::move(compiled.program), mc);
  exec.prepare(bindings);
  return exec;
}

TEST(Integration, Rank1StencilOnLinearGrid) {
  const char* src =
      "INTEGER N\n"
      "!HPF$ PROCESSORS P(4,1)\n"
      "REAL A(N), B(N)\n"
      "!HPF$ DISTRIBUTE A(BLOCK)\n"
      "!HPF$ DISTRIBUTE B(BLOCK)\n"
      "B = A + CSHIFT(A,+1,1) + CSHIFT(A,-1,1)\n";
  const int n = 17;  // ragged blocks over 4 PEs
  for (int level : {0, 4}) {
    simpi::MachineConfig mc;
    mc.pe_rows = 4;
    mc.pe_cols = 1;
    Execution exec = build(src, level, mc, Bindings{}.set("N", n), {"B"});
    exec.set_array("A", [](int i, int, int) { return i * i * 0.5; });
    exec.run(1);
    auto b = exec.get_array("B");
    auto a = [](int i) { return i * i * 0.5; };
    auto wrap = [n](int g) { return (g - 1 + n) % n + 1; };
    for (int i = 1; i <= n; ++i) {
      ASSERT_NEAR(b[static_cast<std::size_t>(i - 1)],
                  a(i) + a(wrap(i + 1)) + a(wrap(i - 1)), 1e-9)
          << "level " << level << " i=" << i;
    }
  }
}

TEST(Integration, Rank3StencilCollapsedThirdDim) {
  const char* src =
      "INTEGER N\n"
      "REAL U(N,N,4), T(N,N,4)\n"
      "!HPF$ DISTRIBUTE U(BLOCK,BLOCK,*)\n"
      "!HPF$ DISTRIBUTE T(BLOCK,BLOCK,*)\n"
      "T = U + CSHIFT(U,+1,1) + CSHIFT(U,-1,2) + CSHIFT(U,+1,3)\n";
  const int n = 8;
  std::vector<double> reference;
  for (int level : {0, 4}) {
    Execution exec = build(src, level, simpi::MachineConfig{},
                           Bindings{}.set("N", n), {"T"});
    exec.set_array("U", [](int i, int j, int k) {
      return i + 10.0 * j + 100.0 * k;
    });
    exec.run(1);
    auto t = exec.get_array("T");
    if (reference.empty()) {
      reference = t;
      // Spot-check one interior element against the formula.
      auto u = [](int i, int j, int k) { return i + 10.0 * j + 100.0 * k; };
      // t(2,2,2) = u(2,2,2)+u(3,2,2)+u(2,1,2)+u(2,2,3)
      std::size_t idx = 1 + 1 * 8 + 1 * 64;
      EXPECT_NEAR(t[idx], u(2, 2, 2) + u(3, 2, 2) + u(2, 1, 2) + u(2, 2, 3),
                  1e-9);
    } else {
      EXPECT_EQ(t, reference);
    }
  }
}

TEST(Integration, CollapsedSecondDimension) {
  const char* src =
      "INTEGER N\n"
      "!HPF$ PROCESSORS P(4,1)\n"
      "REAL U(N,N), T(N,N)\n"
      "!HPF$ DISTRIBUTE U(BLOCK,*)\n"
      "!HPF$ DISTRIBUTE T(BLOCK,*)\n"
      "T = CSHIFT(U,+1,1) + CSHIFT(U,-1,2)\n";
  const int n = 8;
  simpi::MachineConfig mc;
  mc.pe_rows = 4;
  mc.pe_cols = 1;
  std::vector<double> reference;
  for (int level : {0, 4}) {
    Execution exec = build(src, level, mc, Bindings{}.set("N", n), {"T"});
    exec.set_array("U", [](int i, int j, int) { return i * 3.0 + j * 7.0; });
    auto stats = exec.run(1);
    auto t = exec.get_array("T");
    if (reference.empty()) {
      reference = t;
    } else {
      EXPECT_EQ(t, reference);
      // Shifts along the collapsed dim are message-free; only dim 1
      // communicates (4 PEs x 1 message at O4).
      EXPECT_EQ(stats.machine.messages_sent, 4u);
    }
  }
}

TEST(Integration, EoShiftJacobiWithBoundaries) {
  // A non-periodic relaxation using EOSHIFT everywhere; checks the whole
  // EndOff path: overlap_eoshift at O4 vs full eoshift at O0.
  const char* src =
      "INTEGER N\n"
      "REAL U(N,N), T(N,N)\n"
      "T = 0.25 * (EOSHIFT(U,-1,0.0,1) + EOSHIFT(U,+1,0.0,1)  &\n"
      "          + EOSHIFT(U,-1,0.0,2) + EOSHIFT(U,+1,0.0,2))\n"
      "U = T\n";
  const int n = 10;
  std::vector<double> reference;
  for (int level : {0, 1, 3, 4}) {
    Execution exec = build(src, level, simpi::MachineConfig{},
                           Bindings{}.set("N", n), {"U", "T"});
    exec.set_array("U", [](int i, int j, int) { return i == 5 && j == 5; });
    exec.run(6);  // enough sweeps for mass to reach and cross the edge
    auto u = exec.get_array("U");
    if (reference.empty()) {
      reference = u;
      double sum = 0.0;
      for (double v : u) sum += v;
      // Mass leaks through the absorbing boundary, so 0 < sum < 1.
      EXPECT_GT(sum, 0.0);
      EXPECT_LT(sum, 1.0);
    } else {
      EXPECT_EQ(u, reference) << "level " << level;
    }
  }
}

TEST(Integration, ScalarMachineRunsWholePipeline) {
  // Paper Section 7: the techniques apply on scalar machines too — the
  // degenerate 1x1 grid exercises wrap-around halos as local copies.
  Execution exec =
      build(kernels::kProblem9, 4, simpi::MachineConfig{.pe_rows = 1,
                                                        .pe_cols = 1},
            Bindings{}.set("N", 16), {"T"});
  exec.set_array("U", [](int i, int j, int) { return std::sin(i + 2.0 * j); });
  auto stats = exec.run(1);
  EXPECT_EQ(stats.machine.messages_sent, 0u);
  EXPECT_GT(stats.machine.intra_copy_bytes, 0u);  // wrap halos
  auto t = exec.get_array("T");
  double sum = 0.0;
  for (double v : t) sum += v;
  EXPECT_TRUE(std::isfinite(sum));
}

TEST(Integration, MixedStencilAndPointwiseProgram) {
  // Multi-statement program mixing stencil and pointwise operations with
  // several live-out arrays: checks interleaved grouping and fusion.
  const char* src =
      "INTEGER N\n"
      "REAL U(N,N), V(N,N), T(N,N), W(N,N)\n"
      "V = 2.0 * U\n"
      "T = CSHIFT(V,+1,1) + CSHIFT(V,-1,1)\n"
      "W = T + V\n"
      "W = W / 2.0\n";
  const int n = 8;
  std::vector<double> reference;
  for (int level : {0, 2, 4}) {
    Execution exec = build(src, level, simpi::MachineConfig{},
                           Bindings{}.set("N", n), {"W"});
    exec.set_array("U", [](int i, int j, int) { return i + 0.5 * j; });
    exec.run(1);
    auto w = exec.get_array("W");
    if (reference.empty()) {
      auto u = [](int i, int j) { return i + 0.5 * j; };
      auto wrap = [n](int g) { return (g - 1 + n) % n + 1; };
      for (int j = 1; j <= n; ++j) {
        for (int i = 1; i <= n; ++i) {
          double v = 2.0 * u(i, j);
          double t = 2.0 * u(wrap(i + 1), j) + 2.0 * u(wrap(i - 1), j);
          ASSERT_NEAR(w[static_cast<std::size_t>(i - 1) +
                        static_cast<std::size_t>(j - 1) * n],
                      (t + v) / 2.0, 1e-9);
        }
      }
      reference = w;
    } else {
      EXPECT_EQ(w, reference) << "level " << level;
    }
  }
}

TEST(Integration, LoopVariableSectionBounds) {
  // Section bounds may reference the DO variable; the executor
  // re-evaluates nest bounds each iteration.  Copies row K of B into
  // row K of A, one row per loop iteration.
  const char* src =
      "INTEGER N, K\n"
      "REAL A(N,N), B(N,N)\n"
      "DO K = 2, N\n"
      "  A(K:K,1:N) = B(K:K,1:N) + A(K-1:K-1,1:N)\n"
      "ENDDO\n";
  const int n = 6;
  for (int level : {0, 4}) {
    Execution exec = build(src, level, simpi::MachineConfig{},
                           Bindings{}.set("N", n), {"A"});
    exec.set_array("A", [](int i, int j, int) { return i == 1 ? j : 0.0; });
    exec.set_array("B", [](int i, int j, int) { return i * 100.0 + j; });
    exec.run(1);
    auto a = exec.get_array("A");
    // Row K accumulates: A(K,j) = B(K,j) + A(K-1,j), seeded by row 1 = j.
    for (int j = 1; j <= n; ++j) {
      double expect = j;
      for (int i = 2; i <= n; ++i) {
        expect += i * 100.0 + j;
        ASSERT_NEAR(a[static_cast<std::size_t>(i - 1) +
                      static_cast<std::size_t>(j - 1) * n],
                    expect, 1e-9)
            << "level " << level << " (" << i << "," << j << ")";
      }
    }
  }
}

TEST(Integration, DeepTimeLoopWithConditionalOutput) {
  // Control flow around the stencil: every 2nd step the result is also
  // accumulated; the offset-array pass must stay correct across the
  // IF inside the DO.
  const char* src =
      "INTEGER N, NSTEPS, K\n"
      "REAL U(N,N), T(N,N), ACC(N,N)\n"
      "DO K = 1, NSTEPS\n"
      "  T = 0.5 * (CSHIFT(U,+1,1) + CSHIFT(U,-1,1))\n"
      "  U = T\n"
      "  IF (K > 2) THEN\n"
      "    ACC = ACC + U\n"
      "  ENDIF\n"
      "ENDDO\n";
  const int n = 8;
  std::vector<double> reference;
  for (int level : {0, 4}) {
    Execution exec = build(src, level, simpi::MachineConfig{},
                           Bindings{}.set("N", n).set("NSTEPS", 5),
                           {"U", "ACC"});
    exec.set_array("U", [](int i, int j, int) { return i * j * 0.25; });
    exec.set_array("ACC", [](int, int, int) { return 0.0; });
    exec.run(1);
    auto acc = exec.get_array("ACC");
    if (reference.empty()) {
      reference = acc;
      double sum = 0.0;
      for (double v : acc) sum += v;
      EXPECT_NE(sum, 0.0);
    } else {
      EXPECT_EQ(acc, reference);
    }
  }
}

}  // namespace
}  // namespace hpfsc

#include "driver/compiler.hpp"

#include <gtest/gtest.h>

#include "driver/paper_kernels.hpp"

namespace hpfsc {
namespace {

TEST(Compiler, CompilesProblem9AtEveryLevel) {
  Compiler compiler;
  for (int level = 0; level <= 4; ++level) {
    CompilerOptions opts = CompilerOptions::level(level);
    opts.passes.offset.live_out = {"T"};
    CompiledProgram p = compiler.compile(kernels::kProblem9, opts);
    EXPECT_FALSE(p.program.ops.empty()) << "level " << level;
    EXPECT_FALSE(p.listings.empty());
    EXPECT_EQ(p.listings.front().phase, "normalize");
  }
}

TEST(Compiler, ListingsMatchEnabledPhases) {
  Compiler compiler;
  CompilerOptions opts = CompilerOptions::level(4);
  opts.passes.offset.live_out = {"T"};
  CompiledProgram p = compiler.compile(kernels::kProblem9, opts);
  std::vector<std::string> phases;
  for (const auto& l : p.listings) phases.push_back(l.phase);
  EXPECT_EQ(phases, (std::vector<std::string>{
                        "normalize", "offset-arrays", "context-partitioning",
                        "communication-unioning", "scalarization",
                        "memory-optimization"}));
  CompiledProgram p0 =
      compiler.compile(kernels::kProblem9, CompilerOptions::level(0));
  phases.clear();
  for (const auto& l : p0.listings) phases.push_back(l.phase);
  EXPECT_EQ(phases,
            (std::vector<std::string>{"normalize", "scalarization"}));
}

TEST(Compiler, XlhpfModeSkipsOptimizations) {
  Compiler compiler;
  CompiledProgram p =
      compiler.compile(kernels::kProblem9, CompilerOptions::xlhpf_like());
  auto comm = p.program.comm_summary();
  EXPECT_EQ(comm.overlap_shifts, 0);
  EXPECT_EQ(comm.full_shifts, 8);
  ASSERT_EQ(p.listings.size(), 1u);
  EXPECT_EQ(p.listings[0].phase, "normalize");
}

TEST(Compiler, SyntaxErrorThrowsCompileError) {
  Compiler compiler;
  try {
    (void)compiler.compile("T = = B\n");
    FAIL() << "expected CompileError";
  } catch (const CompileError& e) {
    EXPECT_NE(std::string(e.what()).find("error"), std::string::npos);
  }
}

TEST(Compiler, SemanticErrorThrowsCompileError) {
  Compiler compiler;
  EXPECT_THROW((void)compiler.compile("T = U\n"), CompileError);
}

TEST(Compiler, NormalizeErrorThrowsCompileError) {
  Compiler compiler;
  EXPECT_THROW((void)compiler.compile(
                   "INTEGER N\nREAL A(N,N), B(N,N)\n"
                   "A(2:N-1,2:N-1) = B(1:N-1,2:N-1)\n"),
               CompileError);
}

TEST(Compiler, ProcessorsDirectiveSurfaces) {
  Compiler compiler;
  CompiledProgram p = compiler.compile(
      "!HPF$ PROCESSORS P(2,2)\n"
      "INTEGER N\nREAL U(N,N), T(N,N)\n"
      "T = U\n");
  ASSERT_TRUE(p.processors.has_value());
  EXPECT_EQ(*p.processors, (std::pair{2, 2}));
}

TEST(Compiler, WarningsSurfaceWithoutFailing) {
  Compiler compiler;
  CompiledProgram p = compiler.compile(
      "!HPF$ TEMPLATE T0(100)\n"
      "INTEGER N\nREAL U(N,N), T(N,N)\nT = U\n");
  EXPECT_NE(p.diagnostics.find("warning"), std::string::npos);
}

TEST(Compiler, NormalFormInputAcceptedDirectly) {
  // The paper's Figure 4 (already-normalized CM Fortran output) is a
  // valid input program.
  Compiler compiler;
  CompilerOptions opts = CompilerOptions::level(4);
  opts.passes.offset.live_out = {"DST"};
  CompiledProgram p = compiler.compile(
      "INTEGER N\n"
      "REAL C1, C2, C3, C4, C5\n"
      "REAL SRC(N,N), DST(N,N), TMP1(N,N), TMP2(N,N), TMP3(N,N), "
      "TMP4(N,N)\n"
      "ALLOCATE TMP1, TMP2, TMP3, TMP4\n"
      "TMP1 = CSHIFT(SRC, SHIFT=-1, DIM=1)\n"
      "TMP2 = CSHIFT(SRC, SHIFT=-1, DIM=2)\n"
      "TMP3 = CSHIFT(SRC, SHIFT=+1, DIM=1)\n"
      "TMP4 = CSHIFT(SRC, SHIFT=+1, DIM=2)\n"
      "DST(2:N-1,2:N-1) = C1 * TMP1(2:N-1,2:N-1)  &\n"
      "                 + C2 * TMP2(2:N-1,2:N-1)  &\n"
      "                 + C3 * SRC(2:N-1,2:N-1)   &\n"
      "                 + C4 * TMP3(2:N-1,2:N-1)  &\n"
      "                 + C5 * TMP4(2:N-1,2:N-1)\n"
      "DEALLOCATE TMP1, TMP2, TMP3, TMP4\n",
      opts);
  auto comm = p.program.comm_summary();
  EXPECT_EQ(comm.overlap_shifts, 4);
  EXPECT_EQ(comm.full_shifts, 0);
}

}  // namespace
}  // namespace hpfsc

// Data-movement tracing and the overlap-state renderer (the textual
// analogue of the paper's Figures 5 and 7-10).
#include "simpi/trace.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "simpi/machine.hpp"
#include "simpi/shift_ops.hpp"

namespace simpi {
namespace {

DistArrayDesc desc_2d(int n, int halo) {
  DistArrayDesc d;
  d.name = "SRC";
  d.rank = 2;
  d.extent = {n, n, 1};
  d.dist = {DistKind::Block, DistKind::Block, DistKind::Collapsed};
  d.halo.lo = {halo, halo, 0};
  d.halo.hi = {halo, halo, 0};
  return d;
}

std::vector<double> iota_data(int n) {
  std::vector<double> v(static_cast<std::size_t>(n) * n);
  std::iota(v.begin(), v.end(), 1.0);
  return v;
}

TEST(Trace, DisabledByDefault) {
  Machine m(MachineConfig{.pe_rows = 2, .pe_cols = 2});
  int id = m.create_array(desc_2d(8, 1));
  m.scatter(id, iota_data(8));
  m.run([&](Pe& pe) { overlap_shift(pe, id, +1, 0); });
  EXPECT_TRUE(m.take_trace().empty());
}

TEST(Trace, OverlapShiftRecordsOneEventPerReceiver) {
  Machine m(MachineConfig{.pe_rows = 2, .pe_cols = 2});
  m.enable_tracing();
  int id = m.create_array(desc_2d(8, 1));
  m.scatter(id, iota_data(8));
  m.run([&](Pe& pe) { overlap_shift(pe, id, +1, 0); });
  auto events = m.take_trace();
  ASSERT_EQ(events.size(), 4u);  // one halo fill per PE
  for (const TransferEvent& e : events) {
    EXPECT_FALSE(e.intra);
    EXPECT_FALSE(e.boundary_fill);
    EXPECT_EQ(e.array, "SRC");
    // The filled region is a single row strip.
    EXPECT_EQ(e.region.lo[0], e.region.hi[0]);
  }
  // take_trace drains.
  EXPECT_TRUE(m.take_trace().empty());
}

TEST(Trace, FullShiftRecordsIntraAndInterEvents) {
  Machine m(MachineConfig{.pe_rows = 2, .pe_cols = 2});
  m.enable_tracing();
  int src = m.create_array(desc_2d(8, 0));
  DistArrayDesc dd = desc_2d(8, 0);
  dd.name = "DST";
  int dst = m.create_array(dd);
  m.scatter(src, iota_data(8));
  m.run([&](Pe& pe) { full_cshift(pe, dst, src, +1, 0); });
  auto events = m.take_trace();
  int intra = 0;
  int inter = 0;
  for (const TransferEvent& e : events) {
    (e.intra ? intra : inter) += 1;
    EXPECT_EQ(e.array, "DST");
  }
  EXPECT_EQ(intra, 4);  // the bulk local copy on each PE
  EXPECT_EQ(inter, 4);  // one boundary strip per PE
}

TEST(Trace, EventStringRendering) {
  TransferEvent e;
  e.from_pe = 0;
  e.to_pe = 1;
  e.region = Region{{5, 1, 1}, {5, 4, 1}};
  e.array = "U";
  EXPECT_EQ(e.str(2), "PE0 -> PE1: U[5:5, 1:4]");
  e.intra = true;
  e.from_pe = e.to_pe = 2;
  EXPECT_EQ(e.str(2), "PE2 local copy: U[5:5, 1:4]");
  e.intra = false;
  e.boundary_fill = true;
  EXPECT_EQ(e.str(2), "PE2 boundary-fill: U[5:5, 1:4]");
}

TEST(RenderOverlapState, ShowsFilledAndStaleCells) {
  const int n = 8;
  Machine m(MachineConfig{.pe_rows = 2, .pe_cols = 2});
  int id = m.create_array(desc_2d(n, 1));
  auto in = iota_data(n);
  m.scatter(id, in);
  // Only the dim-0 shifts: row halos filled, column halos stale.
  m.run([&](Pe& pe) {
    overlap_shift(pe, id, -1, 0);
    overlap_shift(pe, id, +1, 0);
  });
  std::string art = render_overlap_state(m, id, in);
  // Per PE: 6x6 stored grid; first and last rows are halo rows whose
  // interior 4 columns are filled ('#') and corners stale ('.').
  EXPECT_NE(art.find("PE0 (owns [1:4, 1:4])"), std::string::npos) << art;
  EXPECT_NE(art.find(".####."), std::string::npos);  // filled row halo
  EXPECT_NE(art.find(".oooo."), std::string::npos);  // stale column halo
}

TEST(RenderOverlapState, CornersFilledAfterRsdShifts) {
  const int n = 8;
  Machine m(MachineConfig{.pe_rows = 2, .pe_cols = 2});
  int id = m.create_array(desc_2d(n, 1));
  auto in = iota_data(n);
  m.scatter(id, in);
  RsdExtension rsd;
  rsd.lo = {1, 0, 0};
  rsd.hi = {1, 0, 0};
  m.run([&](Pe& pe) {
    overlap_shift(pe, id, -1, 0);
    overlap_shift(pe, id, +1, 0);
    overlap_shift(pe, id, -1, 1, rsd);
    overlap_shift(pe, id, +1, 1, rsd);
  });
  std::string art = render_overlap_state(m, id, in);
  // Every overlap cell is now correct: no stale marks anywhere
  // (Figure 10's fully-populated overlap areas).
  EXPECT_EQ(art.find('.'), std::string::npos) << art;
  EXPECT_NE(art.find("######"), std::string::npos);
}

}  // namespace
}  // namespace simpi

// Data-movement tracing and the overlap-state renderer (the textual
// analogue of the paper's Figures 5 and 7-10).
#include "simpi/trace.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "simpi/machine.hpp"
#include "simpi/shift_ops.hpp"

namespace simpi {
namespace {

DistArrayDesc desc_2d(int n, int halo) {
  DistArrayDesc d;
  d.name = "SRC";
  d.rank = 2;
  d.extent = {n, n, 1};
  d.dist = {DistKind::Block, DistKind::Block, DistKind::Collapsed};
  d.halo.lo = {halo, halo, 0};
  d.halo.hi = {halo, halo, 0};
  return d;
}

std::vector<double> iota_data(int n) {
  std::vector<double> v(static_cast<std::size_t>(n) * n);
  std::iota(v.begin(), v.end(), 1.0);
  return v;
}

TEST(Trace, DisabledByDefault) {
  Machine m(MachineConfig{.pe_rows = 2, .pe_cols = 2});
  int id = m.create_array(desc_2d(8, 1));
  m.scatter(id, iota_data(8));
  m.run([&](Pe& pe) { overlap_shift(pe, id, +1, 0); });
  EXPECT_TRUE(m.take_trace().empty());
}

TEST(Trace, OverlapShiftRecordsOneEventPerReceiver) {
  Machine m(MachineConfig{.pe_rows = 2, .pe_cols = 2});
  m.enable_tracing();
  int id = m.create_array(desc_2d(8, 1));
  m.scatter(id, iota_data(8));
  m.run([&](Pe& pe) { overlap_shift(pe, id, +1, 0); });
  auto events = m.take_trace();
  ASSERT_EQ(events.size(), 4u);  // one halo fill per PE
  for (const TransferEvent& e : events) {
    EXPECT_FALSE(e.intra);
    EXPECT_FALSE(e.boundary_fill);
    EXPECT_EQ(e.array, "SRC");
    // The filled region is a single row strip.
    EXPECT_EQ(e.region.lo[0], e.region.hi[0]);
  }
  // take_trace drains.
  EXPECT_TRUE(m.take_trace().empty());
}

TEST(Trace, FullShiftRecordsIntraAndInterEvents) {
  Machine m(MachineConfig{.pe_rows = 2, .pe_cols = 2});
  m.enable_tracing();
  int src = m.create_array(desc_2d(8, 0));
  DistArrayDesc dd = desc_2d(8, 0);
  dd.name = "DST";
  int dst = m.create_array(dd);
  m.scatter(src, iota_data(8));
  m.run([&](Pe& pe) { full_cshift(pe, dst, src, +1, 0); });
  auto events = m.take_trace();
  int intra = 0;
  int inter = 0;
  for (const TransferEvent& e : events) {
    (e.intra ? intra : inter) += 1;
    EXPECT_EQ(e.array, "DST");
  }
  EXPECT_EQ(intra, 4);  // the bulk local copy on each PE
  EXPECT_EQ(inter, 4);  // one boundary strip per PE
}

TEST(Trace, EventStringRendering) {
  TransferEvent e;
  e.from_pe = 0;
  e.to_pe = 1;
  e.region = Region{{5, 1, 1}, {5, 4, 1}};
  e.array = "U";
  EXPECT_EQ(e.str(2), "PE0 -> PE1: U[5:5, 1:4]");
  e.intra = true;
  e.from_pe = e.to_pe = 2;
  EXPECT_EQ(e.str(2), "PE2 local copy: U[5:5, 1:4]");
  e.intra = false;
  e.boundary_fill = true;
  EXPECT_EQ(e.str(2), "PE2 boundary-fill: U[5:5, 1:4]");
}

TEST(Trace, EventStringRank1AndRank3Regions) {
  TransferEvent e;
  e.from_pe = 1;
  e.to_pe = 0;
  e.region = Region{{5, 1, 1}, {5, 4, 2}};
  e.array = "V";
  // Rank-1: a single dimension prints, degenerate (5:5) kept verbatim.
  EXPECT_EQ(e.str(1), "PE1 -> PE0: V[5:5]");
  EXPECT_EQ(e.str(3), "PE1 -> PE0: V[5:5, 1:4, 1:2]");
}

TEST(Trace, Rank1ShiftRecordsDegenerateRegions) {
  const int n = 8;
  Machine m(MachineConfig{.pe_rows = 2, .pe_cols = 1});
  m.enable_tracing();
  DistArrayDesc d;
  d.name = "V";
  d.rank = 1;
  d.extent = {n, 1, 1};
  d.dist = {DistKind::Block, DistKind::Collapsed, DistKind::Collapsed};
  d.halo.lo = {1, 0, 0};
  d.halo.hi = {1, 0, 0};
  int id = m.create_array(d);
  std::vector<double> data(n);
  std::iota(data.begin(), data.end(), 1.0);
  m.scatter(id, data);
  m.run([&](Pe& pe) { overlap_shift(pe, id, +1, 0); });
  auto events = m.take_trace();
  ASSERT_EQ(events.size(), 2u);  // one single-element halo fill per PE
  for (const TransferEvent& e : events) {
    EXPECT_FALSE(e.intra);  // wrap partner is always the other PE
    EXPECT_EQ(e.region.lo[0], e.region.hi[0]);
    EXPECT_EQ(e.str(1), "PE" + std::to_string(e.from_pe) + " -> PE" +
                            std::to_string(e.to_pe) + ": V[" +
                            std::to_string(e.region.lo[0]) + ":" +
                            std::to_string(e.region.lo[0]) + "]");
  }
}

TEST(Trace, EndOffShiftRecordsBoundaryFillEvents) {
  Machine m(MachineConfig{.pe_rows = 2, .pe_cols = 2});
  m.enable_tracing();
  int id = m.create_array(desc_2d(8, 1));
  m.scatter(id, iota_data(8));
  // EOSHIFT by +1 in dim 1: readers at own_hi+1.  The bottom PE row's
  // halo (global row 9) falls outside the array -> boundary fill; the
  // top PE row receives a real message from its neighbor.
  m.run([&](Pe& pe) {
    overlap_shift(pe, id, +1, 0, {}, ShiftKind::EndOff, -1.0);
  });
  auto events = m.take_trace();
  ASSERT_EQ(events.size(), 4u);
  int fills = 0;
  int inter = 0;
  for (const TransferEvent& e : events) {
    if (e.boundary_fill) {
      ++fills;
      EXPECT_EQ(e.from_pe, -1);  // no sender
      EXPECT_FALSE(e.intra);
      EXPECT_EQ(e.region.lo[0], 9);
      EXPECT_EQ(e.region.hi[0], 9);
      EXPECT_EQ(e.str(2).find("PE" + std::to_string(e.to_pe) +
                              " boundary-fill: SRC[9:9"),
                0u)
          << e.str(2);
    } else {
      ++inter;
      EXPECT_NE(e.from_pe, e.to_pe);
    }
  }
  EXPECT_EQ(fills, 2);
  EXPECT_EQ(inter, 2);
}

TEST(Trace, SinglePeWrapIsALocalCopy) {
  const int n = 4;
  Machine m(MachineConfig{.pe_rows = 1, .pe_cols = 1});
  m.enable_tracing();
  int id = m.create_array(desc_2d(n, 1));
  m.scatter(id, iota_data(n));
  m.run([&](Pe& pe) { overlap_shift(pe, id, +1, 0); });
  auto events = m.take_trace();
  // The circular wrap partner is the PE itself: one intra copy, zero
  // messages.
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].intra);
  EXPECT_FALSE(events[0].boundary_fill);
  EXPECT_EQ(events[0].from_pe, 0);
  EXPECT_EQ(events[0].to_pe, 0);
  EXPECT_EQ(events[0].str(2), "PE0 local copy: SRC[5:5, 1:4]");
}

TEST(RenderOverlapState, SinglePeMachineFillsFromItself) {
  const int n = 4;
  Machine m(MachineConfig{.pe_rows = 1, .pe_cols = 1});
  int id = m.create_array(desc_2d(n, 1));
  auto in = iota_data(n);
  m.scatter(id, in);
  RsdExtension rsd;
  rsd.lo = {1, 0, 0};
  rsd.hi = {1, 0, 0};
  m.run([&](Pe& pe) {
    overlap_shift(pe, id, -1, 0);
    overlap_shift(pe, id, +1, 0);
    overlap_shift(pe, id, -1, 1, rsd);
    overlap_shift(pe, id, +1, 1, rsd);
  });
  std::string art = render_overlap_state(m, id, in);
  // One diagram, owning the whole array, every wrapped overlap cell
  // correct: 4x4 'o' interior framed by '#'.
  EXPECT_NE(art.find("PE0 (owns [1:4, 1:4])"), std::string::npos) << art;
  EXPECT_EQ(art.find("PE1"), std::string::npos);
  EXPECT_EQ(art.find('.'), std::string::npos) << art;
  EXPECT_NE(art.find("######"), std::string::npos);
  EXPECT_NE(art.find("#oooo#"), std::string::npos);
}

TEST(RenderOverlapState, StaleHalosBeforeAnyShift) {
  const int n = 8;
  Machine m(MachineConfig{.pe_rows = 2, .pe_cols = 2});
  int id = m.create_array(desc_2d(n, 1));
  auto in = iota_data(n);
  m.scatter(id, in);
  std::string art = render_overlap_state(m, id, in);
  // Nothing has filled the overlap areas: every halo cell is stale
  // (zero-initialized storage vs. the 1..64 ground truth).
  EXPECT_NE(art.find("......"), std::string::npos) << art;
  EXPECT_NE(art.find(".oooo."), std::string::npos) << art;
  EXPECT_EQ(art.find('#'), std::string::npos) << art;
}

TEST(RenderOverlapState, ShowsFilledAndStaleCells) {
  const int n = 8;
  Machine m(MachineConfig{.pe_rows = 2, .pe_cols = 2});
  int id = m.create_array(desc_2d(n, 1));
  auto in = iota_data(n);
  m.scatter(id, in);
  // Only the dim-0 shifts: row halos filled, column halos stale.
  m.run([&](Pe& pe) {
    overlap_shift(pe, id, -1, 0);
    overlap_shift(pe, id, +1, 0);
  });
  std::string art = render_overlap_state(m, id, in);
  // Per PE: 6x6 stored grid; first and last rows are halo rows whose
  // interior 4 columns are filled ('#') and corners stale ('.').
  EXPECT_NE(art.find("PE0 (owns [1:4, 1:4])"), std::string::npos) << art;
  EXPECT_NE(art.find(".####."), std::string::npos);  // filled row halo
  EXPECT_NE(art.find(".oooo."), std::string::npos);  // stale column halo
}

TEST(RenderOverlapState, CornersFilledAfterRsdShifts) {
  const int n = 8;
  Machine m(MachineConfig{.pe_rows = 2, .pe_cols = 2});
  int id = m.create_array(desc_2d(n, 1));
  auto in = iota_data(n);
  m.scatter(id, in);
  RsdExtension rsd;
  rsd.lo = {1, 0, 0};
  rsd.hi = {1, 0, 0};
  m.run([&](Pe& pe) {
    overlap_shift(pe, id, -1, 0);
    overlap_shift(pe, id, +1, 0);
    overlap_shift(pe, id, -1, 1, rsd);
    overlap_shift(pe, id, +1, 1, rsd);
  });
  std::string art = render_overlap_state(m, id, in);
  // Every overlap cell is now correct: no stale marks anywhere
  // (Figure 10's fully-populated overlap areas).
  EXPECT_EQ(art.find('.'), std::string::npos) << art;
  EXPECT_NE(art.find("######"), std::string::npos);
}

}  // namespace
}  // namespace simpi

// WaitStats arithmetic/JSON and the machine's wall-clock wait-state
// attribution: blocked recvs are charged (and bucketed by dimension and
// direction), blocked barriers are charged, and the whole subsystem
// reads no clocks when wait timing is off.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "simpi/machine.hpp"
#include "simpi/stats.hpp"

namespace simpi {
namespace {

MachineConfig cfg(int rows, int cols) {
  MachineConfig c;
  c.pe_rows = rows;
  c.pe_cols = cols;
  return c;
}

WaitStats sample_wait(std::uint64_t base) {
  WaitStats w;
  w.recv_wait_ns = base;
  w.barrier_wait_ns = base * 2;
  w.pool_wait_ns = base * 3;
  w.active_ns = base * 4;
  w.recv_dim_dir[0][0] = base / 2;
  w.recv_dim_dir[1][1] = base / 4;
  return w;
}

TEST(WaitStats, PlusEqualsSumsEveryBucket) {
  WaitStats a = sample_wait(100);
  WaitStats b = sample_wait(40);
  a += b;
  EXPECT_EQ(a.recv_wait_ns, 140u);
  EXPECT_EQ(a.barrier_wait_ns, 280u);
  EXPECT_EQ(a.pool_wait_ns, 420u);
  EXPECT_EQ(a.active_ns, 560u);
  EXPECT_EQ(a.recv_dim_dir[0][0], 70u);
  EXPECT_EQ(a.recv_dim_dir[1][1], 35u);
  EXPECT_EQ(a.recv_dim_dir[0][1], 0u);
}

TEST(WaitStats, DeltaSinceInvertsPlusEquals) {
  WaitStats before = sample_wait(100);
  WaitStats after = sample_wait(100);
  after += sample_wait(60);
  WaitStats d = after.delta_since(before);
  EXPECT_EQ(d.recv_wait_ns, 60u);
  EXPECT_EQ(d.barrier_wait_ns, 120u);
  EXPECT_EQ(d.recv_dim_dir[0][0], 30u);
  EXPECT_EQ(d.recv_dim_dir[1][1], 15u);
}

TEST(WaitStats, EmptyIgnoresDimDirDetailOnlyWhenTotalsAreZero) {
  EXPECT_TRUE(WaitStats{}.empty());
  WaitStats w;
  w.pool_wait_ns = 1;
  EXPECT_FALSE(w.empty());
  w = WaitStats{};
  w.active_ns = 1;
  EXPECT_FALSE(w.empty());
}

TEST(WaitStats, ToJsonCarriesTotalsAndDimDirMatrix) {
  WaitStats w = sample_wait(8);
  EXPECT_EQ(w.to_json(),
            "{\"recv_wait_ns\":8,\"barrier_wait_ns\":16,"
            "\"pool_wait_ns\":24,\"active_ns\":32,"
            "\"recv_by_dim\":[[4,0],[0,2],[0,0]]}");
}

TEST(WaitStats, PeStatsJsonEmitsWaitObjectOnlyWhenNonEmpty) {
  PeStats s;
  EXPECT_EQ(s.to_json().find("\"wait\""), std::string::npos);
  s.wait.recv_wait_ns = 5;
  const std::string json = s.to_json();
  // v3 marker with the wait object appended after the stable v1/v2 keys.
  EXPECT_NE(json.find("\"schema_version\":3"), std::string::npos);
  EXPECT_NE(json.find("\"wait\":{\"recv_wait_ns\":5"), std::string::npos);
  EXPECT_EQ(json.rfind("{\"messages_sent\":0,", 0), 0u);
}

TEST(WaitStats, MachineStatsSumsWaitAcrossPes) {
  MachineStats m;
  PeStats a;
  a.wait = sample_wait(10);
  PeStats b;
  b.wait = sample_wait(6);
  m.accumulate(a);
  m.accumulate(b);
  EXPECT_EQ(m.wait.recv_wait_ns, 16u);
  EXPECT_EQ(m.wait.recv_dim_dir[0][0], 8u);
}

// A recv that blocks (the sender delays) is charged to recv_wait_ns and
// to its (dim, dir) bucket; a recv whose message is already queued reads
// the fast path and charges (almost) nothing in comparison.
TEST(WaitMachine, BlockedRecvIsChargedAndBucketed) {
  Machine m(cfg(1, 2));
  m.run([](Pe& pe) {
    if (pe.id() == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      std::vector<double> msg{1.0};
      pe.send(0, msg);
    } else {
      auto got = pe.recv(1, 1, 1);  // dim 1 (cols), high direction
      ASSERT_EQ(got.size(), 1u);
    }
  });
  const auto per_pe = m.per_pe_stats();
  ASSERT_EQ(per_pe.size(), 2u);
  const WaitStats& w = per_pe[0].wait;
  // Blocked for ~5ms; allow generous scheduling slack but require the
  // bulk of the sleep to be attributed.
  EXPECT_GE(w.recv_wait_ns, 1'000'000u);
  EXPECT_EQ(w.recv_dim_dir[1][1], w.recv_wait_ns);
  EXPECT_EQ(w.recv_dim_dir[0][0], 0u);
  // The sender never blocked on a recv.
  EXPECT_EQ(per_pe[1].wait.recv_wait_ns, 0u);
}

// An undirected recv counts in the total but no (dim, dir) bucket.
TEST(WaitMachine, UndirectedRecvOnlyCountsInTotal) {
  Machine m(cfg(1, 2));
  m.run([](Pe& pe) {
    if (pe.id() == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
      std::vector<double> msg{1.0};
      pe.send(0, msg);
    } else {
      (void)pe.recv(1);
    }
  });
  const WaitStats& w = m.per_pe_stats()[0].wait;
  EXPECT_GE(w.recv_wait_ns, 500'000u);
  for (std::size_t d = 0; d < kCommDims; ++d) {
    for (std::size_t s = 0; s < kCommDirs; ++s) {
      EXPECT_EQ(w.recv_dim_dir[d][s], 0u);
    }
  }
}

// PEs that reach the barrier early are charged barrier wait while the
// straggler (the last arriver) is charged none.
TEST(WaitMachine, BarrierChargesEarlyArrivers) {
  Machine m(cfg(2, 2));
  m.run([](Pe& pe) {
    if (pe.id() == 3) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    pe.barrier();
  });
  const auto per_pe = m.per_pe_stats();
  EXPECT_EQ(per_pe[3].wait.barrier_wait_ns, 0u);
  for (int id = 0; id < 3; ++id) {
    EXPECT_GE(per_pe[static_cast<std::size_t>(id)].wait.barrier_wait_ns,
              1'000'000u)
        << "pe " << id;
  }
}

// Every PE's pool handoff (publish -> pickup, finish -> run end) and
// active window is accounted, and pool_wait + active covers the run.
TEST(WaitMachine, PoolHandoffAndActiveWindowAreAccounted) {
  Machine m(cfg(1, 2));
  m.run([](Pe& pe) {
    if (pe.id() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(4));
    }
  });
  const auto per_pe = m.per_pe_stats();
  // The busy PE's active window contains its sleep.
  EXPECT_GE(per_pe[0].wait.active_ns, 2'000'000u);
  // The idle PE spent the tail of the run parked (straggler time).
  EXPECT_GE(per_pe[1].wait.pool_wait_ns, 1'000'000u);
  for (const PeStats& s : per_pe) {
    EXPECT_GT(s.wait.pool_wait_ns + s.wait.active_ns, 0u);
  }
}

// With wait timing off, the blocking points read no clocks and the wait
// block stays empty even across genuinely blocked operations.
TEST(WaitMachine, TimingOffLeavesWaitEmpty) {
  Machine m(cfg(1, 2));
  m.set_wait_timing(false);
  EXPECT_FALSE(m.wait_timing());
  m.run([](Pe& pe) {
    if (pe.id() == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
      std::vector<double> msg{1.0};
      pe.send(0, msg);
    } else {
      (void)pe.recv(1, 0, 0);
    }
    pe.barrier();
  });
  for (const PeStats& s : m.per_pe_stats()) {
    EXPECT_TRUE(s.wait.empty()) << s.to_json();
  }
  // Flipping it back re-arms the accounting for the next run.
  m.set_wait_timing(true);
  m.clear_stats();
  m.run([](Pe& pe) {
    if (pe.id() == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
      std::vector<double> msg{1.0};
      pe.send(0, msg);
    } else {
      (void)pe.recv(1, 0, 0);
    }
  });
  EXPECT_GE(m.per_pe_stats()[0].wait.recv_wait_ns, 500'000u);
}

// clear_stats() resets the wait block along with the counters, which is
// what makes Execution::run's per-run attribution work.
TEST(WaitMachine, ClearStatsResetsWait) {
  Machine m(cfg(1, 2));
  m.run([](Pe& pe) {
    if (pe.id() == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      std::vector<double> msg{1.0};
      pe.send(0, msg);
    } else {
      (void)pe.recv(1);
    }
  });
  EXPECT_FALSE(m.stats().wait.empty());
  m.clear_stats();
  EXPECT_TRUE(m.stats().wait.empty());
}

}  // namespace
}  // namespace simpi

#include "simpi/dist_array.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace simpi {
namespace {

DistArrayDesc desc_2d(int n, int halo = 1) {
  DistArrayDesc d;
  d.name = "A";
  d.rank = 2;
  d.extent = {n, n, 1};
  d.dist = {DistKind::Block, DistKind::Block, DistKind::Collapsed};
  d.halo.lo = {halo, halo, 0};
  d.halo.hi = {halo, halo, 0};
  return d;
}

TEST(DistArrayDesc, GridMappingAssignsBlockDimsInOrder) {
  ProcGrid grid(2, 2);
  auto mapping = desc_2d(8).grid_mapping(grid);
  EXPECT_EQ(mapping[0], 0);
  EXPECT_EQ(mapping[1], 1);
  EXPECT_EQ(mapping[2], -1);
}

TEST(DistArrayDesc, CollapsedDimSkipsGridDim) {
  ProcGrid grid(4, 1);
  DistArrayDesc d = desc_2d(8);
  d.dist[1] = DistKind::Collapsed;
  auto mapping = d.grid_mapping(grid);
  EXPECT_EQ(mapping[0], 0);
  EXPECT_EQ(mapping[1], -1);
}

TEST(DistArrayDesc, RejectsUnusedGridDimWithExtent) {
  ProcGrid grid(2, 2);
  DistArrayDesc d = desc_2d(8);
  d.dist[1] = DistKind::Collapsed;  // only one BLOCK dim but 2x2 grid
  EXPECT_THROW((void)d.grid_mapping(grid), std::invalid_argument);
}

TEST(DistArrayDesc, GlobalElements) {
  EXPECT_EQ(desc_2d(8).global_elements(), 64u);
}

TEST(LocalGrid, OwnedRangesMatchBlockMap) {
  ProcGrid grid(2, 2);
  MemoryArena arena;
  DistArrayDesc d = desc_2d(8);
  LocalGrid g0(d, grid, grid.rank_of(0, 0), arena);
  EXPECT_EQ(g0.own_lo(0), 1);
  EXPECT_EQ(g0.own_hi(0), 4);
  EXPECT_EQ(g0.own_lo(1), 1);
  EXPECT_EQ(g0.own_hi(1), 4);
  LocalGrid g3(d, grid, grid.rank_of(1, 1), arena);
  EXPECT_EQ(g3.own_lo(0), 5);
  EXPECT_EQ(g3.own_hi(0), 8);
  EXPECT_EQ(g3.own_lo(1), 5);
  EXPECT_EQ(g3.own_hi(1), 8);
}

TEST(LocalGrid, StorageIncludesOverlapAreas) {
  ProcGrid grid(2, 2);
  MemoryArena arena;
  LocalGrid g(desc_2d(8, /*halo=*/2), grid, 0, arena);
  // 4 owned + 2 halo each side = 8 per dim.
  EXPECT_EQ(g.local_elements(), 64u);
  EXPECT_EQ(g.storage_bytes(), 64u * sizeof(double));
  EXPECT_EQ(arena.in_use(), g.storage_bytes());
}

TEST(LocalGrid, ElementAccessAndStrides) {
  ProcGrid grid(1, 1);
  MemoryArena arena;
  LocalGrid g(desc_2d(4, 1), grid, 0, arena);
  // Column-major: stride(0)==1, stride(1)==local extent of dim 0 (4+2).
  EXPECT_EQ(g.stride(0), 1);
  EXPECT_EQ(g.stride(1), 6);
  g.at({2, 3}) = 42.0;
  EXPECT_EQ(g.at({2, 3}), 42.0);
  EXPECT_EQ(*g.ptr_to({2, 3}), 42.0);
  // Halo cells are addressable.
  g.at({0, 0}) = 7.0;
  g.at({5, 5}) = 8.0;
  EXPECT_EQ(g.at({0, 0}), 7.0);
  EXPECT_EQ(g.at({5, 5}), 8.0);
}

TEST(LocalGrid, PackUnpackRoundTrip) {
  ProcGrid grid(1, 1);
  MemoryArena arena;
  LocalGrid g(desc_2d(4, 1), grid, 0, arena);
  for (int j = 1; j <= 4; ++j) {
    for (int i = 1; i <= 4; ++i) g.at({i, j}) = i * 10 + j;
  }
  Region r{{2, 1, 1}, {3, 4, 1}};
  std::vector<double> buf(r.elements(2));
  g.pack(r, buf);
  EXPECT_EQ(buf[0], 21.0);  // (2,1)
  EXPECT_EQ(buf[1], 31.0);  // (3,1) — dim 0 contiguous
  EXPECT_EQ(buf[2], 22.0);  // (2,2)

  LocalGrid h(desc_2d(4, 1), grid, 0, arena);
  h.fill(0.0);
  h.unpack(r, buf);
  for (int j = 1; j <= 4; ++j) {
    for (int i = 2; i <= 3; ++i) EXPECT_EQ(h.at({i, j}), i * 10 + j);
  }
  EXPECT_EQ(h.at({1, 1}), 0.0);
}

TEST(LocalGrid, CopyShiftedFrom) {
  ProcGrid grid(1, 1);
  MemoryArena arena;
  LocalGrid src(desc_2d(4, 1), grid, 0, arena);
  LocalGrid dst(desc_2d(4, 1), grid, 0, arena);
  for (int j = 1; j <= 4; ++j) {
    for (int i = 1; i <= 4; ++i) src.at({i, j}) = i * 10 + j;
  }
  Region r{{1, 1, 1}, {3, 4, 1}};  // dst(i,j) = src(i+1,j)
  std::size_t bytes = dst.copy_shifted_from(src, r, 0, +1);
  EXPECT_EQ(bytes, r.elements(2) * sizeof(double));
  for (int j = 1; j <= 4; ++j) {
    for (int i = 1; i <= 3; ++i) EXPECT_EQ(dst.at({i, j}), (i + 1) * 10 + j);
  }
}

TEST(LocalGrid, FillRegion) {
  ProcGrid grid(1, 1);
  MemoryArena arena;
  LocalGrid g(desc_2d(4, 1), grid, 0, arena);
  g.fill(1.0);
  g.fill_region(Region{{2, 2, 1}, {3, 3, 1}}, 9.0);
  EXPECT_EQ(g.at({2, 2}), 9.0);
  EXPECT_EQ(g.at({3, 3}), 9.0);
  EXPECT_EQ(g.at({1, 1}), 1.0);
  EXPECT_EQ(g.at({4, 4}), 1.0);
}

TEST(LocalGrid, EmptySubgridOwnsNothing) {
  // n=5 over 4 procs: block 2 -> last proc owns nothing.
  ProcGrid grid(4, 1);
  MemoryArena arena;
  DistArrayDesc d;
  d.name = "V";
  d.rank = 1;
  d.extent = {5, 1, 1};
  d.dist = {DistKind::Block, DistKind::Collapsed, DistKind::Collapsed};
  d.halo.lo = {1, 0, 0};
  d.halo.hi = {1, 0, 0};
  LocalGrid g(d, grid, grid.rank_of(3, 0), arena);
  EXPECT_FALSE(g.owns_anything());
  EXPECT_EQ(g.local_elements(), 0u);
  LocalGrid g2(d, grid, grid.rank_of(2, 0), arena);
  EXPECT_TRUE(g2.owns_anything());
  EXPECT_EQ(g2.own_lo(0), 5);
  EXPECT_EQ(g2.own_hi(0), 5);
}

TEST(LocalGrid, ChargesAndReleasesArena) {
  ProcGrid grid(1, 1);
  MemoryArena arena(0, 0);
  {
    LocalGrid g(desc_2d(4, 0), grid, 0, arena);
    EXPECT_EQ(arena.in_use(), 16u * sizeof(double));
  }
  EXPECT_EQ(arena.in_use(), 0u);
}

TEST(LocalGrid, AllocationRespectsCap) {
  ProcGrid grid(1, 1);
  MemoryArena arena(0, 100);  // far too small for 6x6 doubles
  EXPECT_THROW(LocalGrid(desc_2d(4, 1), grid, 0, arena), OutOfMemory);
}

TEST(Region, ElementsAndEmptiness) {
  Region r{{1, 1, 1}, {4, 2, 1}};
  EXPECT_EQ(r.elements(2), 8u);
  EXPECT_FALSE(r.empty(2));
  Region e{{3, 1, 1}, {2, 5, 1}};
  EXPECT_TRUE(e.empty(2));
}

}  // namespace
}  // namespace simpi

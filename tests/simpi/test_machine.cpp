#include "simpi/machine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace simpi {
namespace {

MachineConfig cfg_2x2() {
  MachineConfig c;
  c.pe_rows = 2;
  c.pe_cols = 2;
  return c;
}

DistArrayDesc desc_2d(int n, int halo = 1) {
  DistArrayDesc d;
  d.name = "A";
  d.rank = 2;
  d.extent = {n, n, 1};
  d.dist = {DistKind::Block, DistKind::Block, DistKind::Collapsed};
  d.halo.lo = {halo, halo, 0};
  d.halo.hi = {halo, halo, 0};
  return d;
}

TEST(Machine, RunsOnePerPe) {
  Machine m(cfg_2x2());
  std::atomic<int> count{0};
  m.run([&](Pe& pe) {
    EXPECT_EQ(pe.id(), pe.row() * 2 + pe.col());
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 4);
}

TEST(Machine, SendRecvRoundTrip) {
  Machine m(cfg_2x2());
  m.run([&](Pe& pe) {
    // Ring: each PE sends its id to the next, receives from previous.
    int next = (pe.id() + 1) % 4;
    int prev = (pe.id() + 3) % 4;
    std::vector<double> msg{static_cast<double>(pe.id())};
    pe.send(next, msg);
    auto got = pe.recv(prev);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], static_cast<double>(prev));
  });
}

TEST(Machine, MessagesArePairFifo) {
  Machine m(cfg_2x2());
  m.run([&](Pe& pe) {
    if (pe.id() == 0) {
      for (int k = 0; k < 5; ++k) {
        std::vector<double> msg{static_cast<double>(k)};
        pe.send(1, msg);
      }
    } else if (pe.id() == 1) {
      for (int k = 0; k < 5; ++k) {
        auto got = pe.recv(0);
        EXPECT_EQ(got[0], static_cast<double>(k));
      }
    }
  });
}

TEST(Machine, BarrierSynchronizes) {
  Machine m(cfg_2x2());
  std::atomic<int> phase1{0};
  std::atomic<bool> saw_partial{false};
  m.run([&](Pe& pe) {
    (void)pe;
    phase1.fetch_add(1);
    pe.barrier();
    if (phase1.load() != 4) saw_partial.store(true);
  });
  EXPECT_FALSE(saw_partial.load());
}

TEST(Machine, ExceptionInOnePeAbortsAll) {
  Machine m(cfg_2x2());
  EXPECT_THROW(
      m.run([&](Pe& pe) {
        if (pe.id() == 2) throw std::runtime_error("boom");
        // Other PEs block; abort must wake them.
        pe.barrier();
        pe.recv(2);
      }),
      std::runtime_error);
  EXPECT_TRUE(m.aborted());
  // The machine recovers for the next run.
  std::atomic<int> count{0};
  m.run([&](Pe& pe) {
    (void)pe;
    count.fetch_add(1);
    pe.barrier();
  });
  EXPECT_EQ(count.load(), 4);
}

TEST(Machine, OutOfMemorySurfacesFromRun) {
  MachineConfig c = cfg_2x2();
  c.per_pe_heap_bytes = 128;
  Machine m(c);
  EXPECT_THROW(m.run([&](Pe& pe) { pe.create_array(0, desc_2d(64)); }),
               OutOfMemory);
}

TEST(Machine, GatherScatterRoundTrip) {
  Machine m(cfg_2x2());
  int id = m.create_array(desc_2d(8));
  std::vector<double> global(64);
  std::iota(global.begin(), global.end(), 1.0);
  m.scatter(id, global);
  EXPECT_EQ(m.gather(id), global);
}

TEST(Machine, SetElementsUsesGlobalIndices) {
  Machine m(cfg_2x2());
  int id = m.create_array(desc_2d(4));
  m.set_elements(id, [](int i, int j, int) { return i * 100.0 + j; });
  auto global = m.gather(id);
  // Column-major: element (i,j) at (i-1) + (j-1)*4.
  EXPECT_EQ(global[0], 101.0);   // (1,1)
  EXPECT_EQ(global[3], 401.0);   // (4,1)
  EXPECT_EQ(global[15], 404.0);  // (4,4)
}

TEST(Machine, ArraySlotsLifecycle) {
  Machine m(cfg_2x2());
  int a = m.create_array(desc_2d(4));
  int b = m.create_array(desc_2d(4));
  EXPECT_NE(a, b);
  m.free_array(a);
  int c = m.create_array(desc_2d(4));
  EXPECT_EQ(c, a);  // slot reuse
  m.run([&](Pe& pe) {
    EXPECT_TRUE(pe.has_array(b));
    EXPECT_THROW((void)pe.grid(99), std::logic_error);
  });
}

TEST(Machine, StatsAccumulateAndClear) {
  Machine m(cfg_2x2());
  m.run([&](Pe& pe) {
    if (pe.id() == 0) {
      std::vector<double> msg(16, 1.0);
      pe.send(1, msg);
    } else if (pe.id() == 1) {
      pe.recv(0);
    }
  });
  MachineStats s = m.stats();
  EXPECT_EQ(s.messages_sent, 1u);
  EXPECT_EQ(s.bytes_sent, 16u * sizeof(double));
  EXPECT_GT(s.modeled_comm_ns, 0u);
  m.clear_stats();
  s = m.stats();
  EXPECT_EQ(s.messages_sent, 0u);
  EXPECT_EQ(s.bytes_sent, 0u);
}

TEST(Machine, ModeledCostUsesCostModel) {
  MachineConfig c = cfg_2x2();
  c.cost.latency_ns = 1000;
  c.cost.ns_per_byte = 2.0;
  Machine m(c);
  m.run([&](Pe& pe) {
    if (pe.id() == 0) {
      std::vector<double> msg(10, 0.0);  // 80 bytes
      pe.send(1, msg);
    } else if (pe.id() == 1) {
      pe.recv(0);
    }
  });
  EXPECT_EQ(m.stats().modeled_comm_ns, 1000u + 160u);
}

TEST(Machine, RejectsBadGrid) {
  MachineConfig c;
  c.pe_rows = 0;
  EXPECT_THROW(Machine{c}, std::invalid_argument);
}

}  // namespace
}  // namespace simpi

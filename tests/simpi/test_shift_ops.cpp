#include "simpi/shift_ops.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>
#include <vector>

#include "simpi/machine.hpp"

namespace simpi {
namespace {

DistArrayDesc desc_2d(const std::string& name, int n, int halo) {
  DistArrayDesc d;
  d.name = name;
  d.rank = 2;
  d.extent = {n, n, 1};
  d.dist = {DistKind::Block, DistKind::Block, DistKind::Collapsed};
  d.halo.lo = {halo, halo, 0};
  d.halo.hi = {halo, halo, 0};
  return d;
}

/// Reference CSHIFT on a dense column-major global array.
std::vector<double> ref_cshift(const std::vector<double>& in, int n, int shift,
                               int dim, bool circular, double boundary) {
  std::vector<double> out(in.size());
  for (int j = 1; j <= n; ++j) {
    for (int i = 1; i <= n; ++i) {
      int si = i, sj = j;
      (dim == 0 ? si : sj) += shift;
      double v;
      if (circular) {
        v = in[static_cast<std::size_t>(wrap_index(dim == 0 ? si : i, n) - 1) +
               static_cast<std::size_t>(wrap_index(dim == 1 ? sj : j, n) - 1) *
                   static_cast<std::size_t>(n)];
      } else if (si >= 1 && si <= n && sj >= 1 && sj <= n) {
        v = in[static_cast<std::size_t>(si - 1) +
               static_cast<std::size_t>(sj - 1) * static_cast<std::size_t>(n)];
      } else {
        v = boundary;
      }
      out[static_cast<std::size_t>(i - 1) +
          static_cast<std::size_t>(j - 1) * static_cast<std::size_t>(n)] = v;
    }
  }
  return out;
}

std::vector<double> iota_data(int n) {
  std::vector<double> v(static_cast<std::size_t>(n) * n);
  std::iota(v.begin(), v.end(), 1.0);
  return v;
}

// ------------------------------------------------ split_shift_intervals --

TEST(SplitShiftIntervals, SingleOwnerNoWrap) {
  BlockMap bm(8, 4);
  auto ivs = split_shift_intervals(3, 4, 0, 8, bm, true);
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_EQ(ivs[0].reader_lo, 3);
  EXPECT_EQ(ivs[0].reader_hi, 4);
  EXPECT_EQ(ivs[0].src_lo, 3);
  EXPECT_EQ(ivs[0].owner, 1);
}

TEST(SplitShiftIntervals, SplitsAtBlockBoundary) {
  BlockMap bm(8, 4);
  auto ivs = split_shift_intervals(1, 8, +1, 8, bm, true);
  // readers 1..8 read sources 2..8,1 — splits at every block edge + wrap.
  ASSERT_EQ(ivs.size(), 5u);
  EXPECT_EQ(ivs[0].reader_lo, 1);
  EXPECT_EQ(ivs[0].src_lo, 2);
  EXPECT_EQ(ivs[0].owner, 0);
  EXPECT_EQ(ivs[4].reader_lo, 8);
  EXPECT_EQ(ivs[4].src_lo, 1);  // wrapped
  EXPECT_EQ(ivs[4].owner, 0);
}

TEST(SplitShiftIntervals, WrapBelow) {
  BlockMap bm(8, 2);
  auto ivs = split_shift_intervals(1, 2, -2, 8, bm, true);
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_EQ(ivs[0].src_lo, 7);  // wrap_index(-1..0) -> 7..8
  EXPECT_EQ(ivs[0].owner, 1);
}

TEST(SplitShiftIntervals, EndOffProducesBoundaryRuns) {
  BlockMap bm(8, 2);
  auto ivs = split_shift_intervals(1, 8, -2, 8, bm, false);
  ASSERT_EQ(ivs.size(), 3u);
  EXPECT_EQ(ivs[0].owner, -1);  // readers 1..2 read sources -1..0
  EXPECT_EQ(ivs[0].reader_hi, 2);
  EXPECT_EQ(ivs[1].reader_lo, 3);
  EXPECT_EQ(ivs[1].src_lo, 1);
  EXPECT_EQ(ivs[1].owner, 0);
  EXPECT_EQ(ivs[2].src_lo, 5);
  EXPECT_EQ(ivs[2].owner, 1);
}

TEST(SplitShiftIntervals, EndOffAboveExtent) {
  BlockMap bm(4, 1);
  // Readers 3..4 read sources 5..6, entirely past the extent: one
  // boundary-fill run.
  auto ivs = split_shift_intervals(3, 4, +2, 4, bm, false);
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_EQ(ivs[0].reader_lo, 3);
  EXPECT_EQ(ivs[0].reader_hi, 4);
  EXPECT_EQ(ivs[0].owner, -1);
}

// --------------------------------------------------------- full_cshift --

struct CShiftCase {
  int n;
  int rows;
  int cols;
  int shift;
  int dim;
};

class FullCShiftProperty : public ::testing::TestWithParam<CShiftCase> {};

TEST_P(FullCShiftProperty, MatchesReference) {
  const auto& p = GetParam();
  MachineConfig c;
  c.pe_rows = p.rows;
  c.pe_cols = p.cols;
  Machine m(c);
  int src = m.create_array(desc_2d("SRC", p.n, 0));
  int dst = m.create_array(desc_2d("DST", p.n, 0));
  auto in = iota_data(p.n);
  m.scatter(src, in);
  m.run([&](Pe& pe) { full_cshift(pe, dst, src, p.shift, p.dim); });
  EXPECT_EQ(m.gather(dst), ref_cshift(in, p.n, p.shift, p.dim, true, 0.0))
      << "n=" << p.n << " grid=" << p.rows << "x" << p.cols
      << " shift=" << p.shift << " dim=" << p.dim;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FullCShiftProperty,
    ::testing::Values(
        CShiftCase{8, 1, 1, +1, 0}, CShiftCase{8, 1, 1, -1, 1},
        CShiftCase{8, 2, 2, +1, 0}, CShiftCase{8, 2, 2, -1, 0},
        CShiftCase{8, 2, 2, +1, 1}, CShiftCase{8, 2, 2, -1, 1},
        CShiftCase{8, 2, 2, +3, 0}, CShiftCase{8, 2, 2, -3, 1},
        CShiftCase{9, 2, 2, +2, 0}, CShiftCase{9, 2, 2, -2, 1},
        CShiftCase{8, 4, 1, +1, 0}, CShiftCase{8, 1, 4, -1, 1},
        CShiftCase{8, 2, 2, +8, 0},   // full rotation = identity
        CShiftCase{8, 2, 2, +9, 0},   // rotation + 1
        CShiftCase{8, 2, 2, -11, 1},  // multiple wraps
        CShiftCase{5, 2, 2, +1, 0},   // ragged blocks
        CShiftCase{7, 4, 1, +2, 0},   // ragged + distance 2
        CShiftCase{8, 2, 2, 0, 0}));  // no-op shift = copy

TEST(FullCShift, EndOffFillsBoundary) {
  Machine m(MachineConfig{.pe_rows = 2, .pe_cols = 2});
  int src = m.create_array(desc_2d("SRC", 8, 0));
  int dst = m.create_array(desc_2d("DST", 8, 0));
  auto in = iota_data(8);
  m.scatter(src, in);
  m.run([&](Pe& pe) {
    full_cshift(pe, dst, src, +2, 1, ShiftKind::EndOff, -5.0);
  });
  EXPECT_EQ(m.gather(dst), ref_cshift(in, 8, +2, 1, false, -5.0));
}

TEST(FullCShift, RejectsMismatchedShapes) {
  Machine m(MachineConfig{.pe_rows = 1, .pe_cols = 1});
  int a = m.create_array(desc_2d("A", 8, 0));
  int b = m.create_array(desc_2d("B", 4, 0));
  EXPECT_THROW(m.run([&](Pe& pe) { full_cshift(pe, a, b, 1, 0); }),
               std::logic_error);
}

TEST(FullCShift, CountsIntraAndInterMovement) {
  Machine m(MachineConfig{.pe_rows = 2, .pe_cols = 2});
  int src = m.create_array(desc_2d("SRC", 8, 0));
  int dst = m.create_array(desc_2d("DST", 8, 0));
  m.scatter(src, iota_data(8));
  m.run([&](Pe& pe) { full_cshift(pe, dst, src, +1, 0); });
  MachineStats s = m.stats();
  // Each PE sends one 1x4 strip: 4 messages of 4 doubles.
  EXPECT_EQ(s.messages_sent, 4u);
  EXPECT_EQ(s.bytes_sent, 4u * 4 * sizeof(double));
  // Each PE locally copies the remaining 3x4 block of its subgrid.
  EXPECT_EQ(s.intra_copy_bytes, 4u * 12 * sizeof(double));
}

// ------------------------------------------------------- overlap_shift --

/// After overlap_shift(U, s, d), every owned element must be able to read
/// its offset neighbor U<+s*e_d> locally, observing circular semantics.
void expect_offset_readable(Machine& m, int id,
                            const std::vector<double>& global, int n,
                            int shift, int dim) {
  for (int pe = 0; pe < m.num_pes(); ++pe) {
    LocalGrid& g = m.pe(pe).grid(id);
    if (!g.owns_anything()) continue;
    for (int j = g.own_lo(1); j <= g.own_hi(1); ++j) {
      for (int i = g.own_lo(0); i <= g.own_hi(0); ++i) {
        int si = i, sj = j;
        (dim == 0 ? si : sj) += shift;
        double expected =
            global[static_cast<std::size_t>(wrap_index(si, n) - 1) +
                   static_cast<std::size_t>(wrap_index(sj, n) - 1) *
                       static_cast<std::size_t>(n)];
        EXPECT_EQ((g.at({si, sj})), expected)
            << "pe=" << pe << " i=" << i << " j=" << j << " shift=" << shift
            << " dim=" << dim;
      }
    }
  }
}

struct OverlapCase {
  int n;
  int rows;
  int cols;
  int shift;
  int dim;
};

class OverlapShiftProperty : public ::testing::TestWithParam<OverlapCase> {};

TEST_P(OverlapShiftProperty, FillsOverlapAreaCorrectly) {
  const auto& p = GetParam();
  MachineConfig c;
  c.pe_rows = p.rows;
  c.pe_cols = p.cols;
  Machine m(c);
  int id = m.create_array(desc_2d("U", p.n, 2));
  auto in = iota_data(p.n);
  m.scatter(id, in);
  m.run([&](Pe& pe) { overlap_shift(pe, id, p.shift, p.dim); });
  expect_offset_readable(m, id, in, p.n, p.shift, p.dim);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OverlapShiftProperty,
    ::testing::Values(OverlapCase{8, 2, 2, +1, 0}, OverlapCase{8, 2, 2, -1, 0},
                      OverlapCase{8, 2, 2, +1, 1}, OverlapCase{8, 2, 2, -1, 1},
                      OverlapCase{8, 2, 2, +2, 0}, OverlapCase{8, 2, 2, -2, 1},
                      OverlapCase{8, 1, 1, +1, 0}, OverlapCase{8, 1, 1, -2, 1},
                      OverlapCase{9, 2, 2, +1, 0}, OverlapCase{6, 2, 2, +2, 0},
                      OverlapCase{8, 4, 1, +1, 0},
                      OverlapCase{8, 1, 4, -1, 1}));

TEST(OverlapShift, MovesOnlyInterprocessorData) {
  Machine m(MachineConfig{.pe_rows = 2, .pe_cols = 2});
  int id = m.create_array(desc_2d("U", 8, 1));
  m.scatter(id, iota_data(8));
  m.run([&](Pe& pe) { overlap_shift(pe, id, +1, 0); });
  MachineStats s = m.stats();
  EXPECT_EQ(s.messages_sent, 4u);  // one strip per PE
  EXPECT_EQ(s.bytes_sent, 4u * 4 * sizeof(double));
  EXPECT_EQ(s.intra_copy_bytes, 0u);  // the whole point of offset arrays
}

TEST(OverlapShift, SinglePeIsPureLocalWrap) {
  Machine m(MachineConfig{.pe_rows = 1, .pe_cols = 1});
  int id = m.create_array(desc_2d("U", 8, 1));
  m.scatter(id, iota_data(8));
  m.run([&](Pe& pe) { overlap_shift(pe, id, +1, 0); });
  MachineStats s = m.stats();
  EXPECT_EQ(s.messages_sent, 0u);
  EXPECT_GT(s.intra_copy_bytes, 0u);  // circular wrap is a local copy
}

TEST(OverlapShift, EndOffFillsBoundaryInOverlap) {
  Machine m(MachineConfig{.pe_rows = 2, .pe_cols = 1});
  int id = m.create_array(desc_2d("U", 8, 1));
  m.scatter(id, iota_data(8));
  m.run([&](Pe& pe) {
    overlap_shift(pe, id, +1, 0, RsdExtension{}, ShiftKind::EndOff, -7.0);
  });
  // PE at the bottom of dim 0 must see boundary values past the edge.
  LocalGrid& g = m.pe(m.grid().rank_of(1, 0)).grid(id);
  for (int j = g.own_lo(1); j <= g.own_hi(1); ++j) {
    EXPECT_EQ((g.at({9, j})), -7.0);
  }
  // Interior overlap between PEs is real data.
  LocalGrid& g0 = m.pe(0).grid(id);
  auto in = iota_data(8);
  for (int j = g0.own_lo(1); j <= g0.own_hi(1); ++j) {
    EXPECT_EQ((g0.at({5, j})),
              in[4 + static_cast<std::size_t>(j - 1) * 8]);
  }
}

TEST(OverlapShift, ThrowsWhenOverlapTooNarrow) {
  Machine m(MachineConfig{.pe_rows = 2, .pe_cols = 2});
  int id = m.create_array(desc_2d("U", 8, 1));
  EXPECT_THROW(m.run([&](Pe& pe) { overlap_shift(pe, id, +2, 0); }),
               std::logic_error);
}

TEST(OverlapShift, ZeroShiftIsNoOp) {
  Machine m(MachineConfig{.pe_rows = 2, .pe_cols = 2});
  int id = m.create_array(desc_2d("U", 8, 1));
  m.scatter(id, iota_data(8));
  m.run([&](Pe& pe) { overlap_shift(pe, id, 0, 0); });
  EXPECT_EQ(m.stats().messages_sent, 0u);
}

// The four unioned calls from the paper's Figure 6: after dim-1 shifts
// run first and dim-2 shifts carry the RSD [0:N+1,*], every overlap cell
// needed by a 9-point stencil — including all four corners — holds the
// right value (Figures 7-10).
TEST(OverlapShift, RsdCornerPickupReproducesFigure6) {
  const int n = 8;
  Machine m(MachineConfig{.pe_rows = 2, .pe_cols = 2});
  int id = m.create_array(desc_2d("U", n, 1));
  auto in = iota_data(n);
  m.scatter(id, in);
  RsdExtension rsd;
  rsd.lo = {1, 0, 0};
  rsd.hi = {1, 0, 0};
  m.run([&](Pe& pe) {
    overlap_shift(pe, id, -1, 0);
    overlap_shift(pe, id, +1, 0);
    overlap_shift(pe, id, -1, 1, rsd);
    overlap_shift(pe, id, +1, 1, rsd);
  });
  // Every owned element can now read all 8 neighbors locally.
  for (int pe = 0; pe < 4; ++pe) {
    LocalGrid& g = m.pe(pe).grid(id);
    for (int j = g.own_lo(1); j <= g.own_hi(1); ++j) {
      for (int i = g.own_lo(0); i <= g.own_hi(0); ++i) {
        for (int dj = -1; dj <= 1; ++dj) {
          for (int di = -1; di <= 1; ++di) {
            double expected =
                in[static_cast<std::size_t>(wrap_index(i + di, n) - 1) +
                   static_cast<std::size_t>(wrap_index(j + dj, n) - 1) *
                       static_cast<std::size_t>(n)];
            EXPECT_EQ((g.at({i + di, j + dj})), expected)
                << "pe=" << pe << " (" << i << "," << j << ") + (" << di
                << "," << dj << ")";
          }
        }
      }
    }
  }
  // Exactly 4 messages per PE: one per direction per dimension (Fig. 6).
  EXPECT_EQ(m.stats().messages_sent, 16u);
}

TEST(OverlapShift, WithoutRsdCornersAreStale) {
  const int n = 8;
  Machine m(MachineConfig{.pe_rows = 2, .pe_cols = 2});
  int id = m.create_array(desc_2d("U", n, 1));
  auto in = iota_data(n);
  m.scatter(id, in);
  m.run([&](Pe& pe) {
    overlap_shift(pe, id, -1, 0);
    overlap_shift(pe, id, +1, 0);
    overlap_shift(pe, id, -1, 1);  // no RSD: corners not carried
    overlap_shift(pe, id, +1, 1);
  });
  // PE0 owns (1..4, 1..4); its (5,5) corner cell should NOT have been
  // filled with the value of global (5,5).
  LocalGrid& g = m.pe(0).grid(id);
  double expected = in[4 + 4 * 8];
  EXPECT_NE((g.at({5, 5})), expected);
}

TEST(OverlapShift, RsdExceedingHaloThrows) {
  Machine m(MachineConfig{.pe_rows = 2, .pe_cols = 2});
  int id = m.create_array(desc_2d("U", 8, 1));
  RsdExtension rsd;
  rsd.lo = {2, 0, 0};
  EXPECT_THROW(m.run([&](Pe& pe) { overlap_shift(pe, id, +1, 1, rsd); }),
               std::logic_error);
}

// ---------------------------------------------------------- copy_array --

TEST(CopyArray, CopiesOwnedBoxLocally) {
  Machine m(MachineConfig{.pe_rows = 2, .pe_cols = 2});
  int a = m.create_array(desc_2d("A", 8, 1));
  int b = m.create_array(desc_2d("B", 8, 1));
  auto in = iota_data(8);
  m.scatter(a, in);
  m.run([&](Pe& pe) { copy_array(pe, b, a); });
  EXPECT_EQ(m.gather(b), in);
  MachineStats s = m.stats();
  EXPECT_EQ(s.messages_sent, 0u);
  EXPECT_EQ(s.intra_copy_bytes, 64u * sizeof(double));
}

}  // namespace
}  // namespace simpi

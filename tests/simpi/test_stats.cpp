// PeStats / MachineStats arithmetic and JSON export.
#include "simpi/stats.hpp"

#include <gtest/gtest.h>

#include <string>

namespace simpi {
namespace {

PeStats sample_pe(std::uint64_t base, std::size_t heap) {
  PeStats s;
  s.messages_sent = base;
  s.bytes_sent = base * 10;
  s.intra_copy_bytes = base * 100;
  s.kernel_ref_bytes = base * 1000;
  s.modeled_comm_ns = base * 7;
  s.modeled_copy_ns = base * 3;
  s.peak_heap_bytes = heap;
  return s;
}

TEST(PeStats, PlusEqualsSumsCountersAndMaxesHeap) {
  PeStats a = sample_pe(2, 500);
  PeStats b = sample_pe(3, 400);
  a += b;
  EXPECT_EQ(a.messages_sent, 5u);
  EXPECT_EQ(a.bytes_sent, 50u);
  EXPECT_EQ(a.intra_copy_bytes, 500u);
  EXPECT_EQ(a.kernel_ref_bytes, 5000u);
  EXPECT_EQ(a.modeled_comm_ns, 35u);
  EXPECT_EQ(a.modeled_copy_ns, 15u);
  EXPECT_EQ(a.peak_heap_bytes, 500u);  // max, not sum
}

TEST(PeStats, DeltaSinceIsPointwiseWithLaterHighWater) {
  PeStats before = sample_pe(2, 300);
  PeStats after = sample_pe(5, 800);
  PeStats d = after.delta_since(before);
  EXPECT_EQ(d.messages_sent, 3u);
  EXPECT_EQ(d.bytes_sent, 30u);
  EXPECT_EQ(d.intra_copy_bytes, 300u);
  EXPECT_EQ(d.kernel_ref_bytes, 3000u);
  EXPECT_EQ(d.modeled_comm_ns, 21u);
  EXPECT_EQ(d.modeled_copy_ns, 9u);
  EXPECT_EQ(d.peak_heap_bytes, 800u);  // the later high-water mark

  // Identity: before + delta reproduces after's counters.
  PeStats rebuilt = before;
  rebuilt += d;
  EXPECT_EQ(rebuilt.messages_sent, after.messages_sent);
  EXPECT_EQ(rebuilt.modeled_comm_ns, after.modeled_comm_ns);

  // A window with no activity is all-zero (heap aside).
  PeStats empty = after.delta_since(after);
  EXPECT_EQ(empty.messages_sent, 0u);
  EXPECT_EQ(empty.bytes_sent, 0u);
  EXPECT_EQ(empty.modeled_comm_ns, 0u);
}

TEST(PeStats, ClearResetsEverything) {
  PeStats s = sample_pe(9, 1234);
  s.clear();
  EXPECT_EQ(s.messages_sent, 0u);
  EXPECT_EQ(s.peak_heap_bytes, 0u);
}

TEST(MachineStats, AccumulateSumsTrafficAndMaxesModeledTimes) {
  MachineStats m;
  m.accumulate(sample_pe(2, 100));
  m.accumulate(sample_pe(5, 50));
  EXPECT_EQ(m.messages_sent, 7u);
  EXPECT_EQ(m.bytes_sent, 70u);
  // Critical path: max over PEs, not sum.
  EXPECT_EQ(m.modeled_comm_ns, 35u);
  EXPECT_EQ(m.modeled_copy_ns, 15u);
  EXPECT_EQ(m.peak_heap_bytes, 100u);
}

TEST(MachineStats, PlusEqualsSumsAcrossSequentialRuns) {
  MachineStats phase1;
  phase1.accumulate(sample_pe(2, 100));
  MachineStats phase2;
  phase2.accumulate(sample_pe(3, 200));
  MachineStats total = phase1;
  total += phase2;
  EXPECT_EQ(total.messages_sent, 5u);
  // Sequential phases: critical-path times add (unlike across-PE max).
  EXPECT_EQ(total.modeled_comm_ns, 35u);
  EXPECT_EQ(total.modeled_copy_ns, 15u);
  EXPECT_EQ(total.peak_heap_bytes, 200u);
}

TEST(Stats, ToJsonCarriesEveryCounter) {
  PeStats s = sample_pe(4, 4096);
  const std::string json = s.to_json();
  EXPECT_EQ(json,
            "{\"messages_sent\":4,\"bytes_sent\":40,"
            "\"intra_copy_bytes\":400,\"kernel_ref_bytes\":4000,"
            "\"modeled_comm_ns\":28,\"modeled_copy_ns\":12,"
            "\"peak_heap_bytes\":4096,\"schema_version\":3}");

  MachineStats m;
  m.accumulate(s);
  EXPECT_EQ(m.to_json(), json);  // single-PE aggregate is the PE sample

  EXPECT_EQ(MachineStats{}.to_json(),
            "{\"messages_sent\":0,\"bytes_sent\":0,\"intra_copy_bytes\":0,"
            "\"kernel_ref_bytes\":0,\"modeled_comm_ns\":0,"
            "\"modeled_copy_ns\":0,\"peak_heap_bytes\":0,"
            "\"schema_version\":3}");
}

TEST(Stats, ToJsonIncludesCommLedgerWhenNonEmpty) {
  PeStats s = sample_pe(1, 64);
  s.comm.record(0, 1, CommKind::OverlapShift, 1, 80);
  const std::string json = s.to_json();
  EXPECT_NE(json.find("\"schema_version\":3"), std::string::npos);
  EXPECT_NE(json.find("\"comm\":{"), std::string::npos);
  EXPECT_NE(json.find("\"overlap_shift\""), std::string::npos);
  // Old schema keys are stable and still lead the object.
  EXPECT_EQ(json.rfind("{\"messages_sent\":1,\"bytes_sent\":10,", 0), 0u);
}

}  // namespace
}  // namespace simpi

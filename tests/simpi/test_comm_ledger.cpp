// CommLedger arithmetic and the per-(dimension, direction, kind)
// attribution of real shift traffic.
#include "simpi/comm_ledger.hpp"

#include <gtest/gtest.h>

#include <string>

#include "simpi/machine.hpp"
#include "simpi/shift_ops.hpp"

namespace simpi {
namespace {

TEST(CommLedger, RecordAndTotals) {
  CommLedger ledger;
  EXPECT_TRUE(ledger.empty());
  ledger.record(0, 1, CommKind::OverlapShift, 1, 800);
  ledger.record(0, 1, CommKind::OverlapShift, 1, 800);
  ledger.record(1, 0, CommKind::FullShift, 2, 160);
  ledger.record(0, 1, CommKind::CornerRsd, 0, 16);  // bytes, no message
  EXPECT_FALSE(ledger.empty());
  EXPECT_EQ(ledger.cell(0, 1, CommKind::OverlapShift).messages, 2u);
  EXPECT_EQ(ledger.cell(0, 1, CommKind::OverlapShift).bytes, 1600u);
  EXPECT_EQ(ledger.dir_total(0, 1).messages, 2u);
  EXPECT_EQ(ledger.dir_total(0, 1).bytes, 1616u);  // corner bytes ride along
  EXPECT_EQ(ledger.dir_total(1, 0).messages, 2u);
  EXPECT_EQ(ledger.kind_total(CommKind::CornerRsd).messages, 0u);
  EXPECT_EQ(ledger.kind_total(CommKind::CornerRsd).bytes, 16u);
  EXPECT_EQ(ledger.total().messages, 4u);
  EXPECT_EQ(ledger.total().bytes, 1776u);
}

TEST(CommLedger, PlusEqualsAndDeltaAreInverse) {
  CommLedger before;
  before.record(0, 0, CommKind::OverlapShift, 3, 300);
  CommLedger after = before;
  after.record(0, 0, CommKind::OverlapShift, 2, 200);
  after.record(2, 1, CommKind::FullShift, 1, 50);

  CommLedger delta = after.delta_since(before);
  EXPECT_EQ(delta.cell(0, 0, CommKind::OverlapShift).messages, 2u);
  EXPECT_EQ(delta.cell(2, 1, CommKind::FullShift).bytes, 50u);

  CommLedger rebuilt = before;
  rebuilt += delta;
  EXPECT_EQ(rebuilt.total().messages, after.total().messages);
  EXPECT_EQ(rebuilt.total().bytes, after.total().bytes);

  after.clear();
  EXPECT_TRUE(after.empty());
}

TEST(CommLedger, DirectionFromShiftSign) {
  EXPECT_EQ(comm_dir(+1), 1);
  EXPECT_EQ(comm_dir(+3), 1);
  EXPECT_EQ(comm_dir(-1), 0);
  EXPECT_EQ(comm_dir(-2), 0);
}

TEST(CommLedger, ToJsonListsOnlyNonEmptyCells) {
  CommLedger ledger;
  EXPECT_EQ(ledger.to_json(),
            "{\"per_direction\":[],\"messages\":0,\"bytes\":0}");
  ledger.record(1, 0, CommKind::FullShift, 1, 40);
  const std::string json = ledger.to_json();
  EXPECT_NE(json.find("\"dim\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dir\":\"-\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"kind\":\"full_shift\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"messages\":1,\"bytes\":40"), std::string::npos)
      << json;
}

// ---- Attribution from real shifts ------------------------------------

DistArrayDesc desc_2d(int n, int halo) {
  DistArrayDesc d;
  d.name = "U";
  d.rank = 2;
  d.extent = {n, n, 1};
  d.dist = {DistKind::Block, DistKind::Block, DistKind::Collapsed};
  d.halo.lo = {halo, halo, 0};
  d.halo.hi = {halo, halo, 0};
  return d;
}

TEST(CommLedgerAttribution, OverlapShiftChargesDimensionAndDirection) {
  Machine machine(MachineConfig{});  // 2x2 by default
  const int id = machine.create_array(desc_2d(8, 1));
  machine.run([&](Pe& pe) {
    overlap_shift(pe, id, +1, 0, RsdExtension{}, ShiftKind::Circular, 0.0);
  });
  const CommLedger ledger = machine.comm_ledger();
  // Positive shift in dim 0: every PE sends once to its row neighbor.
  EXPECT_EQ(ledger.dir_total(0, 1).messages, 4u);
  EXPECT_EQ(ledger.dir_total(0, 0).messages, 0u);
  EXPECT_EQ(ledger.dir_total(1, 0).messages, 0u);
  EXPECT_EQ(ledger.dir_total(1, 1).messages, 0u);
  EXPECT_EQ(ledger.kind_total(CommKind::OverlapShift).messages, 4u);
  // 4-element cross-section (no RSD extension), width-1 halo.
  EXPECT_EQ(ledger.kind_total(CommKind::OverlapShift).bytes,
            4u * 4u * sizeof(double));
  EXPECT_EQ(ledger.kind_total(CommKind::CornerRsd).bytes, 0u);
  // Ledger agrees with the raw machine counters for pure shift traffic.
  EXPECT_EQ(machine.stats().messages_sent, ledger.total().messages);
  EXPECT_EQ(machine.stats().bytes_sent, ledger.total().bytes);
}

TEST(CommLedgerAttribution, RsdExtensionBytesAreCornerKind) {
  Machine machine(MachineConfig{});
  const int id = machine.create_array(desc_2d(8, 1));
  RsdExtension ext;
  ext.lo = {0, 1, 0};  // extend the cross-section into the dim-1 halo
  ext.hi = {0, 1, 0};
  machine.run([&](Pe& pe) {
    overlap_shift(pe, id, +1, 0, ext, ShiftKind::Circular, 0.0);
  });
  const CommLedger ledger = machine.comm_ledger();
  // Corner traffic carries bytes but *no* messages: the corners ride
  // along inside the face messages (the paper's one-message-per-
  // direction claim).
  const CommCell corners = ledger.kind_total(CommKind::CornerRsd);
  EXPECT_EQ(corners.messages, 0u);
  // Cross-section widens 4 -> 6 elements: 2 extra per interval element.
  EXPECT_EQ(corners.bytes, 4u * 2u * sizeof(double));
  EXPECT_EQ(ledger.total().messages, 4u);
  // Face + corner bytes equal the raw bytes on the wire.
  EXPECT_EQ(machine.stats().bytes_sent, ledger.total().bytes);
}

TEST(CommLedgerAttribution, FullShiftIsItsOwnKind) {
  Machine machine(MachineConfig{});
  const int src = machine.create_array(desc_2d(8, 0));
  const int dst = machine.create_array(desc_2d(8, 0));
  machine.run([&](Pe& pe) {
    full_cshift(pe, dst, src, -1, 1, ShiftKind::Circular, 0.0);
  });
  const CommLedger ledger = machine.comm_ledger();
  EXPECT_EQ(ledger.kind_total(CommKind::FullShift).messages, 4u);
  EXPECT_EQ(ledger.kind_total(CommKind::OverlapShift).messages, 0u);
  EXPECT_EQ(ledger.dir_total(1, 0).messages, 4u);
  EXPECT_EQ(ledger.dir_total(1, 1).messages, 0u);
}

// ---- Strict invariant mode -------------------------------------------

TEST(CommInvariant, SecondMessageSameDirectionThrowsWhenArmed) {
  Machine machine(MachineConfig{});
  machine.set_comm_invariant(true);
  EXPECT_TRUE(machine.comm_invariant());
  const int id = machine.create_array(desc_2d(8, 2));
  EXPECT_THROW(machine.run([&](Pe& pe) {
    // Two overlap shifts in the same (dim, dir) without a context
    // boundary: exactly what communication unioning eliminates.
    overlap_shift(pe, id, +1, 0, RsdExtension{}, ShiftKind::Circular, 0.0);
    overlap_shift(pe, id, +2, 0, RsdExtension{}, ShiftKind::Circular, 0.0);
  }),
               CommInvariantViolation);
}

TEST(CommInvariant, ContextResetSeparatesStatements) {
  Machine machine(MachineConfig{});
  machine.set_comm_invariant(true);
  const int id = machine.create_array(desc_2d(8, 2));
  machine.run([&](Pe& pe) {
    pe.reset_comm_context();
    overlap_shift(pe, id, +1, 0, RsdExtension{}, ShiftKind::Circular, 0.0);
    pe.reset_comm_context();  // statement boundary
    overlap_shift(pe, id, +2, 0, RsdExtension{}, ShiftKind::Circular, 0.0);
  });
  EXPECT_EQ(machine.comm_ledger().dir_total(0, 1).messages, 8u);
}

TEST(CommInvariant, DistinctDirectionsDoNotConflict) {
  Machine machine(MachineConfig{});
  machine.set_comm_invariant(true);
  const int id = machine.create_array(desc_2d(8, 1));
  machine.run([&](Pe& pe) {
    pe.reset_comm_context();
    overlap_shift(pe, id, +1, 0, RsdExtension{}, ShiftKind::Circular, 0.0);
    overlap_shift(pe, id, -1, 0, RsdExtension{}, ShiftKind::Circular, 0.0);
    overlap_shift(pe, id, +1, 1, RsdExtension{}, ShiftKind::Circular, 0.0);
    overlap_shift(pe, id, -1, 1, RsdExtension{}, ShiftKind::Circular, 0.0);
  });
  const CommLedger ledger = machine.comm_ledger();
  for (int dim = 0; dim < 2; ++dim) {
    for (int dir = 0; dir < kCommDirs; ++dir) {
      EXPECT_EQ(ledger.dir_total(dim, dir).messages, 4u);
    }
  }
}

TEST(CommInvariant, DisarmedModeOnlyCounts) {
  Machine machine(MachineConfig{});
  EXPECT_FALSE(machine.comm_invariant());  // default off (env unset)
  const int id = machine.create_array(desc_2d(8, 2));
  machine.run([&](Pe& pe) {
    overlap_shift(pe, id, +1, 0, RsdExtension{}, ShiftKind::Circular, 0.0);
    overlap_shift(pe, id, +2, 0, RsdExtension{}, ShiftKind::Circular, 0.0);
  });
  EXPECT_EQ(machine.comm_ledger().dir_total(0, 1).messages, 8u);
}

TEST(CommInvariant, EnvironmentVariableArmsNewMachines) {
  ::setenv("HPFSC_COMM_INVARIANT", "1", 1);
  Machine armed(MachineConfig{});
  EXPECT_TRUE(armed.comm_invariant());
  ::setenv("HPFSC_COMM_INVARIANT", "0", 1);
  Machine off(MachineConfig{});
  EXPECT_FALSE(off.comm_invariant());
  ::unsetenv("HPFSC_COMM_INVARIANT");
  Machine unset(MachineConfig{});
  EXPECT_FALSE(unset.comm_invariant());
}

TEST(CommInvariant, ViolationMessageNamesTheOffender) {
  Machine machine(MachineConfig{});
  machine.set_comm_invariant(true);
  const int id = machine.create_array(desc_2d(8, 2));
  try {
    machine.run([&](Pe& pe) {
      overlap_shift(pe, id, +1, 0, RsdExtension{}, ShiftKind::Circular, 0.0);
      overlap_shift(pe, id, +2, 0, RsdExtension{}, ShiftKind::Circular, 0.0);
    });
    FAIL() << "expected CommInvariantViolation";
  } catch (const CommInvariantViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("OVERLAP_SHIFT"), std::string::npos) << what;
    EXPECT_NE(what.find("dim 1"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace simpi

#include "simpi/arena.hpp"

#include <gtest/gtest.h>

namespace simpi {
namespace {

TEST(MemoryArena, TracksUsageAndPeak) {
  MemoryArena arena(0, 0);
  arena.charge(100);
  arena.charge(50);
  EXPECT_EQ(arena.in_use(), 150u);
  EXPECT_EQ(arena.peak(), 150u);
  arena.release(100);
  EXPECT_EQ(arena.in_use(), 50u);
  EXPECT_EQ(arena.peak(), 150u);
  arena.charge(10);
  EXPECT_EQ(arena.peak(), 150u);  // below previous high water
}

TEST(MemoryArena, UnlimitedWhenCapZero) {
  MemoryArena arena(0, 0);
  EXPECT_NO_THROW(arena.charge(1'000'000'000));
}

TEST(MemoryArena, ThrowsWhenCapExceeded) {
  MemoryArena arena(3, 1000);
  arena.charge(900);
  EXPECT_THROW(arena.charge(200), OutOfMemory);
  // A failed charge must not change accounting.
  EXPECT_EQ(arena.in_use(), 900u);
  EXPECT_NO_THROW(arena.charge(100));
}

TEST(MemoryArena, OutOfMemoryCarriesContext) {
  MemoryArena arena(7, 64);
  try {
    arena.charge(100);
    FAIL() << "expected OutOfMemory";
  } catch (const OutOfMemory& oom) {
    EXPECT_EQ(oom.pe(), 7);
    EXPECT_EQ(oom.requested(), 100u);
    EXPECT_EQ(oom.cap(), 64u);
    EXPECT_NE(std::string(oom.what()).find("PE 7"), std::string::npos);
  }
}

TEST(MemoryArena, ReleaseClampsAtZero) {
  MemoryArena arena(0, 0);
  arena.charge(10);
  arena.release(100);
  EXPECT_EQ(arena.in_use(), 0u);
}

TEST(ArenaCharge, RaiiReleasesOnDestruction) {
  MemoryArena arena(0, 0);
  {
    ArenaCharge charge(arena, 256);
    EXPECT_EQ(arena.in_use(), 256u);
  }
  EXPECT_EQ(arena.in_use(), 0u);
}

TEST(ArenaCharge, MoveTransfersOwnership) {
  MemoryArena arena(0, 0);
  ArenaCharge a(arena, 128);
  ArenaCharge b(std::move(a));
  EXPECT_EQ(arena.in_use(), 128u);
  ArenaCharge c;
  c = std::move(b);
  EXPECT_EQ(arena.in_use(), 128u);
  c = ArenaCharge(arena, 64);
  EXPECT_EQ(arena.in_use(), 64u);
}

}  // namespace
}  // namespace simpi

#include "simpi/layout.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace simpi {
namespace {

TEST(WrapIndex, IdentityInRange) {
  for (int g = 1; g <= 7; ++g) EXPECT_EQ(wrap_index(g, 7), g);
}

TEST(WrapIndex, WrapsAboveAndBelow) {
  EXPECT_EQ(wrap_index(8, 7), 1);
  EXPECT_EQ(wrap_index(9, 7), 2);
  EXPECT_EQ(wrap_index(0, 7), 7);
  EXPECT_EQ(wrap_index(-1, 7), 6);
  EXPECT_EQ(wrap_index(14, 7), 7);
  EXPECT_EQ(wrap_index(15, 7), 1);
  EXPECT_EQ(wrap_index(-6, 7), 1);
}

TEST(WrapIndex, FullNegativePeriod) {
  for (int g = 1; g <= 5; ++g) {
    EXPECT_EQ(wrap_index(g - 5, 5), g);
    EXPECT_EQ(wrap_index(g + 5, 5), g);
  }
}

TEST(BlockMap, EvenDivision) {
  BlockMap bm(8, 4);
  EXPECT_EQ(bm.block_size(), 2);
  EXPECT_EQ(bm.lo(0), 1);
  EXPECT_EQ(bm.hi(0), 2);
  EXPECT_EQ(bm.lo(3), 7);
  EXPECT_EQ(bm.hi(3), 8);
  EXPECT_FALSE(bm.has_empty_blocks());
}

TEST(BlockMap, RaggedTail) {
  BlockMap bm(10, 4);  // b = 3: [1-3][4-6][7-9][10-10]
  EXPECT_EQ(bm.block_size(), 3);
  EXPECT_EQ(bm.count(3), 1);
  EXPECT_FALSE(bm.has_empty_blocks());
}

TEST(BlockMap, EmptyTailBlock) {
  BlockMap bm(5, 4);  // b = 2: [1-2][3-4][5-5][empty]
  EXPECT_EQ(bm.count(2), 1);
  EXPECT_EQ(bm.count(3), 0);
  EXPECT_TRUE(bm.has_empty_blocks());
}

TEST(BlockMap, RejectsBadArguments) {
  EXPECT_THROW(BlockMap(0, 4), std::invalid_argument);
  EXPECT_THROW(BlockMap(4, 0), std::invalid_argument);
}

// Property sweep: ownership is a partition of [1, n].
class BlockMapProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BlockMapProperty, OwnershipPartitionsTheExtent) {
  auto [n, p] = GetParam();
  BlockMap bm(n, p);
  int covered = 0;
  for (int k = 0; k < p; ++k) {
    covered += bm.count(k);
    if (bm.count(k) > 0) {
      for (int g = bm.lo(k); g <= bm.hi(k); ++g) {
        EXPECT_EQ(bm.owner(g), k) << "n=" << n << " p=" << p << " g=" << g;
      }
    }
  }
  EXPECT_EQ(covered, n);
  for (int g = 1; g <= n; ++g) {
    int k = bm.owner(g);
    EXPECT_GE(g, bm.lo(k));
    EXPECT_LE(g, bm.hi(k));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockMapProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 16, 17, 100, 1024),
                       ::testing::Values(1, 2, 3, 4, 7, 8)));

TEST(ProcGrid, RankAndCoordsRoundTrip) {
  ProcGrid grid(2, 3);
  EXPECT_EQ(grid.size(), 6);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) {
      int id = grid.rank_of(r, c);
      auto coords = grid.coords_of(id);
      EXPECT_EQ(coords[0], r);
      EXPECT_EQ(coords[1], c);
    }
  }
}

TEST(DistKind, ToString) {
  EXPECT_EQ(to_string(DistKind::Block), "BLOCK");
  EXPECT_EQ(to_string(DistKind::Collapsed), "*");
}

}  // namespace
}  // namespace simpi

// Stress tests for the asynchronous comm backend, aimed at TSan: 8 PEs
// posting overlap-shift sends/receives whose completion order is
// scrambled by injected per-PE delays, plus a host thread racing
// set_wait_timing() against running workers.  The assertions are the
// books: halo contents match the synchronous backend bitwise, the
// CommLedger reconciles exactly against the flat message counters, and
// the WaitStats invariant (recv + overlap + barrier <= active) survives
// the toggle race because pool_timed_ is latched per run.
#include "simpi/comm_backend.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <random>
#include <thread>
#include <vector>

#include "simpi/machine.hpp"
#include "simpi/shift_ops.hpp"

namespace simpi {
namespace {

DistArrayDesc desc_2d(const std::string& name, int n, int halo) {
  DistArrayDesc d;
  d.name = name;
  d.rank = 2;
  d.extent = {n, n, 1};
  d.dist = {DistKind::Block, DistKind::Block, DistKind::Collapsed};
  d.halo.lo = {halo, halo, 0};
  d.halo.hi = {halo, halo, 0};
  return d;
}

std::vector<double> iota_data(int n) {
  std::vector<double> v(static_cast<std::size_t>(n) * n);
  std::iota(v.begin(), v.end(), 1.0);
  return v;
}

/// Per-PE deterministic delay: different PEs sleep different amounts at
/// different rounds, scrambling which posted receive's message arrives
/// first without making the test timing-dependent for correctness.
void jitter(int pe_id, int round) {
  std::minstd_rand rng(static_cast<unsigned>(pe_id * 2654435761u + round));
  std::this_thread::sleep_for(std::chrono::microseconds(rng() % 150));
}

/// The shared workload: each round posts both directions of a dim-0
/// exchange (two pending receives per PE under the async backend),
/// stands in for interior compute with a random delay, then drains.
void stress_round(Pe& pe, int id, int round) {
  jitter(pe.id(), round);
  overlap_shift(pe, id, +1, 0);
  jitter(pe.id(), round + 7);
  overlap_shift(pe, id, -1, 0);
  jitter(pe.id(), round + 13);
  pe.machine().comm_backend().wait_all(pe);
}

/// Sums a ledger's cells; reconciliation means these equal the flat
/// messages_sent / bytes_sent counters exactly — no message is counted
/// twice or dropped when receives complete out of posting order.
void expect_ledger_reconciles(const MachineStats& s) {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  for (std::size_t d = 0; d < kCommDims; ++d) {
    for (std::size_t dir = 0; dir < kCommDirs; ++dir) {
      for (std::size_t k = 0; k < kCommKinds; ++k) {
        messages += s.comm.cells[d][dir][k].messages;
        bytes += s.comm.cells[d][dir][k].bytes;
      }
    }
  }
  EXPECT_EQ(messages, s.messages_sent);
  EXPECT_EQ(bytes, s.bytes_sent);
}

TEST(AsyncBackend, RandomizedCompletionOrderMatchesSync) {
  const int n = 16;
  const int rounds = 25;
  auto run_backend = [&](CommBackendKind kind) {
    Machine m(MachineConfig{.pe_rows = 8, .pe_cols = 1});
    m.set_comm_backend(kind);
    int id = m.create_array(desc_2d("U", n, 1));
    m.scatter(id, iota_data(n));
    for (int r = 0; r < rounds; ++r) {
      m.run([&](Pe& pe) { stress_round(pe, id, r); });
    }
    return std::pair<std::vector<double>, MachineStats>(m.gather(id),
                                                        m.stats());
  };
  auto [sync_data, sync_stats] = run_backend(CommBackendKind::Sync);
  auto [async_data, async_stats] = run_backend(CommBackendKind::Async);

  EXPECT_EQ(async_data, sync_data);
  expect_ledger_reconciles(sync_stats);
  expect_ledger_reconciles(async_stats);
  // Identical message *structure*: deferral moves timing, not traffic.
  for (std::size_t d = 0; d < kCommDims; ++d) {
    for (std::size_t dir = 0; dir < kCommDirs; ++dir) {
      for (std::size_t k = 0; k < kCommKinds; ++k) {
        EXPECT_EQ(async_stats.comm.cells[d][dir][k].messages,
                  sync_stats.comm.cells[d][dir][k].messages)
            << "dim=" << d << " dir=" << dir << " kind=" << k;
        EXPECT_EQ(async_stats.comm.cells[d][dir][k].bytes,
                  sync_stats.comm.cells[d][dir][k].bytes)
            << "dim=" << d << " dir=" << dir << " kind=" << k;
      }
    }
  }
  // 8 PEs x 2 directions x rounds, one strip message each.
  EXPECT_EQ(async_stats.messages_sent,
            static_cast<std::uint64_t>(8 * 2 * rounds));
}

TEST(AsyncBackend, WaitTimingToggleRaceKeepsBooksConsistent) {
  const int n = 16;
  Machine m(MachineConfig{.pe_rows = 8, .pe_cols = 1});
  m.set_comm_backend(CommBackendKind::Async);
  int id = m.create_array(desc_2d("U", n, 1));
  m.scatter(id, iota_data(n));

  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    bool on = false;
    while (!stop.load(std::memory_order_relaxed)) {
      m.set_wait_timing(on);
      on = !on;
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });
  for (int r = 0; r < 40; ++r) {
    m.run([&](Pe& pe) { stress_round(pe, id, r); });
  }
  stop.store(true, std::memory_order_relaxed);
  toggler.join();
  m.set_wait_timing(true);

  // pool_timed_ latches the flag per run, so every per-run book is
  // either fully counted or fully skipped; the summed totals must still
  // satisfy the in-window invariant and the ledger must be exact.
  for (const PeStats& pe : m.per_pe_stats()) {
    EXPECT_LE(pe.wait.recv_wait_ns + pe.wait.overlap_wait_ns +
                  pe.wait.barrier_wait_ns,
              pe.wait.active_ns);
  }
  expect_ledger_reconciles(m.stats());
}

TEST(AsyncBackend, PendingReceivesDrainInPostingOrder) {
  // Two pending receives from the *same* neighbor (both directions on a
  // ring of 2 PE rows reduce to the same src) must drain in posting
  // order — the per-(src,dst) channels are FIFO, so an out-of-order
  // completion would unpack the wrong payload into the wrong halo.
  const int n = 8;
  Machine m(MachineConfig{.pe_rows = 2, .pe_cols = 1});
  m.set_comm_backend(CommBackendKind::Async);
  int id = m.create_array(desc_2d("U", n, 1));
  auto in = iota_data(n);
  m.scatter(id, in);
  m.run([&](Pe& pe) {
    overlap_shift(pe, id, +1, 0);
    overlap_shift(pe, id, -1, 0);
    pe.machine().comm_backend().wait_all(pe);
  });
  // Every PE can now read one cell past both dim-0 edges of its block.
  for (int p = 0; p < m.config().num_pes(); ++p) {
    LocalGrid& g = m.pe(p).grid(id);
    for (int j = g.own_lo(1); j <= g.own_hi(1); ++j) {
      for (int edge : {g.own_lo(0) - 1, g.own_hi(0) + 1}) {
        const double expected =
            in[static_cast<std::size_t>(wrap_index(edge, n) - 1) +
               static_cast<std::size_t>(j - 1) * static_cast<std::size_t>(n)];
        EXPECT_EQ((g.at({edge, j})), expected) << "pe=" << p << " j=" << j;
      }
    }
  }
}

}  // namespace
}  // namespace simpi

// Algebraic properties of the runtime shift operations, checked on the
// machine: composition, inverses, commutativity across dimensions —
// the identities communication unioning relies on (paper Section 3.3).
#include <gtest/gtest.h>

#include <numeric>

#include "simpi/machine.hpp"
#include "simpi/shift_ops.hpp"

namespace simpi {
namespace {

DistArrayDesc desc_2d(const std::string& name, int n, int halo) {
  DistArrayDesc d;
  d.name = name;
  d.rank = 2;
  d.extent = {n, n, 1};
  d.dist = {DistKind::Block, DistKind::Block, DistKind::Collapsed};
  d.halo.lo = {halo, halo, 0};
  d.halo.hi = {halo, halo, 0};
  return d;
}

std::vector<double> iota_data(int n) {
  std::vector<double> v(static_cast<std::size_t>(n) * n);
  std::iota(v.begin(), v.end(), 1.0);
  return v;
}

class ShiftAlgebra : public ::testing::TestWithParam<int> {};

TEST_P(ShiftAlgebra, CompositionEqualsSumOfShifts) {
  // CSHIFT(CSHIFT(A, a), b) == CSHIFT(A, a+b) along one dimension.
  const int n = 12;
  const int a = GetParam() % 5 - 2;
  const int b = (GetParam() / 5) % 5 - 2;
  Machine m(MachineConfig{.pe_rows = 2, .pe_cols = 2});
  int src = m.create_array(desc_2d("SRC", n, 0));
  int t1 = m.create_array(desc_2d("T1", n, 0));
  int t2 = m.create_array(desc_2d("T2", n, 0));
  int direct = m.create_array(desc_2d("D", n, 0));
  m.scatter(src, iota_data(n));
  m.run([&](Pe& pe) {
    full_cshift(pe, t1, src, a, 0);
    full_cshift(pe, t2, t1, b, 0);
    full_cshift(pe, direct, src, a + b, 0);
  });
  EXPECT_EQ(m.gather(t2), m.gather(direct)) << "a=" << a << " b=" << b;
}

TEST_P(ShiftAlgebra, ShiftsCommuteAcrossDimensions) {
  // CSHIFT(CSHIFT(A, a, 1), b, 2) == CSHIFT(CSHIFT(A, b, 2), a, 1) —
  // the commutativity communication unioning exploits.
  const int n = 12;
  const int a = GetParam() % 5 - 2;
  const int b = (GetParam() / 5) % 5 - 2;
  Machine m(MachineConfig{.pe_rows = 2, .pe_cols = 2});
  int src = m.create_array(desc_2d("SRC", n, 0));
  int t1 = m.create_array(desc_2d("T1", n, 0));
  int ab = m.create_array(desc_2d("AB", n, 0));
  int t2 = m.create_array(desc_2d("T2", n, 0));
  int ba = m.create_array(desc_2d("BA", n, 0));
  m.scatter(src, iota_data(n));
  m.run([&](Pe& pe) {
    full_cshift(pe, t1, src, a, 0);
    full_cshift(pe, ab, t1, b, 1);
    full_cshift(pe, t2, src, b, 1);
    full_cshift(pe, ba, t2, a, 0);
  });
  EXPECT_EQ(m.gather(ab), m.gather(ba)) << "a=" << a << " b=" << b;
}

TEST_P(ShiftAlgebra, InverseShiftsRestoreTheArray) {
  const int n = 12;
  const int a = GetParam() % 5 - 2;
  Machine m(MachineConfig{.pe_rows = 2, .pe_cols = 2});
  int src = m.create_array(desc_2d("SRC", n, 0));
  int t1 = m.create_array(desc_2d("T1", n, 0));
  int t2 = m.create_array(desc_2d("T2", n, 0));
  auto in = iota_data(n);
  m.scatter(src, in);
  m.run([&](Pe& pe) {
    full_cshift(pe, t1, src, a, 1);
    full_cshift(pe, t2, t1, -a, 1);
  });
  EXPECT_EQ(m.gather(t2), in);
}

TEST_P(ShiftAlgebra, LargerOverlapShiftSubsumesSmaller) {
  // After overlap_shift by +/-2, all offsets of magnitude <= 2 read
  // correctly: the subsumption rule of Section 3.3.
  const int n = 12;
  const int amount = 2;
  Machine m(MachineConfig{.pe_rows = 2, .pe_cols = 2});
  int id = m.create_array(desc_2d("U", n, amount));
  auto in = iota_data(n);
  m.scatter(id, in);
  m.run([&](Pe& pe) {
    overlap_shift(pe, id, +amount, 0);
    overlap_shift(pe, id, -amount, 0);
  });
  for (int pe = 0; pe < 4; ++pe) {
    LocalGrid& g = m.pe(pe).grid(id);
    for (int j = g.own_lo(1); j <= g.own_hi(1); ++j) {
      for (int i = g.own_lo(0); i <= g.own_hi(0); ++i) {
        for (int off = -amount; off <= amount; ++off) {
          double expected =
              in[static_cast<std::size_t>(wrap_index(i + off, n) - 1) +
                 static_cast<std::size_t>(j - 1) * static_cast<std::size_t>(n)];
          ASSERT_EQ((g.at({i + off, j})), expected)
              << "pe=" << pe << " off=" << off;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShiftAlgebra, ::testing::Range(0, 25));

TEST(ShiftAlgebra, EoShiftDoesNotWrap) {
  const int n = 8;
  Machine m(MachineConfig{.pe_rows = 2, .pe_cols = 2});
  int src = m.create_array(desc_2d("SRC", n, 0));
  int dst = m.create_array(desc_2d("DST", n, 0));
  m.scatter(src, iota_data(n));
  m.run([&](Pe& pe) {
    full_cshift(pe, dst, src, n, 0, ShiftKind::EndOff, -1.0);
  });
  // Shifting by the full extent end-off clears everything.
  for (double v : m.gather(dst)) EXPECT_EQ(v, -1.0);
}

}  // namespace
}  // namespace simpi

// Flight recorder: ring wraparound semantics, request-scoped trace
// context, incident capture, and the postmortem/Chrome-trace dumps —
// including the acceptance property that a planted
// CommInvariantViolation leaves the violating statement's span history
// in the postmortem, with no trace sink attached at all.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "driver/hpfsc.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"
#include "obs/sinks.hpp"

namespace hpfsc::obs {
namespace {

FlightEvent make_event(std::uint64_t i) {
  FlightEvent ev;
  ev.kind = FlightEvent::Kind::Counter;
  ev.ts_ns = i;
  ev.value = static_cast<double>(i);
  ev.set_name("ev-" + std::to_string(i));
  return ev;
}

TEST(FlightRecorder, RingWraparoundKeepsExactlyNewestEvents) {
  constexpr std::size_t kCap = 8;
  FlightRing ring(kCap);
  for (std::uint64_t i = 0; i < 3 * kCap + 1; ++i) ring.emit(make_event(i));
  EXPECT_EQ(ring.emitted(), 3 * kCap + 1);

  std::vector<FlightEvent> events;
  ring.snapshot(&events);
  ASSERT_EQ(events.size(), kCap);
  // Exactly the newest kCap events, oldest first.
  for (std::size_t k = 0; k < kCap; ++k) {
    const std::uint64_t want = 2 * kCap + 1 + k;
    EXPECT_EQ(events[k].ts_ns, want);
    EXPECT_EQ(std::string(events[k].name), "ev-" + std::to_string(want));
  }
}

TEST(FlightRecorder, PartiallyFilledRingSnapshotsAllEventsInOrder) {
  FlightRing ring(16);
  for (std::uint64_t i = 0; i < 5; ++i) ring.emit(make_event(i));
  std::vector<FlightEvent> events;
  ring.snapshot(&events);
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t k = 0; k < 5; ++k) EXPECT_EQ(events[k].ts_ns, k);
}

TEST(FlightRecorder, NameLongerThanSlotIsTruncatedNotOverrun) {
  FlightEvent ev;
  ev.set_name(std::string(300, 'x'));
  EXPECT_EQ(std::string(ev.name), std::string(sizeof ev.name - 1, 'x'));
}

TEST(FlightRecorder, DisabledRecorderEmitsNothing) {
  FlightRecorder& rec = FlightRecorder::instance();
  const bool was = rec.enabled();
  rec.mark("before-disable");  // registers this thread's ring
  const std::uint64_t before = rec.ring().emitted();
  rec.set_enabled(false);
  {
    Span span(nullptr, "invisible", "test");
    rec.mark("invisible-mark");
  }
  EXPECT_EQ(rec.ring().emitted(), before);
  rec.set_enabled(was);
}

TEST(FlightRecorder, IncidentAppearsInPostmortemWithPriorEvents) {
  FlightRecorder& rec = FlightRecorder::instance();
  rec.mark("step-before-the-crash");
  rec.note_incident("unit-test", "synthetic failure detail");

  const FlightIncident incident = rec.last_incident();
  EXPECT_EQ(incident.kind, "unit-test");
  EXPECT_EQ(incident.detail, "synthetic failure detail");
  EXPECT_GE(incident.count, 1);

  const std::string pm = rec.postmortem_text();
  EXPECT_NE(pm.find("flight recorder postmortem"), std::string::npos) << pm;
  EXPECT_NE(pm.find("unit-test"), std::string::npos) << pm;
  EXPECT_NE(pm.find("synthetic failure detail"), std::string::npos) << pm;
  EXPECT_NE(pm.find("step-before-the-crash"), std::string::npos) << pm;
  EXPECT_NE(pm.find("INCIDENT:unit-test"), std::string::npos) << pm;
}

TEST(FlightRecorder, ChromeTraceCarriesSpansAndMarks) {
  FlightRecorder& rec = FlightRecorder::instance();
  rec.mark("chrome-trace-probe");
  {
    Span span(nullptr, "chrome-span-probe", "test");
  }
  const std::string json = rec.chrome_trace();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json.substr(0, 40);
  EXPECT_NE(json.find("chrome-trace-probe"), std::string::npos);
  EXPECT_NE(json.find("chrome-span-probe"), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

TEST(RequestScope, NestsAndRestoresThreadLocalId) {
  const std::uint64_t outer = current_request_id();
  {
    RequestScope a(42);
    EXPECT_EQ(current_request_id(), 42u);
    {
      RequestScope b(7);
      EXPECT_EQ(current_request_id(), 7u);
      {
        RequestScope keep(0);  // 0 = keep the current id
        EXPECT_EQ(current_request_id(), 7u);
      }
      EXPECT_EQ(current_request_id(), 7u);
    }
    EXPECT_EQ(current_request_id(), 42u);
  }
  EXPECT_EQ(current_request_id(), outer);
}

TEST(RequestScope, FreshIdsAreUniqueAndNonzero) {
  const std::uint64_t a = next_request_id();
  const std::uint64_t b = next_request_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(RequestScope, SpanAutoAttachesRequestIdArg) {
  TraceSession session;
  auto sink = std::make_unique<CollectSink>();
  CollectSink* collect = sink.get();
  session.add_sink(std::move(sink));

  {
    RequestScope scope(9001);
    Span span(&session, "tagged", "test");
  }
  {
    Span span(&session, "untagged", "test");
  }
  session.flush();

  ASSERT_EQ(collect->spans.size(), 2u);
  bool tagged_found = false;
  for (const SpanRecord& rec : collect->spans) {
    bool has_id = false;
    for (const Arg& arg : rec.args) {
      if (std::string(arg.key) == "request_id") {
        has_id = true;
        EXPECT_EQ(static_cast<std::uint64_t>(arg.num), 9001u);
      }
    }
    if (rec.name == "tagged") {
      EXPECT_TRUE(has_id);
      tagged_found = true;
    } else {
      EXPECT_FALSE(has_id) << rec.name;
    }
  }
  EXPECT_TRUE(tagged_found);
}

TEST(RequestScope, FlightEventsCarryTheRequestId) {
  FlightRecorder& rec = FlightRecorder::instance();
  rec.mark("warmup");  // register the ring before counting
  {
    RequestScope scope(777);
    rec.mark("tagged-mark");
  }
  std::vector<FlightEvent> events;
  rec.ring().snapshot(&events);
  ASSERT_FALSE(events.empty());
  bool found = false;
  for (const FlightEvent& ev : events) {
    if (std::string(ev.name) == "tagged-mark") {
      EXPECT_EQ(ev.request_id, 777u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// Acceptance: a planted CommInvariantViolation produces a postmortem
// containing the violating statement's span history — with no trace
// sink attached, purely from the always-on recorder.
TEST(FlightRecorder, CommInvariantViolationPostmortemHasSpanHistory) {
  Compiler compiler;
  CompilerOptions opts = CompilerOptions::level(1);  // pre-unioning: trips
  opts.passes.offset.live_out = {"T"};
  CompiledProgram compiled = compiler.compile(kernels::kNinePointCShift,
                                              opts);
  Execution exec(std::move(compiled.program), simpi::MachineConfig{});
  exec.machine().set_comm_invariant(true);
  exec.prepare(Bindings{}.set("N", 16));
  exec.set_array("U", [](int i, int j, int) { return i * 1.5 + j; });
  EXPECT_THROW(exec.run(1), simpi::CommInvariantViolation);

  const FlightIncident incident =
      FlightRecorder::instance().last_incident();
  EXPECT_EQ(incident.kind, "comm-invariant");
  EXPECT_NE(incident.detail.find("statement context"), std::string::npos)
      << incident.detail;

  const std::string pm = FlightRecorder::instance().postmortem_text();
  EXPECT_NE(pm.find("incident: comm-invariant"), std::string::npos) << pm;
  // The PE thread that tripped still holds its span history: the run
  // entry and the overlap shifts of the violating statement.
  EXPECT_NE(pm.find("pe-run"), std::string::npos) << pm;
  EXPECT_NE(pm.find("OVERLAP_SHIFT"), std::string::npos) << pm;
  EXPECT_NE(pm.find("INCIDENT:comm-invariant"), std::string::npos) << pm;
}

// TSan acceptance: one writer hammering its ring while readers dump it
// concurrently — no data race, and every observed event is internally
// consistent (a torn slot would break ts == value).
TEST(ObsConcurrentFlightRing, EmitAndSnapshotRaceStaysConsistent) {
  FlightRing ring(64);
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    for (std::uint64_t i = 0; i < 200'000 && !stop.load(); ++i) {
      ring.emit(make_event(i));
    }
    stop.store(true);
  });

  std::uint64_t snapshots = 0;
  std::vector<FlightEvent> events;
  while (!stop.load(std::memory_order_relaxed)) {
    events.clear();
    ring.snapshot(&events);
    ASSERT_LE(events.size(), ring.capacity());
    std::uint64_t prev = 0;
    bool first = true;
    for (const FlightEvent& ev : events) {
      // Internal consistency: value mirrors ts, name mirrors both.
      ASSERT_EQ(static_cast<std::uint64_t>(ev.value), ev.ts_ns);
      ASSERT_EQ(std::string(ev.name), "ev-" + std::to_string(ev.ts_ns));
      if (!first) ASSERT_GT(ev.ts_ns, prev);  // strictly ordered
      prev = ev.ts_ns;
      first = false;
    }
    ++snapshots;
  }
  writer.join();
  EXPECT_GT(snapshots, 0u);
}

TEST(ObsConcurrentFlightRecorder, ManyThreadsEmitWhileDumping) {
  FlightRecorder& rec = FlightRecorder::instance();
  constexpr int kThreads = 4;
  constexpr int kEventsPerThread = 5'000;
  std::atomic<bool> done{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&rec, t] {
      const std::string name = "writer-" + std::to_string(t);
      for (int i = 0; i < kEventsPerThread; ++i) rec.mark(name, t);
    });
  }
  std::thread dumper([&] {
    while (!done.load()) {
      (void)rec.snapshot_all();
      (void)rec.postmortem_text(8);
    }
  });
  for (auto& th : writers) th.join();
  done.store(true);
  dumper.join();

  // Every writer's newest events survive into the final snapshot.
  const std::string pm = rec.postmortem_text();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_NE(pm.find("writer-" + std::to_string(t)), std::string::npos);
  }
}

}  // namespace
}  // namespace hpfsc::obs

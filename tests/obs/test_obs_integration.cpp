// End-to-end instrumentation contract (mirrors the PR's acceptance
// criterion): compiling and running Problem 9 with a trace session
// attached yields exactly one span per compiler pass carrying IR
// deltas, and per-PE runtime spans whose summed modeled-communication
// nanoseconds reproduce MachineStats::modeled_comm_ns.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "driver/hpfsc.hpp"
#include "driver/paper_kernels.hpp"
#include "obs/sinks.hpp"

namespace hpfsc {
namespace {

const obs::Arg* find_arg(const obs::SpanRecord& rec, const std::string& key) {
  for (const obs::Arg& a : rec.args) {
    if (key == a.key) return &a;
  }
  return nullptr;
}

std::vector<const obs::SpanRecord*> spans_named(const obs::CollectSink& sink,
                                                const std::string& name) {
  std::vector<const obs::SpanRecord*> out;
  for (const obs::SpanRecord& rec : sink.spans) {
    if (rec.name == name) out.push_back(&rec);
  }
  return out;
}

struct Traced {
  obs::TraceSession session;
  obs::CollectSink* collect = nullptr;
  CompiledProgram compiled;
  Execution::RunStats stats;
  std::unique_ptr<Execution> exec;
};

void compile_and_run_problem9(Traced& t, int level, int n, int iterations) {
  auto sink = std::make_unique<obs::CollectSink>();
  t.collect = sink.get();
  t.session.add_sink(std::move(sink));

  CompilerOptions options = CompilerOptions::level(level);
  options.passes.offset.live_out = {"T"};
  options.trace = &t.session;
  t.compiled = Compiler().compile(kernels::kProblem9, options);

  simpi::MachineConfig mc;  // 2x2 grid
  mc.cost.latency_ns = 100'000;  // SP-2-like model, no emulation
  mc.cost.ns_per_byte = 28.0;
  mc.cost.memory_ns_per_byte = 2.0;
  mc.cost.cache_ns_per_byte = 0.2;
  t.exec = std::make_unique<Execution>(std::move(t.compiled.program), mc);
  t.exec->set_trace(&t.session);
  t.exec->prepare(Bindings{}.set("N", n));
  t.exec->set_array("U", [](int i, int j, int) { return i * 0.25 + j * 0.5; });
  t.stats = t.exec->run(iterations);
}

TEST(ObsIntegration, OneSpanPerCompilerPassWithIrDeltas) {
  Traced t;
  compile_and_run_problem9(t, /*level=*/4, /*n=*/32, /*iterations=*/1);
  const obs::CollectSink& sink = *t.collect;

  for (const char* pass :
       {"pass/normalize", "pass/offset-arrays", "pass/context-partitioning",
        "pass/communication-unioning", "pass/scalarization",
        "pass/memory-optimization"}) {
    auto spans = spans_named(sink, pass);
    ASSERT_EQ(spans.size(), 1u) << pass;
    const obs::SpanRecord& rec = *spans.front();
    EXPECT_EQ(rec.category, "compile") << pass;
    EXPECT_EQ(rec.track, obs::kHostTrack) << pass;
    const obs::Arg* in = find_arg(rec, "stmts_in");
    const obs::Arg* out = find_arg(rec, "stmts_out");
    ASSERT_NE(in, nullptr) << pass;
    ASSERT_NE(out, nullptr) << pass;
    EXPECT_GT(in->num, 0.0) << pass;
    EXPECT_GT(out->num, 0.0) << pass;
  }

  // Pass-specific IR deltas surface as span args.
  {
    const obs::SpanRecord& unioning =
        *spans_named(sink, "pass/communication-unioning").front();
    const obs::Arg* eliminated = find_arg(unioning, "shifts_eliminated");
    ASSERT_NE(eliminated, nullptr);
    EXPECT_EQ(eliminated->num,
              static_cast<double>(t.compiled.pipeline.unioning.shifts_before -
                                  t.compiled.pipeline.unioning.shifts_after));
    EXPECT_GT(eliminated->num, 0.0);  // O4 unions Problem 9's shifts
  }

  // Frontend + codegen stages are timed, nested inside one "compile".
  auto compile_spans = spans_named(sink, "compile");
  ASSERT_EQ(compile_spans.size(), 1u);
  for (const char* stage :
       {"frontend/lex+parse", "frontend/lower", "codegen/lower-spmd"}) {
    auto spans = spans_named(sink, stage);
    ASSERT_EQ(spans.size(), 1u) << stage;
    EXPECT_GE(spans.front()->start_ns, compile_spans.front()->start_ns);
    EXPECT_LE(spans.front()->start_ns + spans.front()->dur_ns,
              compile_spans.front()->start_ns + compile_spans.front()->dur_ns);
  }
}

TEST(ObsIntegration, PerPeSpanCommSumsMatchMachineStats) {
  Traced t;
  compile_and_run_problem9(t, /*level=*/4, /*n=*/32, /*iterations=*/2);
  const obs::CollectSink& sink = *t.collect;

  // Sum the modeled-comm attribution of every runtime step span, per PE
  // track.  MachineStats::modeled_comm_ns is the max over PEs (critical
  // path), so the max of the per-track sums must reproduce it exactly.
  std::map<int, std::uint64_t> comm_by_track;
  std::map<int, std::uint64_t> bytes_by_track;
  int runtime_steps = 0;
  for (const obs::SpanRecord& rec : sink.spans) {
    if (rec.track == obs::kHostTrack) continue;
    const obs::Arg* comm = find_arg(rec, "modeled_comm_ns");
    if (comm == nullptr) continue;  // e.g. the whole-PE "pe-run" span
    ++runtime_steps;
    comm_by_track[rec.track] += static_cast<std::uint64_t>(comm->num);
    const obs::Arg* bytes = find_arg(rec, "bytes_sent");
    ASSERT_NE(bytes, nullptr) << rec.name;
    bytes_by_track[rec.track] += static_cast<std::uint64_t>(bytes->num);
  }
  ASSERT_EQ(comm_by_track.size(), 4u);  // one track per PE on the 2x2 grid
  EXPECT_GT(runtime_steps, 0);

  std::uint64_t max_comm = 0;
  std::uint64_t total_bytes = 0;
  for (const auto& [track, sum] : comm_by_track) max_comm = std::max(max_comm, sum);
  for (const auto& [track, sum] : bytes_by_track) total_bytes += sum;
  EXPECT_EQ(max_comm, t.stats.machine.modeled_comm_ns);
  EXPECT_EQ(total_bytes, t.stats.machine.bytes_sent);

  // O4 runs shifts: every PE track must carry at least one OVERLAP_SHIFT
  // span and one KERNEL span.
  for (const auto& [track, sum] : comm_by_track) {
    bool has_shift = false;
    bool has_kernel = false;
    for (const obs::SpanRecord& rec : sink.spans) {
      if (rec.track != track) continue;
      if (rec.name.rfind("OVERLAP_SHIFT(", 0) == 0) has_shift = true;
      if (rec.name.rfind("KERNEL(", 0) == 0) has_kernel = true;
    }
    EXPECT_TRUE(has_shift) << "track " << track;
    EXPECT_TRUE(has_kernel) << "track " << track;
  }

  // The host-track "execute" span reports the machine totals.
  auto exec_spans = spans_named(sink, "execute");
  ASSERT_EQ(exec_spans.size(), 1u);
  const obs::Arg* messages = find_arg(*exec_spans.front(), "messages");
  ASSERT_NE(messages, nullptr);
  EXPECT_EQ(messages->num,
            static_cast<double>(t.stats.machine.messages_sent));

  // Track names were registered for host + all PEs.
  EXPECT_EQ(sink.track_names.at(obs::kHostTrack), "host");
  EXPECT_EQ(sink.track_names.at(obs::pe_track(0)), "PE0");
  EXPECT_EQ(sink.track_names.at(obs::pe_track(3)), "PE3");
}

TEST(ObsIntegration, UntracedRunStillWorksAndMatchesTraced) {
  // Same program without any session: results identical, no spans
  // required anywhere (the disabled path must not change semantics).
  Traced traced;
  compile_and_run_problem9(traced, 4, 16, 1);
  auto traced_t = traced.exec->get_array("T");

  CompilerOptions options = CompilerOptions::level(4);
  options.passes.offset.live_out = {"T"};
  CompiledProgram compiled = Compiler().compile(kernels::kProblem9, options);
  Execution exec(std::move(compiled.program), simpi::MachineConfig{});
  exec.prepare(Bindings{}.set("N", 16));
  exec.set_array("U", [](int i, int j, int) { return i * 0.25 + j * 0.5; });
  exec.run(1);
  EXPECT_EQ(exec.get_array("T"), traced_t);
}

}  // namespace
}  // namespace hpfsc

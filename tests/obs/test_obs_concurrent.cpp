// Concurrent TraceSession use, as the service worker pool exercises it:
// many threads emitting spans and counters into one session/sink
// concurrently (and racing against flush) must interleave records
// without loss or corruption.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "obs/sinks.hpp"

namespace hpfsc::obs {
namespace {

constexpr int kThreads = 8;
constexpr int kSpansPerThread = 200;

TEST(ObsConcurrent, ManyThreadsOneCollectSinkNoLossNoCorruption) {
  TraceSession session;
  auto sink = std::make_unique<CollectSink>();
  CollectSink* collect = sink.get();
  session.add_sink(std::move(sink));

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string name = "worker-" + std::to_string(t);
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span span(&session, name.c_str(), "service", t);
        span.arg("thread", t);
        span.arg("i", i);
        session.counter("service.requests", static_cast<double>(i), t);
      }
    });
  }
  for (auto& th : threads) th.join();
  session.flush();

  ASSERT_EQ(collect->spans.size(),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
  ASSERT_EQ(collect->counters.size(),
            static_cast<std::size_t>(kThreads * kSpansPerThread));

  // Per-record integrity: every span's name, track, and args are
  // mutually consistent (a torn record would mismatch).
  std::vector<int> per_thread(kThreads, 0);
  for (const SpanRecord& rec : collect->spans) {
    ASSERT_EQ(rec.args.size(), 2u);
    ASSERT_EQ(std::string(rec.args[0].key), "thread");
    const int t = static_cast<int>(rec.args[0].num);
    ASSERT_GE(t, 0);
    ASSERT_LT(t, kThreads);
    EXPECT_EQ(rec.name, "worker-" + std::to_string(t));
    EXPECT_EQ(rec.track, t);
    per_thread[static_cast<std::size_t>(t)]++;
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(per_thread[static_cast<std::size_t>(t)], kSpansPerThread);
  }
}

TEST(ObsConcurrent, EmittersRaceFlushAndSinkSwaps) {
  TraceSession session;
  session.add_sink(std::make_unique<CollectSink>());

  std::atomic<bool> stop{false};
  std::vector<std::thread> emitters;
  for (int t = 0; t < 4; ++t) {
    emitters.emplace_back([&, t] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        Span span(&session, "racer", "service", t);
        span.arg("i", i++);
        session.counter("race.counter", i, t);
      }
    });
  }
  for (int round = 0; round < 50; ++round) {
    session.flush();
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& th : emitters) th.join();
  session.flush();
  SUCCEED();  // no crash / deadlock / sanitizer report
}

TEST(ObsConcurrent, ConcurrentJsonlStreamStaysLineWellFormed) {
  // The service's worker threads share one JSONL sink; every line must
  // stay a self-contained record even under contention.
  std::string path = testing::TempDir() + "obs_concurrent.jsonl";
  {
    TraceSession session;
    session.add_sink(std::make_unique<JsonlSink>(path));
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < 100; ++i) {
          Span span(&session, "jsonl-worker", "service", t);
          span.arg("i", i);
        }
      });
    }
    for (auto& th : threads) th.join();
    session.flush();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"jsonl-worker\""), std::string::npos);
    ++lines;
  }
  EXPECT_EQ(lines, static_cast<std::size_t>(kThreads * 100));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hpfsc::obs

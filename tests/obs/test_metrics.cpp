// Histogram bucket math and MetricsRegistry export formats.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "obs/sinks.hpp"

namespace hpfsc::obs {
namespace {

TEST(Histogram, EmptyIsAllZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
}

TEST(Histogram, SingleSampleIsExactAtEveryQuantile) {
  Histogram h;
  h.record(42.25);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42.25);
  EXPECT_EQ(h.max(), 42.25);
  EXPECT_EQ(h.mean(), 42.25);
  // The representative is clamped to [min, max], so a single sample is
  // reported exactly at every quantile.
  EXPECT_EQ(h.quantile(0.0), 42.25);
  EXPECT_EQ(h.p50(), 42.25);
  EXPECT_EQ(h.p90(), 42.25);
  EXPECT_EQ(h.p99(), 42.25);
  EXPECT_EQ(h.quantile(1.0), 42.25);
}

TEST(Histogram, ZeroAndNegativeLandInTheZeroBucket) {
  Histogram h;
  h.record(0.0);
  h.record(-5.0);  // clamped to 0
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.p50(), 0.0);
}

TEST(Histogram, QuantilesAreWithinRelativeErrorBound) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 1000.0);
  // Worst-case relative error of a log-linear bucket with 16 sub-buckets
  // is 1/32; allow 5% for quantile-rank discreteness on top.
  EXPECT_NEAR(h.p50(), 500.0, 500.0 * 0.05);
  EXPECT_NEAR(h.p90(), 900.0, 900.0 * 0.05);
  EXPECT_NEAR(h.p99(), 990.0, 990.0 * 0.05);
}

TEST(Histogram, MergeOfDisjointRangesKeepsBothTails) {
  Histogram lo;
  lo.record(1.0);
  lo.record(2.0);
  lo.record(4.0);
  Histogram hi;
  hi.record(1000.0);
  hi.record(2000.0);
  hi.record(4000.0);
  lo.merge(hi);
  EXPECT_EQ(lo.count(), 6u);
  EXPECT_EQ(lo.min(), 1.0);
  EXPECT_EQ(lo.max(), 4000.0);
  EXPECT_EQ(lo.sum(), 7007.0);
  // Rank ceil(0.5*6)=3 falls on the last low sample, rank 6 on the
  // highest one.
  EXPECT_NEAR(lo.p50(), 4.0, 4.0 * 0.05);
  EXPECT_NEAR(lo.quantile(1.0), 4000.0, 4000.0 * 0.05);

  // Merging an empty histogram changes nothing.
  Histogram empty;
  lo.merge(empty);
  EXPECT_EQ(lo.count(), 6u);
  EXPECT_EQ(lo.min(), 1.0);

  // Merging *into* an empty histogram adopts the source's extrema.
  Histogram fresh;
  fresh.merge(lo);
  EXPECT_EQ(fresh.count(), 6u);
  EXPECT_EQ(fresh.min(), 1.0);
  EXPECT_EQ(fresh.max(), 4000.0);
}

TEST(Histogram, OutOfRangeValuesClampButKeepExactExtrema) {
  Histogram h;
  h.record(1e-9);  // below 2^-20
  h.record(1e15);  // above 2^43
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 1e-9);
  EXPECT_EQ(h.max(), 1e15);
  // The top bucket's representative is the exact max.
  EXPECT_EQ(h.quantile(1.0), 1e15);
}

TEST(Histogram, ClearResetsToEmpty) {
  Histogram h;
  h.record(7.0);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.p50(), 0.0);
}

TEST(MetricsRegistry, CountersGaugesAndHistogramsAreIndependent) {
  MetricsRegistry reg;
  reg.add("requests");
  reg.add("requests", 2.0);
  reg.set_gauge("depth", 5.0);
  reg.set_gauge("depth", 3.0);  // last write wins
  reg.observe("latency_ms", 10.0);
  reg.observe("latency_ms", 20.0);
  EXPECT_EQ(reg.counter("requests"), 3.0);
  EXPECT_EQ(reg.gauge("depth"), 3.0);
  EXPECT_EQ(reg.histogram("latency_ms").count(), 2u);
  EXPECT_EQ(reg.counter("absent"), 0.0);
  EXPECT_EQ(reg.gauge("absent"), 0.0);
  EXPECT_EQ(reg.histogram("absent").count(), 0u);
}

TEST(MetricsRegistry, MergeFromSumsCountersAndMergesHistograms) {
  MetricsRegistry a;
  a.add("n", 1.0);
  a.observe("h", 1.0);
  MetricsRegistry b;
  b.add("n", 2.0);
  b.set_gauge("g", 9.0);
  b.observe("h", 1000.0);
  a.merge_from(b);
  EXPECT_EQ(a.counter("n"), 3.0);
  EXPECT_EQ(a.gauge("g"), 9.0);
  EXPECT_EQ(a.histogram("h").count(), 2u);
  EXPECT_EQ(a.histogram("h").max(), 1000.0);
}

// The wait-state tee writes one labeled histogram per category
// (serve.wait.recv_ms / barrier_ms / pool_ms, simpi.*_wait_ms).
// Merging per-worker registries — what emit_metrics does when it folds
// the service registry into the default one — must keep each label's
// samples separate and sum their counts, never cross-pollinate buckets.
TEST(MetricsRegistry, MergeFromKeepsWaitStateLabelsSeparate) {
  MetricsRegistry worker1;
  worker1.observe("serve.wait.recv_ms", 2.0);
  worker1.observe("serve.wait.recv_ms", 4.0);
  worker1.observe("serve.wait.barrier_ms", 0.5);
  worker1.observe("serve.swap_gate_wait_ms", 0.0);
  MetricsRegistry worker2;
  worker2.observe("serve.wait.recv_ms", 8.0);
  worker2.observe("serve.wait.pool_ms", 1.5);
  worker2.observe("serve.swap_gate_wait_ms", 3.0);
  MetricsRegistry total;
  total.merge_from(worker1);
  total.merge_from(worker2);
  EXPECT_EQ(total.histogram("serve.wait.recv_ms").count(), 3u);
  EXPECT_EQ(total.histogram("serve.wait.recv_ms").sum(), 14.0);
  EXPECT_EQ(total.histogram("serve.wait.recv_ms").max(), 8.0);
  EXPECT_EQ(total.histogram("serve.wait.barrier_ms").count(), 1u);
  EXPECT_EQ(total.histogram("serve.wait.pool_ms").count(), 1u);
  // The uncontended swap gate records 0.0 — merge must keep the zero
  // sample (count 2) rather than dropping it as empty.
  EXPECT_EQ(total.histogram("serve.swap_gate_wait_ms").count(), 2u);
  EXPECT_EQ(total.histogram("serve.swap_gate_wait_ms").sum(), 3.0);
  // Merging is idempotent on disjoint labels: re-merging an empty
  // registry changes nothing.
  total.merge_from(MetricsRegistry{});
  EXPECT_EQ(total.histogram("serve.wait.recv_ms").count(), 3u);
}

TEST(MetricsRegistry, JsonExportCarriesAllThreeKinds) {
  MetricsRegistry reg;
  reg.add("c", 2.0);
  reg.set_gauge("g", 7.0);
  reg.observe("h", 4.0);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\":{\"c\":2}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\":{\"g\":7}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"h\":{\"count\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\":4"), std::string::npos) << json;
}

TEST(MetricsRegistry, PrometheusGoldenText) {
  MetricsRegistry reg;
  reg.add("service.cache.miss", 3.0);
  reg.set_gauge("pool-depth", 2.0);
  reg.observe("request_ms", 2.0);
  EXPECT_EQ(reg.to_prometheus(),
            "# TYPE hpfsc_service_cache_miss counter\n"
            "hpfsc_service_cache_miss 3\n"
            "# TYPE hpfsc_pool_depth gauge\n"
            "hpfsc_pool_depth 2\n"
            "# TYPE hpfsc_request_ms summary\n"
            "hpfsc_request_ms{quantile=\"0.5\"} 2\n"
            "hpfsc_request_ms{quantile=\"0.9\"} 2\n"
            "hpfsc_request_ms{quantile=\"0.99\"} 2\n"
            "hpfsc_request_ms_sum 2\n"
            "hpfsc_request_ms_count 1\n"
            "# TYPE hpfsc_request_ms_max gauge\n"
            "hpfsc_request_ms_max 2\n");
}

TEST(MetricsRegistry, SummaryHasOneLinePerHistogram) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.summary(), "");
  reg.add("ignored.counter", 1.0);
  EXPECT_EQ(reg.summary(), "");  // counters don't produce lines
  reg.observe("a_ms", 4.0);
  reg.observe("b_ms", 8.0);
  EXPECT_EQ(reg.summary(),
            "a_ms: count=1 p50=4 p90=4 p99=4 max=4\n"
            "b_ms: count=1 p50=8 p90=8 p99=8 max=8\n");
}

TEST(TraceSessionTee, CountersTeeIntoRegistryAsGauges) {
  MetricsRegistry reg;
  TraceSession session;
  session.set_metrics(&reg);
  // No sinks installed: spans are inert, but counter samples still tee.
  EXPECT_FALSE(session.enabled());
  session.counter("cache.hits", 5.0);
  session.counter("cache.hits", 8.0);  // cumulative sample: last wins
  EXPECT_EQ(reg.gauge("cache.hits"), 8.0);
  session.set_metrics(nullptr);
  session.counter("cache.hits", 11.0);
  EXPECT_EQ(reg.gauge("cache.hits"), 8.0);  // detached
}

// Suite name starts with "ObsConcurrent" so the CI TSan job picks these
// up via its -R regex.
TEST(ObsConcurrentMetrics, ParallelRecordingIsRaceFree) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.add("ops");
        reg.set_gauge("last", static_cast<double>(t));
        reg.observe("lat_ms", static_cast<double>(i % 100) + 1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.counter("ops"), kThreads * kPerThread);
  EXPECT_EQ(reg.histogram("lat_ms").count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_GE(reg.gauge("last"), 0.0);
  EXPECT_LT(reg.gauge("last"), kThreads);
}

TEST(Histogram, MergeDisjointBucketSetsKeepsBothPopulations) {
  // a's samples live many powers of two below b's: no shared bucket.
  Histogram a;
  for (int i = 0; i < 100; ++i) a.record(0.001 * (1 + i % 4));
  Histogram b;
  for (int i = 0; i < 100; ++i) b.record(1.0e6 * (1 + i % 4));
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 0.001);
  EXPECT_EQ(a.max(), 4.0e6);
  // Exactly half the mass is tiny, half huge: p50 stays in the small
  // population's range while p90 lands in the large one.
  EXPECT_LE(a.p50(), 0.005);
  EXPECT_GE(a.p90(), 1.0e6 * (1.0 - 1.0 / 16.0));
}

TEST(Histogram, MergeOverlappingBucketSetsSumsBucketwise) {
  Histogram a;
  Histogram b;
  Histogram reference;
  for (int i = 1; i <= 500; ++i) {
    a.record(static_cast<double>(i));
    reference.record(static_cast<double>(i));
  }
  for (int i = 250; i <= 750; ++i) {
    b.record(static_cast<double>(i));
    reference.record(static_cast<double>(i));
  }
  a.merge(b);
  // The merged histogram is indistinguishable from having recorded
  // every sample into one histogram: identical counts, moments, and
  // bucket contents (hence identical quantiles).
  EXPECT_EQ(a.count(), reference.count());
  EXPECT_EQ(a.sum(), reference.sum());
  EXPECT_EQ(a.min(), reference.min());
  EXPECT_EQ(a.max(), reference.max());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.quantile(q), reference.quantile(q)) << q;
  }
}

TEST(Histogram, MergeIntoEmptyEqualsSource) {
  Histogram src;
  src.record(3.5);
  src.record(7.25);
  Histogram dst;
  dst.merge(src);
  EXPECT_EQ(dst.count(), 2u);
  EXPECT_EQ(dst.sum(), src.sum());
  EXPECT_EQ(dst.min(), 3.5);
  EXPECT_EQ(dst.max(), 7.25);
  // And the reverse: merging an empty histogram changes nothing.
  Histogram empty;
  dst.merge(empty);
  EXPECT_EQ(dst.count(), 2u);
  EXPECT_EQ(dst.max(), 7.25);
}

TEST(MetricsRegistry, MergeFromDisjointAndOverlappingHistogramSets) {
  MetricsRegistry a;
  a.observe("shared", 1.0);
  a.observe("only_a", 10.0);
  MetricsRegistry b;
  for (int i = 0; i < 9; ++i) b.observe("shared", 1024.0);
  b.observe("only_b", 20.0);
  a.merge_from(b);
  EXPECT_EQ(a.histogram("shared").count(), 10u);
  EXPECT_EQ(a.histogram("shared").min(), 1.0);
  EXPECT_EQ(a.histogram("shared").max(), 1024.0);
  // 9 of 10 samples are 1024: the median sits in the large bucket even
  // though the two source histograms had disjoint bucket sets.
  EXPECT_GE(a.histogram("shared").p50(), 1024.0 * (1.0 - 1.0 / 16.0));
  EXPECT_EQ(a.histogram("only_a").count(), 1u);
  EXPECT_EQ(a.histogram("only_b").count(), 1u);
}

TEST(Prometheus, EscapesLabelValues) {
  EXPECT_EQ(prom_escape_label("plain"), "plain");
  EXPECT_EQ(prom_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(prom_escape_label("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(prom_escape_label("line1\nline2"), "line1\\nline2");
}

TEST(Prometheus, LabeledMetricEscapesAndExportsParseably) {
  MetricsRegistry reg;
  // A generated stencil name with every character that can corrupt the
  // exposition format: backslash, double-quote, newline.
  reg.set_gauge(labeled_metric("roofline.gflops",
                               {{"stencil", "gen\\seed\n\"1\""},
                                {"tier", "compiled"}}),
                2.5);
  const std::string prom = reg.to_prometheus();
  EXPECT_NE(
      prom.find("hpfsc_roofline_gflops{stencil=\"gen\\\\seed\\n\\\"1\\\"\","
                "tier=\"compiled\"} 2.5"),
      std::string::npos)
      << prom;
  // No raw newline may survive inside any sample line's label block.
  for (std::size_t pos = 0, eol; pos < prom.size(); pos = eol + 1) {
    eol = prom.find('\n', pos);
    if (eol == std::string::npos) break;
    const std::string line = prom.substr(pos, eol - pos);
    const std::size_t open = line.find('{');
    if (open != std::string::npos) {
      EXPECT_NE(line.find('}', open), std::string::npos) << line;
    }
  }
}

TEST(Prometheus, LabeledHistogramMergesQuantileIntoLabelBlock) {
  MetricsRegistry reg;
  reg.observe(labeled_metric("roofline.run_ms", {{"stencil", "fivept"}}),
              4.0);
  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("# TYPE hpfsc_roofline_run_ms summary"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find(
                "hpfsc_roofline_run_ms{stencil=\"fivept\",quantile=\"0.5\"}"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("hpfsc_roofline_run_ms_sum{stencil=\"fivept\"} 4"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("hpfsc_roofline_run_ms_count{stencil=\"fivept\"} 1"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("hpfsc_roofline_run_ms_max{stencil=\"fivept\"} 4"),
            std::string::npos)
      << prom;
}

TEST(ObsConcurrentMetrics, MergeFromWhileRecording) {
  MetricsRegistry source;
  MetricsRegistry sink;
  std::thread writer([&source] {
    for (int i = 0; i < 5000; ++i) source.observe("h", 1.0);
  });
  for (int i = 0; i < 50; ++i) sink.merge_from(source);
  writer.join();
  sink.clear();
  sink.merge_from(source);
  EXPECT_EQ(sink.histogram("h").count(), 5000u);
}

}  // namespace
}  // namespace hpfsc::obs

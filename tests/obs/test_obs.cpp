// The observability core: span nesting, counter attribution, sink
// output well-formedness (Chrome trace JSON parsed back with a real
// parser), and the disabled-path zero-allocation guarantee.
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/sinks.hpp"

// ---- Global allocation counter (for the zero-allocation test) -------
// Only the *difference* across a region is inspected; the tests using
// it are single-threaded while the region runs.
namespace {
std::atomic<std::size_t> g_alloc_calls{0};
}

void* operator new(std::size_t size) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace hpfsc::obs {
namespace {

// ---- Minimal JSON parser (the parse-back half of the contract) ------

struct JValue {
  enum Kind { Null, Bool, Num, Str, Arr, Obj } kind = Null;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JValue> arr;
  std::map<std::string, JValue> obj;

  const JValue& at(const std::string& key) const {
    auto it = obj.find(key);
    if (it == obj.end()) throw std::runtime_error("missing key " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return obj.count(key) != 0; }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view s) : s_(s) {}

  JValue parse() {
    JValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw std::runtime_error("JSON error at " + std::to_string(pos_) + ": " +
                             why);
  }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool accept(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': literal("true"); return make_bool(true);
      case 'f': literal("false"); return make_bool(false);
      case 'n': literal("null"); return JValue{};
      default: return number();
    }
  }
  static JValue make_bool(bool b) {
    JValue v;
    v.kind = JValue::Bool;
    v.b = b;
    return v;
  }
  void literal(const char* lit) {
    for (const char* p = lit; *p; ++p) {
      if (pos_ >= s_.size() || s_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
  }
  JValue object() {
    expect('{');
    JValue v;
    v.kind = JValue::Obj;
    skip_ws();
    if (accept('}')) return v;
    while (true) {
      skip_ws();
      JValue key = string_value();
      skip_ws();
      expect(':');
      v.obj.emplace(key.str, value());
      skip_ws();
      if (accept('}')) return v;
      expect(',');
    }
  }
  JValue array() {
    expect('[');
    JValue v;
    v.kind = JValue::Arr;
    skip_ws();
    if (accept(']')) return v;
    while (true) {
      v.arr.push_back(value());
      skip_ws();
      if (accept(']')) return v;
      expect(',');
    }
  }
  JValue string_value() {
    expect('"');
    JValue v;
    v.kind = JValue::Str;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("bad escape");
        char e = s_[pos_++];
        switch (e) {
          case '"': v.str += '"'; break;
          case '\\': v.str += '\\'; break;
          case '/': v.str += '/'; break;
          case 'n': v.str += '\n'; break;
          case 't': v.str += '\t'; break;
          case 'r': v.str += '\r'; break;
          case 'b': v.str += '\b'; break;
          case 'f': v.str += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("bad \\u escape");
            unsigned code = static_cast<unsigned>(
                std::strtoul(std::string(s_.substr(pos_, 4)).c_str(),
                             nullptr, 16));
            pos_ += 4;
            // Test traces only contain ASCII escapes.
            v.str += static_cast<char>(code);
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        v.str += c;
      }
    }
  }
  JValue number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    JValue v;
    v.kind = JValue::Num;
    v.num = std::strtod(std::string(s_.substr(start, pos_ - start)).c_str(),
                        nullptr);
    return v;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------- core behavior --

TEST(Span, NestingIsReflectedInTimestamps) {
  TraceSession session;
  auto sink = std::make_unique<CollectSink>();
  CollectSink* collect = sink.get();
  session.add_sink(std::move(sink));

  {
    Span outer(&session, "outer", "test");
    {
      Span inner(&session, "inner", "test");
      inner.arg("depth", 2);
    }
    {
      Span inner2(&session, "inner2", "test");
    }
  }

  // Spans close inside-out.
  ASSERT_EQ(collect->spans.size(), 3u);
  const SpanRecord& inner = collect->spans[0];
  const SpanRecord& inner2 = collect->spans[1];
  const SpanRecord& outer = collect->spans[2];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner2.name, "inner2");
  EXPECT_EQ(outer.name, "outer");
  // Containment: both inner intervals lie within the outer interval.
  for (const SpanRecord* s : {&inner, &inner2}) {
    EXPECT_GE(s->start_ns, outer.start_ns);
    EXPECT_LE(s->start_ns + s->dur_ns, outer.start_ns + outer.dur_ns);
  }
  // Ordering: inner2 starts at/after inner ends.
  EXPECT_GE(inner2.start_ns, inner.start_ns + inner.dur_ns);
}

TEST(Span, ArgsAndRename) {
  TraceSession session;
  auto sink = std::make_unique<CollectSink>();
  CollectSink* collect = sink.get();
  session.add_sink(std::move(sink));

  {
    Span span(&session, "raw", "test", pe_track(2));
    span.rename("renamed(U)");
    span.arg("count", 42);
    span.arg("ns", std::uint64_t{1234567890123});
    span.arg_str("array", "U");
  }
  ASSERT_EQ(collect->spans.size(), 1u);
  const SpanRecord& rec = collect->spans[0];
  EXPECT_EQ(rec.name, "renamed(U)");
  EXPECT_EQ(rec.track, 3);  // pe_track(2)
  ASSERT_EQ(rec.args.size(), 3u);
  EXPECT_STREQ(rec.args[0].key, "count");
  EXPECT_EQ(rec.args[0].num, 42.0);
  EXPECT_EQ(rec.args[1].num, 1234567890123.0);
  EXPECT_FALSE(rec.args[2].numeric);
  EXPECT_EQ(rec.args[2].str, "U");
}

TEST(Counter, AttributionAndMonotonicTimestamps) {
  TraceSession session;
  auto sink = std::make_unique<CollectSink>();
  CollectSink* collect = sink.get();
  session.add_sink(std::move(sink));

  session.counter("heap", 100.0);
  session.counter("heap", 250.0, pe_track(1));
  session.counter("messages", 3.0, pe_track(0));

  ASSERT_EQ(collect->counters.size(), 3u);
  EXPECT_EQ(collect->counters[0].name, "heap");
  EXPECT_EQ(collect->counters[0].value, 100.0);
  EXPECT_EQ(collect->counters[0].track, kHostTrack);
  EXPECT_EQ(collect->counters[1].track, pe_track(1));
  EXPECT_EQ(collect->counters[2].name, "messages");
  EXPECT_LE(collect->counters[0].ts_ns, collect->counters[1].ts_ns);
  EXPECT_LE(collect->counters[1].ts_ns, collect->counters[2].ts_ns);
}

TEST(Session, TrackNamesReachSinks) {
  TraceSession session;
  auto sink = std::make_unique<CollectSink>();
  CollectSink* collect = sink.get();
  session.add_sink(std::move(sink));
  session.set_track_name(kHostTrack, "host");
  session.set_track_name(pe_track(0), "PE0");
  EXPECT_EQ(collect->track_names.at(0), "host");
  EXPECT_EQ(collect->track_names.at(1), "PE0");
}

// ------------------------------------------------ disabled-path cost --

TEST(Span, NullSessionIsInert) {
  Span span(nullptr, "nothing");
  EXPECT_FALSE(span.active());
  span.arg("k", 1.0);
  span.arg_str("s", "v");
  span.rename("other");
}

TEST(Span, SessionWithoutSinksIsDisabled) {
  TraceSession session;
  EXPECT_FALSE(session.enabled());
  Span span(&session, "nothing");
  EXPECT_FALSE(span.active());
}

TEST(Span, DisabledPathPerformsZeroHeapAllocations) {
  TraceSession session;  // no sinks -> disabled
  // The flight-recorder tee registers this thread's ring on first use
  // (the one allocation it is allowed); warm it so the measured loop
  // exercises the steady state, where a span is allocation-free even
  // with the recorder enabled.
  FlightRecorder::instance().mark("warmup");
  const std::size_t before = g_alloc_calls.load();
  for (int i = 0; i < 100; ++i) {
    Span a(nullptr, "null-session", "cat", 7);
    a.arg("bytes", 4096.0);
    a.arg_str("array", "U");
    Span b(&session, "disabled-session");
    b.arg("messages", 2.0);
    b.rename("never-used");
    session.counter("never", 1.0);
  }
  EXPECT_EQ(g_alloc_calls.load(), before);
}

// ------------------------------------------------------ sink output --

TEST(ChromeTraceSink, ProducesParseableTraceEventJson) {
  std::ostringstream out;
  {
    TraceSession session;
    session.add_sink(std::make_unique<ChromeTraceSink>(out));
    session.set_track_name(pe_track(0), "PE0");
    {
      Span outer(&session, "compile", "compile");
      Span inner(&session, "pass/normalize", "compile");
      inner.arg("stmts_in", 9);
      inner.arg_str("note", "quote\" and \\backslash");
    }
    session.counter("heap_bytes", 1024.0, pe_track(0));
    session.clear_sinks();  // destroys the sink, closing the document
  }

  JValue doc = JsonParser(out.str()).parse();
  ASSERT_EQ(doc.kind, JValue::Obj);
  const JValue& events = doc.at("traceEvents");
  ASSERT_EQ(events.kind, JValue::Arr);
  ASSERT_EQ(events.arr.size(), 4u);  // M + 2 X + C

  const JValue& meta = events.arr[0];
  EXPECT_EQ(meta.at("ph").str, "M");
  EXPECT_EQ(meta.at("name").str, "thread_name");
  EXPECT_EQ(meta.at("args").at("name").str, "PE0");

  // Spans close inside-out: pass/normalize first, then compile.
  const JValue& pass = events.arr[1];
  EXPECT_EQ(pass.at("ph").str, "X");
  EXPECT_EQ(pass.at("name").str, "pass/normalize");
  EXPECT_EQ(pass.at("cat").str, "compile");
  EXPECT_EQ(pass.at("args").at("stmts_in").num, 9.0);
  EXPECT_EQ(pass.at("args").at("note").str, "quote\" and \\backslash");
  EXPECT_TRUE(pass.has("ts"));
  EXPECT_TRUE(pass.has("dur"));

  const JValue& compile = events.arr[2];
  EXPECT_EQ(compile.at("name").str, "compile");
  // Containment in microsecond timestamps.
  EXPECT_LE(compile.at("ts").num, pass.at("ts").num);
  EXPECT_GE(compile.at("ts").num + compile.at("dur").num,
            pass.at("ts").num + pass.at("dur").num);

  const JValue& counter = events.arr[3];
  EXPECT_EQ(counter.at("ph").str, "C");
  EXPECT_EQ(counter.at("args").at("value").num, 1024.0);
  EXPECT_EQ(counter.at("tid").num, 1.0);
}

TEST(JsonlSink, EachLineIsASelfContainedObject) {
  std::ostringstream out;
  TraceSession session;
  session.add_sink(std::make_unique<JsonlSink>(out));
  {
    Span span(&session, "KERNEL(T)", "runtime", pe_track(3));
    span.arg("modeled_comm_ns", 429568.0);
  }
  session.counter("messages", 16.0);
  session.flush();

  std::istringstream lines(out.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    JValue v = JsonParser(line).parse();
    ASSERT_EQ(v.kind, JValue::Obj);
    EXPECT_TRUE(v.has("kind"));
    EXPECT_TRUE(v.has("name"));
  }
  EXPECT_EQ(count, 2);

  JValue span_line = JsonParser(out.str().substr(0, out.str().find('\n')))
                         .parse();
  EXPECT_EQ(span_line.at("kind").str, "span");
  EXPECT_EQ(span_line.at("name").str, "KERNEL(T)");
  EXPECT_EQ(span_line.at("track").num, 4.0);
  EXPECT_EQ(span_line.at("args").at("modeled_comm_ns").num, 429568.0);
}

TEST(SummarySink, AggregatesCountsAndArgSums) {
  TraceSession session;
  auto sink = std::make_unique<SummarySink>();
  SummarySink* summary = sink.get();
  session.add_sink(std::move(sink));
  for (int i = 0; i < 3; ++i) {
    Span span(&session, "OVERLAP_SHIFT(U)", "runtime", pe_track(i));
    span.arg("bytes_sent", 100.0);
  }
  {
    Span span(&session, "KERNEL(T)", "runtime");
  }
  std::string table = summary->render();
  EXPECT_NE(table.find("OVERLAP_SHIFT(U)"), std::string::npos) << table;
  EXPECT_NE(table.find("x3"), std::string::npos) << table;
  EXPECT_NE(table.find("KERNEL(T)"), std::string::npos);
  EXPECT_NE(table.find("bytes_sent"), std::string::npos);
  EXPECT_NE(table.find("300"), std::string::npos);
}

TEST(JsonHelpers, EscapeAndNumberFormatting) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(json_number(-7.0), "-7");
  EXPECT_EQ(json_number(0.5), "0.5");
  // Non-integral magnitudes round-trip through the printed form.
  EXPECT_EQ(std::strtod(json_number(1e300).c_str(), nullptr), 1e300);
  EXPECT_EQ(std::strtod(json_number(3.14159).c_str(), nullptr), 3.14159);
}

}  // namespace
}  // namespace hpfsc::obs

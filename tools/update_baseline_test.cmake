# Self-test for `bench_gate --update-baseline`, run as a ctest script:
#
#   cmake -DGATE=<bench_gate> -DDATA=<testdata dir> -DWORK=<scratch dir>
#         -P update_baseline_test.cmake
#
# Sequence: a regressing current run fails the plain gate; the same run
# with --update-baseline exits 0, rewrites the (copied) baseline, and
# notes the refresh in the findings report; the rewritten baseline then
# passes a plain gate against the very run that failed before.
foreach(var GATE DATA WORK)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY ${WORK})
file(COPY ${DATA}/baseline.json DESTINATION ${WORK})
set(BASE ${WORK}/baseline.json)
set(CURRENT ${DATA}/current_latency_regression.json)

execute_process(COMMAND ${GATE} --baseline=${BASE} --current=${CURRENT}
                RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "expected plain gate to fail (exit 1), got ${rc}")
endif()

execute_process(COMMAND ${GATE} --baseline=${BASE} --current=${CURRENT}
                        --update-baseline
                        --report=${WORK}/update_report.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--update-baseline exited ${rc}:\n${out}")
endif()
if(NOT out MATCHES "baseline .* rewritten from")
  message(FATAL_ERROR "missing rewrite confirmation in output:\n${out}")
endif()

file(READ ${WORK}/update_report.json report)
if(NOT report MATCHES "\"baseline_updated\":true")
  message(FATAL_ERROR "report lacks baseline_updated:true:\n${report}")
endif()

file(READ ${BASE} rewritten)
if(NOT rewritten MATCHES "baseline refreshed by bench_gate --update-baseline")
  message(FATAL_ERROR "rewritten baseline lacks provenance note")
endif()

execute_process(COMMAND ${GATE} --baseline=${BASE} --current=${CURRENT}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "rewritten baseline should pass against its own source run, "
          "got exit ${rc}:\n${out}")
endif()

message(STATUS "update-baseline self-test passed")

// stencil_fuzz: differential-testing driver.
//
//   stencil_fuzz --seeds=200                 # 200 fresh seeds from --seed-base
//   stencil_fuzz --seed=42                   # one seed, prints the program
//   stencil_fuzz --corpus=tests/difftest/corpus
//   stencil_fuzz --emit-corpus=DIR --seeds=8 # regenerate committed corpus
//   stencil_fuzz --self-test                 # planted-miscompile + reducer
//
// Every failing seed is reduced to a minimal still-failing program and
// printed (and written under --out, if given) with the seed needed to
// reproduce:  stencil_fuzz --seed=<S>.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "difftest/generator.hpp"
#include "difftest/oracle.hpp"
#include "difftest/reducer.hpp"

namespace fs = std::filesystem;
using namespace hpfsc::difftest;

namespace {

struct Args {
  int seeds = 0;
  std::uint64_t seed_base = 1;
  std::uint64_t single_seed = 0;
  bool has_single_seed = false;
  std::string corpus;
  std::string emit_corpus;
  std::string out;
  bool self_test = false;
  int n = 12;
  int steps = 2;
};

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end && *end == '\0';
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](const char* flag) -> const char* {
      const std::size_t n = std::strlen(flag);
      return a.compare(0, n, flag) == 0 ? a.c_str() + n : nullptr;
    };
    std::uint64_t u = 0;
    if (const char* v = value("--seeds=")) {
      args.seeds = std::atoi(v);
    } else if (const char* v = value("--seed-base=")) {
      if (!parse_u64(v, args.seed_base)) return false;
    } else if (const char* v = value("--seed=")) {
      if (!parse_u64(v, args.single_seed)) return false;
      args.has_single_seed = true;
    } else if (const char* v = value("--corpus=")) {
      args.corpus = v;
    } else if (const char* v = value("--emit-corpus=")) {
      args.emit_corpus = v;
    } else if (const char* v = value("--out=")) {
      args.out = v;
    } else if (const char* v = value("--n=")) {
      args.n = std::atoi(v);
    } else if (const char* v = value("--steps=")) {
      args.steps = std::atoi(v);
    } else if (a == "--self-test") {
      args.self_test = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      (void)u;
      return false;
    }
  }
  return args.seeds > 0 || args.has_single_seed || !args.corpus.empty() ||
         !args.emit_corpus.empty() || args.self_test;
}

OracleConfig make_config(const Args& args) {
  OracleConfig cfg;
  cfg.n = args.n;
  cfg.steps = args.steps;
  return cfg;
}

void print_repro(const ProgramSpec& spec, const char* banner) {
  std::printf("%s (seed %" PRIu64 ", %zu statement%s)\n", banner, spec.seed,
              spec.stmts.size(), spec.stmts.size() == 1 ? "" : "s");
  std::printf("--- reproduce with: stencil_fuzz --seed=%" PRIu64 " ---\n%s",
              spec.seed, render(spec).c_str());
  std::printf("---\n");
}

/// Runs one seed through the oracle; on failure reduces it, prints the
/// minimal repro, and (optionally) writes it under out_dir.
bool run_seed(std::uint64_t seed, const OracleConfig& cfg,
              const std::string& out_dir) {
  const ProgramSpec spec = generate(seed);
  const OracleResult result = run_oracle(spec, cfg);
  if (result.ok()) return true;

  std::printf("FAIL seed %" PRIu64 " (%d cells):\n", seed, result.cells_run);
  for (const Divergence& d : result.divergences) {
    std::printf("  %s\n", d.str().c_str());
  }
  const ReduceResult reduced = reduce(
      spec, [&](const ProgramSpec& cand) { return !run_oracle(cand, cfg).ok(); });
  print_repro(reduced.spec, "minimal repro");
  for (const Divergence& d : run_oracle(reduced.spec, cfg).divergences) {
    std::printf("  %s\n", d.str().c_str());
  }

  if (!out_dir.empty()) {
    fs::create_directories(out_dir);
    const fs::path path =
        fs::path(out_dir) / ("repro_seed_" + std::to_string(seed) + ".f");
    std::ofstream os(path);
    os << "! seed: " << seed << "\n"
       << "! minimal repro, " << reduced.spec.stmts.size() << " statement(s)\n";
    for (const Divergence& d : result.divergences) {
      os << "! divergence: " << d.str() << "\n";
    }
    os << render(reduced.spec);
    std::printf("wrote %s\n", path.string().c_str());
  }
  return false;
}

/// Corpus files carry the seed in a leading "! seed: <n>" comment; the
/// program text below it is for human readers — the seed regenerates it.
bool corpus_seed(const fs::path& file, std::uint64_t& seed) {
  std::ifstream is(file);
  std::string line;
  while (std::getline(is, line)) {
    const auto pos = line.find("seed:");
    if (pos == std::string::npos) continue;
    return parse_u64(line.substr(pos + 5).c_str() +
                         std::strspn(line.substr(pos + 5).c_str(), " \t"),
                     seed);
  }
  return false;
}

int emit_corpus(const Args& args) {
  fs::create_directories(args.emit_corpus);
  for (int i = 0; i < args.seeds; ++i) {
    const std::uint64_t seed = args.seed_base + static_cast<std::uint64_t>(i);
    const ProgramSpec spec = generate(seed);
    const fs::path path = fs::path(args.emit_corpus) /
                          ("seed_" + std::to_string(seed) + ".f");
    std::ofstream os(path);
    os << "! seed: " << seed << "\n" << render(spec);
    std::printf("wrote %s\n", path.string().c_str());
  }
  return 0;
}

/// Plants a miscompile via the test-only fault hook, checks the oracle
/// catches it, and checks the reducer shrinks the program to at most 5
/// statements while the planted divergence reproduces.
int self_test(const Args& args) {
  OracleConfig cfg = make_config(args);
  // A narrow matrix keeps the fixpoint reduction fast; the fault fires
  // at the highest level only, so the O1 column must stay clean.
  cfg.levels = {1, 4};
  cfg.grids = {{1, 1}, {2, 2}};
  cfg.both_tiers = false;
  cfg.fault = [](const ProgramSpec& spec, const OracleCell& cell,
                 const std::string& array, std::vector<double>& values) {
    if (cell.level == 4 && array == live_out_names(spec).front() &&
        !values.empty()) {
      values.front() += 0.5;
    }
  };

  const std::uint64_t seed = 20260806;
  const ProgramSpec spec = generate(seed);
  const OracleResult planted = run_oracle(spec, cfg);
  if (planted.ok()) {
    std::printf("self-test FAILED: planted miscompile was not caught\n");
    return 1;
  }
  bool o4_divergence = false;
  for (const Divergence& d : planted.divergences) {
    if (d.cell.level == 4 && d.detail.empty()) o4_divergence = true;
    if (d.cell.level == 1) {
      std::printf("self-test FAILED: clean O1 column diverged: %s\n",
                  d.str().c_str());
      return 1;
    }
  }
  if (!o4_divergence) {
    std::printf("self-test FAILED: no element divergence at O4\n");
    return 1;
  }

  const ReduceResult reduced = reduce(
      spec, [&](const ProgramSpec& cand) { return !run_oracle(cand, cfg).ok(); });
  print_repro(reduced.spec, "self-test minimal repro");
  if (reduced.spec.stmts.size() > 5) {
    std::printf("self-test FAILED: reduced to %zu statements (want <= 5)\n",
                reduced.spec.stmts.size());
    return 1;
  }
  std::printf(
      "self-test OK: planted fault caught and reduced to %zu statement(s) "
      "in %d checks\n",
      reduced.spec.stmts.size(), reduced.checks);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    std::fprintf(
        stderr,
        "usage: stencil_fuzz [--seeds=N] [--seed-base=S] [--seed=S]\n"
        "                    [--corpus=DIR] [--emit-corpus=DIR] [--out=DIR]\n"
        "                    [--n=12] [--steps=2] [--self-test]\n");
    return 2;
  }
  if (!args.emit_corpus.empty()) return emit_corpus(args);
  if (args.self_test) return self_test(args);

  const OracleConfig cfg = make_config(args);
  int failures = 0;
  int total = 0;

  if (args.has_single_seed) {
    const ProgramSpec spec = generate(args.single_seed);
    std::printf("%s", render(spec).c_str());
    ++total;
    if (!run_seed(args.single_seed, cfg, args.out)) ++failures;
  }
  if (!args.corpus.empty()) {
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(args.corpus)) {
      if (entry.path().extension() == ".f") files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& file : files) {
      std::uint64_t seed = 0;
      if (!corpus_seed(file, seed)) {
        std::printf("FAIL %s: no \"! seed: <n>\" header\n",
                    file.string().c_str());
        ++failures;
        continue;
      }
      ++total;
      if (!run_seed(seed, cfg, args.out)) ++failures;
    }
  }
  for (int i = 0; i < args.seeds; ++i) {
    ++total;
    if (!run_seed(args.seed_base + static_cast<std::uint64_t>(i), cfg,
                  args.out)) {
      ++failures;
    }
  }

  std::printf("%d/%d programs passed the oracle matrix\n", total - failures,
              total);
  return failures == 0 ? 0 : 1;
}

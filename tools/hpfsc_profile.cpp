// hpfsc_profile: wait-state attribution profiler (DESIGN.md §13).
// Replays a kernel (or a serve-batch request file) on the simulated
// machine and reconciles where every PE's wall time went:
//
//   compute + recv_wait + barrier_wait + pool_wait + overhead == wall
//
// per PE, within tolerance.  On top of the per-PE table it reports the
// critical-path summary: the exposed-communication fraction (total
// recv-wait over P x wall machine time) and the Amdahl bound on the
// speedup perfect communication/computation overlap could buy — the
// quantity that decides whether overlap scheduling (ROADMAP #2) is
// worth building for a given stencil and grid.
//
//   hpfsc_profile [-O0..-O4|--xlhpf] [--n=N] [--steps=K]
//                 [--tier=auto|interp|simd] [--pe-rows=R] [--pe-cols=C]
//                 [--json-out=FILE] [--quiet]
//                 (FILE | @problem9 | @ninept | @ninept-array |
//                  @fivept | @jacobi)
//   hpfsc_profile --serve-batch=FILE [--workers=K] [--tiered]
//                 [--json-out=FILE] [--quiet]
//
// Exit status: 0 when every profiled run reconciles, 2 when any run's
// categories fail to close against its wall time (CI treats that as an
// instrumentation regression), 1 on usage/compile errors.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "driver/hpfsc.hpp"
#include "executor/wait_profile.hpp"
#include "serve/daemon.hpp"

namespace {

const char* builtin(const std::string& name) {
  using namespace hpfsc::kernels;
  if (name == "@problem9") return kProblem9;
  if (name == "@ninept") return kNinePointCShift;
  if (name == "@ninept-array") return kNinePointArraySyntax;
  if (name == "@fivept") return kFivePointArraySyntax;
  if (name == "@jacobi") return kJacobiTimeLoop;
  return nullptr;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: hpfsc_profile [-O0..-O4|--xlhpf] [--n=N] [--steps=K]\n"
      "                     [--tier=auto|interp|simd] [--pe-rows=R] "
      "[--pe-cols=C]\n"
      "                     [--comm-backend=sync|async] [--emulate-cost]\n"
      "                     [--json-out=FILE] [--quiet]\n"
      "                     (FILE | @problem9 | @ninept | @ninept-array "
      "| @fivept | @jacobi)\n"
      "       hpfsc_profile --serve-batch=FILE [--workers=K] [--tiered]\n"
      "                     [--json-out=FILE] [--quiet]\n"
      "  Replays the kernel (or request file) and reconciles per-PE "
      "wall time into\n"
      "  compute / recv-wait / barrier-wait / pool-wait / overhead, "
      "then reports the\n"
      "  exposed-communication fraction and the Amdahl overlap speedup "
      "bound.\n"
      "  Exit 2 when any run fails to reconcile.\n");
}

const char* flag_value(const std::string& arg, const char* flag) {
  const std::size_t n = std::strlen(flag);
  if (arg.compare(0, n, flag) != 0 || arg.size() <= n || arg[n] != '=') {
    return nullptr;
  }
  return arg.c_str() + n + 1;
}

bool load_source(const std::string& input, std::string* out) {
  if (const char* k = builtin(input)) {
    *out = k;
    return true;
  }
  std::ifstream file(input);
  if (!file) return false;
  std::stringstream buf;
  buf << file.rdbuf();
  *out = buf.str();
  return true;
}

bool parse_level(std::string word, hpfsc::CompilerOptions* out) {
  while (!word.empty() && word.front() == '-') word.erase(word.begin());
  if (word == "xlhpf") {
    *out = hpfsc::CompilerOptions::xlhpf_like();
    return true;
  }
  if (word.size() == 2 && word[0] == 'O' && word[1] >= '0' &&
      word[1] <= '4') {
    *out = hpfsc::CompilerOptions::level(word[1] - '0');
    return true;
  }
  return false;
}

bool parse_tier(const std::string& word, hpfsc::KernelTier* out) {
  if (word == "auto") {
    *out = hpfsc::KernelTier::Auto;
  } else if (word == "interp" || word == "interpreter") {
    *out = hpfsc::KernelTier::InterpreterOnly;
  } else if (word == "simd") {
    *out = hpfsc::KernelTier::Simd;
  } else {
    return false;
  }
  return true;
}

void init_input_arrays(hpfsc::Execution& exec) {
  if (exec.program().find_array("U") >= 0) {
    exec.set_array("U",
                   [](int i, int j, int) { return i * 0.25 + j * 0.5; });
  }
}

struct Options {
  hpfsc::CompilerOptions compiler = hpfsc::CompilerOptions::level(3);
  std::string input;
  std::string batch_file;
  std::string json_out;
  hpfsc::KernelTier tier = hpfsc::KernelTier::Auto;
  int n = 64;
  int steps = 3;
  int pe_rows = 0;  ///< 0 = PROCESSORS directive / machine default
  int pe_cols = 0;
  int workers = 2;
  bool tiered = false;
  bool quiet = false;
  /// unset = machine default (HPFSC_COMM_BACKEND or config default)
  std::optional<simpi::CommBackendKind> comm_backend;
  bool emulate_cost = false;
};

/// One profiled run: label + profile, collected for the JSON report.
struct Profiled {
  std::string label;
  hpfsc::WaitProfile profile;
};

int report(const std::vector<Profiled>& runs, const Options& opt) {
  bool all_reconciled = !runs.empty();
  for (const Profiled& run : runs) {
    if (!opt.quiet) {
      std::printf("== %s ==\n%s", run.label.c_str(),
                  run.profile.to_text().c_str());
    }
    if (!run.profile.reconciled()) {
      all_reconciled = false;
      std::fprintf(stderr,
                   "hpfsc_profile: %s: wait-state categories do not "
                   "reconcile against wall time (max overhead %.3f ms)\n",
                   run.label.c_str(),
                   run.profile.max_overhead_seconds * 1e3);
    }
  }
  if (!opt.json_out.empty()) {
    std::ofstream out(opt.json_out, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "hpfsc_profile: cannot write %s\n",
                   opt.json_out.c_str());
      return 1;
    }
    out << "{\"reconciled\":" << (all_reconciled ? "true" : "false")
        << ",\"runs\":[";
    for (std::size_t i = 0; i < runs.size(); ++i) {
      if (i) out << ',';
      out << "{\"label\":\"" << runs[i].label
          << "\",\"profile\":" << runs[i].profile.to_json() << '}';
    }
    out << "]}\n";
  }
  if (!opt.quiet) {
    std::printf("reconciled: %s (%zu run%s)\n",
                all_reconciled ? "yes" : "NO", runs.size(),
                runs.size() == 1 ? "" : "s");
  }
  return all_reconciled ? 0 : 2;
}

int profile_kernel(const Options& opt) {
  std::string source;
  if (!load_source(opt.input, &source)) {
    std::fprintf(stderr, "hpfsc_profile: cannot read %s\n",
                 opt.input.c_str());
    return 1;
  }
  hpfsc::Compiler compiler;
  hpfsc::CompiledProgram compiled = compiler.compile(source, opt.compiler);
  simpi::MachineConfig mc{};
  if (compiled.processors) {
    mc.pe_rows = compiled.processors->first;
    mc.pe_cols = compiled.processors->second;
  }
  if (opt.pe_rows > 0) mc.pe_rows = opt.pe_rows;
  if (opt.pe_cols > 0) mc.pe_cols = opt.pe_cols;
  mc.cost.emulate = opt.emulate_cost;
  hpfsc::Execution exec(std::move(compiled.program), mc);
  if (opt.comm_backend) exec.machine().set_comm_backend(*opt.comm_backend);
  exec.set_kernel_tier(opt.tier);
  exec.prepare(hpfsc::Bindings{}.set("N", opt.n).set("NSTEPS", 1));
  init_input_arrays(exec);
  // Warm-up: the machine's first run spawns the PE worker threads,
  // which would land inside the profiled wall window as unattributed
  // overhead.  Then retry a couple of fresh runs at the default
  // tolerance — a descheduling spike on a loaded host shows up as
  // uniform per-PE overhead, while a systematic accounting bug fails
  // every attempt.
  exec.run(1);
  hpfsc::Execution::RunStats stats = exec.run(opt.steps);
  for (int attempt = 0;
       attempt < 2 && !hpfsc::WaitProfile::from_run(stats).reconciled();
       ++attempt) {
    stats = exec.run(opt.steps);
  }
  Profiled run;
  run.label = opt.input + " " + std::to_string(mc.pe_rows) + "x" +
              std::to_string(mc.pe_cols) + " n=" + std::to_string(opt.n) +
              " steps=" + std::to_string(opt.steps);
  run.profile = hpfsc::WaitProfile::from_run(stats);
  return report({run}, opt);
}

/// "INPUT LEVEL N STEPS [CLIENT]" — the hpfsc_dump serve-batch format.
bool parse_batch_line(const std::string& line, hpfsc::serve::ServeRequest* out,
                      std::string* input) {
  std::istringstream words(line);
  std::string level;
  int n = 0;
  int steps = 0;
  if (!(words >> *input >> level >> n >> steps)) return false;
  hpfsc::CompilerOptions options;
  if (!parse_level(level, &options)) return false;
  std::string client;
  if (words >> client) out->client = client;
  std::string source;
  if (!load_source(*input, &source)) return false;
  out->request.source = std::move(source);
  out->request.options = options;
  out->request.bindings = hpfsc::Bindings{}.set("N", n).set("NSTEPS", 1);
  out->request.steps = steps;
  out->request.init = init_input_arrays;
  return true;
}

int profile_batch(const Options& opt) {
  std::ifstream file(opt.batch_file);
  if (!file) {
    std::fprintf(stderr, "hpfsc_profile: cannot read %s\n",
                 opt.batch_file.c_str());
    return 1;
  }
  hpfsc::serve::DaemonConfig config;
  config.workers = opt.workers;
  config.tiered = opt.tiered;
  hpfsc::serve::ServeDaemon daemon(std::move(config));

  std::vector<std::string> labels;
  std::vector<hpfsc::serve::ServeRequest> requests;
  std::string line;
  int lineno = 0;
  while (std::getline(file, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    hpfsc::serve::ServeRequest request;
    std::string input;
    if (!parse_batch_line(line, &request, &input)) {
      std::fprintf(stderr, "hpfsc_profile: %s:%d: bad request line\n",
                   opt.batch_file.c_str(), lineno);
      return 1;
    }
    labels.push_back(input + " (" + request.client + ")");
    requests.push_back(std::move(request));
  }
  // Up to three full replays: the first request for a (plan, bindings)
  // key on a worker compiles and spawns that machine's PE threads
  // inside the profiled wall window, which shows up as uniform per-PE
  // overhead.  A replay against the now-warm daemon closes the books;
  // a systematic accounting bug fails every attempt.
  std::vector<Profiled> runs;
  for (int attempt = 0; attempt < 3; ++attempt) {
    std::vector<std::future<hpfsc::serve::ServeResponse>> futures;
    for (const hpfsc::serve::ServeRequest& request : requests) {
      futures.push_back(daemon.submit(hpfsc::serve::ServeRequest(request)));
    }
    runs.clear();
    bool all_ok = true;
    for (std::size_t i = 0; i < futures.size(); ++i) {
      hpfsc::serve::ServeResponse response = futures[i].get();
      Profiled run;
      run.label = "request " + std::to_string(i) + ": " + labels[i];
      run.profile = hpfsc::WaitProfile::from_run(response.stats);
      all_ok = all_ok && run.profile.reconciled();
      runs.push_back(std::move(run));
    }
    if (all_ok) break;
  }
  daemon.shutdown();
  return report(runs, opt);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    hpfsc::CompilerOptions level;
    if (parse_level(arg, &level) &&
        (arg.rfind("-O", 0) == 0 || arg == "--xlhpf")) {
      opt.compiler = level;
    } else if (const char* v = flag_value(arg, "--n")) {
      opt.n = std::atoi(v);
    } else if (const char* v = flag_value(arg, "--steps")) {
      opt.steps = std::atoi(v);
    } else if (const char* v = flag_value(arg, "--tier")) {
      if (!parse_tier(v, &opt.tier)) {
        usage();
        return 1;
      }
    } else if (const char* v = flag_value(arg, "--pe-rows")) {
      opt.pe_rows = std::atoi(v);
    } else if (const char* v = flag_value(arg, "--pe-cols")) {
      opt.pe_cols = std::atoi(v);
    } else if (const char* v = flag_value(arg, "--comm-backend")) {
      if (std::strcmp(v, "sync") == 0) {
        opt.comm_backend = simpi::CommBackendKind::Sync;
      } else if (std::strcmp(v, "async") == 0) {
        opt.comm_backend = simpi::CommBackendKind::Async;
      } else {
        usage();
        return 1;
      }
    } else if (arg == "--emulate-cost") {
      opt.emulate_cost = true;
    } else if (const char* v = flag_value(arg, "--json-out")) {
      opt.json_out = v;
    } else if (const char* v = flag_value(arg, "--serve-batch")) {
      opt.batch_file = v;
    } else if (const char* v = flag_value(arg, "--workers")) {
      opt.workers = std::atoi(v);
    } else if (arg == "--tiered") {
      opt.tiered = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "hpfsc_profile: unknown flag %s\n", arg.c_str());
      usage();
      return 1;
    } else {
      opt.input = arg;
    }
  }
  if (opt.batch_file.empty() && opt.input.empty()) {
    usage();
    return 1;
  }
  try {
    return opt.batch_file.empty() ? profile_kernel(opt)
                                  : profile_batch(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hpfsc_profile: %s\n", e.what());
    return 1;
  }
}

// bench_gate: the CI perf-regression gate.  Compares a fresh benchmark
// snapshot against a committed baseline and fails (exit 1) when
//
//   * a benchmark present in the baseline is missing from the current
//     run (a silently-dropped benchmark is a regression in coverage),
//   * real_time grew by more than --latency-threshold (relative, default
//     0.25 = 25%), or
//   * any "messages*" counter increased at all — message counts on the
//     simulated machine are deterministic, so *any* growth means the
//     compiler started communicating more (the paper's headline metric
//     moving backwards),
//   * the "warm_misses" counter increased at all — a warm-started
//     serving fleet recompiling anything breaks the persistence
//     contract, or
//   * a "*_p99" counter (tail latency exported by the serve overload
//     benchmark) grew by more than --latency-threshold.
//
// Benchmarks only present in the current run are reported but never
// fail the gate (new coverage is welcome).
//
//   bench_gate --baseline=FILE --current=FILE
//              [--latency-threshold=0.25] [--report=FILE]
//              [--update-baseline]
//
// --update-baseline accepts the fresh run as the new truth: after
// reporting the diff as usual it rewrites the baseline file from the
// current run's records (normalized raw-format JSON, one record per
// benchmark, counters preserved) and exits 0.  The findings report
// carries "baseline_updated": true so a CI pipeline can distinguish a
// gate pass from a baseline refresh.
//
// Both inputs may be raw google-benchmark JSON ("benchmarks" is an
// array) or the curated bench/snapshots/ format ("benchmarks" is an
// object mapping suite name -> array).  Aggregate rows (run_type !=
// "iteration") are ignored.  --report writes a machine-readable diff
// (the CI job uploads it as an artifact).
//
// Self-contained on purpose: the hand-rolled JSON parser below avoids a
// third-party dependency for a 300-line tool.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------- JSON

struct JsonValue;
using JsonPtr = std::shared_ptr<JsonValue>;

struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonPtr> array;
  // Vector-of-pairs keeps insertion order (irrelevant here) and allows
  // duplicate keys without surprises.
  std::vector<std::pair<std::string, JsonPtr>> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return v.get();
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonPtr parse() {
    JsonPtr v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonPtr value() {
    const char c = peek();
    auto v = std::make_shared<JsonValue>();
    if (c == '{') {
      v->type = JsonValue::Type::Object;
      ++pos_;
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      for (;;) {
        expect('"');
        --pos_;  // re-read the quote inside string()
        std::string key = string_body();
        expect(':');
        v->object.emplace_back(std::move(key), value());
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      v->type = JsonValue::Type::Array;
      ++pos_;
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      for (;;) {
        v->array.push_back(value());
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v->type = JsonValue::Type::String;
      v->string = string_body();
      return v;
    }
    if (c == 't' || c == 'f') {
      const char* word = c == 't' ? "true" : "false";
      if (text_.compare(pos_, std::strlen(word), word) != 0) {
        fail("bad literal");
      }
      pos_ += std::strlen(word);
      v->type = JsonValue::Type::Bool;
      v->boolean = c == 't';
      return v;
    }
    if (c == 'n') {
      if (text_.compare(pos_, 4, "null") != 0) fail("bad literal");
      pos_ += 4;
      return v;  // Null
    }
    // Number.
    const std::size_t start = pos_;
    if (text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    v->type = JsonValue::Type::Number;
    v->number = std::strtod(text_.c_str() + start, nullptr);
    return v;
  }

  std::string string_body() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u':
            // Benchmark names are ASCII; keep the escape verbatim.
            out += "\\u";
            break;
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// --------------------------------------------------- benchmark records

struct BenchRecord {
  double real_time_ms = 0.0;
  /// Numeric fields other than the google-benchmark bookkeeping ones —
  /// the per-benchmark counters (messages, bytes_sent, ...).
  std::map<std::string, double> counters;
};

double to_ms(double value, const std::string& unit) {
  if (unit == "ns") return value / 1e6;
  if (unit == "us") return value / 1e3;
  if (unit == "s") return value * 1e3;
  return value;  // "ms" or absent
}

void add_record(const JsonValue& bench,
                std::map<std::string, BenchRecord>* out) {
  const JsonValue* run_type = bench.find("run_type");
  if (run_type != nullptr && run_type->string != "iteration") return;
  const JsonValue* name = bench.find("name");
  const JsonValue* real_time = bench.find("real_time");
  if (name == nullptr || real_time == nullptr) return;
  BenchRecord rec;
  const JsonValue* unit = bench.find("time_unit");
  rec.real_time_ms =
      to_ms(real_time->number, unit != nullptr ? unit->string : "ms");
  static const char* kBookkeeping[] = {
      "real_time",       "cpu_time",   "iterations",
      "repetition_index", "threads",   "repetitions",
      "family_index",    "per_family_instance_index"};
  for (const auto& [key, v] : bench.object) {
    if (v->type != JsonValue::Type::Number) continue;
    bool skip = false;
    for (const char* b : kBookkeeping) skip |= key == b;
    if (!skip) rec.counters[key] = v->number;
  }
  out->emplace(name->string, std::move(rec));
}

/// Loads either raw google-benchmark JSON ("benchmarks": [...]) or the
/// curated snapshot format ("benchmarks": {suite: [...]}).
std::map<std::string, BenchRecord> load_snapshot(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open '" + path + "'");
  std::stringstream buf;
  buf << file.rdbuf();
  const std::string text = buf.str();
  JsonPtr root = JsonParser(text).parse();
  if (root->type != JsonValue::Type::Object) {
    throw std::runtime_error("'" + path + "': top level is not an object");
  }
  const JsonValue* benchmarks = root->find("benchmarks");
  if (benchmarks == nullptr) {
    throw std::runtime_error("'" + path + "': no \"benchmarks\" key");
  }
  std::map<std::string, BenchRecord> out;
  if (benchmarks->type == JsonValue::Type::Array) {
    for (const JsonPtr& b : benchmarks->array) add_record(*b, &out);
  } else if (benchmarks->type == JsonValue::Type::Object) {
    for (const auto& [suite, arr] : benchmarks->object) {
      (void)suite;
      for (const JsonPtr& b : arr->array) add_record(*b, &out);
    }
  } else {
    throw std::runtime_error("'" + path + "': \"benchmarks\" is neither an "
                             "array nor an object");
  }
  if (out.empty()) {
    throw std::runtime_error("'" + path + "': no benchmark records");
  }
  return out;
}

// ------------------------------------------------------------- compare

struct Finding {
  std::string benchmark;
  std::string what;   ///< "latency" | "counter" | "missing" | "new"
  std::string detail;
  double baseline = 0.0;
  double current = 0.0;
  bool fails = false;
};

/// One gate rule's evaluation tally.  `checked` counts the comparisons
/// the rule actually ran, so a clean pass with zero checks (no such
/// counters in the snapshot) is distinguishable from real coverage.
struct RuleTally {
  const char* name;
  const char* description;
  bool advisory;  ///< true = the rule warns but never fails the gate
  int checked = 0;
  int failures = 0;  ///< findings; for advisory rules these are warnings
};

/// The rules the gate enforces, in evaluation order.  --list prints
/// this table; the per-rule summary (stdout + --report "rules") indexes
/// into it.
enum Rule { kMissing, kLatency, kMessages, kWarmMisses, kP99, kNew };

std::vector<RuleTally> fresh_rules() {
  return {
      {"missing", "baseline benchmark absent from the current run", false},
      {"latency",
       "real_time grew more than --latency-threshold (default 25%)", false},
      {"messages",
       "any messages* counter increase (deterministic comm counts)", false},
      {"warm_misses",
       "any warm_misses increase (warm start must not recompile)", false},
      {"p99", "*_p99 counter grew more than --latency-threshold", false},
      {"new", "current-only benchmark: reported, never fails the gate",
       true},
  };
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void write_report(const std::string& path, const std::vector<Finding>& all,
                  const std::vector<RuleTally>& rules, bool passed,
                  int failures, int warnings, bool baseline_updated) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_gate: cannot write report '%s'\n",
                 path.c_str());
    return;
  }
  out << "{\"passed\":" << (passed ? "true" : "false")
      << ",\"failures\":" << failures << ",\"warnings\":" << warnings
      << ",\"baseline_updated\":" << (baseline_updated ? "true" : "false")
      << ",\"rules\":[";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const RuleTally& r = rules[i];
    if (i) out << ",";
    out << "{\"rule\":\"" << r.name << "\",\"checked\":" << r.checked
        << ",\"findings\":" << r.failures << ",\"advisory\":"
        << (r.advisory ? "true" : "false") << ",\"passed\":"
        << (r.advisory || r.failures == 0 ? "true" : "false") << "}";
  }
  out << "],\"findings\":[";
  bool first = true;
  for (const Finding& f : all) {
    if (!first) out << ",";
    first = false;
    out << "{\"benchmark\":\"" << json_escape(f.benchmark) << "\",\"what\":\""
        << f.what << "\",\"detail\":\"" << json_escape(f.detail)
        << "\",\"baseline\":" << f.baseline << ",\"current\":" << f.current
        << ",\"fails\":" << (f.fails ? "true" : "false") << "}";
  }
  out << "]}\n";
}

/// Rewrites `path` as a normalized raw-format snapshot of `records`
/// (what --update-baseline commits as the new truth).  The output
/// round-trips through load_snapshot: real_time in ms plus every
/// numeric counter, one record per benchmark, sorted by name.
bool write_snapshot(const std::string& path,
                    const std::map<std::string, BenchRecord>& records,
                    const std::string& source) {
  std::ofstream out(path);
  if (!out) return false;
  out.precision(17);
  out << "{\n  \"context\": {\n"
      << "    \"note\": \"baseline refreshed by bench_gate "
      << "--update-baseline from " << json_escape(source) << "\"\n"
      << "  },\n  \"benchmarks\": [\n";
  bool first = true;
  for (const auto& [name, rec] : records) {
    if (!first) out << ",\n";
    first = false;
    out << "    {\n      \"name\": \"" << json_escape(name) << "\",\n"
        << "      \"run_type\": \"iteration\",\n"
        << "      \"real_time\": " << rec.real_time_ms << ",\n"
        << "      \"time_unit\": \"ms\"";
    for (const auto& [counter, value] : rec.counters) {
      out << ",\n      \"" << json_escape(counter) << "\": " << value;
    }
    out << "\n    }";
  }
  out << "\n  ]\n}\n";
  return out.good();
}

void usage() {
  std::fprintf(stderr,
               "usage: bench_gate --baseline=FILE --current=FILE "
               "[--latency-threshold=F] [--report=FILE] "
               "[--update-baseline]\n"
               "       bench_gate --list\n"
               "  --list prints the rules the gate enforces and exits.\n"
               "  Exit 0 when the current snapshot is within threshold of "
               "the baseline,\n"
               "  1 on regression (latency > threshold, any messages* "
               "counter increase,\n"
               "  or a benchmark missing from the current run), 2 on usage/"
               "I/O errors.\n"
               "  With --update-baseline the diff is reported, the baseline "
               "file is rewritten\n"
               "  from the current run, and the gate exits 0.\n");
}

const char* flag_value(const char* arg, const char* flag) {
  const std::size_t n = std::strlen(flag);
  if (std::strncmp(arg, flag, n) != 0 || arg[n] != '=') return nullptr;
  return arg + n + 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  std::string report_path;
  double threshold = 0.25;
  bool update_baseline = false;

  for (int a = 1; a < argc; ++a) {
    const char* v = nullptr;
    if ((v = flag_value(argv[a], "--baseline"))) {
      baseline_path = v;
    } else if ((v = flag_value(argv[a], "--current"))) {
      current_path = v;
    } else if ((v = flag_value(argv[a], "--report"))) {
      report_path = v;
    } else if ((v = flag_value(argv[a], "--latency-threshold"))) {
      threshold = std::strtod(v, nullptr);
    } else if (std::strcmp(argv[a], "--update-baseline") == 0) {
      update_baseline = true;
    } else if (std::strcmp(argv[a], "--list") == 0) {
      std::printf("bench_gate rules (evaluation order):\n");
      for (const RuleTally& r : fresh_rules()) {
        std::printf("  %-12s %s%s\n", r.name, r.description,
                    r.advisory ? " [advisory]" : "");
      }
      return 0;
    } else if (std::strcmp(argv[a], "-h") == 0 ||
               std::strcmp(argv[a], "--help") == 0) {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "bench_gate: unknown argument '%s'\n", argv[a]);
      usage();
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    usage();
    return 2;
  }
  if (!(threshold >= 0.0)) {
    std::fprintf(stderr, "bench_gate: bad --latency-threshold\n");
    return 2;
  }

  std::map<std::string, BenchRecord> baseline;
  std::map<std::string, BenchRecord> current;
  try {
    baseline = load_snapshot(baseline_path);
    current = load_snapshot(current_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_gate: %s\n", e.what());
    return 2;
  }

  std::vector<Finding> findings;
  std::vector<RuleTally> rules = fresh_rules();
  int failures = 0;
  for (const auto& [name, base] : baseline) {
    auto it = current.find(name);
    ++rules[kMissing].checked;
    if (it == current.end()) {
      ++rules[kMissing].failures;
      findings.push_back({name, "missing",
                          "present in baseline, absent from current run",
                          base.real_time_ms, 0.0, true});
      ++failures;
      continue;
    }
    const BenchRecord& cur = it->second;
    if (base.real_time_ms > 0.0) {
      ++rules[kLatency].checked;
      const double rel =
          (cur.real_time_ms - base.real_time_ms) / base.real_time_ms;
      if (rel > threshold) {
        ++rules[kLatency].failures;
        char detail[128];
        std::snprintf(detail, sizeof detail,
                      "real_time +%.1f%% (threshold %.1f%%)", rel * 100.0,
                      threshold * 100.0);
        findings.push_back({name, "latency", detail, base.real_time_ms,
                            cur.real_time_ms, true});
        ++failures;
      }
    }
    for (const auto& [counter, base_value] : base.counters) {
      auto cit = cur.counters.find(counter);
      if (cit == cur.counters.end()) continue;
      // Deterministic counters: any growth at all is a regression.
      // messages* are the paper's headline metric; warm_misses is the
      // serving layer's zero-recompilation warm-start contract.
      const bool strict = counter.rfind("messages", 0) == 0 ||
                          counter == "warm_misses";
      if (strict) {
        const Rule rule =
            counter == "warm_misses" ? kWarmMisses : kMessages;
        ++rules[rule].checked;
        if (cit->second > base_value) {
          ++rules[rule].failures;
          findings.push_back({name, "counter",
                              counter + " increased (any growth fails)",
                              base_value, cit->second, true});
          ++failures;
        }
        continue;
      }
      // Latency-like counters (tail percentiles exported by the serve
      // benchmarks) get the same relative threshold as real_time.
      const bool is_p99 = counter.size() >= 4 &&
                          counter.compare(counter.size() - 4, 4, "_p99") == 0;
      if (is_p99 && base_value > 0.0) {
        ++rules[kP99].checked;
        const double rel = (cit->second - base_value) / base_value;
        if (rel > threshold) {
          ++rules[kP99].failures;
          char detail[128];
          std::snprintf(detail, sizeof detail,
                        "%s +%.1f%% (threshold %.1f%%)", counter.c_str(),
                        rel * 100.0, threshold * 100.0);
          findings.push_back({name, "counter", detail, base_value,
                              cit->second, true});
          ++failures;
        }
      }
    }
  }
  // The flip side of "missing" is a current benchmark the baseline does
  // not track.  It must not fail the gate (new coverage is welcome) but
  // it must not pass silently either — a renamed benchmark shows up as
  // one FAIL and one of these, and the warning is what points at the
  // rename.
  int warnings = 0;
  for (const auto& [name, cur] : current) {
    ++rules[kNew].checked;
    if (baseline.find(name) == baseline.end()) {
      ++rules[kNew].failures;
      findings.push_back({name, "new",
                          "absent from baseline; refresh the snapshot to "
                          "track it",
                          0.0, cur.real_time_ms, false});
      ++warnings;
    }
  }

  const bool passed = failures == 0;
  for (const Finding& f : findings) {
    std::printf("%s  %-28s %-8s %s", f.fails ? "FAIL" : "warn",
                f.benchmark.c_str(), f.what.c_str(), f.detail.c_str());
    if (f.what == "latency" || f.what == "counter") {
      std::printf("  [%.6g -> %.6g]", f.baseline, f.current);
    }
    std::printf("\n");
  }
  for (const RuleTally& r : rules) {
    std::printf("rule %-12s checked=%-3d findings=%-3d %s\n", r.name,
                r.checked, r.failures,
                r.advisory          ? "warn-only"
                : r.failures == 0   ? "pass"
                                    : "FAIL");
  }
  std::printf("bench_gate: %zu baseline benchmark%s, %d failure%s, "
              "%d warning%s (latency threshold %.0f%%)\n",
              baseline.size(), baseline.size() == 1 ? "" : "s", failures,
              failures == 1 ? "" : "s", warnings, warnings == 1 ? "" : "s",
              threshold * 100.0);
  if (update_baseline) {
    if (!write_snapshot(baseline_path, current, current_path)) {
      std::fprintf(stderr, "bench_gate: cannot rewrite baseline '%s'\n",
                   baseline_path.c_str());
      return 2;
    }
    std::printf("bench_gate: baseline '%s' rewritten from '%s' "
                "(%zu benchmark%s)\n",
                baseline_path.c_str(), current_path.c_str(), current.size(),
                current.size() == 1 ? "" : "s");
  }
  if (!report_path.empty()) {
    write_report(report_path, findings, rules, passed, failures, warnings,
                 update_baseline);
  }
  // A baseline refresh accepts the fresh run as the new truth, so the
  // diff it just reported is informational, not a failure.
  return passed || update_baseline ? 0 : 1;
}

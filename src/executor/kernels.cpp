#include "executor/kernels.hpp"

#include <array>
#include <cmath>
#include <cstdlib>
#include <map>

namespace hpfsc::exec {

namespace {

constexpr int kMaxStoresPerPlan = 16;
constexpr int kMaxTermsPerStore = 64;

/// Symbolic value tracked during classification: either a pure scalar
/// expression (no load references, represented by its RPN program) or an
/// ordered, left-associated term list.
struct SymValue {
  bool pure = false;
  std::vector<PlanInstr> code;   ///< valid when pure
  std::vector<MicroTerm> terms;  ///< valid when !pure
};

bool is_scalar_op(PlanInstr::Op op) {
  switch (op) {
    case PlanInstr::Op::Add:
    case PlanInstr::Op::Sub:
    case PlanInstr::Op::Mul:
    case PlanInstr::Op::Div:
    case PlanInstr::Op::Neg:
    case PlanInstr::Op::Lt:
    case PlanInstr::Op::Le:
    case PlanInstr::Op::Gt:
    case PlanInstr::Op::Ge:
    case PlanInstr::Op::Eq:
    case PlanInstr::Op::Ne:
      return true;
    default:
      return false;
  }
}

/// Converts a value into a single addend term, or fails: a pure scalar
/// becomes a load-less term, a one-term list is passed through.  Lists
/// of two or more terms would not be left-associated under the enclosing
/// Add/Sub, so they are rejected (evaluation order must match the
/// interpreter bitwise).
bool as_single_term(SymValue&& v, MicroTerm& out) {
  if (v.pure) {
    out = MicroTerm{};
    out.load_slot = -1;
    out.coeff = std::move(v.code);
    return true;
  }
  if (v.terms.size() == 1 && !v.terms.front().subtract) {
    out = std::move(v.terms.front());
    return true;
  }
  return false;
}

/// The left operand of an Add/Sub as the running accumulation list.
std::vector<MicroTerm> as_term_list(SymValue&& v) {
  if (!v.pure) return std::move(v.terms);
  MicroTerm t;
  t.load_slot = -1;
  t.coeff = std::move(v.code);
  return {std::move(t)};
}

bool is_unit_load(const SymValue& v) {
  return !v.pure && v.terms.size() == 1 && !v.terms.front().subtract &&
         v.terms.front().load_slot >= 0 && v.terms.front().coeff.empty();
}

/// Multi-store plans run store-major (one inner sweep per store), which
/// reorders writes relative to the interpreter's element-major order.
/// That is invisible exactly when (a) no load reads a stored array and
/// (b) stores on the same array write provably disjoint locations: their
/// offsets differ only along the unrolled (non-inner) dimension by less
/// than the plan width, the shape unroll-and-jam produces.
bool multi_store_safe(const KernelPlan& plan, const MicroKernel& k,
                      int inner_dim, int unroll_dim) {
  for (const MicroStore& s : k.stores) {
    const spmd::Load& st = plan.store_slots[static_cast<std::size_t>(
        s.store_slot)];
    for (const spmd::Load& ld : plan.load_slots) {
      if (ld.array == st.array) return false;
    }
  }
  for (std::size_t a = 0; a < k.stores.size(); ++a) {
    for (std::size_t b = a + 1; b < k.stores.size(); ++b) {
      const spmd::Load& sa = plan.store_slots[static_cast<std::size_t>(
          k.stores[a].store_slot)];
      const spmd::Load& sb = plan.store_slots[static_cast<std::size_t>(
          k.stores[b].store_slot)];
      if (sa.array != sb.array) continue;
      for (int d = 0; d < ir::kMaxRank; ++d) {
        if (d != unroll_dim && sa.offset[d] != sb.offset[d]) return false;
      }
      const int delta = std::abs(sa.offset[unroll_dim] - sb.offset[unroll_dim]);
      if (unroll_dim == inner_dim || delta == 0 || delta >= plan.width) {
        return false;
      }
    }
  }
  return true;
}

bool loads_alias_stores(const KernelPlan& plan) {
  for (const spmd::Load& st : plan.store_slots) {
    for (const spmd::Load& ld : plan.load_slots) {
      if (ld.array == st.array) return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------
// Microkernel templates.  K is the term count; the stride-1 variants
// index contiguous arrays (auto-vectorizable), the generic variant walks
// per-term pointers.  All preserve the interpreter's per-element
// left-to-right evaluation order.

template <int K>
void unit_sum_stride1(double* __restrict dst, const ResolvedTerm* terms,
                      int count) {
  std::array<const double*, static_cast<std::size_t>(K)> p;
  for (int t = 0; t < K; ++t) p[static_cast<std::size_t>(t)] = terms[t].ptr;
  for (int c = 0; c < count; ++c) {
    double acc = p[0][c];
    for (int t = 1; t < K; ++t) acc += p[static_cast<std::size_t>(t)][c];
    dst[c] = acc;
  }
}

template <int K>
double term_value(const ResolvedTerm& t, const double* p, int c) {
  if (!t.has_coeff) return p[c];
  if (t.ptr == nullptr) return t.coeff;
  return t.coeff_on_left ? t.coeff * p[c] : p[c] * t.coeff;
}

template <int K>
void weighted_sum_stride1(double* __restrict dst, const ResolvedTerm* terms,
                          int count) {
  std::array<const double*, static_cast<std::size_t>(K)> p;
  for (int t = 0; t < K; ++t) p[static_cast<std::size_t>(t)] = terms[t].ptr;
  for (int c = 0; c < count; ++c) {
    double acc = term_value<K>(terms[0], p[0], c);
    for (int t = 1; t < K; ++t) {
      const double v =
          term_value<K>(terms[t], p[static_cast<std::size_t>(t)], c);
      acc = terms[t].subtract ? acc - v : acc + v;
    }
    dst[c] = acc;
  }
}

/// Generic strided / possibly aliasing path: still straight-line native
/// code per element, but without the restrict promise.
void weighted_sum_generic(double* dst, std::ptrdiff_t dst_stride,
                          const ResolvedTerm* terms, int k, int count) {
  std::array<const double*, kMaxTermsPerStore> p{};
  for (int t = 0; t < k; ++t) p[static_cast<std::size_t>(t)] = terms[t].ptr;
  for (int c = 0; c < count; ++c) {
    const ResolvedTerm& t0 = terms[0];
    double acc = !t0.has_coeff  ? *p[0]
                 : t0.ptr == nullptr ? t0.coeff
                 : t0.coeff_on_left  ? t0.coeff * *p[0]
                                     : *p[0] * t0.coeff;
    for (int t = 1; t < k; ++t) {
      const ResolvedTerm& tt = terms[t];
      const double* q = p[static_cast<std::size_t>(t)];
      const double v = !tt.has_coeff  ? *q
                       : tt.ptr == nullptr ? tt.coeff
                       : tt.coeff_on_left  ? tt.coeff * *q
                                           : *q * tt.coeff;
      acc = tt.subtract ? acc - v : acc + v;
    }
    *dst = acc;
    dst += dst_stride;
    for (int t = 0; t < k; ++t) {
      if (terms[t].ptr != nullptr) {
        p[static_cast<std::size_t>(t)] += terms[t].stride;
      }
    }
  }
}

using Stride1Fn = void (*)(double*, const ResolvedTerm*, int);

constexpr int kMaxSpecializedK = 16;

template <int... K>
constexpr std::array<Stride1Fn, sizeof...(K) + 1> make_unit_table(
    std::integer_sequence<int, K...>) {
  return {nullptr, &unit_sum_stride1<K + 1>...};
}

template <int... K>
constexpr std::array<Stride1Fn, sizeof...(K) + 1> make_weighted_table(
    std::integer_sequence<int, K...>) {
  return {nullptr, &weighted_sum_stride1<K + 1>...};
}

constexpr auto kUnitTable =
    make_unit_table(std::make_integer_sequence<int, kMaxSpecializedK>{});
constexpr auto kWeightedTable =
    make_weighted_table(std::make_integer_sequence<int, kMaxSpecializedK>{});

}  // namespace

double eval_coeff(const std::vector<PlanInstr>& code,
                  const double* scalar_env) {
  double stack[kMaxTermsPerStore];
  int sp = 0;
  for (const PlanInstr& in : code) {
    switch (in.op) {
      case PlanInstr::Op::PushConst: stack[sp++] = in.value; break;
      case PlanInstr::Op::PushScalar: stack[sp++] = scalar_env[in.idx]; break;
      case PlanInstr::Op::Add: --sp; stack[sp - 1] += stack[sp]; break;
      case PlanInstr::Op::Sub: --sp; stack[sp - 1] -= stack[sp]; break;
      case PlanInstr::Op::Mul: --sp; stack[sp - 1] *= stack[sp]; break;
      case PlanInstr::Op::Div: --sp; stack[sp - 1] /= stack[sp]; break;
      case PlanInstr::Op::Neg: stack[sp - 1] = -stack[sp - 1]; break;
      case PlanInstr::Op::Lt:
        --sp; stack[sp - 1] = stack[sp - 1] < stack[sp] ? 1.0 : 0.0; break;
      case PlanInstr::Op::Le:
        --sp; stack[sp - 1] = stack[sp - 1] <= stack[sp] ? 1.0 : 0.0; break;
      case PlanInstr::Op::Gt:
        --sp; stack[sp - 1] = stack[sp - 1] > stack[sp] ? 1.0 : 0.0; break;
      case PlanInstr::Op::Ge:
        --sp; stack[sp - 1] = stack[sp - 1] >= stack[sp] ? 1.0 : 0.0; break;
      case PlanInstr::Op::Eq:
        --sp; stack[sp - 1] = stack[sp - 1] == stack[sp] ? 1.0 : 0.0; break;
      case PlanInstr::Op::Ne:
        --sp; stack[sp - 1] = stack[sp - 1] != stack[sp] ? 1.0 : 0.0; break;
      default: return 0.0;  // unreachable for classified programs
    }
  }
  return sp == 1 ? stack[0] : 0.0;
}

std::optional<MicroKernel> classify_weighted_sum(const KernelPlan& plan,
                                                 int inner_dim,
                                                 int unroll_dim) {
  std::vector<SymValue> stack;
  std::map<int, SymValue> regs;
  MicroKernel out;

  auto pop = [&]() -> SymValue {
    SymValue v = std::move(stack.back());
    stack.pop_back();
    return v;
  };

  for (const PlanInstr& in : plan.instrs) {
    switch (in.op) {
      case PlanInstr::Op::PushConst:
      case PlanInstr::Op::PushScalar: {
        SymValue v;
        v.pure = true;
        v.code.push_back(in);
        stack.push_back(std::move(v));
        break;
      }
      case PlanInstr::Op::LoadPtr:
      case PlanInstr::Op::LoadPtrCache: {
        SymValue v;
        MicroTerm t;
        t.load_slot = in.idx;
        v.terms.push_back(std::move(t));
        if (in.op == PlanInstr::Op::LoadPtrCache) regs[in.reg] = v;
        stack.push_back(std::move(v));
        break;
      }
      case PlanInstr::Op::PushReg: {
        auto it = regs.find(in.reg);
        if (it == regs.end()) return std::nullopt;
        stack.push_back(it->second);
        break;
      }
      case PlanInstr::Op::PopReg: {
        regs[in.reg] = pop();
        break;
      }
      case PlanInstr::Op::PopStore: {
        SymValue v = pop();
        MicroStore store;
        store.store_slot = in.idx;
        store.terms = as_term_list(std::move(v));
        if (store.terms.empty() ||
            store.terms.size() > kMaxTermsPerStore ||
            store.terms.front().subtract) {
          return std::nullopt;
        }
        out.stores.push_back(std::move(store));
        if (out.stores.size() > kMaxStoresPerPlan) return std::nullopt;
        break;
      }
      case PlanInstr::Op::Add:
      case PlanInstr::Op::Sub: {
        SymValue b = pop();
        SymValue a = pop();
        if (a.pure && b.pure) {
          a.code.insert(a.code.end(), b.code.begin(), b.code.end());
          a.code.push_back(PlanInstr{in.op, 0, 0, 0.0});
          stack.push_back(std::move(a));
          break;
        }
        MicroTerm addend;
        if (!as_single_term(std::move(b), addend)) return std::nullopt;
        addend.subtract = in.op == PlanInstr::Op::Sub;
        SymValue r;
        r.terms = as_term_list(std::move(a));
        if (r.terms.size() >= kMaxTermsPerStore) return std::nullopt;
        r.terms.push_back(std::move(addend));
        stack.push_back(std::move(r));
        break;
      }
      case PlanInstr::Op::Mul: {
        SymValue b = pop();
        SymValue a = pop();
        if (a.pure && b.pure) {
          a.code.insert(a.code.end(), b.code.begin(), b.code.end());
          a.code.push_back(PlanInstr{PlanInstr::Op::Mul, 0, 0, 0.0});
          stack.push_back(std::move(a));
          break;
        }
        SymValue r;
        MicroTerm t;
        if (a.pure && is_unit_load(b)) {
          t = std::move(b.terms.front());
          t.coeff = std::move(a.code);
          t.coeff_on_left = true;
        } else if (b.pure && is_unit_load(a)) {
          t = std::move(a.terms.front());
          t.coeff = std::move(b.code);
          t.coeff_on_left = false;
        } else {
          return std::nullopt;
        }
        r.terms.push_back(std::move(t));
        stack.push_back(std::move(r));
        break;
      }
      case PlanInstr::Op::Div:
      case PlanInstr::Op::Neg:
      case PlanInstr::Op::Lt:
      case PlanInstr::Op::Le:
      case PlanInstr::Op::Gt:
      case PlanInstr::Op::Ge:
      case PlanInstr::Op::Eq:
      case PlanInstr::Op::Ne: {
        // Pure scalar operands fold into the coefficient program; any
        // load operand is a shape the microkernels cannot reproduce.
        const bool unary = in.op == PlanInstr::Op::Neg;
        SymValue b;
        if (!unary) b = pop();
        SymValue a = pop();
        if (!a.pure || (!unary && !b.pure)) return std::nullopt;
        a.code.insert(a.code.end(), b.code.begin(), b.code.end());
        a.code.push_back(PlanInstr{in.op, 0, 0, 0.0});
        stack.push_back(std::move(a));
        break;
      }
    }
  }

  if (!stack.empty() || out.stores.empty()) return std::nullopt;
  if (out.stores.size() > 1 &&
      !multi_store_safe(plan, out, inner_dim, unroll_dim)) {
    return std::nullopt;
  }
  out.alias_free = !loads_alias_stores(plan);
  return out;
}

void run_weighted_sum(double* dst, std::ptrdiff_t dst_stride,
                      const ResolvedTerm* terms, int k, int count,
                      bool alias_free) {
  if (alias_free && dst_stride == 1 && k <= kMaxSpecializedK) {
    bool stride1 = true;
    bool unit = true;
    for (int t = 0; t < k; ++t) {
      if (terms[t].ptr == nullptr || terms[t].stride != 1) stride1 = false;
      if (terms[t].has_coeff || terms[t].subtract) unit = false;
    }
    if (stride1) {
      (unit ? kUnitTable : kWeightedTable)[static_cast<std::size_t>(k)](
          dst, terms, count);
      return;
    }
  }
  weighted_sum_generic(dst, dst_stride, terms, k, count);
}

}  // namespace hpfsc::exec

#include "executor/kernels.hpp"

#include <array>
#include <cmath>
#include <cstdlib>
#include <map>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define HPFSC_X86_TARGET_VERSIONS 1
#endif

namespace hpfsc::exec {

namespace {

constexpr int kMaxStoresPerPlan = 16;
constexpr int kMaxTermsPerStore = 64;

/// Symbolic value tracked during classification: either a pure scalar
/// expression (no load references, represented by its RPN program) or an
/// ordered, left-associated term list, optionally multiplied as a whole
/// by a pure scalar (the Jacobi `0.25 * (sum)` shape).  A scaled list is
/// terminal — it can only flow into a store.
struct SymValue {
  bool pure = false;
  std::vector<PlanInstr> code;   ///< valid when pure
  std::vector<MicroTerm> terms;  ///< valid when !pure
  std::vector<PlanInstr> scale;  ///< whole-sum factor; empty = none
  bool scale_on_left = true;
};

bool is_scalar_op(PlanInstr::Op op) {
  switch (op) {
    case PlanInstr::Op::Add:
    case PlanInstr::Op::Sub:
    case PlanInstr::Op::Mul:
    case PlanInstr::Op::Div:
    case PlanInstr::Op::Neg:
    case PlanInstr::Op::Lt:
    case PlanInstr::Op::Le:
    case PlanInstr::Op::Gt:
    case PlanInstr::Op::Ge:
    case PlanInstr::Op::Eq:
    case PlanInstr::Op::Ne:
      return true;
    default:
      return false;
  }
}

/// Converts a value into a single addend term, or fails: a pure scalar
/// becomes a load-less term, a one-term list is passed through.  Lists
/// of two or more terms would not be left-associated under the enclosing
/// Add/Sub, so they are rejected (evaluation order must match the
/// interpreter bitwise).
bool as_single_term(SymValue&& v, MicroTerm& out) {
  if (v.pure) {
    out = MicroTerm{};
    out.load_slot = -1;
    out.coeff = std::move(v.code);
    return true;
  }
  if (v.terms.size() == 1 && !v.terms.front().subtract) {
    out = std::move(v.terms.front());
    return true;
  }
  return false;
}

/// The left operand of an Add/Sub as the running accumulation list.
std::vector<MicroTerm> as_term_list(SymValue&& v) {
  if (!v.pure) return std::move(v.terms);
  MicroTerm t;
  t.load_slot = -1;
  t.coeff = std::move(v.code);
  return {std::move(t)};
}

bool is_unit_load(const SymValue& v) {
  return !v.pure && v.terms.size() == 1 && !v.terms.front().subtract &&
         v.terms.front().load_slot >= 0 && v.terms.front().coeff.empty();
}

/// Multi-store plans run store-major (one inner sweep per store), which
/// reorders writes relative to the interpreter's element-major order.
/// That is invisible exactly when (a) no load reads a stored array and
/// (b) stores on the same array write provably disjoint locations: their
/// offsets differ only along the unrolled (non-inner) dimension by less
/// than the plan width, the shape unroll-and-jam produces.
bool multi_store_safe(const KernelPlan& plan, const MicroKernel& k,
                      int inner_dim, int unroll_dim) {
  for (const MicroStore& s : k.stores) {
    const spmd::Load& st = plan.store_slots[static_cast<std::size_t>(
        s.store_slot)];
    for (const spmd::Load& ld : plan.load_slots) {
      if (ld.array == st.array) return false;
    }
  }
  for (std::size_t a = 0; a < k.stores.size(); ++a) {
    for (std::size_t b = a + 1; b < k.stores.size(); ++b) {
      const spmd::Load& sa = plan.store_slots[static_cast<std::size_t>(
          k.stores[a].store_slot)];
      const spmd::Load& sb = plan.store_slots[static_cast<std::size_t>(
          k.stores[b].store_slot)];
      if (sa.array != sb.array) continue;
      for (int d = 0; d < ir::kMaxRank; ++d) {
        if (d != unroll_dim && sa.offset[d] != sb.offset[d]) return false;
      }
      const int delta = std::abs(sa.offset[unroll_dim] - sb.offset[unroll_dim]);
      if (unroll_dim == inner_dim || delta == 0 || delta >= plan.width) {
        return false;
      }
    }
  }
  return true;
}

bool loads_alias_stores(const KernelPlan& plan) {
  for (const spmd::Load& st : plan.store_slots) {
    for (const spmd::Load& ld : plan.load_slots) {
      if (ld.array == st.array) return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------
// Microkernel templates.  K is the term count; the stride-1 variants
// index contiguous arrays (auto-vectorizable), the generic variant walks
// per-term pointers.  All preserve the interpreter's per-element
// left-to-right evaluation order.

/// Applies the loop-invariant whole-sum scale the way the interpreter's
/// trailing Mul does; `sc.present` is uniform across the loop, so the
/// compiler unswitches/if-converts the select.
inline double apply_scale(double acc, StoreScale sc) {
  if (!sc.present) return acc;
  return sc.on_left ? sc.value * acc : acc * sc.value;
}

template <int K>
void unit_sum_stride1(double* __restrict dst, const ResolvedTerm* terms,
                      int count, StoreScale) {
  // The dispatcher only routes scale-free stores here.
  std::array<const double*, static_cast<std::size_t>(K)> p;
  for (int t = 0; t < K; ++t) p[static_cast<std::size_t>(t)] = terms[t].ptr;
  for (int c = 0; c < count; ++c) {
    double acc = p[0][c];
    for (int t = 1; t < K; ++t) acc += p[static_cast<std::size_t>(t)][c];
    dst[c] = acc;
  }
}

template <int K>
double term_value(const ResolvedTerm& t, const double* p, int c) {
  if (!t.has_coeff) return p[c];
  if (t.ptr == nullptr) return t.coeff;
  return t.coeff_on_left ? t.coeff * p[c] : p[c] * t.coeff;
}

template <int K>
void weighted_sum_stride1(double* __restrict dst, const ResolvedTerm* terms,
                          int count, StoreScale sc) {
  std::array<const double*, static_cast<std::size_t>(K)> p;
  for (int t = 0; t < K; ++t) p[static_cast<std::size_t>(t)] = terms[t].ptr;
  for (int c = 0; c < count; ++c) {
    double acc = term_value<K>(terms[0], p[0], c);
    for (int t = 1; t < K; ++t) {
      const double v =
          term_value<K>(terms[t], p[static_cast<std::size_t>(t)], c);
      acc = terms[t].subtract ? acc - v : acc + v;
    }
    dst[c] = apply_scale(acc, sc);
  }
}

/// Generic strided / possibly aliasing path: still straight-line native
/// code per element, but without the restrict promise.
void weighted_sum_generic(double* dst, std::ptrdiff_t dst_stride,
                          const ResolvedTerm* terms, int k, int count,
                          StoreScale sc) {
  std::array<const double*, kMaxTermsPerStore> p{};
  for (int t = 0; t < k; ++t) p[static_cast<std::size_t>(t)] = terms[t].ptr;
  for (int c = 0; c < count; ++c) {
    const ResolvedTerm& t0 = terms[0];
    double acc = !t0.has_coeff  ? *p[0]
                 : t0.ptr == nullptr ? t0.coeff
                 : t0.coeff_on_left  ? t0.coeff * *p[0]
                                     : *p[0] * t0.coeff;
    for (int t = 1; t < k; ++t) {
      const ResolvedTerm& tt = terms[t];
      const double* q = p[static_cast<std::size_t>(t)];
      const double v = !tt.has_coeff  ? *q
                       : tt.ptr == nullptr ? tt.coeff
                       : tt.coeff_on_left  ? tt.coeff * *q
                                           : *q * tt.coeff;
      acc = tt.subtract ? acc - v : acc + v;
    }
    *dst = apply_scale(acc, sc);
    dst += dst_stride;
    for (int t = 0; t < k; ++t) {
      if (terms[t].ptr != nullptr) {
        p[static_cast<std::size_t>(t)] += terms[t].stride;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Tier-3 SIMD kernels.  Same per-lane arithmetic as the stride-1
// templates above — each element's weighted sum is evaluated left to
// right with plain adds/muls, so vectorizing across elements (the `c`
// loop) cannot change a single bit.  `#pragma omp simd` asserts the
// restrict-implied independence to the vectorizer; on x86 a second
// instantiation is compiled for AVX2 (without FMA: contraction would
// change rounding) and selected at runtime, since the portable build
// targets baseline SSE2.  Preconditions (checked by the dispatcher):
// every term has a non-null stride-1 pointer, dst has stride 1 and is
// alias-free — so the if-converted term selects below never touch
// invalid memory.

#if defined(HPFSC_OPENMP_SIMD)
#define HPFSC_PRAGMA_SIMD _Pragma("omp simd")
#else
#define HPFSC_PRAGMA_SIMD
#endif

#if defined(HPFSC_X86_TARGET_VERSIONS)
#define HPFSC_TARGET_AVX2 __attribute__((target("avx2")))
// prefer-vector-width=512 overrides the 256-bit default of generic
// tuning: the kernels are load-bound, so full-width zmm loads halve the
// load micro-op count.  Per-lane arithmetic is unchanged — vector width
// cannot alter a single bit of a plain add/mul.  AVX-512 is used for the
// UNIT kernels only: avx512f brings FMA instructions with it, and the
// compiler's default fp-contract would fuse the weighted kernels'
// mul+add pairs (different rounding).  Unit sums have no multiplies, so
// there is nothing to contract.
#define HPFSC_TARGET_AVX512 \
  __attribute__((target("avx512f,prefer-vector-width=512")))
#else
#define HPFSC_TARGET_AVX2
#define HPFSC_TARGET_AVX512
#endif

bool cpu_prefers_avx2() {
#if defined(HPFSC_X86_TARGET_VERSIONS)
  static const bool v = __builtin_cpu_supports("avx2");
  return v;
#else
  return false;
#endif
}

bool cpu_prefers_avx512() {
#if defined(HPFSC_X86_TARGET_VERSIONS)
  static const bool v = __builtin_cpu_supports("avx512f");
  return v;
#else
  return false;
#endif
}

/// Defines one ISA instantiation of the SIMD kernel pair.  The bodies
/// must stay identical across instantiations — only codegen flags vary.
#define HPFSC_DEFINE_SIMD_KERNELS(SUFFIX, TARGET_ATTR)                       \
  template <int K>                                                           \
  TARGET_ATTR void unit_sum_simd_##SUFFIX(double* __restrict dst,            \
                                          const ResolvedTerm* terms,         \
                                          int count, StoreScale) {           \
    std::array<const double*, static_cast<std::size_t>(K)> p;                \
    for (int t = 0; t < K; ++t) p[static_cast<std::size_t>(t)] = terms[t].ptr;\
    HPFSC_PRAGMA_SIMD                                                        \
    for (int c = 0; c < count; ++c) {                                        \
      double acc = p[0][c];                                                  \
      for (int t = 1; t < K; ++t) acc += p[static_cast<std::size_t>(t)][c];  \
      dst[c] = acc;                                                          \
    }                                                                        \
  }                                                                          \
  template <int K>                                                           \
  TARGET_ATTR void weighted_sum_simd_##SUFFIX(double* __restrict dst,        \
                                              const ResolvedTerm* terms,     \
                                              int count, StoreScale sc) {    \
    std::array<const double*, static_cast<std::size_t>(K)> p;                \
    std::array<double, static_cast<std::size_t>(K)> w;                       \
    std::array<bool, static_cast<std::size_t>(K)> weighted, left, sub;       \
    for (int t = 0; t < K; ++t) {                                            \
      const std::size_t u = static_cast<std::size_t>(t);                     \
      p[u] = terms[t].ptr;                                                   \
      w[u] = terms[t].coeff;                                                 \
      weighted[u] = terms[t].has_coeff;                                      \
      left[u] = terms[t].coeff_on_left;                                      \
      sub[u] = terms[t].subtract;                                            \
    }                                                                        \
    HPFSC_PRAGMA_SIMD                                                        \
    for (int c = 0; c < count; ++c) {                                        \
      const double x0 = p[0][c];                                             \
      double acc = !weighted[0] ? x0 : left[0] ? w[0] * x0 : x0 * w[0];      \
      for (int t = 1; t < K; ++t) {                                          \
        const std::size_t u = static_cast<std::size_t>(t);                   \
        const double x = p[u][c];                                            \
        const double v = !weighted[u] ? x : left[u] ? w[u] * x : x * w[u];   \
        acc = sub[u] ? acc - v : acc + v;                                    \
      }                                                                      \
      dst[c] =                                                               \
          !sc.present ? acc : sc.on_left ? sc.value * acc : acc * sc.value;  \
    }                                                                        \
  }

HPFSC_DEFINE_SIMD_KERNELS(base, )
#if defined(HPFSC_X86_TARGET_VERSIONS)
HPFSC_DEFINE_SIMD_KERNELS(avx2, HPFSC_TARGET_AVX2)
HPFSC_DEFINE_SIMD_KERNELS(avx512, HPFSC_TARGET_AVX512)
#endif
#undef HPFSC_DEFINE_SIMD_KERNELS

using Stride1Fn = void (*)(double*, const ResolvedTerm*, int, StoreScale);

constexpr int kMaxSpecializedK = 16;

template <int... K>
constexpr std::array<Stride1Fn, sizeof...(K) + 1> make_unit_table(
    std::integer_sequence<int, K...>) {
  return {nullptr, &unit_sum_stride1<K + 1>...};
}

template <int... K>
constexpr std::array<Stride1Fn, sizeof...(K) + 1> make_weighted_table(
    std::integer_sequence<int, K...>) {
  return {nullptr, &weighted_sum_stride1<K + 1>...};
}

constexpr auto kUnitTable =
    make_unit_table(std::make_integer_sequence<int, kMaxSpecializedK>{});
constexpr auto kWeightedTable =
    make_weighted_table(std::make_integer_sequence<int, kMaxSpecializedK>{});

template <int... K>
constexpr std::array<Stride1Fn, sizeof...(K) + 1> make_unit_simd_base(
    std::integer_sequence<int, K...>) {
  return {nullptr, &unit_sum_simd_base<K + 1>...};
}

template <int... K>
constexpr std::array<Stride1Fn, sizeof...(K) + 1> make_weighted_simd_base(
    std::integer_sequence<int, K...>) {
  return {nullptr, &weighted_sum_simd_base<K + 1>...};
}

constexpr auto kUnitSimdBase =
    make_unit_simd_base(std::make_integer_sequence<int, kMaxSpecializedK>{});
constexpr auto kWeightedSimdBase = make_weighted_simd_base(
    std::make_integer_sequence<int, kMaxSpecializedK>{});

#if defined(HPFSC_X86_TARGET_VERSIONS)
template <int... K>
constexpr std::array<Stride1Fn, sizeof...(K) + 1> make_unit_simd_avx2(
    std::integer_sequence<int, K...>) {
  return {nullptr, &unit_sum_simd_avx2<K + 1>...};
}

template <int... K>
constexpr std::array<Stride1Fn, sizeof...(K) + 1> make_weighted_simd_avx2(
    std::integer_sequence<int, K...>) {
  return {nullptr, &weighted_sum_simd_avx2<K + 1>...};
}

constexpr auto kUnitSimdAvx2 =
    make_unit_simd_avx2(std::make_integer_sequence<int, kMaxSpecializedK>{});
constexpr auto kWeightedSimdAvx2 = make_weighted_simd_avx2(
    std::make_integer_sequence<int, kMaxSpecializedK>{});

template <int... K>
constexpr std::array<Stride1Fn, sizeof...(K) + 1> make_unit_simd_avx512(
    std::integer_sequence<int, K...>) {
  return {nullptr, &unit_sum_simd_avx512<K + 1>...};
}

// No weighted AVX-512 table: see the HPFSC_TARGET_AVX512 comment (FMA
// contraction risk).  weighted_sum_simd_avx512 is never instantiated.
constexpr auto kUnitSimdAvx512 = make_unit_simd_avx512(
    std::make_integer_sequence<int, kMaxSpecializedK>{});
#endif

}  // namespace

double eval_coeff(const std::vector<PlanInstr>& code,
                  const double* scalar_env) {
  double stack[kMaxTermsPerStore];
  int sp = 0;
  for (const PlanInstr& in : code) {
    switch (in.op) {
      case PlanInstr::Op::PushConst: stack[sp++] = in.value; break;
      case PlanInstr::Op::PushScalar: stack[sp++] = scalar_env[in.idx]; break;
      case PlanInstr::Op::Add: --sp; stack[sp - 1] += stack[sp]; break;
      case PlanInstr::Op::Sub: --sp; stack[sp - 1] -= stack[sp]; break;
      case PlanInstr::Op::Mul: --sp; stack[sp - 1] *= stack[sp]; break;
      case PlanInstr::Op::Div: --sp; stack[sp - 1] /= stack[sp]; break;
      case PlanInstr::Op::Neg: stack[sp - 1] = -stack[sp - 1]; break;
      case PlanInstr::Op::Lt:
        --sp; stack[sp - 1] = stack[sp - 1] < stack[sp] ? 1.0 : 0.0; break;
      case PlanInstr::Op::Le:
        --sp; stack[sp - 1] = stack[sp - 1] <= stack[sp] ? 1.0 : 0.0; break;
      case PlanInstr::Op::Gt:
        --sp; stack[sp - 1] = stack[sp - 1] > stack[sp] ? 1.0 : 0.0; break;
      case PlanInstr::Op::Ge:
        --sp; stack[sp - 1] = stack[sp - 1] >= stack[sp] ? 1.0 : 0.0; break;
      case PlanInstr::Op::Eq:
        --sp; stack[sp - 1] = stack[sp - 1] == stack[sp] ? 1.0 : 0.0; break;
      case PlanInstr::Op::Ne:
        --sp; stack[sp - 1] = stack[sp - 1] != stack[sp] ? 1.0 : 0.0; break;
      default: return 0.0;  // unreachable for classified programs
    }
  }
  return sp == 1 ? stack[0] : 0.0;
}

std::optional<MicroKernel> classify_weighted_sum(const KernelPlan& plan,
                                                 int inner_dim,
                                                 int unroll_dim) {
  std::vector<SymValue> stack;
  std::map<int, SymValue> regs;
  MicroKernel out;

  auto pop = [&]() -> SymValue {
    SymValue v = std::move(stack.back());
    stack.pop_back();
    return v;
  };

  for (const PlanInstr& in : plan.instrs) {
    switch (in.op) {
      case PlanInstr::Op::PushConst:
      case PlanInstr::Op::PushScalar: {
        SymValue v;
        v.pure = true;
        v.code.push_back(in);
        stack.push_back(std::move(v));
        break;
      }
      case PlanInstr::Op::LoadPtr:
      case PlanInstr::Op::LoadPtrCache: {
        SymValue v;
        MicroTerm t;
        t.load_slot = in.idx;
        v.terms.push_back(std::move(t));
        if (in.op == PlanInstr::Op::LoadPtrCache) regs[in.reg] = v;
        stack.push_back(std::move(v));
        break;
      }
      case PlanInstr::Op::PushReg: {
        auto it = regs.find(in.reg);
        if (it == regs.end()) return std::nullopt;
        stack.push_back(it->second);
        break;
      }
      case PlanInstr::Op::PopReg: {
        regs[in.reg] = pop();
        break;
      }
      case PlanInstr::Op::PopStore: {
        SymValue v = pop();
        MicroStore store;
        store.store_slot = in.idx;
        store.scale = std::move(v.scale);
        store.scale_on_left = v.scale_on_left;
        store.terms = as_term_list(std::move(v));
        if (store.terms.empty() ||
            store.terms.size() > kMaxTermsPerStore ||
            store.terms.front().subtract) {
          return std::nullopt;
        }
        out.stores.push_back(std::move(store));
        if (out.stores.size() > kMaxStoresPerPlan) return std::nullopt;
        break;
      }
      case PlanInstr::Op::Add:
      case PlanInstr::Op::Sub: {
        SymValue b = pop();
        SymValue a = pop();
        // A scaled sum is only reproducible as a finished store value;
        // folding it into a longer chain would drop the scale.
        if (!a.scale.empty() || !b.scale.empty()) return std::nullopt;
        if (a.pure && b.pure) {
          a.code.insert(a.code.end(), b.code.begin(), b.code.end());
          a.code.push_back(PlanInstr{in.op, 0, 0, 0.0});
          stack.push_back(std::move(a));
          break;
        }
        MicroTerm addend;
        if (!as_single_term(std::move(b), addend)) return std::nullopt;
        addend.subtract = in.op == PlanInstr::Op::Sub;
        SymValue r;
        r.terms = as_term_list(std::move(a));
        if (r.terms.size() >= kMaxTermsPerStore) return std::nullopt;
        r.terms.push_back(std::move(addend));
        stack.push_back(std::move(r));
        break;
      }
      case PlanInstr::Op::Mul: {
        SymValue b = pop();
        SymValue a = pop();
        if (a.pure && b.pure) {
          a.code.insert(a.code.end(), b.code.begin(), b.code.end());
          a.code.push_back(PlanInstr{PlanInstr::Op::Mul, 0, 0, 0.0});
          stack.push_back(std::move(a));
          break;
        }
        // scalar * (t1 + ... + tK): keep the sum's evaluation order and
        // carry the factor as a whole-sum scale, exactly the
        // interpreter's Mul of the finished accumulation.
        if (a.pure && !b.pure && b.scale.empty() && b.terms.size() >= 2) {
          b.scale = std::move(a.code);
          b.scale_on_left = true;
          stack.push_back(std::move(b));
          break;
        }
        if (b.pure && !a.pure && a.scale.empty() && a.terms.size() >= 2) {
          a.scale = std::move(b.code);
          a.scale_on_left = false;
          stack.push_back(std::move(a));
          break;
        }
        SymValue r;
        MicroTerm t;
        if (a.pure && is_unit_load(b)) {
          t = std::move(b.terms.front());
          t.coeff = std::move(a.code);
          t.coeff_on_left = true;
        } else if (b.pure && is_unit_load(a)) {
          t = std::move(a.terms.front());
          t.coeff = std::move(b.code);
          t.coeff_on_left = false;
        } else {
          return std::nullopt;
        }
        r.terms.push_back(std::move(t));
        stack.push_back(std::move(r));
        break;
      }
      case PlanInstr::Op::Div:
      case PlanInstr::Op::Neg:
      case PlanInstr::Op::Lt:
      case PlanInstr::Op::Le:
      case PlanInstr::Op::Gt:
      case PlanInstr::Op::Ge:
      case PlanInstr::Op::Eq:
      case PlanInstr::Op::Ne: {
        // Pure scalar operands fold into the coefficient program; any
        // load operand is a shape the microkernels cannot reproduce.
        const bool unary = in.op == PlanInstr::Op::Neg;
        SymValue b;
        if (!unary) b = pop();
        SymValue a = pop();
        if (!a.pure || (!unary && !b.pure)) return std::nullopt;
        a.code.insert(a.code.end(), b.code.begin(), b.code.end());
        a.code.push_back(PlanInstr{in.op, 0, 0, 0.0});
        stack.push_back(std::move(a));
        break;
      }
    }
  }

  if (!stack.empty() || out.stores.empty()) return std::nullopt;
  if (out.stores.size() > 1 &&
      !multi_store_safe(plan, out, inner_dim, unroll_dim)) {
    return std::nullopt;
  }
  out.alias_free = !loads_alias_stores(plan);
  return out;
}

void run_weighted_sum(double* dst, std::ptrdiff_t dst_stride,
                      const ResolvedTerm* terms, int k, int count,
                      bool alias_free, StoreScale scale) {
  if (alias_free && dst_stride == 1 && k <= kMaxSpecializedK) {
    bool stride1 = true;
    bool unit = !scale.present;
    for (int t = 0; t < k; ++t) {
      if (terms[t].ptr == nullptr || terms[t].stride != 1) stride1 = false;
      if (terms[t].has_coeff || terms[t].subtract) unit = false;
    }
    if (stride1) {
      (unit ? kUnitTable : kWeightedTable)[static_cast<std::size_t>(k)](
          dst, terms, count, scale);
      return;
    }
  }
  weighted_sum_generic(dst, dst_stride, terms, k, count, scale);
}

bool run_weighted_sum_simd(double* dst, std::ptrdiff_t dst_stride,
                           const ResolvedTerm* terms, int k, int count,
                           bool alias_free, StoreScale scale) {
  if (alias_free && dst_stride == 1 && k <= kMaxSpecializedK) {
    bool stride1 = true;
    bool unit = !scale.present;
    for (int t = 0; t < k; ++t) {
      if (terms[t].ptr == nullptr || terms[t].stride != 1) stride1 = false;
      if (terms[t].has_coeff || terms[t].subtract) unit = false;
    }
    if (stride1) {
#if defined(HPFSC_X86_TARGET_VERSIONS)
      if (unit && cpu_prefers_avx512()) {
        kUnitSimdAvx512[static_cast<std::size_t>(k)](dst, terms, count,
                                                     scale);
        return true;
      }
      if (cpu_prefers_avx2()) {
        (unit ? kUnitSimdAvx2
              : kWeightedSimdAvx2)[static_cast<std::size_t>(k)](dst, terms,
                                                                count, scale);
        return true;
      }
#endif
      (unit ? kUnitSimdBase
            : kWeightedSimdBase)[static_cast<std::size_t>(k)](dst, terms,
                                                              count, scale);
      return true;
    }
  }
  run_weighted_sum(dst, dst_stride, terms, k, count, alias_free, scale);
  return false;
}

}  // namespace hpfsc::exec

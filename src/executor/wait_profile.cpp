#include "executor/wait_profile.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/sinks.hpp"

namespace hpfsc {

namespace {

double ns_to_s(std::uint64_t ns) { return static_cast<double>(ns) / 1e9; }

std::string fmt_ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%9.3f", seconds * 1e3);
  return buf;
}

}  // namespace

WaitProfile WaitProfile::from_run(const Execution::RunStats& stats) {
  WaitProfile p;
  p.wall_seconds = stats.wall_seconds;
  // All-empty wait blocks mean timing was off for the run (with timing
  // on every PE records a nonzero active window): no data, no rows —
  // reconciled() then reports false rather than vacuously closing
  // all-zero books against the wall clock.
  const bool timed =
      std::any_of(stats.per_pe.begin(), stats.per_pe.end(),
                  [](const simpi::PeStats& pe) { return !pe.wait.empty(); });
  if (!timed) return p;
  p.rows.reserve(stats.per_pe.size());
  double total_recv = 0.0;
  for (std::size_t id = 0; id < stats.per_pe.size(); ++id) {
    const simpi::WaitStats& w = stats.per_pe[id].wait;
    WaitProfileRow row;
    row.pe = static_cast<int>(id);
    row.recv_s = ns_to_s(w.recv_wait_ns);
    row.overlap_s = ns_to_s(w.overlap_wait_ns);
    row.barrier_s = ns_to_s(w.barrier_wait_ns);
    row.pool_s = ns_to_s(w.pool_wait_ns);
    row.compute_s =
        ns_to_s(w.active_ns) - row.recv_s - row.overlap_s - row.barrier_s;
    row.overhead_s =
        p.wall_seconds - (row.compute_s + row.recv_s + row.overlap_s +
                          row.barrier_s + row.pool_s);
    total_recv += row.recv_s + row.overlap_s;
    p.rows.push_back(row);
    p.max_overhead_seconds =
        std::max(p.max_overhead_seconds, std::fabs(row.overhead_s));
  }
  const double machine_time =
      p.wall_seconds * static_cast<double>(p.rows.empty() ? 1 : p.rows.size());
  if (machine_time > 0.0) {
    p.exposed_comm_fraction = std::min(1.0, total_recv / machine_time);
  }
  if (p.exposed_comm_fraction < 1.0) {
    p.overlap_speedup_bound = 1.0 / (1.0 - p.exposed_comm_fraction);
  }
  return p;
}

bool WaitProfile::reconciled(double abs_tol_seconds, double rel_tol) const {
  if (rows.empty()) return false;
  const double tol = abs_tol_seconds + rel_tol * wall_seconds;
  for (const WaitProfileRow& row : rows) {
    // Categories must close against wall time...
    if (std::fabs(row.overhead_s) > tol) return false;
    // ...and each category must itself be a sane share of the wall.
    // compute_s can be slightly negative when a recv/barrier wait
    // overlaps a clock-granularity boundary; materially negative means
    // double counting.
    if (row.compute_s < -tol || row.recv_s < 0.0 || row.overlap_s < 0.0 ||
        row.barrier_s < 0.0 || row.pool_s < 0.0) {
      return false;
    }
    if (row.recv_s > wall_seconds + tol ||
        row.overlap_s > wall_seconds + tol ||
        row.barrier_s > wall_seconds + tol ||
        row.pool_s > wall_seconds + tol) {
      return false;
    }
  }
  return true;
}

std::string WaitProfile::to_text() const {
  std::string out;
  out += "--- wait-state profile ---\n";
  char line[160];
  std::snprintf(line, sizeof line, "wall: %.3f ms over %zu PEs\n",
                wall_seconds * 1e3, rows.size());
  out += line;
  out += "  pe   compute ms      recv ms   overlap ms   barrier ms      "
         "pool ms  overhead ms\n";
  for (const WaitProfileRow& row : rows) {
    std::snprintf(line, sizeof line, "%4d  %s    %s    %s    %s    %s    %s\n",
                  row.pe, fmt_ms(row.compute_s).c_str(),
                  fmt_ms(row.recv_s).c_str(), fmt_ms(row.overlap_s).c_str(),
                  fmt_ms(row.barrier_s).c_str(), fmt_ms(row.pool_s).c_str(),
                  fmt_ms(row.overhead_s).c_str());
    out += line;
  }
  std::snprintf(line, sizeof line,
                "exposed-comm fraction: %.4f (of %zu x wall machine time)\n",
                exposed_comm_fraction, rows.size());
  out += line;
  std::snprintf(line, sizeof line,
                "overlap speedup bound: %.3fx (Amdahl, perfect "
                "comm/compute overlap)\n",
                overlap_speedup_bound);
  out += line;
  return out;
}

std::string WaitProfile::to_json() const {
  using obs::json_number;
  std::string out = "{\"wall_seconds\":" + json_number(wall_seconds);
  out += ",\"exposed_comm_fraction\":" + json_number(exposed_comm_fraction);
  out += ",\"overlap_speedup_bound\":" + json_number(overlap_speedup_bound);
  out += ",\"max_overhead_seconds\":" + json_number(max_overhead_seconds);
  out += ",\"reconciled\":" + std::string(reconciled() ? "true" : "false");
  out += ",\"pes\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const WaitProfileRow& row = rows[i];
    if (i) out += ',';
    out += "{\"pe\":" + std::to_string(row.pe);
    out += ",\"compute_s\":" + json_number(row.compute_s);
    out += ",\"recv_s\":" + json_number(row.recv_s);
    out += ",\"overlap_s\":" + json_number(row.overlap_s);
    out += ",\"barrier_s\":" + json_number(row.barrier_s);
    out += ",\"pool_s\":" + json_number(row.pool_s);
    out += ",\"overhead_s\":" + json_number(row.overhead_s);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace hpfsc

// Per-run wait-state reconciliation and critical-path analysis
// (DESIGN.md §13).  Consumes Execution::RunStats::per_pe — the
// nanosecond blocking-time attribution the simpi runtime records at
// every blocking point — and answers two questions:
//
//   1. Does the accounting close?  Per PE,
//        compute + recv_wait + overlap_wait + barrier_wait + pool_wait
//        + overhead
//      must equal the run's wall time, where compute is derived
//      (active - recv_wait - overlap_wait - barrier_wait) and overhead is the
//      host-side residue (barrier reset, channel drain, publish).
//      Overhead must be non-negative (modulo clock granularity) and
//      small; reconciled() asserts both within a tolerance, the
//      wait-state analogue of the CommLedger reconciliation.
//
//   2. What would communication/computation overlap buy?  The exposed
//      communication fraction f = sum(recv_wait) / (P * wall) is the
//      share of machine time burned blocked on messages; perfectly
//      overlapping it (ROADMAP #2, Physis-style async halo exchange)
//      bounds the speedup at 1 / (1 - f) — an Amdahl-style projection
//      every run can self-report against.
#pragma once

#include <string>
#include <vector>

#include "executor/execution.hpp"

namespace hpfsc {

/// One PE's reconciled wall-time decomposition, in seconds.
struct WaitProfileRow {
  int pe = 0;
  double compute_s = 0.0;   ///< active - recv_wait - barrier_wait - overlap
  double recv_s = 0.0;      ///< blocked in channel recv (inline completion)
  double overlap_s = 0.0;   ///< blocked completing posted (async) receives
  double barrier_s = 0.0;   ///< blocked in barrier
  double pool_s = 0.0;      ///< pool handoff + straggler tail
  double overhead_s = 0.0;  ///< wall - (compute+recv+overlap+barrier+pool)
};

struct WaitProfile {
  double wall_seconds = 0.0;
  std::vector<WaitProfileRow> rows;  ///< indexed by PE id

  /// sum(recv_wait + overlap_wait) / (P * wall): the fraction of total
  /// machine time that is exposed communication.  Under the sync
  /// backend overlap_wait is zero and this reduces to the classic
  /// sum(recv_wait) / (P * wall); under the async backend time the
  /// in-flight messages hid inside interior compute simply never shows
  /// up in either term — the drop versus a sync baseline is the
  /// overlap actually won.
  double exposed_comm_fraction = 0.0;
  /// 1 / (1 - exposed_comm_fraction): upper bound on the whole-run
  /// speedup from perfectly overlapping communication with compute.
  double overlap_speedup_bound = 1.0;
  /// max over PEs of |overhead_s| — the reconciliation residue.
  double max_overhead_seconds = 0.0;

  /// Builds the profile from a finished run.  Rows are empty when the
  /// run carried no per-PE stats (e.g. wait timing disabled).
  [[nodiscard]] static WaitProfile from_run(const Execution::RunStats& stats);

  /// True when every PE's categories sum to wall time within
  /// `abs_tol_seconds + rel_tol * wall` and no category exceeds wall by
  /// more than the same tolerance (overhead may be slightly negative
  /// from clock granularity, never materially).
  [[nodiscard]] bool reconciled(double abs_tol_seconds = 2e-3,
                                double rel_tol = 0.25) const;

  /// Human-readable per-PE table plus the critical-path summary.
  [[nodiscard]] std::string to_text() const;
  /// Machine-readable form of the same report.
  [[nodiscard]] std::string to_json() const;
};

}  // namespace hpfsc

// Execution of a compiled SPMD program on the simulated machine: binds
// size/coefficient parameters, allocates distributed arrays, runs the
// node program on every PE, and reports wall-clock plus communication
// statistics.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "codegen/spmd_program.hpp"
#include "executor/kernels.hpp"
#include "executor/plan.hpp"
#include "obs/obs.hpp"
#include "simpi/machine.hpp"

namespace hpfsc {

/// Kernel dispatch policy.  Auto runs every loop nest whose plan
/// classified as a weighted-sum microkernel through the compiled tier
/// and everything else through the bytecode interpreter;
/// InterpreterOnly forces the interpreter for all nests (the semantics
/// oracle — used by the equivalence tests and for A/B benchmarking).
/// Simd is the third tier: classified alias-free stride-1 plans run
/// through explicitly vectorized kernels under 2-D spatial cache
/// blocking; plans the SIMD path cannot prove safe (aliasing, non-unit
/// strides, pure-scalar terms) fall back per-plan to the compiled or
/// interpreter tier.  All tiers are bitwise-identical.
enum class KernelTier { Auto, InterpreterOnly, Simd };

/// Per-run tally of which execution tier handled the loop nests.  Not
/// part of MachineStats: all tiers produce identical machine
/// statistics, the tally only describes how the work was dispatched.
struct KernelTierStats {
  std::uint64_t compiled_elements = 0;
  std::uint64_t interpreter_elements = 0;
  std::uint64_t simd_elements = 0;
  std::uint64_t compiled_plan_runs = 0;
  std::uint64_t interpreter_plan_runs = 0;
  std::uint64_t simd_plan_runs = 0;
  /// Floating-point operations executed by the kernel loops (both
  /// tiers; plan-derived, so tier-invariant like kernel_ref_bytes).
  /// Together with kernel_ref_bytes and the comm ledger this yields the
  /// roofline coordinates: arithmetic intensity = flops / bytes moved,
  /// achieved GFLOP/s = flops / wall_seconds / 1e9.
  std::uint64_t flops = 0;
};

/// Runtime values for program parameters (N, coefficients, ...).
struct Bindings {
  std::map<std::string, double> values;

  Bindings& set(const std::string& name, double v) {
    values[name] = v;
    return *this;
  }
};

class Execution {
 public:
  Execution(spmd::Program program, const simpi::MachineConfig& config);

  /// Binds parameters, evaluates array shapes, compiles kernel plans,
  /// and allocates the program's (non-temporary) arrays.  Throws
  /// simpi::OutOfMemory if the per-PE heap cap is exceeded and
  /// std::invalid_argument for unbound size parameters.
  void prepare(const Bindings& bindings);

  /// Initializes an array's owned elements with f(i, j, k).
  void set_array(const std::string& name,
                 const std::function<double(int, int, int)>& f);
  /// Scatters a dense column-major global vector (the shape get_array
  /// returns) into an array's owned elements — the state-transfer half
  /// of a tier hot-swap: gather from the old execution, scatter into
  /// the new one at a run boundary.
  void set_array(const std::string& name, std::span<const double> global);
  /// Gathers an array into a dense column-major global vector.
  [[nodiscard]] std::vector<double> get_array(const std::string& name);

  struct RunStats {
    double wall_seconds = 0.0;
    simpi::MachineStats machine;
    KernelTierStats tier;
    /// Per-PE statistics for this run (indexed by PE id) — the raw
    /// material of the wait-state reconciliation (see
    /// executor/wait_profile.hpp).
    std::vector<simpi::PeStats> per_pe;
  };

  /// Executes the whole op list `iterations` times (SPMD, one thread per
  /// PE).  prepare() must have been called.
  RunStats run(int iterations = 1);

  /// Attaches an observability session (not owned; must outlive this
  /// Execution or be detached with nullptr).  When enabled, run() emits
  /// a host-track "execute" span and every plan step (shift, offset
  /// copy, kernel loop) emits a per-PE span carrying its statistics
  /// delta — messages, bytes, and modeled-cost nanoseconds.
  void set_trace(obs::TraceSession* session) {
    trace_ = session;
    machine_->set_obs_session(session);
  }
  [[nodiscard]] obs::TraceSession* trace() const { return trace_; }

  /// Selects the kernel dispatch policy (default Auto; also settable via
  /// the HPFSC_KERNEL_TIER environment variable — accepted values
  /// "auto", "interpreter"/"interp", "simd"; anything else throws).
  void set_kernel_tier(KernelTier tier) { tier_ = tier; }
  [[nodiscard]] KernelTier kernel_tier() const { return tier_; }

  /// Overrides the tier-3 cache-block sizes (outer × inner, in
  /// elements).  Zero restores the automatic L2 heuristic.  The outer
  /// size is rounded down to a multiple of each plan's unroll width at
  /// dispatch so blocked and unblocked traversals visit every element
  /// exactly once (kernel_ref_bytes stays tier-invariant).  Also
  /// settable via HPFSC_BLOCK={bi}x{bj}.
  void set_block_size(int bi, int bj) {
    block_i_ = bi;
    block_j_ = bj;
  }
  [[nodiscard]] int block_i() const { return block_i_; }
  [[nodiscard]] int block_j() const { return block_j_; }

  [[nodiscard]] const spmd::Program& program() const { return prog_; }
  [[nodiscard]] simpi::Machine& machine() { return *machine_; }

  Execution(Execution&&) = default;
  Execution& operator=(Execution&&) = default;

 private:
  struct NestPlans {
    exec::KernelPlan main;
    std::optional<exec::KernelPlan> epilogue;  ///< width-1 remainder plan
    /// Compiled forms, present when the plan classified as a
    /// weighted-sum microkernel (tier selection happens per plan, so a
    /// nest can run a compiled main plan with an interpreted epilogue).
    std::optional<exec::MicroKernel> main_micro;
    std::optional<exec::MicroKernel> epilogue_micro;
  };

  /// Thread-safe per-run tier tally (PE threads increment concurrently).
  /// Held by pointer so Execution stays movable.
  struct TierTally {
    std::atomic<std::uint64_t> compiled_elements{0};
    std::atomic<std::uint64_t> interpreter_elements{0};
    std::atomic<std::uint64_t> simd_elements{0};
    std::atomic<std::uint64_t> compiled_plan_runs{0};
    std::atomic<std::uint64_t> interpreter_plan_runs{0};
    std::atomic<std::uint64_t> simd_plan_runs{0};
    std::atomic<std::uint64_t> flops{0};
  };

  void compile_plans(const std::vector<spmd::Op>& ops);
  void compute_descs();
  [[nodiscard]] int scalar_index(const std::string& name) const;
  [[nodiscard]] double eval_bound(const ir::AffineBound& b,
                                  const std::vector<double>& env) const;
  [[nodiscard]] double eval_scalar(const spmd::ScalarExpr& code,
                                   const std::vector<double>& env) const;
  [[nodiscard]] int array_id(const std::string& name) const;

  void exec_ops(simpi::Pe& pe, const std::vector<spmd::Op>& ops,
                std::vector<double>& env);
  /// One LoopNest statement: KERNEL step span, nest dispatch, comm
  /// context reset.  When `overlap_shifted` is non-null the nest runs
  /// through the interior/boundary split with that array set pending
  /// (exec_nest_overlap); otherwise over its whole box.
  void exec_nest_stmt(simpi::Pe& pe, const spmd::Op& op,
                      std::vector<double>& env,
                      const std::vector<int>* overlap_shifted);
  void exec_nest(simpi::Pe& pe, const spmd::Op& op,
                 std::vector<double>& env);
  /// Runs the nest over an explicit iteration box (already clamped to
  /// the PE's owned region; no-op when empty in any dimension).
  void exec_nest_box(simpi::Pe& pe, const spmd::Op& op,
                     std::vector<double>& env,
                     const std::array<int, ir::kMaxRank>& box_lo,
                     const std::array<int, ir::kMaxRank>& box_hi);
  /// Halo-exchange/compute overlap: runs the interior (every index
  /// whose loads of `shifted` arrays stay within their own boxes) while
  /// the posted receives are in flight, completes them with wait_all,
  /// then finishes the boundary strips.  Falls back to wait-then-full-
  /// box when the interior is empty.
  void exec_nest_overlap(simpi::Pe& pe, const spmd::Op& op,
                         std::vector<double>& env,
                         const std::vector<int>& shifted);
  void run_plan(simpi::Pe& pe, const spmd::Op& op,
                const exec::KernelPlan& plan,
                const exec::MicroKernel* micro,
                const std::array<int, ir::kMaxRank>& box_lo,
                const std::array<int, ir::kMaxRank>& box_hi,
                std::array<int, ir::kMaxRank> idx, int inner_dim,
                const std::vector<double>& env);
  [[nodiscard]] bool run_micro(simpi::Pe& pe, const exec::KernelPlan& plan,
                               const exec::MicroKernel& micro,
                               const std::array<int, ir::kMaxRank>& idx,
                               int inner_dim, int count,
                               const std::vector<double>& env,
                               bool want_simd);
  /// Tier-3 batched form: runs `nstrips` consecutive width-strips of the
  /// plan along `outer_dim` starting at `idx`, resolving pointers and
  /// coefficients once and advancing by array strides between strips —
  /// the per-strip resolution overhead is what the blocked path saves.
  /// Performs its own flops/kernel_refs charging and tier tallying.
  void run_micro_strips(simpi::Pe& pe, const exec::KernelPlan& plan,
                        const exec::MicroKernel& micro,
                        const std::array<int, ir::kMaxRank>& idx,
                        int inner_dim, int count, int outer_dim, int nstrips,
                        const std::vector<double>& env);
  /// Tier-3 block-size choice for one nest: (outer, inner) block edge
  /// lengths, outer rounded down to a multiple of plan.width.
  [[nodiscard]] std::pair<int, int> choose_block(
      const exec::KernelPlan& plan, int outer_extent, int inner_extent) const;

  spmd::Program prog_;
  std::unique_ptr<simpi::Machine> machine_;
  obs::TraceSession* trace_ = nullptr;
  KernelTier tier_ = KernelTier::Auto;
  int block_i_ = 0;  ///< 0 = automatic L2 heuristic
  int block_j_ = 0;
  std::unique_ptr<TierTally> tally_ = std::make_unique<TierTally>();
  std::vector<double> initial_env_;
  std::vector<std::optional<simpi::DistArrayDesc>> descs_;
  std::unordered_map<const spmd::Op*, NestPlans> plans_;
  std::unordered_map<std::string, int> scalar_ids_;
  bool prepared_ = false;
};

}  // namespace hpfsc

// Compiled stencil microkernels: the fast dispatch tier under the plan
// IR (paper Sections 3.4 and 4; ROADMAP "as fast as the hardware
// allows").
//
// At plan-compile time, `classify_weighted_sum` recognizes the dominant
// plan shape every pass funnels stencils into — per store, a
// left-associated weighted sum of K offset loads,
//
//     dst(i) = [scale *] t1 (+|-) t2 (+|-) ... (+|-) tK [* scale],
//     tk in { load_k, coeff_k * load_k, load_k * coeff_k, coeff_k }
//
// where each coeff_k (and the optional whole-sum scale, the Jacobi
// `0.25 * (...)` shape) is a pure scalar expression (constants and
// scalar parameters only, loop-invariant).  Both the plain and the
// scalar-replacement/unroll-and-jam plan forms normalize to it: register
// forwarding flattens a chain of fused statements into one term list
// without changing the interpreter's left-leaning evaluation order.
//
// Classified plans execute through native C++ microkernel templates
// (specialized over K, with a stride-1 fast path) whose inner loops walk
// raw pointers with the contiguous dimension innermost — no bytecode
// dispatch per element.  Evaluation order, memory-access order, and the
// kernel-reference accounting are identical to the interpreter, so
// results are bitwise-equal and the interpreter remains the semantics
// oracle (and the fallback for every other plan shape).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "executor/plan.hpp"

namespace hpfsc::exec {

/// One term of a weighted sum.  `coeff` is a pure-scalar RPN program
/// (PushConst/PushScalar/arithmetic only); empty means unit coefficient.
struct MicroTerm {
  int load_slot = -1;            ///< plan load slot; -1 = pure-scalar term
  std::vector<PlanInstr> coeff;  ///< loop-invariant coefficient program
  bool coeff_on_left = true;     ///< coeff*load vs load*coeff
  bool subtract = false;         ///< applied with `-` instead of `+`
};

/// One store of the microkernel: dst[store_slot] = scale * sum(terms)
/// (or sum * scale).  `scale` is a pure-scalar RPN program applied to
/// the finished accumulation — the shape `c * (t1 + ... + tK)` the
/// paper's Jacobi kernel produces; empty means no scaling.
struct MicroStore {
  int store_slot = -1;
  std::vector<MicroTerm> terms;
  std::vector<PlanInstr> scale;  ///< loop-invariant whole-sum factor
  bool scale_on_left = true;     ///< scale*sum vs sum*scale
};

/// A classified plan: the stores in emission order.  `alias_free` is
/// true when no load slot touches a stored array (enables the
/// vectorizable restrict-qualified fast path).
struct MicroKernel {
  std::vector<MicroStore> stores;
  bool alias_free = false;
};

/// Attempts to classify `plan` as a weighted-sum microkernel.  Returns
/// nullopt for any shape the compiled tier cannot reproduce bitwise
/// (negation, comparisons, non-scalar divisors, multi-store plans whose
/// store-major execution could reorder aliased accesses).  `inner_dim`
/// and `unroll_dim` are the nest's innermost / unrolled dimensions, used
/// for the multi-store disjointness proof.
[[nodiscard]] std::optional<MicroKernel> classify_weighted_sum(
    const KernelPlan& plan, int inner_dim, int unroll_dim);

/// Runtime form of one term after pointer/coefficient resolution.
struct ResolvedTerm {
  const double* ptr = nullptr;  ///< null for pure-scalar terms
  std::ptrdiff_t stride = 0;
  double coeff = 0.0;           ///< evaluated, loop-invariant
  bool has_coeff = false;       ///< false = unit coefficient
  bool coeff_on_left = true;
  bool subtract = false;
};

/// Runtime form of a store's whole-sum scale factor after evaluation.
struct StoreScale {
  double value = 0.0;
  bool present = false;
  bool on_left = true;  ///< value*sum vs sum*value
};

/// Evaluates a pure-scalar RPN program against the scalar environment.
[[nodiscard]] double eval_coeff(const std::vector<PlanInstr>& code,
                                const double* scalar_env);

/// Executes one store's weighted sum over `count` inner-loop elements.
/// Dispatches to a microkernel template specialized over `k` (and a
/// stride-1 / unit-coefficient fast path when `alias_free` holds and all
/// strides are 1).  Pointers in `terms` are NOT advanced by the call.
void run_weighted_sum(double* dst, std::ptrdiff_t dst_stride,
                      const ResolvedTerm* terms, int k, int count,
                      bool alias_free, StoreScale scale = {});

/// Tier-3 variant: prefers the explicitly vectorized stride-1 kernels
/// (`#pragma omp simd` with widest-available x86 codegen selected at
/// runtime; lane math is plain add/mul, never FMA, so every lane is
/// bitwise-identical to the scalar tiers).  Returns true when the SIMD
/// path ran.  Returns false after falling back to `run_weighted_sum`
/// (non-unit dst or term strides, aliasing, pure-scalar terms, or
/// k beyond the specialization limit) so the caller can attribute the
/// work to the compiled tier — fallback is per-plan, never per-process.
bool run_weighted_sum_simd(double* dst, std::ptrdiff_t dst_stride,
                           const ResolvedTerm* terms, int k, int count,
                           bool alias_free, StoreScale scale = {});

}  // namespace hpfsc::exec

#include "executor/plan.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace hpfsc::exec {

namespace {

int intern(std::vector<spmd::Load>& slots, const spmd::Load& l) {
  auto it = std::find(slots.begin(), slots.end(), l);
  if (it != slots.end()) return static_cast<int>(it - slots.begin());
  slots.push_back(l);
  return static_cast<int>(slots.size() - 1);
}

PlanInstr::Op map_arith(spmd::Instr::Op op) {
  switch (op) {
    case spmd::Instr::Op::Add: return PlanInstr::Op::Add;
    case spmd::Instr::Op::Sub: return PlanInstr::Op::Sub;
    case spmd::Instr::Op::Mul: return PlanInstr::Op::Mul;
    case spmd::Instr::Op::Div: return PlanInstr::Op::Div;
    case spmd::Instr::Op::Neg: return PlanInstr::Op::Neg;
    case spmd::Instr::Op::Lt: return PlanInstr::Op::Lt;
    case spmd::Instr::Op::Le: return PlanInstr::Op::Le;
    case spmd::Instr::Op::Gt: return PlanInstr::Op::Gt;
    case spmd::Instr::Op::Ge: return PlanInstr::Op::Ge;
    case spmd::Instr::Op::Eq: return PlanInstr::Op::Eq;
    case spmd::Instr::Op::Ne: return PlanInstr::Op::Ne;
    default:
      throw std::logic_error("unexpected instruction in kernel body");
  }
}

}  // namespace

KernelPlan build_kernel_plan(const spmd::Op& nest, int width,
                             int unroll_dim) {
  KernelPlan plan;
  plan.width = width;

  // Scalar-replacement state: last known register holding the value of
  // an (array, absolute offset) location.
  std::map<std::pair<int, spmd::Offset>, int> forward;
  // Deferred final stores (location -> register), in first-store order.
  std::vector<std::pair<spmd::Load, int>> pending_stores;

  int stack = 0;
  auto track_push = [&] {
    ++stack;
    plan.max_stack = std::max(plan.max_stack, stack);
  };

  for (int u = 0; u < width; ++u) {
    for (const spmd::Kernel& kernel : nest.kernels) {
      for (const spmd::Instr& in : kernel.code) {
        switch (in.op) {
          case spmd::Instr::Op::PushConst:
            plan.instrs.push_back(
                PlanInstr{PlanInstr::Op::PushConst, 0, 0, in.value});
            track_push();
            break;
          case spmd::Instr::Op::PushScalar:
            plan.instrs.push_back(
                PlanInstr{PlanInstr::Op::PushScalar, in.idx, 0, 0.0});
            track_push();
            break;
          case spmd::Instr::Op::PushLoad: {
            const spmd::Load& base =
                nest.loads[static_cast<std::size_t>(in.idx)];
            spmd::Load abs = base;
            abs.offset[unroll_dim] += u;
            if (nest.scalar_replace) {
              auto key = std::make_pair(abs.array, abs.offset);
              auto it = forward.find(key);
              if (it != forward.end()) {
                plan.instrs.push_back(
                    PlanInstr{PlanInstr::Op::PushReg, 0, it->second, 0.0});
              } else {
                int slot = intern(plan.load_slots, abs);
                int reg = plan.num_regs++;
                forward.emplace(key, reg);
                plan.instrs.push_back(
                    PlanInstr{PlanInstr::Op::LoadPtrCache, slot, reg, 0.0});
              }
            } else {
              int slot = intern(plan.load_slots, abs);
              plan.instrs.push_back(
                  PlanInstr{PlanInstr::Op::LoadPtr, slot, 0, 0.0});
            }
            track_push();
            break;
          }
          default: {
            PlanInstr::Op op = map_arith(in.op);
            plan.instrs.push_back(PlanInstr{op, 0, 0, 0.0});
            if (op != PlanInstr::Op::Neg) --stack;  // binary pops one net
            break;
          }
        }
      }
      // The kernel's result is on the stack: store it.
      spmd::Load target{kernel.lhs_array, kernel.lhs_offset};
      target.offset[unroll_dim] += u;
      if (nest.scalar_replace) {
        int reg = plan.num_regs++;
        plan.instrs.push_back(
            PlanInstr{PlanInstr::Op::PopReg, 0, reg, 0.0});
        auto key = std::make_pair(target.array, target.offset);
        forward[key] = reg;
        bool found = false;
        for (auto& [loc, r] : pending_stores) {
          if (loc == target) {
            r = reg;  // dead intermediate store eliminated
            found = true;
            break;
          }
        }
        if (!found) pending_stores.emplace_back(target, reg);
      } else {
        int slot = intern(plan.store_slots, target);
        plan.instrs.push_back(
            PlanInstr{PlanInstr::Op::PopStore, slot, 0, 0.0});
      }
      --stack;
    }
  }

  // Emit the surviving stores of a scalar-replaced plan.
  for (const auto& [loc, reg] : pending_stores) {
    int slot = intern(plan.store_slots, loc);
    plan.instrs.push_back(PlanInstr{PlanInstr::Op::PushReg, 0, reg, 0.0});
    plan.instrs.push_back(PlanInstr{PlanInstr::Op::PopStore, slot, 0, 0.0});
    plan.max_stack = std::max(plan.max_stack, 1);
  }

  for (const PlanInstr& in : plan.instrs) {
    switch (in.op) {
      case PlanInstr::Op::LoadPtr:
      case PlanInstr::Op::LoadPtrCache:
      case PlanInstr::Op::PopStore:
        ++plan.mem_refs;
        break;
      case PlanInstr::Op::Add:
      case PlanInstr::Op::Sub:
      case PlanInstr::Op::Mul:
      case PlanInstr::Op::Div:
      case PlanInstr::Op::Neg:
      case PlanInstr::Op::Lt:
      case PlanInstr::Op::Le:
      case PlanInstr::Op::Gt:
      case PlanInstr::Op::Ge:
      case PlanInstr::Op::Eq:
      case PlanInstr::Op::Ne:
        ++plan.flops;
        break;
      default:
        break;
    }
  }

  return plan;
}

}  // namespace hpfsc::exec

#include "executor/execution.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string_view>

#include "obs/metrics.hpp"
#include "simpi/obs_span.hpp"
#include "simpi/shift_ops.hpp"

namespace hpfsc {

namespace {
constexpr int kMaxStack = 32;
}

Execution::Execution(spmd::Program program, const simpi::MachineConfig& config)
    : prog_(std::move(program)),
      machine_(std::make_unique<simpi::Machine>(config)) {
  for (std::size_t i = 0; i < prog_.scalars.size(); ++i) {
    scalar_ids_.emplace(prog_.scalars[i].name, static_cast<int>(i));
  }
  if (const char* tier = std::getenv("HPFSC_KERNEL_TIER")) {
    const std::string_view v = tier;
    if (v == "interpreter" || v == "interp") {
      tier_ = KernelTier::InterpreterOnly;
    } else if (v == "auto") {
      tier_ = KernelTier::Auto;
    } else if (v == "simd") {
      tier_ = KernelTier::Simd;
    } else {
      // A typo here used to silently run the default tier; make it loud.
      throw std::invalid_argument(
          "HPFSC_KERNEL_TIER='" + std::string(v) +
          "': accepted values are auto, interpreter (interp), simd");
    }
  }
  if (const char* blk = std::getenv("HPFSC_BLOCK")) {
    int bi = 0;
    int bj = 0;
    int consumed = 0;
    if (std::sscanf(blk, "%dx%d%n", &bi, &bj, &consumed) != 2 ||
        blk[consumed] != '\0' || bi < 1 || bj < 1) {
      throw std::invalid_argument("HPFSC_BLOCK='" + std::string(blk) +
                                  "': expected {bi}x{bj} with bi,bj >= 1");
    }
    block_i_ = bi;
    block_j_ = bj;
  }
  descs_.resize(prog_.arrays.size());
  compile_plans(prog_.ops);
}

void Execution::compile_plans(const std::vector<spmd::Op>& ops) {
  for (const spmd::Op& op : ops) {
    switch (op.kind) {
      case spmd::OpKind::LoopNest: {
        NestPlans plans;
        const int unroll_dim = op.loop_order[0];
        const int inner_dim =
            op.loop_order[static_cast<std::size_t>(op.rank - 1)];
        const int width = op.rank >= 2 ? op.unroll : 1;
        plans.main = exec::build_kernel_plan(op, width, unroll_dim);
        plans.main_micro =
            exec::classify_weighted_sum(plans.main, inner_dim, unroll_dim);
        if (width > 1) {
          plans.epilogue = exec::build_kernel_plan(op, 1, unroll_dim);
          plans.epilogue_micro = exec::classify_weighted_sum(
              *plans.epilogue, inner_dim, unroll_dim);
        }
        if (plans.main.max_stack > kMaxStack) {
          throw std::logic_error("kernel expression too deep");
        }
        plans_.emplace(&op, std::move(plans));
        break;
      }
      case spmd::OpKind::If:
        compile_plans(op.then_ops);
        compile_plans(op.else_ops);
        break;
      case spmd::OpKind::Do:
        compile_plans(op.body);
        break;
      default:
        break;
    }
  }
}

int Execution::scalar_index(const std::string& name) const {
  auto it = scalar_ids_.find(name);
  if (it == scalar_ids_.end()) {
    throw std::invalid_argument("unknown parameter '" + name + "'");
  }
  return it->second;
}

double Execution::eval_bound(const ir::AffineBound& b,
                             const std::vector<double>& env) const {
  if (b.is_literal()) return b.constant;
  double v = env[static_cast<std::size_t>(scalar_index(b.param))];
  if (std::isnan(v)) {
    throw std::invalid_argument("parameter '" + b.param + "' is not bound");
  }
  return v + b.constant;
}

double Execution::eval_scalar(const spmd::ScalarExpr& code,
                              const std::vector<double>& env) const {
  if (code.empty()) return 0.0;
  double stack[kMaxStack];
  int sp = 0;
  for (const spmd::Instr& in : code) {
    switch (in.op) {
      case spmd::Instr::Op::PushConst: stack[sp++] = in.value; break;
      case spmd::Instr::Op::PushScalar:
        stack[sp++] = env[static_cast<std::size_t>(in.idx)];
        break;
      case spmd::Instr::Op::PushLoad:
        throw std::logic_error("array load in scalar expression");
      case spmd::Instr::Op::Add: --sp; stack[sp - 1] += stack[sp]; break;
      case spmd::Instr::Op::Sub: --sp; stack[sp - 1] -= stack[sp]; break;
      case spmd::Instr::Op::Mul: --sp; stack[sp - 1] *= stack[sp]; break;
      case spmd::Instr::Op::Div: --sp; stack[sp - 1] /= stack[sp]; break;
      case spmd::Instr::Op::Neg: stack[sp - 1] = -stack[sp - 1]; break;
      case spmd::Instr::Op::Lt:
        --sp; stack[sp - 1] = stack[sp - 1] < stack[sp] ? 1.0 : 0.0; break;
      case spmd::Instr::Op::Le:
        --sp; stack[sp - 1] = stack[sp - 1] <= stack[sp] ? 1.0 : 0.0; break;
      case spmd::Instr::Op::Gt:
        --sp; stack[sp - 1] = stack[sp - 1] > stack[sp] ? 1.0 : 0.0; break;
      case spmd::Instr::Op::Ge:
        --sp; stack[sp - 1] = stack[sp - 1] >= stack[sp] ? 1.0 : 0.0; break;
      case spmd::Instr::Op::Eq:
        --sp; stack[sp - 1] = stack[sp - 1] == stack[sp] ? 1.0 : 0.0; break;
      case spmd::Instr::Op::Ne:
        --sp; stack[sp - 1] = stack[sp - 1] != stack[sp] ? 1.0 : 0.0; break;
    }
  }
  return stack[0];
}

void Execution::compute_descs() {
  for (std::size_t i = 0; i < prog_.arrays.size(); ++i) {
    const spmd::ArraySpec& spec = prog_.arrays[i];
    if (spec.eliminated) {
      descs_[i].reset();
      continue;
    }
    simpi::DistArrayDesc desc;
    desc.name = spec.name;
    desc.rank = spec.rank;
    for (int d = 0; d < spec.rank; ++d) {
      const double v = eval_bound(spec.extent[d], initial_env_);
      if (v < 1) {
        throw std::invalid_argument("array '" + spec.name +
                                    "' has non-positive extent");
      }
      desc.extent[d] = static_cast<int>(v);
      desc.dist[d] = spec.dist[d];
      desc.halo.lo[d] = spec.halo_lo[d];
      desc.halo.hi[d] = spec.halo_hi[d];
    }
    for (int d = spec.rank; d < ir::kMaxRank; ++d) {
      desc.extent[d] = 1;
      desc.dist[d] = simpi::DistKind::Collapsed;
    }
    descs_[i] = desc;
  }
}

void Execution::prepare(const Bindings& bindings) {
  initial_env_.assign(prog_.scalars.size(),
                      std::numeric_limits<double>::quiet_NaN());
  for (std::size_t i = 0; i < prog_.scalars.size(); ++i) {
    const spmd::ScalarSpec& s = prog_.scalars[i];
    auto it = bindings.values.find(s.name);
    if (it != bindings.values.end()) {
      initial_env_[i] = it->second;
    } else if (s.init) {
      initial_env_[i] = *s.init;
    }
  }
  // Release arrays from a previous prepare (re-binding with new sizes).
  if (prepared_) {
    for (std::size_t i = 0; i < prog_.arrays.size(); ++i) {
      machine_->free_array(static_cast<int>(i));
    }
  }
  compute_descs();
  for (std::size_t i = 0; i < prog_.arrays.size(); ++i) {
    if (prog_.arrays[i].prealloc && descs_[i]) {
      machine_->create_array_at(static_cast<int>(i), *descs_[i]);
    }
  }
  prepared_ = true;
}

int Execution::array_id(const std::string& name) const {
  int id = prog_.find_array(name);
  if (id < 0) throw std::invalid_argument("unknown array '" + name + "'");
  if (prog_.arrays[static_cast<std::size_t>(id)].eliminated) {
    throw std::invalid_argument("array '" + name +
                                "' was eliminated by the optimizer");
  }
  return id;
}

void Execution::set_array(const std::string& name,
                          const std::function<double(int, int, int)>& f) {
  machine_->set_elements(array_id(name), f);
}

void Execution::set_array(const std::string& name,
                          std::span<const double> global) {
  machine_->scatter(array_id(name), global);
}

std::vector<double> Execution::get_array(const std::string& name) {
  return machine_->gather(array_id(name));
}

Execution::RunStats Execution::run(int iterations) {
  if (!prepared_) throw std::logic_error("Execution::prepare not called");
  machine_->clear_stats();
  tally_->compiled_elements.store(0, std::memory_order_relaxed);
  tally_->interpreter_elements.store(0, std::memory_order_relaxed);
  tally_->simd_elements.store(0, std::memory_order_relaxed);
  tally_->compiled_plan_runs.store(0, std::memory_order_relaxed);
  tally_->interpreter_plan_runs.store(0, std::memory_order_relaxed);
  tally_->simd_plan_runs.store(0, std::memory_order_relaxed);
  tally_->flops.store(0, std::memory_order_relaxed);
  obs::Span span(trace_, "execute", "runtime");
  span.arg("iterations", iterations);
  const auto start = std::chrono::steady_clock::now();
  machine_->run([&](simpi::Pe& pe) {
    pe.reset_comm_context();
    std::vector<double> env = initial_env_;
    for (int it = 0; it < iterations; ++it) {
      exec_ops(pe, prog_.ops, env);
    }
  });
  const auto end = std::chrono::steady_clock::now();
  RunStats stats;
  stats.wall_seconds = std::chrono::duration<double>(end - start).count();
  stats.machine = machine_->stats();
  stats.per_pe = machine_->per_pe_stats();
  // Tee the per-PE wait-state categories into the attached metrics
  // registry as histograms (one sample per PE per run, recorded
  // unconditionally so the counts stay deterministic for goldens).
  if (obs::MetricsRegistry* reg =
          trace_ != nullptr ? trace_->metrics() : nullptr) {
    for (const simpi::PeStats& pe : stats.per_pe) {
      reg->observe("simpi.recv_wait_ms",
                   static_cast<double>(pe.wait.recv_wait_ns) / 1e6);
      reg->observe("simpi.barrier_wait_ms",
                   static_cast<double>(pe.wait.barrier_wait_ns) / 1e6);
      reg->observe("simpi.pool_wait_ms",
                   static_cast<double>(pe.wait.pool_wait_ns) / 1e6);
      // Only a deferring backend can accumulate overlap wait; gating on
      // the backend (not the sample) keeps per-run histogram counts
      // deterministic while leaving sync-run metrics output unchanged.
      if (machine_->comm_backend().deferred()) {
        reg->observe("simpi.overlap_wait_ms",
                     static_cast<double>(pe.wait.overlap_wait_ns) / 1e6);
      }
    }
  }
  stats.tier.compiled_elements =
      tally_->compiled_elements.load(std::memory_order_relaxed);
  stats.tier.interpreter_elements =
      tally_->interpreter_elements.load(std::memory_order_relaxed);
  stats.tier.simd_elements =
      tally_->simd_elements.load(std::memory_order_relaxed);
  stats.tier.compiled_plan_runs =
      tally_->compiled_plan_runs.load(std::memory_order_relaxed);
  stats.tier.interpreter_plan_runs =
      tally_->interpreter_plan_runs.load(std::memory_order_relaxed);
  stats.tier.simd_plan_runs =
      tally_->simd_plan_runs.load(std::memory_order_relaxed);
  stats.tier.flops = tally_->flops.load(std::memory_order_relaxed);
  if (span.active()) {
    span.arg("messages", stats.machine.messages_sent);
    span.arg("bytes_sent", stats.machine.bytes_sent);
    span.arg("intra_copy_bytes", stats.machine.intra_copy_bytes);
    span.arg("kernel_ref_bytes", stats.machine.kernel_ref_bytes);
    span.arg("modeled_comm_ns", stats.machine.modeled_comm_ns);
    span.arg("modeled_copy_ns", stats.machine.modeled_copy_ns);
    span.arg("peak_heap_bytes",
             static_cast<double>(stats.machine.peak_heap_bytes));
    span.arg("kernel.tier.compiled_elements", stats.tier.compiled_elements);
    span.arg("kernel.tier.interpreter_elements",
             stats.tier.interpreter_elements);
    span.arg("kernel.tier.simd_elements", stats.tier.simd_elements);
    span.arg("kernel.flops", stats.tier.flops);
    span.arg("wait.recv_ns", stats.machine.wait.recv_wait_ns);
    span.arg("wait.barrier_ns", stats.machine.wait.barrier_wait_ns);
    span.arg("wait.pool_ns", stats.machine.wait.pool_wait_ns);
    if (stats.machine.wait.overlap_wait_ns != 0) {
      span.arg("wait.overlap_ns", stats.machine.wait.overlap_wait_ns);
    }
  }
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->counter("kernel.tier.compiled_elements",
                    static_cast<double>(stats.tier.compiled_elements));
    trace_->counter("kernel.tier.interpreter_elements",
                    static_cast<double>(stats.tier.interpreter_elements));
    trace_->counter("kernel.tier.simd_elements",
                    static_cast<double>(stats.tier.simd_elements));
    trace_->counter("kernel.tier.compiled_plan_runs",
                    static_cast<double>(stats.tier.compiled_plan_runs));
    trace_->counter("kernel.tier.interpreter_plan_runs",
                    static_cast<double>(stats.tier.interpreter_plan_runs));
    trace_->counter("kernel.tier.simd_plan_runs",
                    static_cast<double>(stats.tier.simd_plan_runs));
    trace_->counter("kernel.flops",
                    static_cast<double>(stats.tier.flops));
  }
  return stats;
}

void Execution::exec_ops(simpi::Pe& pe, const std::vector<spmd::Op>& ops,
                         std::vector<double>& env) {
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const spmd::Op& op = ops[i];
    switch (op.kind) {
      case spmd::OpKind::Alloc:
        for (int id : op.arrays) {
          pe.create_array(id, *descs_[static_cast<std::size_t>(id)]);
        }
        break;
      case spmd::OpKind::Free:
        for (int id : op.arrays) pe.free_array(id);
        break;
      case spmd::OpKind::FullShift:
        simpi::full_cshift(pe, op.array, op.src, op.shift, op.dim,
                           op.shift_kind, eval_scalar(op.boundary, env));
        // A full shift is never unioned, so it closes its own context
        // charge: a shift-assign statement has no kernel nest to do it,
        // and multi-shift statements fall outside the invariant anyway.
        pe.reset_comm_context();
        break;
      case spmd::OpKind::OverlapShift: {
        // Execute the maximal run of consecutive overlap shifts.  Under
        // a deferring backend their remote receives stay posted; if the
        // op that follows is a nest the marking pass proved reorder-
        // safe, those receives ride through its interior compute.
        // Otherwise complete them here — pending receives never outlive
        // the statement context that posted them.
        std::vector<int> shifted;
        std::size_t j = i;
        for (; j < ops.size() && ops[j].kind == spmd::OpKind::OverlapShift;
             ++j) {
          const spmd::Op& s = ops[j];
          simpi::overlap_shift(pe, s.array, s.shift, s.dim, s.rsd,
                               s.shift_kind, eval_scalar(s.boundary, env));
          shifted.push_back(s.array);
        }
        if (machine_->comm_backend().deferred() && j < ops.size() &&
            ops[j].kind == spmd::OpKind::LoopNest &&
            ops[j].overlap_eligible) {
          exec_nest_stmt(pe, ops[j], env, &shifted);
          i = j;  // consumed the nest too
        } else {
          machine_->comm_backend().wait_all(pe);
          i = j - 1;
        }
        break;
      }
      case spmd::OpKind::CopyOffset: {
        simpi::StepSpan span(
            pe, "COPY_OFFSET",
            prog_.arrays[static_cast<std::size_t>(op.array)].name);
        simpi::LocalGrid& dst = pe.grid(op.array);
        if (!dst.owns_anything()) break;
        pe.charge_intra_copy(dst.copy_offset_from(
            pe.grid(op.src), dst.owned_region(), op.copy_offset));
        break;
      }
      case spmd::OpKind::LoopNest:
        exec_nest_stmt(pe, op, env, /*overlap_shifted=*/nullptr);
        break;
      case spmd::OpKind::ScalarAssign:
        env[static_cast<std::size_t>(op.scalar)] = eval_scalar(op.expr, env);
        break;
      case spmd::OpKind::If:
        if (eval_scalar(op.cond, env) != 0.0) {
          exec_ops(pe, op.then_ops, env);
        } else {
          exec_ops(pe, op.else_ops, env);
        }
        break;
      case spmd::OpKind::Do: {
        const int lo = static_cast<int>(eval_bound(op.lo, env));
        const int hi = static_cast<int>(eval_bound(op.hi, env));
        for (int v = lo; v <= hi; ++v) {
          env[static_cast<std::size_t>(op.var)] = v;
          exec_ops(pe, op.body, env);
        }
        break;
      }
    }
  }
}

void Execution::exec_nest_stmt(simpi::Pe& pe, const spmd::Op& op,
                               std::vector<double>& env,
                               const std::vector<int>* overlap_shifted) {
  simpi::StepSpan span(
      pe, "KERNEL",
      prog_.arrays[static_cast<std::size_t>(op.kernels.front().lhs_array)]
          .name);
  if (span.active()) {
    span.arg("statements", static_cast<int>(op.kernels.size()));
    span.arg("unroll", op.unroll);
    if (overlap_shifted != nullptr) span.arg("overlap", 1);
    const NestPlans& plans = plans_.at(&op);
    const char* tier = "interpreter";
    if (tier_ != KernelTier::InterpreterOnly && plans.main_micro) {
      const bool full = !plans.epilogue || plans.epilogue_micro;
      const bool simd = tier_ == KernelTier::Simd &&
                        plans.main_micro->alias_free;
      tier = !full ? "mixed" : simd ? "simd" : "compiled";
    }
    span.arg_str("kernel.tier", tier);
    if (tier_ == KernelTier::Simd && op.rank >= 2 &&
        plans.main_micro && plans.main_micro->alias_free) {
      // Block sizes as chosen for the nest's global bounds; each
      // PE re-derives them against its own owned region.
      const int ud = op.loop_order[0];
      const int inner =
          op.loop_order[static_cast<std::size_t>(op.rank - 1)];
      const int oext =
          static_cast<int>(eval_bound(op.bounds[ud].hi, env)) -
          static_cast<int>(eval_bound(op.bounds[ud].lo, env)) + 1;
      const int iext =
          static_cast<int>(eval_bound(op.bounds[inner].hi, env)) -
          static_cast<int>(eval_bound(op.bounds[inner].lo, env)) + 1;
      if (oext > 0 && iext > 0) {
        const auto [bi, bj] = choose_block(plans.main, oext, iext);
        span.arg("kernel.block_i", bi);
        span.arg("kernel.block_j", bj);
      }
    }
  }
  if (overlap_shifted != nullptr) {
    exec_nest_overlap(pe, op, env, *overlap_shifted);
  } else {
    exec_nest(pe, op, env);
  }
  // A kernel nest closes the executed statement context: the next
  // statement's shifts get a fresh per-direction message budget.
  pe.reset_comm_context();
}

void Execution::exec_nest(simpi::Pe& pe, const spmd::Op& op,
                          std::vector<double>& env) {
  const int owner = op.kernels.front().lhs_array;
  simpi::LocalGrid& og = pe.grid(owner);
  if (!og.owns_anything()) return;

  std::array<int, ir::kMaxRank> box_lo{1, 1, 1};
  std::array<int, ir::kMaxRank> box_hi{1, 1, 1};
  for (int d = 0; d < op.rank; ++d) {
    box_lo[d] = std::max(static_cast<int>(eval_bound(op.bounds[d].lo, env)),
                         og.own_lo(d));
    box_hi[d] = std::min(static_cast<int>(eval_bound(op.bounds[d].hi, env)),
                         og.own_hi(d));
    if (box_lo[d] > box_hi[d]) return;
  }
  exec_nest_box(pe, op, env, box_lo, box_hi);
}

void Execution::exec_nest_overlap(simpi::Pe& pe, const spmd::Op& op,
                                  std::vector<double>& env,
                                  const std::vector<int>& shifted) {
  simpi::CommBackend& backend = machine_->comm_backend();
  const int owner = op.kernels.front().lhs_array;
  simpi::LocalGrid& og = pe.grid(owner);

  std::array<int, ir::kMaxRank> box_lo{1, 1, 1};
  std::array<int, ir::kMaxRank> box_hi{1, 1, 1};
  bool empty = !og.owns_anything();
  for (int d = 0; !empty && d < op.rank; ++d) {
    box_lo[d] = std::max(static_cast<int>(eval_bound(op.bounds[d].lo, env)),
                         og.own_lo(d));
    box_hi[d] = std::min(static_cast<int>(eval_bound(op.bounds[d].hi, env)),
                         og.own_hi(d));
    empty = box_lo[d] > box_hi[d];
  }
  if (empty) {
    // This PE computes nothing, but it may still have posted receives
    // (its halos feed later iterations) — complete them before leaving
    // the statement context.
    backend.wait_all(pe);
    return;
  }

  // Interior: shrink the box per load of a pending-shifted array so
  // idx + offset stays inside that array's own box — the interior then
  // provably reads no cell an in-flight receive will write.  Loads of
  // arrays outside the pending set are untouched: their halos hold
  // settled values, identical under either backend.
  std::array<int, ir::kMaxRank> in_lo = box_lo;
  std::array<int, ir::kMaxRank> in_hi = box_hi;
  for (const spmd::Load& load : op.loads) {
    if (std::find(shifted.begin(), shifted.end(), load.array) ==
        shifted.end()) {
      continue;
    }
    const simpi::LocalGrid& g = pe.grid(load.array);
    for (int d = 0; d < op.rank; ++d) {
      in_lo[d] = std::max(in_lo[d], g.own_lo(d) - load.offset[d]);
      in_hi[d] = std::min(in_hi[d], g.own_hi(d) - load.offset[d]);
    }
  }
  bool has_interior = true;
  for (int d = 0; d < op.rank; ++d) {
    has_interior = has_interior && in_lo[d] <= in_hi[d];
  }
  if (!has_interior) {
    // Degenerate subgrid (e.g. halo as wide as the owned extent): no
    // cell is provably receive-independent, so this collapses to the
    // sync schedule.
    backend.wait_all(pe);
    exec_nest_box(pe, op, env, box_lo, box_hi);
    return;
  }

  exec_nest_box(pe, op, env, in_lo, in_hi);
  backend.wait_all(pe);

  // Onion-peel the boundary frame (box minus interior) into at most
  // 2 * rank disjoint rectangles: per dimension, the strip below and
  // above the interior over the not-yet-peeled extent of the later
  // dimensions.
  std::array<int, ir::kMaxRank> rem_lo = box_lo;
  std::array<int, ir::kMaxRank> rem_hi = box_hi;
  for (int d = 0; d < op.rank; ++d) {
    if (rem_lo[d] < in_lo[d]) {
      std::array<int, ir::kMaxRank> lo = rem_lo;
      std::array<int, ir::kMaxRank> hi = rem_hi;
      hi[d] = in_lo[d] - 1;
      exec_nest_box(pe, op, env, lo, hi);
    }
    if (rem_hi[d] > in_hi[d]) {
      std::array<int, ir::kMaxRank> lo = rem_lo;
      std::array<int, ir::kMaxRank> hi = rem_hi;
      lo[d] = in_hi[d] + 1;
      exec_nest_box(pe, op, env, lo, hi);
    }
    rem_lo[d] = in_lo[d];
    rem_hi[d] = in_hi[d];
  }
}

void Execution::exec_nest_box(simpi::Pe& pe, const spmd::Op& op,
                              std::vector<double>& env,
                              const std::array<int, ir::kMaxRank>& box_lo,
                              const std::array<int, ir::kMaxRank>& box_hi) {
  for (int d = 0; d < op.rank; ++d) {
    if (box_lo[d] > box_hi[d]) return;
  }
  const NestPlans& plans = plans_.at(&op);
  const int inner = op.loop_order[static_cast<std::size_t>(op.rank - 1)];

  const exec::MicroKernel* main_micro =
      plans.main_micro ? &*plans.main_micro : nullptr;

  if (op.rank == 1) {
    run_plan(pe, op, plans.main, main_micro, box_lo, box_hi, box_lo, inner,
             env);
    return;
  }

  const int ud = op.loop_order[0];  // outermost / unrolled dimension
  const int mid = op.rank == 3 ? op.loop_order[1] : -1;

  // Tier-3: 2-D spatial blocking over (outer, inner).  Only taken for
  // classified alias-free plans — no element reads anything the nest
  // writes, so the blocked traversal order is bitwise-invisible.  The
  // epilogue (if any) shares the plan's arrays, hence its alias
  // freedom; it may still run interpreted inside a block (per-plan
  // fallback).  The outer block size is a multiple of plan.width and
  // the main/epilogue split tests the *global* outer bound, so every
  // element is visited exactly once and kernel_ref_bytes is unchanged.
  // Consecutive width-strips of a block column run as one batched call
  // (pointers resolved once, advanced by strides between strips).
  if (tier_ == KernelTier::Simd && plans.main_micro &&
      plans.main_micro->alias_free) {
    const auto [bi, bj] = choose_block(plans.main, box_hi[ud] - box_lo[ud] + 1,
                                       box_hi[inner] - box_lo[inner] + 1);
    const int width = plans.main.width;
    // Last outer index where a full-width main strip fits (global bound).
    const int main_top = box_hi[ud] - width + 1;
    for (int ob = box_lo[ud]; ob <= box_hi[ud]; ob += bi) {
      const int ob_hi = std::min(ob + bi - 1, box_hi[ud]);
      for (int jb = box_lo[inner]; jb <= box_hi[inner]; jb += bj) {
        std::array<int, ir::kMaxRank> blk_lo = box_lo;
        std::array<int, ir::kMaxRank> blk_hi = box_hi;
        blk_lo[inner] = jb;
        blk_hi[inner] = std::min(jb + bj - 1, box_hi[inner]);
        const int count = blk_hi[inner] - blk_lo[inner] + 1;
        std::array<int, ir::kMaxRank> idx{1, 1, 1};
        idx[inner] = blk_lo[inner];
        int o = ob;
        if (o <= main_top) {
          const int nstrips = (std::min(ob_hi, main_top) - o) / width + 1;
          idx[ud] = o;
          if (op.rank == 3) {
            for (int m = box_lo[mid]; m <= box_hi[mid]; ++m) {
              idx[mid] = m;
              run_micro_strips(pe, plans.main, *plans.main_micro, idx, inner,
                               count, ud, nstrips, env);
            }
          } else {
            run_micro_strips(pe, plans.main, *plans.main_micro, idx, inner,
                             count, ud, nstrips, env);
          }
          o += nstrips * width;
        }
        if (o > ob_hi) continue;
        if (plans.epilogue_micro) {
          idx[ud] = o;
          const int nstrips = ob_hi - o + 1;  // epilogue strips are width 1
          if (op.rank == 3) {
            for (int m = box_lo[mid]; m <= box_hi[mid]; ++m) {
              idx[mid] = m;
              run_micro_strips(pe, *plans.epilogue, *plans.epilogue_micro,
                               idx, inner, count, ud, nstrips, env);
            }
          } else {
            run_micro_strips(pe, *plans.epilogue, *plans.epilogue_micro, idx,
                             inner, count, ud, nstrips, env);
          }
          continue;
        }
        for (; o <= ob_hi; ++o) {  // unclassified epilogue: interpret per row
          idx[ud] = o;
          if (op.rank == 3) {
            for (int m = box_lo[mid]; m <= box_hi[mid]; ++m) {
              idx[mid] = m;
              run_plan(pe, op, *plans.epilogue, nullptr, blk_lo, blk_hi, idx,
                       inner, env);
            }
          } else {
            run_plan(pe, op, *plans.epilogue, nullptr, blk_lo, blk_hi, idx,
                     inner, env);
          }
        }
      }
    }
    return;
  }

  for (int o = box_lo[ud]; o <= box_hi[ud];) {
    const exec::KernelPlan* plan = &plans.main;
    const exec::MicroKernel* micro = main_micro;
    if (o + plan->width - 1 > box_hi[ud]) {
      plan = &*plans.epilogue;
      micro = plans.epilogue_micro ? &*plans.epilogue_micro : nullptr;
    }
    std::array<int, ir::kMaxRank> idx{1, 1, 1};
    idx[ud] = o;
    if (op.rank == 3) {
      for (int m = box_lo[mid]; m <= box_hi[mid]; ++m) {
        idx[mid] = m;
        run_plan(pe, op, *plan, micro, box_lo, box_hi, idx, inner, env);
      }
    } else {
      run_plan(pe, op, *plan, micro, box_lo, box_hi, idx, inner, env);
    }
    o += plan->width;
  }
}

std::pair<int, int> Execution::choose_block(const exec::KernelPlan& plan,
                                            int outer_extent,
                                            int inner_extent) const {
  const int width = std::max(plan.width, 1);
  int bi = block_i_;
  int bj = block_j_;
  if (bi <= 0 || bj <= 0) {
    // L2 heuristic: size the block so its kernel-referenced footprint
    // (mem_refs covers a width-strip per inner iteration, i.e.
    // mem_refs/width doubles per cell) fits a conservative share of a
    // 2 MiB-class L2.  Wide-but-shallow blocks keep the inner loop long
    // enough to vectorize well.
    constexpr double kL2BudgetBytes = 1.0 * 1024.0 * 1024.0;
    const double bytes_per_cell =
        std::max(1.0, static_cast<double>(plan.mem_refs) * sizeof(double) /
                          static_cast<double>(width));
    bj = std::min(inner_extent, 512);
    bj = std::max(bj, 1);
    const double rows = kL2BudgetBytes / (bytes_per_cell * bj);
    bi = static_cast<int>(std::min<double>(rows, outer_extent));
  }
  // Invariance guard: outer blocks must hold whole width-strips.
  bi = std::max(width, bi - bi % width);
  bi = std::min(bi, std::max(outer_extent, width));
  bj = std::max(1, std::min(bj, std::max(inner_extent, 1)));
  return {bi, bj};
}

void Execution::run_plan(simpi::Pe& pe, const spmd::Op& op,
                         const exec::KernelPlan& plan,
                         const exec::MicroKernel* micro,
                         const std::array<int, ir::kMaxRank>& box_lo,
                         const std::array<int, ir::kMaxRank>& box_hi,
                         std::array<int, ir::kMaxRank> idx, int inner_dim,
                         const std::vector<double>& env) {
  (void)op;
  const int count = box_hi[inner_dim] - box_lo[inner_dim] + 1;
  idx[inner_dim] = box_lo[inner_dim];

  const std::uint64_t elems = static_cast<std::uint64_t>(count) *
                              static_cast<std::uint64_t>(plan.width);
  // Charged ahead of the tier split: the microkernel evaluates exactly
  // the plan's operation list, so both tiers perform plan.flops
  // floating-point operations per inner-loop iteration.
  tally_->flops.fetch_add(static_cast<std::uint64_t>(count) *
                              static_cast<std::uint64_t>(plan.flops),
                          std::memory_order_relaxed);
  if (micro != nullptr && tier_ != KernelTier::InterpreterOnly) {
    const bool used_simd =
        run_micro(pe, plan, *micro, idx, inner_dim, count, env,
                  /*want_simd=*/tier_ == KernelTier::Simd);
    if (used_simd) {
      tally_->simd_elements.fetch_add(elems, std::memory_order_relaxed);
      tally_->simd_plan_runs.fetch_add(1, std::memory_order_relaxed);
    } else {
      tally_->compiled_elements.fetch_add(elems, std::memory_order_relaxed);
      tally_->compiled_plan_runs.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  tally_->interpreter_elements.fetch_add(elems, std::memory_order_relaxed);
  tally_->interpreter_plan_runs.fetch_add(1, std::memory_order_relaxed);

  thread_local std::vector<double*> load_ptrs;
  thread_local std::vector<std::ptrdiff_t> load_strides;
  thread_local std::vector<double*> store_ptrs;
  thread_local std::vector<std::ptrdiff_t> store_strides;
  thread_local std::vector<double> regs;

  load_ptrs.resize(plan.load_slots.size());
  load_strides.resize(plan.load_slots.size());
  for (std::size_t k = 0; k < plan.load_slots.size(); ++k) {
    const spmd::Load& slot = plan.load_slots[k];
    simpi::LocalGrid& g = pe.grid(slot.array);
    std::array<int, ir::kMaxRank> pos{idx[0] + slot.offset[0],
                                      idx[1] + slot.offset[1],
                                      idx[2] + slot.offset[2]};
    load_ptrs[k] = g.ptr_to(pos);
    load_strides[k] = g.stride(inner_dim);
  }
  store_ptrs.resize(plan.store_slots.size());
  store_strides.resize(plan.store_slots.size());
  for (std::size_t k = 0; k < plan.store_slots.size(); ++k) {
    const spmd::Load& slot = plan.store_slots[k];
    simpi::LocalGrid& g = pe.grid(slot.array);
    std::array<int, ir::kMaxRank> pos{idx[0] + slot.offset[0],
                                      idx[1] + slot.offset[1],
                                      idx[2] + slot.offset[2]};
    store_ptrs[k] = g.ptr_to(pos);
    store_strides[k] = g.stride(inner_dim);
  }
  regs.resize(static_cast<std::size_t>(plan.num_regs));

  const double* scalars = env.data();
  for (int c = 0; c < count; ++c) {
    double stack[kMaxStack];
    int sp = 0;
    for (const exec::PlanInstr& in : plan.instrs) {
      switch (in.op) {
        case exec::PlanInstr::Op::LoadPtr:
          stack[sp++] = *load_ptrs[static_cast<std::size_t>(in.idx)];
          break;
        case exec::PlanInstr::Op::LoadPtrCache: {
          const double v = *load_ptrs[static_cast<std::size_t>(in.idx)];
          regs[static_cast<std::size_t>(in.reg)] = v;
          stack[sp++] = v;
          break;
        }
        case exec::PlanInstr::Op::PushReg:
          stack[sp++] = regs[static_cast<std::size_t>(in.reg)];
          break;
        case exec::PlanInstr::Op::PushConst:
          stack[sp++] = in.value;
          break;
        case exec::PlanInstr::Op::PushScalar:
          stack[sp++] = scalars[in.idx];
          break;
        case exec::PlanInstr::Op::Add:
          --sp;
          stack[sp - 1] += stack[sp];
          break;
        case exec::PlanInstr::Op::Sub:
          --sp;
          stack[sp - 1] -= stack[sp];
          break;
        case exec::PlanInstr::Op::Mul:
          --sp;
          stack[sp - 1] *= stack[sp];
          break;
        case exec::PlanInstr::Op::Div:
          --sp;
          stack[sp - 1] /= stack[sp];
          break;
        case exec::PlanInstr::Op::Neg:
          stack[sp - 1] = -stack[sp - 1];
          break;
        case exec::PlanInstr::Op::Lt:
          --sp;
          stack[sp - 1] = stack[sp - 1] < stack[sp] ? 1.0 : 0.0;
          break;
        case exec::PlanInstr::Op::Le:
          --sp;
          stack[sp - 1] = stack[sp - 1] <= stack[sp] ? 1.0 : 0.0;
          break;
        case exec::PlanInstr::Op::Gt:
          --sp;
          stack[sp - 1] = stack[sp - 1] > stack[sp] ? 1.0 : 0.0;
          break;
        case exec::PlanInstr::Op::Ge:
          --sp;
          stack[sp - 1] = stack[sp - 1] >= stack[sp] ? 1.0 : 0.0;
          break;
        case exec::PlanInstr::Op::Eq:
          --sp;
          stack[sp - 1] = stack[sp - 1] == stack[sp] ? 1.0 : 0.0;
          break;
        case exec::PlanInstr::Op::Ne:
          --sp;
          stack[sp - 1] = stack[sp - 1] != stack[sp] ? 1.0 : 0.0;
          break;
        case exec::PlanInstr::Op::PopReg:
          regs[static_cast<std::size_t>(in.reg)] = stack[--sp];
          break;
        case exec::PlanInstr::Op::PopStore:
          *store_ptrs[static_cast<std::size_t>(in.idx)] = stack[--sp];
          break;
      }
    }
    for (std::size_t k = 0; k < load_ptrs.size(); ++k) {
      load_ptrs[k] += load_strides[k];
    }
    for (std::size_t k = 0; k < store_ptrs.size(); ++k) {
      store_ptrs[k] += store_strides[k];
    }
  }
  // Account the subgrid-loop memory traffic this plan performed (the
  // quantity the Section 3.4 memory optimizations reduce).
  pe.charge_kernel_refs(static_cast<std::size_t>(count) *
                        static_cast<std::size_t>(plan.mem_refs) *
                        sizeof(double));
}

bool Execution::run_micro(simpi::Pe& pe, const exec::KernelPlan& plan,
                          const exec::MicroKernel& micro,
                          const std::array<int, ir::kMaxRank>& idx,
                          int inner_dim, int count,
                          const std::vector<double>& env, bool want_simd) {
  thread_local std::vector<exec::ResolvedTerm> terms;
  const double* scalars = env.data();
  bool used_simd = want_simd;

  for (const exec::MicroStore& store : micro.stores) {
    const spmd::Load& dslot =
        plan.store_slots[static_cast<std::size_t>(store.store_slot)];
    simpi::LocalGrid& dg = pe.grid(dslot.array);
    std::array<int, ir::kMaxRank> dpos{idx[0] + dslot.offset[0],
                                       idx[1] + dslot.offset[1],
                                       idx[2] + dslot.offset[2]};
    double* dst = dg.ptr_to(dpos);
    const std::ptrdiff_t dstride = dg.stride(inner_dim);

    terms.resize(store.terms.size());
    for (std::size_t t = 0; t < store.terms.size(); ++t) {
      const exec::MicroTerm& mt = store.terms[t];
      exec::ResolvedTerm& rt = terms[t];
      if (mt.load_slot >= 0) {
        const spmd::Load& slot =
            plan.load_slots[static_cast<std::size_t>(mt.load_slot)];
        simpi::LocalGrid& g = pe.grid(slot.array);
        std::array<int, ir::kMaxRank> pos{idx[0] + slot.offset[0],
                                          idx[1] + slot.offset[1],
                                          idx[2] + slot.offset[2]};
        rt.ptr = g.ptr_to(pos);
        rt.stride = g.stride(inner_dim);
      } else {
        rt.ptr = nullptr;
        rt.stride = 0;
      }
      rt.has_coeff = !mt.coeff.empty();
      rt.coeff = rt.has_coeff ? exec::eval_coeff(mt.coeff, scalars) : 0.0;
      rt.coeff_on_left = mt.coeff_on_left;
      rt.subtract = mt.subtract;
    }

    exec::StoreScale sc;
    if (!store.scale.empty()) {
      sc.present = true;
      sc.value = exec::eval_coeff(store.scale, scalars);
      sc.on_left = store.scale_on_left;
    }
    if (want_simd) {
      used_simd &= exec::run_weighted_sum_simd(dst, dstride, terms.data(),
                                               static_cast<int>(terms.size()),
                                               count, micro.alias_free, sc);
    } else {
      exec::run_weighted_sum(dst, dstride, terms.data(),
                             static_cast<int>(terms.size()), count,
                             micro.alias_free, sc);
    }
  }

  // Same accounting identity as the interpreter: all tiers charge the
  // plan's per-element reference count, so MachineStats are tier-invariant.
  pe.charge_kernel_refs(static_cast<std::size_t>(count) *
                        static_cast<std::size_t>(plan.mem_refs) *
                        sizeof(double));
  return used_simd;
}

void Execution::run_micro_strips(simpi::Pe& pe, const exec::KernelPlan& plan,
                                 const exec::MicroKernel& micro,
                                 const std::array<int, ir::kMaxRank>& idx,
                                 int inner_dim, int count, int outer_dim,
                                 int nstrips,
                                 const std::vector<double>& env) {
  struct StripStore {
    double* dst;
    std::ptrdiff_t dstride;
    std::ptrdiff_t dstep;  ///< dst advance per strip
    int k;
    exec::StoreScale sc;
  };
  thread_local std::vector<exec::ResolvedTerm> terms;
  thread_local std::vector<std::ptrdiff_t> term_steps;
  thread_local std::vector<StripStore> stores;
  const double* scalars = env.data();

  terms.clear();
  term_steps.clear();
  stores.clear();
  for (const exec::MicroStore& store : micro.stores) {
    const spmd::Load& dslot =
        plan.store_slots[static_cast<std::size_t>(store.store_slot)];
    simpi::LocalGrid& dg = pe.grid(dslot.array);
    std::array<int, ir::kMaxRank> dpos{idx[0] + dslot.offset[0],
                                       idx[1] + dslot.offset[1],
                                       idx[2] + dslot.offset[2]};
    StripStore ss;
    ss.dst = dg.ptr_to(dpos);
    ss.dstride = dg.stride(inner_dim);
    ss.dstep = dg.stride(outer_dim) * plan.width;
    ss.k = static_cast<int>(store.terms.size());
    if (!store.scale.empty()) {
      ss.sc.present = true;
      ss.sc.value = exec::eval_coeff(store.scale, scalars);
      ss.sc.on_left = store.scale_on_left;
    }
    stores.push_back(ss);
    for (const exec::MicroTerm& mt : store.terms) {
      exec::ResolvedTerm rt;
      std::ptrdiff_t step = 0;
      if (mt.load_slot >= 0) {
        const spmd::Load& slot =
            plan.load_slots[static_cast<std::size_t>(mt.load_slot)];
        simpi::LocalGrid& g = pe.grid(slot.array);
        std::array<int, ir::kMaxRank> pos{idx[0] + slot.offset[0],
                                          idx[1] + slot.offset[1],
                                          idx[2] + slot.offset[2]};
        rt.ptr = g.ptr_to(pos);
        rt.stride = g.stride(inner_dim);
        step = g.stride(outer_dim) * plan.width;
      }
      rt.has_coeff = !mt.coeff.empty();
      rt.coeff = rt.has_coeff ? exec::eval_coeff(mt.coeff, scalars) : 0.0;
      rt.coeff_on_left = mt.coeff_on_left;
      rt.subtract = mt.subtract;
      terms.push_back(rt);
      term_steps.push_back(step);
    }
  }

  // The SIMD-vs-compiled decision is a pure function of the resolved
  // plan shape, so every strip of the batch takes the same path.
  bool used_simd = true;
  for (int s = 0; s < nstrips; ++s) {
    std::size_t off = 0;
    for (StripStore& ss : stores) {
      used_simd &= exec::run_weighted_sum_simd(ss.dst, ss.dstride,
                                               terms.data() + off, ss.k,
                                               count, micro.alias_free, ss.sc);
      ss.dst += ss.dstep;
      off += static_cast<std::size_t>(ss.k);
    }
    for (std::size_t t = 0; t < terms.size(); ++t) {
      if (terms[t].ptr != nullptr) terms[t].ptr += term_steps[t];
    }
  }

  // Same charges the per-strip paths make, summed over the batch.
  const std::uint64_t strips = static_cast<std::uint64_t>(nstrips);
  const std::uint64_t per_strip = static_cast<std::uint64_t>(count);
  tally_->flops.fetch_add(
      per_strip * static_cast<std::uint64_t>(plan.flops) * strips,
      std::memory_order_relaxed);
  const std::uint64_t elems =
      per_strip * static_cast<std::uint64_t>(plan.width) * strips;
  if (used_simd) {
    tally_->simd_elements.fetch_add(elems, std::memory_order_relaxed);
    tally_->simd_plan_runs.fetch_add(strips, std::memory_order_relaxed);
  } else {
    tally_->compiled_elements.fetch_add(elems, std::memory_order_relaxed);
    tally_->compiled_plan_runs.fetch_add(strips, std::memory_order_relaxed);
  }
  pe.charge_kernel_refs(static_cast<std::size_t>(count) *
                        static_cast<std::size_t>(plan.mem_refs) *
                        sizeof(double) * static_cast<std::size_t>(nstrips));
}

}  // namespace hpfsc

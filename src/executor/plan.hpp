// Kernel plans: the executable form of a subgrid loop nest.  The plan
// compiler honors the memory-optimization annotations, so the paper's
// Section 3.4 transformations have a real, measurable effect:
//
//  * unroll-and-jam expands `unroll` instances of the nest body along
//    the outermost loop into one inner-loop body;
//  * scalar replacement caches each distinct (array, offset) load in a
//    register, forwards values stored by earlier body statements to
//    later reads, and drops dead intermediate stores (only the final
//    store per location is emitted).
//
// Without the annotations every textual reference costs a memory access
// and every statement instance a store — the behavior of the naive
// translation the paper measures first.
#pragma once

#include <cstdint>
#include <vector>

#include "codegen/spmd_program.hpp"

namespace hpfsc::exec {

struct PlanInstr {
  enum class Op : std::uint8_t {
    LoadPtr,       ///< push *load_ptr[idx]
    LoadPtrCache,  ///< v = *load_ptr[idx]; regs[reg] = v; push v
    PushReg,       ///< push regs[reg]
    PushConst,     ///< push value
    PushScalar,    ///< push scalar_env[idx]
    Add,
    Sub,
    Mul,
    Div,
    Neg,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    PopReg,        ///< regs[reg] = pop
    PopStore,      ///< *store_ptr[idx] = pop
  };
  Op op = Op::PushConst;
  int idx = 0;
  int reg = 0;
  double value = 0.0;
};

/// A compiled nest body covering `width` consecutive iterations of the
/// unrolled (outermost) loop dimension.
struct KernelPlan {
  std::vector<spmd::Load> load_slots;   ///< distinct source references
  std::vector<spmd::Load> store_slots;  ///< distinct destinations
  std::vector<PlanInstr> instrs;
  int num_regs = 0;
  int max_stack = 0;
  int width = 1;  ///< unroll instances folded into this plan
  /// Memory-touching instructions (loads + stores) per plan application
  /// — the quantity scalar replacement and unroll-and-jam minimize.
  int mem_refs = 0;
  /// Floating-point operations (arithmetic + comparisons) per plan
  /// application.  Tier-invariant by construction — the microkernel tier
  /// evaluates exactly the plan's operation list — so the roofline
  /// profiler can charge `count * flops` regardless of dispatch tier.
  int flops = 0;
};

/// Compiles the body of a LoopNest op into a plan covering `width`
/// iterations of dimension `unroll_dim` (pass width=1 for the epilogue
/// or an unannotated nest).
[[nodiscard]] KernelPlan build_kernel_plan(const spmd::Op& nest, int width,
                                           int unroll_dim);

}  // namespace hpfsc::exec

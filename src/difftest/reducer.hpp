// Test-case reducer: shrinks a failing ProgramSpec while a caller
// predicate keeps reproducing the failure.  Works on the structured
// spec (not the rendered text) so every candidate is valid by
// construction — no wasted compiles on syntax errors.
#pragma once

#include <functional>

#include "difftest/generator.hpp"

namespace hpfsc::difftest {

/// Returns true when the candidate still exhibits the failure under
/// investigation.  The reducer only keeps shrinks the predicate
/// accepts.
using StillFails = std::function<bool(const ProgramSpec&)>;

struct ReduceResult {
  ProgramSpec spec;  ///< the minimal still-failing program
  int checks = 0;    ///< predicate invocations
  int shrinks = 0;   ///< accepted shrink steps
};

/// Fixpoint reduction: repeatedly tries, in order, removing update
/// statements, removing unreferenced fresh statements and inputs,
/// dropping whole array dimensions, removing terms, zeroing/shrinking
/// offsets, un-splitting shift chains, dropping IF guards and the DO
/// loop, and simplifying coefficients and shift personas — until a full
/// round makes no progress.  The input spec must satisfy `still_fails`.
[[nodiscard]] ReduceResult reduce(ProgramSpec spec,
                                  const StillFails& still_fails);

}  // namespace hpfsc::difftest

// Deterministic RNG for the differential-testing generator.  The C++
// standard distributions (uniform_int_distribution et al.) are
// implementation-defined — the same seed yields different programs
// under libstdc++ and libc++ — so the generator rolls its own
// splitmix64 stream: one seed must reproduce one program on every
// platform CI runs on.
#pragma once

#include <cstdint>
#include <vector>

namespace hpfsc::difftest {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// splitmix64 step: fast, full-period, and fully specified.
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int range(int lo, int hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<int>(next() % span);
  }

  /// True with probability percent/100.
  bool chance(int percent) { return range(0, 99) < percent; }

  /// Uniform element of a non-empty list.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[static_cast<std::size_t>(range(
        0, static_cast<int>(items.size()) - 1))];
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double unit() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace hpfsc::difftest

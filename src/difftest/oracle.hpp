// The differential oracle: O0 on a 1x1 machine with the interpreter
// tier is the reference semantics; every other point of the
// (optimization level x kernel tier x PE grid) matrix must agree
// bitwise (or within a configured ULP bound) on every live-out array,
// and must additionally satisfy the runtime invariants —
// CommLedger/raw-counter reconciliation, zero messages on one PE, the
// §3.3 communication invariant armed at O3+ for eligible programs, and
// PlanCache key stability across textual renamings.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "difftest/generator.hpp"
#include "executor/execution.hpp"

namespace hpfsc::difftest {

/// One candidate point of the oracle matrix.
struct OracleCell {
  int level = 0;
  int pe_rows = 1;
  int pe_cols = 1;
  KernelTier tier = KernelTier::Auto;
  simpi::CommBackendKind backend = simpi::CommBackendKind::Sync;

  [[nodiscard]] std::string str() const;
};

/// One confirmed disagreement with the reference (or a violated
/// invariant, in which case `detail` carries the story and the element
/// fields are zero).
struct Divergence {
  OracleCell cell;
  std::string array;
  std::size_t index = 0;
  double expect = 0.0;
  double got = 0.0;
  std::string detail;

  [[nodiscard]] std::string str() const;
};

/// Test-only fault hook: mutates a candidate cell's gathered array
/// before comparison.  Used to plant a "miscompile" and prove the
/// harness catches it and the reducer shrinks it.
using FaultHook = std::function<void(
    const ProgramSpec& spec, const OracleCell& cell,
    const std::string& array, std::vector<double>& values)>;

struct OracleConfig {
  int n = 12;      ///< size parameter binding
  int steps = 2;   ///< Execution::run iterations
  std::vector<int> levels = {1, 2, 3, 4};
  std::vector<std::pair<int, int>> grids = {{1, 1}, {1, 2}, {2, 2}, {4, 2}};
  /// All three kernel tiers (Auto, InterpreterOnly, Simd) per
  /// (level, grid) point; false runs Auto only (fast fuzzing mode).
  bool both_tiers = true;
  /// 0 = exact equality (the repo's cross-level guarantee); > 0 allows
  /// that many ULPs per element.
  int max_ulps = 0;
  /// Re-run every multi-PE cell under the async (deferred halo
  /// exchange) comm backend and require bitwise agreement with the
  /// reference plus per-(dim, dir, kind) CommLedger equality with the
  /// same cell's sync run — message *structure* is backend-invariant,
  /// only wait-time attribution moves.
  bool overlap_backend = true;
  /// Arm HPFSC_COMM_INVARIANT at this level and above (for
  /// invariant-eligible specs).
  int invariant_min_level = 3;
  /// Check that the alpha-renamed twin produces the same canonical
  /// cache key (and a different interface).
  bool check_cache_key = true;
  /// Cap on recorded divergences per oracle run (the first one already
  /// fails the program; more only help diagnostics).
  std::size_t max_divergences = 4;
  FaultHook fault;
};

struct OracleResult {
  std::vector<Divergence> divergences;
  int cells_run = 0;

  [[nodiscard]] bool ok() const { return divergences.empty(); }
};

/// Runs the full matrix for one generated program.  Throws
/// CompileError only if the *reference* compile fails (a generator
/// bug); everything downstream is reported as a Divergence.
[[nodiscard]] OracleResult run_oracle(const ProgramSpec& spec,
                                      const OracleConfig& config = {});

/// ULP distance between two doubles of the same sign regime;
/// std::numeric_limits<std::int64_t>::max() when incomparable (NaN vs
/// number, opposite infinities...).
[[nodiscard]] std::int64_t ulp_distance(double a, double b);

}  // namespace hpfsc::difftest

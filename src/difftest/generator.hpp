// Seeded generator of random-but-valid stencil programs over the
// frontend's surface syntax.  A program is held as a structured
// ProgramSpec — the unit the reducer shrinks — and rendered to HPF
// source text on demand.
//
// The generated shape mirrors the paper's kernel family: a set of input
// arrays, then a chain of array-syntax statements combining
// CSHIFT/EOSHIFT factors of earlier values with literal or bound-scalar
// coefficients, optionally wrapped in a time-step DO loop with an
// IF-guarded update (WHERE-free control).  Every value array has one
// shift "persona" (CSHIFT, or EOSHIFT with one boundary constant), so
// all shifts of one array are unionable — the property the §3.3
// communication invariant rests on.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace hpfsc::difftest {

/// One factor of a statement: coeff * shifted(value).  The shift is the
/// net per-dimension offset; `split_dim`, when set, renders that
/// dimension's offset as a two-link chain (CSHIFT(CSHIFT(x,s-1,d),1,d))
/// to exercise the offset-array pass's chain collapsing.
struct Term {
  int src = 0;  ///< value index: inputs first, then fresh statement results
  std::array<int, 3> offset{0, 0, 0};
  int split_dim = -1;   ///< dimension rendered as a chain, or -1
  double coeff = 1.0;
  int coeff_sym = -1;   ///< >= 0: use bound scalar C<i> instead of `coeff`
  bool negate = false;  ///< combined with '-' instead of '+'
};

/// One array assignment.  target < 0 defines a fresh value V<k>;
/// target >= 0 re-assigns an existing value (time-stepping update, may
/// self-reference — RHS is fully evaluated first, as array syntax
/// requires).  `guarded` wraps the statement in IF (K > 1), valid only
/// inside a DO loop.
struct SpecStmt {
  int target = -1;
  bool guarded = false;
  std::vector<Term> terms;
};

enum class ShiftPersona { CShift, EoShift };

struct ProgramSpec {
  std::uint64_t seed = 0;
  int rank = 2;
  int num_inputs = 1;
  int num_coeffs = 0;  ///< bound scalar coefficients C0..
  /// Runtime values for the bound coefficients (the oracle's bindings).
  std::vector<double> coeff_values;
  int do_loop = 0;     ///< > 0: wrap the body in DO K = 1, do_loop
  std::vector<SpecStmt> stmts;
  /// Per value array (inputs, then fresh statements in order).
  std::vector<ShiftPersona> persona;
  std::vector<double> boundary;  ///< EOSHIFT boundary per value

  [[nodiscard]] int num_values() const;
  /// Number of fresh (value-defining) statements.
  [[nodiscard]] int num_fresh() const;
  /// Value index defined by fresh statement s (s counted over fresh
  /// statements only).
  [[nodiscard]] int fresh_value(int s) const;
};

struct GeneratorConfig {
  int max_stmts = 6;
  int max_terms = 4;
  int max_inputs = 3;
  int max_offset = 4;  ///< beyond max_halo=3 sometimes, to hit full shifts
};

/// Deterministically generates the spec for `seed`.
[[nodiscard]] ProgramSpec generate(std::uint64_t seed,
                                   const GeneratorConfig& config = {});

/// Renders the spec as HPF source text.  `alt_names` renders the
/// alpha-renamed twin: same program modulo identifier spelling (program
/// name, array names, scalar names) — the two must share one PlanCache
/// entry.
[[nodiscard]] std::string render(const ProgramSpec& spec,
                                 bool alt_names = false);

/// Name of the size parameter / input i / fresh value i / coefficient i
/// under the given naming scheme (the oracle uses these for bindings
/// and result comparison).
[[nodiscard]] std::string size_param_name(bool alt_names);
[[nodiscard]] std::string input_name(int i, bool alt_names);
[[nodiscard]] std::string value_name(int i, bool alt_names);
[[nodiscard]] std::string coeff_name(int i, bool alt_names);

/// Names of the arrays the oracle compares (every fresh statement's
/// array), i.e. the live_out set.
[[nodiscard]] std::vector<std::string> live_out_names(
    const ProgramSpec& spec, bool alt_names = false);

/// True when the program is statically guaranteed to satisfy the §3.3
/// communication invariant at O3+: every net offset fits inside the
/// overlap area (|offset| <= max_halo, so no full-shift fallback), all
/// shifts of one array share one (kind, boundary) — by construction of
/// the persona model — and no (array, dim, direction) is shifted by two
/// different statements (unioning merges shifts within a statement;
/// across statements each keeps its own transfer even when context
/// partitioning fuses them).  The oracle arms HPFSC_COMM_INVARIANT only
/// for eligible specs.
[[nodiscard]] bool invariant_eligible(const ProgramSpec& spec,
                                      int max_halo = 3);

}  // namespace hpfsc::difftest

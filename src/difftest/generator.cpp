#include "difftest/generator.hpp"

#include <cmath>
#include <cstdio>

#include "difftest/rng.hpp"

namespace hpfsc::difftest {

namespace {

/// Exact binary fractions: products and sums stay bit-reproducible and
/// far from overflow/underflow for any realistic step count.
const std::vector<double> kCoeffPalette = {1.0, 0.5,  0.25, 0.125,
                                           0.75, 2.0, 1.5};
const std::vector<double> kBoundaryPalette = {0.0, 0.5, 1.0, 2.0};

std::string render_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  std::string out = buf;
  if (out.find('.') == std::string::npos &&
      out.find('e') == std::string::npos) {
    out += ".0";
  }
  return out;
}

}  // namespace

int ProgramSpec::num_values() const {
  return static_cast<int>(persona.size());
}

int ProgramSpec::num_fresh() const { return num_values() - num_inputs; }

int ProgramSpec::fresh_value(int s) const { return num_inputs + s; }

ProgramSpec generate(std::uint64_t seed, const GeneratorConfig& config) {
  Rng rng(seed);
  ProgramSpec spec;
  spec.seed = seed;

  const int rank_roll = rng.range(1, 4);
  spec.rank = rank_roll == 1 ? 1 : (rank_roll == 4 ? 3 : 2);
  spec.num_inputs = rng.range(1, config.max_inputs);
  spec.num_coeffs = rng.range(0, 2);
  for (int c = 0; c < spec.num_coeffs; ++c) {
    spec.coeff_values.push_back(rng.pick(kCoeffPalette));
  }
  spec.do_loop = rng.chance(35) ? rng.range(2, 3) : 0;

  auto add_persona = [&] {
    if (rng.chance(30)) {
      spec.persona.push_back(ShiftPersona::EoShift);
      spec.boundary.push_back(rng.pick(kBoundaryPalette));
    } else {
      spec.persona.push_back(ShiftPersona::CShift);
      spec.boundary.push_back(0.0);
    }
  };
  for (int i = 0; i < spec.num_inputs; ++i) add_persona();

  const int num_stmts = rng.range(1, config.max_stmts);
  for (int s = 0; s < num_stmts; ++s) {
    SpecStmt stmt;
    const int values = spec.num_values();
    // Updates (including jacobi-style write-back to an input and
    // self-referencing V = f(V)) only after at least one fresh value
    // exists; fresh statements keep the live_out set non-trivial.
    if (s > 0 && spec.num_fresh() > 0 && rng.chance(25)) {
      stmt.target = rng.range(0, values - 1);
      stmt.guarded = spec.do_loop > 0 && rng.chance(40);
    }
    const int num_terms = rng.range(1, config.max_terms);
    for (int t = 0; t < num_terms; ++t) {
      Term term;
      term.src = rng.range(0, values - 1);
      for (int d = 0; d < spec.rank; ++d) {
        if (rng.chance(55)) {
          int off = rng.range(1, config.max_offset);
          if (rng.chance(50)) off = -off;
          term.offset[static_cast<std::size_t>(d)] = off;
        }
      }
      for (int d = 0; d < spec.rank; ++d) {
        if (std::abs(term.offset[static_cast<std::size_t>(d)]) >= 2 &&
            rng.chance(40)) {
          term.split_dim = d;
          break;
        }
      }
      term.coeff = rng.pick(kCoeffPalette);
      if (spec.num_coeffs > 0 && rng.chance(25)) {
        term.coeff_sym = rng.range(0, spec.num_coeffs - 1);
      }
      term.negate = t > 0 && rng.chance(25);
      stmt.terms.push_back(term);
    }
    if (stmt.target < 0) add_persona();
    spec.stmts.push_back(std::move(stmt));
  }
  return spec;
}

std::string size_param_name(bool alt) { return alt ? "M" : "N"; }

std::string input_name(int i, bool alt) {
  return (alt ? "X" : "U") + std::to_string(i);
}

std::string value_name(int i, bool alt) {
  return (alt ? "Y" : "V") + std::to_string(i);
}

std::string coeff_name(int i, bool alt) {
  return (alt ? "D" : "C") + std::to_string(i);
}

std::vector<std::string> live_out_names(const ProgramSpec& spec, bool alt) {
  std::vector<std::string> out;
  for (int s = 0; s < spec.num_fresh(); ++s) {
    out.push_back(value_name(s, alt));
  }
  return out;
}

namespace {

std::string array_name(const ProgramSpec& spec, int value, bool alt) {
  if (value < spec.num_inputs) return input_name(value, alt);
  return value_name(value - spec.num_inputs, alt);
}

std::string render_shift_link(const ProgramSpec& spec, int src,
                              std::string inner, int off, int dim) {
  const auto v = static_cast<std::size_t>(src);
  if (spec.persona[v] == ShiftPersona::EoShift) {
    return "EOSHIFT(" + std::move(inner) + "," + std::to_string(off) + "," +
           render_double(spec.boundary[v]) + "," + std::to_string(dim + 1) +
           ")";
  }
  return "CSHIFT(" + std::move(inner) + "," + std::to_string(off) + "," +
         std::to_string(dim + 1) + ")";
}

std::string render_term(const ProgramSpec& spec, const Term& term,
                        bool alt) {
  std::string expr = array_name(spec, term.src, alt);
  for (int d = 0; d < spec.rank; ++d) {
    const int off = term.offset[static_cast<std::size_t>(d)];
    if (off == 0) continue;
    if (d == term.split_dim && std::abs(off) >= 2) {
      const int step = off > 0 ? 1 : -1;
      expr = render_shift_link(spec, term.src, std::move(expr), off - step,
                               d);
      expr = render_shift_link(spec, term.src, std::move(expr), step, d);
    } else {
      expr = render_shift_link(spec, term.src, std::move(expr), off, d);
    }
  }
  std::string coeff;
  if (term.coeff_sym >= 0) {
    coeff = coeff_name(term.coeff_sym, alt) + " * ";
  } else if (term.coeff != 1.0) {
    coeff = render_double(term.coeff) + " * ";
  }
  return coeff + expr;
}

}  // namespace

std::string render(const ProgramSpec& spec, bool alt) {
  const std::string n = size_param_name(alt);
  std::string shape = "(" + n;
  std::string dist = "(BLOCK";
  for (int d = 1; d < spec.rank; ++d) {
    shape += "," + n;
    dist += spec.rank == 3 && d == 2 ? ",*" : ",BLOCK";
  }
  shape += ")";
  dist += ")";

  std::string src = "PROGRAM ";
  src += alt ? "ZZUF" : "FUZZ";
  src += "\nINTEGER " + n + "\n";
  for (int c = 0; c < spec.num_coeffs; ++c) {
    src += "REAL " + coeff_name(c, alt) + "\n";
  }
  std::vector<std::string> arrays;
  for (int i = 0; i < spec.num_inputs; ++i) {
    arrays.push_back(input_name(i, alt));
  }
  for (int s = 0; s < spec.num_fresh(); ++s) {
    arrays.push_back(value_name(s, alt));
  }
  for (const std::string& a : arrays) src += "REAL " + a + shape + "\n";
  for (const std::string& a : arrays) {
    src += "!HPF$ DISTRIBUTE " + a + dist + "\n";
  }

  const std::string loop_var = alt ? "L" : "K";
  std::string indent;
  if (spec.do_loop > 0) {
    src += "DO " + loop_var + " = 1, " + std::to_string(spec.do_loop) + "\n";
    indent = "  ";
  }
  int fresh = 0;
  for (const SpecStmt& stmt : spec.stmts) {
    const int lhs_value =
        stmt.target >= 0 ? stmt.target : spec.num_inputs + fresh++;
    std::string body_indent = indent;
    if (stmt.guarded) {
      src += indent + "IF (" + loop_var + " > 1) THEN\n";
      body_indent += "  ";
    }
    std::string line =
        body_indent + array_name(spec, lhs_value, alt) + " = ";
    for (std::size_t t = 0; t < stmt.terms.size(); ++t) {
      if (t > 0) {
        line += "  &\n" + body_indent + "  ";
        line += stmt.terms[t].negate ? "- " : "+ ";
      }
      line += render_term(spec, stmt.terms[t], alt);
    }
    src += line + "\n";
    if (stmt.guarded) src += indent + "ENDIF\n";
  }
  if (spec.do_loop > 0) src += "ENDDO\n";
  src += "END\n";
  return src;
}

bool invariant_eligible(const ProgramSpec& spec, int max_halo) {
  // (value, dim, dir) -> index of the one statement allowed to shift it.
  // Comm unioning merges same-direction shifts *within* a statement, but
  // a statement context can span several statements, and each statement
  // keeps its own overlap transfer — so a second statement shifting the
  // same array the same way legitimately sends a second message.
  std::vector<std::array<std::array<int, 2>, 3>> owner(
      static_cast<std::size_t>(spec.num_values()),
      {{{-1, -1}, {-1, -1}, {-1, -1}}});
  for (std::size_t s = 0; s < spec.stmts.size(); ++s) {
    for (const Term& term : spec.stmts[s].terms) {
      for (int d = 0; d < spec.rank; ++d) {
        const int off = term.offset[static_cast<std::size_t>(d)];
        if (off == 0) continue;
        if (std::abs(off) > max_halo) return false;
        int& slot = owner[static_cast<std::size_t>(term.src)]
                         [static_cast<std::size_t>(d)][off > 0 ? 1 : 0];
        if (slot >= 0 && slot != static_cast<int>(s)) return false;
        slot = static_cast<int>(s);
      }
    }
  }
  return true;
}

}  // namespace hpfsc::difftest

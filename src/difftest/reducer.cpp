#include "difftest/reducer.hpp"

#include <cmath>
#include <cstddef>
#include <optional>

namespace hpfsc::difftest {

namespace {

bool value_used_elsewhere(const ProgramSpec& spec, int value,
                          std::size_t skip_stmt) {
  for (std::size_t i = 0; i < spec.stmts.size(); ++i) {
    if (i == skip_stmt) continue;
    if (spec.stmts[i].target == value) return true;
    for (const Term& t : spec.stmts[i].terms) {
      if (t.src == value) return true;
    }
  }
  return false;
}

void drop_value_slot(ProgramSpec& spec, int value) {
  spec.persona.erase(spec.persona.begin() + value);
  spec.boundary.erase(spec.boundary.begin() + value);
  for (SpecStmt& stmt : spec.stmts) {
    if (stmt.target > value) --stmt.target;
    for (Term& t : stmt.terms) {
      if (t.src > value) --t.src;
    }
  }
}

/// Removing an update statement is free; removing a fresh statement is
/// legal only when its value has no other reader or writer and it is
/// not the last live-out array.
std::optional<ProgramSpec> without_stmt(const ProgramSpec& spec,
                                        std::size_t s) {
  if (spec.stmts[s].target >= 0) {
    ProgramSpec out = spec;
    out.stmts.erase(out.stmts.begin() +
                    static_cast<std::ptrdiff_t>(s));
    return out;
  }
  if (spec.num_fresh() <= 1) return std::nullopt;
  int fresh = 0;
  for (std::size_t i = 0; i < s; ++i) {
    if (spec.stmts[i].target < 0) ++fresh;
  }
  const int value = spec.num_inputs + fresh;
  if (value_used_elsewhere(spec, value, s)) return std::nullopt;
  ProgramSpec out = spec;
  out.stmts.erase(out.stmts.begin() + static_cast<std::ptrdiff_t>(s));
  drop_value_slot(out, value);
  return out;
}

std::optional<ProgramSpec> without_input(const ProgramSpec& spec,
                                         int value) {
  if (spec.num_inputs <= 1) return std::nullopt;
  if (value_used_elsewhere(spec, value, spec.stmts.size())) {
    return std::nullopt;
  }
  ProgramSpec out = spec;
  --out.num_inputs;
  drop_value_slot(out, value);
  return out;
}

std::optional<ProgramSpec> without_dim(const ProgramSpec& spec, int d) {
  if (spec.rank <= 1) return std::nullopt;
  ProgramSpec out = spec;
  --out.rank;
  for (SpecStmt& stmt : out.stmts) {
    for (Term& t : stmt.terms) {
      for (int x = d; x < out.rank; ++x) {
        t.offset[static_cast<std::size_t>(x)] =
            t.offset[static_cast<std::size_t>(x + 1)];
      }
      t.offset[static_cast<std::size_t>(out.rank)] = 0;
      if (t.split_dim == d) {
        t.split_dim = -1;
      } else if (t.split_dim > d) {
        --t.split_dim;
      }
    }
  }
  return out;
}

}  // namespace

ReduceResult reduce(ProgramSpec spec, const StillFails& still_fails) {
  ReduceResult result;

  auto attempt = [&](const ProgramSpec& cand) {
    ++result.checks;
    if (!still_fails(cand)) return false;
    spec = cand;
    ++result.shrinks;
    return true;
  };
  auto attempt_opt = [&](const std::optional<ProgramSpec>& cand) {
    return cand.has_value() && attempt(*cand);
  };

  bool progress = true;
  while (progress) {
    progress = false;

    // Statement removal, back to front: consumers disappear before the
    // values they read, so producer removal unblocks next scan.
    for (std::size_t s = spec.stmts.size(); s-- > 0;) {
      if (s >= spec.stmts.size()) continue;
      if (attempt_opt(without_stmt(spec, s))) progress = true;
    }
    for (int v = spec.num_inputs; v-- > 0;) {
      if (v >= spec.num_inputs) continue;
      if (attempt_opt(without_input(spec, v))) progress = true;
    }
    for (int d = spec.rank; d-- > 0;) {
      if (d >= spec.rank) continue;
      if (attempt_opt(without_dim(spec, d))) progress = true;
    }

    // Term removal (keep one term per statement).
    for (std::size_t s = 0; s < spec.stmts.size(); ++s) {
      for (std::size_t t = spec.stmts[s].terms.size(); t-- > 0;) {
        if (t >= spec.stmts[s].terms.size() ||
            spec.stmts[s].terms.size() <= 1) {
          continue;
        }
        ProgramSpec cand = spec;
        cand.stmts[s].terms.erase(cand.stmts[s].terms.begin() +
                                  static_cast<std::ptrdiff_t>(t));
        cand.stmts[s].terms.front().negate = false;
        if (attempt(cand)) progress = true;
      }
    }

    // Offset zeroing, then magnitude shrinking toward zero.
    for (std::size_t s = 0; s < spec.stmts.size(); ++s) {
      for (std::size_t t = 0; t < spec.stmts[s].terms.size(); ++t) {
        for (int d = 0; d < spec.rank; ++d) {
          const int off =
              spec.stmts[s].terms[t].offset[static_cast<std::size_t>(d)];
          if (off == 0) continue;
          {
            ProgramSpec cand = spec;
            Term& ct = cand.stmts[s].terms[t];
            ct.offset[static_cast<std::size_t>(d)] = 0;
            if (ct.split_dim == d) ct.split_dim = -1;
            if (attempt(cand)) {
              progress = true;
              continue;
            }
          }
          if (std::abs(off) > 1) {
            ProgramSpec cand = spec;
            Term& ct = cand.stmts[s].terms[t];
            ct.offset[static_cast<std::size_t>(d)] =
                off > 0 ? off - 1 : off + 1;
            if (std::abs(ct.offset[static_cast<std::size_t>(d)]) < 2 &&
                ct.split_dim == d) {
              ct.split_dim = -1;
            }
            if (attempt(cand)) progress = true;
          }
        }
      }
    }

    // Structural simplifications: un-split chains, drop guards and the
    // DO loop, literal coefficients, CSHIFT personas, unused scalars.
    for (std::size_t s = 0; s < spec.stmts.size(); ++s) {
      for (std::size_t t = 0; t < spec.stmts[s].terms.size(); ++t) {
        if (spec.stmts[s].terms[t].split_dim >= 0) {
          ProgramSpec cand = spec;
          cand.stmts[s].terms[t].split_dim = -1;
          if (attempt(cand)) progress = true;
        }
        if (spec.stmts[s].terms[t].coeff_sym >= 0) {
          ProgramSpec cand = spec;
          cand.stmts[s].terms[t].coeff_sym = -1;
          if (attempt(cand)) progress = true;
        } else if (spec.stmts[s].terms[t].coeff != 1.0) {
          ProgramSpec cand = spec;
          cand.stmts[s].terms[t].coeff = 1.0;
          if (attempt(cand)) progress = true;
        }
      }
      if (spec.stmts[s].guarded) {
        ProgramSpec cand = spec;
        cand.stmts[s].guarded = false;
        if (attempt(cand)) progress = true;
      }
    }
    if (spec.do_loop > 0) {
      ProgramSpec cand = spec;
      cand.do_loop = 0;
      for (SpecStmt& stmt : cand.stmts) stmt.guarded = false;
      if (attempt(cand)) {
        progress = true;
      } else if (spec.do_loop > 2) {
        cand = spec;
        cand.do_loop = 2;
        if (attempt(cand)) progress = true;
      }
    }
    for (std::size_t v = 0; v < spec.persona.size(); ++v) {
      if (spec.persona[v] != ShiftPersona::EoShift) continue;
      ProgramSpec cand = spec;
      cand.persona[v] = ShiftPersona::CShift;
      cand.boundary[v] = 0.0;
      if (attempt(cand)) progress = true;
    }
    for (int c = spec.num_coeffs; c-- > 0;) {
      if (c >= spec.num_coeffs) continue;
      bool used = false;
      for (const SpecStmt& stmt : spec.stmts) {
        for (const Term& t : stmt.terms) {
          if (t.coeff_sym == c) used = true;
        }
      }
      if (used) continue;
      ProgramSpec cand = spec;
      --cand.num_coeffs;
      cand.coeff_values.erase(cand.coeff_values.begin() + c);
      for (SpecStmt& stmt : cand.stmts) {
        for (Term& t : stmt.terms) {
          if (t.coeff_sym > c) --t.coeff_sym;
        }
      }
      if (attempt(cand)) progress = true;
    }
  }

  result.spec = spec;
  return result;
}

}  // namespace hpfsc::difftest

#include "difftest/oracle.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "difftest/rng.hpp"
#include "driver/compiler.hpp"
#include "obs/flight_recorder.hpp"
#include "service/cache_key.hpp"
#include "simpi/comm_ledger.hpp"

namespace hpfsc::difftest {

std::string OracleCell::str() const {
  return "O" + std::to_string(level) + " grid " + std::to_string(pe_rows) +
         "x" + std::to_string(pe_cols) +
         (tier == KernelTier::Auto   ? " tier=auto"
          : tier == KernelTier::Simd ? " tier=simd"
                                     : " tier=interp") +
         (backend == simpi::CommBackendKind::Async ? " comm=async" : "");
}

std::string Divergence::str() const {
  std::string out = cell.str();
  if (!detail.empty()) {
    out += ": " + detail;
    return out;
  }
  char buf[128];
  std::snprintf(buf, sizeof buf, "[%zu] expect %.17g got %.17g", index,
                expect, got);
  out += ": " + array + buf;
  return out;
}

std::int64_t ulp_distance(double a, double b) {
  if (a == b) return 0;
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<std::int64_t>::max();
  }
  auto ordered = [](double v) {
    std::int64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    // Map the sign-magnitude float ordering onto the integer line so
    // adjacent doubles differ by 1 across the whole range (incl. zero).
    return bits < 0 ? std::numeric_limits<std::int64_t>::min() + 1 - bits
                    : bits;
  };
  const std::int64_t ia = ordered(a);
  const std::int64_t ib = ordered(b);
  const std::int64_t d = ia > ib ? ia - ib : ib - ia;
  return d;
}

namespace {

/// Deterministic input data: a pure function of (seed, input, global
/// index), so every PE grid sees the same global array.
double input_value(std::uint64_t seed, int input, int i, int j, int k) {
  Rng rng(seed ^
          (static_cast<std::uint64_t>(input + 1) * 0x9e3779b97f4a7c15ull) ^
          (static_cast<std::uint64_t>(i) << 42) ^
          (static_cast<std::uint64_t>(j) << 21) ^
          static_cast<std::uint64_t>(k));
  return rng.unit();
}

Bindings make_bindings(const ProgramSpec& spec, const OracleConfig& cfg) {
  Bindings b;
  b.set(size_param_name(false), cfg.n);
  for (int c = 0; c < spec.num_coeffs; ++c) {
    b.set(coeff_name(c, false), spec.coeff_values[static_cast<std::size_t>(c)]);
  }
  return b;
}

struct CellRun {
  std::vector<std::vector<double>> arrays;  ///< one per live_out name
  Execution::RunStats stats;
};

/// Every program array is live: Execution::run re-executes the body
/// `steps` times, so any array's final value feeds the next iteration —
/// dropping a "dead" last write would be observable.  The compare set
/// is the same list, which also covers updates to input arrays.
std::vector<std::string> oracle_live(const ProgramSpec& spec, bool alt) {
  std::vector<std::string> names;
  for (int i = 0; i < spec.num_inputs; ++i) {
    names.push_back(input_name(i, alt));
  }
  for (const std::string& name : live_out_names(spec, alt)) {
    names.push_back(name);
  }
  return names;
}

CellRun execute_cell(const ProgramSpec& spec, const spmd::Program& program,
                     const OracleConfig& cfg, const OracleCell& cell,
                     bool armed) {
  simpi::MachineConfig mc;
  mc.pe_rows = cell.pe_rows;
  mc.pe_cols = cell.pe_cols;
  Execution exec(program, mc);
  if (armed) exec.machine().set_comm_invariant(true);
  exec.machine().set_comm_backend(cell.backend);
  exec.set_kernel_tier(cell.tier);
  if (cell.tier == KernelTier::Simd) {
    // Tiny odd blocks: at difftest sizes the default L2 heuristic covers
    // the whole subgrid with one block, which would leave the blocked
    // traversal (partial edges, width-aligned main/epilogue split)
    // untested.  5x3 forces several partial blocks per nest at n=12.
    exec.set_block_size(5, 3);
  }
  exec.prepare(make_bindings(spec, cfg));
  for (int i = 0; i < spec.num_inputs; ++i) {
    const std::string name = input_name(i, false);
    // Inputs are in live_out, so the optimizer must keep them; if one
    // is missing anyway, let the gather below report it as an error.
    const int id = program.find_array(name);
    if (id < 0 ||
        program.arrays[static_cast<std::size_t>(id)].eliminated) {
      continue;
    }
    exec.set_array(name, [&](int x, int y, int z) {
      return input_value(spec.seed, i, x, y, z);
    });
  }
  CellRun run;
  run.stats = exec.run(cfg.steps);
  for (const std::string& name : oracle_live(spec, false)) {
    run.arrays.push_back(exec.get_array(name));
  }
  return run;
}

}  // namespace

OracleResult run_oracle(const ProgramSpec& spec, const OracleConfig& cfg) {
  OracleResult result;
  const std::string source = render(spec);

  auto opts_for = [&](int level) {
    CompilerOptions o = CompilerOptions::level(level);
    o.passes.offset.live_out = oracle_live(spec, false);
    return o;
  };
  std::vector<CompilerOptions> variants;
  variants.push_back(opts_for(0));
  for (int level : cfg.levels) variants.push_back(opts_for(level));

  Compiler compiler;
  const std::vector<CompiledProgram> compiled =
      compiler.compile_batch(source, variants);

  auto add = [&](Divergence d) {
    // An oracle mismatch is an incident: snapshot-worthy evidence (the
    // cells and spans that led here) is still in the flight recorder.
    hpfsc::obs::FlightRecorder::instance().note_incident(
        "difftest-divergence", d.str());
    if (result.divergences.size() < cfg.max_divergences) {
      result.divergences.push_back(std::move(d));
    }
  };

  auto check_stats = [&](const OracleCell& cell,
                         const Execution::RunStats& stats) {
    const simpi::CommCell ledger = stats.machine.comm.total();
    // Every send in this executor flows through the shift runtime, so
    // the per-direction ledger must reconcile exactly with the raw
    // machine counter.
    if (ledger.messages != stats.machine.messages_sent) {
      add({cell, "", 0, 0.0, 0.0,
           "CommLedger reconciliation: ledger " +
               std::to_string(ledger.messages) + " messages != raw " +
               std::to_string(stats.machine.messages_sent)});
    }
    if (cell.pe_rows * cell.pe_cols == 1 &&
        stats.machine.messages_sent != 0) {
      add({cell, "", 0, 0.0, 0.0,
           "single-PE machine sent " +
               std::to_string(stats.machine.messages_sent) + " messages"});
    }
  };

  const OracleCell ref_cell{0, 1, 1, KernelTier::InterpreterOnly};
  CellRun ref = execute_cell(spec, compiled[0].program, cfg, ref_cell, false);
  ++result.cells_run;
  check_stats(ref_cell, ref.stats);

  const std::vector<std::string> live = oracle_live(spec, false);
  const bool eligible = invariant_eligible(spec);

  // Rank-1 arrays distribute over one grid dimension, so fold each
  // requested grid onto a column of the same PE count.
  std::vector<std::pair<int, int>> grids;
  for (const auto& grid : cfg.grids) {
    std::pair<int, int> g = grid;
    if (spec.rank == 1) g = {grid.first * grid.second, 1};
    bool dup = false;
    for (const auto& seen : grids) dup = dup || seen == g;
    if (!dup) grids.push_back(g);
  }

  // Compare one executed cell's live arrays against the reference
  // (consumes run.arrays).
  auto compare_arrays = [&](const OracleCell& cell, CellRun& run) {
    for (std::size_t a = 0; a < live.size(); ++a) {
      std::vector<double> got = std::move(run.arrays[a]);
      if (cfg.fault) cfg.fault(spec, cell, live[a], got);
      if (got.size() != ref.arrays[a].size()) {
        add({cell, live[a], 0, 0.0, 0.0,
             live[a] + " size mismatch: " + std::to_string(got.size()) +
                 " vs " + std::to_string(ref.arrays[a].size())});
        continue;
      }
      for (std::size_t e = 0; e < got.size(); ++e) {
        const double x = ref.arrays[a][e];
        const double y = got[e];
        bool equal = x == y || (std::isnan(x) && std::isnan(y));
        if (!equal && cfg.max_ulps > 0) {
          equal = ulp_distance(x, y) <= cfg.max_ulps;
        }
        if (!equal) {
          add({cell, live[a], e, x, y, ""});
          break;
        }
      }
    }
  };

  // The async backend must move exactly the messages the sync backend
  // moves — deferral shifts *when* receives complete, never what is
  // sent.  Compare the full (dim, dir, kind) ledger, cell by cell.
  auto compare_ledgers = [&](const OracleCell& cell,
                             const simpi::CommLedger& sync_comm,
                             const simpi::CommLedger& async_comm) {
    for (int dim = 0; dim < simpi::kCommDims; ++dim) {
      for (int dir = 0; dir < simpi::kCommDirs; ++dir) {
        for (int k = 0; k < simpi::kCommKinds; ++k) {
          const auto kind = static_cast<simpi::CommKind>(k);
          const simpi::CommCell& s = sync_comm.cell(dim, dir, kind);
          const simpi::CommCell& a = async_comm.cell(dim, dir, kind);
          if (s.messages != a.messages || s.bytes != a.bytes) {
            add({cell, "", 0, 0.0, 0.0,
                 std::string("ledger structure diverged at dim ") +
                     std::to_string(dim + 1) + (dir == 0 ? "-" : "+") + " " +
                     simpi::to_string(kind) + ": sync " +
                     std::to_string(s.messages) + " msgs/" +
                     std::to_string(s.bytes) + " B, async " +
                     std::to_string(a.messages) + " msgs/" +
                     std::to_string(a.bytes) + " B"});
          }
        }
      }
    }
  };

  for (std::size_t li = 0; li < cfg.levels.size(); ++li) {
    const int level = cfg.levels[li];
    const spmd::Program& program = compiled[li + 1].program;
    for (const auto& grid : grids) {
      for (int t = 0; t < (cfg.both_tiers ? 3 : 1); ++t) {
        const OracleCell cell{level, grid.first, grid.second,
                              t == 0   ? KernelTier::Auto
                              : t == 1 ? KernelTier::InterpreterOnly
                                       : KernelTier::Simd};
        const bool armed = eligible && level >= cfg.invariant_min_level;
        try {
          CellRun run = execute_cell(spec, program, cfg, cell, armed);
          ++result.cells_run;
          check_stats(cell, run.stats);
          // Snapshot the ledger before compare_arrays consumes the run.
          const simpi::CommLedger sync_comm = run.stats.machine.comm;
          compare_arrays(cell, run);
          // Overlap axis: single-PE grids have no messages to defer.
          if (cfg.overlap_backend && grid.first * grid.second > 1) {
            OracleCell acell = cell;
            acell.backend = simpi::CommBackendKind::Async;
            try {
              CellRun arun = execute_cell(spec, program, cfg, acell, armed);
              ++result.cells_run;
              check_stats(acell, arun.stats);
              compare_ledgers(acell, sync_comm, arun.stats.machine.comm);
              compare_arrays(acell, arun);
            } catch (const simpi::CommInvariantViolation& e) {
              add({acell, "", 0, 0.0, 0.0,
                   std::string("comm invariant violated: ") + e.what()});
            } catch (const std::exception& e) {
              add({acell, "", 0, 0.0, 0.0,
                   std::string("execution error: ") + e.what()});
            }
          }
        } catch (const simpi::CommInvariantViolation& e) {
          add({cell, "", 0, 0.0, 0.0,
               std::string("comm invariant violated: ") + e.what()});
        } catch (const std::exception& e) {
          add({cell, "", 0, 0.0, 0.0,
               std::string("execution error: ") + e.what()});
        }
      }
    }
  }

  if (cfg.check_cache_key && !cfg.levels.empty()) {
    const int level = cfg.levels.back();
    const OracleCell key_cell{level, 1, 1, KernelTier::Auto};
    simpi::MachineConfig mc;
    try {
      CompilerOptions alt_opts = CompilerOptions::level(level);
      alt_opts.passes.offset.live_out = oracle_live(spec, true);
      const service::CacheKey plain =
          service::make_cache_key(source, opts_for(level), mc);
      const service::CacheKey twin =
          service::make_cache_key(render(spec, true), alt_opts, mc);
      if (plain.canonical != twin.canonical) {
        add({key_cell, "", 0, 0.0, 0.0,
             "cache key unstable across alpha renaming (hash " +
                 std::to_string(plain.hash) + " vs " +
                 std::to_string(twin.hash) + ")"});
      } else if (plain.iface == twin.iface) {
        add({key_cell, "", 0, 0.0, 0.0,
             "alpha twin reported an identical interface"});
      }
    } catch (const std::exception& e) {
      add({key_cell, "", 0, 0.0, 0.0,
           std::string("cache key computation failed: ") + e.what()});
    }
  }

  return result;
}

}  // namespace hpfsc::difftest

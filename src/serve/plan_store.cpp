#include "serve/plan_store.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "service/cache_key.hpp"

namespace hpfsc::serve {

namespace fs = std::filesystem;

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>(v >> (8 * i)));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

std::string header_for(std::string_view payload) {
  std::string head(PlanStore::kMagic, sizeof PlanStore::kMagic);
  put_u32(head, PlanStore::kFormatVersion);
  put_u64(head, service::fnv1a(payload));
  put_u64(head, payload.size());
  return head;
}

}  // namespace

PlanStore::PlanStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (!fs::is_directory(dir_)) {
    throw std::runtime_error("PlanStore: cannot create cache directory '" +
                             dir_ + "'");
  }
}

std::string PlanStore::record_path(const service::CacheKey& key) const {
  char name[64];
  std::snprintf(name, sizeof name, "plan-%016llx.hpfplan",
                static_cast<unsigned long long>(key.hash));
  return (fs::path(dir_) / name).string();
}

bool PlanStore::save(const service::CachedPlan& plan) {
  const std::string payload = serialize_plan(plan);
  const std::string head = header_for(payload);
  const std::string path = record_path(plan.key);

  // Refresh check: re-saving an identical record (evict after an
  // insert-time save, a restart re-compiling an unchanged stencil) is
  // the common case — compare the on-disk header before rewriting.
  {
    std::ifstream in(path, std::ios::binary);
    char existing[kHeaderBytes];
    if (in && in.read(existing, kHeaderBytes) &&
        std::memcmp(existing, head.data(), kHeaderBytes) == 0) {
      ++counters_.save_skipped;
      return true;
    }
  }

  // Temp-then-rename in the same directory: the final name only ever
  // refers to a complete record.  The temp name embeds the key hash so
  // concurrent saves of distinct plans cannot collide.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(head.data(), static_cast<std::streamsize>(head.size()));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!out) {
      ++counters_.save_failed;
      std::error_code ec;
      fs::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    ++counters_.save_failed;
    fs::remove(tmp, ec);
    return false;
  }
  ++counters_.saved;
  return true;
}

std::size_t PlanStore::load(
    const std::function<void(service::PlanHandle)>& sink) {
  std::size_t delivered = 0;
  std::error_code ec;
  // Sorted traversal: directory iteration order is filesystem-defined;
  // sorting makes warm-start (and its LRU order) reproducible.
  std::vector<fs::path> records;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".hpfplan") continue;
    records.push_back(entry.path());
  }
  std::sort(records.begin(), records.end());

  for (const fs::path& path : records) {
    std::ifstream in(path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string bytes = buf.str();

    if (bytes.size() < kHeaderBytes ||
        std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
      ++counters_.skipped_corrupt;
      continue;
    }
    const std::uint32_t version = get_u32(bytes.data() + 8);
    if (version != kFormatVersion) {
      // A future (or ancient) writer's record: not corruption, but not
      // ours to parse either.  Leave the file for that writer.
      ++counters_.skipped_version;
      continue;
    }
    const std::uint64_t checksum = get_u64(bytes.data() + 12);
    const std::uint64_t size = get_u64(bytes.data() + 20);
    const std::string_view payload(bytes.data() + kHeaderBytes,
                                   bytes.size() - kHeaderBytes);
    if (payload.size() != size || service::fnv1a(payload) != checksum) {
      ++counters_.skipped_corrupt;  // truncated or bit-flipped
      continue;
    }
    try {
      auto plan = std::make_shared<service::CachedPlan>(
          deserialize_plan(payload));
      ++counters_.loaded;
      ++delivered;
      sink(std::move(plan));
    } catch (const PlanFormatError&) {
      ++counters_.skipped_corrupt;
    }
  }
  return delivered;
}

std::size_t PlanStore::warm_start(service::PlanCache& cache) {
  return load([&cache](service::PlanHandle plan) {
    const service::CacheKey key = plan->key;
    cache.insert(key, std::move(plan));
  });
}

}  // namespace hpfsc::serve

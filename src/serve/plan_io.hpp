// Binary (de)serialization of compiled plans for the persistent plan
// cache (DESIGN.md §12).  A persisted entry carries everything a
// warm-started PlanCache needs to serve the stencil with *zero*
// recompilation: the canonical cache key (which already embeds the
// options and machine fingerprints), the requester interface, the
// lowered SPMD node program, and the PROCESSORS override — i.e. the
// whole CachedPlan except compile-time observability (phase listings
// and pass statistics), which describe a compilation that the restored
// process never ran.
//
// Format discipline:
//   * fixed-width little-endian scalars, length-prefixed strings and
//     vectors — no varints, no padding, no host-struct memcpy of
//     anything containing std::string;
//   * the encoding is a pure function of the plan: serialize() after
//     deserialize() reproduces the input payload bitwise (asserted in
//     tests/serve/), which is what makes checksums meaningful;
//   * any structural change to spmd::Program must bump
//     PlanStore::kFormatVersion — readers reject newer versions instead
//     of guessing.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "codegen/spmd_program.hpp"
#include "service/plan_cache.hpp"

namespace hpfsc::serve {

/// A persisted entry failed to parse: underrun, bad tag, impossible
/// count.  PlanStore treats this as corruption (skip + counter), never
/// as a fatal error.
class PlanFormatError : public std::runtime_error {
 public:
  explicit PlanFormatError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Serializes the executable program alone (no key/interface); the
/// round-trip unit the format tests pin.
[[nodiscard]] std::string serialize_program(const spmd::Program& program);
/// Inverse of serialize_program.  Throws PlanFormatError on malformed
/// input.  `consumed`, when non-null, receives the number of bytes read
/// (for embedding in larger payloads).
[[nodiscard]] spmd::Program deserialize_program(std::string_view bytes,
                                                std::size_t* consumed =
                                                    nullptr);

/// Serializes a full cache entry (key + interface + diagnostics +
/// program) as the payload of one PlanStore record.
[[nodiscard]] std::string serialize_plan(const service::CachedPlan& plan);
/// Inverse of serialize_plan.  Throws PlanFormatError on malformed
/// input.  The restored plan's `pipeline` is default-constructed (see
/// header comment).
[[nodiscard]] service::CachedPlan deserialize_plan(std::string_view bytes);

}  // namespace hpfsc::serve

#include "serve/daemon.hpp"

#include <utility>

#include "obs/obs.hpp"

namespace hpfsc::serve {

namespace {

/// Admission lifecycle events (enqueue / dequeue / shed) as flight
/// Marks carrying the request id minted at submit, so a postmortem can
/// replay a request's path through the queue.
void flight_admission(const char* name, std::uint64_t request_id) {
  auto& fr = obs::FlightRecorder::instance();
  if (!fr.enabled()) return;
  obs::FlightEvent ev;
  ev.kind = obs::FlightEvent::Kind::Mark;
  ev.ts_ns = fr.now_ns();
  ev.request_id = request_id;
  ev.set_name(name);
  fr.emit(ev);
}

}  // namespace

AdmissionRejected::AdmissionRejected(std::string client, std::size_t depth)
    : std::runtime_error("admission rejected: queue full (depth " +
                         std::to_string(depth) + ") for client '" + client +
                         "'"),
      client_(std::move(client)),
      depth_(depth) {}

ServeDaemon::ServeDaemon(DaemonConfig config)
    : config_(std::move(config)), service_(config_.service) {
  if (config_.queue_depth == 0) config_.queue_depth = 1;
  if (config_.workers < 1) config_.workers = 1;
  if (!config_.cache_dir.empty()) {
    store_ = std::make_unique<PlanStore>(config_.cache_dir);
    warm_started_ = store_->warm_start(service_.cache());
  }
  service_.metrics().set_gauge("serve.queue_depth", 0.0);
  threads_.reserve(static_cast<std::size_t>(config_.workers));
  for (int w = 0; w < config_.workers; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

ServeDaemon::~ServeDaemon() { shutdown(); }

std::uint64_t ServeDaemon::shed_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_;
}

void ServeDaemon::save_plan(const service::PlanHandle& plan) {
  if (!store_) return;
  std::lock_guard<std::mutex> lock(store_mutex_);
  store_->save(*plan);
}

std::future<ServeResponse> ServeDaemon::submit(ServeRequest request) {
  Item item;
  item.request = std::move(request.request);
  item.enqueued = std::chrono::steady_clock::now();
  item.request_id = obs::next_request_id();
  std::future<ServeResponse> future = item.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::logic_error("ServeDaemon::submit after shutdown");
    }
    if (queued_ >= config_.queue_depth) {
      ++shed_;
      // Count, then throw: serve.shed_total must match the number of
      // AdmissionRejected exceptions exactly.
      service_.metrics().add("serve.shed_total");
      flight_admission("serve.shed", item.request_id);
      throw AdmissionRejected(std::move(request.client),
                              config_.queue_depth);
    }
    const std::uint64_t rid = item.request_id;
    std::deque<Item>& q = queues_[request.client];
    if (q.empty()) rotation_.push_back(request.client);
    q.push_back(std::move(item));
    ++queued_;
    service_.metrics().set_gauge("serve.queue_depth",
                                 static_cast<double>(queued_));
    // Emitted before the notify (still under the lock), so the
    // submitter's ring registers the enqueue before any worker can
    // record the matching dequeue.
    flight_admission("serve.enqueue", rid);
  }
  cv_.notify_one();
  return future;
}

bool ServeDaemon::pop(Item& item, std::uint64_t& sequence) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return stopping_ || queued_ > 0; });
  if (queued_ == 0) return false;  // stopping and drained
  const std::string client = rotation_.front();
  rotation_.pop_front();
  std::deque<Item>& q = queues_[client];
  item = std::move(q.front());
  q.pop_front();
  if (!q.empty()) {
    rotation_.push_back(client);  // round-robin: back of the rotation
  } else {
    queues_.erase(client);
  }
  --queued_;
  sequence = ++picked_;
  service_.metrics().set_gauge("serve.queue_depth",
                               static_cast<double>(queued_));
  flight_admission("serve.dequeue", item.request_id);
  return true;
}

ServeDaemon::QueueSnapshot ServeDaemon::queue_snapshot() const {
  QueueSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  snap.queued = queued_;
  snap.picked = picked_;
  snap.shed = shed_;
  snap.depth = config_.queue_depth;
  snap.stopping = stopping_;
  snap.clients.reserve(rotation_.size());
  for (const std::string& client : rotation_) {
    auto it = queues_.find(client);
    snap.clients.push_back(
        {client, it == queues_.end() ? 0 : it->second.size()});
  }
  return snap;
}

TieredSession::Counts ServeDaemon::tiered_counts() const {
  TieredSession::Counts total;
  std::lock_guard<std::mutex> lock(tiered_mutex_);
  for (const TieredSession* session : tiered_sessions_) {
    total += session->counts();
  }
  return total;
}

void ServeDaemon::serve_one(int index, Item& item, std::uint64_t sequence,
                            service::Session& session,
                            TieredSession* tiered) {
  // Adopt the id minted at admission: the enqueue/dequeue marks and the
  // serving spans then share one request trace.
  const std::uint64_t rid =
      item.request_id != 0 ? item.request_id : obs::next_request_id();
  obs::RequestScope rscope(rid);
  const auto picked_up = std::chrono::steady_clock::now();
  const double queue_seconds =
      std::chrono::duration<double>(picked_up - item.enqueued).count();
  service_.metrics().observe("serve.queue_wait_ms", queue_seconds * 1e3);
  obs::Span span(service_.trace(), "serve.request", "serve");
  span.arg("worker", index);
  span.arg("sequence", sequence);
  span.arg("queue_ms", queue_seconds * 1e3);
  try {
    const auto start = std::chrono::steady_clock::now();
    ServeResponse response;
    response.worker = index;
    response.request_id = rid;
    response.sequence = sequence;
    response.queue_seconds = queue_seconds;
    if (tiered != nullptr) {
      TieredSession::RunResult result = tiered->run(item.request);
      response.stats = result.stats;
      response.outcome = result.outcome;
      response.tier = result.tier;
      response.state = result.state;
      response.swapped = result.swapped;
      // The tiered path interleaves compile and run (the optimized
      // compile overlaps earlier runs), so the whole service time
      // reports as run_seconds.
      response.run_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
    } else {
      service::PlanHandle plan = service_.compile(
          item.request.source, item.request.options, &response.outcome);
      if (response.outcome == service::CacheOutcome::Miss) {
        save_plan(plan);
      }
      const auto compiled = std::chrono::steady_clock::now();
      response.compile_seconds =
          std::chrono::duration<double>(compiled - start).count();
      service::RunRequest run;
      run.plan = std::move(plan);
      run.bindings = item.request.bindings;
      run.steps = item.request.steps;
      run.init = item.request.init;
      response.stats = session.run(run);
      response.run_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        compiled)
              .count();
    }
    response.latency_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    span.arg_str("cache", to_string(response.outcome));
    span.arg_str("tier", response.tier);
    span.arg("latency_ms", response.latency_seconds * 1e3);
    service_.metrics().observe("service.request_ms",
                               response.latency_seconds * 1e3);
    item.promise.set_value(std::move(response));
  } catch (...) {
    span.arg_str("cache", "error");
    item.promise.set_exception(std::current_exception());
  }
}

void ServeDaemon::worker_main(int index) {
  service::Session session(service_);
  std::unique_ptr<TieredSession> tiered;
  if (config_.tiered) {
    tiered = std::make_unique<TieredSession>(
        service_, [this](const service::PlanHandle& plan) {
          save_plan(plan);
        });
    std::lock_guard<std::mutex> lock(tiered_mutex_);
    tiered_sessions_.push_back(tiered.get());
  }
  Item item;
  std::uint64_t sequence = 0;
  while (pop(item, sequence)) {
    serve_one(index, item, sequence, session, tiered.get());
  }
  if (tiered) {
    // Unregister before the session (and its counters) dies.
    std::lock_guard<std::mutex> lock(tiered_mutex_);
    std::erase(tiered_sessions_, tiered.get());
  }
}

void ServeDaemon::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

}  // namespace hpfsc::serve

// The persistent plan cache (DESIGN.md §12): one file per compiled
// plan in a cache directory, written at compile time and at eviction,
// read back at boot to warm-start a PlanCache so a restarted server
// recompiles nothing it has already seen.
//
// Record layout (little-endian):
//
//   offset  size  field
//   0       8     magic "HPFPLAN\0"
//   8       4     format version (kFormatVersion)
//   12      8     FNV-1a checksum of the payload bytes
//   20      8     payload size in bytes
//   28      n     payload — serialize_plan() (serve/plan_io.hpp)
//
// Load discipline: a record that is truncated, fails its checksum,
// fails to parse, or carries an unknown (future) version is *skipped
// with a counter* — never a crash, never a partial plan.  The affected
// stencil simply compiles cold again and the fresh plan overwrites the
// bad file.  Writes go to a temp file in the same directory followed by
// an atomic rename, so a process killed mid-save cannot leave a
// half-written record under a final name.
//
// File naming is content-addressed by the canonical key's FNV-1a hash
// (`plan-<hash16>.hpfplan`).  The hash is a *locator*, not an identity:
// the authoritative key is the canonical text inside the payload, which
// warm_start inserts under — a (vanishingly rare) hash collision costs
// one cache slot, never a wrong plan.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/plan_io.hpp"
#include "service/plan_cache.hpp"
#include "service/service.hpp"

namespace hpfsc::serve {

/// Monotonic persistence counters.  `loaded + skipped_* ` accounts for
/// every record file a load pass visited.
struct StoreCounters {
  std::uint64_t saved = 0;            ///< records written (or refreshed)
  std::uint64_t save_skipped = 0;     ///< already on disk, same checksum
  std::uint64_t save_failed = 0;      ///< I/O error while writing
  std::uint64_t loaded = 0;           ///< records restored into plans
  std::uint64_t skipped_corrupt = 0;  ///< truncated/checksum/parse failure
  std::uint64_t skipped_version = 0;  ///< future-version header

  [[nodiscard]] std::uint64_t skipped() const {
    return skipped_corrupt + skipped_version;
  }
};

/// Not thread-safe by itself; the serve daemon serializes saves through
/// the compile path (single flight: one leader per key) and loads only
/// at boot.  Counters are plain (inspected after the fact).
class PlanStore {
 public:
  // v2: spmd::Op gained overlap_eligible (one byte after scalar_replace).
  static constexpr std::uint32_t kFormatVersion = 2;
  static constexpr char kMagic[8] = {'H', 'P', 'F', 'P', 'L', 'A', 'N', 0};
  static constexpr std::size_t kHeaderBytes = 28;

  /// Creates `dir` (and parents) if absent.  Throws std::runtime_error
  /// when the path exists but is not a directory or cannot be created.
  explicit PlanStore(std::string dir);

  /// Persists one plan.  Skips the write (cheaply) when the record file
  /// already holds this exact payload.  Returns false on I/O failure
  /// (counted, not thrown: persistence is best-effort — the serving
  /// path must never fail because the disk did).
  bool save(const service::CachedPlan& plan);

  /// Reads every record in the directory, invoking `sink` for each
  /// well-formed plan.  Malformed or future-version records are skipped
  /// with a counter.  Returns the number of plans delivered.
  std::size_t load(const std::function<void(service::PlanHandle)>& sink);

  /// load() straight into a cache: inserts each restored plan under its
  /// persisted canonical key.  Nothing is compiled — a subsequent
  /// compile() for any restored stencil is a pure cache hit with zero
  /// pass spans.
  std::size_t warm_start(service::PlanCache& cache);

  [[nodiscard]] const StoreCounters& counters() const { return counters_; }
  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// Record path for a key (exposed for tests and tooling).
  [[nodiscard]] std::string record_path(const service::CacheKey& key) const;

 private:
  std::string dir_;
  StoreCounters counters_;
};

}  // namespace hpfsc::serve

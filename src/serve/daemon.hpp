// The stencil serving daemon (DESIGN.md §12): a worker pool wrapped in
// admission control, with optional persistent plan caching and tiered
// compilation.
//
//   Admission — a bounded queue (DaemonConfig::queue_depth) with
//     per-client round-robin fairness: submissions land in per-client
//     FIFO sub-queues and workers pick the front request of each client
//     in rotation, so one chatty client cannot starve the rest.  A
//     submission that would exceed the bound is *shed*: submit() throws
//     AdmissionRejected, the serve.shed_total counter increments, and
//     nothing is queued.  serve.queue_depth (gauge) tracks the queued
//     total; serve.queue_wait_ms (histogram) records admit-to-pickup
//     latency of admitted requests.
//   Persistence — with a cache_dir, the daemon warm-starts its plan
//     cache from the directory's records at construction and saves
//     every cold-compiled plan back (serialized by a mutex; best
//     effort).  A restarted daemon therefore recompiles nothing it has
//     already seen: compiles after warm start are pure cache hits with
//     zero pass spans.
//   Tiers — with `tiered`, each worker serves through a TieredSession
//     (serve/tiered.hpp): first request per stencil answers from the
//     interpreter tier immediately while the optimized plan compiles in
//     the background, then hot-swaps.  serve.promotions_total counts
//     completed swaps.  Without `tiered`, workers serve through plain
//     service::Sessions exactly as ServicePool does.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/plan_store.hpp"
#include "serve/tiered.hpp"
#include "service/service.hpp"

namespace hpfsc::serve {

struct DaemonConfig {
  service::ServiceConfig service;
  int workers = 2;
  /// Maximum queued (admitted, not yet picked up) requests across all
  /// clients; 0 is clamped to 1.
  std::size_t queue_depth = 64;
  /// Serve through TieredSessions (interpreter first, background
  /// promotion + hot-swap) instead of plain Sessions.
  bool tiered = false;
  /// Persistent plan-cache directory; empty disables persistence.
  std::string cache_dir;
};

/// Thrown by ServeDaemon::submit when the admission queue is full.
class AdmissionRejected : public std::runtime_error {
 public:
  AdmissionRejected(std::string client, std::size_t depth);

  [[nodiscard]] const std::string& client() const { return client_; }
  [[nodiscard]] std::size_t depth() const { return depth_; }

 private:
  std::string client_;
  std::size_t depth_;
};

struct ServeRequest {
  /// Fairness bucket; requests of one client are served FIFO, distinct
  /// clients round-robin.
  std::string client = "default";
  service::ServiceRequest request;
};

struct ServeResponse {
  Execution::RunStats stats;
  service::CacheOutcome outcome = service::CacheOutcome::Miss;
  double latency_seconds = 0.0;
  double queue_seconds = 0.0;
  double compile_seconds = 0.0;
  double run_seconds = 0.0;
  int worker = -1;
  std::uint64_t request_id = 0;
  /// Global admission pick order (1-based): the n-th request any worker
  /// dequeued.  Makes round-robin fairness externally observable.
  std::uint64_t sequence = 0;
  /// Kernel tier that served this run: "auto" (non-tiered), else
  /// "interp" / "simd".
  const char* tier = "auto";
  /// Promotion state after this run (tiered mode; Promoted otherwise).
  TierState state = TierState::Promoted;
  /// This run crossed the tier hot-swap boundary.
  bool swapped = false;
};

class ServeDaemon {
 public:
  explicit ServeDaemon(DaemonConfig config);
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Admits or sheds.  Throws AdmissionRejected (after counting it in
  /// serve.shed_total) when the queue is at depth, std::logic_error
  /// after shutdown().  Errors from serving propagate via the future.
  std::future<ServeResponse> submit(ServeRequest request);

  /// Stops admitting, drains admitted requests, joins the workers.
  void shutdown();

  [[nodiscard]] service::StencilService& service() { return service_; }
  [[nodiscard]] const DaemonConfig& config() const { return config_; }
  /// Null when persistence is disabled.
  [[nodiscard]] const PlanStore* store() const { return store_.get(); }
  /// Plans restored from the cache directory at construction.
  [[nodiscard]] std::size_t warm_started() const { return warm_started_; }
  /// Requests rejected by admission control so far.
  [[nodiscard]] std::uint64_t shed_total() const;

  /// Point-in-time admission state, for live introspection (statusz).
  struct QueueSnapshot {
    std::size_t queued = 0;     ///< admitted, not yet picked up
    std::uint64_t picked = 0;   ///< total dequeues so far
    std::uint64_t shed = 0;     ///< total admission rejections
    std::size_t depth = 0;      ///< configured admission bound
    bool stopping = false;
    struct ClientQueue {
      std::string client;
      std::size_t queued = 0;
    };
    /// Per-client sub-queues in round-robin rotation order.
    std::vector<ClientQueue> clients;
  };
  [[nodiscard]] QueueSnapshot queue_snapshot() const;

  /// Aggregated tier-promotion counters across all workers' tiered
  /// sessions (zeros when the daemon is not tiered).  Thread-safe: the
  /// per-session counters are atomics.
  [[nodiscard]] TieredSession::Counts tiered_counts() const;

 private:
  struct Item {
    service::ServiceRequest request;
    std::promise<ServeResponse> promise;
    std::chrono::steady_clock::time_point enqueued;
    /// Minted at admission so the enqueue/dequeue flight events and the
    /// serving spans all join one request trace.
    std::uint64_t request_id = 0;
  };

  void worker_main(int index);
  /// Pops the next request round-robin; false when stopping and empty.
  bool pop(Item& item, std::uint64_t& sequence);
  void serve_one(int index, Item& item, std::uint64_t sequence,
                 service::Session& session, TieredSession* tiered);
  void save_plan(const service::PlanHandle& plan);

  DaemonConfig config_;
  service::StencilService service_;
  std::unique_ptr<PlanStore> store_;
  std::mutex store_mutex_;  ///< PlanStore is not thread-safe
  std::size_t warm_started_ = 0;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  /// Per-client FIFO sub-queues plus the round-robin rotation of
  /// clients that currently have queued work.
  std::map<std::string, std::deque<Item>> queues_;
  std::list<std::string> rotation_;
  std::size_t queued_ = 0;
  std::uint64_t picked_ = 0;
  std::uint64_t shed_ = 0;
  bool stopping_ = false;

  /// Worker-owned tiered sessions, registered for the lifetime of each
  /// worker so tiered_counts() can aggregate their atomic counters.
  mutable std::mutex tiered_mutex_;
  std::vector<const TieredSession*> tiered_sessions_;

  std::vector<std::thread> threads_;
};

}  // namespace hpfsc::serve

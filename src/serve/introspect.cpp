#include "serve/introspect.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string_view>

#include "obs/obs.hpp"

namespace hpfsc::serve {

namespace {

std::string fmt_line(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return buf;
}

/// One "name: count=N p50=... p99=... max=... total=..." histogram line
/// (milliseconds), or "name: (no samples)" for an empty histogram.
std::string hist_line(const obs::MetricsRegistry& metrics, const char* label,
                      const std::string& name) {
  const obs::Histogram h = metrics.histogram(name);
  if (h.count() == 0) {
    return fmt_line("  %-10s (no samples)\n", label);
  }
  return fmt_line(
      "  %-10s count=%llu p50=%.3f p99=%.3f max=%.3f total=%.3f\n", label,
      static_cast<unsigned long long>(h.count()), h.p50(), h.p99(), h.max(),
      h.sum());
}

}  // namespace

Introspector::Introspector(ServeDaemon& daemon) : daemon_(&daemon) {}

Introspector::~Introspector() { stop(); }

std::string Introspector::statusz() const {
  const DaemonConfig& config = daemon_->config();
  const ServeDaemon::QueueSnapshot q = daemon_->queue_snapshot();
  const service::CacheCounters cc = daemon_->service().cache_counters();
  const obs::MetricsRegistry& metrics = daemon_->service().metrics();

  std::string out = "=== hpfsc serve statusz ===\n";
  out += fmt_line("workers: %d  tiered: %s  persistence: %s\n",
                  config.workers, config.tiered ? "on" : "off",
                  config.cache_dir.empty() ? "off" : "on");
  out += fmt_line(
      "admission: queued=%zu/%zu picked=%llu shed=%llu stopping=%s\n",
      q.queued, q.depth, static_cast<unsigned long long>(q.picked),
      static_cast<unsigned long long>(q.shed), q.stopping ? "yes" : "no");
  if (q.clients.empty()) {
    out += "client queues: (empty)\n";
  } else {
    out += "client queues (rotation order):\n";
    for (const auto& client : q.clients) {
      out += fmt_line("  %s: %zu queued\n", client.client.c_str(),
                      client.queued);
    }
  }
  out += fmt_line(
      "plan cache: size=%zu/%zu hits=%llu misses=%llu coalesced=%llu "
      "evictions=%llu warmed=%llu\n",
      daemon_->service().cache_size(), daemon_->service().cache().capacity(),
      static_cast<unsigned long long>(cc.hits),
      static_cast<unsigned long long>(cc.misses),
      static_cast<unsigned long long>(cc.coalesced),
      static_cast<unsigned long long>(cc.evictions),
      static_cast<unsigned long long>(cc.warmed));
  if (config.tiered) {
    const TieredSession::Counts t = daemon_->tiered_counts();
    out += fmt_line(
        "tiers: entries=%lld fast=%lld promoting=%lld ready=%lld "
        "promoted=%lld failed=%lld\n",
        t.entries, t.fast, t.promoting, t.ready, t.promoted, t.failed);
    out += fmt_line(
        "tiers: promotions=%llu failures=%llu swap-gate-waits=%llu "
        "swap-gate-ms=%.3f\n",
        static_cast<unsigned long long>(t.promotions),
        static_cast<unsigned long long>(t.promotion_failures),
        static_cast<unsigned long long>(t.swap_gate_waits),
        static_cast<double>(t.swap_gate_wait_ns) / 1e6);
  } else {
    out += "tiers: (not tiered)\n";
  }
  out += "wait-state (per-request ms, summed across PEs):\n";
  out += hist_line(metrics, "recv", "serve.wait.recv_ms");
  out += hist_line(metrics, "barrier", "serve.wait.barrier_ms");
  out += hist_line(metrics, "pool", "serve.wait.pool_ms");
  out += hist_line(metrics, "swap-gate", "serve.swap_gate_wait_ms");
  const auto& recorder = obs::FlightRecorder::instance();
  out += fmt_line("flight recorder: %s threads=%zu\n",
                  recorder.enabled() ? "enabled" : "disabled",
                  recorder.num_threads());
  return out;
}

std::string Introspector::metricsz() const {
  return daemon_->service().metrics().to_prometheus();
}

std::string Introspector::tracez(std::size_t per_thread) const {
  std::string out = "=== hpfsc serve tracez ===\n";
  out += obs::FlightRecorder::instance().postmortem_text(per_thread);
  return out;
}

std::string Introspector::page(const std::string& path) const {
  std::string_view p = path;
  if (!p.empty() && p.front() == '/') p.remove_prefix(1);
  // Drop any query string: the pages take no parameters.
  if (const std::size_t query = p.find('?'); query != std::string_view::npos) {
    p = p.substr(0, query);
  }
  if (p == "statusz" || p.empty()) return statusz();
  if (p == "metricsz") return metricsz();
  if (p == "tracez") return tracez();
  return "unknown page: /" + std::string(p) +
         "\nknown pages: /statusz /metricsz /tracez\n";
}

bool Introspector::write_statusz(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << statusz();
  return static_cast<bool>(out);
}

bool Introspector::serve_on(int port) {
  if (listen_fd_ >= 0) return false;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 16) < 0) {
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    return false;
  }
  // Non-blocking listener: the acceptor polls with a short timeout so
  // stop() only needs to flip a flag, never race a close against accept.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  listen_fd_ = fd;
  port_ = static_cast<int>(ntohs(addr.sin_port));
  stopping_.store(false, std::memory_order_relaxed);
  acceptor_ = std::thread([this] { accept_loop(); });
  return true;
}

void Introspector::stop() {
  stopping_.store(true, std::memory_order_relaxed);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  port_ = 0;
}

void Introspector::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 50);
    if (ready <= 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    handle_client(client);
    ::close(client);
  }
}

void Introspector::handle_client(int fd) const {
  // One request per connection, HTTP/1.0 style.  Read until the header
  // terminator (the pages take no body) with a receive timeout so a
  // stalled client can't wedge the acceptor.
  timeval timeout{2, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  std::string request;
  char buf[1024];
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find('\n') == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  // "GET /statusz HTTP/1.0" — everything after the method, up to the
  // next space, is the path.
  std::string path = "/statusz";
  const std::size_t sp1 = request.find(' ');
  if (sp1 != std::string::npos) {
    const std::size_t sp2 = request.find(' ', sp1 + 1);
    path = request.substr(sp1 + 1, sp2 == std::string::npos
                                       ? std::string::npos
                                       : sp2 - sp1 - 1);
  }
  const std::string body = page(path);
  const bool known = body.rfind("unknown page:", 0) != 0;
  std::string response = known ? "HTTP/1.0 200 OK\r\n"
                               : "HTTP/1.0 404 Not Found\r\n";
  response += "Content-Type: text/plain; charset=utf-8\r\n";
  response += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  response += "Connection: close\r\n\r\n";
  response += body;
  std::size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t n =
        ::send(fd, response.data() + sent, response.size() - sent,
               MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace hpfsc::serve

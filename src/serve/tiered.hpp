// Tiered compilation with hot-swap (DESIGN.md §12): serve the *first*
// request for a stencil immediately from a cheap plan (level-0
// pipeline, interpreter kernels), promote to the requested optimization
// level with SIMD kernels on a background thread, and swap the
// session's execution at a run boundary — without ever returning a
// result that differs from the all-optimized (or all-interpreter) run.
//
// Promotion state machine, per (source, options, bindings) entry:
//
//   Fast ──spawn──► Promoting ──prepared──► Ready ──next run──► Promoted
//                       │
//                       └──compile/prepare threw──► Failed (stays fast)
//
// The swap is safe at a run boundary because cross-run execution state
// is exactly the preallocated arrays: scalars are rebound from the
// program's initial environment on every run() and halos are refreshed
// by the shift schedule inside each iteration.  The swap gathers every
// user-visible array from the fast execution and scatters it into the
// promoted one, so `k` fast runs followed by `n - k` promoted runs
// compute bitwise the same answer as `n` runs on either tier alone
// (the O0-vs-O4 bitwise identity that the differential tester
// enforces).  Entries and swaps are serialized per entry by a mutex;
// the background thread only ever touches the entry's `promoted`
// fields, never the execution currently serving requests.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "executor/execution.hpp"
#include "service/service.hpp"

namespace hpfsc::serve {

/// Promotion lifecycle of one tiered entry.
enum class TierState {
  Fast,       ///< serving from the interpreter-tier execution
  Promoting,  ///< background compile+prepare in flight
  Ready,      ///< promoted execution prepared, swap at next run boundary
  Promoted,   ///< serving from the optimized execution
  Failed      ///< promotion threw; serving stays on the fast tier
};

[[nodiscard]] const char* to_string(TierState state);

/// One worker's tiered executor state.  NOT thread-safe (like
/// service::Session: one per worker thread); promotion runs on
/// background threads owned by this object and joined on destruction.
class TieredSession {
 public:
  /// `on_miss`, when set, is invoked for every plan this session
  /// compiled cold (outcome Miss) — the daemon's persistence hook.
  /// Runs on the calling thread for fast plans and on the promotion
  /// thread for optimized plans, so it must be thread-safe.
  explicit TieredSession(
      service::StencilService& service,
      std::function<void(const service::PlanHandle&)> on_miss = {});
  ~TieredSession();

  TieredSession(const TieredSession&) = delete;
  TieredSession& operator=(const TieredSession&) = delete;

  struct RunResult {
    Execution::RunStats stats;
    /// Cache outcome of the *fast* compile (first run) — Hit afterwards.
    service::CacheOutcome outcome = service::CacheOutcome::Hit;
    /// Entry state after this run.
    TierState state = TierState::Fast;
    /// True when this run crossed the swap boundary (first promoted run).
    bool swapped = false;
    /// Tier that executed this run: "interp" before the swap, "simd"
    /// from the swap on.
    const char* tier = "interp";
  };

  /// Serves one request.  First call for a (source, options, bindings)
  /// triple compiles the fast plan synchronously (level-0 pipeline,
  /// interpreter kernels, requested live_out) and kicks off background
  /// promotion to `req.options` + SIMD kernels; later calls reuse the
  /// entry and pick up the promoted execution once it is Ready.
  RunResult run(const service::ServiceRequest& req);

  /// The execution currently serving `(source, options, bindings)` —
  /// for result inspection in tests.  Null when the entry is absent.
  [[nodiscard]] Execution* execution(const service::ServiceRequest& req);

  /// Completed swaps (mirrored as the serve.promotions_total counter in
  /// the service's MetricsRegistry).
  [[nodiscard]] std::uint64_t promotions() const {
    return promotions_.load(std::memory_order_relaxed);
  }
  /// Promotions that threw (entry stays on the fast tier).  Written by
  /// promotion threads, hence atomic.
  [[nodiscard]] std::uint64_t promotion_failures() const {
    return promotion_failures_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t num_entries() const { return entries_.size(); }

  /// Thread-safe counters snapshot for live introspection (statusz):
  /// per-state entry tallies plus the swap-gate wait accounting — the
  /// time run() spent blocked acquiring an entry's mutex against the
  /// background promoter publishing its result.
  struct Counts {
    long long entries = 0;
    long long fast = 0;
    long long promoting = 0;
    long long ready = 0;
    long long promoted = 0;
    long long failed = 0;
    std::uint64_t promotions = 0;
    std::uint64_t promotion_failures = 0;
    std::uint64_t swap_gate_waits = 0;    ///< contended acquisitions
    std::uint64_t swap_gate_wait_ns = 0;  ///< total blocked time

    Counts& operator+=(const Counts& o) {
      entries += o.entries;
      fast += o.fast;
      promoting += o.promoting;
      ready += o.ready;
      promoted += o.promoted;
      failed += o.failed;
      promotions += o.promotions;
      promotion_failures += o.promotion_failures;
      swap_gate_waits += o.swap_gate_waits;
      swap_gate_wait_ns += o.swap_gate_wait_ns;
      return *this;
    }
  };
  [[nodiscard]] Counts counts() const;

 private:
  struct Entry {
    service::PlanHandle plan;          ///< plan behind `exec`
    std::unique_ptr<Execution> exec;   ///< execution serving requests
    const char* tier = "interp";
    std::thread promoter;

    std::mutex mutex;  ///< guards state + promoted_*
    TierState state = TierState::Fast;
    service::PlanHandle promoted_plan;
    std::unique_ptr<Execution> promoted_exec;  ///< null => in-place
                                               ///  kernel-tier flip
    std::string error;  ///< what a Failed promotion threw
    std::list<std::string>::iterator lru_it;
  };

  [[nodiscard]] static std::string entry_key(
      const service::ServiceRequest& req);
  Entry& entry_for(const service::ServiceRequest& req, RunResult& result,
                   bool* created);
  void promote_async(Entry& entry, const service::ServiceRequest& req);
  /// Ready -> Promoted: transfer array state, swap executions, join the
  /// promotion thread.  Called with the entry mutex held.
  void swap_locked(Entry& entry);

  /// Moves an entry between the per-state tallies (atomic so the
  /// introspector can read them from any thread; transitions themselves
  /// are serialized per entry by the entry mutex).
  void note_state(TierState from, TierState to);
  std::atomic<long long>& state_count(TierState state) {
    return state_counts_[static_cast<std::size_t>(state)];
  }

  service::StencilService* service_;
  std::function<void(const service::PlanHandle&)> on_miss_;
  std::map<std::string, std::unique_ptr<Entry>> entries_;
  std::list<std::string> lru_;  ///< most recently run first
  std::atomic<std::uint64_t> promotions_{0};
  std::atomic<std::uint64_t> promotion_failures_{0};
  std::atomic<long long> num_entries_{0};
  std::array<std::atomic<long long>, 5> state_counts_{};
  std::atomic<std::uint64_t> swap_gate_waits_{0};
  std::atomic<std::uint64_t> swap_gate_wait_ns_{0};
};

}  // namespace hpfsc::serve

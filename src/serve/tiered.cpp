#include "serve/tiered.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "service/cache_key.hpp"

namespace hpfsc::serve {

const char* to_string(TierState state) {
  switch (state) {
    case TierState::Fast: return "fast";
    case TierState::Promoting: return "promoting";
    case TierState::Ready: return "ready";
    case TierState::Promoted: return "promoted";
    case TierState::Failed: return "failed";
  }
  return "?";
}

namespace {

/// The fast tier's compiler options: level-0 pipeline (no optimization
/// passes) with the request's live_out preserved, so the fast and
/// promoted plans agree on which arrays are user-visible.
CompilerOptions fast_options(const CompilerOptions& requested) {
  CompilerOptions fast = CompilerOptions::level(0);
  fast.passes.offset.live_out = requested.passes.offset.live_out;
  fast.xlhpf_mode = requested.xlhpf_mode;
  fast.trace = requested.trace;
  return fast;
}

/// Exact 64-bit patterns, as in service.cpp: decimal rounding would
/// alias bindings closer than its precision.
std::string bindings_fingerprint(const Bindings& bindings) {
  std::string out;
  for (const auto& [name, value] : bindings.values) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof bits);
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(bits));
    out += name;
    out += '=';
    out += hex;
    out += ';';
  }
  return out;
}

std::unique_ptr<Execution> build_execution(
    service::StencilService& service, const service::PlanHandle& plan,
    const Bindings& bindings, KernelTier tier) {
  simpi::MachineConfig mc = service.config().machine;
  if (plan->processors) {
    mc.pe_rows = plan->processors->first;
    mc.pe_cols = plan->processors->second;
  }
  auto exec = std::make_unique<Execution>(plan->program, mc);
  exec->set_trace(service.trace());
  exec->set_kernel_tier(tier);
  exec->prepare(bindings);
  return exec;
}

}  // namespace

TieredSession::TieredSession(
    service::StencilService& service,
    std::function<void(const service::PlanHandle&)> on_miss)
    : service_(&service), on_miss_(std::move(on_miss)) {}

void TieredSession::note_state(TierState from, TierState to) {
  if (from == to) return;
  state_count(from).fetch_sub(1, std::memory_order_relaxed);
  state_count(to).fetch_add(1, std::memory_order_relaxed);
}

TieredSession::Counts TieredSession::counts() const {
  Counts c;
  c.entries = num_entries_.load(std::memory_order_relaxed);
  const auto at = [&](TierState s) {
    return state_counts_[static_cast<std::size_t>(s)].load(
        std::memory_order_relaxed);
  };
  c.fast = at(TierState::Fast);
  c.promoting = at(TierState::Promoting);
  c.ready = at(TierState::Ready);
  c.promoted = at(TierState::Promoted);
  c.failed = at(TierState::Failed);
  c.promotions = promotions_.load(std::memory_order_relaxed);
  c.promotion_failures = promotion_failures_.load(std::memory_order_relaxed);
  c.swap_gate_waits = swap_gate_waits_.load(std::memory_order_relaxed);
  c.swap_gate_wait_ns = swap_gate_wait_ns_.load(std::memory_order_relaxed);
  return c;
}

TieredSession::~TieredSession() {
  for (auto& [key, entry] : entries_) {
    if (entry->promoter.joinable()) entry->promoter.join();
  }
}

std::string TieredSession::entry_key(const service::ServiceRequest& req) {
  std::string key = service::fingerprint(req.options);
  key += '\x1f';
  key += req.source;
  key += '\x1f';
  key += bindings_fingerprint(req.bindings);
  return key;
}

void TieredSession::promote_async(Entry& entry,
                                  const service::ServiceRequest& req) {
  entry.state = TierState::Promoting;
  note_state(TierState::Fast, TierState::Promoting);
  entry.promoter = std::thread([this, &entry, source = req.source,
                                options = req.options,
                                bindings = req.bindings] {
    // Background promotions are requests of their own: a fresh id makes
    // the compile spans attributable without stealing the foreground
    // request's id.
    const std::uint64_t rid = obs::next_request_id();
    obs::RequestScope rscope(rid);
    obs::Span span(service_->trace(), "serve.promote", "serve");
    try {
      service::CacheOutcome outcome = service::CacheOutcome::Miss;
      service::PlanHandle plan =
          service_->compile(source, options, &outcome);
      if (outcome == service::CacheOutcome::Miss && on_miss_) {
        on_miss_(plan);
      }
      span.arg("key_hash", plan->key.hash);
      span.arg_str("cache", service::to_string(outcome));
      auto exec =
          build_execution(*service_, plan, bindings, KernelTier::Simd);
      {
        std::lock_guard<std::mutex> lock(entry.mutex);
        entry.promoted_plan = std::move(plan);
        entry.promoted_exec = std::move(exec);
        entry.state = TierState::Ready;
        note_state(TierState::Promoting, TierState::Ready);
      }
      span.arg_str("state", "ready");
    } catch (const std::exception& e) {
      {
        std::lock_guard<std::mutex> lock(entry.mutex);
        entry.state = TierState::Failed;
        note_state(TierState::Promoting, TierState::Failed);
        entry.error = e.what();
      }
      promotion_failures_.fetch_add(1, std::memory_order_relaxed);
      service_->metrics().add("serve.promotion_failures_total");
      span.arg_str("state", "failed");
    }
  });
}

void TieredSession::swap_locked(Entry& entry) {
  if (entry.promoted_exec) {
    // Transfer the cross-run state: every user-visible preallocated
    // array.  Temporaries are written before read inside each
    // iteration and eliminated arrays have no storage, so neither
    // carries state across the boundary.  User-array shapes agree
    // across optimization levels by construction (the differential
    // tester compares them element-wise); the size check is defensive.
    const spmd::Program& fast_prog = entry.exec->program();
    for (const spmd::ArraySpec& spec : entry.promoted_plan->program.arrays) {
      if (!spec.prealloc || spec.eliminated || spec.is_temp) continue;
      const int fast_id = fast_prog.find_array(spec.name);
      if (fast_id < 0 ||
          fast_prog.arrays[static_cast<std::size_t>(fast_id)].eliminated) {
        continue;
      }
      std::vector<double> global = entry.exec->get_array(spec.name);
      if (global.size() != entry.promoted_exec->get_array(spec.name).size()) {
        continue;
      }
      entry.promoted_exec->set_array(spec.name, global);
    }
    entry.exec = std::move(entry.promoted_exec);
    entry.plan = std::move(entry.promoted_plan);
  } else {
    // Same plan at both tiers (the request already asked for the fast
    // pipeline): promotion is an in-place kernel-tier flip.
    entry.exec->set_kernel_tier(KernelTier::Simd);
  }
  entry.tier = "simd";
  entry.state = TierState::Promoted;
  note_state(TierState::Ready, TierState::Promoted);
  if (entry.promoter.joinable()) entry.promoter.join();
  promotions_.fetch_add(1, std::memory_order_relaxed);
  service_->metrics().add("serve.promotions_total");
}

TieredSession::Entry& TieredSession::entry_for(
    const service::ServiceRequest& req, RunResult& result, bool* created) {
  std::string key = entry_key(req);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second->lru_it);
    return *it->second;
  }
  *created = true;

  auto entry = std::make_unique<Entry>();
  num_entries_.fetch_add(1, std::memory_order_relaxed);
  state_count(TierState::Fast).fetch_add(1, std::memory_order_relaxed);
  CompilerOptions fast = fast_options(req.options);
  entry->plan = service_->compile(req.source, fast, &result.outcome);
  if (result.outcome == service::CacheOutcome::Miss && on_miss_) {
    on_miss_(entry->plan);
  }
  entry->exec = build_execution(*service_, entry->plan, req.bindings,
                                KernelTier::InterpreterOnly);
  if (req.init) req.init(*entry->exec);

  if (service::fingerprint(fast) == service::fingerprint(req.options)) {
    // Nothing to compile in the background; the kernel tier still
    // promotes (in place) at the next run boundary.
    entry->state = TierState::Ready;
    note_state(TierState::Fast, TierState::Ready);
  } else {
    promote_async(*entry, req);
  }

  lru_.push_front(key);
  entry->lru_it = lru_.begin();
  it = entries_.emplace(std::move(key), std::move(entry)).first;

  std::size_t capacity = service_->config().session_capacity;
  if (capacity == 0) capacity = 1;
  while (entries_.size() > capacity) {
    auto victim = entries_.find(lru_.back());
    // Joining a still-promoting victim's thread can block; retiring the
    // LRU entry is the rare path and correctness needs the join.
    if (victim->second->promoter.joinable()) victim->second->promoter.join();
    // After the join the state is final; retire it from the tallies.
    state_count(victim->second->state)
        .fetch_sub(1, std::memory_order_relaxed);
    num_entries_.fetch_sub(1, std::memory_order_relaxed);
    entries_.erase(victim);
    lru_.pop_back();
  }
  return *it->second;
}

TieredSession::RunResult TieredSession::run(
    const service::ServiceRequest& req) {
  const std::uint64_t rid = obs::current_request_id() != 0
                                ? obs::current_request_id()
                                : obs::next_request_id();
  obs::RequestScope rscope(rid);
  RunResult result;
  bool created = false;
  Entry& entry = entry_for(req, result, &created);
  {
    // The swap gate.  The promoter holds entry.mutex while publishing
    // its result, so a request landing right then blocks here; time
    // only that contended path (try_lock keeps the common case free of
    // clock reads) but record a zero observation otherwise so the
    // histogram's count stays one-per-request.
    std::unique_lock<std::mutex> lock(entry.mutex, std::try_to_lock);
    std::uint64_t gate_ns = 0;
    if (!lock.owns_lock()) {
      const auto t0 = std::chrono::steady_clock::now();
      lock.lock();
      gate_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      swap_gate_waits_.fetch_add(1, std::memory_order_relaxed);
      swap_gate_wait_ns_.fetch_add(gate_ns, std::memory_order_relaxed);
      auto& fr = obs::FlightRecorder::instance();
      if (fr.enabled()) {
        obs::FlightEvent ev;
        ev.kind = obs::FlightEvent::Kind::Counter;
        ev.ts_ns = fr.now_ns();
        ev.value = static_cast<double>(gate_ns);
        ev.request_id = rid;
        ev.set_name("wait.swap_gate_ns");
        fr.emit(ev);
      }
    }
    service_->metrics().observe("serve.swap_gate_wait_ms",
                                static_cast<double>(gate_ns) / 1e6);
    // The creating run always serves from the fast tier — even when the
    // background promotion already finished (on a loaded or single-core
    // host it can beat this check) — so "first request answers from the
    // interpreter" holds deterministically.  The swap lands on the next
    // run boundary instead.
    if (!created && entry.state == TierState::Ready) {
      swap_locked(entry);
      result.swapped = true;
    }
    result.state = entry.state;
  }
  result.tier = entry.tier;
  obs::Span span(service_->trace(), "serve.run", "serve");
  span.arg("key_hash", entry.plan->key.hash);
  span.arg_str("tier", result.tier);
  span.arg_str("state", to_string(result.state));
  result.stats = entry.exec->run(req.steps);
  // Per-request wait-state rollup (summed across PEs): the serve-layer
  // view of the same intervals the per-PE simpi.* histograms hold.
  const simpi::WaitStats& w = result.stats.machine.wait;
  obs::MetricsRegistry& m = service_->metrics();
  m.observe("serve.wait.recv_ms", static_cast<double>(w.recv_wait_ns) / 1e6);
  m.observe("serve.wait.barrier_ms",
            static_cast<double>(w.barrier_wait_ns) / 1e6);
  m.observe("serve.wait.pool_ms", static_cast<double>(w.pool_wait_ns) / 1e6);
  return result;
}

Execution* TieredSession::execution(const service::ServiceRequest& req) {
  auto it = entries_.find(entry_key(req));
  return it == entries_.end() ? nullptr : it->second->exec.get();
}

}  // namespace hpfsc::serve

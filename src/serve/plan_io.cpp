#include "serve/plan_io.hpp"

#include <cstring>

namespace hpfsc::serve {

namespace {

// ---- primitive encoder/decoder ---------------------------------------

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }

  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    }
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  /// Element count of a vector about to be read.  Each element encodes
  /// to >= 1 byte, so a count beyond the remaining bytes is malformed —
  /// rejecting it here caps allocations on corrupt input.
  std::uint32_t count() {
    const std::uint32_t n = u32();
    if (n > data_.size() - pos_) {
      throw PlanFormatError("element count exceeds remaining bytes");
    }
    return n;
  }

  [[nodiscard]] std::size_t pos() const { return pos_; }

 private:
  void need(std::size_t n) {
    if (data_.size() - pos_ < n) {
      throw PlanFormatError("truncated plan payload");
    }
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

// ---- spmd::Program fields --------------------------------------------

void put_bound(Writer& w, const ir::AffineBound& b) {
  w.str(b.param);
  w.i32(b.constant);
}

ir::AffineBound get_bound(Reader& r) {
  ir::AffineBound b;
  b.param = r.str();
  b.constant = r.i32();
  return b;
}

void put_section(Writer& w, const ir::SectionRange& s) {
  put_bound(w, s.lo);
  put_bound(w, s.hi);
}

ir::SectionRange get_section(Reader& r) {
  ir::SectionRange s;
  s.lo = get_bound(r);
  s.hi = get_bound(r);
  return s;
}

template <typename T, std::size_t N>
void put_ints(Writer& w, const std::array<T, N>& a) {
  for (const T& v : a) w.i32(static_cast<std::int32_t>(v));
}

template <typename T, std::size_t N>
void get_ints(Reader& r, std::array<T, N>& a) {
  for (T& v : a) v = static_cast<T>(r.i32());
}

void put_instrs(Writer& w, const std::vector<spmd::Instr>& code) {
  w.u32(static_cast<std::uint32_t>(code.size()));
  for (const spmd::Instr& ins : code) {
    w.u8(static_cast<std::uint8_t>(ins.op));
    w.i32(ins.idx);
    w.f64(ins.value);
  }
}

std::vector<spmd::Instr> get_instrs(Reader& r) {
  const std::uint32_t n = r.count();
  std::vector<spmd::Instr> code(n);
  for (spmd::Instr& ins : code) {
    const std::uint8_t op = r.u8();
    if (op > static_cast<std::uint8_t>(spmd::Instr::Op::Ne)) {
      throw PlanFormatError("bad instruction opcode");
    }
    ins.op = static_cast<spmd::Instr::Op>(op);
    ins.idx = r.i32();
    ins.value = r.f64();
  }
  return code;
}

void put_op(Writer& w, const spmd::Op& op);

void put_ops(Writer& w, const std::vector<spmd::Op>& ops) {
  w.u32(static_cast<std::uint32_t>(ops.size()));
  for (const spmd::Op& op : ops) put_op(w, op);
}

void put_op(Writer& w, const spmd::Op& op) {
  w.u8(static_cast<std::uint8_t>(op.kind));
  w.u32(static_cast<std::uint32_t>(op.arrays.size()));
  for (int a : op.arrays) w.i32(a);
  w.i32(op.array);
  w.i32(op.src);
  w.i32(op.shift);
  w.i32(op.dim);
  w.u8(static_cast<std::uint8_t>(op.shift_kind));
  put_instrs(w, op.boundary);
  put_ints(w, op.rsd.lo);
  put_ints(w, op.rsd.hi);
  put_ints(w, op.copy_offset);
  w.i32(op.rank);
  for (const ir::SectionRange& s : op.bounds) put_section(w, s);
  put_ints(w, op.loop_order);
  w.i32(op.unroll);
  w.u8(op.scalar_replace ? 1 : 0);
  w.u8(op.overlap_eligible ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(op.loads.size()));
  for (const spmd::Load& ld : op.loads) {
    w.i32(ld.array);
    put_ints(w, ld.offset);
  }
  w.u32(static_cast<std::uint32_t>(op.kernels.size()));
  for (const spmd::Kernel& k : op.kernels) {
    w.i32(k.lhs_array);
    put_ints(w, k.lhs_offset);
    put_instrs(w, k.code);
  }
  w.i32(op.scalar);
  put_instrs(w, op.expr);
  put_instrs(w, op.cond);
  put_ops(w, op.then_ops);
  put_ops(w, op.else_ops);
  w.i32(op.var);
  put_bound(w, op.lo);
  put_bound(w, op.hi);
  put_ops(w, op.body);
}

spmd::Op get_op(Reader& r);

std::vector<spmd::Op> get_ops(Reader& r) {
  const std::uint32_t n = r.count();
  std::vector<spmd::Op> ops;
  ops.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) ops.push_back(get_op(r));
  return ops;
}

spmd::Op get_op(Reader& r) {
  spmd::Op op;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(spmd::OpKind::Do)) {
    throw PlanFormatError("bad op kind");
  }
  op.kind = static_cast<spmd::OpKind>(kind);
  const std::uint32_t narrays = r.count();
  op.arrays.resize(narrays);
  for (int& a : op.arrays) a = r.i32();
  op.array = r.i32();
  op.src = r.i32();
  op.shift = r.i32();
  op.dim = r.i32();
  const std::uint8_t sk = r.u8();
  if (sk > static_cast<std::uint8_t>(simpi::ShiftKind::EndOff)) {
    throw PlanFormatError("bad shift kind");
  }
  op.shift_kind = static_cast<simpi::ShiftKind>(sk);
  op.boundary = get_instrs(r);
  get_ints(r, op.rsd.lo);
  get_ints(r, op.rsd.hi);
  get_ints(r, op.copy_offset);
  op.rank = r.i32();
  for (ir::SectionRange& s : op.bounds) s = get_section(r);
  get_ints(r, op.loop_order);
  op.unroll = r.i32();
  op.scalar_replace = r.u8() != 0;
  op.overlap_eligible = r.u8() != 0;
  const std::uint32_t nloads = r.count();
  op.loads.resize(nloads);
  for (spmd::Load& ld : op.loads) {
    ld.array = r.i32();
    get_ints(r, ld.offset);
  }
  const std::uint32_t nkernels = r.count();
  op.kernels.resize(nkernels);
  for (spmd::Kernel& k : op.kernels) {
    k.lhs_array = r.i32();
    get_ints(r, k.lhs_offset);
    k.code = get_instrs(r);
  }
  op.scalar = r.i32();
  op.expr = get_instrs(r);
  op.cond = get_instrs(r);
  op.then_ops = get_ops(r);
  op.else_ops = get_ops(r);
  op.var = r.i32();
  op.lo = get_bound(r);
  op.hi = get_bound(r);
  op.body = get_ops(r);
  return op;
}

void put_program(Writer& w, const spmd::Program& prog) {
  w.str(prog.name);
  w.u32(static_cast<std::uint32_t>(prog.scalars.size()));
  for (const spmd::ScalarSpec& s : prog.scalars) {
    w.str(s.name);
    w.u8(s.integer ? 1 : 0);
    w.u8(s.init.has_value() ? 1 : 0);
    w.f64(s.init.value_or(0.0));
  }
  w.u32(static_cast<std::uint32_t>(prog.arrays.size()));
  for (const spmd::ArraySpec& a : prog.arrays) {
    w.str(a.name);
    w.i32(a.rank);
    for (const ir::AffineBound& b : a.extent) put_bound(w, b);
    for (simpi::DistKind d : a.dist) w.u8(static_cast<std::uint8_t>(d));
    put_ints(w, a.halo_lo);
    put_ints(w, a.halo_hi);
    w.u8(a.is_temp ? 1 : 0);
    w.u8(a.eliminated ? 1 : 0);
    w.u8(a.prealloc ? 1 : 0);
  }
  put_ops(w, prog.ops);
}

spmd::Program get_program(Reader& r) {
  spmd::Program prog;
  prog.name = r.str();
  const std::uint32_t nscalars = r.count();
  prog.scalars.resize(nscalars);
  for (spmd::ScalarSpec& s : prog.scalars) {
    s.name = r.str();
    s.integer = r.u8() != 0;
    const bool has_init = r.u8() != 0;
    const double init = r.f64();
    if (has_init) s.init = init;
  }
  const std::uint32_t narrays = r.count();
  prog.arrays.resize(narrays);
  for (spmd::ArraySpec& a : prog.arrays) {
    a.name = r.str();
    a.rank = r.i32();
    for (ir::AffineBound& b : a.extent) b = get_bound(r);
    for (simpi::DistKind& d : a.dist) {
      const std::uint8_t v = r.u8();
      if (v > static_cast<std::uint8_t>(simpi::DistKind::Collapsed)) {
        throw PlanFormatError("bad distribution kind");
      }
      d = static_cast<simpi::DistKind>(v);
    }
    get_ints(r, a.halo_lo);
    get_ints(r, a.halo_hi);
    a.is_temp = r.u8() != 0;
    a.eliminated = r.u8() != 0;
    a.prealloc = r.u8() != 0;
  }
  prog.ops = get_ops(r);
  return prog;
}

}  // namespace

std::string serialize_program(const spmd::Program& program) {
  Writer w;
  put_program(w, program);
  return w.take();
}

spmd::Program deserialize_program(std::string_view bytes,
                                  std::size_t* consumed) {
  Reader r(bytes);
  spmd::Program prog = get_program(r);
  if (consumed != nullptr) {
    *consumed = r.pos();
  } else if (r.pos() != bytes.size()) {
    throw PlanFormatError("trailing bytes after program");
  }
  return prog;
}

std::string serialize_plan(const service::CachedPlan& plan) {
  Writer w;
  w.str(plan.key.canonical);
  w.str(plan.key.iface);
  w.u64(plan.key.hash);
  w.u8(plan.processors.has_value() ? 1 : 0);
  w.i32(plan.processors ? plan.processors->first : 0);
  w.i32(plan.processors ? plan.processors->second : 0);
  w.str(plan.diagnostics);
  put_program(w, plan.program);
  return w.take();
}

service::CachedPlan deserialize_plan(std::string_view bytes) {
  Reader r(bytes);
  service::CachedPlan plan;
  plan.key.canonical = r.str();
  plan.key.iface = r.str();
  plan.key.hash = r.u64();
  const bool has_procs = r.u8() != 0;
  const int rows = r.i32();
  const int cols = r.i32();
  if (has_procs) plan.processors = {rows, cols};
  plan.diagnostics = r.str();
  std::size_t consumed = 0;
  std::string_view rest = bytes.substr(r.pos());
  plan.program = deserialize_program(rest, &consumed);
  if (consumed != rest.size()) {
    throw PlanFormatError("trailing bytes after plan");
  }
  // Defense in depth: the key must describe the payload it rides with
  // (a bit flip that survives the store checksum, a hand-edited file).
  if (plan.key.hash != service::fnv1a(plan.key.canonical)) {
    throw PlanFormatError("key hash does not match canonical text");
  }
  return plan;
}

}  // namespace hpfsc::serve

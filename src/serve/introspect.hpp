// Live daemon introspection (DESIGN.md §13): text status pages rendered
// from a running ServeDaemon's thread-safe counters, served two ways —
// on demand to a file/string (always available) and over an opt-in
// localhost-only TCP listener speaking just enough HTTP/1.0 for
// `curl http://127.0.0.1:<port>/statusz`.
//
//   /statusz  — admission queue (total + per-client sub-queues in
//               rotation order), plan-cache counters, tier-promotion
//               state tallies, and the wait-state breakdown from the
//               service's serve.wait.* histograms.
//   /metricsz — the service MetricsRegistry in Prometheus text
//               exposition format.
//   /tracez   — the flight recorder's per-thread event tail (the same
//               text a postmortem dump writes).
//
// Every page reads only snapshot-style accessors (atomics, mutex-held
// copies): rendering never blocks a worker beyond the daemon's own
// queue mutex, and never touches a worker-owned TieredSession directly.
//
// The listener binds 127.0.0.1 only — introspection is an operator
// loopback tool, not a network service; there is no TLS, auth, or
// request parsing beyond the GET path.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>

#include "serve/daemon.hpp"

namespace hpfsc::serve {

class Introspector {
 public:
  /// Does not take ownership; the daemon must outlive the introspector.
  explicit Introspector(ServeDaemon& daemon);
  ~Introspector();

  Introspector(const Introspector&) = delete;
  Introspector& operator=(const Introspector&) = delete;

  [[nodiscard]] std::string statusz() const;
  [[nodiscard]] std::string metricsz() const;
  /// Newest `per_thread` flight events of every thread, oldest first.
  [[nodiscard]] std::string tracez(std::size_t per_thread = 16) const;

  /// Dispatch by URL path ("/statusz", with or without the slash).
  /// Unknown paths render an index of the known pages.
  [[nodiscard]] std::string page(const std::string& path) const;

  /// Starts the localhost listener on `port` (0 picks an ephemeral
  /// port; see port()).  Returns false when the socket can't be set up
  /// or a listener is already running.
  bool serve_on(int port);
  /// The bound port; 0 when not listening.
  [[nodiscard]] int port() const { return port_; }
  /// Stops the listener and joins the acceptor thread.  Idempotent.
  void stop();

  /// Writes statusz() to `path` (truncate).  False on I/O failure.
  bool write_statusz(const std::string& path) const;

 private:
  void accept_loop();
  void handle_client(int fd) const;

  ServeDaemon* daemon_;
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread acceptor_;
};

}  // namespace hpfsc::serve

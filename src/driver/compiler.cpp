#include "driver/compiler.hpp"

#include "frontend/lower.hpp"
#include "frontend/parser.hpp"
#include "ir/printer.hpp"
#include "passes/overlap_mark.hpp"

namespace hpfsc {

namespace {

/// Pipeline + SPMD codegen over an already-lowered program (consumed).
/// `frontend_diagnostics` (rendered frontend warnings) is prepended to
/// the result's diagnostics.
CompiledProgram run_backend(ir::Program& program,
                            std::optional<std::pair<int, int>> processors,
                            const CompilerOptions& options,
                            const std::string& frontend_diagnostics) {
  obs::TraceSession* trace = options.trace;
  DiagnosticEngine diags;
  CompiledProgram out;
  out.processors = processors;

  passes::PassOptions pass_opts = options.passes;
  if (options.xlhpf_mode) {
    // Baseline mode: normalization only; code generation materializes
    // expression temporaries.
    pass_opts = passes::PassOptions::level(0);
    pass_opts.normalize = options.passes.normalize;
  }

  if (options.xlhpf_mode) {
    // Run normalization alone (run_pipeline would also scalarize).
    obs::Span span(trace, "pass/normalize", "compile");
    out.pipeline.normalize =
        passes::normalize(program, pass_opts.normalize, diags);
    out.listings.push_back(
        passes::PhaseListing{"normalize", ir::Printer(program).print_body()});
  } else {
    out.pipeline = passes::run_pipeline(program, pass_opts, diags, trace);
    out.listings = out.pipeline.listings;
  }
  if (diags.has_errors()) throw CompileError(diags.render_all());

  {
    obs::Span span(trace, "codegen/lower-spmd", "compile");
    codegen::LowerOptions cg;
    cg.expr_temps = options.xlhpf_mode;
    out.program = codegen::lower_to_spmd(program, cg, diags);
    const auto overlap = passes::mark_overlap_nests(out.program);
    if (span.active()) {
      const auto comm = out.program.comm_summary();
      span.arg("ops", static_cast<double>(out.program.ops.size()));
      span.arg("full_shifts", comm.full_shifts);
      span.arg("overlap_shifts", comm.overlap_shifts);
      span.arg("overlap_nests", overlap.nests_marked);
    }
  }
  if (diags.has_errors()) throw CompileError(diags.render_all());

  out.diagnostics = frontend_diagnostics + diags.render_all();
  return out;
}

/// Lex + parse + lower; throws on any frontend error.  Rendered
/// frontend warnings are appended to `warnings`.
frontend::LowerResult run_frontend(std::string_view source,
                                   obs::TraceSession* trace,
                                   std::string& warnings) {
  DiagnosticEngine diags;
  frontend::ast::Program tree;
  {
    obs::Span span(trace, "frontend/lex+parse", "compile");
    tree = frontend::Parser::parse_source(source, diags);
  }
  if (diags.has_errors()) throw CompileError(diags.render_all());

  frontend::LowerResult lowered;
  {
    obs::Span span(trace, "frontend/lower", "compile");
    lowered = frontend::lower(tree, diags);
  }
  if (diags.has_errors()) throw CompileError(diags.render_all());
  warnings += diags.render_all();
  return lowered;
}

}  // namespace

CompiledProgram Compiler::compile(std::string_view source,
                                  const CompilerOptions& options) const {
  obs::TraceSession* trace = options.trace;
  obs::Span compile_span(trace, "compile", "compile");
  compile_span.arg("source_bytes", static_cast<double>(source.size()));

  std::string warnings;
  frontend::LowerResult lowered = run_frontend(source, trace, warnings);
  return run_backend(lowered.program, lowered.processors, options, warnings);
}

std::vector<CompiledProgram> Compiler::compile_batch(
    std::string_view source,
    const std::vector<CompilerOptions>& variants) const {
  obs::TraceSession* trace =
      variants.empty() ? nullptr : variants.front().trace;
  obs::Span batch_span(trace, "compile.batch", "compile");
  batch_span.arg("variants", static_cast<double>(variants.size()));

  std::string warnings;
  frontend::LowerResult lowered = run_frontend(source, trace, warnings);

  std::vector<CompiledProgram> out;
  out.reserve(variants.size());
  for (std::size_t i = 0; i < variants.size(); ++i) {
    if (i + 1 == variants.size()) {
      // Last variant consumes the lowered program directly.
      out.push_back(run_backend(lowered.program, lowered.processors,
                                variants[i], warnings));
    } else {
      ir::Program copy = lowered.program.clone();
      out.push_back(
          run_backend(copy, lowered.processors, variants[i], warnings));
    }
  }
  return out;
}

}  // namespace hpfsc

#include "driver/compiler.hpp"

#include "frontend/lower.hpp"
#include "ir/printer.hpp"

namespace hpfsc {

CompiledProgram Compiler::compile(std::string_view source,
                                  const CompilerOptions& options) const {
  DiagnosticEngine diags;
  frontend::LowerResult lowered = frontend::lower_source(source, diags);
  if (diags.has_errors()) throw CompileError(diags.render_all());

  CompiledProgram out;
  out.processors = lowered.processors;

  passes::PassOptions pass_opts = options.passes;
  if (options.xlhpf_mode) {
    // Baseline mode: normalization only; code generation materializes
    // expression temporaries.
    pass_opts = passes::PassOptions::level(0);
    pass_opts.normalize = options.passes.normalize;
  }

  if (options.xlhpf_mode) {
    // Run normalization alone (run_pipeline would also scalarize).
    out.pipeline.normalize = passes::normalize(lowered.program,
                                               pass_opts.normalize, diags);
    out.listings.push_back(passes::PhaseListing{
        "normalize", ir::Printer(lowered.program).print_body()});
  } else {
    out.pipeline = passes::run_pipeline(lowered.program, pass_opts, diags);
    out.listings = out.pipeline.listings;
  }
  if (diags.has_errors()) throw CompileError(diags.render_all());

  codegen::LowerOptions cg;
  cg.expr_temps = options.xlhpf_mode;
  out.program = codegen::lower_to_spmd(lowered.program, cg, diags);
  if (diags.has_errors()) throw CompileError(diags.render_all());

  out.diagnostics = diags.render_all();
  return out;
}

}  // namespace hpfsc

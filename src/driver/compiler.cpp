#include "driver/compiler.hpp"

#include "frontend/lower.hpp"
#include "frontend/parser.hpp"
#include "ir/printer.hpp"

namespace hpfsc {

CompiledProgram Compiler::compile(std::string_view source,
                                  const CompilerOptions& options) const {
  obs::TraceSession* trace = options.trace;
  obs::Span compile_span(trace, "compile", "compile");
  compile_span.arg("source_bytes", static_cast<double>(source.size()));

  DiagnosticEngine diags;
  frontend::ast::Program tree;
  {
    obs::Span span(trace, "frontend/lex+parse", "compile");
    tree = frontend::Parser::parse_source(source, diags);
  }
  if (diags.has_errors()) throw CompileError(diags.render_all());

  frontend::LowerResult lowered;
  {
    obs::Span span(trace, "frontend/lower", "compile");
    lowered = frontend::lower(tree, diags);
  }
  if (diags.has_errors()) throw CompileError(diags.render_all());

  CompiledProgram out;
  out.processors = lowered.processors;

  passes::PassOptions pass_opts = options.passes;
  if (options.xlhpf_mode) {
    // Baseline mode: normalization only; code generation materializes
    // expression temporaries.
    pass_opts = passes::PassOptions::level(0);
    pass_opts.normalize = options.passes.normalize;
  }

  if (options.xlhpf_mode) {
    // Run normalization alone (run_pipeline would also scalarize).
    obs::Span span(trace, "pass/normalize", "compile");
    out.pipeline.normalize = passes::normalize(lowered.program,
                                               pass_opts.normalize, diags);
    out.listings.push_back(passes::PhaseListing{
        "normalize", ir::Printer(lowered.program).print_body()});
  } else {
    out.pipeline =
        passes::run_pipeline(lowered.program, pass_opts, diags, trace);
    out.listings = out.pipeline.listings;
  }
  if (diags.has_errors()) throw CompileError(diags.render_all());

  {
    obs::Span span(trace, "codegen/lower-spmd", "compile");
    codegen::LowerOptions cg;
    cg.expr_temps = options.xlhpf_mode;
    out.program = codegen::lower_to_spmd(lowered.program, cg, diags);
    if (span.active()) {
      const auto comm = out.program.comm_summary();
      span.arg("ops", static_cast<double>(out.program.ops.size()));
      span.arg("full_shifts", comm.full_shifts);
      span.arg("overlap_shifts", comm.overlap_shifts);
    }
  }
  if (diags.has_errors()) throw CompileError(diags.render_all());

  out.diagnostics = diags.render_all();
  return out;
}

}  // namespace hpfsc

// Umbrella header: the complete public API of the hpfsc stencil
// compilation framework.
//
//   hpfsc::Compiler           — HPF source -> executable SPMD program
//   hpfsc::CompilerOptions    — optimization levels O0..O4 / xlhpf mode
//   hpfsc::Execution          — run a compiled program on the simulated
//                               distributed-memory machine
//   hpfsc::Bindings           — runtime parameter values (N, C1, ...)
//   simpi::MachineConfig      — PE grid shape, heap cap, message costs
//   hpfsc::service::*         — compile-once/run-many serving layer
//                               (plan cache, sessions, worker pool);
//                               include "service/service.hpp"
//
// Quickstart:
//   hpfsc::Compiler compiler;
//   auto compiled = compiler.compile(source, CompilerOptions::level(4));
//   simpi::MachineConfig mc{.pe_rows = 2, .pe_cols = 2};
//   hpfsc::Execution exec(std::move(compiled.program), mc);
//   exec.prepare(hpfsc::Bindings{}.set("N", 512));
//   exec.set_array("U", [](int i, int j, int) { return i + j; });
//   auto stats = exec.run(/*iterations=*/100);
#pragma once

#include "driver/compiler.hpp"
#include "driver/paper_kernels.hpp"
#include "executor/execution.hpp"
#include "simpi/config.hpp"
#include "simpi/machine.hpp"

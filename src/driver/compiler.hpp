// The public compiler driver: HPF source text in, executable SPMD
// program (plus per-phase listings and optimization statistics) out.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "codegen/lower_spmd.hpp"
#include "codegen/spmd_program.hpp"
#include "obs/obs.hpp"
#include "passes/pipeline.hpp"
#include "support/diagnostics.hpp"

namespace hpfsc {

/// Compilation failed; `what()` carries all rendered diagnostics.
/// Construction notes a "plan-compile-failure" incident on the flight
/// recorder, so the spans of the failing pipeline are preserved for a
/// postmortem before the unwind discards them.
class CompileError : public std::runtime_error {
 public:
  explicit CompileError(std::string diagnostics)
      : std::runtime_error(diagnostics) {
    obs::FlightRecorder::instance().note_incident("plan-compile-failure",
                                                  what());
  }
};

struct CompilerOptions {
  passes::PassOptions passes;
  /// xlhpf-like baseline (paper Figures 11, 18): one temporary per
  /// CSHIFT and one loop+temporary per expression operation; none of
  /// the paper's optimizations run.
  bool xlhpf_mode = false;

  /// Observability session (not owned).  When set and enabled, the
  /// driver emits spans for every compilation stage — lex+parse, lower,
  /// each optimization pass (with IR deltas), SPMD code generation —
  /// on the host track.  Null = no instrumentation overhead.
  obs::TraceSession* trace = nullptr;

  /// The paper's step-wise optimization levels O0..O4 (Figure 17).
  static CompilerOptions level(int n) {
    CompilerOptions o;
    o.passes = passes::PassOptions::level(n);
    return o;
  }
  /// Temporaries whose live ranges overlap (all shifts of a single
  /// statement) each get their own array; only across statements can
  /// storage be recycled — reproducing the paper's Section 4 contrast
  /// of ~12 temporaries for the single-statement 9-point stencil versus
  /// 3 for Problem 9.
  static CompilerOptions xlhpf_like() {
    CompilerOptions o;
    o.passes = passes::PassOptions::level(0);
    o.passes.normalize.reuse_temps = true;
    o.xlhpf_mode = true;
    return o;
  }
};

struct CompiledProgram {
  spmd::Program program;
  /// Pretty-printed program after each phase (paper Figures 12-16).
  std::vector<passes::PhaseListing> listings;
  passes::PipelineResult pipeline;
  /// PE grid requested by a !HPF$ PROCESSORS directive, if any.
  std::optional<std::pair<int, int>> processors;
  /// Warnings and notes produced during compilation.
  std::string diagnostics;
};

class Compiler {
 public:
  /// Compiles HPF source text.  Throws CompileError on any error.
  [[nodiscard]] CompiledProgram compile(
      std::string_view source,
      const CompilerOptions& options = CompilerOptions::level(4)) const;

  /// Compiles one source under several option sets, running the
  /// frontend (lex + parse + lower) exactly once and cloning the
  /// lowered IR per variant.  Result i corresponds to variants[i].
  /// This is the differential-testing entry point: an oracle that
  /// compiles each program at O0..O4 x tiers would otherwise pay the
  /// frontend once per cell of the matrix.  Throws CompileError on any
  /// error (a frontend error aborts the whole batch).
  [[nodiscard]] std::vector<CompiledProgram> compile_batch(
      std::string_view source,
      const std::vector<CompilerOptions>& variants) const;
};

}  // namespace hpfsc

// The paper's benchmark kernels as HPF source text (Figures 1-3 and the
// array-syntax 9-point stencil of Section 5), shared by tests, examples
// and benchmarks.  N is a runtime-bound parameter (no initializer).
#pragma once

namespace hpfsc::kernels {

/// Figure 1: 5-point stencil in array syntax.
inline constexpr const char* kFivePointArraySyntax = R"(
PROGRAM FIVEPT
INTEGER N
REAL C1, C2, C3, C4, C5
REAL SRC(N,N), DST(N,N)
!HPF$ DISTRIBUTE SRC(BLOCK,BLOCK)
!HPF$ DISTRIBUTE DST(BLOCK,BLOCK)
DST(2:N-1,2:N-1) = C1 * SRC(1:N-2,2:N-1)  &
                 + C2 * SRC(2:N-1,1:N-2)  &
                 + C3 * SRC(2:N-1,2:N-1)  &
                 + C4 * SRC(3:N  ,2:N-1)  &
                 + C5 * SRC(2:N-1,3:N  )
END
)";

/// Figure 2: 9-point stencil as a single statement of CSHIFTs (twelve
/// CSHIFT intrinsics; all-ones coefficients so that the three 9-point
/// specifications compute the same function).
inline constexpr const char* kNinePointCShift = R"(
PROGRAM NINEPT
INTEGER N
REAL U(N,N), T(N,N)
!HPF$ DISTRIBUTE U(BLOCK,BLOCK)
!HPF$ DISTRIBUTE T(BLOCK,BLOCK)
T =     CSHIFT(CSHIFT(U,-1,1),-1,2)  &
      + CSHIFT(U,-1,1)               &
      + CSHIFT(CSHIFT(U,-1,1),+1,2)  &
      + CSHIFT(U,-1,2)               &
      + U                            &
      + CSHIFT(U,+1,2)               &
      + CSHIFT(CSHIFT(U,+1,1),-1,2)  &
      + CSHIFT(U,+1,1)               &
      + CSHIFT(CSHIFT(U,+1,1),+1,2)
END
)";

/// Figure 3: Problem 9 of the Purdue Set (multi-statement 9-point
/// stencil with hand-done CSE, as adapted for Fortran D benchmarking).
inline constexpr const char* kProblem9 = R"(
PROGRAM PROBLEM9
INTEGER N
REAL U(N,N), T(N,N), RIP(N,N), RIN(N,N)
!HPF$ DISTRIBUTE U(BLOCK,BLOCK)
!HPF$ DISTRIBUTE T(BLOCK,BLOCK)
!HPF$ DISTRIBUTE RIP(BLOCK,BLOCK)
!HPF$ DISTRIBUTE RIN(BLOCK,BLOCK)
RIP = CSHIFT(U,SHIFT=+1,DIM=1)
RIN = CSHIFT(U,SHIFT=-1,DIM=1)
T   = U + RIP + RIN
T   = T + CSHIFT(U,SHIFT=-1,DIM=2)
T   = T + CSHIFT(U,SHIFT=+1,DIM=2)
T   = T + CSHIFT(RIP,SHIFT=-1,DIM=2)
T   = T + CSHIFT(RIP,SHIFT=+1,DIM=2)
T   = T + CSHIFT(RIN,SHIFT=-1,DIM=2)
T   = T + CSHIFT(RIN,SHIFT=+1,DIM=2)
END
)";

/// Section 5's third specification: 9-point stencil in array syntax,
/// computing only the interior elements 2:N-1 in each dimension.
inline constexpr const char* kNinePointArraySyntax = R"(
PROGRAM NINEPTAS
INTEGER N
REAL U(N,N), T(N,N)
!HPF$ DISTRIBUTE U(BLOCK,BLOCK)
!HPF$ DISTRIBUTE T(BLOCK,BLOCK)
T(2:N-1,2:N-1) = U(1:N-2,1:N-2) + U(1:N-2,2:N-1) + U(1:N-2,3:N)  &
               + U(2:N-1,1:N-2) + U(2:N-1,2:N-1) + U(2:N-1,3:N)  &
               + U(3:N  ,1:N-2) + U(3:N  ,2:N-1) + U(3:N  ,3:N)
END
)";

/// Jacobi 4-point relaxation with a time-step loop, used by the examples
/// and the control-flow tests (offset arrays across DO loops).
inline constexpr const char* kJacobiTimeLoop = R"(
PROGRAM JACOBI
INTEGER N, NSTEPS
REAL U(N,N), T(N,N)
!HPF$ DISTRIBUTE U(BLOCK,BLOCK)
!HPF$ DISTRIBUTE T(BLOCK,BLOCK)
DO K = 1, NSTEPS
  T = 0.25 * (CSHIFT(U,-1,1) + CSHIFT(U,+1,1) + CSHIFT(U,-1,2) + CSHIFT(U,+1,2))
  U = T
ENDDO
END
)";

}  // namespace hpfsc::kernels

#include "codegen/spmd_program.hpp"

#include <unordered_map>

namespace hpfsc::spmd {

int Program::find_array(const std::string& name) const {
  for (std::size_t i = 0; i < arrays.size(); ++i) {
    if (arrays[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int Program::find_scalar(const std::string& name) const {
  for (std::size_t i = 0; i < scalars.size(); ++i) {
    if (scalars[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

namespace {
void summarize(const std::vector<Op>& ops, Program::CommSummary& out) {
  for (const Op& op : ops) {
    switch (op.kind) {
      case OpKind::FullShift:
        ++out.full_shifts;
        break;
      case OpKind::OverlapShift:
        ++out.overlap_shifts;
        break;
      case OpKind::If:
        summarize(op.then_ops, out);
        summarize(op.else_ops, out);
        break;
      case OpKind::Do:
        summarize(op.body, out);
        break;
      default:
        break;
    }
  }
}
}  // namespace

Program::CommSummary Program::comm_summary() const {
  CommSummary out;
  summarize(ops, out);
  return out;
}

namespace {

using NameMap = std::unordered_map<std::string, std::string>;

void rename_bound(ir::AffineBound& b, const NameMap& map) {
  if (b.param.empty()) return;
  auto it = map.find(b.param);
  if (it != map.end()) b.param = it->second;
}

void rename_op_bounds(std::vector<Op>& ops, const NameMap& map) {
  for (Op& op : ops) {
    for (ir::SectionRange& r : op.bounds) {
      rename_bound(r.lo, map);
      rename_bound(r.hi, map);
    }
    rename_bound(op.lo, map);
    rename_bound(op.hi, map);
    rename_op_bounds(op.then_ops, map);
    rename_op_bounds(op.else_ops, map);
    rename_op_bounds(op.body, map);
  }
}

}  // namespace

Program rename_interface(const Program& prog,
                         const std::string& program_name,
                         const std::vector<std::string>& scalar_names,
                         const std::vector<std::string>& array_names) {
  Program out = prog;
  out.name = program_name;
  NameMap scalar_map;
  for (std::size_t i = 0;
       i < scalar_names.size() && i < out.scalars.size(); ++i) {
    if (out.scalars[i].name != scalar_names[i]) {
      scalar_map.emplace(out.scalars[i].name, scalar_names[i]);
      out.scalars[i].name = scalar_names[i];
    }
  }
  for (std::size_t i = 0; i < array_names.size() && i < out.arrays.size();
       ++i) {
    out.arrays[i].name = array_names[i];
  }
  if (!scalar_map.empty()) {
    for (ArraySpec& a : out.arrays) {
      for (ir::AffineBound& b : a.extent) rename_bound(b, scalar_map);
    }
    rename_op_bounds(out.ops, scalar_map);
  }
  return out;
}

}  // namespace hpfsc::spmd

#include "codegen/spmd_program.hpp"

namespace hpfsc::spmd {

int Program::find_array(const std::string& name) const {
  for (std::size_t i = 0; i < arrays.size(); ++i) {
    if (arrays[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int Program::find_scalar(const std::string& name) const {
  for (std::size_t i = 0; i < scalars.size(); ++i) {
    if (scalars[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

namespace {
void summarize(const std::vector<Op>& ops, Program::CommSummary& out) {
  for (const Op& op : ops) {
    switch (op.kind) {
      case OpKind::FullShift:
        ++out.full_shifts;
        break;
      case OpKind::OverlapShift:
        ++out.overlap_shifts;
        break;
      case OpKind::If:
        summarize(op.then_ops, out);
        summarize(op.else_ops, out);
        break;
      case OpKind::Do:
        summarize(op.body, out);
        break;
      default:
        break;
    }
  }
}
}  // namespace

Program::CommSummary Program::comm_summary() const {
  CommSummary out;
  summarize(ops, out);
  return out;
}

}  // namespace hpfsc::spmd

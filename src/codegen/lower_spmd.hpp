// Lowers the optimized IR to an executable SPMD program.
//
// Two modes:
//  * normal — the pipeline has already scalarized compute statements to
//    loop nests; statements map 1:1 onto ops.
//  * expr_temps — models the xlhpf-like baseline the paper measures
//    against (Figures 11, 18): no scalarization has run, and every
//    array-expression operation materializes a full temporary array in
//    its own loop nest (classic Fortran90 semantics), with shift
//    intrinsics executed as full CSHIFTs into temporaries.
#pragma once

#include "codegen/spmd_program.hpp"
#include "ir/program.hpp"
#include "support/diagnostics.hpp"

namespace hpfsc::codegen {

struct LowerOptions {
  bool expr_temps = false;
};

[[nodiscard]] spmd::Program lower_to_spmd(const ir::Program& program,
                                          const LowerOptions& opts,
                                          DiagnosticEngine& diags);

}  // namespace hpfsc::codegen

// Pretty printer for the executable SPMD program: renders the node
// program each PE runs in a Fortran77+MPI-flavored pseudo-code, the way
// the paper presents generated node code.  Used by hpfsc_dump and the
// codegen tests; purely for humans (the executor consumes the op list
// directly).
#pragma once

#include <string>

#include "codegen/spmd_program.hpp"

namespace hpfsc::codegen {

class SpmdPrinter {
 public:
  explicit SpmdPrinter(const spmd::Program& program) : program_(program) {}

  /// Whole node program: array table then the op list.
  [[nodiscard]] std::string print() const;

  /// Just the op list.
  [[nodiscard]] std::string print_ops() const;

 private:
  void print_ops(const std::vector<spmd::Op>& ops, int indent,
                 std::string& out) const;
  [[nodiscard]] std::string expr_str(const spmd::ScalarExpr& code) const;
  [[nodiscard]] std::string rpn_str(const std::vector<spmd::Instr>& code,
                                    const std::vector<spmd::Load>* loads)
      const;
  [[nodiscard]] std::string kernel_str(const spmd::Op& nest,
                                       const spmd::Kernel& k) const;
  [[nodiscard]] std::string load_str(const spmd::Load& l) const;
  [[nodiscard]] std::string array_name(int id) const;
  [[nodiscard]] std::string scalar_name(int id) const;

  const spmd::Program& program_;
};

}  // namespace hpfsc::codegen

#include "codegen/spmd_printer.hpp"

#include <array>
#include <stdexcept>
#include <vector>

#include "support/text.hpp"

namespace hpfsc::codegen {

namespace {

constexpr std::array<const char*, 3> kIndexVars{"i", "j", "k"};

std::string indent_str(int n) {
  return std::string(static_cast<std::size_t>(n) * 2, ' ');
}

std::string element_str(const std::string& name, const spmd::Offset& off,
                        int rank) {
  std::string out = name + "(";
  for (int d = 0; d < rank; ++d) {
    if (d != 0) out += ",";
    out += kIndexVars[static_cast<std::size_t>(d)];
    if (off[d] > 0) out += "+" + std::to_string(off[d]);
    if (off[d] < 0) out += std::to_string(off[d]);
  }
  out += ")";
  return out;
}

}  // namespace

std::string SpmdPrinter::array_name(int id) const {
  return program_.arrays.at(static_cast<std::size_t>(id)).name;
}

std::string SpmdPrinter::scalar_name(int id) const {
  return program_.scalars.at(static_cast<std::size_t>(id)).name;
}

std::string SpmdPrinter::print() const {
  std::string out;
  for (const spmd::ArraySpec& a : program_.arrays) {
    if (a.eliminated) {
      out += "* " + a.name + ": storage eliminated (offset array)\n";
      continue;
    }
    out += "* " + a.name + "(";
    for (int d = 0; d < a.rank; ++d) {
      if (d != 0) out += ",";
      out += a.extent[d].str();
    }
    out += ") ";
    out += a.prealloc ? "program array" : "temporary";
    bool halo = false;
    for (int d = 0; d < a.rank; ++d) {
      halo = halo || a.halo_lo[d] != 0 || a.halo_hi[d] != 0;
    }
    if (halo) {
      out += ", overlap areas [";
      for (int d = 0; d < a.rank; ++d) {
        if (d != 0) out += ",";
        out += std::to_string(a.halo_lo[d]) + ":" +
               std::to_string(a.halo_hi[d]);
      }
      out += "]";
    }
    out += "\n";
  }
  out += "\n";
  out += print_ops();
  return out;
}

std::string SpmdPrinter::print_ops() const {
  std::string out;
  print_ops(program_.ops, 0, out);
  return out;
}

void SpmdPrinter::print_ops(const std::vector<spmd::Op>& ops, int indent,
                            std::string& out) const {
  const std::string pad = indent_str(indent);
  for (const spmd::Op& op : ops) {
    switch (op.kind) {
      case spmd::OpKind::Alloc: {
        std::vector<std::string> names;
        for (int a : op.arrays) names.push_back(array_name(a));
        out += pad + "ALLOCATE " + join(names, ", ") + "\n";
        break;
      }
      case spmd::OpKind::Free: {
        std::vector<std::string> names;
        for (int a : op.arrays) names.push_back(array_name(a));
        out += pad + "DEALLOCATE " + join(names, ", ") + "\n";
        break;
      }
      case spmd::OpKind::FullShift:
        out += pad + "CALL MPI_SENDRECV_SHIFT(" + array_name(op.array) +
               " <- " + array_name(op.src) +
               ", SHIFT=" + signed_str(op.shift) +
               ", DIM=" + std::to_string(op.dim + 1) +
               (op.shift_kind == simpi::ShiftKind::EndOff ? ", EOSHIFT"
                                                          : "") +
               ")   ! inter + intraprocessor movement\n";
        break;
      case spmd::OpKind::OverlapShift: {
        out += pad + "CALL OVERLAP_SHIFT(" + array_name(op.array) +
               ", SHIFT=" + signed_str(op.shift) +
               ", DIM=" + std::to_string(op.dim + 1);
        if (op.rsd.any()) {
          out += ", RSD=[";
          const spmd::ArraySpec& spec =
              program_.arrays.at(static_cast<std::size_t>(op.array));
          for (int d = 0; d < spec.rank; ++d) {
            if (d != 0) out += ",";
            if (d == op.dim) {
              out += "*";
            } else {
              out += ir::AffineBound(1 - op.rsd.lo[d]).str() + ":" +
                     spec.extent[d].plus(op.rsd.hi[d]).str();
            }
          }
          out += "]";
        }
        out += ")   ! boundary exchange only\n";
        break;
      }
      case spmd::OpKind::CopyOffset: {
        const spmd::ArraySpec& spec =
            program_.arrays.at(static_cast<std::size_t>(op.array));
        std::string src = array_name(op.src) + "<";
        for (int d = 0; d < spec.rank; ++d) {
          if (d != 0) src += ",";
          src += op.copy_offset[d] == 0 ? "0" : signed_str(op.copy_offset[d]);
        }
        src += ">";
        out += pad + array_name(op.array) + " = " + src +
               "   ! compensation copy\n";
        break;
      }
      case spmd::OpKind::ScalarAssign:
        out += pad + scalar_name(op.scalar) + " = " + expr_str(op.expr) +
               "\n";
        break;
      case spmd::OpKind::If:
        out += pad + "IF (" + expr_str(op.cond) + ") THEN\n";
        print_ops(op.then_ops, indent + 1, out);
        if (!op.else_ops.empty()) {
          out += pad + "ELSE\n";
          print_ops(op.else_ops, indent + 1, out);
        }
        out += pad + "ENDIF\n";
        break;
      case spmd::OpKind::Do:
        out += pad + "DO " + scalar_name(op.var) + " = " + op.lo.str() +
               ", " + op.hi.str() + "\n";
        print_ops(op.body, indent + 1, out);
        out += pad + "ENDDO\n";
        break;
      case spmd::OpKind::LoopNest: {
        int level = indent;
        for (int n = 0; n < op.rank; ++n) {
          const int d = op.loop_order[static_cast<std::size_t>(n)];
          out += indent_str(level) + "DO " +
                 kIndexVars[static_cast<std::size_t>(d)] + " = max(" +
                 op.bounds[static_cast<std::size_t>(d)].lo.str() +
                 ", my_lo" + std::to_string(d + 1) + "), min(" +
                 op.bounds[static_cast<std::size_t>(d)].hi.str() +
                 ", my_hi" + std::to_string(d + 1) + ")";
          if (n == 0 && op.unroll > 1) {
            out += ", " + std::to_string(op.unroll) + "   ! unroll-and-jam";
          }
          out += "\n";
          ++level;
        }
        for (const spmd::Kernel& k : op.kernels) {
          out += indent_str(level) + kernel_str(op, k) + "\n";
        }
        if (op.scalar_replace) {
          out += indent_str(level) + "! scalar replacement applied\n";
        }
        for (int n = op.rank - 1; n >= 0; --n) {
          --level;
          out += indent_str(level) + "ENDDO\n";
        }
        break;
      }
    }
  }
}

std::string SpmdPrinter::load_str(const spmd::Load& l) const {
  const spmd::ArraySpec& spec =
      program_.arrays.at(static_cast<std::size_t>(l.array));
  return element_str(spec.name, l.offset, spec.rank);
}

std::string SpmdPrinter::rpn_str(const std::vector<spmd::Instr>& code,
                                 const std::vector<spmd::Load>* loads) const {
  // Render the RPN back to infix, tracking precedence so parentheses
  // appear exactly where needed (atoms = 9, * / = 2, + - = 1,
  // relationals = 0).
  struct Entry {
    std::string text;
    int prec;
  };
  std::vector<Entry> stack;
  auto atom = [&](std::string text) {
    stack.push_back(Entry{std::move(text), 9});
  };
  auto binop = [&](const char* sym, int prec, bool right_assoc_sensitive) {
    Entry r = stack.back();
    stack.pop_back();
    Entry l = stack.back();
    stack.pop_back();
    std::string ls =
        l.prec < prec ? "(" + l.text + ")" : l.text;
    std::string rs = (r.prec < prec ||
                      (right_assoc_sensitive && r.prec == prec))
                         ? "(" + r.text + ")"
                         : r.text;
    std::string sep = prec >= 2 ? "" : " ";
    stack.push_back(Entry{ls + sep + sym + sep + rs, prec});
  };
  for (const spmd::Instr& in : code) {
    switch (in.op) {
      case spmd::Instr::Op::PushConst: {
        std::string v = std::to_string(in.value);
        while (v.size() > 3 && v.back() == '0' && v[v.size() - 2] != '.') {
          v.pop_back();
        }
        atom(std::move(v));
        break;
      }
      case spmd::Instr::Op::PushScalar:
        atom(scalar_name(in.idx));
        break;
      case spmd::Instr::Op::PushLoad:
        if (loads == nullptr) {
          throw std::logic_error("array load outside a loop nest");
        }
        atom(load_str(loads->at(static_cast<std::size_t>(in.idx))));
        break;
      case spmd::Instr::Op::Add: binop("+", 1, false); break;
      case spmd::Instr::Op::Sub: binop("-", 1, true); break;
      case spmd::Instr::Op::Mul: binop("*", 2, false); break;
      case spmd::Instr::Op::Div: binop("/", 2, true); break;
      case spmd::Instr::Op::Neg: {
        std::string inner = stack.back().prec < 9
                                ? "(" + stack.back().text + ")"
                                : stack.back().text;
        stack.back() = Entry{"-" + inner, 2};
        break;
      }
      case spmd::Instr::Op::Lt: binop("<", 0, false); break;
      case spmd::Instr::Op::Le: binop("<=", 0, false); break;
      case spmd::Instr::Op::Gt: binop(">", 0, false); break;
      case spmd::Instr::Op::Ge: binop(">=", 0, false); break;
      case spmd::Instr::Op::Eq: binop("==", 0, false); break;
      case spmd::Instr::Op::Ne: binop("/=", 0, false); break;
    }
  }
  if (stack.size() != 1) {
    throw std::logic_error("malformed kernel bytecode");
  }
  return stack[0].text;
}

std::string SpmdPrinter::kernel_str(const spmd::Op& nest,
                                    const spmd::Kernel& k) const {
  const spmd::ArraySpec& lhs =
      program_.arrays.at(static_cast<std::size_t>(k.lhs_array));
  return element_str(lhs.name, k.lhs_offset, lhs.rank) + " = " +
         rpn_str(k.code, &nest.loads);
}

std::string SpmdPrinter::expr_str(const spmd::ScalarExpr& code) const {
  if (code.empty()) return "0.0";
  return rpn_str(code, nullptr);
}

}  // namespace hpfsc::codegen

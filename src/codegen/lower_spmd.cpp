#include "codegen/lower_spmd.hpp"

#include <algorithm>

namespace hpfsc::codegen {

namespace {

using ir::AffineBound;
using spmd::Instr;
using spmd::Op;
using spmd::OpKind;

class Lowerer {
 public:
  Lowerer(const ir::Program& program, const LowerOptions& opts,
          DiagnosticEngine& diags)
      : prog_(program), opts_(opts), diags_(diags) {}

  spmd::Program run() {
    out_.name = prog_.name;
    for (int i = 0; i < prog_.symbols.num_scalars(); ++i) {
      const ir::ScalarSymbol& s = prog_.symbols.scalar(i);
      out_.scalars.push_back(spmd::ScalarSpec{
          s.name, s.type == ir::ScalarType::Integer, s.init});
    }
    for (int i = 0; i < prog_.symbols.num_arrays(); ++i) {
      out_.arrays.push_back(spec_from_symbol(prog_.symbols.array(i)));
    }
    lower_block(prog_.body, out_.ops);
    return std::move(out_);
  }

 private:
  static spmd::ArraySpec spec_from_symbol(const ir::ArraySymbol& sym) {
    spmd::ArraySpec spec;
    spec.name = sym.name;
    spec.rank = sym.rank;
    spec.extent = sym.extent;
    spec.dist = sym.dist;
    spec.halo_lo = sym.halo_lo;
    spec.halo_hi = sym.halo_hi;
    spec.is_temp = sym.is_temp;
    spec.eliminated = sym.eliminated;
    spec.prealloc = !sym.is_temp && !sym.eliminated;
    return spec;
  }

  // ----------------------------------------------------- expressions --
  /// Builds scalar-expression bytecode (no array references allowed).
  spmd::ScalarExpr scalar_expr(const ir::Expr& e) {
    spmd::ScalarExpr code;
    emit_expr(e, code, nullptr);
    return code;
  }

  /// Appends RPN for `e`.  Array references intern into `loads` (null =
  /// scalar context, where they are an error).
  void emit_expr(const ir::Expr& e, std::vector<Instr>& code,
                 std::vector<spmd::Load>* loads) {
    switch (e.kind) {
      case ir::ExprKind::Constant:
        code.push_back(Instr{Instr::Op::PushConst, 0, e.value});
        return;
      case ir::ExprKind::ScalarRef:
        code.push_back(Instr{Instr::Op::PushScalar, e.scalar, 0.0});
        return;
      case ir::ExprKind::ArrayRefK: {
        if (loads == nullptr) {
          diags_.error(e.loc, "array reference in scalar context");
          code.push_back(Instr{Instr::Op::PushConst, 0, 0.0});
          return;
        }
        code.push_back(Instr{Instr::Op::PushLoad,
                             intern_load(*loads, e.ref.array, e.ref.offset),
                             0.0});
        return;
      }
      case ir::ExprKind::Binary: {
        emit_expr(*e.lhs, code, loads);
        emit_expr(*e.rhs, code, loads);
        code.push_back(Instr{binary_op(e.op), 0, 0.0});
        return;
      }
      case ir::ExprKind::Unary:
        emit_expr(*e.lhs, code, loads);
        code.push_back(Instr{Instr::Op::Neg, 0, 0.0});
        return;
      case ir::ExprKind::Shift:
        diags_.error(e.loc, "internal: shift survived normalization");
        code.push_back(Instr{Instr::Op::PushConst, 0, 0.0});
        return;
    }
  }

  static Instr::Op binary_op(ir::BinaryOp op) {
    switch (op) {
      case ir::BinaryOp::Add: return Instr::Op::Add;
      case ir::BinaryOp::Sub: return Instr::Op::Sub;
      case ir::BinaryOp::Mul: return Instr::Op::Mul;
      case ir::BinaryOp::Div: return Instr::Op::Div;
      case ir::BinaryOp::Lt: return Instr::Op::Lt;
      case ir::BinaryOp::Le: return Instr::Op::Le;
      case ir::BinaryOp::Gt: return Instr::Op::Gt;
      case ir::BinaryOp::Ge: return Instr::Op::Ge;
      case ir::BinaryOp::Eq: return Instr::Op::Eq;
      case ir::BinaryOp::Ne: return Instr::Op::Ne;
    }
    return Instr::Op::Add;
  }

  static int intern_load(std::vector<spmd::Load>& loads, int array,
                         spmd::Offset offset) {
    spmd::Load l{array, offset};
    auto it = std::find(loads.begin(), loads.end(), l);
    if (it != loads.end()) return static_cast<int>(it - loads.begin());
    loads.push_back(l);
    return static_cast<int>(loads.size() - 1);
  }

  // ------------------------------------------------------ statements --
  void lower_block(const ir::Block& block, std::vector<Op>& out) {
    for (const ir::StmtPtr& sp : block) lower_stmt(*sp, out);
  }

  void lower_stmt(const ir::Stmt& s, std::vector<Op>& out) {
    switch (s.kind) {
      case ir::StmtKind::Alloc: {
        Op op;
        op.kind = OpKind::Alloc;
        op.arrays = static_cast<const ir::AllocStmt&>(s).arrays;
        out.push_back(std::move(op));
        return;
      }
      case ir::StmtKind::Free: {
        Op op;
        op.kind = OpKind::Free;
        op.arrays = static_cast<const ir::FreeStmt&>(s).arrays;
        out.push_back(std::move(op));
        return;
      }
      case ir::StmtKind::ShiftAssign: {
        const auto& stmt = static_cast<const ir::ShiftAssignStmt&>(s);
        Op op;
        op.kind = OpKind::FullShift;
        op.array = stmt.dst;
        op.src = stmt.src.array;
        op.shift = stmt.shift;
        op.dim = stmt.dim;
        op.shift_kind = stmt.intrinsic == ir::ShiftIntrinsic::CShift
                            ? simpi::ShiftKind::Circular
                            : simpi::ShiftKind::EndOff;
        if (stmt.boundary) op.boundary = scalar_expr(*stmt.boundary);
        if (stmt.src.has_offset()) {
          diags_.error(s.loc,
                       "internal: full shift of an offset reference");
        }
        out.push_back(std::move(op));
        return;
      }
      case ir::StmtKind::OverlapShift: {
        const auto& stmt = static_cast<const ir::OverlapShiftStmt&>(s);
        Op op;
        op.kind = OpKind::OverlapShift;
        op.array = stmt.src.array;
        op.shift = stmt.shift;
        // A chained shift operates on an already-shifted view: its new
        // overlap cells sit beyond the base offset, so the fill depth
        // is base + shift (when they point the same way; a shift back
        // toward the interior needs no cells the chain hasn't filled).
        {
          const int base = stmt.src.offset[stmt.dim];
          if (base != 0 && (base > 0) == (stmt.shift > 0)) op.shift += base;
        }
        op.dim = stmt.dim;
        op.rsd = stmt.rsd;
        op.shift_kind = stmt.shift_kind;
        if (stmt.boundary) op.boundary = scalar_expr(*stmt.boundary);
        // Multi-offset annotations were folded into RSDs by unioning;
        // if unioning did not run, the offset still implies which
        // overlap data the transfer must carry.
        for (int d = 0; d < ir::kMaxRank; ++d) {
          if (d == stmt.dim) continue;
          if (stmt.src.offset[d] > 0) {
            op.rsd.hi[d] = std::max(op.rsd.hi[d], stmt.src.offset[d]);
          } else if (stmt.src.offset[d] < 0) {
            op.rsd.lo[d] = std::max(op.rsd.lo[d], -stmt.src.offset[d]);
          }
        }
        out.push_back(std::move(op));
        return;
      }
      case ir::StmtKind::Copy: {
        const auto& stmt = static_cast<const ir::CopyStmt&>(s);
        Op op;
        op.kind = OpKind::CopyOffset;
        op.array = stmt.dst;
        op.src = stmt.src.array;
        op.copy_offset = stmt.src.offset;
        out.push_back(std::move(op));
        return;
      }
      case ir::StmtKind::ScalarAssign: {
        const auto& stmt = static_cast<const ir::ScalarAssignStmt&>(s);
        Op op;
        op.kind = OpKind::ScalarAssign;
        op.scalar = stmt.scalar;
        op.expr = scalar_expr(*stmt.rhs);
        out.push_back(std::move(op));
        return;
      }
      case ir::StmtKind::If: {
        const auto& stmt = static_cast<const ir::IfStmt&>(s);
        Op op;
        op.kind = OpKind::If;
        op.cond = scalar_expr(*stmt.cond);
        lower_block(stmt.then_block, op.then_ops);
        lower_block(stmt.else_block, op.else_ops);
        out.push_back(std::move(op));
        return;
      }
      case ir::StmtKind::Do: {
        const auto& stmt = static_cast<const ir::DoStmt&>(s);
        Op op;
        op.kind = OpKind::Do;
        op.var = stmt.var;
        op.lo = stmt.lo;
        op.hi = stmt.hi;
        lower_block(stmt.body, op.body);
        out.push_back(std::move(op));
        return;
      }
      case ir::StmtKind::LoopNest: {
        const auto& nest = static_cast<const ir::LoopNestStmt&>(s);
        Op op;
        op.kind = OpKind::LoopNest;
        op.rank = nest.rank;
        op.bounds = nest.bounds;
        op.loop_order = nest.loop_order;
        op.unroll = nest.unroll_jam;
        op.scalar_replace = nest.scalar_replaced;
        for (const ir::LoopNestStmt::BodyAssign& b : nest.body) {
          spmd::Kernel k;
          k.lhs_array = b.lhs.array;
          k.lhs_offset = b.lhs.offset;
          emit_expr(*b.rhs, k.code, &op.loads);
          op.kernels.push_back(std::move(k));
        }
        out.push_back(std::move(op));
        return;
      }
      case ir::StmtKind::ArrayAssign: {
        const auto& stmt = static_cast<const ir::ArrayAssignStmt&>(s);
        if (opts_.expr_temps) {
          lower_assign_expr_temps(stmt, out);
        } else {
          diags_.error(s.loc,
                       "internal: unscalarized array assignment reached "
                       "code generation");
        }
        return;
      }
    }
  }

  // --------------------------------------- xlhpf-like expression temps --
  /// Value produced by a subexpression: either inline scalar bytecode or
  /// a whole array.
  struct Operand {
    bool is_array = false;
    int array = -1;
    std::vector<Instr> scalar_code;  ///< when !is_array
  };

  /// Creates an expression temporary shaped like the statement target.
  int new_expr_temp(const ir::ArraySymbol& model) {
    spmd::ArraySpec spec;
    spec.name = "ETMP" + std::to_string(++expr_temp_counter_);
    spec.rank = model.rank;
    spec.extent = model.extent;
    spec.dist = model.dist;
    spec.is_temp = true;
    spec.prealloc = false;
    out_.arrays.push_back(spec);
    return static_cast<int>(out_.arrays.size() - 1);
  }

  std::array<ir::SectionRange, ir::kMaxRank> assign_bounds(
      const ir::ArrayRef& lhs) {
    const ir::ArraySymbol& sym = prog_.symbols.array(lhs.array);
    std::array<ir::SectionRange, ir::kMaxRank> bounds;
    for (int d = 0; d < sym.rank; ++d) {
      if (lhs.whole_array()) {
        bounds[d] = ir::SectionRange{AffineBound(1), sym.extent[d]};
      } else {
        bounds[d] = lhs.section[static_cast<std::size_t>(d)];
      }
    }
    return bounds;
  }

  /// Emits one single-kernel loop nest: dst = code over `bounds`.
  void emit_nest(int dst, const std::array<ir::SectionRange, ir::kMaxRank>&
                              bounds,
                 int rank, std::vector<Instr> code,
                 std::vector<spmd::Load> loads, std::vector<Op>& out) {
    Op op;
    op.kind = OpKind::LoopNest;
    op.rank = rank;
    op.bounds = bounds;
    op.loads = std::move(loads);
    spmd::Kernel k;
    k.lhs_array = dst;
    k.code = std::move(code);
    op.kernels.push_back(std::move(k));
    out.push_back(std::move(op));
  }

  void lower_assign_expr_temps(const ir::ArrayAssignStmt& stmt,
                               std::vector<Op>& out) {
    const ir::ArraySymbol& lhs_sym = prog_.symbols.array(stmt.lhs.array);
    const auto bounds = assign_bounds(stmt.lhs);
    const int rank = lhs_sym.rank;

    // Recursive evaluation; every array-valued operation gets its own
    // nest and temporary (Fortran90 expression semantics).
    auto eval = [&](auto&& self, const ir::Expr& e) -> Operand {
      switch (e.kind) {
        case ir::ExprKind::Constant: {
          Operand o;
          o.scalar_code.push_back(Instr{Instr::Op::PushConst, 0, e.value});
          return o;
        }
        case ir::ExprKind::ScalarRef: {
          Operand o;
          o.scalar_code.push_back(Instr{Instr::Op::PushScalar, e.scalar, 0.0});
          return o;
        }
        case ir::ExprKind::ArrayRefK: {
          Operand o;
          o.is_array = true;
          o.array = e.ref.array;
          return o;
        }
        case ir::ExprKind::Unary: {
          Operand a = self(self, *e.lhs);
          if (!a.is_array) {
            a.scalar_code.push_back(Instr{Instr::Op::Neg, 0, 0.0});
            return a;
          }
          int t = new_expr_temp(lhs_sym);
          Op alloc;
          alloc.kind = OpKind::Alloc;
          alloc.arrays = {t};
          out.push_back(std::move(alloc));
          std::vector<spmd::Load> loads;
          std::vector<Instr> code;
          code.push_back(Instr{Instr::Op::PushLoad,
                               intern_load(loads, a.array, {0, 0, 0}), 0.0});
          code.push_back(Instr{Instr::Op::Neg, 0, 0.0});
          emit_nest(t, bounds, rank, std::move(code), std::move(loads), out);
          release_temp(a.array, out);
          Operand o;
          o.is_array = true;
          o.array = t;
          return o;
        }
        case ir::ExprKind::Binary: {
          Operand a = self(self, *e.lhs);
          Operand b = self(self, *e.rhs);
          if (!a.is_array && !b.is_array) {
            Operand o;
            o.scalar_code = std::move(a.scalar_code);
            o.scalar_code.insert(o.scalar_code.end(),
                                 b.scalar_code.begin(),
                                 b.scalar_code.end());
            o.scalar_code.push_back(Instr{binary_op(e.op), 0, 0.0});
            return o;
          }
          int t = new_expr_temp(lhs_sym);
          Op alloc;
          alloc.kind = OpKind::Alloc;
          alloc.arrays = {t};
          out.push_back(std::move(alloc));
          std::vector<spmd::Load> loads;
          std::vector<Instr> code;
          auto push_operand = [&](Operand& o2) {
            if (o2.is_array) {
              code.push_back(
                  Instr{Instr::Op::PushLoad,
                        intern_load(loads, o2.array, {0, 0, 0}), 0.0});
            } else {
              code.insert(code.end(), o2.scalar_code.begin(),
                          o2.scalar_code.end());
            }
          };
          push_operand(a);
          push_operand(b);
          code.push_back(Instr{binary_op(e.op), 0, 0.0});
          emit_nest(t, bounds, rank, std::move(code), std::move(loads), out);
          if (a.is_array) release_temp(a.array, out);
          if (b.is_array) release_temp(b.array, out);
          Operand o;
          o.is_array = true;
          o.array = t;
          return o;
        }
        case ir::ExprKind::Shift:
          diags_.error(e.loc, "internal: shift survived normalization");
          return Operand{};
      }
      return Operand{};
    };

    Operand result = eval(eval, *stmt.rhs);
    // Final copy/assignment into the statement target.
    std::vector<spmd::Load> loads;
    std::vector<Instr> code;
    if (result.is_array) {
      code.push_back(Instr{Instr::Op::PushLoad,
                           intern_load(loads, result.array, {0, 0, 0}),
                           0.0});
    } else {
      code = std::move(result.scalar_code);
    }
    emit_nest(stmt.lhs.array, bounds, rank, std::move(code), std::move(loads),
              out);
    if (result.is_array) release_temp(result.array, out);
  }

  /// Frees an expression temporary right after its last consumer (IR
  /// arrays and normalize temporaries are managed elsewhere).
  void release_temp(int array, std::vector<Op>& out) {
    if (array < prog_.symbols.num_arrays()) return;  // not an expr temp
    Op free;
    free.kind = OpKind::Free;
    free.arrays = {array};
    out.push_back(std::move(free));
  }

  const ir::Program& prog_;
  const LowerOptions& opts_;
  DiagnosticEngine& diags_;
  spmd::Program out_;
  int expr_temp_counter_ = 0;
};

}  // namespace

spmd::Program lower_to_spmd(const ir::Program& program,
                            const LowerOptions& opts,
                            DiagnosticEngine& diags) {
  return Lowerer(program, opts, diags).run();
}

}  // namespace hpfsc::codegen

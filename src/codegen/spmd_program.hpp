// The executable SPMD program: the node program each PE runs, expressed
// as an operation list over distributed arrays plus compact bytecode for
// scalar expressions and subgrid loop-nest kernels.  This is the target
// of code generation and the input of the executor.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/symbols.hpp"
#include "simpi/layout.hpp"
#include "simpi/shift_ops.hpp"

namespace hpfsc::spmd {

using Offset = std::array<int, ir::kMaxRank>;

struct ScalarSpec {
  std::string name;
  bool integer = false;
  std::optional<double> init;
};

struct ArraySpec {
  std::string name;
  int rank = 2;
  std::array<ir::AffineBound, ir::kMaxRank> extent;
  std::array<simpi::DistKind, ir::kMaxRank> dist{
      simpi::DistKind::Block, simpi::DistKind::Block,
      simpi::DistKind::Collapsed};
  std::array<int, ir::kMaxRank> halo_lo{0, 0, 0};
  std::array<int, ir::kMaxRank> halo_hi{0, 0, 0};
  bool is_temp = false;
  bool eliminated = false;  ///< storage removed by offset arrays
  /// Allocated for the whole execution (program arrays); temporaries are
  /// allocated by explicit Alloc/Free ops instead.
  bool prealloc = false;
};

/// Stack-machine instruction for scalar expressions and kernel bodies.
/// PushLoad is only meaningful inside loop-nest kernels, where `idx`
/// names an entry of the nest's load table.
struct Instr {
  enum class Op : std::uint8_t {
    PushConst,
    PushScalar,  ///< idx = scalar id
    PushLoad,    ///< idx = load-table entry
    Add,
    Sub,
    Mul,
    Div,
    Neg,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
  };
  Op op = Op::PushConst;
  int idx = 0;
  double value = 0.0;
};

using ScalarExpr = std::vector<Instr>;

/// One element-wise reference inside a loop nest.
struct Load {
  int array = -1;
  Offset offset{0, 0, 0};

  bool operator==(const Load&) const = default;
};

/// One assignment of a fused nest body: lhs(i+off) = rpn(code).
struct Kernel {
  int lhs_array = -1;
  Offset lhs_offset{0, 0, 0};
  std::vector<Instr> code;
};

enum class OpKind {
  Alloc,
  Free,
  FullShift,     ///< dst = CSHIFT/EOSHIFT(src): inter + intra movement
  OverlapShift,  ///< fill src's overlap area (offset-array form)
  CopyOffset,    ///< dst(g) = src(g + offset): compensation copy
  LoopNest,      ///< subgrid loop nest
  ScalarAssign,
  If,
  Do,
};

struct Op {
  OpKind kind = OpKind::LoopNest;

  // Alloc / Free
  std::vector<int> arrays;

  // FullShift / OverlapShift / CopyOffset
  int array = -1;  ///< destination (FullShift/CopyOffset) or shifted array
  int src = -1;
  int shift = 0;
  int dim = 0;
  simpi::ShiftKind shift_kind = simpi::ShiftKind::Circular;
  ScalarExpr boundary;  ///< EOSHIFT boundary (empty = 0.0)
  simpi::RsdExtension rsd;
  Offset copy_offset{0, 0, 0};

  // LoopNest
  int rank = 2;
  std::array<ir::SectionRange, ir::kMaxRank> bounds;
  std::array<int, ir::kMaxRank> loop_order{0, 1, 2};
  int unroll = 1;
  bool scalar_replace = false;
  /// Set by passes::mark_overlap_nests: this nest is immediately
  /// preceded by OverlapShift ops and is reorder-safe (all stores at
  /// zero offset, no array both loaded and stored, shifted arrays not
  /// stored), so under a deferring comm backend the executor may run
  /// its interior while the shifts' receives are in flight and finish
  /// the boundary strips after wait_all.
  bool overlap_eligible = false;
  std::vector<Load> loads;
  std::vector<Kernel> kernels;

  // ScalarAssign
  int scalar = -1;
  ScalarExpr expr;

  // If / Do
  ScalarExpr cond;
  std::vector<Op> then_ops;
  std::vector<Op> else_ops;
  int var = -1;
  ir::AffineBound lo;
  ir::AffineBound hi;
  std::vector<Op> body;
};

struct Program {
  std::string name;
  std::vector<ScalarSpec> scalars;
  std::vector<ArraySpec> arrays;
  std::vector<Op> ops;

  [[nodiscard]] int find_array(const std::string& name) const;
  [[nodiscard]] int find_scalar(const std::string& name) const;

  /// Static communication summary: number of shift operations of each
  /// kind in one traversal of the op list (loops counted once).
  struct CommSummary {
    int full_shifts = 0;
    int overlap_shifts = 0;
  };
  [[nodiscard]] CommSummary comm_summary() const;
};

/// Returns a copy of `prog` with its user-visible interface renamed
/// positionally: scalars[i] takes scalar_names[i], arrays[i] takes
/// array_names[i] (entries beyond the given lists — pipeline-generated
/// temporaries — keep their names), the program takes `program_name`,
/// and every AffineBound parameter referring to a renamed scalar is
/// rewritten to match.  Ops are untouched (they address symbols by
/// index).  The service layer uses this to hand one cached plan to
/// alpha-renamed requesters under each requester's own names.
[[nodiscard]] Program rename_interface(
    const Program& prog, const std::string& program_name,
    const std::vector<std::string>& scalar_names,
    const std::vector<std::string>& array_names);

}  // namespace hpfsc::spmd

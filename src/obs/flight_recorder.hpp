// Always-on flight recorder: a lock-free, fixed-memory ring of binary
// event records per thread, fed by every Span/counter emit regardless
// of whether a trace sink is attached.  Where the TraceSession answers
// "record everything while I watch", the flight recorder answers "what
// just happened" *after the fact*: when a CommInvariantViolation, a
// plan-compile failure, or a difftest divergence fires, the last-N
// events of every thread are still in memory and can be dumped as a
// merged Chrome trace plus a human-readable text postmortem.
//
// Concurrency: each thread owns one ring (single writer); dumps read
// concurrently.  Every slot is a seqlock whose payload is stored as
// relaxed atomic words bracketed by acquire/release sequence stamps,
// so concurrent emit/dump is data-race-free (TSan-clean) and a dump
// simply discards slots it caught mid-write.  Memory is bounded:
// kDefaultCapacity events per thread, and rings of exited threads are
// retained only up to a small cap (newest first) so their final events
// survive into a postmortem.
//
// Request context: a thread-local 64-bit request id (see RequestScope)
// stamps every recorded event and is auto-attached to sink-visible
// spans, which is what lets one service request be reassembled across
// the ServicePool worker that served it and the PE threads that ran it.
//
// Cost discipline: with the recorder disabled (HPFSC_FLIGHT_RECORDER=0
// or set_enabled(false)) a Span pays one relaxed atomic load; enabled,
// an emit is a dozen relaxed stores into preallocated memory — no
// locks, no allocation, no system calls.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hpfsc::obs {

/// Fixed-size binary event record.  Exactly kFlightEventWords 64-bit
/// words so a slot can store it as an array of atomic words.
struct FlightEvent {
  enum class Kind : std::uint32_t {
    SpanBegin = 0,  ///< span constructed (name = static ctor name)
    SpanEnd = 1,    ///< span destroyed (name = final name, dur_ns set)
    Counter = 2,    ///< counter sample (value set)
    Mark = 3,       ///< point event (incidents, annotations)
  };

  std::uint64_t ts_ns = 0;       ///< steady-clock ns since recorder epoch
  std::uint64_t dur_ns = 0;      ///< SpanEnd only
  std::uint64_t request_id = 0;  ///< 0 = no request context
  double value = 0.0;            ///< Counter only
  std::int32_t track = 0;        ///< obs track (host 0, PE p -> p+1)
  Kind kind = Kind::Mark;
  char name[56] = {};            ///< NUL-terminated, truncated

  void set_name(std::string_view n) {
    const std::size_t len = n.size() < sizeof name - 1 ? n.size()
                                                       : sizeof name - 1;
    std::memcpy(name, n.data(), len);
    name[len] = '\0';
  }
};

inline constexpr std::size_t kFlightEventWords =
    sizeof(FlightEvent) / sizeof(std::uint64_t);
static_assert(sizeof(FlightEvent) % sizeof(std::uint64_t) == 0);

/// One thread's ring.  Single writer (the owning thread); any number of
/// concurrent snapshot readers.
class FlightRing {
 public:
  explicit FlightRing(std::size_t capacity);

  /// Owner thread only.  Never blocks, never allocates.
  void emit(const FlightEvent& ev);

  /// Appends the newest <= capacity events, oldest first, skipping any
  /// slot overwritten or caught mid-write during the read.  Safe from
  /// any thread.
  void snapshot(std::vector<FlightEvent>* out) const;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Total events ever emitted (not the resident count).
  [[nodiscard]] std::uint64_t emitted() const {
    return head_.load(std::memory_order_acquire);
  }

 private:
  struct Slot {
    /// 2*(index+1) when event `index` is fully written; odd mid-write.
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> words[kFlightEventWords];
  };

  const std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};  ///< next event index
};

/// A ring plus its registry bookkeeping.
struct FlightThread {
  FlightThread(int id, std::size_t capacity) : thread_id(id), ring(capacity) {}
  int thread_id;                  ///< registration order, 0-based
  std::atomic<bool> live{true};   ///< false once the owning thread exited
  FlightRing ring;
};

/// A dump of one thread's ring.
struct FlightThreadSnapshot {
  int thread_id = 0;
  bool live = true;
  std::vector<FlightEvent> events;  ///< oldest first
};

/// Details of the most recent incident noted on the recorder.
struct FlightIncident {
  std::string kind;    ///< "comm-invariant", "plan-compile-failure", ...
  std::string detail;  ///< the exception/divergence message
  std::uint64_t ts_ns = 0;
  int count = 0;       ///< total incidents noted so far
};

/// Process-wide recorder: owns the per-thread rings.
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;  ///< events/thread
  /// Rings of exited threads retained beyond this are dropped (oldest
  /// registration first), bounding memory under thread churn.
  static constexpr std::size_t kMaxRetiredRings = 16;

  [[nodiscard]] static FlightRecorder& instance();

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Nanoseconds since recorder construction (steady clock).
  [[nodiscard]] std::uint64_t now_ns() const;

  /// The calling thread's ring (registered on first use — the only
  /// call that may allocate).
  [[nodiscard]] FlightRing& ring();

  /// Records one fully-formed event on the calling thread's ring.
  void emit(const FlightEvent& ev);
  /// Convenience: records a Mark named `name` now.
  void mark(std::string_view name, int track = 0);

  /// Records the incident as a Mark, remembers it for postmortem
  /// headers, and — when the HPFSC_POSTMORTEM environment variable
  /// names a file — appends a text postmortem there so the evidence
  /// survives the process (CI uploads it on failure).
  void note_incident(std::string_view kind, std::string_view detail);
  [[nodiscard]] FlightIncident last_incident() const;

  /// Per-thread dumps, registration order, each oldest-first.
  [[nodiscard]] std::vector<FlightThreadSnapshot> snapshot_all() const;

  /// Merged Chrome trace-event JSON of all rings (spans as complete
  /// events, counters as counter events, marks as instants; tid = the
  /// recorder's thread id).
  [[nodiscard]] std::string chrome_trace() const;

  /// Human-readable dump: incident header (when any) plus the newest
  /// <= `per_thread` events of every thread.
  [[nodiscard]] std::string postmortem_text(std::size_t per_thread = 64) const;

  /// Writes postmortem_text() to `path` (append).  Returns false on
  /// I/O failure.
  bool dump_postmortem(const std::string& path) const;

  /// Number of registered rings (live + retired); for tests.
  [[nodiscard]] std::size_t num_threads() const;

 private:
  FlightRecorder();

  std::atomic<bool> enabled_{true};
  std::uint64_t epoch_steady_ns_ = 0;

  mutable std::mutex mutex_;  ///< guards threads_ and incident_
  std::vector<std::shared_ptr<FlightThread>> threads_;
  int next_thread_id_ = 0;
  FlightIncident incident_;
};

/// -- Request-scoped trace context -------------------------------------
/// A 64-bit request id carried in a thread-local: every flight event
/// records it, and Span auto-attaches it (arg "request_id") to sink
/// output, so one request's spans can be joined across threads.

/// The calling thread's current request id (0 = none).
[[nodiscard]] std::uint64_t current_request_id();
/// Fresh process-unique request id (monotonic from 1).
[[nodiscard]] std::uint64_t next_request_id();

/// RAII: sets the calling thread's request id, restoring the previous
/// one on destruction.  Passing 0 is a no-op scope (keeps the current).
class RequestScope {
 public:
  explicit RequestScope(std::uint64_t id);
  ~RequestScope();
  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

 private:
  std::uint64_t saved_;
};

}  // namespace hpfsc::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "obs/sinks.hpp"

namespace hpfsc::obs {

// ------------------------------------------------------------ Histogram

int Histogram::bucket_index(double value) {
  if (!(value > 0.0)) return 0;  // zero, negative, NaN
  int e = 0;
  const double f = std::frexp(value, &e);  // value = f * 2^e, f in [0.5, 1)
  const int p = e - 1;                     // 2^p <= value < 2^(p+1)
  if (p < kMinExp) return 1;
  if (p >= kMaxExp) return kBucketCount - 1;
  int sub = static_cast<int>((f - 0.5) * 2.0 * kSubBuckets);
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  return (p - kMinExp) * kSubBuckets + sub + 1;
}

double Histogram::bucket_upper_bound(int index) {
  if (index <= 0) return 0.0;
  const int decade = (index - 1) / kSubBuckets;
  const int sub = (index - 1) % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets,
                    kMinExp + decade);
}

void Histogram::record(double value) {
  if (value < 0.0 || std::isnan(value)) value = 0.0;
  buckets_[static_cast<std::size_t>(bucket_index(value))] += 1;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cum = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    cum += buckets_[static_cast<std::size_t>(i)];
    if (cum < rank) continue;
    double rep;
    if (i == 0) {
      rep = 0.0;
    } else if (i == kBucketCount - 1) {
      rep = max_;
    } else {
      // Geometric-ish midpoint of the bucket's value range.
      const int decade = (i - 1) / kSubBuckets;
      const int sub = (i - 1) % kSubBuckets;
      rep = std::ldexp(1.0 + (static_cast<double>(sub) + 0.5) / kSubBuckets,
                       kMinExp + decade);
    }
    return std::clamp(rep, min_, max_);
  }
  return max_;
}

std::string Histogram::to_json() const {
  std::string out = "{\"count\":" + std::to_string(count_);
  out += ",\"sum\":" + json_number(sum_);
  out += ",\"min\":" + json_number(min());
  out += ",\"max\":" + json_number(max());
  out += ",\"mean\":" + json_number(mean());
  out += ",\"p50\":" + json_number(p50());
  out += ",\"p90\":" + json_number(p90());
  out += ",\"p99\":" + json_number(p99());
  out += "}";
  return out;
}

// ------------------------------------------------------ MetricsRegistry

void MetricsRegistry::add(const std::string& name, double delta) {
  std::lock_guard lock(mutex_);
  counters_[name] += delta;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  std::lock_guard lock(mutex_);
  gauges_[name] = value;
}

void MetricsRegistry::observe(const std::string& name, double value) {
  std::lock_guard lock(mutex_);
  histograms_[name].record(value);
}

double MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

Histogram MetricsRegistry::histogram(const std::string& name) const {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? Histogram{} : it->second;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  // Copy out under the source lock, then fold in under ours, so the two
  // locks are never held together (no ordering constraint to violate).
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram> histograms;
  {
    std::lock_guard lock(other.mutex_);
    counters = other.counters_;
    gauges = other.gauges_;
    histograms = other.histograms_;
  }
  std::lock_guard lock(mutex_);
  for (const auto& [name, v] : counters) counters_[name] += v;
  for (const auto& [name, v] : gauges) gauges_[name] = v;
  for (const auto& [name, h] : histograms) histograms_[name].merge(h);
}

void MetricsRegistry::clear() {
  std::lock_guard lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":" + json_number(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":" + json_number(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":" + h.to_json();
  }
  out += "}}";
  return out;
}

namespace {

/// Prometheus metric name: "hpfsc_" + name with [^a-zA-Z0-9_] -> '_'.
std::string prom_name(const std::string& name) {
  std::string out = "hpfsc_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard lock(mutex_);
  std::string out;
  for (const auto& [name, v] : counters_) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + json_number(v) + "\n";
  }
  for (const auto& [name, v] : gauges_) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + json_number(v) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " summary\n";
    out += p + "{quantile=\"0.5\"} " + json_number(h.p50()) + "\n";
    out += p + "{quantile=\"0.9\"} " + json_number(h.p90()) + "\n";
    out += p + "{quantile=\"0.99\"} " + json_number(h.p99()) + "\n";
    out += p + "_sum " + json_number(h.sum()) + "\n";
    out += p + "_count " + std::to_string(h.count()) + "\n";
    out += "# TYPE " + p + "_max gauge\n";
    out += p + "_max " + json_number(h.max()) + "\n";
  }
  return out;
}

std::string MetricsRegistry::summary() const {
  std::lock_guard lock(mutex_);
  std::string out;
  for (const auto& [name, h] : histograms_) {
    out += name + ": count=" + std::to_string(h.count());
    out += " p50=" + json_number(h.p50());
    out += " p90=" + json_number(h.p90());
    out += " p99=" + json_number(h.p99());
    out += " max=" + json_number(h.max());
    out += "\n";
  }
  return out;
}

MetricsRegistry& default_registry() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dies
  return *registry;
}

}  // namespace hpfsc::obs

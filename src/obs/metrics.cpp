#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "obs/sinks.hpp"

namespace hpfsc::obs {

// ------------------------------------------------------------ Histogram

int Histogram::bucket_index(double value) {
  if (!(value > 0.0)) return 0;  // zero, negative, NaN
  int e = 0;
  const double f = std::frexp(value, &e);  // value = f * 2^e, f in [0.5, 1)
  const int p = e - 1;                     // 2^p <= value < 2^(p+1)
  if (p < kMinExp) return 1;
  if (p >= kMaxExp) return kBucketCount - 1;
  int sub = static_cast<int>((f - 0.5) * 2.0 * kSubBuckets);
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  return (p - kMinExp) * kSubBuckets + sub + 1;
}

double Histogram::bucket_upper_bound(int index) {
  if (index <= 0) return 0.0;
  const int decade = (index - 1) / kSubBuckets;
  const int sub = (index - 1) % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets,
                    kMinExp + decade);
}

void Histogram::record(double value) {
  if (value < 0.0 || std::isnan(value)) value = 0.0;
  buckets_[static_cast<std::size_t>(bucket_index(value))] += 1;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cum = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    cum += buckets_[static_cast<std::size_t>(i)];
    if (cum < rank) continue;
    double rep;
    if (i == 0) {
      rep = 0.0;
    } else if (i == kBucketCount - 1) {
      rep = max_;
    } else {
      // Geometric-ish midpoint of the bucket's value range.
      const int decade = (i - 1) / kSubBuckets;
      const int sub = (i - 1) % kSubBuckets;
      rep = std::ldexp(1.0 + (static_cast<double>(sub) + 0.5) / kSubBuckets,
                       kMinExp + decade);
    }
    return std::clamp(rep, min_, max_);
  }
  return max_;
}

std::string Histogram::to_json() const {
  std::string out = "{\"count\":" + std::to_string(count_);
  out += ",\"sum\":" + json_number(sum_);
  out += ",\"min\":" + json_number(min());
  out += ",\"max\":" + json_number(max());
  out += ",\"mean\":" + json_number(mean());
  out += ",\"p50\":" + json_number(p50());
  out += ",\"p90\":" + json_number(p90());
  out += ",\"p99\":" + json_number(p99());
  out += "}";
  return out;
}

// ------------------------------------------------------ MetricsRegistry

void MetricsRegistry::add(const std::string& name, double delta) {
  std::lock_guard lock(mutex_);
  counters_[name] += delta;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  std::lock_guard lock(mutex_);
  gauges_[name] = value;
}

void MetricsRegistry::observe(const std::string& name, double value) {
  std::lock_guard lock(mutex_);
  histograms_[name].record(value);
}

double MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

Histogram MetricsRegistry::histogram(const std::string& name) const {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? Histogram{} : it->second;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  // Copy out under the source lock, then fold in under ours, so the two
  // locks are never held together (no ordering constraint to violate).
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram> histograms;
  {
    std::lock_guard lock(other.mutex_);
    counters = other.counters_;
    gauges = other.gauges_;
    histograms = other.histograms_;
  }
  std::lock_guard lock(mutex_);
  for (const auto& [name, v] : counters) counters_[name] += v;
  for (const auto& [name, v] : gauges) gauges_[name] = v;
  for (const auto& [name, h] : histograms) histograms_[name].merge(h);
}

void MetricsRegistry::clear() {
  std::lock_guard lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":" + json_number(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":" + json_number(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":" + h.to_json();
  }
  out += "}}";
  return out;
}

std::string prom_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
  return out;
}

std::string labeled_metric(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels) {
  std::string out(base);
  if (labels.size() == 0) return out;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += prom_escape_label(value);
    out += '"';
  }
  out += '}';
  return out;
}

namespace {

/// Prometheus metric name: "hpfsc_" + name with [^a-zA-Z0-9_] -> '_'.
std::string prom_name(const std::string& name) {
  std::string out = "hpfsc_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

/// A registry key split into a sanitized exposition name and the label
/// list (brace-free, already escaped by labeled_metric).  A key without
/// a well-formed trailing `{...}` block is all name: its braces, if
/// any, sanitize to underscores exactly as before.
struct PromKey {
  std::string name;
  std::string labels;
};

PromKey split_prom_key(const std::string& key) {
  const std::size_t brace = key.find('{');
  if (brace == std::string::npos || key.back() != '}') {
    return PromKey{prom_name(key), ""};
  }
  return PromKey{prom_name(key.substr(0, brace)),
                 key.substr(brace + 1, key.size() - brace - 2)};
}

/// One exposition series: name[suffix]{labels[,extra]} value.  `extra`
/// is a preformatted label pair (the histogram quantile) merged into the
/// key's own label block.
std::string prom_series(const PromKey& k, const char* suffix,
                        const char* extra, const std::string& value) {
  std::string out = k.name + suffix;
  if (!k.labels.empty() || extra[0] != '\0') {
    out += '{';
    out += k.labels;
    if (!k.labels.empty() && extra[0] != '\0') out += ',';
    out += extra;
    out += '}';
  }
  out += ' ';
  out += value;
  out += '\n';
  return out;
}

}  // namespace

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard lock(mutex_);
  std::string out;
  // One TYPE line per exposition name: labeled series sharing a base
  // (adjacent, since the maps are name-sorted) declare it once.
  std::string last_type;
  const auto type_line = [&](const std::string& name, const char* type) {
    if (name == last_type) return;
    last_type = name;
    out += "# TYPE " + name + " " + type + "\n";
  };
  for (const auto& [name, v] : counters_) {
    const PromKey k = split_prom_key(name);
    type_line(k.name, "counter");
    out += prom_series(k, "", "", json_number(v));
  }
  for (const auto& [name, v] : gauges_) {
    const PromKey k = split_prom_key(name);
    type_line(k.name, "gauge");
    out += prom_series(k, "", "", json_number(v));
  }
  for (const auto& [name, h] : histograms_) {
    const PromKey k = split_prom_key(name);
    type_line(k.name, "summary");
    out += prom_series(k, "", "quantile=\"0.5\"", json_number(h.p50()));
    out += prom_series(k, "", "quantile=\"0.9\"", json_number(h.p90()));
    out += prom_series(k, "", "quantile=\"0.99\"", json_number(h.p99()));
    out += prom_series(k, "_sum", "", json_number(h.sum()));
    out += prom_series(k, "_count", "", std::to_string(h.count()));
  }
  // The _max gauges form their own metric family; a second pass keeps
  // each family's series contiguous under one TYPE line.
  for (const auto& [name, h] : histograms_) {
    const PromKey k = split_prom_key(name);
    type_line(k.name + "_max", "gauge");
    out += prom_series(k, "_max", "", json_number(h.max()));
  }
  return out;
}

std::string MetricsRegistry::summary() const {
  std::lock_guard lock(mutex_);
  std::string out;
  for (const auto& [name, h] : histograms_) {
    out += name + ": count=" + std::to_string(h.count());
    out += " p50=" + json_number(h.p50());
    out += " p90=" + json_number(h.p90());
    out += " p99=" + json_number(h.p99());
    out += " max=" + json_number(h.max());
    out += "\n";
  }
  return out;
}

MetricsRegistry& default_registry() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dies
  return *registry;
}

}  // namespace hpfsc::obs

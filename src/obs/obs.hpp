// Observability core: scoped spans, named counters, and a session that
// dispatches them to pluggable sinks (human-readable summary, JSON
// lines, Chrome trace-event format — see obs/sinks.hpp).
//
// The layer is threaded through the whole stack: the driver times each
// frontend/codegen stage, the pass pipeline records per-pass wall time
// and IR deltas, and the executor + simpi runtime emit per-PE spans for
// every plan step (shift, copy, kernel loop) carrying the modeled-cost
// and message/byte attribution the paper's figures are built from.
//
// Overhead discipline: a `Span` constructed against a null session, or
// a session with no sinks, is inert on the sink path — it performs no
// heap allocation and no locking (a single relaxed atomic load
// decides).  Producers therefore instrument unconditionally and pay
// nothing when tracing is off; tests assert the zero-allocation
// property.
//
// Independent of the sink path, every span and counter also tees a
// fixed-size binary record into the always-on flight recorder
// (obs/flight_recorder.hpp) — lock-free, allocation-free after the
// per-thread ring exists — so the last events of every thread are
// available for a postmortem even when no sink was attached.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/flight_recorder.hpp"

namespace hpfsc::obs {

class MetricsRegistry;

/// One span/counter argument.  Keys are string literals (producers pass
/// `const char*`); values are numeric (the common case: byte counts,
/// modeled nanoseconds, IR statement counts) or short strings.
struct Arg {
  const char* key = "";
  bool numeric = true;
  double num = 0.0;
  std::string str;
};

/// Timeline track identifiers: track 0 is the host (compiler/driver)
/// thread; PE `p` reports on track `p + 1`.
inline constexpr int kHostTrack = 0;
[[nodiscard]] constexpr int pe_track(int pe_id) { return pe_id + 1; }

/// A completed span: [start_ns, start_ns + dur_ns) on track `track`.
struct SpanRecord {
  std::string name;
  std::string category;  ///< "compile" | "runtime" | caller-defined
  int track = kHostTrack;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::vector<Arg> args;
};

/// A point-in-time counter sample.
struct CounterRecord {
  std::string name;
  int track = kHostTrack;
  std::uint64_t ts_ns = 0;
  double value = 0.0;
};

/// Consumer interface.  The session serializes all calls under one
/// mutex, so implementations need no locking of their own.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void span(const SpanRecord& rec) = 0;
  virtual void counter(const CounterRecord& rec) { (void)rec; }
  /// Human-readable name for a track (e.g. "PE0"); optional.
  virtual void track_name(int track, std::string_view name) {
    (void)track;
    (void)name;
  }
  /// Called at session flush and before sink destruction.
  virtual void flush() {}
};

/// A tracing session: an epoch, a sink list, and an enabled flag that
/// producers check on the fast path.  Thread-safe; PE threads emit
/// concurrently.
class TraceSession {
 public:
  TraceSession() : epoch_(std::chrono::steady_clock::now()) {}
  ~TraceSession() { flush(); }

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Enabled iff at least one sink is installed.
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since session construction (monotonic).
  [[nodiscard]] std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  void add_sink(std::unique_ptr<Sink> sink);
  void clear_sinks();

  /// Tees every counter sample into `registry` as a gauge (trace
  /// counters are cumulative samples, so last-write-wins is the right
  /// aggregation).  The registry is not owned and must outlive the
  /// session or be detached with nullptr.  Counters tee even when no
  /// sink is installed; spans still require a sink (enabled()).
  void set_metrics(MetricsRegistry* registry) {
    metrics_.store(registry, std::memory_order_release);
  }
  [[nodiscard]] MetricsRegistry* metrics() const {
    return metrics_.load(std::memory_order_acquire);
  }

  void emit_span(SpanRecord rec);
  void emit_counter(CounterRecord rec);
  /// Convenience: sample counter `name` = `value` now.
  void counter(const char* name, double value, int track = kHostTrack);
  void set_track_name(int track, std::string_view name);
  void flush();

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  std::atomic<MetricsRegistry*> metrics_{nullptr};
  std::mutex mutex_;
  std::vector<std::unique_ptr<Sink>> sinks_;
};

/// RAII scoped span.  Constructed against a null/disabled session it is
/// inert on the sink path: no allocation, and `arg()` is a no-op, so
/// instrumentation sites need no `if (tracing)` guards.  Every span
/// additionally tees begin/end records into the flight recorder (when
/// that is enabled) using a fixed on-stack name buffer — still
/// allocation-free.  When the calling thread carries a request id
/// (RequestScope), the sink record gets a "request_id" arg and the
/// flight records are stamped with it.
class Span {
 public:
  Span(TraceSession* session, const char* name,
       const char* category = "", int track = kHostTrack)
      : session_(session && session->enabled() ? session : nullptr) {
    FlightRecorder& fr = FlightRecorder::instance();
    if (fr.enabled()) {
      flight_ = true;
      flight_track_ = track;
      set_flight_name(name);
      FlightEvent ev;
      ev.kind = FlightEvent::Kind::SpanBegin;
      ev.ts_ns = fr.now_ns();
      ev.track = track;
      ev.request_id = current_request_id();
      ev.set_name(name);
      fr.emit(ev);
      flight_start_ = ev.ts_ns;
    }
    if (!session_) return;
    rec_.name = name;
    rec_.category = category;
    rec_.track = track;
    rec_.start_ns = session_->now_ns();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    if (flight_) {
      FlightRecorder& fr = FlightRecorder::instance();
      FlightEvent ev;
      ev.kind = FlightEvent::Kind::SpanEnd;
      ev.ts_ns = fr.now_ns();
      ev.dur_ns = ev.ts_ns - flight_start_;
      ev.track = flight_track_;
      ev.request_id = current_request_id();
      ev.set_name(flight_name_);
      fr.emit(ev);
    }
    if (!session_) return;
    if (const std::uint64_t rid = current_request_id()) {
      rec_.args.push_back(
          Arg{"request_id", true, static_cast<double>(rid), {}});
    }
    rec_.dur_ns = session_->now_ns() - rec_.start_ns;
    session_->emit_span(std::move(rec_));
  }

  /// True when the span will be emitted (lets callers skip expensive
  /// argument computation).
  [[nodiscard]] bool active() const { return session_ != nullptr; }

  /// Replaces the span name (e.g. to append a dynamic suffix that the
  /// caller only computes when the span is active).
  void rename(std::string_view name) {
    if (session_) rec_.name = std::string(name);
    if (flight_) set_flight_name(name);
  }

  void arg(const char* key, double v) {
    if (session_) rec_.args.push_back(Arg{key, true, v, {}});
  }
  void arg(const char* key, std::int64_t v) {
    arg(key, static_cast<double>(v));
  }
  void arg(const char* key, std::uint64_t v) {
    arg(key, static_cast<double>(v));
  }
  void arg(const char* key, int v) { arg(key, static_cast<double>(v)); }
  void arg_str(const char* key, std::string_view v) {
    if (session_) rec_.args.push_back(Arg{key, false, 0.0, std::string(v)});
  }

 private:
  void set_flight_name(std::string_view name) {
    const std::size_t len = name.size() < sizeof flight_name_ - 1
                                ? name.size()
                                : sizeof flight_name_ - 1;
    std::memcpy(flight_name_, name.data(), len);
    flight_name_[len] = '\0';
  }

  TraceSession* session_;
  SpanRecord rec_;
  bool flight_ = false;
  std::int32_t flight_track_ = 0;
  std::uint64_t flight_start_ = 0;
  char flight_name_[sizeof(FlightEvent{}.name)] = {};
};

/// Process-wide default session.  Starts with no sinks (disabled); the
/// CLI and benches install sinks based on flags / the HPFSC_TRACE
/// environment variable.
[[nodiscard]] TraceSession& default_session();

/// Value of the HPFSC_TRACE environment variable (a Chrome-trace output
/// path), or nullptr when unset/empty.
[[nodiscard]] const char* env_trace_path();

}  // namespace hpfsc::obs

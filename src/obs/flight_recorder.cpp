#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/sinks.hpp"

namespace hpfsc::obs {

// ------------------------------------------------------------ FlightRing

FlightRing::FlightRing(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(new Slot[capacity == 0 ? 1 : capacity]) {}

void FlightRing::emit(const FlightEvent& ev) {
  const std::uint64_t k = head_.load(std::memory_order_relaxed);
  Slot& slot = slots_[k % capacity_];
  // Seqlock write: odd stamp marks the slot busy; readers that observe
  // anything other than the final even stamp discard the slot.
  slot.seq.store(2 * k + 1, std::memory_order_release);
  std::uint64_t words[kFlightEventWords];
  std::memcpy(words, &ev, sizeof ev);
  for (std::size_t w = 0; w < kFlightEventWords; ++w) {
    slot.words[w].store(words[w], std::memory_order_relaxed);
  }
  slot.seq.store(2 * k + 2, std::memory_order_release);
  head_.store(k + 1, std::memory_order_release);
}

void FlightRing::snapshot(std::vector<FlightEvent>* out) const {
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  const std::uint64_t lo = h > capacity_ ? h - capacity_ : 0;
  for (std::uint64_t k = lo; k < h; ++k) {
    const Slot& slot = slots_[k % capacity_];
    const std::uint64_t want = 2 * k + 2;
    if (slot.seq.load(std::memory_order_acquire) != want) continue;
    std::uint64_t words[kFlightEventWords];
    for (std::size_t w = 0; w < kFlightEventWords; ++w) {
      words[w] = slot.words[w].load(std::memory_order_relaxed);
    }
    // Re-check after the payload reads: if the writer lapped us the
    // stamp moved on and the words above may be torn.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_acquire) != want) continue;
    FlightEvent ev;
    std::memcpy(&ev, words, sizeof ev);
    ev.name[sizeof ev.name - 1] = '\0';  // belt and braces for dumps
    out->push_back(ev);
  }
}

// -------------------------------------------------------- FlightRecorder

FlightRecorder::FlightRecorder() {
  epoch_steady_ns_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  if (const char* env = std::getenv("HPFSC_FLIGHT_RECORDER")) {
    if (env[0] == '0' && env[1] == '\0') {
      enabled_.store(false, std::memory_order_relaxed);
    }
  }
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder* recorder = new FlightRecorder();  // never dies
  return *recorder;
}

std::uint64_t FlightRecorder::now_ns() const {
  const auto now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return now - epoch_steady_ns_;
}

namespace {

/// Thread-local ring handle: keeps the registry entry alive for the
/// thread's lifetime and flips `live` off when the thread exits, so the
/// registry can bound how many dead rings it retains.
struct TlsRing {
  std::shared_ptr<FlightThread> entry;
  ~TlsRing() {
    if (entry) entry->live.store(false, std::memory_order_release);
  }
};

thread_local TlsRing tls_ring;

thread_local std::uint64_t tls_request_id = 0;

}  // namespace

FlightRing& FlightRecorder::ring() {
  if (!tls_ring.entry) {
    std::lock_guard lock(mutex_);
    // Bound memory under thread churn: drop the oldest retired rings
    // beyond the retention cap before registering a new one.
    std::size_t retired = 0;
    for (const auto& t : threads_) {
      if (!t->live.load(std::memory_order_acquire)) ++retired;
    }
    if (retired >= kMaxRetiredRings) {
      for (auto it = threads_.begin();
           it != threads_.end() && retired >= kMaxRetiredRings;) {
        if (!(*it)->live.load(std::memory_order_acquire)) {
          it = threads_.erase(it);
          --retired;
        } else {
          ++it;
        }
      }
    }
    tls_ring.entry =
        std::make_shared<FlightThread>(next_thread_id_++, kDefaultCapacity);
    threads_.push_back(tls_ring.entry);
  }
  return tls_ring.entry->ring;
}

void FlightRecorder::emit(const FlightEvent& ev) { ring().emit(ev); }

void FlightRecorder::mark(std::string_view name, int track) {
  if (!enabled()) return;
  FlightEvent ev;
  ev.kind = FlightEvent::Kind::Mark;
  ev.ts_ns = now_ns();
  ev.track = track;
  ev.request_id = current_request_id();
  ev.set_name(name);
  emit(ev);
}

void FlightRecorder::note_incident(std::string_view kind,
                                   std::string_view detail) {
  if (!enabled()) return;
  {
    FlightEvent ev;
    ev.kind = FlightEvent::Kind::Mark;
    ev.ts_ns = now_ns();
    ev.request_id = current_request_id();
    std::string name = "INCIDENT:";
    name += kind;
    ev.set_name(name);
    emit(ev);
  }
  {
    std::lock_guard lock(mutex_);
    incident_.kind = std::string(kind);
    incident_.detail = std::string(detail);
    incident_.ts_ns = now_ns();
    ++incident_.count;
  }
  if (const char* path = std::getenv("HPFSC_POSTMORTEM")) {
    if (*path != '\0') dump_postmortem(path);
  }
}

FlightIncident FlightRecorder::last_incident() const {
  std::lock_guard lock(mutex_);
  return incident_;
}

std::vector<FlightThreadSnapshot> FlightRecorder::snapshot_all() const {
  std::vector<std::shared_ptr<FlightThread>> threads;
  {
    std::lock_guard lock(mutex_);
    threads = threads_;
  }
  std::vector<FlightThreadSnapshot> out;
  out.reserve(threads.size());
  for (const auto& t : threads) {
    FlightThreadSnapshot snap;
    snap.thread_id = t->thread_id;
    snap.live = t->live.load(std::memory_order_acquire);
    t->ring.snapshot(&snap.events);
    out.push_back(std::move(snap));
  }
  return out;
}

std::size_t FlightRecorder::num_threads() const {
  std::lock_guard lock(mutex_);
  return threads_.size();
}

namespace {

const char* kind_name(FlightEvent::Kind k) {
  switch (k) {
    case FlightEvent::Kind::SpanBegin: return "BEGIN";
    case FlightEvent::Kind::SpanEnd: return "END";
    case FlightEvent::Kind::Counter: return "COUNTER";
    case FlightEvent::Kind::Mark: return "MARK";
  }
  return "?";
}

}  // namespace

std::string FlightRecorder::chrome_trace() const {
  const std::vector<FlightThreadSnapshot> threads = snapshot_all();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",";
    first = false;
  };
  auto us = [](std::uint64_t ns) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ns) / 1e3);
    return std::string(buf);
  };
  for (const FlightThreadSnapshot& t : threads) {
    sep();
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(t.thread_id) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"flight-thread-" +
           std::to_string(t.thread_id) + "\"}}";
    for (const FlightEvent& ev : t.events) {
      const std::string common =
          "\"pid\":1,\"tid\":" + std::to_string(t.thread_id) +
          ",\"ts\":" + us(ev.ts_ns);
      const std::string args =
          "{\"track\":" + std::to_string(ev.track) +
          ",\"request_id\":" + std::to_string(ev.request_id) + "}";
      switch (ev.kind) {
        case FlightEvent::Kind::SpanEnd:
          sep();
          out += "{\"ph\":\"X\",\"name\":\"" + json_escape(ev.name) +
                 "\",\"cat\":\"flight\"," + common;
          // Complete events anchor at the start time.
          out += ",\"dur\":" + us(ev.dur_ns) + ",\"args\":" + args + "}";
          break;
        case FlightEvent::Kind::Counter:
          sep();
          out += "{\"ph\":\"C\",\"name\":\"" + json_escape(ev.name) + "\"," +
                 common + ",\"args\":{\"value\":" + json_number(ev.value) +
                 "}}";
          break;
        case FlightEvent::Kind::Mark:
          sep();
          out += "{\"ph\":\"i\",\"s\":\"g\",\"name\":\"" +
                 json_escape(ev.name) + "\",\"cat\":\"flight\"," + common +
                 ",\"args\":" + args + "}";
          break;
        case FlightEvent::Kind::SpanBegin:
          // The matching SpanEnd carries the full interval; begins are
          // only needed for spans still open at dump time.
          sep();
          out += "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"begin:" +
                 json_escape(ev.name) + "\",\"cat\":\"flight\"," + common +
                 ",\"args\":" + args + "}";
          break;
      }
    }
  }
  out += "]}\n";
  return out;
}

std::string FlightRecorder::postmortem_text(std::size_t per_thread) const {
  const FlightIncident incident = last_incident();
  const std::vector<FlightThreadSnapshot> threads = snapshot_all();
  std::size_t total = 0;
  for (const FlightThreadSnapshot& t : threads) total += t.events.size();

  std::string out = "=== flight recorder postmortem ===\n";
  if (incident.count > 0) {
    out += "incident: " + incident.kind + "\n";
    out += "detail: " + incident.detail + "\n";
    out += "incidents so far: " + std::to_string(incident.count) + "\n";
  } else {
    out += "incident: none (on-demand dump)\n";
  }
  out += "threads: " + std::to_string(threads.size()) +
         ", events: " + std::to_string(total) + "\n";
  char line[192];
  for (const FlightThreadSnapshot& t : threads) {
    std::snprintf(line, sizeof line, "--- thread %d%s ---\n", t.thread_id,
                  t.live ? "" : " (exited)");
    out += line;
    const std::size_t n = t.events.size();
    const std::size_t lo = n > per_thread ? n - per_thread : 0;
    if (lo > 0) {
      out += "  ... " + std::to_string(lo) + " older events elided ...\n";
    }
    for (std::size_t i = lo; i < n; ++i) {
      const FlightEvent& ev = t.events[i];
      std::snprintf(line, sizeof line, "  [%12llu ns] %-7s track=%d %s",
                    static_cast<unsigned long long>(ev.ts_ns),
                    kind_name(ev.kind), ev.track, ev.name);
      out += line;
      if (ev.kind == FlightEvent::Kind::SpanEnd) {
        std::snprintf(line, sizeof line, " dur=%lluns",
                      static_cast<unsigned long long>(ev.dur_ns));
        out += line;
      }
      if (ev.kind == FlightEvent::Kind::Counter) {
        out += " = " + json_number(ev.value);
      }
      if (ev.request_id != 0) {
        out += " req=" + std::to_string(ev.request_id);
      }
      out += "\n";
    }
  }
  return out;
}

bool FlightRecorder::dump_postmortem(const std::string& path) const {
  std::ofstream f(path, std::ios::app);
  if (!f) return false;
  f << postmortem_text();
  return static_cast<bool>(f);
}

// -------------------------------------------------------- request scope

std::uint64_t current_request_id() { return tls_request_id; }

std::uint64_t next_request_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

RequestScope::RequestScope(std::uint64_t id) : saved_(tls_request_id) {
  if (id != 0) tls_request_id = id;
}

RequestScope::~RequestScope() { tls_request_id = saved_; }

}  // namespace hpfsc::obs

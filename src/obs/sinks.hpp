// Standard sinks for the observability layer:
//
//  * ChromeTraceSink — Chrome trace-event format ("X" complete events
//    plus "M" thread-name metadata), loadable in chrome://tracing,
//    Perfetto, or speedscope.  Streams events as they arrive; the
//    enclosing JSON document is closed when the sink is destroyed.
//  * JsonlSink — one self-contained JSON object per line, for ad-hoc
//    processing (jq, pandas) and the bench metric trajectory.
//  * SummarySink — aggregates spans by name into a human-readable
//    table (count, total/mean wall time, summed numeric args).
//  * CollectSink — in-memory record buffer for tests and programmatic
//    consumers.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace hpfsc::obs {

/// Escapes `s` for inclusion inside a JSON string literal.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Formats a double as JSON: integral values print without a decimal
/// point ("42"), others with enough digits to round-trip.
[[nodiscard]] std::string json_number(double v);

/// Renders the `"args":{...}` object body (no braces) for a record.
[[nodiscard]] std::string json_args(const std::vector<Arg>& args);

class ChromeTraceSink final : public Sink {
 public:
  /// Streams to an external stream (must outlive the sink).
  explicit ChromeTraceSink(std::ostream& out);
  /// Opens (truncates) `path` and streams to it.
  explicit ChromeTraceSink(const std::string& path);
  ~ChromeTraceSink() override;

  void span(const SpanRecord& rec) override;
  void counter(const CounterRecord& rec) override;
  void track_name(int track, std::string_view name) override;
  void flush() override;

 private:
  void write_prefix();
  void emit(const std::string& event_json);

  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_;
  bool first_ = true;
  bool closed_ = false;
};

class JsonlSink final : public Sink {
 public:
  explicit JsonlSink(std::ostream& out) : out_(&out) {}
  explicit JsonlSink(const std::string& path);

  void span(const SpanRecord& rec) override;
  void counter(const CounterRecord& rec) override;
  void flush() override;

 private:
  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_;
};

class SummarySink final : public Sink {
 public:
  SummarySink() = default;
  /// Prints the rendered table to `out` when the sink is destroyed.
  explicit SummarySink(std::ostream& out) : print_to_(&out) {}
  ~SummarySink() override;

  void span(const SpanRecord& rec) override;

  /// The aggregate table, sorted by total time descending.
  [[nodiscard]] std::string render() const;

 private:
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
    std::map<std::string, double> arg_sums;
  };
  std::map<std::string, Agg> by_name_;
  std::ostream* print_to_ = nullptr;
};

class CollectSink final : public Sink {
 public:
  void span(const SpanRecord& rec) override { spans.push_back(rec); }
  void counter(const CounterRecord& rec) override {
    counters.push_back(rec);
  }
  void track_name(int track, std::string_view name) override {
    track_names[track] = std::string(name);
  }

  std::vector<SpanRecord> spans;
  std::vector<CounterRecord> counters;
  std::map<int, std::string> track_names;
};

}  // namespace hpfsc::obs

#include "obs/sinks.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace hpfsc::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == std::floor(v) && std::abs(v) < 9.0e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string json_args(const std::vector<Arg>& args) {
  std::string out;
  for (const Arg& a : args) {
    if (!out.empty()) out += ",";
    out += "\"" + json_escape(a.key) + "\":";
    out += a.numeric ? json_number(a.num)
                     : "\"" + json_escape(a.str) + "\"";
  }
  return out;
}

namespace {

/// Microsecond timestamp with nanosecond resolution (Chrome's `ts` and
/// `dur` fields are in microseconds).
std::string us(std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

std::unique_ptr<std::ofstream> open_or_throw(const std::string& path) {
  auto f = std::make_unique<std::ofstream>(path, std::ios::trunc);
  if (!*f) throw std::runtime_error("obs: cannot open '" + path + "'");
  return f;
}

}  // namespace

// ------------------------------------------------- ChromeTraceSink --

ChromeTraceSink::ChromeTraceSink(std::ostream& out) : out_(&out) {
  write_prefix();
}

ChromeTraceSink::ChromeTraceSink(const std::string& path)
    : owned_(open_or_throw(path)), out_(owned_.get()) {
  write_prefix();
}

ChromeTraceSink::~ChromeTraceSink() {
  if (!closed_) {
    *out_ << "\n]}\n";
    out_->flush();
    closed_ = true;
  }
}

void ChromeTraceSink::write_prefix() {
  *out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
}

void ChromeTraceSink::emit(const std::string& event_json) {
  if (closed_) return;
  *out_ << (first_ ? "\n" : ",\n") << event_json;
  first_ = false;
}

void ChromeTraceSink::span(const SpanRecord& rec) {
  std::string e = "{\"name\":\"" + json_escape(rec.name) + "\"";
  if (!rec.category.empty()) {
    e += ",\"cat\":\"" + json_escape(rec.category) + "\"";
  }
  e += ",\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(rec.track);
  e += ",\"ts\":" + us(rec.start_ns) + ",\"dur\":" + us(rec.dur_ns);
  if (!rec.args.empty()) e += ",\"args\":{" + json_args(rec.args) + "}";
  e += "}";
  emit(e);
}

void ChromeTraceSink::counter(const CounterRecord& rec) {
  emit("{\"name\":\"" + json_escape(rec.name) +
       "\",\"ph\":\"C\",\"pid\":1,\"tid\":" + std::to_string(rec.track) +
       ",\"ts\":" + us(rec.ts_ns) + ",\"args\":{\"value\":" +
       json_number(rec.value) + "}}");
}

void ChromeTraceSink::track_name(int track, std::string_view name) {
  emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
       std::to_string(track) + ",\"args\":{\"name\":\"" +
       json_escape(name) + "\"}}");
}

void ChromeTraceSink::flush() { out_->flush(); }

// ------------------------------------------------------- JsonlSink --

JsonlSink::JsonlSink(const std::string& path)
    : owned_(open_or_throw(path)), out_(owned_.get()) {}

void JsonlSink::span(const SpanRecord& rec) {
  *out_ << "{\"kind\":\"span\",\"name\":\"" << json_escape(rec.name)
        << "\",\"cat\":\"" << json_escape(rec.category)
        << "\",\"track\":" << rec.track << ",\"start_ns\":" << rec.start_ns
        << ",\"dur_ns\":" << rec.dur_ns;
  if (!rec.args.empty()) *out_ << ",\"args\":{" << json_args(rec.args) << "}";
  *out_ << "}\n";
}

void JsonlSink::counter(const CounterRecord& rec) {
  *out_ << "{\"kind\":\"counter\",\"name\":\"" << json_escape(rec.name)
        << "\",\"track\":" << rec.track << ",\"ts_ns\":" << rec.ts_ns
        << ",\"value\":" << json_number(rec.value) << "}\n";
}

void JsonlSink::flush() { out_->flush(); }

// ----------------------------------------------------- SummarySink --

SummarySink::~SummarySink() {
  if (print_to_) *print_to_ << render();
}

void SummarySink::span(const SpanRecord& rec) {
  Agg& a = by_name_[rec.name];
  a.count += 1;
  a.total_ns += rec.dur_ns;
  a.max_ns = std::max(a.max_ns, rec.dur_ns);
  for (const Arg& arg : rec.args) {
    if (arg.numeric) a.arg_sums[arg.key] += arg.num;
  }
}

std::string SummarySink::render() const {
  std::vector<std::pair<std::string, const Agg*>> rows;
  rows.reserve(by_name_.size());
  for (const auto& [name, agg] : by_name_) rows.emplace_back(name, &agg);
  std::sort(rows.begin(), rows.end(), [](const auto& x, const auto& y) {
    return x.second->total_ns > y.second->total_ns;
  });

  std::string out = "--- obs summary ---\n";
  char buf[256];
  for (const auto& [name, agg] : rows) {
    std::snprintf(buf, sizeof buf, "%-36s x%-6llu total %10.3f ms  max %8.3f ms\n",
                  name.c_str(), static_cast<unsigned long long>(agg->count),
                  static_cast<double>(agg->total_ns) / 1e6,
                  static_cast<double>(agg->max_ns) / 1e6);
    out += buf;
    for (const auto& [key, sum] : agg->arg_sums) {
      std::snprintf(buf, sizeof buf, "    %-32s %s\n", key.c_str(),
                    json_number(sum).c_str());
      out += buf;
    }
  }
  return out;
}

}  // namespace hpfsc::obs

// Aggregate metrics on top of the span/counter trace layer: named
// counters (monotone sums), gauges (last-write-wins samples), and
// log-linear latency histograms with percentile queries.
//
// Where the trace layer answers "what happened, when, on which PE",
// this layer answers "how is the service doing": request-latency
// distributions (p50/p90/p99/max), cumulative cache traffic, message
// budgets — the quantities a regression gate or a dashboard consumes.
//
//   Histogram       — single-writer value-distribution recorder.
//                     Log-linear (HDR-style) buckets: each power of two
//                     is split into kSubBuckets linear sub-buckets, so
//                     the relative quantile error is bounded (~3%)
//                     across twelve decades.  merge() combines
//                     histograms bucket-wise (e.g. per-worker recorders
//                     into a service-wide one).
//   MetricsRegistry — thread-safe name -> metric map with JSON export
//                     and Prometheus text exposition.  All mutation
//                     goes through the registry lock; Histogram itself
//                     stays lock-free/plain so single-owner uses (a
//                     bench loop) pay nothing.
//   default_registry() — process-wide registry.  TraceSession can tee
//                     its counter samples into a registry (as gauges,
//                     since trace counters are cumulative samples), so
//                     existing instrumentation feeds the metrics layer
//                     without new call sites.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hpfsc::obs {

/// Escapes a Prometheus label value: backslash, double-quote, and
/// newline become `\\`, `\"`, and `\n` (exposition format 0.0.4).
[[nodiscard]] std::string prom_escape_label(std::string_view value);

/// Builds a labeled registry key, `base{k1="v1",k2="v2"}`, escaping each
/// label value.  MetricsRegistry treats keys containing a label block as
/// dimensioned metrics: to_prometheus() sanitizes only the base name and
/// emits the label block (merging in its own labels, e.g. `quantile` for
/// histogram summaries) instead of flattening the braces to underscores.
/// Used by the roofline exporter for per-(stencil, tier, N) series.
[[nodiscard]] std::string labeled_metric(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels);

/// Value-distribution recorder with bounded relative error.  Values are
/// non-negative doubles (negatives clamp to 0).  Not thread-safe on its
/// own; MetricsRegistry serializes access to registry-owned histograms.
class Histogram {
 public:
  /// Linear sub-buckets per power of two.  16 gives a worst-case
  /// relative quantile error of 1/32 (~3%).
  static constexpr int kSubBuckets = 16;
  /// Covered binary exponent range: values in [2^-20, 2^43) land in
  /// log-linear buckets (~1e-6 .. ~8e12 — microseconds to terabytes);
  /// smaller/larger values clamp into the first/last bucket.  The exact
  /// min/max/sum are tracked separately, so clamping only affects
  /// mid-range percentiles of out-of-range data.
  static constexpr int kMinExp = -20;
  static constexpr int kMaxExp = 43;
  static constexpr int kBucketCount =
      (kMaxExp - kMinExp) * kSubBuckets + 2;  ///< +1 zero, +1 overflow

  void record(double value);

  /// Bucket-wise sum of another histogram into this one.
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Value at quantile `q` in [0, 1]: the representative value of the
  /// bucket containing the ceil(q * count)-th sample, clamped to the
  /// exact [min, max].  0 when the histogram is empty.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p90() const { return quantile(0.90); }
  [[nodiscard]] double p99() const { return quantile(0.99); }

  void clear() { *this = Histogram{}; }

  /// {"count":..,"sum":..,"min":..,"max":..,"mean":..,"p50":..,...}
  [[nodiscard]] std::string to_json() const;

 private:
  static int bucket_index(double value);
  [[nodiscard]] static double bucket_upper_bound(int index);

  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Thread-safe named-metric registry.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Adds `delta` to counter `name` (created at 0).
  void add(const std::string& name, double delta = 1.0);
  /// Sets gauge `name` to `value` (last write wins).
  void set_gauge(const std::string& name, double value);
  /// Records `value` into histogram `name` (created empty).
  void observe(const std::string& name, double value);

  [[nodiscard]] double counter(const std::string& name) const;
  [[nodiscard]] double gauge(const std::string& name) const;
  /// Copy of histogram `name` (empty histogram when absent).
  [[nodiscard]] Histogram histogram(const std::string& name) const;

  /// Sums counters, overwrites gauges, and merges histograms from
  /// `other` into this registry.
  void merge_from(const MetricsRegistry& other);

  void clear();

  /// {"counters":{...},"gauges":{...},"histograms":{name:{...}}}
  [[nodiscard]] std::string to_json() const;

  /// Prometheus text exposition (version 0.0.4).  Metric names are
  /// sanitized ('.' and '-' -> '_') and prefixed "hpfsc_"; histograms
  /// export as summaries (quantile 0.5/0.9/0.99 + _sum/_count) plus a
  /// `<name>_max` gauge.  Keys of the labeled_metric() form keep their
  /// label block (only the base name is sanitized); the histogram
  /// quantile label is merged into an existing block rather than
  /// appended after it, so the output stays parseable.
  [[nodiscard]] std::string to_prometheus() const;

  /// One line per histogram — "name: count=N p50=... p90=... p99=...
  /// max=... (unit-free)" — for --obs-summary-style CLI output.
  /// Empty string when no histograms were recorded.
  [[nodiscard]] std::string summary() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, double> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Process-wide registry (created on first use, never destroyed before
/// other statics that might record into it at exit).
[[nodiscard]] MetricsRegistry& default_registry();

}  // namespace hpfsc::obs

#include "obs/obs.hpp"

#include <cstdlib>

#include "obs/metrics.hpp"

namespace hpfsc::obs {

void TraceSession::add_sink(std::unique_ptr<Sink> sink) {
  std::lock_guard lock(mutex_);
  sinks_.push_back(std::move(sink));
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceSession::clear_sinks() {
  std::lock_guard lock(mutex_);
  for (auto& s : sinks_) s->flush();
  sinks_.clear();
  enabled_.store(false, std::memory_order_relaxed);
}

void TraceSession::emit_span(SpanRecord rec) {
  std::lock_guard lock(mutex_);
  for (auto& s : sinks_) s->span(rec);
}

void TraceSession::emit_counter(CounterRecord rec) {
  // Tee outside the sink lock: the registry has its own mutex and no
  // lock-ordering relationship with sinks.
  if (MetricsRegistry* reg = metrics()) reg->set_gauge(rec.name, rec.value);
  std::lock_guard lock(mutex_);
  for (auto& s : sinks_) s->counter(rec);
}

void TraceSession::counter(const char* name, double value, int track) {
  // Tee into the flight recorder first: counter samples should be in a
  // postmortem even when no sink/registry is attached.
  FlightRecorder& fr = FlightRecorder::instance();
  if (fr.enabled()) {
    FlightEvent ev;
    ev.kind = FlightEvent::Kind::Counter;
    ev.ts_ns = fr.now_ns();
    ev.track = track;
    ev.request_id = current_request_id();
    ev.value = value;
    ev.set_name(name);
    fr.emit(ev);
  }
  if (!enabled() && metrics() == nullptr) return;
  emit_counter(CounterRecord{name, track, now_ns(), value});
}

void TraceSession::set_track_name(int track, std::string_view name) {
  std::lock_guard lock(mutex_);
  for (auto& s : sinks_) s->track_name(track, name);
}

void TraceSession::flush() {
  std::lock_guard lock(mutex_);
  for (auto& s : sinks_) s->flush();
}

TraceSession& default_session() {
  static TraceSession session;
  return session;
}

const char* env_trace_path() {
  const char* p = std::getenv("HPFSC_TRACE");
  return (p && *p) ? p : nullptr;
}

}  // namespace hpfsc::obs

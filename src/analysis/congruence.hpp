// Statement congruence classes and the typed-fusion partitioner used by
// the context-partitioning optimization (paper Section 3.2).
//
// "Array statements are congruent if they operate on arrays with
// identical distributions and cover the same iteration space."  The
// partitioner is the Kennedy-McKinley typed-fusion algorithm applied to
// Fortran90 statements: it reorders a straight-line run of statements
// (respecting the acyclic DDG) into the minimum number of groups of
// congruent statements, with communication operations forming their own
// class.
#pragma once

#include <string>
#include <vector>

#include "analysis/ddg.hpp"
#include "ir/program.hpp"

namespace hpfsc::analysis {

/// Classification of one statement for partitioning purposes.
struct StmtClass {
  enum class Kind {
    Communication,  ///< OVERLAP_SHIFT / full-shift statements
    Compute,        ///< array assignments and copies
    Scalar,         ///< scalar assignments
    Barrier,        ///< control flow and allocation: never grouped
  };
  Kind kind = Kind::Barrier;
  /// Congruence signature: distribution + iteration space.  Two Compute
  /// statements may share a group iff their signatures match.
  std::string signature;

  bool operator==(const StmtClass&) const = default;
};

/// Computes the class of a statement.
[[nodiscard]] StmtClass classify(const ir::Stmt& stmt,
                                 const ir::SymbolTable& symbols);

/// One output group: indices (into the input run) in scheduled order.
struct PartitionGroup {
  StmtClass cls;
  std::vector<int> stmts;
};

/// Greedy typed fusion: orders the run into groups, each containing
/// statements of one class, such that every DDG edge points from an
/// earlier-or-same group to a later group.  Prefers to keep filling the
/// current group (maximal fusion) and falls back to the earliest ready
/// statement when the current class has no ready statements.
[[nodiscard]] std::vector<PartitionGroup> typed_fusion(
    const std::vector<const ir::Stmt*>& stmts, const Ddg& ddg,
    const ir::SymbolTable& symbols);

}  // namespace hpfsc::analysis

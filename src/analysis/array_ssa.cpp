#include "analysis/array_ssa.hpp"

#include <set>

namespace hpfsc::analysis {

namespace {

/// Collects every array defined anywhere within a block (recursively),
/// used to place phi versions at DO headers.
void collect_defined(const ir::Block& b, std::set<ir::ArrayId>& out) {
  for (const ir::StmtPtr& s : b) {
    switch (s->kind) {
      case ir::StmtKind::ArrayAssign:
        out.insert(static_cast<const ir::ArrayAssignStmt&>(*s).lhs.array);
        break;
      case ir::StmtKind::ShiftAssign:
        out.insert(static_cast<const ir::ShiftAssignStmt&>(*s).dst);
        break;
      case ir::StmtKind::Copy:
        out.insert(static_cast<const ir::CopyStmt&>(*s).dst);
        break;
      case ir::StmtKind::Alloc:
        for (ir::ArrayId a : static_cast<const ir::AllocStmt&>(*s).arrays) {
          out.insert(a);
        }
        break;
      case ir::StmtKind::If: {
        const auto& iff = static_cast<const ir::IfStmt&>(*s);
        collect_defined(iff.then_block, out);
        collect_defined(iff.else_block, out);
        break;
      }
      case ir::StmtKind::Do:
        collect_defined(static_cast<const ir::DoStmt&>(*s).body, out);
        break;
      case ir::StmtKind::LoopNest:
        for (const auto& b2 :
             static_cast<const ir::LoopNestStmt&>(*s).body) {
          out.insert(b2.lhs.array);
        }
        break;
      default:
        break;
    }
  }
}

}  // namespace

class SsaBuilder {
 public:
  explicit SsaBuilder(const ir::Program& program) : prog_(program) {}

  ArraySsa run() {
    const int n = prog_.symbols.num_arrays();
    out_.versions_.resize(static_cast<std::size_t>(n));
    out_.uses_.resize(static_cast<std::size_t>(n));
    out_.feeds_phi_.resize(static_cast<std::size_t>(n));
    out_.live_at_exit_.resize(static_cast<std::size_t>(n));
    env_.assign(static_cast<std::size_t>(n), 0);
    for (int a = 0; a < n; ++a) {
      new_version(a, SsaVersion::Kind::Initial, nullptr, {});
    }
    process_block(prog_.body);
    for (int a = 0; a < n; ++a) {
      out_.live_at_exit_[static_cast<std::size_t>(a)]
                        [static_cast<std::size_t>(env_at(a))] = true;
    }
    return std::move(out_);
  }

 private:
  int env_at(ir::ArrayId a) const {
    return env_[static_cast<std::size_t>(a)];
  }

  int new_version(ir::ArrayId a, SsaVersion::Kind kind, const ir::Stmt* def,
                  std::vector<int> operands) {
    auto& vers = out_.versions_[static_cast<std::size_t>(a)];
    SsaVersion v;
    v.kind = kind;
    v.array = a;
    v.number = static_cast<int>(vers.size());
    v.def = def;
    v.phi_operands = std::move(operands);
    vers.push_back(v);
    out_.uses_[static_cast<std::size_t>(a)].emplace_back();
    out_.feeds_phi_[static_cast<std::size_t>(a)].push_back(false);
    out_.live_at_exit_[static_cast<std::size_t>(a)].push_back(false);
    return v.number;
  }

  int make_phi(ir::ArrayId a, std::vector<int> operands) {
    for (int op : operands) {
      out_.feeds_phi_[static_cast<std::size_t>(a)]
                     [static_cast<std::size_t>(op)] = true;
      // Record the phi consumption as a use with null stmt/ref.
      out_.uses_[static_cast<std::size_t>(a)][static_cast<std::size_t>(op)]
          .push_back(SsaUse{nullptr, nullptr});
    }
    return new_version(a, SsaVersion::Kind::Phi, nullptr,
                       std::move(operands));
  }

  void use_ref(const ir::ArrayRef& ref, const ir::Stmt& s) {
    const int ver = env_at(ref.array);
    out_.use_versions_[&ref] = ver;
    out_.uses_[static_cast<std::size_t>(ref.array)]
              [static_cast<std::size_t>(ver)]
        .push_back(SsaUse{&s, &ref});
  }

  void use_expr(const ir::Expr& e, const ir::Stmt& s) {
    ir::visit_exprs(e, [&](const ir::Expr& node) {
      if (node.kind == ir::ExprKind::ArrayRefK) use_ref(node.ref, s);
    });
  }

  void def_array(ir::ArrayId a, const ir::Stmt& s) {
    const int v = new_version(a, SsaVersion::Kind::Def, &s, {});
    env_[static_cast<std::size_t>(a)] = v;
    out_.def_versions_[&s] = v;
  }

  void process_block(const ir::Block& b) {
    for (const ir::StmtPtr& sp : b) {
      out_.env_before_[sp.get()] = env_;
      process_stmt(*sp);
    }
  }

  void process_stmt(const ir::Stmt& s) {
    switch (s.kind) {
      case ir::StmtKind::ArrayAssign: {
        const auto& stmt = static_cast<const ir::ArrayAssignStmt&>(s);
        use_expr(*stmt.rhs, s);
        // A section assignment preserves elements outside the section,
        // so it reads the previous version (update-def).
        if (!stmt.lhs.whole_array()) use_ref(stmt.lhs, s);
        def_array(stmt.lhs.array, s);
        return;
      }
      case ir::StmtKind::ShiftAssign: {
        const auto& stmt = static_cast<const ir::ShiftAssignStmt&>(s);
        use_ref(stmt.src, s);
        def_array(stmt.dst, s);
        return;
      }
      case ir::StmtKind::OverlapShift: {
        const auto& stmt = static_cast<const ir::OverlapShiftStmt&>(s);
        use_ref(stmt.src, s);  // fills overlap areas; not a value def
        return;
      }
      case ir::StmtKind::Copy: {
        const auto& stmt = static_cast<const ir::CopyStmt&>(s);
        use_ref(stmt.src, s);
        def_array(stmt.dst, s);
        return;
      }
      case ir::StmtKind::Alloc:
        for (ir::ArrayId a : static_cast<const ir::AllocStmt&>(s).arrays) {
          def_array(a, s);  // fresh (undefined) storage
        }
        return;
      case ir::StmtKind::Free:
      case ir::StmtKind::ScalarAssign:
        return;
      case ir::StmtKind::If: {
        const auto& iff = static_cast<const ir::IfStmt&>(s);
        const std::vector<int> before = env_;
        process_block(iff.then_block);
        std::vector<int> after_then = env_;
        env_ = before;
        process_block(iff.else_block);
        for (std::size_t a = 0; a < env_.size(); ++a) {
          if (after_then[a] != env_[a]) {
            env_[a] = make_phi(static_cast<ir::ArrayId>(a),
                               {after_then[a], env_[a]});
          }
        }
        return;
      }
      case ir::StmtKind::Do: {
        const auto& loop = static_cast<const ir::DoStmt&>(s);
        std::set<ir::ArrayId> defined;
        collect_defined(loop.body, defined);
        std::vector<int> incoming(defined.size());
        std::vector<int> phis(defined.size());
        std::size_t idx = 0;
        for (ir::ArrayId a : defined) {
          incoming[idx] = env_at(a);
          // Placeholder phi; operands patched after the body.
          phis[idx] = make_phi(a, {incoming[idx]});
          env_[static_cast<std::size_t>(a)] = phis[idx];
          ++idx;
        }
        process_block(loop.body);
        idx = 0;
        for (ir::ArrayId a : defined) {
          const int body_end = env_at(a);
          auto& phi = out_.versions_[static_cast<std::size_t>(a)]
                                    [static_cast<std::size_t>(phis[idx])];
          phi.phi_operands.push_back(body_end);
          out_.feeds_phi_[static_cast<std::size_t>(a)]
                         [static_cast<std::size_t>(body_end)] = true;
          out_.uses_[static_cast<std::size_t>(a)]
                    [static_cast<std::size_t>(body_end)]
              .push_back(SsaUse{nullptr, nullptr});
          // After the loop (0 or more trips) the merged value is the phi.
          env_[static_cast<std::size_t>(a)] = phis[idx];
          ++idx;
        }
        return;
      }
      case ir::StmtKind::LoopNest: {
        const auto& nest = static_cast<const ir::LoopNestStmt&>(s);
        for (const auto& b : nest.body) {
          use_expr(*b.rhs, s);
          def_array(b.lhs.array, s);
        }
        return;
      }
    }
  }

  const ir::Program& prog_;
  ArraySsa out_;
  std::vector<int> env_;
};

ArraySsa ArraySsa::build(const ir::Program& program) {
  return SsaBuilder(program).run();
}

int ArraySsa::version_at(const ir::Stmt& stmt, ir::ArrayId array) const {
  auto it = env_before_.find(&stmt);
  if (it == env_before_.end()) return -1;
  return it->second.at(static_cast<std::size_t>(array));
}

int ArraySsa::use_version(const ir::ArrayRef& ref) const {
  auto it = use_versions_.find(&ref);
  return it == use_versions_.end() ? -1 : it->second;
}

int ArraySsa::def_version(const ir::Stmt& stmt) const {
  auto it = def_versions_.find(&stmt);
  return it == def_versions_.end() ? -1 : it->second;
}

const std::vector<SsaUse>& ArraySsa::uses_of(ir::ArrayId array,
                                             int version) const {
  return uses_.at(static_cast<std::size_t>(array))
      .at(static_cast<std::size_t>(version));
}

bool ArraySsa::feeds_phi(ir::ArrayId array, int version) const {
  return feeds_phi_.at(static_cast<std::size_t>(array))
      .at(static_cast<std::size_t>(version));
}

bool ArraySsa::live_at_exit(ir::ArrayId array, int version) const {
  return live_at_exit_.at(static_cast<std::size_t>(array))
      .at(static_cast<std::size_t>(version));
}

const SsaVersion& ArraySsa::version_info(ir::ArrayId array,
                                         int version) const {
  return versions_.at(static_cast<std::size_t>(array))
      .at(static_cast<std::size_t>(version));
}

int ArraySsa::num_versions(ir::ArrayId array) const {
  return static_cast<int>(versions_.at(static_cast<std::size_t>(array)).size());
}

}  // namespace hpfsc::analysis

#include "analysis/congruence.hpp"

namespace hpfsc::analysis {

namespace {

/// Iteration-space string for a (possibly sectioned) LHS reference:
/// whole arrays use the declared extents.
std::string space_signature(const ir::ArrayRef& lhs,
                            const ir::SymbolTable& symbols) {
  const ir::ArraySymbol& sym = symbols.array(lhs.array);
  std::string out;
  for (int d = 0; d < sym.rank; ++d) {
    if (d != 0) out += ",";
    if (lhs.whole_array()) {
      out += "1:" + sym.extent[d].str();
    } else {
      const ir::SectionRange& r = lhs.section[static_cast<std::size_t>(d)];
      out += r.lo.str() + ":" + r.hi.str();
    }
  }
  return out;
}

}  // namespace

StmtClass classify(const ir::Stmt& stmt, const ir::SymbolTable& symbols) {
  switch (stmt.kind) {
    case ir::StmtKind::OverlapShift:
    case ir::StmtKind::ShiftAssign:
      return StmtClass{StmtClass::Kind::Communication, "comm"};
    case ir::StmtKind::ArrayAssign: {
      const auto& s = static_cast<const ir::ArrayAssignStmt&>(stmt);
      const ir::ArraySymbol& sym = symbols.array(s.lhs.array);
      return StmtClass{StmtClass::Kind::Compute,
                       sym.dist_str() + "|" + space_signature(s.lhs, symbols)};
    }
    case ir::StmtKind::Copy: {
      const auto& s = static_cast<const ir::CopyStmt&>(stmt);
      const ir::ArraySymbol& sym = symbols.array(s.dst);
      ir::ArrayRef whole;
      whole.array = s.dst;
      return StmtClass{StmtClass::Kind::Compute,
                       sym.dist_str() + "|" + space_signature(whole, symbols)};
    }
    case ir::StmtKind::ScalarAssign:
      return StmtClass{StmtClass::Kind::Scalar, "scalar"};
    default:
      return StmtClass{StmtClass::Kind::Barrier, "barrier"};
  }
}

std::vector<PartitionGroup> typed_fusion(
    const std::vector<const ir::Stmt*>& stmts, const Ddg& ddg,
    const ir::SymbolTable& symbols) {
  const int n = static_cast<int>(stmts.size());
  std::vector<StmtClass> classes;
  classes.reserve(stmts.size());
  for (const ir::Stmt* s : stmts) classes.push_back(classify(*s, symbols));

  std::vector<int> remaining_preds(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    remaining_preds[static_cast<std::size_t>(i)] =
        static_cast<int>(ddg.preds(i).size());
  }
  std::vector<bool> scheduled(static_cast<std::size_t>(n), false);

  std::vector<PartitionGroup> groups;
  int done = 0;
  while (done < n) {
    // Earliest ready statement (by original order) seeds the group.
    int seed = -1;
    for (int i = 0; i < n; ++i) {
      if (!scheduled[static_cast<std::size_t>(i)] &&
          remaining_preds[static_cast<std::size_t>(i)] == 0) {
        seed = i;
        break;
      }
    }
    PartitionGroup group;
    group.cls = classes[static_cast<std::size_t>(seed)];
    const bool groupable = group.cls.kind != StmtClass::Kind::Barrier;
    // Greedily absorb every ready statement of the same class.  A
    // statement becoming ready because of intra-group scheduling is
    // picked up in later sweeps of the same loop.
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (int i = 0; i < n; ++i) {
        if (scheduled[static_cast<std::size_t>(i)]) continue;
        if (remaining_preds[static_cast<std::size_t>(i)] != 0) continue;
        if (classes[static_cast<std::size_t>(i)] != group.cls && i != seed) {
          continue;
        }
        scheduled[static_cast<std::size_t>(i)] = true;
        group.stmts.push_back(i);
        ++done;
        for (int succ : ddg.succs(i)) {
          --remaining_preds[static_cast<std::size_t>(succ)];
        }
        progressed = true;
        if (!groupable) break;  // control/alloc statements stay alone
      }
      if (!groupable && !group.stmts.empty()) break;
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

}  // namespace hpfsc::analysis

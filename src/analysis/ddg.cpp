#include "analysis/ddg.hpp"

#include <algorithm>

namespace hpfsc::analysis {

namespace {

void add_ref_reads(const ir::ArrayRef& ref, std::vector<Access>& reads) {
  reads.push_back(Access{Access::Kind::Owned, ref.array, 0, 0});
  for (int d = 0; d < ir::kMaxRank; ++d) {
    if (ref.offset[d] != 0) {
      reads.push_back(Access{Access::Kind::Halo, ref.array, d,
                             ref.offset[d] > 0 ? +1 : -1});
    }
  }
}

void add_expr_reads(const ir::Expr& e, std::vector<Access>& reads) {
  ir::visit_exprs(e, [&](const ir::Expr& node) {
    if (node.kind == ir::ExprKind::ArrayRefK) {
      add_ref_reads(node.ref, reads);
    } else if (node.kind == ir::ExprKind::ScalarRef) {
      reads.push_back(Access{Access::Kind::Scalar, node.scalar, 0, 0});
    }
  });
}

void add_whole_array(ir::ArrayId a, std::vector<Access>& out) {
  out.push_back(Access{Access::Kind::Owned, a, 0, 0});
  for (int d = 0; d < ir::kMaxRank; ++d) {
    out.push_back(Access{Access::Kind::Halo, a, d, +1});
    out.push_back(Access{Access::Kind::Halo, a, d, -1});
  }
}

void add_block_accesses(const ir::Block& b, AccessSets& out);

void add_stmt_accesses(const ir::Stmt& s, AccessSets& out) {
  switch (s.kind) {
    case ir::StmtKind::ArrayAssign: {
      const auto& stmt = static_cast<const ir::ArrayAssignStmt&>(s);
      add_expr_reads(*stmt.rhs, out.reads);
      out.writes.push_back(
          Access{Access::Kind::Owned, stmt.lhs.array, 0, 0});
      return;
    }
    case ir::StmtKind::ShiftAssign: {
      const auto& stmt = static_cast<const ir::ShiftAssignStmt&>(s);
      add_ref_reads(stmt.src, out.reads);
      out.writes.push_back(Access{Access::Kind::Owned, stmt.dst, 0, 0});
      return;
    }
    case ir::StmtKind::OverlapShift: {
      const auto& stmt = static_cast<const ir::OverlapShiftStmt&>(s);
      // Reads the owned boundary strip, plus — for RSD-extended or
      // multi-offset shifts — overlap areas filled by earlier shifts.
      out.reads.push_back(
          Access{Access::Kind::Owned, stmt.src.array, 0, 0});
      for (int d = 0; d < ir::kMaxRank; ++d) {
        if (d == stmt.dim) continue;
        if (stmt.rsd.lo[d] > 0 || stmt.src.offset[d] < 0) {
          out.reads.push_back(
              Access{Access::Kind::Halo, stmt.src.array, d, -1});
        }
        if (stmt.rsd.hi[d] > 0 || stmt.src.offset[d] > 0) {
          out.reads.push_back(
              Access{Access::Kind::Halo, stmt.src.array, d, +1});
        }
      }
      out.writes.push_back(Access{Access::Kind::Halo, stmt.src.array,
                                  stmt.dim, stmt.shift > 0 ? +1 : -1});
      return;
    }
    case ir::StmtKind::Copy: {
      const auto& stmt = static_cast<const ir::CopyStmt&>(s);
      add_ref_reads(stmt.src, out.reads);
      out.writes.push_back(Access{Access::Kind::Owned, stmt.dst, 0, 0});
      return;
    }
    case ir::StmtKind::Alloc:
      for (ir::ArrayId a : static_cast<const ir::AllocStmt&>(s).arrays) {
        add_whole_array(a, out.writes);
      }
      return;
    case ir::StmtKind::Free:
      // A deallocation must stay after every access; model as a write
      // of everything.
      for (ir::ArrayId a : static_cast<const ir::FreeStmt&>(s).arrays) {
        add_whole_array(a, out.writes);
      }
      return;
    case ir::StmtKind::ScalarAssign: {
      const auto& stmt = static_cast<const ir::ScalarAssignStmt&>(s);
      add_expr_reads(*stmt.rhs, out.reads);
      out.writes.push_back(Access{Access::Kind::Scalar, stmt.scalar, 0, 0});
      return;
    }
    case ir::StmtKind::If: {
      const auto& iff = static_cast<const ir::IfStmt&>(s);
      add_expr_reads(*iff.cond, out.reads);
      add_block_accesses(iff.then_block, out);
      add_block_accesses(iff.else_block, out);
      return;
    }
    case ir::StmtKind::Do: {
      const auto& loop = static_cast<const ir::DoStmt&>(s);
      out.writes.push_back(Access{Access::Kind::Scalar, loop.var, 0, 0});
      add_block_accesses(loop.body, out);
      return;
    }
    case ir::StmtKind::LoopNest: {
      const auto& nest = static_cast<const ir::LoopNestStmt&>(s);
      for (const auto& b : nest.body) {
        add_expr_reads(*b.rhs, out.reads);
        out.writes.push_back(
            Access{Access::Kind::Owned, b.lhs.array, 0, 0});
      }
      return;
    }
  }
}

void add_block_accesses(const ir::Block& b, AccessSets& out) {
  for (const ir::StmtPtr& s : b) add_stmt_accesses(*s, out);
}

bool intersects(const std::vector<Access>& a, const std::vector<Access>& b) {
  for (const Access& x : a) {
    if (std::find(b.begin(), b.end(), x) != b.end()) return true;
  }
  return false;
}

}  // namespace

AccessSets accesses_of(const ir::Stmt& stmt) {
  AccessSets out;
  add_stmt_accesses(stmt, out);
  return out;
}

Ddg Ddg::build(const std::vector<const ir::Stmt*>& stmts) {
  Ddg g;
  const int n = static_cast<int>(stmts.size());
  g.succs_.resize(static_cast<std::size_t>(n));
  g.preds_.resize(static_cast<std::size_t>(n));
  std::vector<AccessSets> sets;
  sets.reserve(stmts.size());
  for (const ir::Stmt* s : stmts) sets.push_back(accesses_of(*s));
  // An OVERLAP_CSHIFT's overlap-area write is *idempotent*: the values
  // it stores are a pure function of the array's owned data, which is
  // itself protected by true/anti dependences on the Owned component.
  // Re-filling an overlap area therefore conflicts with nothing — no
  // anti dependence from an earlier overlap read, no output dependence
  // with an earlier fill (paper Section 4.3 lists only the true
  // dependences into the compute statements).  EOSHIFT fills depend on
  // the boundary operand, so they stay conservative.
  std::vector<bool> idempotent_fill(static_cast<std::size_t>(n), false);
  for (int i = 0; i < n; ++i) {
    const auto* ov = dynamic_cast<const ir::OverlapShiftStmt*>(
        stmts[static_cast<std::size_t>(i)]);
    if (ov != nullptr && ov->shift_kind == ir::ShiftKind::Circular) {
      idempotent_fill[static_cast<std::size_t>(i)] = true;
    }
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const auto& si = sets[static_cast<std::size_t>(i)];
      const auto& sj = sets[static_cast<std::size_t>(j)];
      bool connected = false;
      if (intersects(si.writes, sj.reads)) {
        g.edges_.push_back(DepEdge{i, j, DepKind::True});
        connected = true;
      }
      if (!idempotent_fill[static_cast<std::size_t>(j)] &&
          intersects(si.reads, sj.writes)) {
        g.edges_.push_back(DepEdge{i, j, DepKind::Anti});
        connected = true;
      }
      if (!idempotent_fill[static_cast<std::size_t>(j)] &&
          intersects(si.writes, sj.writes)) {
        g.edges_.push_back(DepEdge{i, j, DepKind::Output});
        connected = true;
      }
      if (connected) {
        g.succs_[static_cast<std::size_t>(i)].push_back(j);
        g.preds_[static_cast<std::size_t>(j)].push_back(i);
      }
    }
  }
  return g;
}

bool Ddg::reaches(int i, int j) const {
  if (i >= j) return false;
  std::vector<bool> seen(static_cast<std::size_t>(size()), false);
  std::vector<int> stack{i};
  while (!stack.empty()) {
    int cur = stack.back();
    stack.pop_back();
    if (cur == j) return true;
    if (cur > j) continue;
    for (int next : succs_[static_cast<std::size_t>(cur)]) {
      if (!seen[static_cast<std::size_t>(next)]) {
        seen[static_cast<std::size_t>(next)] = true;
        stack.push_back(next);
      }
    }
  }
  return false;
}

}  // namespace hpfsc::analysis

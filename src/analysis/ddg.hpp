// Statement-level data-dependence graph over a straight-line run of
// statements (one basic block).  Arrays are modeled at the granularity
// the stencil pipeline needs: the owned subgrid plus one component per
// overlap-area side, so that OVERLAP_SHIFT ordering constraints (which
// side a shift fills, which sides an RSD-carrying shift reads) are
// captured exactly (paper Sections 3.2-3.3).
#pragma once

#include <vector>

#include "ir/program.hpp"

namespace hpfsc::analysis {

/// One abstract memory component touched by a statement.
struct Access {
  enum class Kind {
    Owned,   ///< the array's owned subgrid elements
    Halo,    ///< one overlap-area side: (dim, dir)
    Scalar,  ///< a scalar symbol
  };
  Kind kind = Kind::Owned;
  int id = -1;   ///< array id (Owned/Halo) or scalar id (Scalar)
  int dim = 0;   ///< Halo: dimension
  int dir = 0;   ///< Halo: +1 or -1

  bool operator==(const Access&) const = default;
};

/// Computes the component sets a statement reads and writes.  Control
/// statements (If/Do) conservatively read+write everything they touch;
/// the partitioner never reorders across them anyway.
struct AccessSets {
  std::vector<Access> reads;
  std::vector<Access> writes;
};
[[nodiscard]] AccessSets accesses_of(const ir::Stmt& stmt);

enum class DepKind { True, Anti, Output };

struct DepEdge {
  int from = 0;  ///< index into the statement run (from < to)
  int to = 0;
  DepKind kind = DepKind::True;
};

/// Dependence graph over `stmts[first..last)`; indices in edges are
/// relative to `first`.  The graph is acyclic by construction (edges
/// always point forward in statement order).
class Ddg {
 public:
  static Ddg build(const std::vector<const ir::Stmt*>& stmts);

  [[nodiscard]] int size() const { return static_cast<int>(succs_.size()); }
  [[nodiscard]] const std::vector<DepEdge>& edges() const { return edges_; }
  [[nodiscard]] const std::vector<int>& succs(int i) const {
    return succs_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const std::vector<int>& preds(int i) const {
    return preds_[static_cast<std::size_t>(i)];
  }
  /// True if there is a dependence path from i to j (i < j).
  [[nodiscard]] bool reaches(int i, int j) const;

 private:
  std::vector<DepEdge> edges_;
  std::vector<std::vector<int>> succs_;
  std::vector<std::vector<int>> preds_;
};

}  // namespace hpfsc::analysis

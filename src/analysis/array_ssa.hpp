// Whole-array static single assignment form (paper Section 3.1): each
// whole-array definition creates a new version; section assignments are
// update-defs (they read the previous version); phi versions merge
// control-flow paths (IF joins and DO headers/exits).
//
// The offset-array algorithm uses SSA to answer, for a shift definition
// S: dst = CSHIFT(src,...), "does this use of dst see exactly S's value,
// and is src's value at the use identical to src's value at S?" — both
// are plain version-number comparisons here.
//
// The analysis is keyed by node addresses (const Stmt* / const
// ArrayRef*); it must be rebuilt after any transformation.
#pragma once

#include <unordered_map>
#include <vector>

#include "ir/program.hpp"

namespace hpfsc::analysis {

/// A single SSA version of one array.
struct SsaVersion {
  enum class Kind {
    Initial,  ///< value on entry (or undefined for temps)
    Def,      ///< defined by a statement
    Phi,      ///< control-flow merge
  };
  Kind kind = Kind::Initial;
  ir::ArrayId array = -1;
  int number = 0;                ///< version number, unique per array
  const ir::Stmt* def = nullptr; ///< Def: the defining statement
  std::vector<int> phi_operands; ///< Phi: merged version numbers
};

/// One recorded use of an (array, version) pair.
struct SsaUse {
  const ir::Stmt* stmt = nullptr;   ///< enclosing statement
  const ir::ArrayRef* ref = nullptr;///< the referencing ArrayRef
};

class ArraySsa {
 public:
  /// Builds SSA for the whole program body.
  static ArraySsa build(const ir::Program& program);

  /// Version observed by a use site (keyed by the ArrayRef's address).
  /// Returns -1 when the ref was not seen (e.g. after IR mutation).
  [[nodiscard]] int use_version(const ir::ArrayRef& ref) const;

  /// Version created by a defining statement (ShiftAssign, whole/section
  /// ArrayAssign, Copy).  Returns -1 for non-defs.
  [[nodiscard]] int def_version(const ir::Stmt& stmt) const;

  /// All uses of a given (array, version).  Phi operands appear as uses
  /// with ref == nullptr and stmt == nullptr.
  [[nodiscard]] const std::vector<SsaUse>& uses_of(ir::ArrayId array,
                                                   int version) const;

  /// Version of `array` reaching the program point just before `stmt`
  /// (-1 if the statement was not seen).  Used by the offset-array pass
  /// to verify that a rewritten use observes the same source value as
  /// the shift definition did.
  [[nodiscard]] int version_at(const ir::Stmt& stmt, ir::ArrayId array) const;

  /// True when the version flows into any phi (its value survives a
  /// merge, so eliminating its def would change a merged value).
  [[nodiscard]] bool feeds_phi(ir::ArrayId array, int version) const;

  /// True when the version is live at program exit (it is the last
  /// version of its array on some path).
  [[nodiscard]] bool live_at_exit(ir::ArrayId array, int version) const;

  [[nodiscard]] const SsaVersion& version_info(ir::ArrayId array,
                                               int version) const;
  [[nodiscard]] int num_versions(ir::ArrayId array) const;

 private:
  friend class SsaBuilder;

  std::vector<std::vector<SsaVersion>> versions_;  ///< per array
  std::vector<std::vector<std::vector<SsaUse>>> uses_;  ///< [array][ver]
  std::vector<std::vector<bool>> feeds_phi_;
  std::vector<std::vector<bool>> live_at_exit_;
  std::unordered_map<const ir::ArrayRef*, int> use_versions_;
  std::unordered_map<const ir::Stmt*, int> def_versions_;
  std::unordered_map<const ir::Stmt*, std::vector<int>> env_before_;
};

}  // namespace hpfsc::analysis

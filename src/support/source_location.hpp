// Source locations and ranges used by the frontend and diagnostics.
#pragma once

#include <cstdint>
#include <string>

namespace hpfsc {

/// A position in the input source text.  Lines and columns are 1-based;
/// a value of 0 means "unknown" (e.g. for compiler-generated statements).
struct SourceLoc {
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] constexpr bool valid() const { return line != 0; }
  constexpr auto operator<=>(const SourceLoc&) const = default;
};

/// A half-open range of source text [begin, end).
struct SourceRange {
  SourceLoc begin;
  SourceLoc end;

  constexpr bool operator==(const SourceRange&) const = default;
};

/// Renders "line:column" (or "<generated>" when unknown).
inline std::string to_string(SourceLoc loc) {
  if (!loc.valid()) return "<generated>";
  return std::to_string(loc.line) + ":" + std::to_string(loc.column);
}

}  // namespace hpfsc

#include "support/diagnostics.hpp"

#include <utility>

namespace hpfsc {

std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::Note:
      return "note";
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::render() const {
  std::string out(to_string(severity));
  if (loc.valid()) {
    out += " at ";
    out += to_string(loc);
  }
  out += ": ";
  out += message;
  return out;
}

void DiagnosticEngine::error(SourceLoc loc, std::string message) {
  add(Severity::Error, loc, std::move(message));
}

void DiagnosticEngine::warning(SourceLoc loc, std::string message) {
  add(Severity::Warning, loc, std::move(message));
}

void DiagnosticEngine::note(SourceLoc loc, std::string message) {
  add(Severity::Note, loc, std::move(message));
}

std::string DiagnosticEngine::render_all() const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    out += d.render();
    out += '\n';
  }
  return out;
}

void DiagnosticEngine::clear() {
  diags_.clear();
  error_count_ = 0;
}

void DiagnosticEngine::add(Severity sev, SourceLoc loc, std::string message) {
  if (sev == Severity::Error) ++error_count_;
  diags_.push_back(Diagnostic{sev, loc, std::move(message)});
}

}  // namespace hpfsc

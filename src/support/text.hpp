// Small text utilities shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hpfsc {

/// ASCII upper-casing (Fortran is case-insensitive; the whole toolchain
/// canonicalizes identifiers and keywords to upper case).
[[nodiscard]] inline std::string to_upper(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(c >= 'a' && c <= 'z' ? static_cast<char>(c - 'a' + 'A') : c);
  }
  return out;
}

/// Joins elements with a separator: join({"a","b"}, ", ") == "a, b".
[[nodiscard]] inline std::string join(const std::vector<std::string>& parts,
                                      std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

/// Signed integer rendered with an explicit sign: "+1", "-2", "0" -> "+0".
[[nodiscard]] inline std::string signed_str(int v) {
  return (v >= 0 ? "+" : "") + std::to_string(v);
}

/// Splits into lines (without trailing newlines); used by golden tests.
[[nodiscard]] inline std::vector<std::string> split_lines(std::string_view s) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t nl = s.find('\n', start);
    if (nl == std::string_view::npos) {
      if (start < s.size()) lines.emplace_back(s.substr(start));
      break;
    }
    lines.emplace_back(s.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// Strips leading/trailing spaces and tabs.
[[nodiscard]] inline std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace hpfsc

// Diagnostic engine: collects errors/warnings/notes emitted by the
// frontend and the optimization passes, so a driver can report them all
// at once rather than aborting on the first problem.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/source_location.hpp"

namespace hpfsc {

enum class Severity { Note, Warning, Error };

[[nodiscard]] std::string_view to_string(Severity s);

/// One reported problem.
struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;

  /// Renders "error at 3:14: message".
  [[nodiscard]] std::string render() const;
};

/// Accumulates diagnostics.  Passes take a reference and append; the
/// driver checks `has_errors()` between phases.
class DiagnosticEngine {
 public:
  void error(SourceLoc loc, std::string message);
  void warning(SourceLoc loc, std::string message);
  void note(SourceLoc loc, std::string message);

  [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
  [[nodiscard]] std::size_t error_count() const { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& all() const { return diags_; }

  /// All diagnostics rendered one per line (empty string when clean).
  [[nodiscard]] std::string render_all() const;

  void clear();

 private:
  void add(Severity sev, SourceLoc loc, std::string message);

  std::vector<Diagnostic> diags_;
  std::size_t error_count_ = 0;
};

}  // namespace hpfsc

// The compile-once/run-many service layer: turns the one-shot
// Compiler -> Execution driver into a server that amortizes compilation
// across time steps, callers, and threads.
//
//   StencilService — owns the content-addressed PlanCache.  compile()
//     canonicalizes the request into a CacheKey, serves it from cache,
//     or runs the full pipeline exactly once per distinct key no matter
//     how many threads ask concurrently (single flight).
//   Session — one client's executor state.  run() reuses one prepared
//     Execution (and its simpi::Machine) per (plan, bindings) across
//     any number of run calls, so steady-state requests do no
//     compilation, no planning, and no allocation.  At most
//     ServiceConfig::session_capacity prepared executions are retained;
//     the least recently run beyond that are torn down (machine and PE
//     threads included).  A Session is NOT thread-safe; give each
//     client thread its own (sessions share the service's cache, which
//     is).
//   ServicePool — a worker pool serving ServiceRequests concurrently,
//     one Session (hence independent simpi::Machine instances) per
//     worker.
//
// Observability: when the service holds a trace session, every request
// emits a "service.compile" / "service.run" / "service.request" span
// (category "service") tagged with the key hash and cache outcome, and
// the cache emits cumulative service.cache.{hit,miss,evict} and
// service.singleflight.coalesced counters.  On a cache hit no
// compilation pass runs, so a hit emits *zero* "pass/..." spans — the
// warm path's defining property, asserted in tests/service/.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "driver/compiler.hpp"
#include "executor/execution.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "service/plan_cache.hpp"
#include "simpi/config.hpp"

namespace hpfsc::service {

struct ServiceConfig {
  /// Maximum resident compiled plans (LRU beyond this).
  std::size_t cache_capacity = 32;
  /// Maximum prepared Executions (each owning a simpi::Machine and its
  /// PE worker threads) retained per Session; least-recently-run
  /// entries beyond this are torn down (0 is clamped to 1).
  std::size_t session_capacity = 16;
  /// Default machine for sessions and cache keying.  A program's
  /// !HPF$ PROCESSORS directive still overrides the PE grid at run
  /// time (as in hpfsc_dump).
  simpi::MachineConfig machine;
  /// Observability session (not owned; may be null).  Must outlive the
  /// service and every Session/ServicePool created from it.
  obs::TraceSession* trace = nullptr;
};

class StencilService {
 public:
  explicit StencilService(ServiceConfig config);

  StencilService(const StencilService&) = delete;
  StencilService& operator=(const StencilService&) = delete;

  /// Compile-or-fetch.  Thread-safe.  Throws CompileError exactly as
  /// Compiler::compile does (every coalesced waiter of a failing
  /// compile receives the same error; failures are not cached).
  PlanHandle compile(std::string_view source,
                     const CompilerOptions& options,
                     CacheOutcome* outcome = nullptr);

  [[nodiscard]] const ServiceConfig& config() const { return config_; }
  [[nodiscard]] CacheCounters cache_counters() const {
    return cache_.counters();
  }
  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }
  [[nodiscard]] PlanCache& cache() { return cache_; }
  [[nodiscard]] obs::TraceSession* trace() const { return config_.trace; }

  /// Service-level latency histograms (milliseconds), shared by every
  /// Session and ServicePool built on this service:
  ///   service.compile.cold_ms — compile() calls that ran the pipeline
  ///   service.compile.warm_ms — compile() calls served by cache hit
  ///                             or coalesced onto an in-flight compile
  ///   service.run_ms          — Session::run wall time
  ///   service.request_ms      — end-to-end ServicePool request time
  /// Thread-safe (the registry serializes internally).
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return metrics_;
  }

 private:
  /// The memoized CacheKey for an exact (source bytes, options) repeat.
  /// Canonicalizing a request (lex -> parse -> lower -> IR print) costs
  /// more than a warm run does, so the steady-state path must not pay
  /// it: byte-identical requests reuse the key and go straight to the
  /// cache lookup.  Textually-different-but-IR-identical requests miss
  /// the memo, canonicalize, and still land on the same cache entry, so
  /// this is purely a fast path — hit/miss/eviction semantics are
  /// unchanged.
  CacheKey memoized_key(std::string_view source,
                        const CompilerOptions& options);

  ServiceConfig config_;
  PlanCache cache_;
  obs::MetricsRegistry metrics_;
  std::mutex memo_mutex_;
  std::unordered_map<std::string, CacheKey> key_memo_;
};

/// One run request against a compiled plan.
struct RunRequest {
  PlanHandle plan;
  Bindings bindings;
  /// Time steps: Execution::run(steps) iterations of the op list.
  int steps = 1;
  /// Called once, when the (plan, bindings) Execution is first
  /// prepared — the place to set input arrays.  Subsequent runs reuse
  /// the machine state (time-stepping semantics).
  std::function<void(Execution&)> init;
};

class Session {
 public:
  explicit Session(StencilService& service);

  Session(Session&&) = default;

  /// Forwards to the service (shared cache, single flight).
  PlanHandle compile(std::string_view source, const CompilerOptions& options,
                     CacheOutcome* outcome = nullptr);

  /// Runs `req.steps` iterations, creating and preparing the Execution
  /// for (plan, bindings) on first use and reusing it afterwards.
  Execution::RunStats run(const RunRequest& req);

  /// The prepared Execution for (plan, bindings) — creates it (and
  /// calls no init) if absent.  For result inspection in tests/tools.
  Execution& execution(const PlanHandle& plan, const Bindings& bindings);

  /// Number of live prepared executions held by this session.
  [[nodiscard]] std::size_t num_executions() const {
    return executions_.size();
  }

 private:
  /// (canonical plan key, bindings fingerprint).  Keyed by content, not
  /// by CachedPlan*, so a plan recompiled after cache eviction maps back
  /// to the same prepared Execution instead of aliasing a freed
  /// pointer's address (ABA).
  using ExecKey = std::pair<std::string, std::string>;

  struct ExecEntry {
    /// Pins the plan for as long as the Execution prepared from it
    /// lives, independent of cache eviction.
    PlanHandle plan;
    std::unique_ptr<Execution> exec;
    std::list<ExecKey>::iterator lru_it;
  };

  ExecEntry& entry_for(const PlanHandle& plan, const Bindings& bindings,
                       const std::function<void(Execution&)>& init,
                       bool* created);

  StencilService* service_;
  std::map<ExecKey, ExecEntry> executions_;
  std::list<ExecKey> exec_lru_;  ///< most recently run first
};

/// A compile+run request submitted to the pool.
struct ServiceRequest {
  std::string source;
  CompilerOptions options;
  Bindings bindings;
  int steps = 1;
  std::function<void(Execution&)> init;
};

struct ServiceResponse {
  Execution::RunStats stats;
  CacheOutcome outcome = CacheOutcome::Miss;
  /// Wall-clock request latency (compile-or-fetch + run), seconds.
  double latency_seconds = 0.0;
  int worker = -1;
  /// Request-scoped trace context: the 64-bit id every span this
  /// request produced (compile, cache, run, per-PE runtime) carries as
  /// a "request_id" arg, plus the phase breakdown the per-request
  /// reassembly report prints.
  std::uint64_t request_id = 0;
  double queue_seconds = 0.0;    ///< submit -> worker pickup
  double compile_seconds = 0.0;  ///< compile-or-fetch (cache hit ~ 0)
  double run_seconds = 0.0;      ///< Session::run wall time
};

/// Fixed worker pool.  Each worker owns a Session, so concurrent
/// requests execute on independent simpi::Machine instances while
/// sharing the service's plan cache.  Errors propagate through the
/// returned future.
class ServicePool {
 public:
  ServicePool(StencilService& service, int workers);
  ~ServicePool();

  ServicePool(const ServicePool&) = delete;
  ServicePool& operator=(const ServicePool&) = delete;

  std::future<ServiceResponse> submit(ServiceRequest request);

  /// Stops accepting work, drains the queue, joins the workers.
  /// Called by the destructor.
  void shutdown();

  [[nodiscard]] int workers() const {
    return static_cast<int>(threads_.size());
  }

 private:
  struct Item {
    ServiceRequest request;
    std::promise<ServiceResponse> promise;
    /// Submission time; the gap to worker pickup is the queue wait
    /// reported on the request span and in ServiceResponse.
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_main(int index);

  StencilService& service_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Item> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace hpfsc::service

#include "service/service.hpp"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>

namespace hpfsc::service {

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

StencilService::StencilService(ServiceConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_capacity, config_.trace) {
  cache_.set_metrics(&metrics_);
}

CacheKey StencilService::memoized_key(std::string_view source,
                                      const CompilerOptions& options) {
  std::string exact = fingerprint(options);
  exact += '\x1f';
  exact += fingerprint(config_.machine);
  exact += '\x1f';
  exact += source;
  {
    std::lock_guard<std::mutex> lock(memo_mutex_);
    auto it = key_memo_.find(exact);
    if (it != key_memo_.end()) return it->second;
  }
  CacheKey key = make_cache_key(source, options, config_.machine);
  std::lock_guard<std::mutex> lock(memo_mutex_);
  if (key_memo_.size() >= 4096) key_memo_.clear();  // crude bound; rare
  key_memo_.emplace(std::move(exact), key);
  return key;
}

PlanHandle StencilService::compile(std::string_view source,
                                   const CompilerOptions& options,
                                   CacheOutcome* outcome) {
  // Adopt the caller's request id (ServicePool sets one per request) or
  // mint a fresh one, so every compile span — and the pass spans the
  // pipeline emits below it — is attributable to exactly one request.
  const std::uint64_t rid = obs::current_request_id() != 0
                                ? obs::current_request_id()
                                : obs::next_request_id();
  obs::RequestScope rscope(rid);

  obs::TraceSession* trace = config_.trace;
  obs::Span span(trace, "service.compile", "service");
  span.arg("source_bytes", static_cast<double>(source.size()));
  const auto start = std::chrono::steady_clock::now();

  CacheKey key = memoized_key(source, options);
  span.arg("key_hash", key.hash);

  CacheOutcome how = CacheOutcome::Miss;
  std::uint64_t leader_rid = 0;
  PlanHandle plan = cache_.get_or_compile(
      key,
      [&]() -> PlanHandle {
        CompilerOptions opts = options;
        if (trace != nullptr) opts.trace = trace;
        Compiler compiler;
        CompiledProgram compiled = compiler.compile(source, opts);
        auto cached = std::make_shared<CachedPlan>();
        cached->key = key;
        cached->program = std::move(compiled.program);
        cached->processors = compiled.processors;
        cached->pipeline = std::move(compiled.pipeline);
        cached->diagnostics = std::move(compiled.diagnostics);
        return cached;
      },
      &how, &leader_rid);
  if (outcome != nullptr) *outcome = how;
  if (how == CacheOutcome::Coalesced) {
    // The compile spans this request waited on belong to the leading
    // request; record the link so the trace is joinable.
    span.arg("coalesced_onto", leader_rid);
  }
  if (plan->key.iface != key.iface) {
    // Alias hit: an alpha-renamed twin of the cached program.  Serve a
    // copy whose interface (program/scalar/array names) matches this
    // requester, so set_array/Bindings keep working under the caller's
    // own vocabulary.  Ops are index-based, so only specs and affine
    // parameters are rewritten.
    InterfaceNames want = InterfaceNames::decode(key.iface);
    auto renamed = std::make_shared<CachedPlan>();
    renamed->key = key;
    renamed->program = spmd::rename_interface(plan->program, want.program,
                                              want.scalars, want.arrays);
    renamed->processors = plan->processors;
    renamed->pipeline = plan->pipeline;
    renamed->diagnostics = plan->diagnostics;
    plan = renamed;
  }
  span.arg_str("cache", to_string(how));
  metrics_.observe(how == CacheOutcome::Miss ? "service.compile.cold_ms"
                                             : "service.compile.warm_ms",
                   ms_since(start));
  return plan;
}

// ---- Session ---------------------------------------------------------

namespace {

std::string bindings_fingerprint(const Bindings& bindings) {
  std::string out;
  for (const auto& [name, value] : bindings.values) {
    // The exact 64-bit pattern: std::to_string's fixed 6 decimals would
    // collide values closer than 1e-6 and silently reuse an Execution
    // prepared with different bindings.
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof bits);
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(bits));
    out += name;
    out += '=';
    out += hex;
    out += ';';
  }
  return out;
}

}  // namespace

Session::Session(StencilService& service) : service_(&service) {}

PlanHandle Session::compile(std::string_view source,
                            const CompilerOptions& options,
                            CacheOutcome* outcome) {
  return service_->compile(source, options, outcome);
}

Session::ExecEntry& Session::entry_for(
    const PlanHandle& plan, const Bindings& bindings,
    const std::function<void(Execution&)>& init, bool* created) {
  // The interface is part of the key: two alpha-renamed twins share a
  // canonical key but need distinct prepared Executions (their array
  // and binding names differ).
  ExecKey key{plan->key.canonical + '\x1f' + plan->key.iface,
              bindings_fingerprint(bindings)};
  auto it = executions_.find(key);
  if (created != nullptr) *created = it == executions_.end();
  if (it != executions_.end()) {
    exec_lru_.splice(exec_lru_.begin(), exec_lru_, it->second.lru_it);
    return it->second;
  }
  simpi::MachineConfig mc = service_->config().machine;
  if (plan->processors) {
    mc.pe_rows = plan->processors->first;
    mc.pe_cols = plan->processors->second;
  }
  ExecEntry entry;
  entry.plan = plan;
  entry.exec = std::make_unique<Execution>(plan->program, mc);
  entry.exec->set_trace(service_->trace());
  entry.exec->prepare(bindings);
  if (init) init(*entry.exec);
  exec_lru_.push_front(key);
  entry.lru_it = exec_lru_.begin();
  it = executions_.emplace(std::move(key), std::move(entry)).first;
  std::size_t capacity = service_->config().session_capacity;
  if (capacity == 0) capacity = 1;
  while (executions_.size() > capacity) {
    const ExecKey& victim = exec_lru_.back();
    executions_.erase(victim);
    exec_lru_.pop_back();
  }
  return it->second;
}

Execution::RunStats Session::run(const RunRequest& req) {
  // Adopt-or-mint, as in StencilService::compile: the per-PE runtime
  // spans of this run inherit the id through Machine::run.
  const std::uint64_t rid = obs::current_request_id() != 0
                                ? obs::current_request_id()
                                : obs::next_request_id();
  obs::RequestScope rscope(rid);
  obs::Span span(service_->trace(), "service.run", "service");
  span.arg("steps", req.steps);
  span.arg("key_hash", req.plan->key.hash);
  const auto start = std::chrono::steady_clock::now();
  bool created = false;
  ExecEntry& entry = entry_for(req.plan, req.bindings, req.init, &created);
  span.arg("prepared", created ? 1 : 0);
  Execution::RunStats stats = entry.exec->run(req.steps);
  service_->metrics().observe("service.run_ms", ms_since(start));
  // Per-request wait-state rollup (summed across PEs).  Distinct from
  // the per-PE simpi.* histograms the execution tees into a trace
  // session's registry, so merging the two registries never
  // double-counts an interval.
  obs::MetricsRegistry& m = service_->metrics();
  m.observe("serve.wait.recv_ms",
            static_cast<double>(stats.machine.wait.recv_wait_ns) / 1e6);
  m.observe("serve.wait.barrier_ms",
            static_cast<double>(stats.machine.wait.barrier_wait_ns) / 1e6);
  m.observe("serve.wait.pool_ms",
            static_cast<double>(stats.machine.wait.pool_wait_ns) / 1e6);
  return stats;
}

Execution& Session::execution(const PlanHandle& plan,
                              const Bindings& bindings) {
  return *entry_for(plan, bindings, nullptr, nullptr).exec;
}

// ---- ServicePool -----------------------------------------------------

ServicePool::ServicePool(StencilService& service, int workers)
    : service_(service) {
  if (workers < 1) workers = 1;
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

ServicePool::~ServicePool() { shutdown(); }

std::future<ServiceResponse> ServicePool::submit(ServiceRequest request) {
  Item item;
  item.request = std::move(request);
  item.enqueued = std::chrono::steady_clock::now();
  std::future<ServiceResponse> future = item.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::logic_error("ServicePool::submit after shutdown");
    }
    queue_.push_back(std::move(item));
  }
  cv_.notify_one();
  return future;
}

void ServicePool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ServicePool::worker_main(int index) {
  Session session(service_);
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    // One fresh request id per pool request: the request span below,
    // the compile/cache spans, and the per-PE runtime spans of the run
    // all carry it, which is what makes the request reconstructable
    // end-to-end from JSONL output.
    const std::uint64_t rid = obs::next_request_id();
    obs::RequestScope rscope(rid);
    const auto picked_up = std::chrono::steady_clock::now();
    const double queue_seconds =
        std::chrono::duration<double>(picked_up - item.enqueued).count();
    obs::Span span(service_.trace(), "service.request", "service");
    span.arg("worker", index);
    span.arg("queue_ms", queue_seconds * 1e3);
    try {
      const auto start = std::chrono::steady_clock::now();
      ServiceResponse response;
      response.worker = index;
      response.request_id = rid;
      response.queue_seconds = queue_seconds;
      PlanHandle plan = service_.compile(item.request.source,
                                         item.request.options,
                                         &response.outcome);
      const auto compiled = std::chrono::steady_clock::now();
      response.compile_seconds =
          std::chrono::duration<double>(compiled - start).count();
      RunRequest run;
      run.plan = std::move(plan);
      run.bindings = item.request.bindings;
      run.steps = item.request.steps;
      run.init = item.request.init;
      response.stats = session.run(run);
      response.run_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        compiled)
              .count();
      response.latency_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      span.arg_str("cache", to_string(response.outcome));
      span.arg("latency_ms", response.latency_seconds * 1e3);
      service_.metrics().observe("service.request_ms",
                                 response.latency_seconds * 1e3);
      service_.metrics().observe("service.queue_ms", queue_seconds * 1e3);
      item.promise.set_value(std::move(response));
    } catch (...) {
      span.arg_str("cache", "error");
      item.promise.set_exception(std::current_exception());
    }
  }
}

}  // namespace hpfsc::service

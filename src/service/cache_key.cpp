#include "service/cache_key.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "frontend/lower.hpp"
#include "frontend/parser.hpp"
#include "ir/program.hpp"
#include "ir/printer.hpp"

namespace hpfsc::service {

std::uint64_t fnv1a(std::string_view data) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

void field(std::string& out, const char* name, double v) {
  out += name;
  out += '=';
  out += std::to_string(v);
  out += ';';
}

void field(std::string& out, const char* name, bool v) {
  out += name;
  out += v ? "=1;" : "=0;";
}

using NameMap = std::unordered_map<std::string, std::string>;

void rename_bound(ir::AffineBound& b, const NameMap& map) {
  if (b.param.empty()) return;
  auto it = map.find(b.param);
  if (it != map.end()) b.param = it->second;
}

void rename_sections(std::vector<ir::SectionRange>& section,
                     const NameMap& map) {
  for (ir::SectionRange& r : section) {
    rename_bound(r.lo, map);
    rename_bound(r.hi, map);
  }
}

void rename_expr(ir::ExprPtr& e, const NameMap& map) {
  if (!e) return;
  ir::visit_exprs(*e, [&](ir::Expr& node) {
    if (node.kind == ir::ExprKind::ArrayRefK) {
      rename_sections(node.ref.section, map);
    }
  });
}

/// Alpha-renames user-visible names to positional placeholders
/// (program -> P, scalar i -> Si, array i -> Ai) in place, recording the
/// original names.  Identifiers occur only in the symbol table and in
/// AffineBound parameters (section/loop/extent bounds); expressions and
/// statements reference symbols by integer id.
InterfaceNames canonicalize_names(ir::Program& prog) {
  InterfaceNames iface;
  NameMap scalar_map;
  iface.program = prog.name;
  prog.name = "P";
  for (int i = 0; i < prog.symbols.num_scalars(); ++i) {
    ir::ScalarSymbol& sym = prog.symbols.scalar(i);
    iface.scalars.push_back(sym.name);
    scalar_map.emplace(sym.name, "S" + std::to_string(i));
    sym.name = "S" + std::to_string(i);
  }
  for (int i = 0; i < prog.symbols.num_arrays(); ++i) {
    ir::ArraySymbol& sym = prog.symbols.array(i);
    iface.arrays.push_back(sym.name);
    sym.name = "A" + std::to_string(i);
    for (ir::AffineBound& b : sym.extent) rename_bound(b, scalar_map);
  }
  ir::visit_stmts(prog.body, [&](ir::Stmt& s) {
    switch (s.kind) {
      case ir::StmtKind::ArrayAssign: {
        auto& a = static_cast<ir::ArrayAssignStmt&>(s);
        rename_sections(a.lhs.section, scalar_map);
        rename_expr(a.rhs, scalar_map);
        break;
      }
      case ir::StmtKind::ShiftAssign: {
        auto& a = static_cast<ir::ShiftAssignStmt&>(s);
        rename_sections(a.src.section, scalar_map);
        rename_expr(a.boundary, scalar_map);
        break;
      }
      case ir::StmtKind::OverlapShift: {
        auto& a = static_cast<ir::OverlapShiftStmt&>(s);
        rename_sections(a.src.section, scalar_map);
        rename_expr(a.boundary, scalar_map);
        break;
      }
      case ir::StmtKind::Copy:
        rename_sections(static_cast<ir::CopyStmt&>(s).src.section,
                        scalar_map);
        break;
      case ir::StmtKind::ScalarAssign:
        rename_expr(static_cast<ir::ScalarAssignStmt&>(s).rhs, scalar_map);
        break;
      case ir::StmtKind::If:
        rename_expr(static_cast<ir::IfStmt&>(s).cond, scalar_map);
        break;
      case ir::StmtKind::Do: {
        auto& d = static_cast<ir::DoStmt&>(s);
        rename_bound(d.lo, scalar_map);
        rename_bound(d.hi, scalar_map);
        break;
      }
      case ir::StmtKind::LoopNest: {
        auto& n = static_cast<ir::LoopNestStmt&>(s);
        for (ir::SectionRange& r : n.bounds) {
          rename_bound(r.lo, scalar_map);
          rename_bound(r.hi, scalar_map);
        }
        for (auto& body : n.body) {
          rename_sections(body.lhs.section, scalar_map);
          rename_expr(body.rhs, scalar_map);
        }
        break;
      }
      case ir::StmtKind::Alloc:
      case ir::StmtKind::Free:
        break;
    }
  });
  return iface;
}

}  // namespace

std::string InterfaceNames::encode() const {
  std::string out = program;
  out += '\x1e';
  for (const std::string& s : scalars) {
    out += s;
    out += '\x1f';
  }
  out += '\x1e';
  for (const std::string& a : arrays) {
    out += a;
    out += '\x1f';
  }
  return out;
}

InterfaceNames InterfaceNames::decode(std::string_view text) {
  InterfaceNames out;
  const std::size_t p1 = text.find('\x1e');
  const std::size_t p2 = text.find('\x1e', p1 + 1);
  out.program = std::string(text.substr(0, p1));
  auto split = [](std::string_view part, std::vector<std::string>& into) {
    std::size_t start = 0;
    for (std::size_t i = 0; i < part.size(); ++i) {
      if (part[i] == '\x1f') {
        into.emplace_back(part.substr(start, i - start));
        start = i + 1;
      }
    }
  };
  split(text.substr(p1 + 1, p2 - p1 - 1), out.scalars);
  split(text.substr(p2 + 1), out.arrays);
  return out;
}

std::string fingerprint(const CompilerOptions& options) {
  std::string out = "opts{";
  const passes::PassOptions& p = options.passes;
  field(out, "xlhpf", options.xlhpf_mode);
  field(out, "offset_arrays", p.offset_arrays);
  field(out, "context_partition", p.context_partition);
  field(out, "comm_unioning", p.comm_unioning);
  field(out, "memory_opt", p.memory_opt);
  field(out, "reuse_temps", p.normalize.reuse_temps);
  field(out, "max_halo", static_cast<double>(p.offset.max_halo));
  field(out, "permute", p.memory.permute);
  field(out, "unroll_jam", p.memory.unroll_jam);
  field(out, "scalar_replace", p.memory.scalar_replace);
  field(out, "unroll_factor", static_cast<double>(p.memory.unroll_factor));
  // live_out is semantically a set: canonicalize order and duplicates.
  std::vector<std::string> live = p.offset.live_out;
  std::sort(live.begin(), live.end());
  live.erase(std::unique(live.begin(), live.end()), live.end());
  out += "live_out=";
  for (const std::string& name : live) {
    out += name;
    out += ',';
  }
  out += ";}";
  return out;
}

std::string fingerprint(const simpi::MachineConfig& machine) {
  std::string out = "machine{";
  field(out, "pe_rows", static_cast<double>(machine.pe_rows));
  field(out, "pe_cols", static_cast<double>(machine.pe_cols));
  field(out, "heap_cap", static_cast<double>(machine.per_pe_heap_bytes));
  field(out, "latency_ns", static_cast<double>(machine.cost.latency_ns));
  field(out, "ns_per_byte", machine.cost.ns_per_byte);
  field(out, "memory_ns_per_byte", machine.cost.memory_ns_per_byte);
  field(out, "cache_ns_per_byte", machine.cost.cache_ns_per_byte);
  field(out, "emulate", machine.cost.emulate);
  out += '}';
  return out;
}

CacheKey make_cache_key(std::string_view source,
                        const CompilerOptions& options,
                        const simpi::MachineConfig& machine) {
  DiagnosticEngine diags;
  frontend::LowerResult lowered = frontend::lower_source(source, diags);
  if (diags.has_errors()) throw CompileError(diags.render_all());

  CacheKey key;
  InterfaceNames iface = canonicalize_names(lowered.program);
  key.iface = iface.encode();
  key.canonical = ir::Printer(lowered.program).print_program();
  if (lowered.processors) {
    key.canonical += "!HPF$ PROCESSORS(" +
                     std::to_string(lowered.processors->first) + "," +
                     std::to_string(lowered.processors->second) + ")\n";
  }
  key.canonical += '\n';
  // live_out names participate in the options fingerprint; map them
  // through the same renaming so alpha twins agree on it.
  CompilerOptions canon_opts = options;
  for (std::string& name : canon_opts.passes.offset.live_out) {
    for (std::size_t i = 0; i < iface.arrays.size(); ++i) {
      if (iface.arrays[i] == name) {
        name = "A" + std::to_string(i);
        break;
      }
    }
  }
  key.canonical += fingerprint(canon_opts);
  key.canonical += fingerprint(machine);
  key.hash = fnv1a(key.canonical);
  return key;
}

}  // namespace hpfsc::service

#include "service/cache_key.hpp"

#include <algorithm>
#include <vector>

#include "frontend/lower.hpp"
#include "frontend/parser.hpp"
#include "ir/printer.hpp"

namespace hpfsc::service {

std::uint64_t fnv1a(std::string_view data) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

void field(std::string& out, const char* name, double v) {
  out += name;
  out += '=';
  out += std::to_string(v);
  out += ';';
}

void field(std::string& out, const char* name, bool v) {
  out += name;
  out += v ? "=1;" : "=0;";
}

}  // namespace

std::string fingerprint(const CompilerOptions& options) {
  std::string out = "opts{";
  const passes::PassOptions& p = options.passes;
  field(out, "xlhpf", options.xlhpf_mode);
  field(out, "offset_arrays", p.offset_arrays);
  field(out, "context_partition", p.context_partition);
  field(out, "comm_unioning", p.comm_unioning);
  field(out, "memory_opt", p.memory_opt);
  field(out, "reuse_temps", p.normalize.reuse_temps);
  field(out, "max_halo", static_cast<double>(p.offset.max_halo));
  field(out, "permute", p.memory.permute);
  field(out, "unroll_jam", p.memory.unroll_jam);
  field(out, "scalar_replace", p.memory.scalar_replace);
  field(out, "unroll_factor", static_cast<double>(p.memory.unroll_factor));
  // live_out is semantically a set: canonicalize order and duplicates.
  std::vector<std::string> live = p.offset.live_out;
  std::sort(live.begin(), live.end());
  live.erase(std::unique(live.begin(), live.end()), live.end());
  out += "live_out=";
  for (const std::string& name : live) {
    out += name;
    out += ',';
  }
  out += ";}";
  return out;
}

std::string fingerprint(const simpi::MachineConfig& machine) {
  std::string out = "machine{";
  field(out, "pe_rows", static_cast<double>(machine.pe_rows));
  field(out, "pe_cols", static_cast<double>(machine.pe_cols));
  field(out, "heap_cap", static_cast<double>(machine.per_pe_heap_bytes));
  field(out, "latency_ns", static_cast<double>(machine.cost.latency_ns));
  field(out, "ns_per_byte", machine.cost.ns_per_byte);
  field(out, "memory_ns_per_byte", machine.cost.memory_ns_per_byte);
  field(out, "cache_ns_per_byte", machine.cost.cache_ns_per_byte);
  field(out, "emulate", machine.cost.emulate);
  out += '}';
  return out;
}

CacheKey make_cache_key(std::string_view source,
                        const CompilerOptions& options,
                        const simpi::MachineConfig& machine) {
  DiagnosticEngine diags;
  frontend::LowerResult lowered = frontend::lower_source(source, diags);
  if (diags.has_errors()) throw CompileError(diags.render_all());

  CacheKey key;
  key.canonical = ir::Printer(lowered.program).print_program();
  if (lowered.processors) {
    key.canonical += "!HPF$ PROCESSORS(" +
                     std::to_string(lowered.processors->first) + "," +
                     std::to_string(lowered.processors->second) + ")\n";
  }
  key.canonical += '\n';
  key.canonical += fingerprint(options);
  key.canonical += fingerprint(machine);
  key.hash = fnv1a(key.canonical);
  return key;
}

}  // namespace hpfsc::service

#include "service/plan_cache.hpp"

namespace hpfsc::service {

const char* to_string(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::Hit: return "hit";
    case CacheOutcome::Miss: return "miss";
    case CacheOutcome::Coalesced: return "coalesced";
  }
  return "?";
}

PlanCache::PlanCache(std::size_t capacity, obs::TraceSession* trace)
    : capacity_(capacity == 0 ? 1 : capacity), trace_(trace) {}

void PlanCache::emit_counter(const char* name,
                             const std::atomic<std::uint64_t>& value,
                             const char* gauge_name) {
  const double v =
      static_cast<double>(value.load(std::memory_order_relaxed));
  obs::TraceSession* trace = trace_.load(std::memory_order_acquire);
  if (trace != nullptr && trace->enabled()) {
    trace->counter(name, v);
  }
  // Gauge mirror (service.cache.*): cumulative totals in the metrics
  // registry, so cache traffic reaches --metrics-out/--prom-out even
  // with no trace session attached.
  obs::MetricsRegistry* metrics = metrics_.load(std::memory_order_acquire);
  if (metrics != nullptr) {
    metrics->set_gauge(gauge_name != nullptr ? gauge_name : name, v);
  }
}

PlanHandle PlanCache::lookup(const CacheKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key.canonical);
  return it == entries_.end() ? nullptr : it->second.plan;
}

std::size_t PlanCache::insert_locked(const CacheKey& key, PlanHandle plan) {
  lru_.push_front(key.canonical);
  entries_[key.canonical] = Entry{std::move(plan), lru_.begin()};
  std::size_t evicted = 0;
  while (entries_.size() > capacity_) {
    const std::string& victim = lru_.back();
    entries_.erase(victim);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    ++evicted;
  }
  return evicted;
}

PlanHandle PlanCache::get_or_compile(const CacheKey& key,
                                     const std::function<PlanHandle()>& make,
                                     CacheOutcome* outcome,
                                     std::uint64_t* leader_request_id) {
  std::shared_ptr<Flight> flight;
  bool leader = false;
  PlanHandle hit;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key.canonical);
    if (it != entries_.end()) {
      // Touch: move to the front of the LRU list.
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      hits_.fetch_add(1, std::memory_order_relaxed);
      hit = it->second.plan;
    } else {
      auto fit = flights_.find(key.canonical);
      if (fit != flights_.end()) {
        flight = fit->second;
        coalesced_.fetch_add(1, std::memory_order_relaxed);
      } else {
        flight = std::make_shared<Flight>();
        flight->leader_request_id = obs::current_request_id();
        flights_.emplace(key.canonical, flight);
        leader = true;
        misses_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  if (hit) {
    if (outcome != nullptr) *outcome = CacheOutcome::Hit;
    emit_counter("service.cache.hit", hits_);
    return hit;
  }

  if (!leader) {
    if (outcome != nullptr) *outcome = CacheOutcome::Coalesced;
    if (leader_request_id != nullptr) {
      *leader_request_id = flight->leader_request_id;
    }
    emit_counter("service.singleflight.coalesced", coalesced_,
                 "service.cache.coalesced");
    std::unique_lock<std::mutex> flock(flight->mutex);
    flight->cv.wait(flock, [&] { return flight->done; });
    if (flight->error) std::rethrow_exception(flight->error);
    return flight->result;
  }

  if (outcome != nullptr) *outcome = CacheOutcome::Miss;
  emit_counter("service.cache.miss", misses_);

  PlanHandle plan;
  std::exception_ptr error;
  try {
    plan = make();
  } catch (...) {
    error = std::current_exception();
  }

  std::size_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!error) evicted = insert_locked(key, plan);
    flights_.erase(key.canonical);
  }
  if (evicted > 0) emit_counter("service.cache.evict", evictions_);
  {
    std::lock_guard<std::mutex> flock(flight->mutex);
    flight->result = plan;
    flight->error = error;
    flight->done = true;
  }
  flight->cv.notify_all();

  if (error) std::rethrow_exception(error);
  return plan;
}

void PlanCache::insert(const CacheKey& key, PlanHandle plan) {
  std::size_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (flights_.find(key.canonical) != flights_.end()) {
      // A compile for this key is in flight; its result is at least as
      // fresh as the restored plan, so the restore is a no-op.
      return;
    }
    auto it = entries_.find(key.canonical);
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      it->second.plan = std::move(plan);
    } else {
      evicted = insert_locked(key, std::move(plan));
    }
    warmed_.fetch_add(1, std::memory_order_relaxed);
  }
  emit_counter("service.cache.warmed", warmed_);
  if (evicted > 0) emit_counter("service.cache.evict", evictions_);
}

CacheCounters PlanCache::counters() const {
  CacheCounters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  c.evictions = evictions_.load(std::memory_order_relaxed);
  c.coalesced = coalesced_.load(std::memory_order_relaxed);
  c.warmed = warmed_.load(std::memory_order_relaxed);
  return c;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
}

}  // namespace hpfsc::service

// Content-addressed cache keys for compiled plans.  A key canonicalizes
// the *meaning* of a request, not its bytes: the source text is parsed
// and lowered to IR, the user-visible symbol names are alpha-renamed to
// positional placeholders (program -> P, scalars -> S0.., arrays ->
// A0..), and the pretty-printed IR (declarations + directives + body)
// is hashed — so programs differing only in whitespace, comments, line
// continuations, or *identifier spelling* map to the same entry.  The
// compiler options (with live_out names canonicalized through the same
// renaming) and the machine configuration are folded in as stable
// textual fingerprints — any field that changes generated code or
// execution layout changes the key.  The requester's original names
// ride along as the key's *interface*, so the service can rename a
// cached plan back into any alias's vocabulary on a hit.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "driver/compiler.hpp"
#include "simpi/config.hpp"

namespace hpfsc::service {

/// The user-visible symbol names of one request, in symbol-table order
/// (position i names the i-th scalar/array of the lowered program).
/// Two alpha-renamed twins share a canonical key and differ only here.
struct InterfaceNames {
  std::string program;
  std::vector<std::string> scalars;
  std::vector<std::string> arrays;

  /// Stable single-string form (identifiers cannot contain the
  /// separators), suitable for map keys and equality checks.
  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static InterfaceNames decode(std::string_view text);
};

struct CacheKey {
  /// Full canonical request text (alpha-renamed IR printing +
  /// fingerprints).  Cache lookups compare this string, so hash
  /// collisions cannot alias distinct programs.
  std::string canonical;
  /// FNV-1a of `canonical`, for logging/span args.
  std::uint64_t hash = 0;
  /// Encoded InterfaceNames of *this requester* (not canonicalized).
  /// Deliberately excluded from equality: alias requests must land on
  /// one cache entry; the service renames the plan on the way out when
  /// the interfaces differ.
  std::string iface;

  bool operator==(const CacheKey& other) const {
    return canonical == other.canonical;
  }
};

/// 64-bit FNV-1a.
[[nodiscard]] std::uint64_t fnv1a(std::string_view data);

/// Stable textual fingerprint of every code-affecting compiler option.
[[nodiscard]] std::string fingerprint(const CompilerOptions& options);

/// Stable textual fingerprint of the machine shape and cost model.
[[nodiscard]] std::string fingerprint(const simpi::MachineConfig& machine);

/// Builds the key for (source, options, machine).  Runs the frontend
/// (lex + parse + lower) to obtain the canonical (alpha-renamed) IR
/// printing and records the requester's interface names; throws
/// CompileError on frontend/semantic errors.  Deliberately does *not*
/// run any optimization pass — key computation on the warm path must
/// stay cheap and emit no pass spans.
[[nodiscard]] CacheKey make_cache_key(std::string_view source,
                                      const CompilerOptions& options,
                                      const simpi::MachineConfig& machine);

}  // namespace hpfsc::service

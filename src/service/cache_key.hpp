// Content-addressed cache keys for compiled plans.  A key canonicalizes
// the *meaning* of a request, not its bytes: the source text is parsed
// and lowered to IR and the pretty-printed IR (declarations +
// directives + body) is hashed, so programs differing only in
// whitespace, comments, or line continuations map to the same entry.
// The compiler options and the machine configuration are folded in as
// stable textual fingerprints — any field that changes generated code
// or execution layout changes the key.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "driver/compiler.hpp"
#include "simpi/config.hpp"

namespace hpfsc::service {

struct CacheKey {
  /// Full canonical request text (IR printing + fingerprints).  Cache
  /// lookups compare this string, so hash collisions cannot alias
  /// distinct programs.
  std::string canonical;
  /// FNV-1a of `canonical`, for logging/span args.
  std::uint64_t hash = 0;

  bool operator==(const CacheKey& other) const {
    return canonical == other.canonical;
  }
};

/// 64-bit FNV-1a.
[[nodiscard]] std::uint64_t fnv1a(std::string_view data);

/// Stable textual fingerprint of every code-affecting compiler option.
[[nodiscard]] std::string fingerprint(const CompilerOptions& options);

/// Stable textual fingerprint of the machine shape and cost model.
[[nodiscard]] std::string fingerprint(const simpi::MachineConfig& machine);

/// Builds the key for (source, options, machine).  Runs the frontend
/// (lex + parse + lower) to obtain the canonical IR printing; throws
/// CompileError on frontend/semantic errors.  Deliberately does *not*
/// run any optimization pass — key computation on the warm path must
/// stay cheap and emit no pass spans.
[[nodiscard]] CacheKey make_cache_key(std::string_view source,
                                      const CompilerOptions& options,
                                      const simpi::MachineConfig& machine);

}  // namespace hpfsc::service

// The content-addressed plan cache: canonical key -> shared compiled
// plan, with LRU capacity eviction and single-flight compilation.
//
// Concurrency protocol (the "single flight"): the first thread to miss
// on a key becomes that key's *leader* and runs the compile functor
// outside the cache lock; every other thread that requests the same key
// while the compile is in flight blocks on the flight's condition
// variable and receives the leader's result (or its exception) — N
// concurrent requests for one key cost exactly one compilation.
// Distinct keys compile fully in parallel.
//
// Eviction only removes the cache's reference: plans are handed out as
// shared_ptr, so executions running against an evicted plan stay valid.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "codegen/spmd_program.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "passes/pipeline.hpp"
#include "service/cache_key.hpp"

namespace hpfsc::service {

/// An immutable compiled plan shared by every session/run that hits its
/// key.  Holds everything Execution construction needs.
struct CachedPlan {
  CacheKey key;
  spmd::Program program;
  std::optional<std::pair<int, int>> processors;
  passes::PipelineResult pipeline;
  std::string diagnostics;
};

using PlanHandle = std::shared_ptr<const CachedPlan>;

/// How a request was served.
enum class CacheOutcome {
  Hit,       ///< found in the cache
  Miss,      ///< this request was the leader and compiled the plan
  Coalesced  ///< joined another request's in-flight compilation
};

[[nodiscard]] const char* to_string(CacheOutcome outcome);

/// Monotonic counters; `hits + misses + coalesced` equals the number of
/// get_or_compile calls, and `misses` equals the number of times the
/// compile functor ran (successful or not).
struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t coalesced = 0;
  /// Plans restored via insert() (persistent-store warm start).
  std::uint64_t warmed = 0;
};

class PlanCache {
 public:
  /// `capacity` is the maximum number of resident plans (>= 1; 0 is
  /// clamped to 1).  The trace session (optional, not owned) receives
  /// cumulative service.cache.{hit,miss,evict} and
  /// service.singleflight.coalesced counter samples.
  explicit PlanCache(std::size_t capacity,
                     obs::TraceSession* trace = nullptr);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the plan for `key`, compiling it via `make` if absent.
  /// Thread-safe; see the single-flight protocol above.  If `make`
  /// throws, the exception propagates to the leader and every coalesced
  /// waiter, and nothing is cached.  `outcome`, when non-null, reports
  /// how this particular call was served.  `leader_request_id`, when
  /// non-null and the call coalesced, receives the request id the
  /// leading compile ran under (0 when the leader had none), so a
  /// waiter's trace can point at the compile spans it piggy-backed on.
  PlanHandle get_or_compile(const CacheKey& key,
                            const std::function<PlanHandle()>& make,
                            CacheOutcome* outcome = nullptr,
                            std::uint64_t* leader_request_id = nullptr);

  /// Peeks without compiling or counting; nullptr on miss.
  [[nodiscard]] PlanHandle lookup(const CacheKey& key);

  /// Inserts a plan built elsewhere — the warm-start path of the
  /// persistent plan store, which restores plans without compiling.
  /// Counts neither a hit nor a miss (the `warmed` counter instead);
  /// capacity eviction applies as usual.  A resident entry for the key
  /// is replaced.  Ignored while a compile for the key is in flight
  /// (the compile's result is at least as fresh).
  void insert(const CacheKey& key, PlanHandle plan);

  [[nodiscard]] CacheCounters counters() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Drops every resident entry (in-flight compilations are unaffected
  /// and will insert their results afterwards).  Does not reset
  /// counters; evictions are not counted.
  void clear();

  void set_trace(obs::TraceSession* trace) {
    trace_.store(trace, std::memory_order_release);
  }

  /// Mirrors every counter into `metrics` as service.cache.{hit,miss,
  /// evict,coalesced,warmed} gauges on each update, so cache traffic
  /// shows up in --metrics-out/--prom-out exports, not only as trace
  /// counters.  Not owned; must outlive the cache or be reset to null.
  void set_metrics(obs::MetricsRegistry* metrics) {
    metrics_.store(metrics, std::memory_order_release);
  }

 private:
  struct Flight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    PlanHandle result;
    std::exception_ptr error;
    /// Request id of the leading compile (set at flight creation, under
    /// the cache lock, before any waiter can observe the flight).
    std::uint64_t leader_request_id = 0;
  };

  struct Entry {
    PlanHandle plan;
    std::list<std::string>::iterator lru_it;
  };

  /// Samples a cumulative counter into the trace session (as `name`)
  /// and mirrors it as a registry gauge (as `gauge_name`, defaulting to
  /// `name`).  Never call while holding mutex_: the sink and the
  /// registry have their own locks and user-supplied behavior.
  void emit_counter(const char* name,
                    const std::atomic<std::uint64_t>& value,
                    const char* gauge_name = nullptr);
  /// Inserts and evicts beyond capacity; returns how many entries were
  /// evicted (caller emits the counter after unlocking).
  std::size_t insert_locked(const CacheKey& key, PlanHandle plan);

  const std::size_t capacity_;
  /// set_trace/set_metrics may race with emit_counter from request
  /// threads; atomic so the swap is data-race-free.
  std::atomic<obs::TraceSession*> trace_;
  std::atomic<obs::MetricsRegistry*> metrics_{nullptr};

  mutable std::mutex mutex_;
  std::list<std::string> lru_;  ///< canonical keys, most recent first
  std::unordered_map<std::string, Entry> entries_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> warmed_{0};
};

}  // namespace hpfsc::service

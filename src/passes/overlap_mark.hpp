// Overlap-eligibility marking: a post-codegen pass over the SPMD op
// list that flags loop nests the executor may split into interior +
// boundary under a deferring comm backend (async halo-exchange/compute
// overlap).  A nest qualifies when it is immediately preceded by a run
// of OverlapShift ops and the interior/boundary reordering is
// observationally equivalent to running the whole box after all
// receives complete:
//   * every kernel stores at lhs_offset == 0 (the store region is the
//     iteration box, so strips partition writes exactly),
//   * no array is both loaded and stored by the nest (strip order
//     would otherwise change which value a load observes), and
//   * no shifted array is stored (posted receives write its halo; the
//     gate keeps the nest's writes provably disjoint from them).
// Per-cell arithmetic is unchanged — only which cells run before
// wait_all — so results stay bitwise identical across backends.
#pragma once

#include "codegen/spmd_program.hpp"

namespace hpfsc::passes {

struct OverlapMarkStats {
  int nests_considered = 0;  ///< nests preceded by >=1 OverlapShift
  int nests_marked = 0;
};

OverlapMarkStats mark_overlap_nests(spmd::Program& program);

}  // namespace hpfsc::passes
